package nvbitfi_test

import (
	"context"
	"testing"

	"repro"
)

// TestIntegrationMiniCampaigns runs a small deterministic campaign on a
// structurally diverse subset of the suite — FP32 stencil, FP64 N-body,
// integer/atomic EP, trigonometric MRI-Q, and the one-kernel FP64 LBM —
// checking the invariants every campaign must satisfy regardless of
// outcome distribution.
func TestIntegrationMiniCampaigns(t *testing.T) {
	if testing.Short() {
		t.Skip("mini campaigns are not short")
	}
	programs := []string{"303.ostencil", "350.md", "352.ep", "314.omriq", "360.ilbdc"}
	for _, name := range programs {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w, err := nvbitfi.SpecACCELProgram(name)
			if err != nil {
				t.Fatal(err)
			}
			r := nvbitfi.Runner{}
			golden, err := r.Golden(w)
			if err != nil {
				t.Fatal(err)
			}
			profile, _, err := r.Profile(w, nvbitfi.Exact)
			if err != nil {
				t.Fatal(err)
			}
			res, err := nvbitfi.RunTransientCampaign(context.Background(), r, w, golden, profile,
				nvbitfi.TransientCampaignConfig{Injections: 6, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			if res.Tally.N != 6 {
				t.Fatalf("ran %d experiments", res.Tally.N)
			}
			total := 0
			for _, o := range []nvbitfi.Outcome{nvbitfi.Masked, nvbitfi.SDC, nvbitfi.DUE} {
				total += res.Tally.Counts[o]
			}
			if total != 6 {
				t.Fatalf("outcomes don't partition the runs: %v", res.Tally.Counts)
			}
			for i, run := range res.Runs {
				// Exact profile: every fault must activate.
				if !run.Injection.Activated {
					t.Errorf("run %d: fault did not activate", i)
				}
				// A masked run without anomalies must not carry a CUDA error.
				if run.Class.Outcome == nvbitfi.Masked && !run.Class.PotentialDUE &&
					run.Class.CUDAError != 0 {
					t.Errorf("run %d: masked-without-anomaly carries %v", i, run.Class.CUDAError)
				}
				// DUE runs must name a detection channel.
				if run.Class.Outcome == nvbitfi.DUE && run.Class.Symptom == 0 {
					t.Errorf("run %d: DUE with no symptom", i)
				}
			}
		})
	}
}

// TestIntegrationPermanentAcrossSuite runs one permanent fault on each of
// three programs exercising different datapaths.
func TestIntegrationPermanentAcrossSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("not short")
	}
	for _, name := range []string{"303.ostencil", "350.md", "352.ep"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w, err := nvbitfi.SpecACCELProgram(name)
			if err != nil {
				t.Fatal(err)
			}
			r := nvbitfi.Runner{}
			golden, err := r.Golden(w)
			if err != nil {
				t.Fatal(err)
			}
			profile, _, err := r.Profile(w, nvbitfi.Approximate)
			if err != nil {
				t.Fatal(err)
			}
			res, err := nvbitfi.RunPermanentCampaign(context.Background(), r, w, golden, profile,
				nvbitfi.RandomValue, 13, 1)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Runs) != len(profile.ExecutedOpcodes()) {
				t.Fatalf("%d runs for %d executed opcodes",
					len(res.Runs), len(profile.ExecutedOpcodes()))
			}
		})
	}
}
