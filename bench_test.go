// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates the corresponding result from
// running code and prints it in the paper's shape; EXPERIMENTS.md records
// the paper-vs-measured comparison. Scale knobs:
//
//	NVBITFI_INJECTIONS  transient injections per program (default 100,
//	                    the paper's example-campaign size)
package nvbitfi_test

import (
	"context"
	"fmt"
	"math/bits"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/nvbit"
	"repro/internal/sass"
)

// injectionsPerProgram returns the campaign size.
func injectionsPerProgram() int {
	if s := os.Getenv("NVBITFI_INJECTIONS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 100
}

// benchState caches goldens and profiles across benchmarks: profiling is
// Figure 4's expensive axis and is measured exactly once per program/mode.
type benchState struct {
	mu        sync.Mutex
	runner    nvbitfi.Runner
	golden    map[string]*nvbitfi.GoldenResult
	nativeDur map[string]time.Duration
	profiles  map[string]*nvbitfi.Profile // key: name + "/" + mode
	profDur   map[string]time.Duration
}

var state = &benchState{
	golden:    make(map[string]*nvbitfi.GoldenResult),
	nativeDur: make(map[string]time.Duration),
	profiles:  make(map[string]*nvbitfi.Profile),
	profDur:   make(map[string]time.Duration),
}

func (s *benchState) goldenFor(b *testing.B, w nvbitfi.Workload) *nvbitfi.GoldenResult {
	b.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	if g, ok := s.golden[w.Name()]; ok {
		return g
	}
	// Median-of-three native timing for the Figure 4 baseline.
	var g *nvbitfi.GoldenResult
	durs := make([]time.Duration, 0, 3)
	for i := 0; i < 3; i++ {
		gi, err := s.runner.Golden(w)
		if err != nil {
			b.Fatalf("golden %s: %v", w.Name(), err)
		}
		durs = append(durs, gi.Duration)
		g = gi
	}
	s.golden[w.Name()] = g
	s.nativeDur[w.Name()] = medianDur(durs)
	return g
}

func (s *benchState) profileFor(b *testing.B, w nvbitfi.Workload, mode nvbitfi.ProfileMode) (*nvbitfi.Profile, time.Duration) {
	b.Helper()
	key := fmt.Sprintf("%s/%v", w.Name(), mode)
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.profiles[key]; ok {
		return p, s.profDur[key]
	}
	p, d, err := s.runner.Profile(w, mode)
	if err != nil {
		b.Fatalf("profile %s: %v", key, err)
	}
	s.profiles[key] = p
	s.profDur[key] = d
	return p, d
}

func medianDur(d []time.Duration) time.Duration {
	s := append([]time.Duration(nil), d...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

func ratio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// printOnce gates table output to the first benchmark iteration.
func printOnce(i int, format string, args ...any) {
	if i == 0 {
		fmt.Printf(format, args...)
	}
}

// --- Table I: tool capability and overhead comparison --------------------

func BenchmarkTableI_ToolComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		params := core.TransientParams{
			Group: nvbitfi.GroupGP, BitFlip: nvbitfi.FlipSingleBit,
			KernelName: "conv1d", KernelCount: 2, InstrCount: 500,
			DestRegSelect: 0.3, BitPatternValue: 0.4,
		}
		cfg := nvbitfi.AVConfig{Frames: 4}
		newCtx := func() *nvbitfi.Context {
			dev, err := nvbitfi.NewDevice(nvbitfi.Volta, 8)
			if err != nil {
				b.Fatal(err)
			}
			ctx, err := nvbitfi.NewContext(dev)
			if err != nil {
				b.Fatal(err)
			}
			ctx.SetDefaultBudget(1 << 30)
			return ctx
		}

		run := func(attach func(*nvbitfi.Context) (activated func() bool, detach func())) (time.Duration, bool, bool) {
			ctx := newCtx()
			var activated func() bool
			var detach func()
			if attach != nil {
				activated, detach = attach(ctx)
				defer detach()
			}
			start := time.Now()
			out, err := nvbitfi.NewAVPipeline(cfg).Run(ctx)
			if err != nil {
				b.Fatal(err)
			}
			d := time.Since(start)
			act := false
			if activated != nil {
				act = activated()
			}
			return d, act, out.ExitCode == 0
		}

		native, _, _ := run(nil)
		nvDur, nvAct, nvOK := run(func(ctx *nvbitfi.Context) (func() bool, func()) {
			inj, err := nvbitfi.NewTransientInjector(params)
			if err != nil {
				b.Fatal(err)
			}
			att, err := nvbit.Attach(ctx, inj)
			if err != nil {
				b.Fatal(err)
			}
			return func() bool { return inj.Record().Activated }, att.Detach
		})
		stDur, stAct, stOK := run(func(ctx *nvbitfi.Context) (func() bool, func()) {
			s, err := baseline.AttachStaticFI(ctx, params)
			if err != nil {
				b.Fatal(err)
			}
			return func() bool { return s.Record().Activated }, s.Detach
		})
		dbDur, dbAct, dbOK := run(func(ctx *nvbitfi.Context) (func() bool, func()) {
			d, err := baseline.AttachDebuggerFI(ctx, params)
			if err != nil {
				b.Fatal(err)
			}
			return func() bool { return d.Record().Activated }, d.Detach
		})

		printOnce(i, "\nTable I — injection-tool comparison on the AV pipeline (binary-only vendor kernel targeted)\n")
		printOnce(i, "%-22s %-18s %-14s %-18s %-14s %-10s\n",
			"Tool", "Mechanism", "Needs source?", "Injected library?", "RT deadline", "Overhead")
		row := func(tool, mech, src string, act, ok bool, d time.Duration) {
			inj := "No"
			if act {
				inj = "Yes"
			}
			rt := "missed"
			if ok {
				rt = "met"
			}
			printOnce(i, "%-22s %-18s %-14s %-18s %-14s %8.2fx\n", tool, mech, src, inj, rt, ratio(d, native))
		}
		row("NVBitFI (this work)", "dynamic binary", "No", nvAct, nvOK, nvDur)
		row("StaticFI (SASSIFI)", "compile-time", "Yes", stAct, stOK, stDur)
		row("DebuggerFI (GPU-Qin)", "debugger", "No", dbAct, dbOK, dbDur)
		printOnce(i, "(paper Table I also lists LLFI-GPU and Hauberk, both source-level: Needs source Yes, libraries No)\n")
	}
}

// --- Table II: transient fault model semantics ----------------------------

func BenchmarkTableII_TransientModels(b *testing.B) {
	w, err := nvbitfi.SpecACCELProgram("303.ostencil")
	if err != nil {
		b.Fatal(err)
	}
	golden := state.goldenFor(b, w)
	profile, _ := state.profileFor(b, w, nvbitfi.Exact)
	for i := 0; i < b.N; i++ {
		printOnce(i, "\nTable II — transient fault parameters exercised (303.ostencil, one injection per cell)\n")
		printOnce(i, "%-10s %-17s %-10s %-9s %-28s %s\n",
			"group", "bit-flip", "activated", "outcome", "corruption", "target")
		rng := rand.New(rand.NewSource(22))
		for g := nvbitfi.GroupFP64; g <= nvbitfi.GroupGP; g++ {
			for bf := nvbitfi.FlipSingleBit; bf <= nvbitfi.ZeroValue; bf++ {
				if profile.TotalInstrs(g) == 0 {
					printOnce(i, "%-10v %-17v (no %v instructions in this program)\n", g, bf, g)
					continue
				}
				params, err := nvbitfi.SelectTransientFault(profile, g, bf, rng)
				if err != nil {
					b.Fatal(err)
				}
				res, err := state.runner.RunTransient(context.Background(), w, golden, *params)
				if err != nil {
					b.Fatal(err)
				}
				rec := res.Injection
				corr := fmt.Sprintf("0x%08x -> 0x%08x", rec.Before, rec.After)
				if rec.NoDestination {
					corr = "(no destination register)"
				}
				if bf == nvbitfi.FlipSingleBit && !rec.NoDestination && rec.Target[0] == 'R' {
					if n := bits.OnesCount32(rec.Before ^ rec.After); n != 1 {
						b.Fatalf("FLIP_SINGLE_BIT flipped %d bits", n)
					}
				}
				printOnce(i, "%-10v %-17v %-10v %-9v %-28s %s\n",
					g, bf, rec.Activated, res.Class.Outcome, corr, rec.Target)
			}
		}
	}
}

// --- Table III: permanent fault model semantics ---------------------------

func BenchmarkTableIII_PermanentModels(b *testing.B) {
	w, err := nvbitfi.SpecACCELProgram("303.ostencil")
	if err != nil {
		b.Fatal(err)
	}
	golden := state.goldenFor(b, w)
	profile, _ := state.profileFor(b, w, nvbitfi.Exact)
	for i := 0; i < b.N; i++ {
		printOnce(i, "\nTable III — permanent fault parameters (Volta opcode set: %d opcodes; paper: 171)\n",
			nvbitfi.OpcodeCount(nvbitfi.Volta))
		rng := rand.New(rand.NewSource(33))
		faults, err := nvbitfi.SelectPermanentFaults(profile, nvbitfi.Volta, 8, nvbitfi.FlipSingleBit, rng)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, "executed opcodes: %d of %d\n", len(faults), nvbitfi.OpcodeCount(nvbitfi.Volta))
		printOnce(i, "%-6s %-6s %-12s %-10s %-12s %-9s\n", "SM", "lane", "mask", "opcode", "activations", "outcome")
		for fi, pf := range faults {
			if fi >= 6 && i == 0 {
				fmt.Printf("... (%d more opcodes; Figure 3 runs them all)\n", len(faults)-fi)
				break
			}
			res, err := state.runner.RunPermanent(context.Background(), w, golden, *pf, nil, nil)
			if err != nil {
				b.Fatal(err)
			}
			printOnce(i, "%-6d %-6d 0x%08x  %-10v %-12d %-9v\n",
				pf.SMID, pf.Lane, pf.BitMask, pf.Opcode(nvbitfi.Volta), res.Activations, res.Class.Outcome)
		}
	}
}

// --- Table IV: the SpecACCEL suite ----------------------------------------

func BenchmarkTableIV_SpecACCEL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printOnce(i, "\nTable IV — SpecACCEL analogs (static kernels match the paper; dynamic kernels scaled)\n")
		printOnce(i, "%-14s %-46s %7s %9s %11s %11s\n",
			"Program", "Description", "Static", "Dynamic", "paper-stat", "paper-dyn")
		for _, w := range nvbitfi.SpecACCEL() {
			profile, _ := state.profileFor(b, w, nvbitfi.Exact)
			var info nvbitfi.SpecACCELInfo
			for _, inf := range nvbitfi.SpecACCELInfos() {
				if inf.Name == w.Name() {
					info = inf
				}
			}
			static := len(profile.StaticKernels())
			dynamic := profile.DynamicKernels()
			if static != info.PaperStaticKernels {
				b.Fatalf("%s: static kernels %d != paper %d", w.Name(), static, info.PaperStaticKernels)
			}
			printOnce(i, "%-14s %-46s %7d %9d %11d %11d\n",
				w.Name(), w.Description(), static, dynamic,
				info.PaperStaticKernels, info.PaperDynamicKernels)
		}
	}
}

// --- Table V: outcome taxonomy --------------------------------------------

func BenchmarkTableV_Outcomes(b *testing.B) {
	w, err := nvbitfi.SpecACCELProgram("303.ostencil")
	if err != nil {
		b.Fatal(err)
	}
	golden := state.goldenFor(b, w)
	profile, _ := state.profileFor(b, w, nvbitfi.Exact)
	for i := 0; i < b.N; i++ {
		// Sweep seeded faults until every outcome class is witnessed.
		seen := make(map[string]nvbitfi.Classification)
		rng := rand.New(rand.NewSource(55))
		for tries := 0; tries < 400 && len(seen) < 4; tries++ {
			params, err := nvbitfi.SelectTransientFault(profile, nvbitfi.GroupGP, nvbitfi.RandomValue, rng)
			if err != nil {
				b.Fatal(err)
			}
			res, err := state.runner.RunTransient(context.Background(), w, golden, *params)
			if err != nil {
				b.Fatal(err)
			}
			key := res.Class.Outcome.String()
			if res.Class.PotentialDUE {
				key = "PotentialDUE"
			}
			if _, ok := seen[key]; !ok {
				seen[key] = res.Class
			}
		}
		printOnce(i, "\nTable V — outcome classes witnessed by seeded RANDOM_VALUE faults (303.ostencil)\n")
		for _, key := range []string{"Masked", "SDC", "DUE", "PotentialDUE"} {
			if cls, ok := seen[key]; ok {
				printOnce(i, "%-13s -> %v\n", key, cls)
			} else {
				printOnce(i, "%-13s -> (not hit in this sweep)\n", key)
			}
		}
	}
}

// --- Figure 1: single-fault injection procedure ----------------------------

func BenchmarkFig1_InjectionProcedure(b *testing.B) {
	w, err := nvbitfi.SpecACCELProgram("303.ostencil")
	if err != nil {
		b.Fatal(err)
	}
	golden := state.goldenFor(b, w)
	for i := 0; i < b.N; i++ {
		profile, _, err := state.runner.Profile(w, nvbitfi.Exact) // step 1
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		params, err := nvbitfi.SelectTransientFault(profile, // step 2
			nvbitfi.GroupGPPR, nvbitfi.FlipSingleBit, rng)
		if err != nil {
			b.Fatal(err)
		}
		res, err := state.runner.RunTransient(context.Background(), w, golden, *params) // steps 3-4
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, "\nFigure 1 — one transient injection, end to end\n")
		printOnce(i, "profile: %d dynamic kernels, %d GPPR instructions\n",
			profile.DynamicKernels(), profile.TotalInstrs(nvbitfi.GroupGPPR))
		printOnce(i, "parameter file:\n%s", params.String())
		printOnce(i, "injected: %+v\n", res.Injection)
		printOnce(i, "outcome: %v\n", res.Class)
	}
}

// --- Figure 2: exact vs approximate profiling campaigns --------------------

func BenchmarkFig2_ExactVsApproxProfiling(b *testing.B) {
	n := injectionsPerProgram()
	for i := 0; i < b.N; i++ {
		printOnce(i, "\nFigure 2 — transient campaigns, %d faults per program (percentages: SDC/DUE/Masked)\n", n)
		printOnce(i, "%-14s | %22s | %22s\n", "Program", "exact profiling", "approximate profiling")
		var exTally, apTally nvbitfi.Tally
		exTally.Counts = make(map[nvbitfi.Outcome]int)
		apTally.Counts = make(map[nvbitfi.Outcome]int)
		for _, w := range nvbitfi.SpecACCEL() {
			golden := state.goldenFor(b, w)
			line := fmt.Sprintf("%-14s |", w.Name())
			for _, mode := range []nvbitfi.ProfileMode{nvbitfi.Exact, nvbitfi.Approximate} {
				profile, _ := state.profileFor(b, w, mode)
				res, err := nvbitfi.RunTransientCampaign(context.Background(), state.runner, w, golden, profile,
					nvbitfi.TransientCampaignConfig{
						Injections: n,
						Group:      nvbitfi.GroupGPPR,
						BitFlip:    nvbitfi.FlipSingleBit,
						Seed:       int64(mode), // same stream per mode across programs
					})
				if err != nil {
					b.Fatal(err)
				}
				t := res.Tally
				line += fmt.Sprintf(" %5.1f /%5.1f /%5.1f  |",
					100*t.Fraction(nvbitfi.SDC), 100*t.Fraction(nvbitfi.DUE), 100*t.Fraction(nvbitfi.Masked))
				agg := &exTally
				if mode == nvbitfi.Approximate {
					agg = &apTally
				}
				for o, c := range t.Counts {
					agg.Counts[o] += c
					agg.N += c
				}
				agg.PotentialDUEs += t.PotentialDUEs
			}
			printOnce(i, "%s\n", line)
		}
		printOnce(i, "%-14s |  %5.1f /%5.1f /%5.1f  |  %5.1f /%5.1f /%5.1f\n", "ALL",
			100*exTally.Fraction(nvbitfi.SDC), 100*exTally.Fraction(nvbitfi.DUE), 100*exTally.Fraction(nvbitfi.Masked),
			100*apTally.Fraction(nvbitfi.SDC), 100*apTally.Fraction(nvbitfi.DUE), 100*apTally.Fraction(nvbitfi.Masked))
		printOnce(i, "(paper: exact 32.5/4.2/63.3, approximate 37.9/4.5/57.6; potential DUEs folded into SDC/Masked: %d exact, %d approx)\n",
			exTally.PotentialDUEs, apTally.PotentialDUEs)
		margin, err := nvbitfi.MarginOfError(n, 0.90)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, "(%d injections => 90%% confidence +-%.1f%% error margin)\n", n, 100*margin)
	}
}

// --- Figure 3: permanent fault outcomes ------------------------------------

func BenchmarkFig3_PermanentOutcomes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printOnce(i, "\nFigure 3 — permanent faults, one per executed opcode, weighted by opcode activity\n")
		printOnce(i, "%-14s %8s | %7s %7s %7s\n", "Program", "opcodes", "SDC%", "DUE%", "Masked%")
		var totSDC, totDUE, totMask, progs float64
		for _, w := range nvbitfi.SpecACCEL() {
			golden := state.goldenFor(b, w)
			profile, _ := state.profileFor(b, w, nvbitfi.Exact)
			res, err := nvbitfi.RunPermanentCampaign(context.Background(), state.runner, w, golden, profile,
				nvbitfi.RandomValue, 3, 1)
			if err != nil {
				b.Fatal(err)
			}
			sdc := 100 * res.Weighted.Share("SDC")
			due := 100 * res.Weighted.Share("DUE")
			mask := 100 * res.Weighted.Share("Masked")
			totSDC += sdc
			totDUE += due
			totMask += mask
			progs++
			printOnce(i, "%-14s %8d | %7.1f %7.1f %7.1f\n",
				w.Name(), len(res.Runs), sdc, due, mask)
		}
		printOnce(i, "%-14s %8s | %7.1f %7.1f %7.1f\n", "MEAN", "", totSDC/progs, totDUE/progs, totMask/progs)
		printOnce(i, "(paper: masked drops from 57.6%% for transients to 17.4%% for permanents)\n")
	}
}

// --- Figure 4: execution overheads ------------------------------------------

func BenchmarkFig4_ExecutionOverheads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printOnce(i, "\nFigure 4 — execution overheads relative to the uninstrumented program\n")
		printOnce(i, "%-14s %10s %12s %12s %12s %12s\n",
			"Program", "native", "exact-prof", "approx-prof", "transient", "permanent")
		var exSum, apSum, trSum, pfSum float64
		var maxEx float64
		var maxExProg string
		for _, w := range nvbitfi.SpecACCEL() {
			golden := state.goldenFor(b, w)
			native := state.nativeDur[w.Name()]
			_, exactDur := state.profileFor(b, w, nvbitfi.Exact)
			_, approxDur := state.profileFor(b, w, nvbitfi.Approximate)
			profile, _ := state.profileFor(b, w, nvbitfi.Exact)

			// Median of 5 transient injections (the paper uses the median
			// of its 100 injection runs).
			rng := rand.New(rand.NewSource(4))
			trDurs := make([]time.Duration, 0, 5)
			for k := 0; k < 5; k++ {
				params, err := nvbitfi.SelectTransientFault(profile, nvbitfi.GroupGPPR, nvbitfi.FlipSingleBit, rng)
				if err != nil {
					b.Fatal(err)
				}
				res, err := state.runner.RunTransient(context.Background(), w, golden, *params)
				if err != nil {
					b.Fatal(err)
				}
				trDurs = append(trDurs, res.Duration)
			}
			// Median of 5 permanent injections.
			faults, err := nvbitfi.SelectPermanentFaults(profile, nvbitfi.Volta, 8, nvbitfi.RandomValue, rng)
			if err != nil {
				b.Fatal(err)
			}
			pfDurs := make([]time.Duration, 0, 5)
			for k := 0; k < len(faults) && k < 5; k++ {
				res, err := state.runner.RunPermanent(context.Background(), w, golden, *faults[k], nil, nil)
				if err != nil {
					b.Fatal(err)
				}
				pfDurs = append(pfDurs, res.Duration)
			}
			ex, ap := ratio(exactDur, native), ratio(approxDur, native)
			tr, pf := ratio(medianDur(trDurs), native), ratio(medianDur(pfDurs), native)
			exSum += ex
			apSum += ap
			trSum += tr
			pfSum += pf
			if ex > maxEx {
				maxEx, maxExProg = ex, w.Name()
			}
			printOnce(i, "%-14s %10v %11.1fx %11.1fx %11.1fx %11.1fx\n",
				w.Name(), native.Round(time.Millisecond), ex, ap, tr, pf)
		}
		n := float64(len(nvbitfi.SpecACCEL()))
		printOnce(i, "%-14s %10s %11.1fx %11.1fx %11.1fx %11.1fx\n", "MEAN", "",
			exSum/n, apSum/n, trSum/n, pfSum/n)
		printOnce(i, "max exact-profiling overhead: %.0fx on %s (paper: up to 558x on 350.md)\n", maxEx, maxExProg)
		printOnce(i, "exact/approx profiling ratio: %.1fx (paper: 28x on average)\n", exSum/apSum)
		printOnce(i, "(paper: transient injection ~2.9x, permanent ~4.8x on average)\n")
	}
}

// --- Figure 5: total campaign times -----------------------------------------

func BenchmarkFig5_CampaignTimes(b *testing.B) {
	const transientFaults = 100 // the paper's campaign size for Figure 5
	for i := 0; i < b.N; i++ {
		printOnce(i, "\nFigure 5 — total campaign times (transient: %d faults; permanent: one run per executed opcode)\n",
			transientFaults)
		printOnce(i, "%-14s %9s %12s %12s %8s\n", "Program", "opcodes", "transient", "permanent", "ratio")
		var ratios []float64
		for _, w := range nvbitfi.SpecACCEL() {
			golden := state.goldenFor(b, w)
			profile, _ := state.profileFor(b, w, nvbitfi.Exact)
			rng := rand.New(rand.NewSource(5))

			// Median per-run times over 5 samples each, as Figure 4 does
			// (the paper takes the median of its 100 injection runs).
			trDurs := make([]time.Duration, 0, 5)
			for k := 0; k < 5; k++ {
				params, err := nvbitfi.SelectTransientFault(profile, nvbitfi.GroupGPPR, nvbitfi.FlipSingleBit, rng)
				if err != nil {
					b.Fatal(err)
				}
				trRes, err := state.runner.RunTransient(context.Background(), w, golden, *params)
				if err != nil {
					b.Fatal(err)
				}
				trDurs = append(trDurs, trRes.Duration)
			}
			faults, err := nvbitfi.SelectPermanentFaults(profile, nvbitfi.Volta, 8, nvbitfi.RandomValue, rng)
			if err != nil {
				b.Fatal(err)
			}
			pfDurs := make([]time.Duration, 0, 5)
			for k := 0; k < len(faults) && k < 5; k++ {
				pfRes, err := state.runner.RunPermanent(context.Background(), w, golden, *faults[k], nil, nil)
				if err != nil {
					b.Fatal(err)
				}
				pfDurs = append(pfDurs, pfRes.Duration)
			}

			transient := time.Duration(transientFaults) * medianDur(trDurs)
			permanent := time.Duration(len(faults)) * medianDur(pfDurs)
			r := ratio(transient, permanent)
			ratios = append(ratios, r)
			printOnce(i, "%-14s %9d %12v %12v %7.2fx\n",
				w.Name(), len(faults), transient.Round(time.Millisecond),
				permanent.Round(time.Millisecond), r)
		}
		lo, hi, sum := ratios[0], ratios[0], 0.0
		for _, r := range ratios {
			if r < lo {
				lo = r
			}
			if r > hi {
				hi = r
			}
			sum += r
		}
		printOnce(i, "transient/permanent campaign-time ratio: mean %.1fx, range %.1fx..%.1fx\n",
			sum/float64(len(ratios)), lo, hi)
		printOnce(i, "(paper: typically ~2x, ranging from ~5x longer to slightly faster; 16..41 executed opcodes per program)\n")
	}
}

// --- Parallel block scheduler and warp hot loop ---------------------------

// assembleBench builds a kernel for the scheduler microbenchmarks.
func assembleBench(b *testing.B, src, name string) *sass.Kernel {
	b.Helper()
	p, err := sass.Assemble("bench", src)
	if err != nil {
		b.Fatalf("assemble: %v", err)
	}
	k, ok := p.Kernel(name)
	if !ok {
		b.Fatalf("kernel %q not found", name)
	}
	return k
}

// benchBusySrc is a compute-bound multi-block kernel: each thread runs a
// 512-iteration IMAD loop and stores its result.
const benchBusySrc = `
.kernel busy
.param outptr
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    MOV R5, 0x0
    MOV R6, 0x1
loop:
    IMAD R6, R6, R0, 0x7
    IADD R5, R5, 0x1
    ISETP.LT.AND P0, R5, 0x200, PT
@P0 BRA loop
    SHL R3, R0, 0x2
    IADD R4, R3, c0[outptr]
    STG.32 [R4], R6
    EXIT
`

// BenchmarkRunParallelBlocks measures a 64-block compute-bound launch under
// increasing device worker counts. On a single-core host the parallel
// schedule measures pure dispatch overhead; on a multi-core host it shows
// block-level speedup (see EXPERIMENTS.md).
func BenchmarkRunParallelBlocks(b *testing.B) {
	k := assembleBench(b, benchBusySrc, "busy")
	const blocks, threads = 64, 128
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			d, err := gpu.NewDevice(nvbitfi.Volta, 8)
			if err != nil {
				b.Fatal(err)
			}
			d.Workers = workers
			outp, err := d.Mem.Alloc(4 * blocks * threads)
			if err != nil {
				b.Fatal(err)
			}
			l := &gpu.Launch{
				Kernel: &gpu.ExecKernel{K: k},
				Grid:   gpu.Dim3{X: blocks, Y: 1, Z: 1},
				Block:  gpu.Dim3{X: threads, Y: 1, Z: 1},
				Params: []uint32{outp},
			}
			var warpInstrs uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stats, err := d.Run(l)
				if err != nil {
					b.Fatal(err)
				}
				warpInstrs = stats.WarpInstrs
			}
			b.ReportMetric(float64(warpInstrs)*float64(b.N)/b.Elapsed().Seconds(), "warp-instrs/s")
		})
	}
}

// benchDivergedSrc splits every warp into two PC clusters for the whole
// run: even lanes spin in one loop, odd lanes in another, reconverging only
// at the final store. The interpreter must re-scan per-lane PCs on every
// instruction, which is exactly the work the converged fast path skips.
const benchDivergedSrc = `
.kernel div
.param outptr
    S2R R0, SR_TID.X
    LOP.AND R1, R0, 0x1
    ISETP.EQ.AND P0, R1, 0x1, PT
    MOV R5, 0x0
    MOV R6, 0x1
@P0 BRA oddloop
evenloop:
    IMAD R6, R6, R0, 0x7
    IADD R5, R5, 0x1
    ISETP.LT.AND P1, R5, 0x200, PT
@P1 BRA evenloop
    BRA store
oddloop:
    IMAD R6, R6, R0, 0xb
    IADD R5, R5, 0x1
    ISETP.LT.AND P2, R5, 0x200, PT
@P2 BRA oddloop
store:
    SHL R3, R0, 0x2
    IADD R4, R3, c0[outptr]
    STG.32 [R4], R6
    EXIT
`

// BenchmarkWarpHotLoop compares the converged fast path (all 32 lanes share
// one PC, no per-lane scans) against fully divergent execution on the same
// per-thread workload.
func BenchmarkWarpHotLoop(b *testing.B) {
	cases := []struct {
		name, src, kernel string
	}{
		{"converged", benchBusySrc, "busy"},
		{"divergent", benchDivergedSrc, "div"},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			k := assembleBench(b, tc.src, tc.kernel)
			d, err := gpu.NewDevice(nvbitfi.Volta, 8)
			if err != nil {
				b.Fatal(err)
			}
			outp, err := d.Mem.Alloc(4 * 32)
			if err != nil {
				b.Fatal(err)
			}
			l := &gpu.Launch{
				Kernel: &gpu.ExecKernel{K: k},
				Grid:   gpu.Dim3{X: 1, Y: 1, Z: 1},
				Block:  gpu.Dim3{X: 32, Y: 1, Z: 1},
				Params: []uint32{outp},
			}
			var threadInstrs uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stats, err := d.Run(l)
				if err != nil {
					b.Fatal(err)
				}
				threadInstrs = stats.ThreadInstrs
			}
			b.ReportMetric(float64(threadInstrs)*float64(b.N)/b.Elapsed().Seconds(), "thread-instrs/s")
		})
	}
}
