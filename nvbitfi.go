// Package nvbitfi is a pure-Go reproduction of NVBitFI ("NVBitFI: Dynamic
// Fault Injection for GPUs", Tsai, Hari, Sullivan, Villa, Keckler — NVIDIA,
// DSN 2021): a dynamic, selective, binary-level fault-injection tool for
// GPU programs, together with every substrate it needs — a SASS-like ISA
// with per-architecture-family binary encodings, an architectural SIMT GPU
// simulator, a mini CUDA driver API, an NVBit-style dynamic binary
// instrumentation framework, the SpecACCEL benchmark analogs the paper
// evaluates on, comparator tools (SASSIFI-style and GPU-Qin-style), and a
// campaign harness with the paper's outcome taxonomy and statistics.
//
// This package is the public facade: it re-exports the library surface and
// provides the top-level entry points a user needs to run the paper's
// Figure 1 flow:
//
//	w, _ := nvbitfi.SpecACCELProgram("303.ostencil")
//	r := nvbitfi.Runner{}
//	golden, _ := r.Golden(w)                                 // golden output
//	profile, _, _ := r.Profile(w, nvbitfi.Exact)             // step 1: profile
//	params, _ := nvbitfi.SelectTransientFault(profile,       // step 2: pick a fault
//	    nvbitfi.GroupGPPR, nvbitfi.FlipSingleBit, rng)
//	res, _ := r.RunTransient(ctx, w, golden, *params)        // steps 3-4: inject, compare
//	fmt.Println(res.Class)                                   // SDC / DUE / Masked
package nvbitfi

import (
	"context"
	"math/rand"

	"repro/internal/av"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/faultmodel"
	"repro/internal/gpu"
	"repro/internal/nvbit"
	"repro/internal/sass"
	"repro/internal/specaccel"
	"repro/internal/stats"
)

// Re-exported core types. The aliases keep one canonical implementation in
// the internal packages while giving users a single import.
type (
	// Profile is a program's dynamic instruction profile (one record per
	// dynamic kernel).
	Profile = core.Profile
	// KernelRecord is one dynamic kernel's per-opcode execution counts.
	KernelRecord = core.KernelRecord
	// ProfileMode selects exact or approximate profiling.
	ProfileMode = core.ProfileMode
	// Profiler is the profiler.so analog (an NVBit tool).
	Profiler = core.Profiler
	// TransientParams is the Table II transient-fault parameter set.
	TransientParams = core.TransientParams
	// ThreadSelector pins a transient fault to one thread (extension).
	ThreadSelector = core.ThreadSelector
	// PermanentParams is the Table III permanent-fault parameter set.
	PermanentParams = core.PermanentParams
	// TransientInjector is the injector.so analog.
	TransientInjector = core.TransientInjector
	// PermanentInjector is the pf_injector.so analog.
	PermanentInjector = core.PermanentInjector
	// ActivationGate makes a permanent fault intermittent.
	ActivationGate = core.ActivationGate
	// RandomGate activates a fault with fixed probability per instance.
	RandomGate = core.RandomGate
	// BurstGate activates a fault in periodic bursts.
	BurstGate = core.BurstGate
	// FaultDictionary maps opcodes to specialized corruption functions.
	FaultDictionary = core.FaultDictionary
	// BitFlipModel is the Table II bit-error pattern.
	BitFlipModel = core.BitFlipModel
	// InjectionRecord reports what an injection actually corrupted.
	InjectionRecord = core.InjectionRecord

	// FaultModel is one pluggable fault model: selection-space scoping, a
	// soundness capability bitmask, and an injector factory.
	FaultModel = faultmodel.Model
	// FaultModelEnv is the campaign context models build injectors against.
	FaultModelEnv = faultmodel.Env
	// FaultModelCaps is the soundness capability bitmask a model declares.
	FaultModelCaps = faultmodel.Caps

	// Group is the "arch state id": the instruction subset to inject.
	Group = sass.Group
	// Family is a GPU architecture family (Kepler..Ampere).
	Family = sass.Family
	// Op is an opcode of the SASS-like ISA.
	Op = sass.Op

	// Workload is a target program: runnable and self-checking.
	Workload = campaign.Workload
	// Output is a workload's observable result.
	Output = campaign.Output
	// Outcome is the error-propagation outcome class (Table V).
	Outcome = campaign.Outcome
	// Classification is a classified run (outcome + symptom + flags).
	Classification = campaign.Classification
	// Runner executes golden runs, profiling runs, and experiments.
	Runner = campaign.Runner
	// GoldenResult is a reference fault-free run.
	GoldenResult = campaign.GoldenResult
	// RunResult is one experiment's result.
	RunResult = campaign.RunResult
	// CampaignResult aggregates a whole campaign.
	CampaignResult = campaign.CampaignResult
	// TransientCampaignConfig parameterizes a transient campaign.
	TransientCampaignConfig = campaign.TransientCampaignConfig
	// Tally counts outcomes.
	Tally = campaign.Tally
	// Trace is a recorded golden trajectory with device snapshots — the
	// checkpoint-and-fork engine's record of one fault-free execution.
	Trace = cuda.Trace
	// Checkpoint is one mid-trajectory device snapshot inside a Trace.
	Checkpoint = cuda.Checkpoint
	// ReplayPlan tells a replay where to restore and when early exit applies.
	ReplayPlan = cuda.ReplayPlan

	// Context is the mini CUDA-driver context.
	Context = cuda.Context
	// Device is the simulated GPU.
	Device = gpu.Device
	// AVConfig parameterizes the real-time AV pipeline workload.
	AVConfig = av.Config
	// AVPipeline is the AV perception pipeline workload.
	AVPipeline = av.Pipeline
)

// Profiling modes.
const (
	Exact       = core.Exact
	Approximate = core.Approximate
)

// Instruction groups (Table II arch state ids 1..8).
const (
	GroupFP64   = sass.GroupFP64
	GroupFP32   = sass.GroupFP32
	GroupLD     = sass.GroupLD
	GroupPR     = sass.GroupPR
	GroupNODEST = sass.GroupNODEST
	GroupOTHERS = sass.GroupOTHERS
	GroupGPPR   = sass.GroupGPPR
	GroupGP     = sass.GroupGP
)

// Bit-flip models (Table II).
const (
	FlipSingleBit = core.FlipSingleBit
	FlipTwoBits   = core.FlipTwoBits
	RandomValue   = core.RandomValue
	ZeroValue     = core.ZeroValue
)

// Fault-model soundness capabilities.
const (
	CapPrune         = faultmodel.CapPrune
	CapClasses       = faultmodel.CapClasses
	CapCheckpoint    = faultmodel.CapCheckpoint
	CapEarlyExit     = faultmodel.CapEarlyExit
	CapCertainStrata = faultmodel.CapCertainStrata
)

// Outcome classes (Table V).
const (
	Masked = campaign.Masked
	SDC    = campaign.SDC
	DUE    = campaign.DUE
)

// Architecture families.
const (
	Kepler  = sass.FamilyKepler
	Maxwell = sass.FamilyMaxwell
	Pascal  = sass.FamilyPascal
	Volta   = sass.FamilyVolta
	Ampere  = sass.FamilyAmpere
)

// NewDevice creates a simulated GPU of the given family with numSMs
// streaming multiprocessors.
func NewDevice(family Family, numSMs int) (*Device, error) {
	return gpu.NewDevice(family, numSMs)
}

// NewContext creates a CUDA-like context on a device.
func NewContext(dev *Device) (*Context, error) { return cuda.NewContext(dev) }

// Attach connects an NVBit tool (profiler or injector) to a context — the
// LD_PRELOAD analog. The returned detach function removes it.
func Attach(ctx *Context, tool nvbit.Tool) (detach func(), err error) {
	att, err := nvbit.Attach(ctx, tool)
	if err != nil {
		return nil, err
	}
	return att.Detach, nil
}

// NewProfiler creates a profiler tool.
func NewProfiler(program string, mode ProfileMode) (*Profiler, error) {
	return core.NewProfiler(program, mode)
}

// NewTransientInjector creates a transient-fault injector for one
// experiment.
func NewTransientInjector(p TransientParams) (*TransientInjector, error) {
	return core.NewTransientInjector(p)
}

// NewPermanentInjector creates a permanent-fault injector.
func NewPermanentInjector(p PermanentParams, family Family, numSMs int) (*PermanentInjector, error) {
	return core.NewPermanentInjector(p, family, numSMs)
}

// SelectTransientFault samples one fault uniformly from a profile's dynamic
// instructions of the given group (paper Section III-A).
func SelectTransientFault(p *Profile, g Group, bf BitFlipModel, rng *rand.Rand) (*TransientParams, error) {
	return core.SelectTransientFault(p, g, bf, rng)
}

// SelectPermanentFaults enumerates one permanent fault per executed opcode.
func SelectPermanentFaults(p *Profile, family Family, numSMs int, bf BitFlipModel, rng *rand.Rand) ([]*PermanentParams, error) {
	return core.SelectPermanentFaults(p, family, numSMs, bf, rng)
}

// FaultModels lists the registered fault-model names.
func FaultModels() []string { return faultmodel.Names() }

// LookupFaultModel resolves a fault-model name; the empty string resolves to
// the default transient destination-flip model.
func LookupFaultModel(name string) (FaultModel, error) { return faultmodel.Lookup(name) }

// NewModelEnv derives the shared fault-model environment for a campaign:
// the runner's device shape, the golden kernel view, and the profile's
// opcode activity.
func NewModelEnv(r Runner, golden *GoldenResult, profile *Profile) FaultModelEnv {
	return campaign.ModelEnv(r, golden, profile)
}

// RunTransientCampaign runs an N-injection transient campaign (Figure 2
// data). Cancelling ctx aborts in-flight experiments promptly and returns
// the partial result alongside the context error.
func RunTransientCampaign(ctx context.Context, r Runner, w Workload, golden *GoldenResult,
	profile *Profile, cfg TransientCampaignConfig) (*CampaignResult, error) {
	return campaign.RunTransientCampaign(ctx, r, w, golden, profile, cfg)
}

// RunPermanentCampaign runs one permanent fault per executed opcode with
// dynamic-instruction weighting (Figure 3 data).
func RunPermanentCampaign(ctx context.Context, r Runner, w Workload, golden *GoldenResult,
	profile *Profile, bf BitFlipModel, seed int64, parallel int) (*CampaignResult, error) {
	return campaign.RunPermanentCampaign(ctx, r, w, golden, profile, bf, seed, parallel)
}

// SpecACCEL returns the 15 SpecACCEL benchmark analogs (Table IV).
func SpecACCEL() []Workload { return specaccel.All() }

// SpecACCELProgram finds one SpecACCEL analog by name, e.g. "303.ostencil".
func SpecACCELProgram(name string) (Workload, error) { return specaccel.ByName(name) }

// SpecACCELNames lists the benchmark names in Table IV order.
func SpecACCELNames() []string { return specaccel.Names() }

// SpecACCELInfo is one benchmark's Table IV row (paper and scaled kernel
// counts).
type SpecACCELInfo = specaccel.Info

// SpecACCELInfos returns every benchmark's Table IV row.
func SpecACCELInfos() []SpecACCELInfo {
	progs := specaccel.All()
	infos := make([]SpecACCELInfo, len(progs))
	for i, p := range progs {
		infos[i] = p.(*specaccel.Program).Info()
	}
	return infos
}

// NewAVPipeline builds the real-time AV perception workload (Section IV's
// motivating application).
func NewAVPipeline(cfg AVConfig) *AVPipeline { return av.New(cfg) }

// OpcodeCount returns the size of a family's opcode set; for Volta it is
// 171, as the paper states.
func OpcodeCount(f Family) int { return sass.OpcodeCount(f) }

// MarginOfError returns the worst-case error margin for an outcome
// proportion estimated from n injections (paper: 100 injections → 90%
// confidence ±8%; 1000 → 95% ±3%).
func MarginOfError(n int, confidence float64) (float64, error) {
	return stats.MarginOfError(n, confidence)
}
