// Ablation benchmarks for the design choices the paper credits for
// NVBitFI's performance (Section II "Discussion" and Section V):
//
//   - selective dynamic instrumentation (only the target dynamic kernel)
//     versus compile-time whole-program instrumentation;
//   - JIT caching of instrumented kernels versus rebuilding per launch.
package nvbitfi_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/nvbit"
	"repro/internal/sass"
)

// BenchmarkAblation_SelectiveInstrumentation compares the same fault
// injected through NVBitFI's selective dynamic mechanism and through the
// compile-time whole-program mechanism (staticfi). The fault, corruption,
// and outcome are identical; only the instrumentation scope differs.
func BenchmarkAblation_SelectiveInstrumentation(b *testing.B) {
	w, err := nvbitfi.SpecACCELProgram("303.ostencil")
	if err != nil {
		b.Fatal(err)
	}
	golden := state.goldenFor(b, w)
	profile, _ := state.profileFor(b, w, nvbitfi.Exact)
	params, err := core.SelectTransientFault(profile, sass.GroupGPPR, core.FlipSingleBit,
		rand.New(rand.NewSource(42)))
	if err != nil {
		b.Fatal(err)
	}

	for i := 0; i < b.N; i++ {
		// Selective (NVBitFI): only the target dynamic kernel instance is
		// instrumented.
		selRes, err := state.runner.RunTransient(context.Background(), w, golden, *params)
		if err != nil {
			b.Fatal(err)
		}
		// Whole-program (SASSIFI-style): every instruction of every kernel
		// carries the check on every launch.
		dev, err := nvbitfi.NewDevice(nvbitfi.Volta, 8)
		if err != nil {
			b.Fatal(err)
		}
		ctx, err := nvbitfi.NewContext(dev)
		if err != nil {
			b.Fatal(err)
		}
		ctx.SetDefaultBudget(1 << 30)
		st, err := baseline.AttachStaticFI(ctx, *params)
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		if _, err := w.Run(ctx); err != nil {
			b.Fatal(err)
		}
		staticDur := time.Since(start)
		st.Detach()

		if st.Record() != selRes.Injection {
			b.Fatalf("mechanisms disagree on the fault:\nselective: %+v\nstatic: %+v",
				selRes.Injection, st.Record())
		}
		native := state.nativeDur[w.Name()]
		printOnce(i, "\nAblation — selective vs whole-program instrumentation (same fault, 303.ostencil)\n")
		printOnce(i, "native            %10v\n", native.Round(time.Millisecond))
		printOnce(i, "selective (NVBitFI) %8v  (%.1fx native)\n",
			selRes.Duration.Round(time.Millisecond), ratio(selRes.Duration, native))
		printOnce(i, "whole-program     %10v  (%.1fx native, %.1fx selective)\n",
			staticDur.Round(time.Millisecond), ratio(staticDur, native),
			ratio(staticDur, selRes.Duration))
	}
}

// BenchmarkAblation_JITCache measures what kernel-instrumentation caching
// saves: the same profiling tool run with a stable cache key (one JIT build
// per static kernel) versus a cache-defeating key (one build per dynamic
// launch).
func BenchmarkAblation_JITCache(b *testing.B) {
	w, err := nvbitfi.SpecACCELProgram("360.ilbdc") // one kernel, 100 launches
	if err != nil {
		b.Fatal(err)
	}
	run := func(defeatCache bool) (time.Duration, int) {
		dev, err := nvbitfi.NewDevice(nvbitfi.Volta, 8)
		if err != nil {
			b.Fatal(err)
		}
		ctx, err := nvbitfi.NewContext(dev)
		if err != nil {
			b.Fatal(err)
		}
		ctx.SetDefaultBudget(1 << 32)
		tool := &cacheAblationTool{defeatCache: defeatCache}
		att, err := nvbit.Attach(ctx, tool)
		if err != nil {
			b.Fatal(err)
		}
		defer att.Detach()
		start := time.Now()
		if _, err := w.Run(ctx); err != nil {
			b.Fatal(err)
		}
		return time.Since(start), att.JITBuilds()
	}
	for i := 0; i < b.N; i++ {
		cachedDur, cachedBuilds := run(false)
		uncachedDur, uncachedBuilds := run(true)
		printOnce(i, "\nAblation — JIT instrumentation cache (360.ilbdc, every launch instrumented)\n")
		printOnce(i, "cached:   %4d builds, %v\n", cachedBuilds, cachedDur.Round(time.Millisecond))
		printOnce(i, "uncached: %4d builds, %v (%.2fx)\n",
			uncachedBuilds, uncachedDur.Round(time.Millisecond), ratio(uncachedDur, cachedDur))
		printOnce(i, "(the cache bounds builds at one per static kernel; in this simulator a build is\n")
		printOnce(i, " cheap, so the benefit is structural — on real hardware each build is a driver JIT)\n")
		if cachedBuilds >= uncachedBuilds {
			b.Fatalf("cache had no effect: %d vs %d builds", cachedBuilds, uncachedBuilds)
		}
	}
}

// cacheAblationTool instruments every launch with a trivial callback,
// optionally defeating the JIT cache with per-launch keys.
type cacheAblationTool struct {
	defeatCache bool
	n           int
}

var _ nvbit.Tool = (*cacheAblationTool)(nil)

func (c *cacheAblationTool) Name() string { return "cache-ablation" }

func (c *cacheAblationTool) OnLaunch(*nvbit.LaunchInfo) nvbit.Decision {
	c.n++
	key := "stable"
	if c.defeatCache {
		key = fmt.Sprintf("launch-%d", c.n)
	}
	return nvbit.Decision{Instrument: true, Key: key}
}

func (c *cacheAblationTool) Instrument(k *sass.Kernel, _ string, ins *nvbit.Inserter) {
	for i := range ins.Instrs() {
		ins.InsertBefore(i, func(*gpu.InstrCtx) {})
	}
}

func (c *cacheAblationTool) OnLaunchDone(*nvbit.LaunchInfo, gpu.LaunchStats, *gpu.Trap, bool) {}
