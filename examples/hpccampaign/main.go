// HPC campaign: a scaled-down version of the paper's Section IV
// evaluation — transient-fault campaigns over SpecACCEL programs with both
// exact and approximate profiling (Figure 2), plus a permanent campaign
// over each program's executed opcodes (Figure 3), with confidence margins.
//
// Run with: go run ./examples/hpccampaign [-n 30] [-programs 303.ostencil,314.omriq]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	log.SetFlags(0)
	n := flag.Int("n", 30, "transient injections per program per mode")
	progList := flag.String("programs", "303.ostencil,314.omriq,352.ep",
		"comma-separated program names, or 'all'")
	flag.Parse()

	var programs []nvbitfi.Workload
	if *progList == "all" {
		programs = nvbitfi.SpecACCEL()
	} else {
		for _, name := range strings.Split(*progList, ",") {
			w, err := nvbitfi.SpecACCELProgram(strings.TrimSpace(name))
			if err != nil {
				log.Fatal(err)
			}
			programs = append(programs, w)
		}
	}

	margin, err := nvbitfi.MarginOfError(*n, 0.90)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign: %d transient faults per program per profiling mode "+
		"(90%% confidence, +-%.1f%% margin)\n\n", *n, 100*margin)

	r := nvbitfi.Runner{}
	fmt.Printf("%-14s | %22s | %22s | %s\n", "Program",
		"exact SDC/DUE/Masked", "approx SDC/DUE/Masked", "permanent (weighted)")
	for _, w := range programs {
		golden, err := r.Golden(w)
		if err != nil {
			log.Fatal(err)
		}
		line := fmt.Sprintf("%-14s |", w.Name())
		var exactProfile *nvbitfi.Profile
		for _, mode := range []nvbitfi.ProfileMode{nvbitfi.Exact, nvbitfi.Approximate} {
			profile, _, err := r.Profile(w, mode)
			if err != nil {
				log.Fatal(err)
			}
			if mode == nvbitfi.Exact {
				exactProfile = profile
			}
			res, err := nvbitfi.RunTransientCampaign(context.Background(), r, w, golden, profile,
				nvbitfi.TransientCampaignConfig{Injections: *n, Seed: int64(mode)})
			if err != nil {
				log.Fatal(err)
			}
			t := res.Tally
			line += fmt.Sprintf(" %5.1f /%5.1f /%5.1f  |",
				100*t.Fraction(nvbitfi.SDC), 100*t.Fraction(nvbitfi.DUE),
				100*t.Fraction(nvbitfi.Masked))
		}
		perm, err := nvbitfi.RunPermanentCampaign(context.Background(), r, w, golden, exactProfile,
			nvbitfi.RandomValue, 7, 1)
		if err != nil {
			log.Fatal(err)
		}
		line += fmt.Sprintf(" %4.1f /%4.1f /%4.1f over %d opcodes",
			100*perm.Weighted.Share("SDC"), 100*perm.Weighted.Share("DUE"),
			100*perm.Weighted.Share("Masked"), len(perm.Runs))
		fmt.Println(line)
	}
}
