// Cross-architecture: the paper's third headline claim — "a single
// interface that works on all recent NVIDIA architecture families" — as a
// demo. The same workload and the same fault coordinates run on all five
// simulated families (Kepler → Ampere). Each family compiles the modules
// to its own machine-code format (different instruction widths, control
// words, and opcode numbering); the NVBit layer decodes each back to the
// one abstract view, so outputs and injection outcomes match bit for bit.
//
// Run with: go run ./examples/crossarch
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/sass"
	"repro/internal/sass/encoding"
)

func main() {
	log.SetFlags(0)
	w, err := nvbitfi.SpecACCELProgram("314.omriq")
	if err != nil {
		log.Fatal(err)
	}

	// One fault, chosen once from a Volta profile, replayed everywhere.
	rv := nvbitfi.Runner{Family: nvbitfi.Volta}
	profile, _, err := rv.Profile(w, nvbitfi.Exact)
	if err != nil {
		log.Fatal(err)
	}
	params, err := nvbitfi.SelectTransientFault(profile, nvbitfi.GroupGP,
		nvbitfi.FlipSingleBit, rand.New(rand.NewSource(3)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault: %s launch %d instruction %d\n\n",
		params.KernelName, params.KernelCount, params.InstrCount)

	// Show that the machine code genuinely differs per family.
	prog := sass.MustAssemble("probe", `
.kernel probe
    S2R R0, SR_TID.X
    IMAD R1, R0, R0, R0
    EXIT
`)
	fmt.Printf("%-9s %12s %14s %16s %s\n",
		"family", "opcodes", "binary bytes", "outcome", "checksum line")
	var refOut string
	for _, fam := range []nvbitfi.Family{
		nvbitfi.Kepler, nvbitfi.Maxwell, nvbitfi.Pascal, nvbitfi.Volta, nvbitfi.Ampere,
	} {
		bin, err := encoding.MustCodec(fam).EncodeProgram(prog)
		if err != nil {
			log.Fatal(err)
		}
		r := nvbitfi.Runner{Family: fam}
		golden, err := r.Golden(w)
		if err != nil {
			log.Fatal(err)
		}
		res, err := r.RunTransient(context.Background(), w, golden, *params)
		if err != nil {
			log.Fatal(err)
		}
		line := lastLine(golden.Output.Stdout)
		fmt.Printf("%-9v %12d %14d %16v %s\n",
			fam, nvbitfi.OpcodeCount(fam), len(bin), res.Class.Outcome, line)
		if refOut == "" {
			refOut = line
		} else if line != refOut {
			log.Fatalf("%v produced different golden output", fam)
		}
	}
	fmt.Println("\nsame abstract program, five machine-code formats, identical behaviour")
}

func lastLine(s string) string {
	lines := []byte(s)
	end := len(lines)
	for end > 0 && lines[end-1] == '\n' {
		end--
	}
	start := end
	for start > 0 && lines[start-1] != '\n' {
		start--
	}
	return string(lines[start:end])
}
