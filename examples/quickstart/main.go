// Quickstart: the paper's Figure 1 flow, end to end, on one program.
//
//  1. Profile the target to enumerate its dynamic instructions.
//  2. Select one fault uniformly at random from the profile.
//  3. Run the target with the injector attached; the fault corrupts the
//     destination register of the selected dynamic instruction.
//  4. Compare against the golden output and classify the outcome.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	log.SetFlags(0)
	w, err := nvbitfi.SpecACCELProgram("303.ostencil")
	if err != nil {
		log.Fatal(err)
	}
	r := nvbitfi.Runner{} // defaults: Volta-class device, 8 SMs

	// Golden reference run.
	golden, err := r.Golden(w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("golden run: %d thread-level instructions, stdout:\n%s\n",
		golden.Stats.ThreadInstrs, golden.Output.Stdout)

	// Step 1: profile (exact mode counts every dynamic instruction).
	profile, profDur, err := r.Profile(w, nvbitfi.Exact)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profile: %d static kernels, %d dynamic kernels, %d injectable GPPR instructions (took %v)\n\n",
		len(profile.StaticKernels()), profile.DynamicKernels(),
		profile.TotalInstrs(nvbitfi.GroupGPPR), profDur.Round(1000000))

	// Steps 2-4, five times with different seeds.
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		params, err := nvbitfi.SelectTransientFault(profile, nvbitfi.GroupGPPR, nvbitfi.FlipSingleBit, rng)
		if err != nil {
			log.Fatal(err)
		}
		res, err := r.RunTransient(context.Background(), w, golden, *params)
		if err != nil {
			log.Fatal(err)
		}
		rec := res.Injection
		fmt.Printf("seed %d: kernel=%s launch=%d instr#%d (%v) lane=%d %s 0x%08x->0x%08x => %v\n",
			seed, params.KernelName, params.KernelCount, params.InstrCount,
			rec.Opcode, rec.Lane, rec.Target, rec.Before, rec.After, res.Class)
	}
}
