// Permanent and intermittent faults: the Table III model and the paper's
// Section V extensions. A permanent fault corrupts the destination
// register(s) of every dynamic instance of one opcode executing on one
// SM and lane; an intermittent fault gates those activations with a random
// or bursty process; a fault dictionary specializes the corruption per
// opcode (here: a stuck-at-zero low byte on FADD results).
//
// Run with: go run ./examples/permanent
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/sass"
)

func main() {
	log.SetFlags(0)
	w, err := nvbitfi.SpecACCELProgram("303.ostencil")
	if err != nil {
		log.Fatal(err)
	}
	r := nvbitfi.Runner{}
	golden, err := r.Golden(w)
	if err != nil {
		log.Fatal(err)
	}
	profile, _, err := r.Profile(w, nvbitfi.Approximate)
	if err != nil {
		log.Fatal(err)
	}

	// Enumerate one fault per executed opcode, as a permanent campaign
	// does; show the first few.
	rng := rand.New(rand.NewSource(99))
	faults, err := nvbitfi.SelectPermanentFaults(profile, nvbitfi.Volta, 8, nvbitfi.RandomValue, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s executes %d of the %d Volta opcodes\n\n",
		w.Name(), len(faults), nvbitfi.OpcodeCount(nvbitfi.Volta))

	fmt.Println("permanent faults (every activation corrupts):")
	for _, pf := range faults[:4] {
		res, err := r.RunPermanent(context.Background(), w, golden, *pf, nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  opcode %-6v SM %d lane %2d mask 0x%08x: %6d activations => %v\n",
			pf.Opcode(nvbitfi.Volta), pf.SMID, pf.Lane, pf.BitMask, res.Activations, res.Class)
	}

	// Intermittent variants of a frequently-activated fault (Section V
	// future work).
	pf := faults[1]
	fmt.Printf("\nintermittent variants of the %v fault:\n", pf.Opcode(nvbitfi.Volta))
	gates := []struct {
		name string
		gate nvbitfi.ActivationGate
	}{
		{"random p=0.5", nvbitfi.RandomGate{P: 0.5, Seed: 1}},
		{"random p=0.01", nvbitfi.RandomGate{P: 0.01, Seed: 1}},
		{"bursty 8/64", nvbitfi.BurstGate{Period: 64, BurstLen: 8}},
	}
	for _, g := range gates {
		res, err := r.RunPermanent(context.Background(), w, golden, *pf, g.gate, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s: %6d activations => %v\n", g.name, res.Activations, res.Class)
	}

	// A fault dictionary (Section V): FADD results lose their low byte.
	fadd := sass.MustOp("FADD")
	dict := nvbitfi.FaultDictionary{
		fadd: func(_ nvbitfi.Op, old uint32) uint32 { return old &^ 0xff },
	}
	var faddFault *nvbitfi.PermanentParams
	for _, f := range faults {
		if f.Opcode(nvbitfi.Volta) == fadd {
			faddFault = f
		}
	}
	if faddFault != nil {
		res, err := r.RunPermanent(context.Background(), w, golden, *faddFault, nil, dict)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nfault dictionary (FADD low byte stuck at zero): %d activations => %v\n",
			res.Activations, res.Class)
	}

	// A multi-opcode ALU fault (Section V): the same physical fault hits
	// FADD, FMUL and FFMA together.
	ids := opcodeIDs(nvbitfi.Volta, "FADD", "FMUL", "FFMA")
	multi := nvbitfi.PermanentParams{
		SMID: 1, Lane: 5, BitMask: 0x00400000,
		OpcodeID: ids[0], ExtraOpcodeIDs: ids[1:],
	}
	res, err := r.RunPermanent(context.Background(), w, golden, multi, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multi-opcode ALU fault (FADD+FMUL+FFMA, bit 22): %d activations => %v\n",
		res.Activations, res.Class)
}

func opcodeIDs(f nvbitfi.Family, names ...string) []int {
	set := sass.OpcodeSet(f)
	byOp := make(map[sass.Op]int, len(set))
	for i, op := range set {
		byOp[op] = i
	}
	ids := make([]int, len(names))
	for i, n := range names {
		ids[i] = byOp[sass.MustOp(n)]
	}
	return ids
}
