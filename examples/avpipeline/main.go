// AV pipeline: the paper's Section IV motivation — injecting faults into a
// large real-time application with dynamically loaded, closed-source GPU
// libraries. The example shows why the paper's comparison table (Table I)
// comes out the way it does:
//
//   - NVBitFI instruments the binary-only vendor detector and stays within
//     the frame deadline (dynamic, selective instrumentation);
//   - the SASSIFI-style compile-time tool cannot touch the vendor module;
//   - the GPU-Qin-style debugger tool injects, but its single-stepping
//     overhead trips the application's real-time assertion.
//
// Run with: go run ./examples/avpipeline
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/nvbit"
)

func main() {
	log.SetFlags(0)
	// A fault in the 3rd dynamic instance of the vendor library's conv1d
	// kernel — a kernel whose source this process has never seen.
	params := core.TransientParams{
		Group:           nvbitfi.GroupGP,
		BitFlip:         nvbitfi.FlipSingleBit,
		KernelName:      "conv1d",
		KernelCount:     2,
		InstrCount:      500,
		DestRegSelect:   0.3,
		BitPatternValue: 0.4,
	}
	cfg := nvbitfi.AVConfig{Frames: 6, FrameDeadline: 60 * time.Millisecond}

	fmt.Println("fault target: vendor_detector/conv1d (binary-only module), dynamic instance 3")
	fmt.Println()

	run("no tool (golden)", cfg, nil)
	run("NVBitFI injector", cfg, func(ctx *nvbitfi.Context) (func() string, func()) {
		inj, err := nvbitfi.NewTransientInjector(params)
		if err != nil {
			log.Fatal(err)
		}
		att, err := nvbit.Attach(ctx, inj)
		if err != nil {
			log.Fatal(err)
		}
		return func() string { return injected(inj.Record().Activated) }, att.Detach
	})
	run("StaticFI (SASSIFI-style)", cfg, func(ctx *nvbitfi.Context) (func() string, func()) {
		s, err := baseline.AttachStaticFI(ctx, params)
		if err != nil {
			log.Fatal(err)
		}
		return func() string {
			return injected(s.Record().Activated) + "; " + strings.Join(s.Failures(), "; ")
		}, s.Detach
	})
	run("DebuggerFI (GPU-Qin-style)", cfg, func(ctx *nvbitfi.Context) (func() string, func()) {
		d, err := baseline.AttachDebuggerFI(ctx, params)
		if err != nil {
			log.Fatal(err)
		}
		return func() string {
			return fmt.Sprintf("%s; %d debugger stops", injected(d.Record().Activated), d.Steps())
		}, d.Detach
	})
}

func injected(ok bool) string {
	if ok {
		return "fault injected"
	}
	return "fault NOT injected"
}

func run(label string, cfg nvbitfi.AVConfig, attach func(*nvbitfi.Context) (func() string, func())) {
	dev, err := nvbitfi.NewDevice(nvbitfi.Volta, 8)
	if err != nil {
		log.Fatal(err)
	}
	ctx, err := nvbitfi.NewContext(dev)
	if err != nil {
		log.Fatal(err)
	}
	ctx.SetDefaultBudget(1 << 30)

	var note func() string
	if attach != nil {
		var detach func()
		note, detach = attach(ctx)
		defer detach()
	}
	start := time.Now()
	out, err := nvbitfi.NewAVPipeline(cfg).Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	status := "all deadlines met"
	if out.ExitCode == 3 {
		status = "REAL-TIME ASSERTION TRIPPED"
	} else if out.ExitCode != 0 {
		status = fmt.Sprintf("exited %d", out.ExitCode)
	}
	fmt.Printf("%-26s %8v  %s", label, time.Since(start).Round(time.Millisecond), status)
	if note != nil {
		fmt.Printf("  (%s)", note())
	}
	fmt.Println()
}
