package nvbitfi_test

import (
	"testing"

	"repro"
)

// TestShippedWorkloadsLintClean pins the static cleanliness of every
// embedded workload: the SpecACCEL suite and the AV pipeline must produce
// zero verifier diagnostics — no errors, and no warnings either (dead
// writes, unreachable code, undefined reads). This is the same gate
// `sasslint -workloads` enforces in CI; a kernel edit that introduces a
// diagnostic fails here first.
func TestShippedWorkloadsLintClean(t *testing.T) {
	works := nvbitfi.SpecACCEL()
	works = append(works, nvbitfi.NewAVPipeline(nvbitfi.AVConfig{}))
	r := nvbitfi.Runner{}
	for _, w := range works {
		diags, err := r.LintWorkload(w)
		if err != nil {
			t.Errorf("%s: lint run failed: %v", w.Name(), err)
			continue
		}
		for _, d := range diags {
			t.Errorf("%s: %s", w.Name(), d)
		}
	}
}
