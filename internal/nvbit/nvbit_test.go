package nvbit_test

import (
	"fmt"
	"testing"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/nvbit"
	"repro/internal/sass"
	"repro/internal/sass/encoding"
)

const twoKernelSrc = `
.kernel alpha
.param outptr
    S2R R0, SR_TID.X
    SHL R1, R0, 0x2
    IADD R2, R1, c0[outptr]
    MOV R3, 0x1
    STG.32 [R2], R3
    EXIT

.kernel beta
.param outptr
    S2R R0, SR_TID.X
    SHL R1, R0, 0x2
    IADD R2, R1, c0[outptr]
    MOV R3, 0x2
    STG.32 [R2], R3
    EXIT
`

func newCtx(t *testing.T, family sass.Family) *cuda.Context {
	t.Helper()
	dev, err := gpu.NewDevice(family, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := cuda.NewContext(dev)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func cfg1() cuda.LaunchConfig {
	return cuda.LaunchConfig{Grid: gpu.Dim3{X: 1, Y: 1, Z: 1}, Block: gpu.Dim3{X: 32, Y: 1, Z: 1}}
}

// countingTool counts launches per kernel and instruments a chosen kernel
// with an execution counter.
type countingTool struct {
	target       string
	launches     []string
	indices      []int
	execs        int
	doneCount    int
	trapObserved bool
}

var _ nvbit.Tool = (*countingTool)(nil)

func (c *countingTool) Name() string { return "counter" }

func (c *countingTool) OnLaunch(info *nvbit.LaunchInfo) nvbit.Decision {
	c.launches = append(c.launches, info.Kernel.Name)
	c.indices = append(c.indices, info.LaunchIndex)
	if info.Kernel.Name == c.target {
		return nvbit.Decision{Instrument: true, Key: "count"}
	}
	return nvbit.RunOriginal
}

func (c *countingTool) Instrument(k *sass.Kernel, _ string, ins *nvbit.Inserter) {
	for i := range ins.Instrs() {
		ins.InsertAfter(i, func(ctx *gpu.InstrCtx) { c.execs += ctx.LaneCount() })
	}
}

func (c *countingTool) OnLaunchDone(_ *nvbit.LaunchInfo, _ gpu.LaunchStats, trap *gpu.Trap, _ bool) {
	c.doneCount++
	if trap != nil {
		c.trapObserved = true
	}
}

func TestInterceptionAndLaunchCounting(t *testing.T) {
	ctx := newCtx(t, sass.FamilyVolta)
	tool := &countingTool{target: "beta"}
	att, err := nvbit.Attach(ctx, tool)
	if err != nil {
		t.Fatal(err)
	}
	defer att.Detach()

	mod, err := ctx.LoadModule("m", twoKernelSrc)
	if err != nil {
		t.Fatal(err)
	}
	alpha, err := mod.Function("alpha")
	if err != nil {
		t.Fatal(err)
	}
	beta, err := mod.Function("beta")
	if err != nil {
		t.Fatal(err)
	}
	out, err := ctx.Malloc(4 * 32)
	if err != nil {
		t.Fatal(err)
	}
	// Launch pattern: alpha, beta, alpha, beta, beta.
	for _, f := range []*cuda.Function{alpha, beta, alpha, beta, beta} {
		if err := ctx.Launch(f, cfg1(), out); err != nil {
			t.Fatal(err)
		}
	}

	wantNames := []string{"alpha", "beta", "alpha", "beta", "beta"}
	wantIdx := []int{0, 0, 1, 1, 2}
	for i := range wantNames {
		if tool.launches[i] != wantNames[i] || tool.indices[i] != wantIdx[i] {
			t.Fatalf("launch %d = %s/%d, want %s/%d",
				i, tool.launches[i], tool.indices[i], wantNames[i], wantIdx[i])
		}
	}
	if tool.doneCount != 5 {
		t.Fatalf("done callbacks = %d", tool.doneCount)
	}
	if att.TotalLaunches() != 5 || att.InstrumentedLaunches() != 3 {
		t.Fatalf("attachment stats: total=%d instrumented=%d",
			att.TotalLaunches(), att.InstrumentedLaunches())
	}
	// JIT caching: three instrumented launches of beta share one build.
	if att.JITBuilds() != 1 {
		t.Fatalf("JIT builds = %d, want 1 (cached)", att.JITBuilds())
	}
	// beta has 6 instructions x 32 lanes x 3 launches.
	if tool.execs != 6*32*3 {
		t.Fatalf("instrumented executions = %d, want %d", tool.execs, 6*32*3)
	}
}

// TestSelectiveInstrumentationPreservesOutput: instrumented and original
// launches compute the same results.
func TestSelectiveInstrumentationPreservesOutput(t *testing.T) {
	ctx := newCtx(t, sass.FamilyVolta)
	tool := &countingTool{target: "alpha"}
	att, err := nvbit.Attach(ctx, tool)
	if err != nil {
		t.Fatal(err)
	}
	defer att.Detach()
	mod, err := ctx.LoadModule("m", twoKernelSrc)
	if err != nil {
		t.Fatal(err)
	}
	alpha, err := mod.Function("alpha")
	if err != nil {
		t.Fatal(err)
	}
	out, err := ctx.Malloc(4 * 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Launch(alpha, cfg1(), out); err != nil {
		t.Fatal(err)
	}
	b, err := ctx.MemcpyDtoH(out, 4*32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if b[4*i] != 1 {
			t.Fatalf("instrumented alpha wrote %d at %d", b[4*i], i)
		}
	}
}

// TestDecodeFromBinaryOnEveryFamily: the attachment decodes machine code —
// not source — into the instruction view, for every architecture family.
// This is the architectural-abstraction claim as a test.
func TestDecodeFromBinaryOnEveryFamily(t *testing.T) {
	prog := sass.MustAssemble("closed", twoKernelSrc)
	for _, fam := range sass.Families() {
		fam := fam
		t.Run(fam.String(), func(t *testing.T) {
			bin, err := encoding.MustCodec(fam).EncodeProgram(prog)
			if err != nil {
				t.Fatal(err)
			}
			ctx := newCtx(t, fam)
			tool := &countingTool{target: "alpha"}
			att, err := nvbit.Attach(ctx, tool)
			if err != nil {
				t.Fatal(err)
			}
			defer att.Detach()

			mod, err := ctx.LoadModuleBinary(bin) // no source anywhere
			if err != nil {
				t.Fatal(err)
			}
			alpha, err := mod.Function("alpha")
			if err != nil {
				t.Fatal(err)
			}
			out, err := ctx.Malloc(4 * 32)
			if err != nil {
				t.Fatal(err)
			}
			if err := ctx.Launch(alpha, cfg1(), out); err != nil {
				t.Fatal(err)
			}
			if tool.execs != 6*32 {
				t.Fatalf("instrumented executions = %d on %v", tool.execs, fam)
			}
			b, err := ctx.MemcpyDtoH(out, 4)
			if err != nil {
				t.Fatal(err)
			}
			if b[0] != 1 {
				t.Fatalf("decoded kernel computed wrong result on %v", fam)
			}
		})
	}
}

// TestAttachAfterModuleLoad: modules loaded before Attach are decoded at
// attach time.
func TestAttachAfterModuleLoad(t *testing.T) {
	ctx := newCtx(t, sass.FamilyVolta)
	mod, err := ctx.LoadModule("m", twoKernelSrc)
	if err != nil {
		t.Fatal(err)
	}
	tool := &countingTool{target: "alpha"}
	att, err := nvbit.Attach(ctx, tool)
	if err != nil {
		t.Fatal(err)
	}
	defer att.Detach()
	alpha, err := mod.Function("alpha")
	if err != nil {
		t.Fatal(err)
	}
	out, err := ctx.Malloc(4 * 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Launch(alpha, cfg1(), out); err != nil {
		t.Fatal(err)
	}
	if tool.execs == 0 {
		t.Fatal("pre-loaded module was not decoded at attach time")
	}
}

// TestToolObservesTrap: OnLaunchDone reports device traps to the tool.
func TestToolObservesTrap(t *testing.T) {
	ctx := newCtx(t, sass.FamilyVolta)
	tool := &countingTool{target: "none"}
	att, err := nvbit.Attach(ctx, tool)
	if err != nil {
		t.Fatal(err)
	}
	defer att.Detach()
	mod, err := ctx.LoadModule("m", `
.kernel bad
    MOV R1, 0x4
    LDG.32 R2, [R1]
    EXIT
`)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := mod.Function("bad")
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Launch(bad, cfg1()); err != nil {
		t.Fatal(err)
	}
	if !tool.trapObserved {
		t.Fatal("tool did not observe the device trap")
	}
}

// TestDistinctKeysBuildSeparately: different decision keys produce
// different cached builds.
func TestDistinctKeysBuildSeparately(t *testing.T) {
	ctx := newCtx(t, sass.FamilyVolta)
	tool := &keyedTool{}
	att, err := nvbit.Attach(ctx, tool)
	if err != nil {
		t.Fatal(err)
	}
	defer att.Detach()
	mod, err := ctx.LoadModule("m", twoKernelSrc)
	if err != nil {
		t.Fatal(err)
	}
	alpha, err := mod.Function("alpha")
	if err != nil {
		t.Fatal(err)
	}
	out, err := ctx.Malloc(4 * 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := ctx.Launch(alpha, cfg1(), out); err != nil {
			t.Fatal(err)
		}
	}
	// Keys alternate a/b: two distinct builds, both cached on reuse.
	if att.JITBuilds() != 2 {
		t.Fatalf("JIT builds = %d, want 2", att.JITBuilds())
	}
}

type keyedTool struct {
	n int
}

func (k *keyedTool) Name() string { return "keyed" }

func (k *keyedTool) OnLaunch(*nvbit.LaunchInfo) nvbit.Decision {
	k.n++
	return nvbit.Decision{Instrument: true, Key: fmt.Sprintf("key-%d", k.n%2)}
}

func (k *keyedTool) Instrument(kernel *sass.Kernel, _ string, ins *nvbit.Inserter) {
	ins.InsertBefore(0, func(*gpu.InstrCtx) {})
}

func (k *keyedTool) OnLaunchDone(*nvbit.LaunchInfo, gpu.LaunchStats, *gpu.Trap, bool) {}
