package nvbit_test

import (
	"strings"
	"testing"

	"repro/internal/nvbit"
	"repro/internal/sass"
)

// deadWriteSrc is valid but carries dead-write warnings.
const deadWriteSrc = `
.kernel warns
    S2R R0, SR_TID.X
    MOV R10, RZ
    EXIT
`

// spanErrSrc fails verification: LDG.128 into R252 spans R252..RZ.
const spanErrSrc = `
.kernel badspan
    MOV R0, 0x0
    LDG.128 R252, [R0]
    EXIT
`

// TestAttachWithVerifyCollectsWarnings: WithVerify lints every decoded
// module and exposes the findings without blocking warning-only modules.
func TestAttachWithVerifyCollectsWarnings(t *testing.T) {
	ctx := newCtx(t, sass.FamilyVolta)
	if _, err := ctx.LoadModule("m", deadWriteSrc); err != nil {
		t.Fatal(err)
	}
	att, err := nvbit.Attach(ctx, &countingTool{}, nvbit.WithVerify())
	if err != nil {
		t.Fatalf("attach with warning-only module failed: %v", err)
	}
	defer att.Detach()
	if att.VerifyWarnings() == 0 {
		t.Fatal("WithVerify found no warnings in a dead-write module")
	}
	if len(att.VerifyDiagnostics()) != att.VerifyWarnings() {
		t.Fatalf("diagnostics %d != warnings %d on an error-free module",
			len(att.VerifyDiagnostics()), att.VerifyWarnings())
	}
}

// TestAttachWithVerifyRejectsErrors: a module with verification errors
// fails the attach; without WithVerify the same context attaches fine.
func TestAttachWithVerifyRejectsErrors(t *testing.T) {
	ctx := newCtx(t, sass.FamilyVolta)
	if _, err := ctx.LoadModule("m", spanErrSrc); err != nil {
		t.Fatal(err)
	}
	_, err := nvbit.Attach(ctx, &countingTool{}, nvbit.WithVerify())
	if err == nil {
		t.Fatal("attach accepted a module that fails verification")
	}
	if !strings.Contains(err.Error(), "failed verification") {
		t.Fatalf("error does not name verification: %v", err)
	}
	att, err := nvbit.Attach(ctx, &countingTool{})
	if err != nil {
		t.Fatalf("attach without verify rejected the module: %v", err)
	}
	att.Detach()
}
