// Package nvbit is the dynamic binary instrumentation framework analog:
// the layer NVBitFI is built on. It attaches to a CUDA context (the
// LD_PRELOAD analog), intercepts every dynamic kernel launch, decodes the
// module's *machine code* into the abstract instruction view — never
// touching source — and lets a tool insert instrumentation callbacks
// before or after individual instructions. Instrumented kernels are built
// once per (kernel, tool-config) and cached, so repeat launches reuse the
// JIT-compiled version; launches the tool does not target run the original,
// unmodified kernel with zero added dispatch cost.
//
// Those three properties — no source required, per-dynamic-kernel
// selectivity, and a single abstract view over all architecture families'
// encodings — are exactly the advantages the paper claims for NVBitFI over
// SASSIFI, LLFI-GPU, GPU-Qin, and Hauberk.
package nvbit

import (
	"fmt"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/modcache"
	"repro/internal/sass"
	"repro/internal/sass/encoding"
	"repro/internal/sassan"
)

// LaunchInfo describes one dynamic kernel launch to the tool.
type LaunchInfo struct {
	// Kernel is the decoded kernel (from machine code, not source).
	Kernel *sass.Kernel
	// Module is the name of the module the kernel lives in.
	Module string
	// LaunchIndex is the 0-based dynamic instance count of this kernel
	// name — the paper's "kernel count".
	LaunchIndex int
	// GlobalLaunch is the 0-based index across all kernels.
	GlobalLaunch int
	// Config is the launch shape.
	Config cuda.LaunchConfig
}

// Decision is the tool's per-launch instrumentation choice.
type Decision struct {
	// Instrument selects whether this dynamic launch runs instrumented.
	Instrument bool
	// Key names the instrumentation configuration; cached instrumented
	// kernels are reused per (module, kernel, key).
	Key string
}

// RunOriginal is the decision to run the unmodified kernel.
var RunOriginal = Decision{}

// Tool is an NVBit tool: a profiler or injector.
type Tool interface {
	// Name identifies the tool in diagnostics.
	Name() string
	// OnLaunch is invoked before every dynamic kernel launch; the returned
	// decision selects original or instrumented execution.
	OnLaunch(info *LaunchInfo) Decision
	// Instrument is invoked once per (kernel, decision key) cache miss to
	// build the instrumentation. The callbacks it inserts run on every
	// dynamic execution of the chosen instructions.
	Instrument(k *sass.Kernel, key string, ins *Inserter)
	// OnLaunchDone is invoked after the launch finishes, with execution
	// statistics and the device trap if one occurred. skipped means the
	// launch never ran because the context was already poisoned.
	OnLaunchDone(info *LaunchInfo, stats gpu.LaunchStats, trap *gpu.Trap, skipped bool)
}

// Inserter collects instrumentation insertions for one kernel build.
type Inserter struct {
	k      *sass.Kernel
	before [][]gpu.Callback
	after  [][]gpu.Callback
	step   gpu.Callback
}

// InsertBefore attaches a callback that runs before instruction idx on
// every dynamic execution.
func (ins *Inserter) InsertBefore(idx int, cb gpu.Callback) {
	if ins.before == nil {
		ins.before = make([][]gpu.Callback, len(ins.k.Instrs))
	}
	ins.before[idx] = append(ins.before[idx], cb)
}

// InsertAfter attaches a callback that runs after instruction idx, with
// destination registers already written — the injection point for
// destination-register fault models.
func (ins *Inserter) InsertAfter(idx int, cb gpu.Callback) {
	if ins.after == nil {
		ins.after = make([][]gpu.Callback, len(ins.k.Instrs))
	}
	ins.after[idx] = append(ins.after[idx], cb)
}

// SetStep installs a single-step hook that runs after every instruction,
// the mechanism a debugger-based tool (GPU-Qin analog) uses.
func (ins *Inserter) SetStep(cb gpu.Callback) { ins.step = cb }

// Instrs returns the kernel's instructions for inspection.
func (ins *Inserter) Instrs() []sass.Instr { return ins.k.Instrs }

// Attachment is an attached tool; Detach removes it.
type Attachment struct {
	ctx    *cuda.Context
	tool   Tool
	unsub  func()
	codec  *encoding.Codec
	funcs  map[*cuda.Function]*sass.Kernel // decoded view per function
	counts map[string]int                  // dynamic launch count per kernel name
	global int
	cache  map[cacheKey]*gpu.ExecKernel
	live   map[*cuda.Function]*LaunchInfo // in-flight launches

	// Stats for overhead accounting.
	totalLaunches        int
	instrumentedLaunches int
	jitBuilds            int
	moduleDecodeHits     int
	moduleDecodeBuilds   int

	// Static verification of decoded modules (WithVerify).
	verify      bool
	verifyDiags []sassan.Diagnostic
}

// Option configures an attachment.
type Option func(*Attachment)

// WithVerify makes the attachment run the sassan static verifier over every
// module it decodes — the decoded machine-code view, not source, so it
// covers binary-only modules the assembler never checked. A module whose
// verification produces errors fails the attach (or, for modules loaded
// while attached, fails the load by panicking like a decode failure);
// warnings are accumulated and readable via VerifyDiagnostics.
func WithVerify() Option {
	return func(a *Attachment) { a.verify = true }
}

type cacheKey struct {
	k   *sass.Kernel
	key string
}

// Attach connects a tool to the context — the analog of starting the
// target program with LD_PRELOAD=<tool>.so. Modules already loaded are
// decoded immediately; future module loads are decoded as they arrive.
func Attach(ctx *cuda.Context, tool Tool, opts ...Option) (*Attachment, error) {
	codec, err := modcache.Shared.Codec(ctx.Device().Family)
	if err != nil {
		return nil, fmt.Errorf("nvbit: %w", err)
	}
	a := &Attachment{
		ctx:    ctx,
		tool:   tool,
		codec:  codec,
		funcs:  make(map[*cuda.Function]*sass.Kernel),
		counts: make(map[string]int),
		cache:  make(map[cacheKey]*gpu.ExecKernel),
		live:   make(map[*cuda.Function]*LaunchInfo),
	}
	for _, o := range opts {
		o(a)
	}
	for _, m := range ctx.Modules() {
		if err := a.decodeModule(m); err != nil {
			return nil, err
		}
	}
	a.unsub = ctx.Subscribe(a)
	return a, nil
}

// Detach removes the tool from the context.
func (a *Attachment) Detach() {
	if a.unsub != nil {
		a.unsub()
		a.unsub = nil
	}
}

// TotalLaunches returns the number of launches observed.
func (a *Attachment) TotalLaunches() int { return a.totalLaunches }

// InstrumentedLaunches returns how many launches ran instrumented code.
func (a *Attachment) InstrumentedLaunches() int { return a.instrumentedLaunches }

// JITBuilds returns how many instrumented kernels were built (cache misses).
func (a *Attachment) JITBuilds() int { return a.jitBuilds }

// ModuleDecodeHits returns how many module decodes were served from the
// shared module cache — for a campaign's Nth experiment, all of them.
func (a *Attachment) ModuleDecodeHits() int { return a.moduleDecodeHits }

// ModuleDecodeBuilds returns how many module decodes actually ran the
// decoder (shared-cache misses).
func (a *Attachment) ModuleDecodeBuilds() int { return a.moduleDecodeBuilds }

// decodeModule decodes a module's machine code into abstract kernels. This
// is where the per-family encoding abstraction pays off: the tool above
// never sees family-specific bits. Decodes are memoized in the shared
// module cache, so attachments across a campaign's contexts share one
// read-only decoded view per distinct binary.
func (a *Attachment) decodeModule(m *cuda.Module) error {
	prog, hit, err := modcache.Shared.Decode(m.Family(), m.Binary())
	if err != nil {
		return fmt.Errorf("nvbit: decoding module %q: %w", m.Name(), err)
	}
	if hit {
		a.moduleDecodeHits++
	} else {
		a.moduleDecodeBuilds++
	}
	if a.verify {
		diags := sassan.VerifyProgram(prog)
		a.verifyDiags = append(a.verifyDiags, diags...)
		if sassan.HasErrors(diags) {
			for _, d := range diags {
				if d.Sev == sassan.SevError {
					return fmt.Errorf("nvbit: module %q failed verification: %s", m.Name(), d)
				}
			}
		}
	}
	for _, k := range prog.Kernels {
		f, err := m.Function(k.Name)
		if err != nil {
			return fmt.Errorf("nvbit: module %q: %w", m.Name(), err)
		}
		a.funcs[f] = k
	}
	return nil
}

// VerifyDiagnostics returns the diagnostics accumulated by WithVerify
// across every module this attachment decoded.
func (a *Attachment) VerifyDiagnostics() []sassan.Diagnostic {
	return append([]sassan.Diagnostic(nil), a.verifyDiags...)
}

// VerifyWarnings returns how many of the accumulated diagnostics are
// warnings.
func (a *Attachment) VerifyWarnings() int { return sassan.CountWarnings(a.verifyDiags) }

// OnModuleLoad implements cuda.Subscriber.
func (a *Attachment) OnModuleLoad(m *cuda.Module) {
	// A decode failure would mean corrupted machine code; surface it on the
	// device log rather than swallowing it.
	if err := a.decodeModule(m); err != nil {
		panic(err)
	}
}

// OnLaunchBegin implements cuda.Subscriber: the interception point.
func (a *Attachment) OnLaunchBegin(ev *cuda.LaunchEvent) {
	decoded, ok := a.funcs[ev.Function]
	if !ok {
		return
	}
	name := ev.Function.Name()
	info := &LaunchInfo{
		Kernel:       decoded,
		Module:       ev.Function.Module().Name(),
		LaunchIndex:  a.counts[name],
		GlobalLaunch: a.global,
		Config:       ev.Config,
	}
	a.counts[name]++
	a.global++
	a.totalLaunches++
	a.live[ev.Function] = info

	dec := a.tool.OnLaunch(info)
	if !dec.Instrument {
		return
	}
	a.instrumentedLaunches++
	ck := cacheKey{k: decoded, key: dec.Key}
	ek, ok := a.cache[ck]
	if !ok {
		ins := &Inserter{k: decoded}
		a.tool.Instrument(decoded, dec.Key, ins)
		ek = &gpu.ExecKernel{
			K:      decoded,
			Before: ins.before,
			After:  ins.after,
			Step:   ins.step,
		}
		a.cache[ck] = ek
		a.jitBuilds++
	}
	ev.Exec = ek
}

// OnLaunchEnd implements cuda.Subscriber.
func (a *Attachment) OnLaunchEnd(ev *cuda.LaunchEvent) {
	info := a.live[ev.Function]
	if info == nil {
		if ev.Skipped {
			a.tool.OnLaunchDone(&LaunchInfo{
				Kernel: ev.Function.Kernel(),
				Module: ev.Function.Module().Name(),
			}, ev.Stats, ev.Trap, true)
		}
		return
	}
	delete(a.live, ev.Function)
	a.tool.OnLaunchDone(info, ev.Stats, ev.Trap, ev.Skipped)
}
