package report_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sass"
	"repro/internal/specaccel"
	"repro/internal/stats"
)

func miniCampaign(t *testing.T) (*campaign.CampaignResult, *campaign.CampaignResult) {
	t.Helper()
	w, err := specaccel.ByName("314.omriq")
	if err != nil {
		t.Fatal(err)
	}
	r := campaign.Runner{}
	golden, err := r.Golden(w)
	if err != nil {
		t.Fatal(err)
	}
	profile, _, err := r.Profile(w, core.Exact)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile,
		campaign.TransientCampaignConfig{Injections: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	pf, err := campaign.RunPermanentCampaign(context.Background(), r, w, golden, profile, core.RandomValue, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	return tr, pf
}

func TestWriteRunLog(t *testing.T) {
	tr, pf := miniCampaign(t)
	var sb strings.Builder
	if err := report.WriteRunLog(&sb, tr); err != nil {
		t.Fatal(err)
	}
	log := sb.String()
	if got := strings.Count(log, "\n"); got != 5 {
		t.Fatalf("run log has %d lines, want 5:\n%s", got, log)
	}
	for _, want := range []string{"outcome=", "kernel=", "before=0x", "target="} {
		if !strings.Contains(log, want) {
			t.Fatalf("run log missing %q:\n%s", want, log)
		}
	}
	sb.Reset()
	if err := report.WriteRunLog(&sb, pf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "activations=") {
		t.Fatalf("permanent run log missing activations:\n%s", sb.String())
	}
}

func TestWriteOutcomeCSV(t *testing.T) {
	tr, _ := miniCampaign(t)
	var sb strings.Builder
	if err := report.WriteOutcomeCSV(&sb, tr); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines:\n%s", len(lines), sb.String())
	}
	if !strings.HasPrefix(lines[0], "program,runs,sdc,due,masked") {
		t.Fatalf("CSV header = %q", lines[0])
	}
	fields := strings.Split(lines[1], ",")
	if fields[0] != "314.omriq" || fields[1] != "5" {
		t.Fatalf("CSV row = %q", lines[1])
	}
	// The three counts sum to the run count.
	sum := atoi(t, fields[2]) + atoi(t, fields[3]) + atoi(t, fields[4])
	if sum != 5 {
		t.Fatalf("outcome counts sum to %d", sum)
	}
}

func TestWriteWeightedCSV(t *testing.T) {
	tr, pf := miniCampaign(t)
	var sb strings.Builder
	if err := report.WriteWeightedCSV(&sb, pf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "program,opcodes,category,weighted_pct") {
		t.Fatalf("weighted CSV header missing:\n%s", sb.String())
	}
	if err := report.WriteWeightedCSV(&sb, tr); err == nil {
		t.Fatal("transient campaign accepted by WriteWeightedCSV")
	}
}

func TestSummary(t *testing.T) {
	tr, pf := miniCampaign(t)
	if s := report.Summary(tr); !strings.Contains(s, "5 runs") {
		t.Fatalf("transient summary = %q", s)
	}
	if s := report.Summary(pf); !strings.Contains(s, "opcodes") ||
		!strings.Contains(s, "weighted") {
		t.Fatalf("permanent summary = %q", s)
	}
	// Keep the stats dependency honest: shares in summaries must be
	// consistent with the weighted tally.
	var wt *stats.WeightedTally = pf.Weighted
	total := 0.0
	for _, c := range []string{"SDC", "DUE", "Masked"} {
		total += wt.Share(c)
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("weighted shares sum to %v", total)
	}
	_ = sass.GroupGP // document the group vocabulary is available to reports
}

func atoi(t *testing.T, s string) int {
	t.Helper()
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			t.Fatalf("not a number: %q", s)
		}
		n = n*10 + int(s[i]-'0')
	}
	return n
}

// TestModelAnnotation: a non-default fault model annotates both the one-line
// summary and the stable JSON document; the default model leaves both
// byte-identical to builds that predate the subsystem.
func TestModelAnnotation(t *testing.T) {
	tr, _ := miniCampaign(t)

	// The default model: no annotation anywhere.
	if s := report.Summary(tr); strings.Contains(s, "[model") {
		t.Fatalf("default summary mentions a model: %s", s)
	}
	doc := report.NewSummaryJSON(tr)
	if doc.Model != nil {
		t.Fatalf("default summary JSON carries a model block: %+v", doc.Model)
	}
	var sb strings.Builder
	if err := report.WriteSummaryJSON(&sb, tr); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), `"model"`) {
		t.Fatalf("default summary JSON encoding mentions a model: %s", sb.String())
	}

	// A model campaign: both surfaces annotate it.
	mr := *tr
	mr.Model, mr.ModelParam = "stuck", "value=0,bit=17"
	if s := report.Summary(&mr); !strings.Contains(s, "[model stuck value=0,bit=17]") {
		t.Fatalf("model summary lacks the annotation: %s", s)
	}
	doc = report.NewSummaryJSON(&mr)
	if doc.Model == nil || doc.Model.Name != "stuck" || doc.Model.Param != "value=0,bit=17" {
		t.Fatalf("model summary JSON block = %+v", doc.Model)
	}
	// Without a parameter the annotation drops the param segment.
	mr.ModelParam = ""
	if s := report.Summary(&mr); !strings.Contains(s, "[model stuck]") {
		t.Fatalf("parameterless model annotation wrong: %s", s)
	}
}
