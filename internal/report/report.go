// Package report renders campaign results into the formats a fault-
// injection study consumes: per-run logs (one line per injection, as
// NVBitFI's results files), outcome-distribution tables (the Figure 2/3
// shape), and CSV for downstream analysis.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/campaign"
)

// SummarySchema versions the stable JSON campaign summary. The tally inside
// uses campaign.TallySchema; both travel with the document so downstream
// tooling (the service API, benchmark comparisons, archived campaign runs)
// can check what it is reading.
const SummarySchema = "nvbitfi.summary/v1"

// SummaryJSON is the machine-readable campaign summary. Field order and
// encodings are stable: two identical campaigns marshal to identical bytes.
type SummaryJSON struct {
	Schema        string          `json:"schema"`
	Program       string          `json:"program"`
	Tally         *campaign.Tally `json:"tally"`
	GoldenMillis  int64           `json:"golden_ms"`
	TotalRunTime  int64           `json:"total_run_ms"`
	MedianRunTime int64           `json:"median_run_ms"`
	Translated    bool            `json:"translated"`
	// Classes summarizes class-representative sampling. Omitted entirely
	// when the campaign did not use class sampling, keeping those summaries
	// byte-identical to builds that predate the field.
	Classes *ClassSummaryJSON `json:"classes,omitempty"`
	// Statistical summarizes an adaptive campaign's stopping decision and
	// stratified estimate. Omitted entirely for fixed-count campaigns,
	// keeping those summaries byte-identical to builds that predate it.
	Statistical *StatisticalJSON `json:"statistical,omitempty"`
	// Model names the campaign's fault model. Omitted entirely for the
	// default transient destination-flip model, keeping those summaries
	// byte-identical to builds that predate the fault-model subsystem.
	Model *ModelJSON `json:"model,omitempty"`
}

// ModelJSON annotates a summary with its non-default fault model.
type ModelJSON struct {
	Name  string `json:"name"`
	Param string `json:"param,omitempty"`
}

// StatisticalJSON reports an adaptive campaign: the target and achieved
// confidence interval, where the campaign stopped, the experiments saved
// against the fixed budget, per-stratum sample composition, and the pooled
// stratified Wilson intervals per outcome.
type StatisticalJSON struct {
	TargetCI      float64 `json:"target_ci"`
	Confidence    float64 `json:"confidence"`
	Converged     bool    `json:"converged"`
	StopShard     int     `json:"stop_shard"`
	MaxInjections int     `json:"max_injections"`
	// Selected is the number of experiments consumed from the selection
	// stream (Tally.N); Executed excludes statically answered ones (pruned
	// and class-answered); Saved is the selection budget left unconsumed.
	Selected   int                 `json:"selected"`
	Executed   int                 `json:"executed"`
	Saved      int                 `json:"saved"`
	AchievedCI float64             `json:"achieved_ci"`
	Intervals  []ClassIntervalJSON `json:"intervals"`
	Strata     []StratumStatJSON   `json:"strata"`
}

// StratumStatJSON is one stratum's composition: its share of the full
// selection (weight), whether its outcome is statically certain, and the
// outcomes sampled from it.
type StratumStatJSON struct {
	Key     string `json:"key"`
	Weight  int    `json:"weight"`
	Certain bool   `json:"certain,omitempty"`
	N       int    `json:"n"`
	SDC     int    `json:"sdc,omitempty"`
	DUE     int    `json:"due,omitempty"`
	Masked  int    `json:"masked,omitempty"`
}

// ClassSummaryJSON reports a class-sampled campaign's aggregation: how many
// experiments executed as representatives, how many injections they
// answered for, the Kish effective sample size of the weighted outcome
// shares, and per-outcome confidence intervals computed at that effective
// size (one representative is one independent observation, not one per
// member — the interval honestly widens as classes grow heavy).
type ClassSummaryJSON struct {
	Reps                int                 `json:"reps"`
	Answered            int                 `json:"answered"`
	EffectiveSampleSize float64             `json:"neff"`
	Confidence          float64             `json:"confidence"`
	Intervals           []ClassIntervalJSON `json:"intervals"`
}

// ClassIntervalJSON is one outcome's weighted share with confidence bounds.
type ClassIntervalJSON struct {
	Outcome string  `json:"outcome"`
	Share   float64 `json:"share"`
	Lo      float64 `json:"lo"`
	Hi      float64 `json:"hi"`
}

// ClassConfidence is the confidence level class-sampled summaries report
// intervals at (the paper's 100-injection campaigns quote 90%).
const ClassConfidence = 0.90

// NewSummaryJSON builds the stable summary document for one campaign.
func NewSummaryJSON(res *campaign.CampaignResult) SummaryJSON {
	return SummaryJSON{
		Schema:        SummarySchema,
		Program:       res.Program,
		Tally:         res.Tally,
		GoldenMillis:  res.GoldenTime.Milliseconds(),
		TotalRunTime:  res.TotalRunTime.Milliseconds(),
		MedianRunTime: res.MedianRunTime.Milliseconds(),
		Translated:    res.Translated,
		Classes:       classSummary(res),
		Statistical:   statisticalSummary(res),
		Model:         modelSummary(res),
	}
}

// modelSummary builds the fault-model block, or nil for the default
// transient model.
func modelSummary(res *campaign.CampaignResult) *ModelJSON {
	if res.Model == "" {
		return nil
	}
	return &ModelJSON{Name: res.Model, Param: res.ModelParam}
}

// statisticalSummary builds the adaptive block, or nil when the campaign
// did not run adaptively.
func statisticalSummary(res *campaign.CampaignResult) *StatisticalJSON {
	a := res.Adaptive
	if a == nil {
		return nil
	}
	t := res.Tally
	sj := &StatisticalJSON{
		TargetCI:      a.TargetCI,
		Confidence:    a.Confidence,
		Converged:     a.Converged,
		StopShard:     a.StopShard,
		MaxInjections: a.MaxInjections,
		Selected:      t.N,
		Executed:      t.N - t.Pruned - t.ClassAnswered,
		Saved:         a.MaxInjections - t.N,
		AchievedCI:    a.AchievedCI,
	}
	pooled := campaign.AdaptivePooled(t, a.Strata)
	for _, cat := range []string{"DUE", "Masked", "SDC"} {
		iv, err := pooled.ShareCI(cat, a.Confidence)
		if err != nil {
			continue
		}
		sj.Intervals = append(sj.Intervals, ClassIntervalJSON{
			Outcome: cat, Share: iv.P, Lo: iv.Lo, Hi: iv.Hi,
		})
	}
	sampled := make(map[string]campaign.StratumTally, len(t.Strata))
	for _, s := range t.Strata {
		sampled[s.Key] = s
	}
	for _, w := range a.Strata {
		s := sampled[w.Key]
		sj.Strata = append(sj.Strata, StratumStatJSON{
			Key: w.Key, Weight: w.Count, Certain: w.Certain,
			N: s.N, SDC: s.SDC, DUE: s.DUE, Masked: s.Masked,
		})
	}
	return sj
}

// classSummary builds the class-sampling block, or nil when the campaign
// carries no class information.
func classSummary(res *campaign.CampaignResult) *ClassSummaryJSON {
	w := campaign.ClassWeighted(res.Runs)
	if w == nil {
		return nil
	}
	cs := &ClassSummaryJSON{
		Reps:                res.Tally.ClassReps,
		Answered:            res.Tally.ClassAnswered,
		EffectiveSampleSize: w.EffectiveSampleSize(),
		Confidence:          ClassConfidence,
	}
	for _, cat := range w.Categories() {
		iv, err := w.ShareCI(cat, ClassConfidence)
		if err != nil {
			continue
		}
		cs.Intervals = append(cs.Intervals, ClassIntervalJSON{
			Outcome: cat, Share: iv.P, Lo: iv.Lo, Hi: iv.Hi,
		})
	}
	return cs
}

// WriteSummaryJSON writes one stable JSON summary line per campaign — the
// format behind `nvbitfi campaign -json` and the benchmark tooling's
// campaign snapshots.
func WriteSummaryJSON(w io.Writer, results ...*campaign.CampaignResult) error {
	enc := json.NewEncoder(w)
	for _, res := range results {
		if err := enc.Encode(NewSummaryJSON(res)); err != nil {
			return err
		}
	}
	return nil
}

// WriteRunLog writes one line per injection run: the NVBitFI-style
// per-experiment log that campaigns archive.
func WriteRunLog(w io.Writer, res *campaign.CampaignResult) error {
	for i := range res.Runs {
		run := &res.Runs[i]
		rec := run.Injection
		var line string
		if run.Pruned {
			line = fmt.Sprintf("run=%d outcome=%v symptom=%q potential_due=%v "+
				"pruned=true kernel=%s instr=%d opcode=%v",
				i, run.Class.Outcome, run.Class.Symptom.String(), run.Class.PotentialDUE,
				rec.Kernel, rec.InstrIdx, rec.Opcode)
		} else if run.ClassAnswered {
			line = fmt.Sprintf("run=%d outcome=%v symptom=%q potential_due=%v "+
				"class=%s answered=true kernel=%s instr=%d opcode=%v",
				i, run.Class.Outcome, run.Class.Symptom.String(), run.Class.PotentialDUE,
				run.ClassID, rec.Kernel, rec.InstrIdx, rec.Opcode)
		} else if rec.Kernel != "" || rec.Activated {
			line = fmt.Sprintf("run=%d outcome=%v symptom=%q potential_due=%v "+
				"activated=%v kernel=%s instr=%d opcode=%v sm=%d lane=%d target=%s "+
				"before=0x%08x after=0x%08x dur=%s",
				i, run.Class.Outcome, run.Class.Symptom.String(), run.Class.PotentialDUE,
				rec.Activated, rec.Kernel, rec.InstrIdx, rec.Opcode, rec.SMID, rec.Lane,
				rec.Target, rec.Before, rec.After, run.Duration.Round(time.Millisecond))
		} else {
			line = fmt.Sprintf("run=%d outcome=%v symptom=%q potential_due=%v "+
				"activations=%d dur=%s",
				i, run.Class.Outcome, run.Class.Symptom.String(), run.Class.PotentialDUE,
				run.Activations, run.Duration.Round(time.Millisecond))
		}
		if run.ClassID != "" && !run.ClassAnswered {
			line += " class=" + run.ClassID
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// WriteOutcomeCSV writes the campaign's outcome distribution as CSV rows:
// program, runs, sdc, due, masked, potential_due, sdc_pct, due_pct,
// masked_pct.
func WriteOutcomeCSV(w io.Writer, results ...*campaign.CampaignResult) error {
	cw := csv.NewWriter(w)
	header := []string{"program", "runs", "sdc", "due", "masked",
		"potential_due", "sdc_pct", "due_pct", "masked_pct"}
	if err := cw.Write(header); err != nil {
		return err
	}
	pct := func(f float64) string { return strconv.FormatFloat(100*f, 'f', 1, 64) }
	for _, res := range results {
		t := res.Tally
		row := []string{
			res.Program,
			strconv.Itoa(t.N),
			strconv.Itoa(t.Counts[campaign.SDC]),
			strconv.Itoa(t.Counts[campaign.DUE]),
			strconv.Itoa(t.Counts[campaign.Masked]),
			strconv.Itoa(t.PotentialDUEs),
			pct(t.Fraction(campaign.SDC)),
			pct(t.Fraction(campaign.DUE)),
			pct(t.Fraction(campaign.Masked)),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteWeightedCSV writes a permanent campaign's activity-weighted shares:
// program, opcodes, then one column per category.
func WriteWeightedCSV(w io.Writer, results ...*campaign.CampaignResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"program", "opcodes", "category", "weighted_pct"}); err != nil {
		return err
	}
	for _, res := range results {
		if res.Weighted == nil {
			return fmt.Errorf("report: %s has no weighted outcomes (not a permanent campaign)", res.Program)
		}
		for _, cat := range res.Weighted.Categories() {
			row := []string{
				res.Program,
				strconv.Itoa(len(res.Runs)),
				cat,
				strconv.FormatFloat(100*res.Weighted.Share(cat), 'f', 1, 64),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Summary renders the one-line campaign summary used by the CLI.
func Summary(res *campaign.CampaignResult) string {
	t := res.Tally
	s := fmt.Sprintf("%s: %d runs, %v, potential DUEs %d, median run %v",
		res.Program, t.N, t, t.PotentialDUEs, res.MedianRunTime.Round(time.Millisecond))
	if t.Pruned > 0 {
		s += fmt.Sprintf(", %d statically pruned", t.Pruned)
	}
	if t.ClassReps > 0 || t.ClassAnswered > 0 {
		s += fmt.Sprintf(", %d class reps answered %d members", t.ClassReps, t.ClassAnswered)
		if w := campaign.ClassWeighted(res.Runs); w != nil {
			if iv, err := w.ShareCI("SDC", ClassConfidence); err == nil {
				s += fmt.Sprintf(" (weighted SDC %.1f%% [%.1f, %.1f] @%d%%, neff %.1f)",
					100*iv.P, 100*iv.Lo, 100*iv.Hi, int(100*ClassConfidence), w.EffectiveSampleSize())
			}
		}
	}
	if t.Restored > 0 {
		s += fmt.Sprintf(", %d restored from checkpoints (%d early exits)", t.Restored, t.EarlyExits)
	}
	if a := res.Adaptive; a != nil {
		if a.Converged {
			s += fmt.Sprintf(", converged at shard %d", a.StopShard)
		} else {
			s += ", not converged"
		}
		s += fmt.Sprintf(" (%d/%d selected, SDC ±%.2f%% @%d%%, target ±%.2f%%)",
			t.N, a.MaxInjections, 100*a.AchievedCI, int(100*a.Confidence), 100*a.TargetCI)
	}
	if res.Weighted != nil {
		s = fmt.Sprintf("%s: %d opcodes, weighted SDC %.1f%% DUE %.1f%% Masked %.1f%%",
			res.Program, len(res.Runs),
			100*res.Weighted.Share("SDC"), 100*res.Weighted.Share("DUE"),
			100*res.Weighted.Share("Masked"))
	}
	if res.Model != "" {
		s += " [model " + res.Model
		if res.ModelParam != "" {
			s += " " + res.ModelParam
		}
		s += "]"
	}
	if res.Translated {
		s += " [translated]"
	} else {
		s += " [interpreted]"
	}
	return s
}
