package cuda

import (
	"bytes"
	"fmt"
	"math"

	"repro/internal/gpu"
)

// This file is the driver-level half of the checkpoint-and-fork experiment
// engine. A recording context runs the workload once (the golden trajectory),
// journals every driver call with its result, and drops device snapshots at a
// fixed global warp-instruction stride. A replaying context then re-runs the
// same workload host code but:
//
//   - short-circuits every driver call before the chosen restore point,
//     feeding back the recorded results (the host code cannot tell the
//     difference, because the golden run is deterministic);
//   - restores the device snapshot mid-launch at the restore point and
//     resumes real execution there, with the experiment's instrumentation
//     attached to the in-flight launch;
//   - after the fault has fired, compares a state digest against the
//     recorded trajectory at every later checkpoint boundary, and on a match
//     declares the run re-converged: the remaining calls short-circuit to
//     the recorded results (early exit).
//
// Soundness of the early exit rests on two observations. First, the digest
// covers the full architectural state at an exact dynamic warp-instruction
// boundary, so equal digests at the same boundary mean the two executions
// are bit-identical from there on. Second, host-visible divergence before
// the match (a DtoH that returned corrupted bytes, a trap, an allocation at
// a different address, any call sequence drift) permanently disables the
// early exit — the mismatch flag — because recorded suffix results are only
// valid if the host state matches the recording too.

// callKind discriminates journaled driver calls.
type callKind uint8

const (
	callMalloc callKind = iota
	callFree
	callHtoD
	callDtoH
	callLaunch
)

func (k callKind) String() string {
	switch k {
	case callMalloc:
		return "cuMemAlloc"
	case callFree:
		return "cuMemFree"
	case callHtoD:
		return "cuMemcpyHtoD"
	case callDtoH:
		return "cuMemcpyDtoH"
	case callLaunch:
		return "cuLaunchKernel"
	}
	return "unknown"
}

// traceCall is one journaled driver call with its recorded result.
type traceCall struct {
	kind  callKind
	size  int             // malloc: requested size; memcpy: byte count
	ptr   DevPtr          // malloc: result; free/memcpy: target address
	data  []byte          // dtoh: the bytes returned
	fn    string          // launch: kernel name
	stats gpu.LaunchStats // launch: execution counts
}

// Checkpoint is one device snapshot on the golden trajectory, taken at an
// exact global warp-instruction boundary (a multiple of the stride), which
// always falls inside some launch.
type Checkpoint struct {
	Global      uint64 // global warp-instruction position across all launches
	CallIdx     int    // index of the enclosing launch in the call journal
	LaunchLocal uint64 // warp instructions into that launch
	Kernel      string // kernel name of the enclosing launch

	digest    uint64        // state digest at this boundary
	snap      *gpu.Snapshot // full architectural snapshot (COW memory)
	instrExec []uint64      // launch-local thread executions per static instruction
}

// Trace is a recorded golden trajectory: the driver-call journal, the
// checkpoints, and the end state needed to finish a replay that exits early.
type Trace struct {
	calls    []traceCall
	ckpts    []*Checkpoint
	stride   uint64
	finalLog []gpu.LogEvent
	failed   error // first recording anomaly; a failed trace is unusable
}

// Checkpoints returns the number of snapshots the trace carries.
func (t *Trace) Checkpoints() int { return len(t.ckpts) }

// Stride returns the global warp-instruction checkpoint stride.
func (t *Trace) Stride() uint64 { return t.stride }

// Calls returns the number of journaled driver calls.
func (t *Trace) Calls() int { return len(t.calls) }

// ReplayPlan tells a replaying context where to restore and when early exit
// is allowed.
type ReplayPlan struct {
	// RestoreCall is the journal index of the launch to restore into;
	// -1 runs everything live (no usable checkpoint before the fault).
	RestoreCall int
	// Ckpt is the snapshot to restore (nil iff RestoreCall < 0).
	Ckpt *Checkpoint
	// FaultCall is the journal index of the launch the fault targets;
	// -1 when the target launch does not exist in the trace (the fault can
	// never activate). Early-exit probing starts at this call.
	FaultCall int
	// CounterBase primes the injector's eligible-execution counter with the
	// executions of the target static instruction that happened before the
	// checkpoint (site-resolved selections only).
	CounterBase uint64
	// Probe reports whether the fault has fired; digests are only compared
	// after it returns true. Nil disables early exit.
	Probe func() bool
	// NoEarlyExit disables digest comparison (checkpointed restore only).
	NoEarlyExit bool
}

// PlanRestore chooses the latest usable checkpoint for a site-resolved
// transient injection into the kernelCount-th launch of kernelName, with
// instrCount counting eligible executions of static instruction
// staticInstrIdx. A checkpoint is usable if it lies strictly before the
// target launch, or inside it but before the target dynamic execution.
// threadMode restricts to pre-launch checkpoints (per-thread counting is
// not reconstructible from the aggregate execution tallies).
func (t *Trace) PlanRestore(kernelName string, kernelCount, staticInstrIdx int, instrCount uint64, threadMode bool) ReplayPlan {
	plan := ReplayPlan{RestoreCall: -1, FaultCall: -1}
	seen := 0
	for i, call := range t.calls {
		if call.kind != callLaunch || call.fn != kernelName {
			continue
		}
		if seen == kernelCount {
			plan.FaultCall = i
			break
		}
		seen++
	}
	if plan.FaultCall < 0 {
		return plan
	}
	for _, ck := range t.ckpts {
		switch {
		case ck.CallIdx < plan.FaultCall:
			plan.RestoreCall = ck.CallIdx
			plan.Ckpt = ck
			plan.CounterBase = 0
		case ck.CallIdx == plan.FaultCall && !threadMode &&
			staticInstrIdx >= 0 && staticInstrIdx < len(ck.instrExec) &&
			ck.instrExec[staticInstrIdx] <= instrCount:
			plan.RestoreCall = ck.CallIdx
			plan.Ckpt = ck
			plan.CounterBase = ck.instrExec[staticInstrIdx]
		}
	}
	return plan
}

// recorder is the recording-mode state hung off a Context.
type recorder struct {
	trace  *Trace
	global uint64 // warp instructions across completed launches
}

// StartRecording puts the context in recording mode: every driver call is
// journaled and executed for real, and launches drop checkpoints at global
// warp-instruction multiples of stride (0 disables checkpointing but still
// journals). Recording contexts run launches sequentially.
func (c *Context) StartRecording(stride uint64) error {
	if c.rec != nil || c.rep != nil {
		return fmt.Errorf("cuda: context already recording or replaying")
	}
	c.rec = &recorder{trace: &Trace{stride: stride}}
	return nil
}

// FinishRecording leaves recording mode and returns the trace. It fails if
// any recorded call misbehaved (errored, trapped) — such a trajectory is
// not a golden run and cannot anchor replays.
func (c *Context) FinishRecording() (*Trace, error) {
	rec := c.rec
	if rec == nil {
		return nil, fmt.Errorf("cuda: context is not recording")
	}
	c.rec = nil
	t := rec.trace
	t.finalLog = append([]gpu.LogEvent(nil), c.dev.LogEvents()...)
	if t.failed != nil {
		return nil, fmt.Errorf("cuda: recording unusable: %w", t.failed)
	}
	return t, nil
}

func (rec *recorder) fail(format string, args ...any) {
	if rec.trace.failed == nil {
		rec.trace.failed = fmt.Errorf(format, args...)
	}
}

// replayer is the replay-mode state hung off a Context.
type replayer struct {
	trace *Trace
	plan  ReplayPlan
	pos   int // index of the next journaled call

	restored    bool
	earlyExited bool
	mismatch    bool  // host-visible divergence from the recording
	err         error // fatal replay error (pre-restore divergence)
}

// BeginReplay puts the context in replay mode against a recorded trace.
// The context must be fresh: nothing loaded, nothing allocated, nothing
// launched.
func (c *Context) BeginReplay(t *Trace, plan ReplayPlan) error {
	if c.rec != nil || c.rep != nil {
		return fmt.Errorf("cuda: context already recording or replaying")
	}
	if t == nil || t.failed != nil {
		return fmt.Errorf("cuda: replay of an unusable trace")
	}
	if (plan.RestoreCall >= 0) != (plan.Ckpt != nil) {
		return fmt.Errorf("cuda: replay plan restore call and checkpoint disagree")
	}
	c.rep = &replayer{trace: t, plan: plan}
	return nil
}

// ReplayRestored reports whether the replay restored from a checkpoint.
func (c *Context) ReplayRestored() bool { return c.rep != nil && c.rep.restored }

// ReplayEarlyExited reports whether the replay re-converged with the golden
// trajectory and exited early.
func (c *Context) ReplayEarlyExited() bool { return c.rep != nil && c.rep.earlyExited }

// ReplayErr returns the fatal replay error, if any: the workload's driver
// calls diverged from the recording before the restore point, so the replay
// is meaningless and the experiment must be re-run from scratch.
func (c *Context) ReplayErr() error {
	if c.rep == nil {
		return nil
	}
	return c.rep.err
}

// replayDivergence marks a fatal pre-restore divergence: the workload did
// not repeat the recorded call sequence, so the snapshot does not describe
// this execution. Every subsequent call fails with the same error.
func (rep *replayer) replayDivergence(got string, want *traceCall) error {
	if rep.err == nil {
		wantS := "end of journal"
		if want != nil {
			wantS = want.kind.String()
		}
		rep.err = fmt.Errorf("cuda: replay diverged at call %d: workload issued %s, recording has %s",
			rep.pos, got, wantS)
	}
	return rep.err
}

// next returns the journaled call at the current position, advancing it.
func (rep *replayer) next() *traceCall {
	if rep.pos >= len(rep.trace.calls) {
		return nil
	}
	call := &rep.trace.calls[rep.pos]
	rep.pos++
	return call
}

// shortCircuit reports whether the current call must be served from the
// journal instead of executed: before the restore point, or after an early
// exit.
func (rep *replayer) shortCircuit() bool {
	if rep.earlyExited {
		return true
	}
	return rep.pos < rep.plan.RestoreCall
}

// live reports whether replay bookkeeping still matters for real execution
// (boundary probing and mismatch tracking).
func (rep *replayer) live() bool { return !rep.earlyExited && rep.err == nil }

// recMalloc journals a real allocation.
func (c *Context) recMalloc(size int) (DevPtr, error) {
	rec := c.rec
	if c.sticky != Success {
		rec.fail("cuMemAlloc on a poisoned context")
		return 0, c.sticky
	}
	p, err := c.dev.Mem.Alloc(size)
	if err != nil {
		rec.fail("cuMemAlloc(%d): %v", size, err)
		return 0, fmt.Errorf("cuMemAlloc: %w", err)
	}
	rec.trace.calls = append(rec.trace.calls, traceCall{kind: callMalloc, size: size, ptr: p})
	return p, nil
}

// repMalloc serves or verifies an allocation during replay.
func (c *Context) repMalloc(size int) (DevPtr, error) {
	rep := c.rep
	if rep.err != nil {
		return 0, rep.err
	}
	if rep.shortCircuit() {
		call := rep.next()
		if call == nil || call.kind != callMalloc || call.size != size {
			return 0, rep.replayDivergence(fmt.Sprintf("cuMemAlloc(%d)", size), call)
		}
		return call.ptr, nil
	}
	call := rep.next()
	if c.sticky != Success {
		rep.mismatch = true
		return 0, c.sticky
	}
	p, err := c.dev.Mem.Alloc(size)
	if err != nil {
		rep.mismatch = true
		return 0, fmt.Errorf("cuMemAlloc: %w", err)
	}
	if rep.live() && (call == nil || call.kind != callMalloc || call.ptr != p) {
		rep.mismatch = true
	}
	return p, nil
}

// recFree journals a real free.
func (c *Context) recFree(p DevPtr) error {
	if err := c.dev.Mem.Free(p); err != nil {
		c.rec.fail("cuMemFree(0x%x): %v", p, err)
		return fmt.Errorf("cuMemFree: %w", err)
	}
	c.rec.trace.calls = append(c.rec.trace.calls, traceCall{kind: callFree, ptr: p})
	return nil
}

// repFree serves or verifies a free during replay.
func (c *Context) repFree(p DevPtr) error {
	rep := c.rep
	if rep.err != nil {
		return rep.err
	}
	if rep.shortCircuit() {
		call := rep.next()
		if call == nil || call.kind != callFree || call.ptr != p {
			return rep.replayDivergence(fmt.Sprintf("cuMemFree(0x%x)", p), call)
		}
		return nil
	}
	call := rep.next()
	if rep.live() && (call == nil || call.kind != callFree || call.ptr != p) {
		rep.mismatch = true
	}
	if err := c.dev.Mem.Free(p); err != nil {
		rep.mismatch = true
		return fmt.Errorf("cuMemFree: %w", err)
	}
	return nil
}

// recHtoD journals a real host-to-device copy.
func (c *Context) recHtoD(dst DevPtr, src []byte) error {
	rec := c.rec
	if c.sticky != Success {
		rec.fail("cuMemcpyHtoD on a poisoned context")
		return c.sticky
	}
	if err := c.dev.Mem.WriteBytes(dst, src); err != nil {
		rec.fail("cuMemcpyHtoD(0x%x, %d): %v", dst, len(src), err)
		return err
	}
	rec.trace.calls = append(rec.trace.calls, traceCall{kind: callHtoD, ptr: dst, size: len(src)})
	return nil
}

// repHtoD serves or verifies a host-to-device copy during replay. The copied
// bytes are not compared against the recording — the snapshot already holds
// their effect — only the call shape is.
func (c *Context) repHtoD(dst DevPtr, src []byte) error {
	rep := c.rep
	if rep.err != nil {
		return rep.err
	}
	if rep.shortCircuit() {
		call := rep.next()
		if call == nil || call.kind != callHtoD || call.ptr != dst || call.size != len(src) {
			return rep.replayDivergence(fmt.Sprintf("cuMemcpyHtoD(0x%x, %d)", dst, len(src)), call)
		}
		return nil
	}
	call := rep.next()
	if rep.live() && (call == nil || call.kind != callHtoD || call.ptr != dst || call.size != len(src)) {
		rep.mismatch = true
	}
	if c.sticky != Success {
		rep.mismatch = true
		return c.sticky
	}
	return c.dev.Mem.WriteBytes(dst, src)
}

// recDtoH journals a real device-to-host copy, including the returned bytes
// (they are the recorded results fed back during replay short-circuits).
func (c *Context) recDtoH(src DevPtr, n int) ([]byte, error) {
	rec := c.rec
	if c.sticky != Success {
		rec.fail("cuMemcpyDtoH on a poisoned context")
		return nil, c.sticky
	}
	b, err := c.dev.Mem.ReadBytes(src, n)
	if err != nil {
		rec.fail("cuMemcpyDtoH(0x%x, %d): %v", src, n, err)
		return nil, err
	}
	rec.trace.calls = append(rec.trace.calls,
		traceCall{kind: callDtoH, ptr: src, size: n, data: append([]byte(nil), b...)})
	return b, nil
}

// repDtoH serves or verifies a device-to-host copy during replay. In the
// live phase the real bytes are returned to the host, and any difference
// from the recording disables early exit: the host has observed corrupted
// data, so its state can no longer be assumed to match the recording.
func (c *Context) repDtoH(src DevPtr, n int) ([]byte, error) {
	rep := c.rep
	if rep.err != nil {
		return nil, rep.err
	}
	if rep.shortCircuit() {
		call := rep.next()
		if call == nil || call.kind != callDtoH || call.ptr != src || call.size != n {
			return nil, rep.replayDivergence(fmt.Sprintf("cuMemcpyDtoH(0x%x, %d)", src, n), call)
		}
		return append([]byte(nil), call.data...), nil
	}
	call := rep.next()
	if c.sticky != Success {
		rep.mismatch = true
		return nil, c.sticky
	}
	b, err := c.dev.Mem.ReadBytes(src, n)
	if err != nil {
		rep.mismatch = true
		return nil, err
	}
	if rep.live() {
		if call == nil || call.kind != callDtoH || call.ptr != src || call.size != n {
			rep.mismatch = true
		} else if !bytes.Equal(call.data, b) {
			rep.mismatch = true
		}
	}
	return b, nil
}

// resolveBudget applies the launch-budget defaulting chain exactly as
// gpu.Device.Run would.
func (c *Context) resolveBudget(cfg LaunchConfig) uint64 {
	b := cfg.Budget
	if b == 0 {
		b = c.defaultBudget
	}
	if b == 0 {
		b = gpu.DefaultBudget
	}
	if b > math.MaxInt64 {
		b = math.MaxInt64
	}
	return b
}

// finishLaunch is the common post-execution tail shared with Context.Launch:
// stats accumulation, trap poisoning, subscriber completion.
func (c *Context) finishLaunch(ev *LaunchEvent, f *Function, stats gpu.LaunchStats, err error) error {
	ev.Stats = stats
	c.total.WarpInstrs += stats.WarpInstrs
	c.total.ThreadInstrs += stats.ThreadInstrs
	c.total.TrampolineInstrs += stats.TrampolineInstrs
	c.total.Blocks += stats.Blocks
	if err != nil {
		if t, ok := gpu.AsTrap(err); ok {
			ev.Trap = t
			c.poison(t)
		} else {
			for _, s := range c.subscribers {
				s.OnLaunchEnd(ev)
			}
			return fmt.Errorf("cuLaunchKernel %q: %w", f.k.Name, err)
		}
	}
	for _, s := range c.subscribers {
		s.OnLaunchEnd(ev)
	}
	return nil
}

// launchRecorded runs a launch for real on a recording context, pausing at
// every global stride boundary to snapshot.
func (c *Context) launchRecorded(ev *LaunchEvent, f *Function, cfg LaunchConfig, params []uint32) error {
	rec := c.rec
	callIdx := len(rec.trace.calls)
	r, err := c.dev.BeginRun(&gpu.Launch{
		Kernel:      ev.Exec,
		Grid:        cfg.Grid,
		Block:       cfg.Block,
		SharedBytes: cfg.SharedBytes,
		Params:      params,
		Budget:      c.resolveBudget(cfg),
	})
	if err != nil {
		rec.fail("cuLaunchKernel %q: %v", f.k.Name, err)
		for _, s := range c.subscribers {
			s.OnLaunchEnd(ev)
		}
		return fmt.Errorf("cuLaunchKernel %q: %w", f.k.Name, err)
	}
	r.EnableInstrExecCounts()
	stride := rec.trace.stride
	var runErr error
	for {
		pauseIn := int64(-1)
		if stride > 0 {
			cur := rec.global + r.Stats().WarpInstrs
			pauseIn = int64((cur/stride+1)*stride - cur)
		}
		paused, err := r.Resume(pauseIn)
		if !paused {
			runErr = err
			break
		}
		snap, err := r.Snapshot()
		if err != nil {
			rec.fail("snapshot at launch %d: %v", callIdx, err)
			continue
		}
		local := r.Stats().WarpInstrs
		rec.trace.ckpts = append(rec.trace.ckpts, &Checkpoint{
			Global:      rec.global + local,
			CallIdx:     callIdx,
			LaunchLocal: local,
			Kernel:      f.k.Name,
			digest:      r.Digest(),
			snap:        snap,
			instrExec:   append([]uint64(nil), r.InstrExecCounts()...),
		})
	}
	stats := r.Stats()
	rec.global += stats.WarpInstrs
	if runErr != nil {
		rec.fail("cuLaunchKernel %q: %v", f.k.Name, runErr)
	}
	rec.trace.calls = append(rec.trace.calls,
		traceCall{kind: callLaunch, fn: f.k.Name, stats: stats})
	return c.finishLaunch(ev, f, stats, runErr)
}

// launchReplayed handles a launch on a replaying context: short-circuit,
// restore-and-resume, or live with early-exit probing.
func (c *Context) launchReplayed(ev *LaunchEvent, f *Function, cfg LaunchConfig, params []uint32) error {
	rep := c.rep
	if rep.err != nil {
		return rep.err
	}

	// Short-circuit phase: the launch "happens" with its recorded results.
	// Subscribers still see begin/end so instance counting (and therefore
	// injector arming) stays aligned with the recording.
	if rep.shortCircuit() {
		call := rep.next()
		if call == nil || call.kind != callLaunch || call.fn != f.k.Name {
			return rep.replayDivergence(fmt.Sprintf("cuLaunchKernel %q", f.k.Name), call)
		}
		for _, s := range c.subscribers {
			s.OnLaunchBegin(ev)
		}
		return c.finishLaunch(ev, f, call.stats, nil)
	}

	restoreHere := rep.pos == rep.plan.RestoreCall && !rep.restored
	callIdx := rep.pos
	call := rep.next()
	if rep.live() && (call == nil || call.kind != callLaunch || call.fn != f.k.Name) {
		if restoreHere {
			// The restore target itself diverged: the checkpoint does not
			// describe this execution.
			return rep.replayDivergence(fmt.Sprintf("cuLaunchKernel %q", f.k.Name), call)
		}
		rep.mismatch = true
	}
	if c.sticky != Success {
		rep.mismatch = true
		ev.Skipped = true
		for _, s := range c.subscribers {
			s.OnLaunchEnd(ev)
		}
		return c.sticky
	}

	for _, s := range c.subscribers {
		s.OnLaunchBegin(ev)
	}

	var r *gpu.LaunchRun
	var err error
	budget := c.resolveBudget(cfg)
	if restoreHere {
		ck := rep.plan.Ckpt
		if budget <= ck.LaunchLocal {
			return rep.replayDivergence(
				fmt.Sprintf("cuLaunchKernel %q with budget %d below checkpoint offset %d",
					f.k.Name, budget, ck.LaunchLocal), call)
		}
		r, err = c.dev.Restore(ck.snap)
		if err == nil && r == nil {
			err = fmt.Errorf("checkpoint holds no in-flight launch")
		}
		if err == nil {
			err = r.SetExecKernel(ev.Exec)
		}
		if err != nil {
			if rep.err == nil {
				rep.err = fmt.Errorf("cuda: restore at call %d: %w", callIdx, err)
			}
			return rep.err
		}
		r.SetBudgetRemaining(int64(budget - ck.LaunchLocal))
		rep.restored = true
	} else {
		r, err = c.dev.BeginRun(&gpu.Launch{
			Kernel:      ev.Exec,
			Grid:        cfg.Grid,
			Block:       cfg.Block,
			SharedBytes: cfg.SharedBytes,
			Params:      params,
			Budget:      budget,
		})
		if err != nil {
			rep.mismatch = true
			for _, s := range c.subscribers {
				s.OnLaunchEnd(ev)
			}
			return fmt.Errorf("cuLaunchKernel %q: %w", f.k.Name, err)
		}
	}

	// Early-exit probing: pause at this launch's recorded checkpoint
	// boundaries once the fault can have fired, and compare digests.
	probing := rep.live() && !rep.plan.NoEarlyExit && rep.plan.Probe != nil &&
		rep.plan.FaultCall >= 0 && callIdx >= rep.plan.FaultCall
	var runErr error
	for {
		var boundary *Checkpoint
		if probing && !rep.mismatch {
			local := r.Stats().WarpInstrs
			for _, ck := range rep.trace.ckpts {
				if ck.CallIdx == callIdx && ck.LaunchLocal > local {
					boundary = ck
					break
				}
			}
		}
		pauseIn := int64(-1)
		if boundary != nil {
			pauseIn = int64(boundary.LaunchLocal - r.Stats().WarpInstrs)
		}
		paused, err := r.Resume(pauseIn)
		if !paused {
			runErr = err
			break
		}
		if boundary == nil || rep.mismatch || !rep.plan.Probe() {
			continue
		}
		if r.Digest() == boundary.digest {
			// Re-converged with the golden trajectory at an identical
			// boundary: the rest of this execution is the recording.
			rep.earlyExited = true
			c.dev.SetLog(rep.trace.finalLog)
			var stats gpu.LaunchStats
			if call != nil {
				stats = call.stats
			}
			return c.finishLaunch(ev, f, stats, nil)
		}
	}
	if rep.live() {
		if runErr != nil {
			rep.mismatch = true
		} else if call != nil && call.stats.WarpInstrs != r.Stats().WarpInstrs {
			// The launch executed a different instruction count than the
			// recording: architecturally fine, but the trajectories have
			// diverged for good as far as boundary alignment is concerned.
			rep.mismatch = true
		}
	}
	return c.finishLaunch(ev, f, r.Stats(), runErr)
}
