package cuda_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cuda"
	"repro/internal/sass"
	"repro/internal/sass/encoding"
	"repro/internal/sassan"
)

// badSpanSrc assembles but fails static verification: LDG.128 into R252
// spans R252..RZ.
const badSpanSrc = `
.kernel badspan
.param ptr
    IADD R0, RZ, c0[ptr]
    LDG.128 R252, [R0]
    EXIT
`

// warnSrc is valid but carries two dead-write warnings (R0 and R10 are
// never read).
const warnSrc = `
.kernel warns
    S2R R0, SR_TID.X
    MOV R10, RZ
    EXIT
`

// TestVerifyOffIsDefault: without opting in, even an erroring module loads.
func TestVerifyOffIsDefault(t *testing.T) {
	ctx := newCtx(t)
	if _, err := ctx.LoadModule("bad", badSpanSrc); err != nil {
		t.Fatalf("default context rejected module: %v", err)
	}
	if diags := ctx.VerifyDiagnostics(); len(diags) != 0 {
		t.Fatalf("VerifyOff accumulated diagnostics: %v", diags)
	}
}

// TestVerifyEnforceRejectsSourceModule: enforce mode fails the load with a
// driver-style error wrapping ErrInvalidValue.
func TestVerifyEnforceRejectsSourceModule(t *testing.T) {
	ctx := newCtx(t)
	ctx.SetVerifyMode(cuda.VerifyEnforce)
	_, err := ctx.LoadModule("bad", badSpanSrc)
	if err == nil {
		t.Fatal("enforce mode loaded a module with a verification error")
	}
	if !errors.Is(err, cuda.ErrInvalidValue) {
		t.Fatalf("error does not wrap ErrInvalidValue: %v", err)
	}
	if !strings.Contains(err.Error(), "verification failed") {
		t.Fatalf("error does not name verification: %v", err)
	}
	// The rejected module must not be registered.
	if len(ctx.Modules()) != 0 {
		t.Fatalf("rejected module was registered: %d modules", len(ctx.Modules()))
	}
	// A clean module still loads on the same context.
	if _, err := ctx.LoadModule("good", modSrc); err != nil {
		t.Fatalf("enforce mode rejected a clean module: %v", err)
	}
}

// TestVerifyEnforceRejectsBinaryModule: the verifier runs on the decoded
// machine-code view, so binary-only modules are covered too.
func TestVerifyEnforceRejectsBinaryModule(t *testing.T) {
	prog, err := sass.Assemble("bad", badSpanSrc)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := encoding.MustCodec(sass.FamilyVolta).EncodeProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	ctx := newCtx(t)
	ctx.SetVerifyMode(cuda.VerifyEnforce)
	if _, err := ctx.LoadModuleBinary(bin); err == nil {
		t.Fatal("enforce mode loaded a binary-only module with a verification error")
	}
}

// TestVerifyWarnAccumulates: warn mode loads everything and collects every
// diagnostic across module loads.
func TestVerifyWarnAccumulates(t *testing.T) {
	ctx := newCtx(t)
	ctx.SetVerifyMode(cuda.VerifyWarn)
	if _, err := ctx.LoadModule("w1", warnSrc); err != nil {
		t.Fatalf("warn mode rejected module: %v", err)
	}
	first := len(ctx.VerifyDiagnostics())
	if first == 0 {
		t.Fatal("warn mode collected no diagnostics from a dead-write module")
	}
	for _, d := range ctx.VerifyDiagnostics() {
		if d.Sev != sassan.SevWarning {
			t.Fatalf("unexpected severity in warn module: %v", d)
		}
	}
	// Even error-level findings don't block loads in warn mode.
	if _, err := ctx.LoadModule("w2", badSpanSrc); err != nil {
		t.Fatalf("warn mode rejected erroring module: %v", err)
	}
	if got := len(ctx.VerifyDiagnostics()); got <= first {
		t.Fatalf("diagnostics did not accumulate: %d then %d", first, got)
	}
}
