package cuda_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/sass"
	"repro/internal/sass/encoding"
)

const modSrc = `
.kernel store42
.param outptr
    S2R R0, SR_TID.X
    SHL R1, R0, 0x2
    IADD R2, R1, c0[outptr]
    MOV R3, 0x2a
    STG.32 [R2], R3
    EXIT

.kernel crash
    MOV R1, 0x4
    LDG.32 R2, [R1]
    EXIT

.kernel spin
loop:
    BRA loop
`

func newCtx(t *testing.T) *cuda.Context {
	t.Helper()
	dev, err := gpu.NewDevice(sass.FamilyVolta, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := cuda.NewContext(dev)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func cfg1() cuda.LaunchConfig {
	return cuda.LaunchConfig{Grid: gpu.Dim3{X: 1, Y: 1, Z: 1}, Block: gpu.Dim3{X: 32, Y: 1, Z: 1}}
}

func TestModuleLoadAndLaunch(t *testing.T) {
	ctx := newCtx(t)
	mod, err := ctx.LoadModule("m", modSrc)
	if err != nil {
		t.Fatal(err)
	}
	if !mod.HasSource() || mod.Source() == "" {
		t.Error("source-loaded module should retain source")
	}
	if len(mod.Binary()) == 0 {
		t.Error("module has no machine code")
	}
	if mod.Family() != sass.FamilyVolta {
		t.Errorf("module family = %v", mod.Family())
	}
	fn, err := mod.Function("store42")
	if err != nil {
		t.Fatal(err)
	}
	if fn.Name() != "store42" || fn.Module() != mod {
		t.Error("function identity wrong")
	}
	if _, err := mod.Function("nope"); !errors.Is(err, cuda.ErrNotFound) {
		t.Errorf("missing function: %v", err)
	}

	out, err := ctx.Malloc(4 * 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Launch(fn, cfg1(), out); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Synchronize(); err != nil {
		t.Fatal(err)
	}
	b, err := ctx.MemcpyDtoH(out, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 42 {
		t.Fatalf("kernel did not run: %v", b)
	}
	stats := ctx.AccumulatedStats()
	if stats.WarpInstrs == 0 || stats.Blocks != 1 {
		t.Fatalf("stats not accumulated: %+v", stats)
	}
}

func TestLaunchParamMismatch(t *testing.T) {
	ctx := newCtx(t)
	mod, err := ctx.LoadModule("m", modSrc)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := mod.Function("store42")
	if err != nil {
		t.Fatal(err)
	}
	err = ctx.Launch(fn, cfg1()) // missing the pointer parameter
	if !errors.Is(err, cuda.ErrInvalidValue) {
		t.Fatalf("param mismatch: %v", err)
	}
	if err := ctx.Launch(nil, cfg1()); !errors.Is(err, cuda.ErrInvalidValue) {
		t.Fatalf("nil function: %v", err)
	}
}

// TestStickyErrorSemantics is the paper's "potential DUE" machinery: a
// device fault terminates the kernel, poisons the context, fails later API
// calls — but never kills the host.
func TestStickyErrorSemantics(t *testing.T) {
	ctx := newCtx(t)
	mod, err := ctx.LoadModule("m", modSrc)
	if err != nil {
		t.Fatal(err)
	}
	crash, err := mod.Function("crash")
	if err != nil {
		t.Fatal(err)
	}
	good, err := mod.Function("store42")
	if err != nil {
		t.Fatal(err)
	}
	out, err := ctx.Malloc(4 * 32)
	if err != nil {
		t.Fatal(err)
	}

	// The faulting launch itself returns nil — the error is unchecked.
	if err := ctx.Launch(crash, cfg1()); err != nil {
		t.Fatalf("faulting launch returned synchronously: %v", err)
	}
	if ctx.LastError() != cuda.ErrIllegalAddress {
		t.Fatalf("sticky error = %v", ctx.LastError())
	}
	if ctx.StickyTrap() == nil || ctx.StickyTrap().Kind != gpu.TrapIllegalAddress {
		t.Fatalf("sticky trap = %+v", ctx.StickyTrap())
	}
	if err := ctx.Synchronize(); !errors.Is(err, cuda.ErrIllegalAddress) {
		t.Fatalf("Synchronize = %v", err)
	}
	// Subsequent work is refused with the sticky error.
	if err := ctx.Launch(good, cfg1(), out); !errors.Is(err, cuda.ErrIllegalAddress) {
		t.Fatalf("launch on poisoned context = %v", err)
	}
	if _, err := ctx.MemcpyDtoH(out, 4); !errors.Is(err, cuda.ErrIllegalAddress) {
		t.Fatalf("DtoH on poisoned context = %v", err)
	}
	if err := ctx.MemcpyHtoD(out, []byte{1}); !errors.Is(err, cuda.ErrIllegalAddress) {
		t.Fatalf("HtoD on poisoned context = %v", err)
	}
	if _, err := ctx.Malloc(16); !errors.Is(err, cuda.ErrIllegalAddress) {
		t.Fatalf("Malloc on poisoned context = %v", err)
	}
	// The device log recorded the fault (the dmesg analog).
	if len(ctx.DeviceLog()) == 0 {
		t.Fatal("device log is empty after a fault")
	}
}

func TestHangBecomesLaunchTimeout(t *testing.T) {
	ctx := newCtx(t)
	ctx.SetDefaultBudget(10000)
	mod, err := ctx.LoadModule("m", modSrc)
	if err != nil {
		t.Fatal(err)
	}
	spin, err := mod.Function("spin")
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Launch(spin, cfg1()); err != nil {
		t.Fatal(err)
	}
	if ctx.LastError() != cuda.ErrLaunchTimeout {
		t.Fatalf("hang produced %v", ctx.LastError())
	}
	if trap := ctx.StickyTrap(); trap == nil || !trap.IsHang() {
		t.Fatalf("hang trap = %+v", trap)
	}
}

func TestLoadModuleBinary(t *testing.T) {
	// Build Volta machine code out-of-band.
	prog := sass.MustAssemble("closed", modSrc)
	codec := encoding.MustCodec(sass.FamilyVolta)
	bin, err := codec.EncodeProgram(prog)
	if err != nil {
		t.Fatal(err)
	}

	ctx := newCtx(t)
	mod, err := ctx.LoadModuleBinary(bin)
	if err != nil {
		t.Fatal(err)
	}
	if mod.HasSource() || mod.Source() != "" {
		t.Error("binary-only module claims to have source")
	}
	fn, err := mod.Function("store42")
	if err != nil {
		t.Fatal(err)
	}
	out, err := ctx.Malloc(4 * 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Launch(fn, cfg1(), out); err != nil {
		t.Fatal(err)
	}
	b, err := ctx.MemcpyDtoH(out, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 42 {
		t.Fatal("binary-only kernel did not run correctly")
	}
}

func TestLoadModuleBinaryWrongFamily(t *testing.T) {
	prog := sass.MustAssemble("closed", modSrc)
	bin, err := encoding.MustCodec(sass.FamilyKepler).EncodeProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	ctx := newCtx(t) // Volta device
	_, err = ctx.LoadModuleBinary(bin)
	if !errors.Is(err, cuda.ErrNoBinaryForGPU) {
		t.Fatalf("cross-family binary load: %v", err)
	}
	if _, err := ctx.LoadModuleBinary([]byte("garbage")); err == nil {
		t.Fatal("garbage binary loaded")
	}
}

func TestLoadModuleBadSource(t *testing.T) {
	ctx := newCtx(t)
	if _, err := ctx.LoadModule("m", "NOT SASS"); err == nil {
		t.Fatal("bad source compiled")
	}
}

// recordingSubscriber captures callback order and can replace kernels.
type recordingSubscriber struct {
	events  []string
	replace *gpu.ExecKernel
}

func (r *recordingSubscriber) OnModuleLoad(m *cuda.Module) {
	r.events = append(r.events, "load:"+m.Name())
}

func (r *recordingSubscriber) OnLaunchBegin(ev *cuda.LaunchEvent) {
	r.events = append(r.events, "begin:"+ev.Function.Name())
	if r.replace != nil {
		ev.Exec = r.replace
	}
}

func (r *recordingSubscriber) OnLaunchEnd(ev *cuda.LaunchEvent) {
	suffix := ""
	if ev.Trap != nil {
		suffix = ":trap"
	}
	if ev.Skipped {
		suffix = ":skipped"
	}
	r.events = append(r.events, "end:"+ev.Function.Name()+suffix)
}

func TestSubscriberLifecycle(t *testing.T) {
	ctx := newCtx(t)
	sub := &recordingSubscriber{}
	unsub := ctx.Subscribe(sub)
	mod, err := ctx.LoadModule("m", modSrc)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := mod.Function("store42")
	if err != nil {
		t.Fatal(err)
	}
	out, err := ctx.Malloc(4 * 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Launch(fn, cfg1(), out); err != nil {
		t.Fatal(err)
	}
	want := []string{"load:m", "begin:store42", "end:store42"}
	if strings.Join(sub.events, ",") != strings.Join(want, ",") {
		t.Fatalf("events = %v, want %v", sub.events, want)
	}
	unsub()
	if err := ctx.Launch(fn, cfg1(), out); err != nil {
		t.Fatal(err)
	}
	if len(sub.events) != len(want) {
		t.Fatal("subscriber still firing after unsubscribe")
	}
}

// TestSubscriberReplacesKernel: OnLaunchBegin may swap in an instrumented
// kernel — the NVBit interception mechanism.
func TestSubscriberReplacesKernel(t *testing.T) {
	ctx := newCtx(t)
	mod, err := ctx.LoadModule("m", modSrc)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := mod.Function("store42")
	if err != nil {
		t.Fatal(err)
	}
	// The replacement writes 43 instead of 42 by corrupting R3 post-MOV.
	clone := fn.Kernel().Clone()
	ek := &gpu.ExecKernel{K: clone}
	ek.After = make([][]gpu.Callback, len(clone.Instrs))
	ek.After[3] = []gpu.Callback{func(c *gpu.InstrCtx) {
		for lane := 0; lane < gpu.WarpSize; lane++ {
			if c.LaneActive(lane) {
				c.WriteReg(lane, 3, c.ReadReg(lane, 3)+1)
			}
		}
	}}
	sub := &recordingSubscriber{replace: ek}
	defer ctx.Subscribe(sub)()

	out, err := ctx.Malloc(4 * 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Launch(fn, cfg1(), out); err != nil {
		t.Fatal(err)
	}
	b, err := ctx.MemcpyDtoH(out, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 43 {
		t.Fatalf("replacement kernel did not run: got %d", b[0])
	}
}

// TestSkippedLaunchNotification: launches on a poisoned context notify
// subscribers with Skipped set.
func TestSkippedLaunchNotification(t *testing.T) {
	ctx := newCtx(t)
	mod, err := ctx.LoadModule("m", modSrc)
	if err != nil {
		t.Fatal(err)
	}
	crash, err := mod.Function("crash")
	if err != nil {
		t.Fatal(err)
	}
	sub := &recordingSubscriber{}
	defer ctx.Subscribe(sub)()
	if err := ctx.Launch(crash, cfg1()); err != nil {
		t.Fatal(err)
	}
	_ = ctx.Launch(crash, cfg1()) // poisoned: skipped
	got := strings.Join(sub.events, ",")
	want := "begin:crash,end:crash:trap,end:crash:skipped"
	if got != want {
		t.Fatalf("events = %q, want %q", got, want)
	}
}

func TestErrorStrings(t *testing.T) {
	if cuda.Success.Error() != "CUDA_SUCCESS" {
		t.Error("Success string wrong")
	}
	if !strings.Contains(cuda.ErrIllegalAddress.Error(), "ILLEGAL_ADDRESS") {
		t.Error("illegal address string wrong")
	}
	if !strings.Contains(cuda.Error(200).Error(), "200") {
		t.Error("unknown error string wrong")
	}
}
