// Package cuda is a miniature CUDA-driver-API analog over the gpu
// simulator: contexts, modules (loaded from assembly "source" or from
// machine-code binaries with no source), functions, synchronous kernel
// launches with CUDA-style sticky error semantics, device memory
// management, and the driver-callback subscription interface that the NVBit
// layer attaches to.
//
// Error semantics mirror the behaviour the paper relies on for its
// "potential DUE" outcome class: a kernel trap terminates that kernel early
// and poisons the context with a sticky error, but is not fatal to the host
// program — host code only observes it if it checks (Synchronize /
// LastError), exactly like an unchecked non-fatal CUDA error.
package cuda

import (
	"context"
	"fmt"

	"repro/internal/gpu"
	"repro/internal/modcache"
	"repro/internal/sass"
	"repro/internal/sass/encoding"
	"repro/internal/sassan"
)

// Error is a CUDA-style error code.
type Error uint8

// Error codes. Success is the zero value.
const (
	Success Error = iota
	ErrIllegalAddress
	ErrMisalignedAddress
	ErrLaunchTimeout
	ErrIllegalInstruction
	ErrHardwareStackError
	ErrAssert
	ErrInvalidValue
	ErrContextIsDestroyed
	ErrNotFound
	ErrNoBinaryForGPU
)

var errorNames = [...]string{
	Success:               "CUDA_SUCCESS",
	ErrIllegalAddress:     "CUDA_ERROR_ILLEGAL_ADDRESS",
	ErrMisalignedAddress:  "CUDA_ERROR_MISALIGNED_ADDRESS",
	ErrLaunchTimeout:      "CUDA_ERROR_LAUNCH_TIMEOUT",
	ErrIllegalInstruction: "CUDA_ERROR_ILLEGAL_INSTRUCTION",
	ErrHardwareStackError: "CUDA_ERROR_HARDWARE_STACK_ERROR",
	ErrAssert:             "CUDA_ERROR_ASSERT",
	ErrInvalidValue:       "CUDA_ERROR_INVALID_VALUE",
	ErrContextIsDestroyed: "CUDA_ERROR_CONTEXT_IS_DESTROYED",
	ErrNotFound:           "CUDA_ERROR_NOT_FOUND",
	ErrNoBinaryForGPU:     "CUDA_ERROR_NO_BINARY_FOR_GPU",
}

// Error implements error.
func (e Error) Error() string {
	if int(e) < len(errorNames) {
		return errorNames[e]
	}
	return fmt.Sprintf("CUDA_ERROR(%d)", uint8(e))
}

// trapToError maps a device trap to its CUDA error code.
func trapToError(t *gpu.Trap) Error {
	switch t.Kind {
	case gpu.TrapIllegalAddress, gpu.TrapSharedBounds, gpu.TrapLocalBounds:
		return ErrIllegalAddress
	case gpu.TrapMisaligned:
		return ErrMisalignedAddress
	case gpu.TrapInstrLimit:
		return ErrLaunchTimeout
	case gpu.TrapInvalidInstruction, gpu.TrapBadPC:
		return ErrIllegalInstruction
	case gpu.TrapCallStack:
		return ErrHardwareStackError
	case gpu.TrapBreakpoint:
		return ErrAssert
	default:
		return ErrIllegalInstruction
	}
}

// DevPtr is a device memory address.
type DevPtr = uint32

// Context is the analog of a CUDA context: one device, its modules, and the
// sticky error state. A Context is not safe for concurrent use; fault
// injection campaigns use one context per experiment.
type Context struct {
	dev     *gpu.Device
	codec   *encoding.Codec
	modules []*Module

	sticky     Error // first device fault; poisons the context
	stickyTrap *gpu.Trap

	subscribers   []Subscriber
	nextSubID     int
	subIDs        []int
	defaultBudget uint64

	verifyMode  VerifyMode
	verifyDiags []sassan.Diagnostic

	total gpu.LaunchStats // cumulative execution counts across launches

	// rec/rep select the checkpoint engine's recording or replaying mode
	// (see trace.go); both nil on an ordinary context.
	rec *recorder
	rep *replayer
}

// VerifyMode controls static verification of modules at load time.
type VerifyMode uint8

// Verification modes. VerifyOff (the zero value) skips analysis entirely;
// VerifyWarn runs the verifier and accumulates its diagnostics without
// changing load behaviour; VerifyEnforce additionally rejects modules whose
// verification produced errors, before they become loadable or visible to
// subscribers.
const (
	VerifyOff VerifyMode = iota
	VerifyWarn
	VerifyEnforce
)

// SetVerifyMode selects the load-time verification mode. It applies to
// modules loaded after the call.
func (c *Context) SetVerifyMode(m VerifyMode) { c.verifyMode = m }

// SetCancel arms prompt launch cancellation: once ctx is done, any running
// or future launch on this context's device traps with gpu.TrapCancelled
// within a bounded number of interpreted instructions, instead of draining
// its instruction budget. Campaign experiment loops use this so that
// coordinator-initiated cancellation and worker shutdown abandon in-flight
// experiments promptly. Call before launching kernels.
func (c *Context) SetCancel(ctx context.Context) { c.dev.SetCancel(ctx) }

// VerifyDiagnostics returns every diagnostic accumulated by load-time
// verification, in load order.
func (c *Context) VerifyDiagnostics() []sassan.Diagnostic {
	return append([]sassan.Diagnostic(nil), c.verifyDiags...)
}

// AccumulatedStats returns cumulative execution counts across every launch
// on this context — the basis for hang budgets and overhead accounting.
func (c *Context) AccumulatedStats() gpu.LaunchStats { return c.total }

// NewContext creates a context on dev (the cuInit + cuCtxCreate analog).
// The per-family codec comes from the shared module cache: it is immutable
// and safe to share across contexts, so a campaign's N contexts build it
// once.
func NewContext(dev *gpu.Device) (*Context, error) {
	codec, err := modcache.Shared.Codec(dev.Family)
	if err != nil {
		return nil, err
	}
	return &Context{dev: dev, codec: codec}, nil
}

// Device returns the underlying device.
func (c *Context) Device() *gpu.Device { return c.dev }

// SetDefaultBudget sets the per-launch instruction budget applied when a
// launch does not carry its own — the campaign layer's hang watchdog.
func (c *Context) SetDefaultBudget(b uint64) { c.defaultBudget = b }

// LastError returns the sticky error, Success if none. Like CUDA sticky
// errors, it cannot be cleared; the context must be discarded.
func (c *Context) LastError() Error { return c.sticky }

// StickyTrap returns the device trap behind the sticky error, if any.
func (c *Context) StickyTrap() *gpu.Trap { return c.stickyTrap }

// Synchronize is the cuCtxSynchronize analog: execution is synchronous, so
// it only reports the sticky error.
func (c *Context) Synchronize() error {
	if c.sticky != Success {
		return c.sticky
	}
	return nil
}

// DeviceLog returns the device's accumulated log (the dmesg analog).
func (c *Context) DeviceLog() []gpu.LogEvent { return c.dev.LogEvents() }

// poison records the first device fault.
func (c *Context) poison(t *gpu.Trap) {
	if c.sticky == Success {
		c.sticky = trapToError(t)
		c.stickyTrap = t
	}
}

// Malloc allocates device memory.
func (c *Context) Malloc(size int) (DevPtr, error) {
	if c.rec != nil {
		return c.recMalloc(size)
	}
	if c.rep != nil {
		return c.repMalloc(size)
	}
	if c.sticky != Success {
		return 0, c.sticky
	}
	p, err := c.dev.Mem.Alloc(size)
	if err != nil {
		return 0, fmt.Errorf("cuMemAlloc: %w", err)
	}
	return p, nil
}

// Free releases device memory.
func (c *Context) Free(p DevPtr) error {
	if c.rec != nil {
		return c.recFree(p)
	}
	if c.rep != nil {
		return c.repFree(p)
	}
	if err := c.dev.Mem.Free(p); err != nil {
		return fmt.Errorf("cuMemFree: %w", err)
	}
	return nil
}

// MemcpyHtoD copies host bytes to device memory.
func (c *Context) MemcpyHtoD(dst DevPtr, src []byte) error {
	if c.rec != nil {
		return c.recHtoD(dst, src)
	}
	if c.rep != nil {
		return c.repHtoD(dst, src)
	}
	if c.sticky != Success {
		return c.sticky
	}
	return c.dev.Mem.WriteBytes(dst, src)
}

// MemcpyDtoH copies n device bytes to a new host slice. On a poisoned
// context it fails like CUDA does; callers that ignore the error see their
// stale host buffer, the classic unchecked-error SDC path.
func (c *Context) MemcpyDtoH(src DevPtr, n int) ([]byte, error) {
	if c.rec != nil {
		return c.recDtoH(src, n)
	}
	if c.rep != nil {
		return c.repDtoH(src, n)
	}
	if c.sticky != Success {
		return nil, c.sticky
	}
	return c.dev.Mem.ReadBytes(src, n)
}

// Module is a loaded code module (cubin analog).
type Module struct {
	ctx       *Context
	name      string
	binary    []byte
	source    string
	prog      *sass.Program
	hasSource bool
	funcs     map[string]*Function
}

// Source returns the assembly source the module was compiled from, or ""
// for binary-only modules. Compile-time instrumentation tools (the
// SASSIFI-style baseline) need this; NVBit-style tools do not.
func (m *Module) Source() string { return m.source }

// Name returns the module name.
func (m *Module) Name() string { return m.name }

// HasSource reports whether the module was built from assembly source in
// this process. Dynamically loaded binary-only modules report false; tools
// that require recompilation (the SASSIFI-style baseline) cannot target
// them.
func (m *Module) HasSource() bool { return m.hasSource }

// Binary returns the module's machine code, as an instrumentation framework
// would read it from the driver.
func (m *Module) Binary() []byte { return m.binary }

// Family returns the architecture family the binary is compiled for.
func (m *Module) Family() sass.Family { return m.ctx.dev.Family }

// LoadModule compiles assembly source and loads it — the analog of
// compiling a .cu file and cuModuleLoad'ing the result. Compilation is
// memoized in the shared module cache: repeat loads of the same source
// (the common case across a campaign's per-experiment contexts) reuse one
// assembled program and one encoded binary. The decoded kernels are shared
// read-only state; instrumentation always rewrites Clone()d copies.
func (c *Context) LoadModule(name, asmSource string) (*Module, error) {
	prog, bin, _, err := modcache.Shared.Assemble(c.dev.Family, name, asmSource)
	if err != nil {
		return nil, fmt.Errorf("cuModuleLoad %q: %w", name, err)
	}
	return c.registerModule(name, asmSource, bin, prog, true)
}

// LoadModuleBinary loads prebuilt machine code with no source — the analog
// of a closed-source dynamic library shipping only cubins. The binary must
// target this context's architecture family.
func (c *Context) LoadModuleBinary(data []byte) (*Module, error) {
	fam, err := encoding.DetectFamily(data)
	if err != nil {
		return nil, fmt.Errorf("cuModuleLoadData: %w", err)
	}
	if fam != c.dev.Family {
		return nil, fmt.Errorf("cuModuleLoadData: %w: binary targets %v, device is %v",
			ErrNoBinaryForGPU, fam, c.dev.Family)
	}
	prog, _, err := modcache.Shared.Decode(fam, data)
	if err != nil {
		return nil, fmt.Errorf("cuModuleLoadData: %w", err)
	}
	return c.registerModule(prog.Name, "", append([]byte(nil), data...), prog, false)
}

func (c *Context) registerModule(name, source string, bin []byte, prog *sass.Program, hasSource bool) (*Module, error) {
	if c.verifyMode != VerifyOff {
		diags := sassan.VerifyProgram(prog)
		c.verifyDiags = append(c.verifyDiags, diags...)
		if c.verifyMode == VerifyEnforce && sassan.HasErrors(diags) {
			for _, d := range diags {
				if d.Sev == sassan.SevError {
					return nil, fmt.Errorf("cuModuleLoad %q: %w: verification failed: %s",
						name, ErrInvalidValue, d)
				}
			}
		}
	}
	m := &Module{
		ctx:       c,
		name:      name,
		binary:    bin,
		source:    source,
		prog:      prog,
		hasSource: hasSource,
		funcs:     make(map[string]*Function, len(prog.Kernels)),
	}
	for _, k := range prog.Kernels {
		m.funcs[k.Name] = &Function{mod: m, k: k}
	}
	c.modules = append(c.modules, m)
	for _, s := range c.subscribers {
		s.OnModuleLoad(m)
	}
	return m, nil
}

// Modules returns the loaded modules in load order.
func (c *Context) Modules() []*Module { return c.modules }

// Kernels returns the module's decoded kernels in program order. With the
// shared module cache these are read-only state, potentially aliased by
// every context that loaded the same code; the immutability tests in
// internal/campaign snapshot them through this accessor.
func (m *Module) Kernels() []*sass.Kernel {
	return append([]*sass.Kernel(nil), m.prog.Kernels...)
}

// Function looks up a kernel in the module (cuModuleGetFunction).
func (m *Module) Function(name string) (*Function, error) {
	f, ok := m.funcs[name]
	if !ok {
		return nil, fmt.Errorf("cuModuleGetFunction %q in %q: %w", name, m.name, ErrNotFound)
	}
	return f, nil
}

// Function is a launchable kernel handle.
type Function struct {
	mod *Module
	k   *sass.Kernel
}

// Name returns the kernel name.
func (f *Function) Name() string { return f.k.Name }

// Module returns the function's module.
func (f *Function) Module() *Module { return f.mod }

// Kernel exposes the decoded kernel, as an instrumentation framework sees
// it after decoding the module binary.
func (f *Function) Kernel() *sass.Kernel { return f.k }

// LaunchConfig is the grid/block shape and resources of a launch.
type LaunchConfig struct {
	Grid, Block gpu.Dim3
	SharedBytes int
	Budget      uint64 // 0 = context default
}

// LaunchEvent is passed to driver-callback subscribers around each kernel
// launch. During OnLaunchBegin the Exec field holds the kernel about to
// run; a subscriber may replace it with an instrumented version (the NVBit
// mechanism). During OnLaunchEnd, Stats and Trap describe the completed
// execution.
type LaunchEvent struct {
	Ctx      *Context
	Function *Function
	Config   LaunchConfig
	Params   []uint32

	// Exec is the kernel that will run; subscribers may replace it during
	// OnLaunchBegin.
	Exec *gpu.ExecKernel

	// Stats and Trap are set for OnLaunchEnd.
	Stats gpu.LaunchStats
	Trap  *gpu.Trap

	// Skipped is true in OnLaunchEnd when the launch never ran because the
	// context was already poisoned.
	Skipped bool
}

// Subscriber is the driver callback interface (cuptiSubscribe analog) that
// instrumentation tools implement.
type Subscriber interface {
	// OnModuleLoad fires when a module is loaded.
	OnModuleLoad(m *Module)
	// OnLaunchBegin fires before a kernel launch; the subscriber may
	// replace ev.Exec to instrument this launch.
	OnLaunchBegin(ev *LaunchEvent)
	// OnLaunchEnd fires after the launch completes or traps.
	OnLaunchEnd(ev *LaunchEvent)
}

// Subscribe registers a driver-callback subscriber and returns an
// unsubscribe function. Subscribing is the in-process analog of attaching a
// tool with LD_PRELOAD.
func (c *Context) Subscribe(s Subscriber) (unsubscribe func()) {
	id := c.nextSubID
	c.nextSubID++
	c.subscribers = append(c.subscribers, s)
	c.subIDs = append(c.subIDs, id)
	return func() {
		for i, sid := range c.subIDs {
			if sid == id {
				c.subscribers = append(c.subscribers[:i], c.subscribers[i+1:]...)
				c.subIDs = append(c.subIDs[:i], c.subIDs[i+1:]...)
				return
			}
		}
	}
}

// Launch runs a kernel synchronously (cuLaunchKernel + cuCtxSynchronize).
// Launch-configuration errors are returned directly. Device faults
// terminate the kernel, poison the context, and are NOT returned: like a
// real unchecked CUDA error they surface only through Synchronize or
// LastError. On an already-poisoned context the launch is skipped and the
// sticky error returned.
func (c *Context) Launch(f *Function, cfg LaunchConfig, params ...uint32) error {
	if f == nil {
		return fmt.Errorf("cuLaunchKernel: %w: nil function", ErrInvalidValue)
	}
	ev := &LaunchEvent{
		Ctx:      c,
		Function: f,
		Config:   cfg,
		Params:   params,
		Exec:     &gpu.ExecKernel{K: f.k},
	}
	if c.rec != nil || c.rep != nil {
		if len(params) != len(f.k.Params) {
			return fmt.Errorf("cuLaunchKernel %q: %w: want %d parameter words, got %d",
				f.k.Name, ErrInvalidValue, len(f.k.Params), len(params))
		}
		if c.rep != nil {
			return c.launchReplayed(ev, f, cfg, params)
		}
		if c.sticky != Success {
			c.rec.fail("cuLaunchKernel on a poisoned context")
			ev.Skipped = true
			for _, s := range c.subscribers {
				s.OnLaunchEnd(ev)
			}
			return c.sticky
		}
		for _, s := range c.subscribers {
			s.OnLaunchBegin(ev)
		}
		return c.launchRecorded(ev, f, cfg, params)
	}
	if c.sticky != Success {
		ev.Skipped = true
		for _, s := range c.subscribers {
			s.OnLaunchEnd(ev)
		}
		return c.sticky
	}
	if len(params) != len(f.k.Params) {
		return fmt.Errorf("cuLaunchKernel %q: %w: want %d parameter words, got %d",
			f.k.Name, ErrInvalidValue, len(f.k.Params), len(params))
	}

	for _, s := range c.subscribers {
		s.OnLaunchBegin(ev)
	}

	budget := cfg.Budget
	if budget == 0 {
		budget = c.defaultBudget
	}
	stats, err := c.dev.Run(&gpu.Launch{
		Kernel:      ev.Exec,
		Grid:        cfg.Grid,
		Block:       cfg.Block,
		SharedBytes: cfg.SharedBytes,
		Params:      params,
		Budget:      budget,
	})
	ev.Stats = stats
	c.total.WarpInstrs += stats.WarpInstrs
	c.total.ThreadInstrs += stats.ThreadInstrs
	c.total.TrampolineInstrs += stats.TrampolineInstrs
	c.total.Blocks += stats.Blocks
	if err != nil {
		if t, ok := gpu.AsTrap(err); ok {
			ev.Trap = t
			c.poison(t)
		} else {
			// Launch-shape errors are synchronous API errors.
			for _, s := range c.subscribers {
				s.OnLaunchEnd(ev)
			}
			return fmt.Errorf("cuLaunchKernel %q: %w", f.k.Name, err)
		}
	}
	for _, s := range c.subscribers {
		s.OnLaunchEnd(ev)
	}
	return nil
}
