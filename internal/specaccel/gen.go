package specaccel

import (
	"fmt"
	"math"
	"strings"
)

// Kernel-family generation. Several SpecACCEL programs (351.palm,
// 353.clvrleaf, 356.sp, 357.csp, 370.bt, ...) consist of dozens to hundreds
// of small, structurally similar field-update kernels — one per physical
// variable per sweep direction, emitted by the OpenACC compiler. The
// generators below stamp out such families: each kernel gets its own name,
// its own baked-in coefficients, and one of several structural variants
// (pointwise, left/right-neighbor, product form), so the generated kernels
// are genuinely distinct static code, as they are in the real benchmarks.

// fieldKernelF32 emits one FP32 field-update kernel. Variants:
//
//	0: a[i] = ca*a[i] + cb*b[i]
//	1: a[i] = ca*a[i] + cb*b[i+1]   (right neighbor)
//	2: a[i] = ca*a[i] + cb*b[i-1]   (left neighbor)
//	3: a[i] = ca*(a[i]*b[i]) + cb   (product form)
func fieldKernelF32(name string, variant int, ca, cb float32) string {
	cab := math.Float32bits(ca)
	cbb := math.Float32bits(cb)
	var body string
	switch variant % 4 {
	case 0:
		body = fmt.Sprintf(`    LDG.32 R6, [R4]
    LDG.32 R7, [R5]
    FMUL R8, R6, 0x%08x
    FFMA R8, R7, 0x%08x, R8
    STG.32 [R4], R8`, cab, cbb)
	case 1:
		body = fmt.Sprintf(`    LDG.32 R6, [R4]
    LDG.32 R7, [R5+0x4]
    FMUL R8, R6, 0x%08x
    FFMA R8, R7, 0x%08x, R8
    STG.32 [R4], R8`, cab, cbb)
	case 2:
		body = fmt.Sprintf(`    LDG.32 R6, [R4]
    LDG.32 R7, [R5-0x4]
    FMUL R8, R6, 0x%08x
    FFMA R8, R7, 0x%08x, R8
    STG.32 [R4], R8`, cab, cbb)
	default:
		body = fmt.Sprintf(`    LDG.32 R6, [R4]
    LDG.32 R7, [R5]
    FMUL R8, R6, R7
    FMUL R8, R8, 0x%08x
    FADD R8, R8, 0x%08x
    STG.32 [R4], R8`, cab, cbb)
	}
	return fmt.Sprintf(`
.kernel %s
.param n
.param aptr
.param bptr
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.LT.AND P0, R0, 0x1, PT
    ISETP.GE.OR P0, R0, c0[n], P0
@P0 EXIT
    IADD R3, c0[n], -0x1
    ISETP.GE.AND P1, R0, R3, PT
@P1 EXIT
    SHL R3, R0, 0x2
    IADD R4, R3, c0[aptr]
    IADD R5, R3, c0[bptr]
%s
    EXIT
`, name, body)
}

// fieldKernelF64 emits one FP64 field-update kernel with the same variant
// structure as fieldKernelF32. FP64 values live in even/odd register pairs
// and are loaded with LDG.64; float immediates widen from FP32.
func fieldKernelF64(name string, variant int, ca, cb float32) string {
	cab := math.Float32bits(ca)
	cbb := math.Float32bits(cb)
	var body string
	switch variant % 4 {
	case 0:
		body = fmt.Sprintf(`    LDG.64 R6, [R4]
    LDG.64 R8, [R5]
    DMUL R10, R6, 0x%08x
    DFMA R10, R8, 0x%08x, R10
    STG.64 [R4], R10`, cab, cbb)
	case 1:
		body = fmt.Sprintf(`    LDG.64 R6, [R4]
    LDG.64 R8, [R5+0x8]
    DMUL R10, R6, 0x%08x
    DFMA R10, R8, 0x%08x, R10
    STG.64 [R4], R10`, cab, cbb)
	case 2:
		body = fmt.Sprintf(`    LDG.64 R6, [R4]
    LDG.64 R8, [R5-0x8]
    DMUL R10, R6, 0x%08x
    DFMA R10, R8, 0x%08x, R10
    STG.64 [R4], R10`, cab, cbb)
	default:
		body = fmt.Sprintf(`    LDG.64 R6, [R4]
    LDG.64 R8, [R5]
    DMUL R10, R6, R8
    DMUL R10, R10, 0x%08x
    DADD R10, R10, 0x%08x
    STG.64 [R4], R10`, cab, cbb)
	}
	return fmt.Sprintf(`
.kernel %s
.param n
.param aptr
.param bptr
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.LT.AND P0, R0, 0x1, PT
    ISETP.GE.OR P0, R0, c0[n], P0
@P0 EXIT
    IADD R3, c0[n], -0x1
    ISETP.GE.AND P1, R0, R3, PT
@P1 EXIT
    SHL R3, R0, 0x3
    IADD R4, R3, c0[aptr]
    IADD R5, R3, c0[bptr]
%s
    EXIT
`, name, body)
}

// genFamily stamps out n kernels named <prefix>_000.. with rotating
// variants and per-kernel coefficients derived from the index. gen is
// fieldKernelF32 or fieldKernelF64.
func genFamily(gen func(string, int, float32, float32) string, prefix string, n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		// Coefficients stay near (1, small) so iterated application is
		// numerically stable across the run.
		ca := 1.0 - 0.01*float32(i%7) - 0.001*float32(i%13)
		cb := 0.01 + 0.002*float32(i%5)
		sb.WriteString(gen(fmt.Sprintf("%s_%03d", prefix, i), i, ca, cb))
	}
	return sb.String()
}

// initHashKernel emits a deterministic device-side initializer writing
// hash(i)-derived values in [0,1) (FP32) or the same widened (FP64 via
// elemShift 3 and STG.64 of a converted pair).
func initHashKernel(name string, fp64 bool) string {
	if !fp64 {
		return fmt.Sprintf(`
.kernel %s
.param n
.param outptr
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.GE.AND P0, R0, c0[n], PT
@P0 EXIT
    IMUL R3, R0, 0x9e3779b1
    SHR.U32 R4, R3, 0x8
    I2F R5, R4
    FMUL R5, R5, 0x33800000
    SHL R6, R0, 0x2
    IADD R7, R6, c0[outptr]
    STG.32 [R7], R5
    EXIT
`, name)
	}
	return fmt.Sprintf(`
.kernel %s
.param n
.param outptr
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.GE.AND P0, R0, c0[n], PT
@P0 EXIT
    IMUL R3, R0, 0x9e3779b1
    SHR.U32 R4, R3, 0x8
    I2F R5, R4
    FMUL R5, R5, 0x33800000
    F2F.64 R6, R5
    SHL R8, R0, 0x3
    IADD R9, R8, c0[outptr]
    STG.64 [R9], R6
    EXIT
`, name)
}
