package specaccel

import (
	"repro/internal/cuda"
	"repro/internal/gpu"
)

// 314.omriq: medicine — non-Cartesian MRI reconstruction (MRI-Q). Two
// static kernels and exactly two dynamic kernels, matching Table IV: one
// pass computing |phi|^2 per sample, one pass accumulating the Q matrix
// with a trigonometric inner loop over all k-space samples.
const omriqASM = `
// 314.omriq device code
.kernel compute_phi_mag
.param numk
.param phir
.param phii
.param phimag
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.GE.AND P0, R0, c0[numk], PT
@P0 EXIT
    SHL R3, R0, 0x2
    IADD R4, R3, c0[phir]
    IADD R5, R3, c0[phii]
    LDG.32 R6, [R4]
    LDG.32 R7, [R5]
    FMUL R8, R6, R6
    FFMA R8, R7, R7, R8
    IADD R9, R3, c0[phimag]
    STG.32 [R9], R8
    EXIT

.kernel compute_q
.param numx
.param numk
.param phimag
.param kvals
.param xcoords
.param qr
.param qi
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.GE.AND P0, R0, c0[numx], PT
@P0 EXIT
    SHL R3, R0, 0x2
    IADD R4, R3, c0[xcoords]
    LDG.32 R5, [R4]               // x coordinate
    MOV R10, RZ                   // accumulated Qr
    MOV R11, RZ                   // accumulated Qi
    MOV R12, RZ                   // k index
kloop:
    ISETP.GE.AND P1, R12, c0[numk], PT
@P1 BRA done
    SHL R15, R12, 0x2
    IADD R16, R15, c0[phimag]
    LDG.32 R17, [R16]             // |phi[k]|^2
    IADD R18, R15, c0[kvals]
    LDG.32 R19, [R18]             // k value
    FMUL R20, R19, R5
    FMUL R20, R20, 0x40c90fdb     // 2*pi*k*x
    MUFU.COS R21, R20
    MUFU.SIN R22, R20
    FFMA R10, R17, R21, R10
    FFMA R11, R17, R22, R11
    IADD R12, R12, 0x1
    BRA kloop
done:
    IADD R25, R3, c0[qr]
    STG.32 [R25], R10
    IADD R26, R3, c0[qi]
    STG.32 [R26], R11
    EXIT
`

// Omriq builds the 314.omriq analog.
func Omriq() *Program {
	const (
		numK  = 64
		numX  = 256
		block = 64
	)
	return &Program{
		info: Info{
			Name:                 "314.omriq",
			Description:          "Medicine",
			PaperStaticKernels:   2,
			PaperDynamicKernels:  2,
			ScaledDynamicKernels: 2,
		},
		policy: Checked,
		tol:    1e-4,
		run: func(h *host) error {
			mod, err := h.module("314.omriq", omriqASM)
			if err != nil {
				return err
			}
			phiMagFn, err := mod.Function("compute_phi_mag")
			if err != nil {
				return err
			}
			qFn, err := mod.Function("compute_q")
			if err != nil {
				return err
			}
			phiR, err := h.alloc(4 * numK)
			if err != nil {
				return err
			}
			phiI, err := h.alloc(4 * numK)
			if err != nil {
				return err
			}
			phiMag, err := h.alloc(4 * numK)
			if err != nil {
				return err
			}
			kVals, err := h.alloc(4 * numK)
			if err != nil {
				return err
			}
			xCoords, err := h.alloc(4 * numX)
			if err != nil {
				return err
			}
			qr, err := h.alloc(4 * numX)
			if err != nil {
				return err
			}
			qi, err := h.alloc(4 * numX)
			if err != nil {
				return err
			}
			h.upload(phiR, f32bytes(randFloats(3141, numK, -1, 1)))
			h.upload(phiI, f32bytes(randFloats(3142, numK, -1, 1)))
			h.upload(kVals, f32bytes(randFloats(3143, numK, 0, 1)))
			h.upload(xCoords, f32bytes(randFloats(3144, numX, 0, 1)))

			h.launch(phiMagFn, cuda.LaunchConfig{
				Grid:  gpu.Dim3{X: numK / block, Y: 1, Z: 1},
				Block: gpu.Dim3{X: block, Y: 1, Z: 1},
			}, numK, phiR, phiI, phiMag)
			h.launch(qFn, cuda.LaunchConfig{
				Grid:  gpu.Dim3{X: numX / block, Y: 1, Z: 1},
				Block: gpu.Dim3{X: block, Y: 1, Z: 1},
			}, numX, numK, phiMag, kVals, xCoords, qr, qi)

			qrb := h.readBack(qr, 4*numX)
			qib := h.readBack(qi, 4*numX)
			h.out.Files["qr.dat"] = qrb
			h.out.Files["qi.dat"] = qib
			h.out.Printf("314.omriq numK %d numX %d\n", numK, numX)
			h.out.Printf("Qr %s Qi %s\n", fmtF(checksum32(f32From(qrb))), fmtF(checksum32(f32From(qib))))
			return nil
		},
	}
}
