package specaccel

import (
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"repro/internal/campaign"
)

func f32buf(vals ...float32) []byte {
	b := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(b[4*i:], math.Float32bits(v))
	}
	return b
}

func f64buf(vals ...float64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	return b
}

func outputWith(stdout string, file []byte) *campaign.Output {
	o := campaign.NewOutput()
	o.Stdout = stdout
	o.Files["out"] = file
	return o
}

// TestToleranceCheck: the SpecACCEL-style checker accepts deviations within
// relative tolerance and rejects ones beyond it.
func TestToleranceCheck(t *testing.T) {
	p := &Program{tol: 1e-4}
	golden := outputWith("checksum 1.000000e+00\n", f32buf(1, 2, 3))

	within := outputWith("checksum 1.000050e+00\n", f32buf(1.00005, 2, 3))
	if !p.Check(golden, within) {
		t.Error("within-tolerance output rejected")
	}
	beyond := outputWith("checksum 1.100000e+00\n", f32buf(1.1, 2, 3))
	if p.Check(golden, beyond) {
		t.Error("beyond-tolerance output accepted")
	}
	missingFile := campaign.NewOutput()
	missingFile.Stdout = golden.Stdout
	if p.Check(golden, missingFile) {
		t.Error("missing file accepted")
	}
	shorter := outputWith(golden.Stdout, f32buf(1, 2))
	if p.Check(golden, shorter) {
		t.Error("truncated file accepted")
	}
	wrongText := outputWith("CHECKSUM 1.000000e+00\n", f32buf(1, 2, 3))
	if p.Check(golden, wrongText) {
		t.Error("non-numeric stdout change accepted")
	}
	extraTokens := outputWith("checksum 1.000000e+00 extra\n", f32buf(1, 2, 3))
	if p.Check(golden, extraTokens) {
		t.Error("extra stdout tokens accepted")
	}
}

// TestToleranceCheckFP64: fp64 programs compare files as float64 arrays.
func TestToleranceCheckFP64(t *testing.T) {
	p := &Program{tol: 1e-6, fp64: true}
	golden := outputWith("sum 2.000000e+00\n", f64buf(2, 4))
	within := outputWith("sum 2.000000e+00\n", f64buf(2+1e-7, 4))
	if !p.Check(golden, within) {
		t.Error("within-tolerance fp64 output rejected")
	}
	beyond := outputWith("sum 2.000000e+00\n", f64buf(2.1, 4))
	if p.Check(golden, beyond) {
		t.Error("beyond-tolerance fp64 output accepted")
	}
}

// TestNaNHandling: NaN against NaN is equal (deterministic NaN output);
// NaN against a number is an SDC.
func TestNaNHandling(t *testing.T) {
	p := &Program{tol: 1e-4}
	nan := float32(math.NaN())
	golden := outputWith("x\n", f32buf(nan, 1))
	same := outputWith("x\n", f32buf(nan, 1))
	if !p.Check(golden, same) {
		t.Error("NaN vs NaN rejected")
	}
	differ := outputWith("x\n", f32buf(1, 1))
	if p.Check(golden, differ) {
		t.Error("number vs NaN accepted")
	}
}

func TestByNameAndNames(t *testing.T) {
	names := Names()
	if len(names) != 15 {
		t.Fatalf("%d programs, want 15 (Table IV)", len(names))
	}
	for _, name := range names {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if w.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, w.Name())
		}
	}
	if _, err := ByName("999.nope"); err == nil ||
		!strings.Contains(err.Error(), "unknown program") {
		t.Fatalf("unknown program lookup: %v", err)
	}
}

// TestTableIVReference: the catalog reproduces the paper's Table IV rows.
func TestTableIVReference(t *testing.T) {
	want := map[string][2]int{ // name -> {static, paper dynamic}
		"303.ostencil":  {2, 101},
		"304.olbm":      {3, 900},
		"314.omriq":     {2, 2},
		"350.md":        {3, 53},
		"351.palm":      {100, 7050},
		"352.ep":        {7, 187},
		"353.clvrleaf":  {116, 12528},
		"354.cg":        {22, 2027},
		"355.seismic":   {16, 3502},
		"356.sp":        {71, 27692},
		"357.csp":       {69, 26890},
		"359.miniGhost": {26, 8010},
		"360.ilbdc":     {1, 1000},
		"363.swim":      {22, 11999},
		"370.bt":        {50, 10069},
	}
	infos := Infos()
	if len(infos) != len(want) {
		t.Fatalf("%d infos", len(infos))
	}
	for _, info := range infos {
		w, ok := want[info.Name]
		if !ok {
			t.Fatalf("unexpected program %q", info.Name)
		}
		if info.PaperStaticKernels != w[0] || info.PaperDynamicKernels != w[1] {
			t.Errorf("%s: table IV row = %d/%d, want %d/%d",
				info.Name, info.PaperStaticKernels, info.PaperDynamicKernels, w[0], w[1])
		}
		if info.ScaledDynamicKernels <= 0 {
			t.Errorf("%s: no scaled dynamic kernel count", info.Name)
		}
	}
}

func TestStdoutClose(t *testing.T) {
	if !stdoutClose("a 1.5 b", "a 1.5000001 b", 1e-4) {
		t.Error("near-equal numeric tokens rejected")
	}
	if stdoutClose("a 1.5", "a 2.5", 1e-4) {
		t.Error("different numbers accepted")
	}
	if stdoutClose("a 1.5", "b 1.5", 1e-4) {
		t.Error("different words accepted")
	}
	if stdoutClose("a 1.5", "a x", 1e-4) {
		t.Error("number replaced by word accepted")
	}
	if stdoutClose("1", "1 2", 1e-4) {
		t.Error("different token counts accepted")
	}
}
