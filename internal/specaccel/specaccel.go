// Package specaccel implements scaled-down analogs of the 15 SpecACCEL
// OpenACC v1.2 benchmark programs the paper evaluates (Table IV). Each
// program is a real computation (stencil, lattice Boltzmann, conjugate
// gradient, ...) whose kernels are written in the SASS-like assembly and
// driven through the mini-CUDA API, with the paper's static-kernel counts
// preserved exactly and dynamic-kernel counts scaled down (documented per
// program) to keep campaigns laptop-sized. Every program carries the
// SDC-checking logic SpecACCEL ships with each benchmark: a tolerance-based
// comparison of output files and printed checksums.
package specaccel

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/cuda"
)

// ErrorPolicy selects how a program's host code treats CUDA errors, which
// drives the DUE-versus-potential-DUE split of Table V.
type ErrorPolicy uint8

// Error policies.
const (
	// Unchecked host code never checks CUDA errors: a device fault
	// surfaces, if at all, as corrupt output (potential DUE).
	Unchecked ErrorPolicy = iota + 1
	// Checked host code checks after the compute phase and exits nonzero
	// on any CUDA error (application-detected DUE).
	Checked
)

// Info is the Table IV row for a program.
type Info struct {
	Name        string
	Description string
	// PaperStaticKernels and PaperDynamicKernels are Table IV's values.
	PaperStaticKernels  int
	PaperDynamicKernels int
	// ScaledDynamicKernels is this implementation's dynamic launch count.
	ScaledDynamicKernels int
}

// Program is one SpecACCEL analog.
type Program struct {
	info   Info
	policy ErrorPolicy
	tol    float64
	fp64   bool // output files hold float64 values
	run    func(h *host) error
}

var _ campaign.Workload = (*Program)(nil)

// Name implements campaign.Workload.
func (p *Program) Name() string { return p.info.Name }

// Description implements campaign.Workload.
func (p *Program) Description() string { return p.info.Description }

// Info returns the program's Table IV row.
func (p *Program) Info() Info { return p.info }

// Run implements campaign.Workload.
func (p *Program) Run(ctx *cuda.Context) (*campaign.Output, error) {
	h := &host{ctx: ctx, out: campaign.NewOutput(), policy: p.policy}
	if err := p.run(h); err != nil {
		return h.out, err
	}
	if p.policy == Checked {
		if err := ctx.Synchronize(); err != nil {
			h.out.Printf("CUDA error: %v\n", err)
			h.out.ExitCode = 1
		}
	}
	return h.out, nil
}

// Check implements campaign.Workload: the SpecACCEL-style tolerance check.
// Output files are compared as float32 little-endian arrays with relative
// tolerance; stdout is compared token-wise with the same tolerance applied
// to numeric tokens.
func (p *Program) Check(golden, observed *campaign.Output) bool {
	if len(golden.Files) != len(observed.Files) {
		return false
	}
	for name, g := range golden.Files {
		o, ok := observed.Files[name]
		if !ok {
			return false
		}
		if p.fp64 {
			if !floatBytesClose64(g, o, p.tol) {
				return false
			}
		} else if !floatBytesClose(g, o, p.tol) {
			return false
		}
	}
	return stdoutClose(golden.Stdout, observed.Stdout, p.tol)
}

// floatBytesClose64 compares two byte buffers as float64 arrays with
// relative tolerance. It delegates to the allocation-free comparison
// primitives in internal/core shared by every classification path.
func floatBytesClose64(a, b []byte, tol float64) bool {
	return core.FloatBytesClose64(a, b, tol)
}

// floatBytesClose compares two byte buffers as float32 arrays with relative
// tolerance.
func floatBytesClose(a, b []byte, tol float64) bool {
	return core.FloatBytesClose32(a, b, tol)
}

func close64(x, y, tol float64) bool {
	return core.FloatClose(x, y, tol)
}

// stdoutClose compares stdout token streams: non-numeric tokens must match
// exactly, numeric tokens within tolerance.
func stdoutClose(a, b string, tol float64) bool {
	return core.StdoutTokensClose(a, b, tol)
}

// host wraps the context with the per-policy error handling the programs
// share: an Unchecked program swallows API errors (and later emits whatever
// output it has), a Checked program records them for its final exit check.
type host struct {
	ctx    *cuda.Context
	out    *campaign.Output
	policy ErrorPolicy
}

// module loads an assembly module, failing the program on compile errors
// (which are host bugs, not injected faults).
func (h *host) module(name, src string) (*cuda.Module, error) {
	return h.ctx.LoadModule(name, src)
}

// alloc allocates device memory; allocation failure is a host-level error.
func (h *host) alloc(n int) (cuda.DevPtr, error) {
	return h.ctx.Malloc(n)
}

// launch runs a kernel; device faults are deliberately not propagated —
// they surface through the sticky error exactly as unchecked CUDA launches
// do.
func (h *host) launch(f *cuda.Function, cfg cuda.LaunchConfig, params ...uint32) {
	// The sticky-error return from a poisoned context is ignored here by
	// design: both policies only observe errors at their checkpoints.
	_ = h.ctx.Launch(f, cfg, params...)
}

// readBack copies device memory to host; on error (poisoned context) it
// returns a zero-filled buffer, modelling a host buffer the failed memcpy
// never filled.
func (h *host) readBack(p cuda.DevPtr, n int) []byte {
	b, err := h.ctx.MemcpyDtoH(p, n)
	if err != nil {
		return make([]byte, n)
	}
	return b
}

// upload copies host bytes to the device.
func (h *host) upload(p cuda.DevPtr, b []byte) {
	_ = h.ctx.MemcpyHtoD(p, b)
}

// f32bytes converts float32s to device bytes.
func f32bytes(vals []float32) []byte {
	b := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(b[4*i:], math.Float32bits(v))
	}
	return b
}

// f64bytes converts float64s to device bytes (register-pair layout).
func f64bytes(vals []float64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	return b
}

// u32bytes converts uint32s to device bytes.
func u32bytes(vals []uint32) []byte {
	b := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(b[4*i:], v)
	}
	return b
}

// f32From reads float32s back from device bytes.
func f32From(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// f64From reads float64s back from device bytes.
func f64From(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// checksum32 is the deterministic output digest programs print.
func checksum32(vals []float32) float64 {
	var s float64
	for _, v := range vals {
		s += float64(v)
	}
	return s
}

func checksum64(vals []float64) float64 {
	var s float64
	for _, v := range vals {
		s += v
	}
	return s
}

// randFloats generates a deterministic input vector in [lo, hi).
func randFloats(seed int64, n int, lo, hi float32) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, n)
	for i := range out {
		out[i] = lo + (hi-lo)*rng.Float32()
	}
	return out
}

// randFloats64 generates a deterministic float64 input vector.
func randFloats64(seed int64, n int, lo, hi float64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*rng.Float64()
	}
	return out
}

// fmtF prints a float the way the programs' reference outputs do.
func fmtF(v float64) string { return fmt.Sprintf("%.6e", v) }

// registry holds the 15 programs, built lazily and deterministically.
func registry() []*Program {
	all := []*Program{
		Ostencil(),
		Olbm(),
		Omriq(),
		MD(),
		Palm(),
		EP(),
		Clvrleaf(),
		CG(),
		Seismic(),
		SP(),
		CSP(),
		MiniGhost(),
		Ilbdc(),
		Swim(),
		BT(),
	}
	out := all[:0]
	for _, p := range all {
		if p != nil {
			out = append(out, p)
		}
	}
	return out
}

// All returns the 15 SpecACCEL analogs in Table IV order.
func All() []campaign.Workload {
	progs := registry()
	out := make([]campaign.Workload, len(progs))
	for i, p := range progs {
		out[i] = p
	}
	return out
}

// ByName finds one program.
func ByName(name string) (campaign.Workload, error) {
	for _, p := range registry() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("specaccel: unknown program %q (have %s)",
		name, strings.Join(Names(), ", "))
}

// Names lists the program names in Table IV order.
func Names() []string {
	progs := registry()
	names := make([]string, len(progs))
	for i, p := range progs {
		names[i] = p.Name()
	}
	return names
}

// Infos returns every program's Table IV row.
func Infos() []Info {
	progs := registry()
	infos := make([]Info, len(progs))
	for i, p := range progs {
		infos[i] = p.Info()
	}
	sort.SliceStable(infos, func(a, b int) bool { return infos[a].Name < infos[b].Name })
	return infos
}

// f32bitsConst packs a float32 kernel parameter into its 4-byte word.
func f32bitsConst(f float32) uint32 { return math.Float32bits(f) }

// f64Param splits a float64 kernel parameter into its two 4-byte words
// (low, high), matching the register-pair layout FP64 constants use.
func f64Param(v float64) (lo, hi uint32) {
	b := math.Float64bits(v)
	return uint32(b), uint32(b >> 32)
}
