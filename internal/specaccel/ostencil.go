package specaccel

import (
	"repro/internal/cuda"
	"repro/internal/gpu"
)

// 303.ostencil: thermodynamics — an iterative 7-point 3D heat-diffusion
// stencil in FP32. Two static kernels (grid initialization and one stencil
// step), 1 + 100 = 101 dynamic kernels, matching Table IV exactly.
const ostencilASM = `
// 303.ostencil device code
.kernel init_grid
.param n
.param outptr
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.GE.AND P0, R0, c0[n], PT
@P0 EXIT
    IMUL R3, R0, 0x9e3779b1        // integer hash of the index
    SHR.U32 R4, R3, 0x8
    I2F R5, R4
    FMUL R5, R5, 0x33800000        // * 2^-24: uniform in [0,1)
    SHL R6, R0, 0x2
    IADD R7, R6, c0[outptr]
    STG.32 [R7], R5
    EXIT

.kernel stencil_step
.param n
.param inptr
.param outptr
.param cc
.param ce
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.GE.AND P0, R0, c0[n], PT
@P0 EXIT
    SHL R3, R0, 0x2
    IADD R4, R3, c0[inptr]
    IADD R5, R3, c0[outptr]
    LDG.32 R6, [R4]                // center point
    LOP.AND R7, R0, 0xf            // x = i & 15
    SHR.U32 R8, R0, 0x4
    LOP.AND R8, R8, 0xf            // y = (i >> 4) & 15
    SHR.U32 R9, R0, 0x8            // z = i >> 8
    ISETP.GE.AND P1, R7, 0x1, PT
    ISETP.LE.AND P1, R7, 0xe, P1
    ISETP.GE.AND P1, R8, 0x1, P1
    ISETP.LE.AND P1, R8, 0xe, P1
    ISETP.GE.AND P1, R9, 0x1, P1
    ISETP.LE.AND P1, R9, 0x6, P1
@P1 BRA interior
    STG.32 [R5], R6                // boundary: copy through
    EXIT
interior:
    LDG.32 R10, [R4+0x4]           // x+1
    LDG.32 R11, [R4-0x4]           // x-1
    LDG.32 R12, [R4+0x40]          // y+1
    LDG.32 R13, [R4-0x40]          // y-1
    LDG.32 R14, [R4+0x400]         // z+1
    LDG.32 R15, [R4-0x400]         // z-1
    FADD R16, R10, R11
    FADD R17, R12, R13
    FADD R18, R14, R15
    FADD R16, R16, R17
    FADD R16, R16, R18
    FMUL R19, R6, c0[cc]
    FFMA R19, R16, c0[ce], R19
    STG.32 [R5], R19
    EXIT
`

// Ostencil builds the 303.ostencil analog.
func Ostencil() *Program {
	const (
		nx, ny, nz = 16, 16, 8
		n          = nx * ny * nz
		steps      = 100
		block      = 128
		cc         = float32(0.4) // center coefficient
		ce         = float32(0.1) // edge coefficient
	)
	return &Program{
		info: Info{
			Name:                 "303.ostencil",
			Description:          "Thermodynamics",
			PaperStaticKernels:   2,
			PaperDynamicKernels:  101,
			ScaledDynamicKernels: 101,
		},
		policy: Unchecked,
		tol:    1e-4,
		run: func(h *host) error {
			mod, err := h.module("303.ostencil", ostencilASM)
			if err != nil {
				return err
			}
			initFn, err := mod.Function("init_grid")
			if err != nil {
				return err
			}
			stepFn, err := mod.Function("stencil_step")
			if err != nil {
				return err
			}
			a, err := h.alloc(4 * n)
			if err != nil {
				return err
			}
			b, err := h.alloc(4 * n)
			if err != nil {
				return err
			}
			cfg := cuda.LaunchConfig{
				Grid:  gpu.Dim3{X: n / block, Y: 1, Z: 1},
				Block: gpu.Dim3{X: block, Y: 1, Z: 1},
			}
			h.launch(initFn, cfg, n, a)
			src, dst := a, b
			for s := 0; s < steps; s++ {
				h.launch(stepFn, cfg, n, src, dst, f32bitsConst(cc), f32bitsConst(ce))
				src, dst = dst, src
			}
			final := h.readBack(src, 4*n)
			h.out.Files["output.dat"] = final
			h.out.Printf("303.ostencil grid %dx%dx%d steps %d\n", nx, ny, nz, steps)
			h.out.Printf("checksum %s\n", fmtF(checksum32(f32From(final))))
			return nil
		},
	}
}
