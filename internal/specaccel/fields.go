package specaccel

import (
	"fmt"

	"repro/internal/cuda"
	"repro/internal/gpu"
)

// The five "many-small-kernels" programs: atmospheric LES (351.palm),
// hydrodynamics (353.clvrleaf), seismic wave modelling (355.seismic),
// finite difference (359.miniGhost) and shallow water (363.swim). Each
// consists of a few hand-written core kernels plus a generated family of
// per-variable field-update kernels, reproducing Table IV's static-kernel
// counts exactly.

// stencil3Kernel emits a[i] = c0*b[i-1] + c1*b[i] + c2*b[i+1] (FP32).
func stencil3Kernel(name string, c0, c1, c2 float32) string {
	return fmt.Sprintf(`
.kernel %s
.param n
.param aptr
.param bptr
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.LT.AND P0, R0, 0x1, PT
    IADD R3, c0[n], -0x1
    ISETP.GE.OR P0, R0, R3, P0
@P0 EXIT
    SHL R3, R0, 0x2
    IADD R4, R3, c0[aptr]
    IADD R5, R3, c0[bptr]
    LDG.32 R6, [R5-0x4]
    LDG.32 R7, [R5]
    LDG.32 R8, [R5+0x4]
    FMUL R9, R6, 0x%08x
    FFMA R9, R7, 0x%08x, R9
    FFMA R9, R8, 0x%08x, R9
    STG.32 [R4], R9
    EXIT
`, name, f32bitsConst(c0), f32bitsConst(c1), f32bitsConst(c2))
}

// leapfrogKernel emits the wave-equation update
// a[i] = 2*b[i] - a[i] + cfl*(b[i-1] - 2*b[i] + b[i+1]).
func leapfrogKernel(name string, cfl float32) string {
	return fmt.Sprintf(`
.kernel %s
.param n
.param aptr
.param bptr
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.LT.AND P0, R0, 0x1, PT
    IADD R3, c0[n], -0x1
    ISETP.GE.OR P0, R0, R3, P0
@P0 EXIT
    SHL R3, R0, 0x2
    IADD R4, R3, c0[aptr]
    IADD R5, R3, c0[bptr]
    LDG.32 R6, [R5-0x4]
    LDG.32 R7, [R5]
    LDG.32 R8, [R5+0x4]
    LDG.32 R9, [R4]
    FADD R10, R6, R8
    FFMA R10, R7, 0xc0000000, R10  // laplacian
    FADD R11, R7, R7
    FADD R11, R11, -R9             // 2*b - a
    FFMA R11, R10, 0x%08x, R11
    STG.32 [R4], R11
    EXIT
`, name, f32bitsConst(cfl))
}

// sourceKernel injects a point source at n/2: a[n/2] += amp (one warp).
func sourceKernel(name string, amp float32) string {
	return fmt.Sprintf(`
.kernel %s
.param n
.param aptr
.param bptr
    S2R R0, SR_TID.X
    ISETP.NE.AND P0, R0, 0x0, PT
@P0 EXIT
    SHR.U32 R1, c0[n], 0x1
    SHL R1, R1, 0x2
    IADD R2, R1, c0[aptr]
    LDG.32 R3, [R2]
    FADD R3, R3, 0x%08x
    STG.32 [R2], R3
    EXIT
`, name, f32bitsConst(amp))
}

// shiftCopyKernel copies b shifted by stride elements into a — the
// halo pack/unpack pattern.
func shiftCopyKernel(name string, stride int32) string {
	off := stride * 4
	sign := "+"
	if off < 0 {
		sign = "-"
		off = -off
	}
	margin := stride
	if margin < 0 {
		margin = -margin
	}
	margin++ // symmetric safety margin at both ends
	return fmt.Sprintf(`
.kernel %s
.param n
.param aptr
.param bptr
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.LT.AND P0, R0, 0x%x, PT
    IADD R3, c0[n], -0x%x
    ISETP.GE.OR P0, R0, R3, P0
@P0 EXIT
    SHL R3, R0, 0x2
    IADD R4, R3, c0[aptr]
    IADD R5, R3, c0[bptr]
    LDG.32 R6, [R5%s0x%x]
    FMUL R6, R6, 0x3f7d70a4        // 0.99 damping
    STG.32 [R4], R6
    EXIT
`, name, margin, margin, sign, off)
}

// initPairKernel initializes both field buffers from the index hash.
func initPairKernel(name string) string {
	return fmt.Sprintf(`
.kernel %s
.param n
.param aptr
.param bptr
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.GE.AND P0, R0, c0[n], PT
@P0 EXIT
    IMUL R3, R0, 0x9e3779b1
    SHR.U32 R4, R3, 0x8
    I2F R5, R4
    FMUL R5, R5, 0x33800000
    SHL R6, R0, 0x2
    IADD R7, R6, c0[aptr]
    STG.32 [R7], R5
    IADD R8, R6, c0[bptr]
    FMUL R9, R5, 0x3f000000
    STG.32 [R8], R9
    EXIT
`, name)
}

// familyRun builds the shared host driver: init once, then per step the
// hand kernels, with the generated family interleaved so that every family
// kernel launches famRepeat times across the run.
func familyRun(modName, asm, famPrefix string, famCount, famRepeat int,
	handStep []string, steps, n, block int) func(h *host) error {
	return familyRunSized(modName, asm, famPrefix, famCount, famRepeat, handStep, steps, n, block, false)
}

// familyRunSized is familyRun with an FP64 element-size switch.
func familyRunSized(modName, asm, famPrefix string, famCount, famRepeat int,
	handStep []string, steps, n, block int, fp64 bool) func(h *host) error {
	elem := 4
	if fp64 {
		elem = 8
	}
	return func(h *host) error {
		mod, err := h.module(modName, asm)
		if err != nil {
			return err
		}
		initFn, err := mod.Function("init")
		if err != nil {
			return err
		}
		hand := make([]*cuda.Function, len(handStep))
		for i, name := range handStep {
			if hand[i], err = mod.Function(name); err != nil {
				return err
			}
		}
		fam := make([]*cuda.Function, famCount)
		for i := range fam {
			if fam[i], err = mod.Function(fmt.Sprintf("%s_%03d", famPrefix, i)); err != nil {
				return err
			}
		}
		a, err := h.alloc(elem * n)
		if err != nil {
			return err
		}
		b, err := h.alloc(elem * n)
		if err != nil {
			return err
		}
		cfg := cuda.LaunchConfig{
			Grid:  gpu.Dim3{X: (n + block - 1) / block, Y: 1, Z: 1},
			Block: gpu.Dim3{X: block, Y: 1, Z: 1},
		}
		h.launch(initFn, cfg, uint32(n), a, b)

		famTotal := famCount * famRepeat
		famIdx := 0
		for s := 0; s < steps; s++ {
			for _, f := range hand {
				h.launch(f, cfg, uint32(n), a, b)
			}
			// Interleave the family evenly across steps.
			want := famTotal * (s + 1) / steps
			for ; famIdx < want; famIdx++ {
				h.launch(fam[famIdx%famCount], cfg, uint32(n), a, b)
			}
		}
		final := h.readBack(a, elem*n)
		h.out.Files["field.dat"] = final
		h.out.Printf("%s n %d steps %d kernels %d\n", modName, n, steps, 1+len(hand)+famCount)
		if fp64 {
			h.out.Printf("norm %s\n", fmtF(checksum64(f64From(final))))
		} else {
			h.out.Printf("norm %s\n", fmtF(checksum32(f32From(final))))
		}
		return nil
	}
}

// Palm builds the 351.palm analog: large-eddy simulation, atmospheric
// turbulence. 100 static kernels (init + 3 core + 96 tendency kernels);
// dynamic 1 + 14x3 + 96 = 139 (paper: 7,050, scaled ~1/50).
func Palm() *Program {
	const famCount, steps, n, block = 96, 14, 1024, 128
	asm := initPairKernel("init") +
		stencil3Kernel("adv_u", 0.24, 0.5, 0.26) +
		stencil3Kernel("adv_v", 0.26, 0.5, 0.24) +
		stencil3Kernel("pressure", 0.25, 0.49, 0.25) +
		genFamily(fieldKernelF32, "tend", famCount)
	return &Program{
		info: Info{
			Name:                 "351.palm",
			Description:          "Large-eddy simulation, atmospheric turbulence",
			PaperStaticKernels:   100,
			PaperDynamicKernels:  7050,
			ScaledDynamicKernels: 1 + steps*3 + famCount,
		},
		policy: Unchecked,
		tol:    1e-4,
		run: familyRun("351.palm", asm, "tend", famCount, 1,
			[]string{"adv_u", "adv_v", "pressure"}, steps, n, block),
	}
}

// Clvrleaf builds the 353.clvrleaf analog: staggered-grid hydrodynamics.
// 116 static kernels (init + 3 core + 112 cell kernels); dynamic
// 1 + 8x3 + 224 = 249 (paper: 12,528, scaled ~1/50).
func Clvrleaf() *Program {
	const famCount, famRepeat, steps, n, block = 112, 2, 8, 1024, 128
	asm := initPairKernel("init") +
		stencil3Kernel("eos", 0.2, 0.6, 0.2) +
		stencil3Kernel("flux", 0.3, 0.4, 0.3) +
		stencil3Kernel("advec", 0.1, 0.8, 0.1) +
		genFamily(fieldKernelF32, "cell", famCount)
	return &Program{
		info: Info{
			Name:                 "353.clvrleaf",
			Description:          "Weather",
			PaperStaticKernels:   116,
			PaperDynamicKernels:  12528,
			ScaledDynamicKernels: 1 + steps*3 + famCount*famRepeat,
		},
		policy: Checked,
		tol:    1e-4,
		run: familyRun("353.clvrleaf", asm, "cell", famCount, famRepeat,
			[]string{"eos", "flux", "advec"}, steps, n, block),
	}
}

// Seismic builds the 355.seismic analog: acoustic wave propagation with a
// point source and damping layers. 16 static kernels (init + 4 core + 11
// damping kernels); dynamic 1 + 26x4 + 11 = 116 (paper: 3,502, ~1/30).
func Seismic() *Program {
	const famCount, steps, n, block = 11, 26, 1024, 128
	asm := initPairKernel("init") +
		leapfrogKernel("update_p", 0.2) +
		stencil3Kernel("update_vx", 0.45, 0.1, 0.45) +
		stencil3Kernel("update_vy", 0.4, 0.2, 0.4) +
		sourceKernel("source", 0.5) +
		genFamily(fieldKernelF32, "damp", famCount)
	return &Program{
		info: Info{
			Name:                 "355.seismic",
			Description:          "Seismic wave modeling",
			PaperStaticKernels:   16,
			PaperDynamicKernels:  3502,
			ScaledDynamicKernels: 1 + steps*4 + famCount,
		},
		policy: Unchecked,
		tol:    1e-4,
		run: familyRun("355.seismic", asm, "damp", famCount, 1,
			[]string{"update_p", "update_vx", "update_vy", "source"}, steps, n, block),
	}
}

// smemStencilY is 359.miniGhost's y-sweep as a shared-memory tiled stencil:
// each block stages its tile (plus halo cells) into shared memory, barriers,
// and computes from the tile — the canonical GPU stencil structure. It is
// numerically identical to stencil3Kernel("stencil_y", 0.35, 0.3, 0.35) but
// exercises STS/LDS/BAR.SYNC, so injection campaigns reach the shared-memory
// and barrier fault paths.
const smemStencilY = `
.kernel stencil_y
.param n
.param aptr
.param bptr
.shared 520
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R3, R1, R2, R0            // global index i
    ISETP.GE.AND P0, R3, c0[n], PT
@P0 EXIT
    SHL R4, R3, 0x2
    IADD R5, R4, c0[bptr]
    LDG.32 R6, [R5]
    IADD R7, R0, 0x1               // tile slot = tid + 1 (slot 0 is halo)
    SHL R7, R7, 0x2
    STS.32 [R7], R6
    ISETP.NE.AND P1, R0, 0x0, PT   // first thread loads the left halo
@P1 BRA skiplo
    ISETP.LT.AND P2, R3, 0x1, PT
@P2 BRA skiplo
    LDG.32 R8, [R5-0x4]
    STS.32 [RZ], R8
skiplo:
    IADD R9, R2, -0x1              // last thread loads the right halo
    ISETP.NE.AND P3, R0, R9, PT
@P3 BRA skiphi
    IADD R10, c0[n], -0x1
    ISETP.GE.AND P4, R3, R10, PT
@P4 BRA skiphi
    LDG.32 R8, [R5+0x4]
    IADD R11, R2, 0x1
    SHL R11, R11, 0x2
    STS.32 [R11], R8
skiphi:
    BAR.SYNC
    ISETP.LT.AND P5, R3, 0x1, PT   // interior cells only
    IADD R12, c0[n], -0x1
    ISETP.GE.OR P5, R3, R12, P5
@P5 EXIT
    LDS.32 R13, [R7-0x4]
    LDS.32 R14, [R7]
    LDS.32 R15, [R7+0x4]
    FMUL R16, R13, 0x3eb33333      // 0.35 * left
    FFMA R16, R14, 0x3e99999a, R16 // + 0.30 * center
    FFMA R16, R15, 0x3eb33333, R16 // + 0.35 * right
    IADD R17, R4, c0[aptr]
    STG.32 [R17], R16
    EXIT
`

// MiniGhost builds the 359.miniGhost analog: finite difference with halo
// exchange. 26 static kernels (init + 5 core + 20 variable kernels);
// dynamic 1 + 28x5 + 20 = 161 (paper: 8,010, ~1/50).
func MiniGhost() *Program {
	const famCount, steps, n, block = 20, 28, 1024, 128
	asm := initPairKernel("init") +
		stencil3Kernel("stencil_x", 0.3, 0.4, 0.3) +
		smemStencilY +
		stencil3Kernel("stencil_z", 0.25, 0.5, 0.25) +
		shiftCopyKernel("pack", 4) +
		shiftCopyKernel("unpack", -4) +
		genFamily(fieldKernelF32, "var", famCount)
	return &Program{
		info: Info{
			Name:                 "359.miniGhost",
			Description:          "Finite difference",
			PaperStaticKernels:   26,
			PaperDynamicKernels:  8010,
			ScaledDynamicKernels: 1 + steps*5 + famCount,
		},
		policy: Checked,
		tol:    1e-4,
		run: familyRun("359.miniGhost", asm, "var", famCount, 1,
			[]string{"stencil_x", "stencil_y", "stencil_z", "pack", "unpack"}, steps, n, block),
	}
}

// Swim builds the 363.swim analog: shallow-water weather prediction.
// 22 static kernels (init + 3 core + 18 filter kernels); dynamic
// 1 + 27x3 + 36 = 118 (paper: 11,999, ~1/100).
func Swim() *Program {
	const famCount, famRepeat, steps, n, block = 18, 2, 27, 1024, 128
	asm := initPairKernel("init") +
		stencil3Kernel("calc1", 0.2, 0.55, 0.25) +
		stencil3Kernel("calc2", 0.25, 0.55, 0.2) +
		stencil3Kernel("calc3", 0.3, 0.42, 0.28) +
		genFamily(fieldKernelF32, "filter", famCount)
	return &Program{
		info: Info{
			Name:                 "363.swim",
			Description:          "Weather",
			PaperStaticKernels:   22,
			PaperDynamicKernels:  11999,
			ScaledDynamicKernels: 1 + steps*3 + famCount*famRepeat,
		},
		policy: Unchecked,
		tol:    1e-4,
		run: familyRun("363.swim", asm, "filter", famCount, famRepeat,
			[]string{"calc1", "calc2", "calc3"}, steps, n, block),
	}
}
