package specaccel

import (
	"repro/internal/cuda"
	"repro/internal/gpu"
)

// 352.ep: embarrassingly parallel — the NAS EP pattern: per-thread LCG
// random streams, Box-Muller Gaussian pairs, histogram binning with global
// atomics, and atomic partial sums. Seven static kernels as in Table IV;
// 1 + 12 batches x 5 + 1 = 62 dynamic kernels (paper: 187, scaled ~1/3).
const epASM = `
// 352.ep device code
.kernel init_seed
.param n
.param seeds
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.GE.AND P0, R0, c0[n], PT
@P0 EXIT
    IMUL R3, R0, 0x9e3779b1
    LOP.OR R3, R3, 0x1             // keep streams odd
    SHL R4, R0, 0x2
    IADD R5, R4, c0[seeds]
    STG.32 [R5], R3
    EXIT

.kernel lcg_advance
.param n
.param seeds
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.GE.AND P0, R0, c0[n], PT
@P0 EXIT
    SHL R4, R0, 0x2
    IADD R5, R4, c0[seeds]
    LDG.32 R6, [R5]
adv:
    // Rejection-style advance: draw until the low byte accepts. The trip
    // count is data-dependent and differs across threads AND across
    // dynamic instances, so approximate profiling genuinely extrapolates
    // wrong counts for this kernel, as it does for irregular kernels in
    // the paper's suite.
    IMAD R6, R6, 0x19660d, RZ
    IADD R6, R6, 0x3c6ef35f
    LOP.AND R7, R6, 0xff
    ISETP.GE.AND P1, R7, 0x80, PT
@P1 BRA adv
    STG.32 [R5], R6
    EXIT

.kernel gauss_pairs
.param n
.param seeds
.param sx
.param sy
.param xs
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.GE.AND P0, R0, c0[n], PT
@P0 EXIT
    SHL R4, R0, 0x2
    IADD R5, R4, c0[seeds]
    LDG.32 R6, [R5]
    SHR.U32 R7, R6, 0x8
    LOP.OR R7, R7, 0x1             // u1 mantissa, nonzero
    I2F R8, R7
    FMUL R8, R8, 0x33800000        // u1 in (0,1)
    IMAD R6, R6, 0x19660d, RZ
    IADD R6, R6, 0x3c6ef35f        // advance for u2
    STG.32 [R5], R6
    SHR.U32 R9, R6, 0x8
    I2F R10, R9
    FMUL R10, R10, 0x33800000      // u2 in [0,1)
    MUFU.LG2 R11, R8               // log2(u1)
    FMUL R11, R11, 0xbf317218      // * -ln(2): -2*ln(u1)/2... scaled below
    FADD R11, R11, R11             // -2 ln(u1)
    MUFU.SQRT R12, R11             // t
    FMUL R13, R10, 0x40c90fdb      // 2 pi u2
    MUFU.COS R14, R13
    MUFU.SIN R15, R13
    FMUL R14, R14, R12             // x
    FMUL R15, R15, R12             // y
    IADD R16, R4, c0[sx]
    LDG.32 R17, [R16]
    FADD R17, R17, R14
    STG.32 [R16], R17
    IADD R18, R4, c0[sy]
    LDG.32 R19, [R18]
    FADD R19, R19, R15
    STG.32 [R18], R19
    IADD R20, R4, c0[xs]
    STG.32 [R20], R14
    EXIT

.kernel bin_count
.param n
.param xs
.param bins
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.GE.AND P0, R0, c0[n], PT
@P0 EXIT
    SHL R4, R0, 0x2
    IADD R5, R4, c0[xs]
    LDG.32 R6, [R5]
    LOP.AND R6, R6, 0x7fffffff     // |x|
    F2I.TRUNC R7, R6
    IMNMX R7, R7, 0x7, PT          // clamp to 0..7 (min with 7)
    SHL R8, R7, 0x2
    IADD R9, R8, c0[bins]
    MOV R10, 0x1
    RED.ADD [R9], R10
    EXIT

.kernel partial_sx
.param n
.param sx
.param total
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.GE.AND P0, R0, c0[n], PT
@P0 EXIT
    SHL R4, R0, 0x2
    IADD R5, R4, c0[sx]
    LDG.32 R6, [R5]
    MOV R7, c0[total]
    RED.ADD.F32 [R7], R6
    EXIT

.kernel partial_sy
.param n
.param sy
.param total
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.GE.AND P0, R0, c0[n], PT
@P0 EXIT
    SHL R4, R0, 0x2
    IADD R5, R4, c0[sy]
    LDG.32 R6, [R5]
    MOV R7, c0[total]
    RED.ADD.F32 [R7+0x4], R6
    EXIT

.kernel finalize
.param bins
.param total
.param outp
    S2R R0, SR_TID.X               // 0..9, single warp
    ISETP.GE.AND P0, R0, 0xa, PT
@P0 EXIT
    ISETP.GE.AND P1, R0, 0x2, PT
@P1 BRA dobin
    SHL R3, R0, 0x2
    IADD R4, R3, c0[total]
    LDG.32 R5, [R4]                // sums pass through
    IADD R6, R3, c0[outp]
    STG.32 [R6], R5
    EXIT
dobin:
    IADD R3, R0, -0x2
    SHL R3, R3, 0x2
    IADD R4, R3, c0[bins]
    LDG.32 R5, [R4]
    I2F R6, R5                     // counts reported as floats
    SHL R7, R0, 0x2
    IADD R8, R7, c0[outp]
    STG.32 [R8], R6
    EXIT
`

// EP builds the 352.ep analog.
func EP() *Program {
	const (
		n       = 256
		batches = 12
		block   = 64
	)
	return &Program{
		info: Info{
			Name:                 "352.ep",
			Description:          "Embarrassingly parallel",
			PaperStaticKernels:   7,
			PaperDynamicKernels:  187,
			ScaledDynamicKernels: 1 + 5*batches + 1,
		},
		policy: Checked,
		tol:    1e-4,
		run: func(h *host) error {
			mod, err := h.module("352.ep", epASM)
			if err != nil {
				return err
			}
			fns := make(map[string]*cuda.Function, 7)
			for _, name := range []string{
				"init_seed", "lcg_advance", "gauss_pairs", "bin_count",
				"partial_sx", "partial_sy", "finalize",
			} {
				f, err := mod.Function(name)
				if err != nil {
					return err
				}
				fns[name] = f
			}
			seeds, err := h.alloc(4 * n)
			if err != nil {
				return err
			}
			sx, err := h.alloc(4 * n)
			if err != nil {
				return err
			}
			sy, err := h.alloc(4 * n)
			if err != nil {
				return err
			}
			xs, err := h.alloc(4 * n)
			if err != nil {
				return err
			}
			bins, err := h.alloc(4 * 8)
			if err != nil {
				return err
			}
			total, err := h.alloc(4 * 2)
			if err != nil {
				return err
			}
			outp, err := h.alloc(4 * 10)
			if err != nil {
				return err
			}
			h.upload(sx, make([]byte, 4*n))
			h.upload(sy, make([]byte, 4*n))
			h.upload(bins, make([]byte, 4*8))
			h.upload(total, make([]byte, 4*2))

			cfg := cuda.LaunchConfig{
				Grid:  gpu.Dim3{X: n / block, Y: 1, Z: 1},
				Block: gpu.Dim3{X: block, Y: 1, Z: 1},
			}
			one := cuda.LaunchConfig{
				Grid:  gpu.Dim3{X: 1, Y: 1, Z: 1},
				Block: gpu.Dim3{X: 32, Y: 1, Z: 1},
			}
			h.launch(fns["init_seed"], cfg, n, seeds)
			for b := 0; b < batches; b++ {
				h.launch(fns["lcg_advance"], cfg, n, seeds)
				h.launch(fns["gauss_pairs"], cfg, n, seeds, sx, sy, xs)
				h.launch(fns["bin_count"], cfg, n, xs, bins)
				h.launch(fns["partial_sx"], cfg, n, sx, total)
				h.launch(fns["partial_sy"], cfg, n, sy, total)
			}
			h.launch(fns["finalize"], one, bins, total, outp)

			res := h.readBack(outp, 4*10)
			h.out.Files["ep.dat"] = res
			vals := f32From(res)
			h.out.Printf("352.ep pairs %d batches %d\n", n, batches)
			h.out.Printf("SX %s SY %s\n", fmtF(float64(vals[0])), fmtF(float64(vals[1])))
			return nil
		},
	}
}
