package specaccel_test

import (
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/specaccel"
)

// TestGoldenRuns runs every registered program fault-free and validates the
// basic contract: nonempty deterministic output, zero exit, and profile
// shape matching the program's declared kernel counts.
func TestGoldenRuns(t *testing.T) {
	for _, w := range specaccel.All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			t.Parallel()
			r := campaign.Runner{}
			g1, err := r.Golden(w)
			if err != nil {
				t.Fatalf("golden: %v", err)
			}
			if g1.Output.Stdout == "" {
				t.Error("no stdout produced")
			}
			if len(g1.Output.Files) == 0 {
				t.Error("no output files produced")
			}
			if !strings.Contains(g1.Output.Stdout, w.Name()) {
				t.Errorf("stdout does not identify the program: %q", g1.Output.Stdout)
			}
			g2, err := r.Golden(w)
			if err != nil {
				t.Fatalf("second golden: %v", err)
			}
			if !g1.Output.Equal(g2.Output) {
				t.Error("golden runs are not deterministic")
			}

			p, _, err := r.Profile(w, core.Exact)
			if err != nil {
				t.Fatalf("profile: %v", err)
			}
			prog, err := specaccel.ByName(w.Name())
			if err != nil {
				t.Fatal(err)
			}
			info := prog.(*specaccel.Program).Info()
			if got := len(p.StaticKernels()); got != info.PaperStaticKernels {
				t.Errorf("static kernels = %d, want %d (Table IV)", got, info.PaperStaticKernels)
			}
			if got := p.DynamicKernels(); got != info.ScaledDynamicKernels {
				t.Errorf("dynamic kernels = %d, want declared %d", got, info.ScaledDynamicKernels)
			}
		})
	}
}
