package specaccel_test

import (
	"context"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/sass"
	"repro/internal/specaccel"
)

// TestCrossFamilyGoldenEquivalence: the workloads are written against the
// abstract ISA, so the same program must produce bit-identical golden
// output on every architecture family — each family's device compiles the
// modules into its own machine-code format and decodes them back. This is
// the end-to-end version of the NVBit architectural-abstraction claim.
func TestCrossFamilyGoldenEquivalence(t *testing.T) {
	programs := []string{"303.ostencil", "314.omriq", "352.ep", "360.ilbdc"}
	for _, name := range programs {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w, err := specaccel.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			var ref *campaign.GoldenResult
			for _, fam := range sass.Families() {
				r := campaign.Runner{Family: fam}
				g, err := r.Golden(w)
				if err != nil {
					t.Fatalf("%v: %v", fam, err)
				}
				if ref == nil {
					ref = g
					continue
				}
				if !g.Output.Equal(ref.Output) {
					t.Fatalf("%v output differs from %v", fam, sass.Families()[0])
				}
				if g.Stats != ref.Stats {
					t.Fatalf("%v stats %+v differ from %+v", fam, g.Stats, ref.Stats)
				}
			}
		})
	}
}

// TestCrossFamilyInjectionEquivalence: the same profiled fault coordinates
// produce the same outcome on every family — injection campaigns are
// family-portable, as the paper's "single interface ... on all recent
// NVIDIA architecture families" claims.
func TestCrossFamilyInjectionEquivalence(t *testing.T) {
	w, err := specaccel.ByName("314.omriq")
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		class campaign.Classification
		rec   string
	}
	var ref *outcome
	for _, fam := range sass.Families() {
		r := campaign.Runner{Family: fam}
		golden, err := r.Golden(w)
		if err != nil {
			t.Fatalf("%v: %v", fam, err)
		}
		res, err := r.RunTransient(context.Background(), w, golden, crossFamilyFault())
		if err != nil {
			t.Fatalf("%v: %v", fam, err)
		}
		cur := &outcome{class: res.Class, rec: res.Injection.Target}
		if !res.Injection.Activated {
			t.Fatalf("%v: fault did not activate", fam)
		}
		if ref == nil {
			ref = cur
			continue
		}
		if cur.class != ref.class || cur.rec != ref.rec {
			t.Fatalf("%v: outcome %v/%s differs from %v/%s",
				fam, cur.class, cur.rec, ref.class, ref.rec)
		}
	}
}

func crossFamilyFault() core.TransientParams {
	return core.TransientParams{
		Group:           sass.GroupGP,
		BitFlip:         core.FlipTwoBits,
		KernelName:      "compute_q",
		KernelCount:     0,
		InstrCount:      5000,
		DestRegSelect:   0.4,
		BitPatternValue: 0.6,
	}
}
