package specaccel

import (
	"fmt"
	"math"

	"repro/internal/cuda"
	"repro/internal/gpu"
)

// The solver programs: 354.cg (a real FP64 conjugate-gradient iteration
// with host-side dot-product reductions, as cuBLAS-based CG codes do),
// and the NAS-style penta-/tri-diagonal sweep solvers 356.sp, 357.csp and
// 370.bt, built from generated per-variable sweep-kernel families.

// stencil3Kernel64 is stencil3Kernel in FP64: a[i] = c0*b[i-1] + c1*b[i] +
// c2*b[i+1] on register pairs.
func stencil3Kernel64(name string, c0, c1, c2 float32) string {
	return fmt.Sprintf(`
.kernel %s
.param n
.param aptr
.param bptr
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.LT.AND P0, R0, 0x1, PT
    IADD R3, c0[n], -0x1
    ISETP.GE.OR P0, R0, R3, P0
@P0 EXIT
    SHL R3, R0, 0x3
    IADD R4, R3, c0[aptr]
    IADD R5, R3, c0[bptr]
    LDG.64 R6, [R5-0x8]
    LDG.64 R8, [R5]
    LDG.64 R10, [R5+0x8]
    DMUL R12, R6, 0x%08x
    DFMA R12, R8, 0x%08x, R12
    DFMA R12, R10, 0x%08x, R12
    STG.64 [R4], R12
    EXIT
`, name, f32bitsConst(c0), f32bitsConst(c1), f32bitsConst(c2))
}

// initPairKernel64 initializes two FP64 buffers from the index hash.
func initPairKernel64(name string) string {
	return fmt.Sprintf(`
.kernel %s
.param n
.param aptr
.param bptr
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.GE.AND P0, R0, c0[n], PT
@P0 EXIT
    IMUL R3, R0, 0x9e3779b1
    SHR.U32 R4, R3, 0x8
    I2F R5, R4
    FMUL R5, R5, 0x33800000
    F2F.64 R6, R5
    SHL R8, R0, 0x3
    IADD R9, R8, c0[aptr]
    STG.64 [R9], R6
    DMUL R10, R6, 0x3f000000
    IADD R11, R8, c0[bptr]
    STG.64 [R11], R10
    EXIT
`, name)
}

// cgASM holds 354.cg's ten hand-written FP64 kernels. The matrix is the
// SPD tridiagonal A = tridiag(-1, 2.2, -1), applied matrix-free in spmv.
const cgASM = `
// 354.cg device code (FP64)
.kernel init_x
.param n
.param xptr
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.GE.AND P0, R0, c0[n], PT
@P0 EXIT
    SHL R3, R0, 0x3
    IADD R4, R3, c0[xptr]
    STG.64 [R4], RZ
    EXIT

.kernel init_b
.param n
.param bptr
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.GE.AND P0, R0, c0[n], PT
@P0 EXIT
    IMUL R3, R0, 0x9e3779b1
    SHR.U32 R4, R3, 0x8
    I2F R5, R4
    FMUL R5, R5, 0x33800000
    F2F.64 R6, R5
    SHL R8, R0, 0x3
    IADD R9, R8, c0[bptr]
    STG.64 [R9], R6
    EXIT

.kernel spmv
.param n
.param xptr
.param yptr
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.GE.AND P0, R0, c0[n], PT
@P0 EXIT
    SHL R3, R0, 0x3
    IADD R4, R3, c0[xptr]
    LDG.64 R6, [R4]
    DMUL R8, R6, 0x400ccccd        // 2.2 * x[i]
    ISETP.GE.AND P1, R0, 0x1, PT
@P1 BRA haslo
    BRA hidone
haslo:
    LDG.64 R10, [R4-0x8]
    DADD R8, R8, -R10
hidone:
    IADD R12, c0[n], -0x1
    ISETP.LT.AND P2, R0, R12, PT
@P2 BRA hashi
    BRA store
hashi:
    LDG.64 R10, [R4+0x8]
    DADD R8, R8, -R10
store:
    IADD R13, R3, c0[yptr]
    STG.64 [R13], R8
    EXIT

.kernel vsub
.param n
.param rptr
.param bptr
.param yptr
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.GE.AND P0, R0, c0[n], PT
@P0 EXIT
    SHL R3, R0, 0x3
    IADD R4, R3, c0[bptr]
    LDG.64 R6, [R4]
    IADD R5, R3, c0[yptr]
    LDG.64 R8, [R5]
    DADD R10, R6, -R8
    IADD R7, R3, c0[rptr]
    STG.64 [R7], R10
    EXIT

.kernel vcopy
.param n
.param dst
.param src
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.GE.AND P0, R0, c0[n], PT
@P0 EXIT
    SHL R3, R0, 0x3
    IADD R4, R3, c0[src]
    LDG.64 R6, [R4]
    IADD R5, R3, c0[dst]
    STG.64 [R5], R6
    EXIT

.kernel scale
.param n
.param xptr
.param c_lo
.param c_hi
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.GE.AND P0, R0, c0[n], PT
@P0 EXIT
    SHL R3, R0, 0x3
    IADD R4, R3, c0[xptr]
    LDG.64 R6, [R4]
    DMUL R6, R6, c0[c_lo]
    STG.64 [R4], R6
    EXIT

.kernel dot_partial
.param n
.param aptr
.param bptr
.param outp
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.GE.AND P0, R0, c0[n], PT
@P0 EXIT
    SHL R3, R0, 0x3
    IADD R4, R3, c0[aptr]
    LDG.64 R6, [R4]
    IADD R5, R3, c0[bptr]
    LDG.64 R8, [R5]
    DMUL R10, R6, R8
    IADD R7, R3, c0[outp]
    STG.64 [R7], R10
    EXIT

.kernel axpy
.param n
.param yptr
.param xptr
.param a_lo
.param a_hi
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.GE.AND P0, R0, c0[n], PT
@P0 EXIT
    SHL R3, R0, 0x3
    IADD R4, R3, c0[xptr]
    LDG.64 R6, [R4]
    IADD R5, R3, c0[yptr]
    LDG.64 R8, [R5]
    DFMA R8, R6, c0[a_lo], R8
    STG.64 [R5], R8
    EXIT

.kernel aypx
.param n
.param pptr
.param rptr
.param b_lo
.param b_hi
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.GE.AND P0, R0, c0[n], PT
@P0 EXIT
    SHL R3, R0, 0x3
    IADD R4, R3, c0[pptr]
    LDG.64 R6, [R4]
    IADD R5, R3, c0[rptr]
    LDG.64 R8, [R5]
    DFMA R6, R6, c0[b_lo], R8
    STG.64 [R4], R6
    EXIT

.kernel norm_partial
.param n
.param xptr
.param outp
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.GE.AND P0, R0, c0[n], PT
@P0 EXIT
    SHL R3, R0, 0x3
    IADD R4, R3, c0[xptr]
    LDG.64 R6, [R4]
    DMUL R8, R6, R6
    IADD R5, R3, c0[outp]
    STG.64 [R5], R8
    EXIT
`

// CG builds the 354.cg analog: FP64 conjugate gradient on
// A = tridiag(-1, 2.2, -1), with dot products reduced on the host.
// 22 static kernels (10 hand + 12 preconditioner family); dynamic
// 1+1+1+1+1+1 + 12 + 12x6 + 1 = 91 (paper: 2,027, scaled ~1/20).
func CG() *Program {
	const (
		n     = 256
		iters = 12
		block = 64
		fam   = 12
	)
	asm := cgASM + genFamily(fieldKernelF64, "precond", fam)
	return &Program{
		info: Info{
			Name:                 "354.cg",
			Description:          "Conjugate gradient",
			PaperStaticKernels:   22,
			PaperDynamicKernels:  2027,
			ScaledDynamicKernels: 6 + fam + 1 + 6*iters + 1,
		},
		policy: Unchecked,
		tol:    1e-6,
		fp64:   true,
		run: func(h *host) error {
			mod, err := h.module("354.cg", asm)
			if err != nil {
				return err
			}
			fn := func(name string) (*cuda.Function, error) { return mod.Function(name) }
			names := []string{"init_x", "init_b", "spmv", "vsub", "vcopy", "scale",
				"dot_partial", "axpy", "aypx", "norm_partial"}
			fns := make(map[string]*cuda.Function, len(names))
			for _, name := range names {
				f, err := fn(name)
				if err != nil {
					return err
				}
				fns[name] = f
			}
			famFns := make([]*cuda.Function, fam)
			for i := range famFns {
				if famFns[i], err = fn(fmt.Sprintf("precond_%03d", i)); err != nil {
					return err
				}
			}
			abuf := func() (cuda.DevPtr, error) { return h.alloc(8 * n) }
			x, err := abuf()
			if err != nil {
				return err
			}
			b, err := abuf()
			if err != nil {
				return err
			}
			r, err := abuf()
			if err != nil {
				return err
			}
			p, err := abuf()
			if err != nil {
				return err
			}
			q, err := abuf()
			if err != nil {
				return err
			}
			scratch, err := abuf()
			if err != nil {
				return err
			}
			cfg := cuda.LaunchConfig{
				Grid:  gpu.Dim3{X: n / block, Y: 1, Z: 1},
				Block: gpu.Dim3{X: block, Y: 1, Z: 1},
			}
			dot := func(a, c cuda.DevPtr) float64 {
				h.launch(fns["dot_partial"], cfg, n, a, c, scratch)
				var s float64
				for _, v := range f64From(h.readBack(scratch, 8*n)) {
					s += v
				}
				return s
			}
			oneLo, oneHi := f64Param(1.0)
			h.launch(fns["init_x"], cfg, n, x)
			h.launch(fns["init_b"], cfg, n, b)
			h.launch(fns["scale"], cfg, n, b, oneLo, oneHi)
			h.launch(fns["spmv"], cfg, n, x, q)
			h.launch(fns["vsub"], cfg, n, r, b, q)
			h.launch(fns["vcopy"], cfg, n, p, r)
			for _, f := range famFns {
				h.launch(f, cfg, n, p, r)
			}
			rr := dot(r, r)
			for it := 0; it < iters; it++ {
				h.launch(fns["spmv"], cfg, n, p, q)
				pq := dot(p, q)
				alpha := rr / pq
				aLo, aHi := f64Param(alpha)
				naLo, naHi := f64Param(-alpha)
				h.launch(fns["axpy"], cfg, n, x, p, aLo, aHi)
				h.launch(fns["axpy"], cfg, n, r, q, naLo, naHi)
				rrNew := dot(r, r)
				beta := rrNew / rr
				rr = rrNew
				bLo, bHi := f64Param(beta)
				h.launch(fns["aypx"], cfg, n, p, r, bLo, bHi)
			}
			h.launch(fns["norm_partial"], cfg, n, x, scratch)
			norm := h.readBack(scratch, 8*n)
			sol := h.readBack(x, 8*n)
			h.out.Files["solution.dat"] = sol
			var nsum float64
			for _, v := range f64From(norm) {
				nsum += v
			}
			h.out.Printf("354.cg n %d iters %d\n", n, iters)
			h.out.Printf("residual %s norm %s\n", fmtF(math.Sqrt(math.Abs(rr))), fmtF(nsum))
			return nil
		},
	}
}

// SP builds the 356.sp analog: scalar penta-diagonal solver, FP64.
// 71 static kernels (init + 3 core + 67 sweeps); dynamic
// 1 + 25x3 + 67x3 = 277 (paper: 27,692, scaled ~1/100).
func SP() *Program {
	const famCount, famRepeat, steps, n, block = 67, 3, 25, 512, 128
	asm := initPairKernel64("init") +
		stencil3Kernel64("compute_rhs", 0.22, 0.5, 0.28) +
		stencil3Kernel64("solve_x", 0.28, 0.5, 0.22) +
		stencil3Kernel64("add_u", 0.25, 0.48, 0.27) +
		genFamily(fieldKernelF64, "sweep", famCount)
	return &Program{
		info: Info{
			Name:                 "356.sp",
			Description:          "Scalar Penta-diagonal solver",
			PaperStaticKernels:   71,
			PaperDynamicKernels:  27692,
			ScaledDynamicKernels: 1 + steps*3 + famCount*famRepeat,
		},
		policy: Unchecked,
		tol:    1e-6,
		fp64:   true,
		run: familyRunSized("356.sp", asm, "sweep", famCount, famRepeat,
			[]string{"compute_rhs", "solve_x", "add_u"}, steps, n, block, true),
	}
}

// CSP builds the 357.csp analog: the FP32 variant of the penta-diagonal
// solver. 69 static kernels (init + 3 core + 65 sweeps); dynamic
// 1 + 24x3 + 65x3 = 268 (paper: 26,890, scaled ~1/100).
func CSP() *Program {
	const famCount, famRepeat, steps, n, block = 65, 3, 24, 1024, 128
	asm := initPairKernel("init") +
		stencil3Kernel("compute_rhs", 0.22, 0.5, 0.28) +
		stencil3Kernel("solve_x", 0.28, 0.5, 0.22) +
		stencil3Kernel("add_u", 0.25, 0.48, 0.27) +
		genFamily(fieldKernelF32, "sweep", famCount)
	return &Program{
		info: Info{
			Name:                 "357.csp",
			Description:          "Scalar Penta-diagonal solver",
			PaperStaticKernels:   69,
			PaperDynamicKernels:  26890,
			ScaledDynamicKernels: 1 + steps*3 + famCount*famRepeat,
		},
		policy: Checked,
		tol:    1e-4,
		run: familyRun("357.csp", asm, "sweep", famCount, famRepeat,
			[]string{"compute_rhs", "solve_x", "add_u"}, steps, n, block),
	}
}

// BT builds the 370.bt analog: block tri-diagonal 3D PDE solver, FP64.
// 50 static kernels (init + 3 core + 46 sweeps); dynamic
// 1 + 36x3 + 46x2 = 201 (paper: 10,069, scaled ~1/50).
func BT() *Program {
	const famCount, famRepeat, steps, n, block = 46, 2, 36, 512, 128
	asm := initPairKernel64("init") +
		stencil3Kernel64("x_solve", 0.3, 0.45, 0.25) +
		stencil3Kernel64("y_solve", 0.25, 0.45, 0.3) +
		stencil3Kernel64("z_solve", 0.27, 0.46, 0.27) +
		genFamily(fieldKernelF64, "btsweep", famCount)
	return &Program{
		info: Info{
			Name:                 "370.bt",
			Description:          "Block Tri-diagonal solver for 3D PDE",
			PaperStaticKernels:   50,
			PaperDynamicKernels:  10069,
			ScaledDynamicKernels: 1 + steps*3 + famCount*famRepeat,
		},
		policy: Unchecked,
		tol:    1e-6,
		fp64:   true,
		run: familyRunSized("370.bt", asm, "btsweep", famCount, famRepeat,
			[]string{"x_solve", "y_solve", "z_solve"}, steps, n, block, true),
	}
}
