package specaccel

import (
	"repro/internal/cuda"
	"repro/internal/gpu"
)

// 350.md: molecular dynamics — a softened Lennard-Jones-style N-body force
// loop with velocity integration, all in FP64 register pairs. Three static
// kernels (forces, integrate, kinetic energy); 26 time steps x 2 + 1 final
// energy pass = 53 dynamic kernels, matching Table IV exactly. The FP64
// reciprocal is computed the fast-math way: narrow to FP32, MUFU.RCP, widen.
const mdASM = `
// 350.md device code. Positions/velocities/forces: FP64 arrays per axis.
.kernel compute_forces
.param natoms
.param px
.param py
.param pz
.param fx
.param fy
.param fz
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.GE.AND P0, R0, c0[natoms], PT
@P0 EXIT
    SHL R3, R0, 0x3
    IADD R4, R3, c0[px]
    LDG.64 R6, [R4]               // xi
    IADD R4, R3, c0[py]
    LDG.64 R8, [R4]               // yi
    IADD R4, R3, c0[pz]
    LDG.64 R10, [R4]              // zi
    MOV R12, RZ                   // fx accumulator (pair R12:R13)
    MOV R13, RZ
    MOV R14, RZ                   // fy
    MOV R15, RZ
    MOV R16, RZ                   // fz
    MOV R17, RZ
    MOV R20, RZ                   // j
jloop:
    ISETP.GE.AND P1, R20, c0[natoms], PT
@P1 BRA done
    SHL R21, R20, 0x3
    IADD R22, R21, c0[px]
    LDG.64 R24, [R22]             // xj
    IADD R22, R21, c0[py]
    LDG.64 R26, [R22]             // yj
    IADD R22, R21, c0[pz]
    LDG.64 R28, [R22]             // zj
    DADD R24, R6, -R24            // dx
    DADD R26, R8, -R26            // dy
    DADD R28, R10, -R28           // dz
    DMUL R30, R24, R24
    DFMA R30, R26, R26, R30
    DFMA R30, R28, R28, R30       // r^2
    DADD R30, R30, 0x3c23d70a     // + 0.01 softening
    F2F.32 R32, R30               // narrow to FP32
    MUFU.RCP R33, R32
    FMUL R33, R33, R33            // 1/r^4 ~ (1/r^2)^2
    F2F.64 R34, R33               // widen back
    DMUL R36, R24, R34
    DADD R12, R12, R36            // fx += dx / r^4
    DMUL R36, R26, R34
    DADD R14, R14, R36
    DMUL R36, R28, R34
    DADD R16, R16, R36
    IADD R20, R20, 0x1
    BRA jloop
done:
    IADD R40, R3, c0[fx]
    STG.64 [R40], R12
    IADD R40, R3, c0[fy]
    STG.64 [R40], R14
    IADD R40, R3, c0[fz]
    STG.64 [R40], R16
    EXIT

.kernel integrate
.param natoms
.param px
.param py
.param pz
.param vx
.param vy
.param vz
.param fx
.param fy
.param fz
.param dt_lo
.param dt_hi
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.GE.AND P0, R0, c0[natoms], PT
@P0 EXIT
    SHL R3, R0, 0x3
    IADD R4, R3, c0[fx]
    LDG.64 R6, [R4]
    IADD R4, R3, c0[vx]
    LDG.64 R8, [R4]
    DFMA R8, R6, c0[dt_lo], R8    // vx += fx*dt
    STG.64 [R4], R8
    IADD R4, R3, c0[px]
    LDG.64 R10, [R4]
    DFMA R10, R8, c0[dt_lo], R10  // px += vx*dt
    STG.64 [R4], R10
    IADD R4, R3, c0[fy]
    LDG.64 R6, [R4]
    IADD R4, R3, c0[vy]
    LDG.64 R8, [R4]
    DFMA R8, R6, c0[dt_lo], R8
    STG.64 [R4], R8
    IADD R4, R3, c0[py]
    LDG.64 R10, [R4]
    DFMA R10, R8, c0[dt_lo], R10
    STG.64 [R4], R10
    IADD R4, R3, c0[fz]
    LDG.64 R6, [R4]
    IADD R4, R3, c0[vz]
    LDG.64 R8, [R4]
    DFMA R8, R6, c0[dt_lo], R8
    STG.64 [R4], R8
    IADD R4, R3, c0[pz]
    LDG.64 R10, [R4]
    DFMA R10, R8, c0[dt_lo], R10
    STG.64 [R4], R10
    EXIT

.kernel kinetic_energy
.param natoms
.param vx
.param vy
.param vz
.param ke
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.GE.AND P0, R0, c0[natoms], PT
@P0 EXIT
    SHL R3, R0, 0x3
    IADD R4, R3, c0[vx]
    LDG.64 R6, [R4]
    IADD R4, R3, c0[vy]
    LDG.64 R8, [R4]
    IADD R4, R3, c0[vz]
    LDG.64 R10, [R4]
    DMUL R12, R6, R6
    DFMA R12, R8, R8, R12
    DFMA R12, R10, R10, R12
    DMUL R12, R12, 0x3f000000     // * 0.5
    IADD R4, R3, c0[ke]
    STG.64 [R4], R12
    EXIT
`

// MD builds the 350.md analog.
func MD() *Program {
	const (
		natoms = 64
		steps  = 26
		block  = 64
		dt     = 1.0 / 1024 // exactly representable
	)
	return &Program{
		info: Info{
			Name:                 "350.md",
			Description:          "Molecular dynamics",
			PaperStaticKernels:   3,
			PaperDynamicKernels:  53,
			ScaledDynamicKernels: 2*steps + 1,
		},
		policy: Unchecked,
		tol:    1e-6,
		fp64:   true,
		run: func(h *host) error {
			mod, err := h.module("350.md", mdASM)
			if err != nil {
				return err
			}
			forcesFn, err := mod.Function("compute_forces")
			if err != nil {
				return err
			}
			integrateFn, err := mod.Function("integrate")
			if err != nil {
				return err
			}
			keFn, err := mod.Function("kinetic_energy")
			if err != nil {
				return err
			}
			buf := func(seed int64, lo, hi float64) (cuda.DevPtr, error) {
				p, err := h.alloc(8 * natoms)
				if err != nil {
					return 0, err
				}
				h.upload(p, f64bytes(randFloats64(seed, natoms, lo, hi)))
				return p, nil
			}
			px, err := buf(3501, 0, 4)
			if err != nil {
				return err
			}
			py, err := buf(3502, 0, 4)
			if err != nil {
				return err
			}
			pz, err := buf(3503, 0, 4)
			if err != nil {
				return err
			}
			vx, err := buf(3504, -0.1, 0.1)
			if err != nil {
				return err
			}
			vy, err := buf(3505, -0.1, 0.1)
			if err != nil {
				return err
			}
			vz, err := buf(3506, -0.1, 0.1)
			if err != nil {
				return err
			}
			fx, err := h.alloc(8 * natoms)
			if err != nil {
				return err
			}
			fy, err := h.alloc(8 * natoms)
			if err != nil {
				return err
			}
			fz, err := h.alloc(8 * natoms)
			if err != nil {
				return err
			}
			ke, err := h.alloc(8 * natoms)
			if err != nil {
				return err
			}
			cfg := cuda.LaunchConfig{
				Grid:  gpu.Dim3{X: natoms / block, Y: 1, Z: 1},
				Block: gpu.Dim3{X: block, Y: 1, Z: 1},
			}
			dtLo, dtHi := f64Param(dt)
			for s := 0; s < steps; s++ {
				h.launch(forcesFn, cfg, natoms, px, py, pz, fx, fy, fz)
				h.launch(integrateFn, cfg, natoms, px, py, pz, vx, vy, vz, fx, fy, fz, dtLo, dtHi)
			}
			h.launch(keFn, cfg, natoms, vx, vy, vz, ke)

			pos := h.readBack(px, 8*natoms)
			keb := h.readBack(ke, 8*natoms)
			h.out.Files["positions.dat"] = pos
			h.out.Files["energy.dat"] = keb
			h.out.Printf("350.md atoms %d steps %d\n", natoms, steps)
			h.out.Printf("KE %s\n", fmtF(checksum64(f64From(keb))))
			return nil
		},
	}
}
