package specaccel

import (
	"repro/internal/cuda"
	"repro/internal/gpu"
)

// 304.olbm: computational fluid dynamics with the Lattice Boltzmann Method.
// A D2Q5 lattice on a 32x32 periodic grid with bounce-back on the bottom
// wall. Three static kernels (init, fused stream+collide, boundary), 1 + 45
// iterations x 2 = 91 dynamic kernels (paper: 900, scaled 1/10).
const olbmASM = `
// 304.olbm device code: D2Q5 LBM. Distribution k lives at fptr + k*0x1000.
.kernel init_dist
.param n
.param fptr
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.GE.AND P0, R0, c0[n], PT
@P0 EXIT
    IMUL R3, R0, 0x9e3779b1
    SHR.U32 R4, R3, 0x8
    I2F R5, R4
    FMUL R5, R5, 0x33800000        // hash in [0,1)
    FMUL R5, R5, 0x3dcccccd        // * 0.1 perturbation
    FADD R5, R5, 0x3f800000        // 1 + p
    SHL R6, R0, 0x2
    IADD R7, R6, c0[fptr]
    FMUL R8, R5, 0x3eaaaaab        // w0 = 1/3
    STG.32 [R7], R8
    FMUL R8, R5, 0x3e2aaaab        // wi = 1/6
    STG.32 [R7+0x1000], R8
    STG.32 [R7+0x2000], R8
    STG.32 [R7+0x3000], R8
    STG.32 [R7+0x4000], R8
    EXIT

.kernel stream_collide
.param n
.param inptr
.param outptr
.param omega
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.GE.AND P0, R0, c0[n], PT
@P0 EXIT
    LOP.AND R1, R0, 0x1f           // x
    SHR.U32 R2, R0, 0x5            // y
    SHL R3, R2, 0x5                // row base
    IADD R4, R1, -0x1
    LOP.AND R4, R4, 0x1f           // x-1 mod 32
    IADD R5, R1, 0x1
    LOP.AND R5, R5, 0x1f           // x+1 mod 32
    IADD R6, R2, -0x1
    LOP.AND R6, R6, 0x1f           // y-1 mod 32
    IADD R7, R2, 0x1
    LOP.AND R7, R7, 0x1f           // y+1 mod 32
    IADD R8, R3, R4                // west cell
    IADD R9, R3, R5                // east cell
    SHL R10, R6, 0x5
    IADD R10, R10, R1              // south cell
    SHL R11, R7, 0x5
    IADD R11, R11, R1              // north cell
    SHL R12, R0, 0x2
    IADD R12, R12, c0[inptr]
    SHL R13, R8, 0x2
    IADD R13, R13, c0[inptr]
    SHL R14, R10, 0x2
    IADD R14, R14, c0[inptr]
    SHL R15, R9, 0x2
    IADD R15, R15, c0[inptr]
    SHL R16, R11, 0x2
    IADD R16, R16, c0[inptr]
    LDG.32 R17, [R12]              // f0 stays
    LDG.32 R18, [R13+0x1000]       // f1 arrives from west
    LDG.32 R19, [R14+0x2000]       // f2 arrives from south
    LDG.32 R20, [R15+0x3000]       // f3 arrives from east
    LDG.32 R21, [R16+0x4000]       // f4 arrives from north
    FADD R22, R17, R18
    FADD R22, R22, R19
    FADD R22, R22, R20
    FADD R22, R22, R21             // rho
    FADD R23, R18, -R20            // ux (momentum)
    FADD R24, R19, -R21            // uy
    FMUL R25, R22, 0x3eaaaaab      // rho/3
    FMUL R26, R22, 0x3e2aaaab      // rho/6
    MOV R27, c0[omega]
    SHL R29, R0, 0x2
    IADD R29, R29, c0[outptr]
    FADD R28, R25, -R17
    FFMA R28, R28, R27, R17        // f0' = f0 + w*(feq0-f0)
    STG.32 [R29], R28
    FFMA R28, R23, 0x3f000000, R26 // feq1 = rho/6 + ux/2
    FADD R28, R28, -R18
    FFMA R28, R28, R27, R18
    STG.32 [R29+0x1000], R28
    FFMA R28, R24, 0x3f000000, R26
    FADD R28, R28, -R19
    FFMA R28, R28, R27, R19
    STG.32 [R29+0x2000], R28
    FFMA R28, R23, 0xbf000000, R26 // feq3 = rho/6 - ux/2
    FADD R28, R28, -R20
    FFMA R28, R28, R27, R20
    STG.32 [R29+0x3000], R28
    FFMA R28, R24, 0xbf000000, R26
    FADD R28, R28, -R21
    FFMA R28, R28, R27, R21
    STG.32 [R29+0x4000], R28
    EXIT

.kernel boundary
.param fptr
    S2R R0, SR_TID.X               // x along the bottom wall
    SHL R1, R0, 0x2
    IADD R2, R1, c0[fptr]
    LDG.32 R3, [R2+0x2000]         // bounce-back: swap f2 and f4
    LDG.32 R4, [R2+0x4000]
    STG.32 [R2+0x2000], R4
    STG.32 [R2+0x4000], R3
    EXIT
`

// Olbm builds the 304.olbm analog.
func Olbm() *Program {
	const (
		side  = 32
		n     = side * side
		iters = 45
		block = 128
		omega = float32(0.6)
	)
	return &Program{
		info: Info{
			Name:                 "304.olbm",
			Description:          "Computational fluid dynamics, Lattice Boltzmann Method",
			PaperStaticKernels:   3,
			PaperDynamicKernels:  900,
			ScaledDynamicKernels: 1 + 2*iters,
		},
		policy: Unchecked,
		tol:    1e-4,
		run: func(h *host) error {
			mod, err := h.module("304.olbm", olbmASM)
			if err != nil {
				return err
			}
			initFn, err := mod.Function("init_dist")
			if err != nil {
				return err
			}
			scFn, err := mod.Function("stream_collide")
			if err != nil {
				return err
			}
			bcFn, err := mod.Function("boundary")
			if err != nil {
				return err
			}
			a, err := h.alloc(5 * 4 * n)
			if err != nil {
				return err
			}
			b, err := h.alloc(5 * 4 * n)
			if err != nil {
				return err
			}
			cfg := cuda.LaunchConfig{
				Grid:  gpu.Dim3{X: n / block, Y: 1, Z: 1},
				Block: gpu.Dim3{X: block, Y: 1, Z: 1},
			}
			bcCfg := cuda.LaunchConfig{
				Grid:  gpu.Dim3{X: 1, Y: 1, Z: 1},
				Block: gpu.Dim3{X: side, Y: 1, Z: 1},
			}
			h.launch(initFn, cfg, n, a)
			src, dst := a, b
			for it := 0; it < iters; it++ {
				h.launch(scFn, cfg, n, src, dst, f32bitsConst(omega))
				h.launch(bcFn, bcCfg, dst)
				src, dst = dst, src
			}
			final := h.readBack(src, 5*4*n)
			h.out.Files["lbm.dat"] = final
			h.out.Printf("304.olbm lattice %dx%d iters %d\n", side, side, iters)
			h.out.Printf("mass %s\n", fmtF(checksum32(f32From(final))))
			return nil
		},
	}
}

// 360.ilbdc: fluid mechanics — a single fused FP64 relaxation kernel (the
// benchmark's one static kernel) applied 100 times over a 1D periodic
// lattice (paper: 1000 dynamic kernels, scaled 1/10).
const ilbdcASM = `
// 360.ilbdc device code
.kernel relax_fused
.param n
.param inptr
.param outptr
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.GE.AND P0, R0, c0[n], PT
@P0 EXIT
    IADD R1, R0, -0x1
    LOP.AND R1, R1, 0x1ff          // left neighbor mod 512
    IADD R2, R0, 0x1
    LOP.AND R2, R2, 0x1ff          // right neighbor mod 512
    SHL R3, R0, 0x3
    IADD R4, R3, c0[inptr]
    SHL R5, R1, 0x3
    IADD R5, R5, c0[inptr]
    SHL R6, R2, 0x3
    IADD R6, R6, c0[inptr]
    LDG.64 R8, [R4]                // self
    LDG.64 R10, [R5]               // left
    LDG.64 R12, [R6]               // right
    DADD R14, R10, R12
    DMUL R14, R14, 0x3d4ccccd      // 0.05 * (left+right)
    DFMA R14, R8, 0x3f666666, R14  // + 0.9 * self
    SHL R16, R0, 0x3
    IADD R16, R16, c0[outptr]
    STG.64 [R16], R14
    EXIT
`

// Ilbdc builds the 360.ilbdc analog.
func Ilbdc() *Program {
	const (
		n     = 512
		iters = 100
		block = 128
	)
	return &Program{
		info: Info{
			Name:                 "360.ilbdc",
			Description:          "Fluid mechanics",
			PaperStaticKernels:   1,
			PaperDynamicKernels:  1000,
			ScaledDynamicKernels: iters,
		},
		policy: Unchecked,
		tol:    1e-6,
		fp64:   true,
		run: func(h *host) error {
			mod, err := h.module("360.ilbdc", ilbdcASM)
			if err != nil {
				return err
			}
			fn, err := mod.Function("relax_fused")
			if err != nil {
				return err
			}
			a, err := h.alloc(8 * n)
			if err != nil {
				return err
			}
			b, err := h.alloc(8 * n)
			if err != nil {
				return err
			}
			h.upload(a, f64bytes(randFloats64(360, n, 0.5, 1.5)))
			cfg := cuda.LaunchConfig{
				Grid:  gpu.Dim3{X: n / block, Y: 1, Z: 1},
				Block: gpu.Dim3{X: block, Y: 1, Z: 1},
			}
			src, dst := a, b
			for it := 0; it < iters; it++ {
				h.launch(fn, cfg, n, src, dst)
				src, dst = dst, src
			}
			final := h.readBack(src, 8*n)
			h.out.Files["ilbdc.dat"] = final
			h.out.Printf("360.ilbdc cells %d iters %d\n", n, iters)
			h.out.Printf("sum %s\n", fmtF(checksum64(f64From(final))))
			return nil
		},
	}
}
