// Package av models the large, commercial autonomous-vehicle application
// the paper evaluates NVBitFI on (Section IV, reference [22]): a real-time
// perception pipeline that processes a stream of camera frames through
// kernels spread across several software packages — including a
// closed-source vendor detector that ships as machine code only — under a
// per-frame real-time deadline enforced by an application assertion.
//
// The pipeline is the demonstration vehicle for Table I's capability
// comparison: a compile-time tool cannot instrument the binary-only vendor
// module at all, and a debugger-based tool's per-instruction overhead trips
// the real-time assertion, while dynamic selective instrumentation passes.
package av

import (
	"time"

	"repro/internal/campaign"
	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/sass"
	"repro/internal/sass/encoding"
)

// preprocASM is the in-house preprocessing package (source available).
const preprocASM = `
// camera preprocessing
.kernel normalize
.param n
.param rawptr
.param imgptr
.param gain
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.GE.AND P0, R0, c0[n], PT
@P0 EXIT
    SHL R3, R0, 0x2
    IADD R4, R3, c0[rawptr]
    LDG.32 R5, [R4]
    FMUL R5, R5, c0[gain]
    IADD R6, R3, c0[imgptr]
    STG.32 [R6], R5
    EXIT

.kernel edge_filter
.param n
.param imgptr
.param edgeptr
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.LT.AND P0, R0, 0x1, PT
    IADD R3, c0[n], -0x1
    ISETP.GE.OR P0, R0, R3, P0
@P0 EXIT
    SHL R3, R0, 0x2
    IADD R4, R3, c0[imgptr]
    LDG.32 R5, [R4-0x4]
    LDG.32 R6, [R4+0x4]
    FADD R7, R6, -R5
    LOP.AND R7, R7, 0x7fffffff     // |gradient|
    IADD R8, R3, c0[edgeptr]
    STG.32 [R8], R7
    EXIT
`

// detectorASM is the vendor perception library. Its source never reaches
// the application: DetectorBinary compiles it to machine code once, and the
// pipeline loads only the binary, as with a closed-source .so.
const detectorASM = `
// vendor detector (closed source)
.kernel conv1d
.param n
.param imgptr
.param outptr
.param wptr
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.LT.AND P0, R0, 0x4, PT
    IADD R3, c0[n], -0x4
    ISETP.GE.OR P0, R0, R3, P0
@P0 EXIT
    SHL R3, R0, 0x2
    IADD R4, R3, c0[imgptr]
    MOV R10, RZ                    // accumulator
    MOV R11, RZ                    // tap index
    MOV R12, c0[wptr]
taps:
    ISETP.GE.AND P1, R11, 0x9, PT
@P1 BRA donetaps
    SHL R13, R11, 0x2
    IADD R14, R13, R12
    LDG.32 R15, [R14]              // weight
    IADD R16, R4, R13
    LDG.32 R17, [R16-0x10]         // img[i + tap - 4]
    FFMA R10, R15, R17, R10
    IADD R11, R11, 0x1
    BRA taps
donetaps:
    IADD R18, R3, c0[outptr]
    STG.32 [R18], R10
    EXIT

.kernel score
.param n
.param convptr
.param thresh
.param countptr
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.GE.AND P0, R0, c0[n], PT
@P0 EXIT
    SHL R3, R0, 0x2
    IADD R4, R3, c0[convptr]
    LDG.32 R5, [R4]
    MOV R6, c0[thresh]
    FSETP.GT.AND P1, R5, R6, PT
@P1 BRA hit
    EXIT
hit:
    MOV R7, c0[countptr]
    MOV R8, 0x1
    RED.ADD [R7], R8
    EXIT
`

// trackerASM is the in-house tracking package (source available).
const trackerASM = `
// object tracker
.kernel track_update
.param n
.param trackptr
.param convptr
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.GE.AND P0, R0, c0[n], PT
@P0 EXIT
    SHL R3, R0, 0x2
    IADD R4, R3, c0[trackptr]
    LDG.32 R5, [R4]
    IADD R6, R3, c0[convptr]
    LDG.32 R7, [R6]
    FMUL R5, R5, 0x3f4ccccd        // 0.8 * track
    FFMA R5, R7, 0x3e4ccccd, R5    // + 0.2 * conv
    STG.32 [R4], R5
    EXIT
`

// DetectorBinary compiles the vendor detector to machine code for a
// family. This is the only form in which the detector exists at run time.
func DetectorBinary(f sass.Family) ([]byte, error) {
	prog, err := sass.Assemble("vendor_detector", detectorASM)
	if err != nil {
		return nil, err
	}
	codec, err := encoding.NewCodec(f)
	if err != nil {
		return nil, err
	}
	return codec.EncodeProgram(prog)
}

// Config parameterizes the pipeline.
type Config struct {
	// Frames is the number of camera frames to process (default 12).
	Frames int
	// FrameDeadline is the per-frame real-time budget; a missed deadline
	// trips the application's real-time assertion (default 150ms, far
	// above the uninstrumented frame time but far below a debugger-based
	// tool's).
	FrameDeadline time.Duration
	// Pixels per frame (default 2048).
	Pixels int
}

func (c Config) withDefaults() Config {
	if c.Frames == 0 {
		c.Frames = 12
	}
	if c.FrameDeadline == 0 {
		c.FrameDeadline = 150 * time.Millisecond
	}
	if c.Pixels == 0 {
		c.Pixels = 2048
	}
	return c
}

// Pipeline is the AV perception application. It implements
// campaign.Workload so injection campaigns can target it directly.
type Pipeline struct {
	cfg Config
}

var _ campaign.Workload = (*Pipeline)(nil)

// New builds the pipeline.
func New(cfg Config) *Pipeline { return &Pipeline{cfg: cfg.withDefaults()} }

// Name implements campaign.Workload.
func (p *Pipeline) Name() string { return "av.pipeline" }

// Description implements campaign.Workload.
func (p *Pipeline) Description() string {
	return "Real-time AV perception pipeline with a binary-only vendor detector"
}

// Run implements campaign.Workload: process the frame stream under the
// real-time assertion.
func (p *Pipeline) Run(ctx *cuda.Context) (*campaign.Output, error) {
	out := campaign.NewOutput()
	cfg := p.cfg

	preMod, err := ctx.LoadModule("camera_preproc", preprocASM)
	if err != nil {
		return out, err
	}
	detBin, err := DetectorBinary(ctx.Device().Family)
	if err != nil {
		return out, err
	}
	detMod, err := ctx.LoadModuleBinary(detBin) // dynamic library, no source
	if err != nil {
		return out, err
	}
	trkMod, err := ctx.LoadModule("tracker", trackerASM)
	if err != nil {
		return out, err
	}
	normalize, err := preMod.Function("normalize")
	if err != nil {
		return out, err
	}
	edge, err := preMod.Function("edge_filter")
	if err != nil {
		return out, err
	}
	conv, err := detMod.Function("conv1d")
	if err != nil {
		return out, err
	}
	score, err := detMod.Function("score")
	if err != nil {
		return out, err
	}
	track, err := trkMod.Function("track_update")
	if err != nil {
		return out, err
	}

	n := cfg.Pixels
	raw, err := ctx.Malloc(4 * n)
	if err != nil {
		return out, err
	}
	img, err := ctx.Malloc(4 * n)
	if err != nil {
		return out, err
	}
	edges, err := ctx.Malloc(4 * n)
	if err != nil {
		return out, err
	}
	convOut, err := ctx.Malloc(4 * n)
	if err != nil {
		return out, err
	}
	weights, err := ctx.Malloc(4 * 9)
	if err != nil {
		return out, err
	}
	counts, err := ctx.Malloc(4 * cfg.Frames)
	if err != nil {
		return out, err
	}
	tracks, err := ctx.Malloc(4 * n)
	if err != nil {
		return out, err
	}
	w := []float32{-0.05, -0.1, 0.1, 0.3, 0.5, 0.3, 0.1, -0.1, -0.05}
	_ = ctx.MemcpyHtoD(weights, f32Bytes(w))
	_ = ctx.MemcpyHtoD(tracks, make([]byte, 4*n))
	_ = ctx.MemcpyHtoD(counts, make([]byte, 4*cfg.Frames))

	const block = 128
	grid := cuda.LaunchConfig{
		Grid:  gpu.Dim3{X: (n + block - 1) / block, Y: 1, Z: 1},
		Block: gpu.Dim3{X: block, Y: 1, Z: 1},
	}
	missed := 0
	for f := 0; f < cfg.Frames; f++ {
		frameStart := time.Now()
		_ = ctx.MemcpyHtoD(raw, frameData(f, n))
		_ = ctx.Launch(normalize, grid, uint32(n), raw, img, f32Bits(1.0/255))
		_ = ctx.Launch(edge, grid, uint32(n), img, edges)
		_ = ctx.Launch(conv, grid, uint32(n), img, convOut, weights)
		_ = ctx.Launch(score, grid, uint32(n), convOut, f32Bits(0.015), counts+uint32(4*f))
		_ = ctx.Launch(track, grid, uint32(n), tracks, convOut)
		if elapsed := time.Since(frameStart); elapsed > cfg.FrameDeadline {
			// The real-time assertion: the control loop fell behind.
			missed++
			out.Printf("RT ASSERT: frame %d took %v (deadline %v)\n", f, elapsed.Round(time.Millisecond), cfg.FrameDeadline)
		}
	}

	countBytes, err := ctx.MemcpyDtoH(counts, 4*cfg.Frames)
	if err != nil {
		out.Printf("CUDA error reading detections: %v\n", err)
		out.ExitCode = 1
		return out, nil
	}
	trackBytes, _ := ctx.MemcpyDtoH(tracks, 4*n)
	out.Files["tracks.dat"] = trackBytes
	out.Files["detections.dat"] = countBytes
	out.Printf("av.pipeline frames %d pixels %d\n", cfg.Frames, n)
	for f := 0; f < cfg.Frames; f++ {
		out.Printf("frame %d detections %d\n", f, leU32(countBytes[4*f:]))
	}
	if missed > 0 {
		out.Printf("REAL-TIME FAILURE: %d/%d frames missed the deadline\n", missed, cfg.Frames)
		out.ExitCode = 3
	}
	return out, nil
}

// Check implements campaign.Workload: detections are discrete, so the check
// is exact equality of the detection stream, with the track field compared
// at a small tolerance via byte equality fallback.
func (p *Pipeline) Check(golden, observed *campaign.Output) bool {
	return golden.Equal(observed)
}

// frameData synthesizes frame f's raw pixels deterministically.
func frameData(f, n int) []byte {
	b := make([]byte, 4*n)
	for i := 0; i < n; i++ {
		h := uint32(i*2654435761) ^ uint32(f*40503)
		v := float32(h>>8&0xffff) / 65536 * 255
		putF32(b[4*i:], v)
	}
	return b
}
