package av

import (
	"encoding/binary"
	"math"
)

func f32Bits(f float32) uint32 { return math.Float32bits(f) }

func f32Bytes(vals []float32) []byte {
	b := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(b[4*i:], math.Float32bits(v))
	}
	return b
}

func putF32(b []byte, v float32) { binary.LittleEndian.PutUint32(b, math.Float32bits(v)) }

func leU32(b []byte) uint32 { return binary.LittleEndian.Uint32(b) }
