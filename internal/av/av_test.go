package av_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/av"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/nvbit"
	"repro/internal/sass"
	"repro/internal/sass/encoding"
)

func newCtx(t *testing.T, family sass.Family) *cuda.Context {
	t.Helper()
	dev, err := gpu.NewDevice(family, 8)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := cuda.NewContext(dev)
	if err != nil {
		t.Fatal(err)
	}
	ctx.SetDefaultBudget(1 << 30)
	return ctx
}

func TestPipelineDeterminism(t *testing.T) {
	p := av.New(av.Config{Frames: 3, FrameDeadline: time.Hour})
	a, err := p.Run(newCtx(t, sass.FamilyVolta))
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Run(newCtx(t, sass.FamilyVolta))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("pipeline output not deterministic")
	}
	if a.ExitCode != 0 {
		t.Fatalf("exit %d:\n%s", a.ExitCode, a.Stdout)
	}
	if len(a.Files["detections.dat"]) != 3*4 {
		t.Fatalf("detections file wrong size: %d", len(a.Files["detections.dat"]))
	}
	if len(a.Files["tracks.dat"]) == 0 {
		t.Fatal("no track output")
	}
	if !strings.Contains(a.Stdout, "frame 2 detections") {
		t.Fatalf("stdout missing detection lines:\n%s", a.Stdout)
	}
}

// TestPipelineDetectsSomething: the synthetic frames must produce nonzero
// detection counts, or the pipeline is vacuous as an injection target.
func TestPipelineDetectsSomething(t *testing.T) {
	p := av.New(av.Config{Frames: 2, FrameDeadline: time.Hour})
	out, err := p.Run(newCtx(t, sass.FamilyVolta))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, line := range strings.Split(out.Stdout, "\n") {
		var f, n int
		if _, err := fmt.Sscanf(line, "frame %d detections %d", &f, &n); err == nil {
			total += n
		}
	}
	if total == 0 {
		t.Fatalf("no detections in any frame:\n%s", out.Stdout)
	}
}

// TestDetectorBinaryPerFamily: the vendor detector compiles for every
// family and loads on matching devices.
func TestDetectorBinaryPerFamily(t *testing.T) {
	for _, f := range sass.Families() {
		bin, err := av.DetectorBinary(f)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		got, err := encoding.DetectFamily(bin)
		if err != nil || got != f {
			t.Fatalf("%v binary detects as %v (%v)", f, got, err)
		}
		ctx := newCtx(t, f)
		if _, err := ctx.LoadModuleBinary(bin); err != nil {
			t.Fatalf("loading %v detector: %v", f, err)
		}
	}
}

// TestRealTimeAssertionFires: an absurdly tight deadline trips the
// assertion even without any tool attached.
func TestRealTimeAssertionFires(t *testing.T) {
	p := av.New(av.Config{Frames: 2, FrameDeadline: time.Nanosecond})
	out, err := p.Run(newCtx(t, sass.FamilyVolta))
	if err != nil {
		t.Fatal(err)
	}
	if out.ExitCode != 3 || !strings.Contains(out.Stdout, "REAL-TIME FAILURE") {
		t.Fatalf("assertion did not fire: exit %d\n%s", out.ExitCode, out.Stdout)
	}
}

func TestPipelineMetadata(t *testing.T) {
	p := av.New(av.Config{})
	if p.Name() != "av.pipeline" || p.Description() == "" {
		t.Error("pipeline metadata missing")
	}
	a := campaign.NewOutput()
	a.Stdout = "x"
	b := campaign.NewOutput()
	b.Stdout = "x"
	if !p.Check(a, b) {
		t.Error("identical outputs rejected")
	}
	b.Stdout = "y"
	if p.Check(a, b) {
		t.Error("differing outputs accepted (detections are discrete)")
	}
}

// TestPipelineUnderProfiler: the AV pipeline is profileable end to end,
// and both binary-only and source modules show up in the profile.
func TestPipelineUnderProfiler(t *testing.T) {
	ctx := newCtx(t, sass.FamilyVolta)
	prof, err := core.NewProfiler("av", core.Exact)
	if err != nil {
		t.Fatal(err)
	}
	att, err := nvbit.Attach(ctx, prof)
	if err != nil {
		t.Fatal(err)
	}
	defer att.Detach()
	p := av.New(av.Config{Frames: 3, FrameDeadline: time.Hour})
	out, err := p.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if out.ExitCode != 0 {
		t.Fatalf("profiled run exited %d", out.ExitCode)
	}
	profile := prof.Finish()
	if got := profile.DynamicKernels(); got != 15 {
		t.Fatalf("dynamic kernels = %d, want 15 (5 per frame)", got)
	}
	if got := len(profile.StaticKernels()); got != 5 {
		t.Fatalf("static kernels = %d, want 5", got)
	}
}

// TestPipelineHangBecomesError: a fault-induced hang in the vendor kernel
// surfaces as a CUDA error the pipeline's read-back path reports.
func TestPipelineHangBecomesError(t *testing.T) {
	ctx := newCtx(t, sass.FamilyVolta)
	ctx.SetDefaultBudget(200) // absurdly small: every kernel "hangs"
	p := av.New(av.Config{Frames: 2, FrameDeadline: time.Hour})
	out, err := p.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if out.ExitCode != 1 || !strings.Contains(out.Stdout, "CUDA error") {
		t.Fatalf("hang not reported: exit %d\n%s", out.ExitCode, out.Stdout)
	}
}
