// Package stats provides the statistical machinery fault-injection
// campaigns report with: binomial confidence intervals over outcome
// proportions (the paper: "100 injections provide results with 90%
// confidence intervals and ±8% error margins; 1000 injections are necessary
// for 95% confidence and ±3%"), sample-size planning, and weighted outcome
// aggregation for permanent-fault campaigns.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// zValue returns the two-sided standard-normal critical value for the given
// confidence level, via the Acklam rational approximation of the inverse
// normal CDF (max relative error ~1.15e-9).
func zValue(confidence float64) (float64, error) {
	if confidence <= 0 || confidence >= 1 {
		return 0, fmt.Errorf("stats: confidence %v outside (0,1)", confidence)
	}
	p := 1 - (1-confidence)/2
	return invNormCDF(p), nil
}

// invNormCDF is Acklam's inverse normal CDF approximation.
func invNormCDF(p float64) float64 {
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// MarginOfError returns the worst-case (p = 0.5) two-sided error margin of
// an outcome proportion estimated from n injections at the given confidence
// level.
func MarginOfError(n int, confidence float64) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("stats: sample size %d must be positive", n)
	}
	z, err := zValue(confidence)
	if err != nil {
		return 0, err
	}
	return z * 0.5 / math.Sqrt(float64(n)), nil
}

// RequiredSamples returns the number of injections needed for the given
// worst-case margin at the given confidence level.
func RequiredSamples(margin, confidence float64) (int, error) {
	if margin <= 0 || margin >= 1 {
		return 0, fmt.Errorf("stats: margin %v outside (0,1)", margin)
	}
	z, err := zValue(confidence)
	if err != nil {
		return 0, err
	}
	return int(math.Ceil(z * z * 0.25 / (margin * margin))), nil
}

// Interval is a proportion estimate with its confidence bounds.
type Interval struct {
	P, Lo, Hi float64
}

// ProportionCI returns the Wilson score confidence interval of a proportion
// with k successes out of n trials, clamped to [0,1]. Unlike the Wald
// (normal-approximation) interval, the Wilson interval never degenerates to
// zero width at k=0 or k=n — a property the campaign stopping rule depends
// on: early all-Masked shards must not look infinitely precise.
func ProportionCI(k, n int, confidence float64) (Interval, error) {
	if n <= 0 || k < 0 || k > n {
		return Interval{}, fmt.Errorf("stats: invalid counts k=%d n=%d", k, n)
	}
	z, err := zValue(confidence)
	if err != nil {
		return Interval{}, err
	}
	return wilsonInterval(float64(k)/float64(n), float64(n), z), nil
}

// wilsonInterval computes the Wilson score interval for an observed
// proportion p over (possibly fractional) sample size n. Interval.P stays
// the raw estimate; Lo/Hi come from the score-test inversion, so Lo is
// exactly 0 when p=0 and Hi exactly 1 when p=1, with nonzero width for any
// finite n.
func wilsonInterval(p, n, z float64) Interval {
	d := 1 + z*z/n
	center := (p + z*z/(2*n)) / d
	half := z / d * math.Sqrt(p*(1-p)/n+z*z/(4*n*n))
	iv := Interval{P: p, Lo: math.Max(0, center-half), Hi: math.Min(1, center+half)}
	// The score inversion touches the boundary exactly at degenerate
	// proportions; pin it there so rounding residue can't leak in.
	if p == 0 {
		iv.Lo = 0
	}
	if p == 1 {
		iv.Hi = 1
	}
	return iv
}

// WeightedTally accumulates category shares with per-observation weights —
// the aggregation the paper uses for permanent faults, where "the outcome of
// each run is weighted based on the relative number of dynamic instructions
// for that opcode".
type WeightedTally struct {
	weights map[string]float64
	obs     []float64
	total   float64
}

// Add records an observation of category cat with the given weight.
func (t *WeightedTally) Add(cat string, weight float64) {
	if t.weights == nil {
		t.weights = make(map[string]float64)
	}
	t.weights[cat] += weight
	t.obs = append(t.obs, weight)
	t.total += weight
}

// Share returns the weighted share of a category in [0,1].
func (t *WeightedTally) Share(cat string) float64 {
	if t.total == 0 {
		return 0
	}
	return t.weights[cat] / t.total
}

// Total returns the total accumulated weight.
func (t *WeightedTally) Total() float64 { return t.total }

// Categories returns the recorded categories, sorted.
func (t *WeightedTally) Categories() []string {
	cats := make([]string, 0, len(t.weights))
	for c := range t.weights {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	return cats
}

// Weight returns the accumulated weight of a category.
func (t *WeightedTally) Weight(cat string) float64 { return t.weights[cat] }

// EffectiveSampleSize returns the Kish effective sample size of the
// recorded observations, (Σw)²/Σw². Equal weights give the observation
// count; concentrating the total weight in fewer observations shrinks it,
// so intervals computed from it widen as class weights grow unequal.
// Zero-weight observations carry no information and do not count.
func (t *WeightedTally) EffectiveSampleSize() float64 {
	var sum, sumSq float64
	for _, w := range t.obs {
		sum += w
		sumSq += w * w
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / sumSq
}

// ShareCI returns the confidence interval of a category's weighted share,
// with the variance computed at the Kish effective sample size rather than
// the raw observation count: a representative that answers for a heavy
// class contributes one independent observation, not one per member.
func (t *WeightedTally) ShareCI(cat string, confidence float64) (Interval, error) {
	if t.total == 0 {
		return Interval{}, fmt.Errorf("stats: weighted tally is empty")
	}
	z, err := zValue(confidence)
	if err != nil {
		return Interval{}, err
	}
	neff := t.EffectiveSampleSize()
	p := t.Share(cat)
	m := z * math.Sqrt(p*(1-p)/neff)
	return Interval{P: p, Lo: math.Max(0, p-m), Hi: math.Min(1, p+m)}, nil
}

// StratifiedTally pools per-stratum category counts into a
// post-stratification estimator. Each stratum carries a population weight
// (its share of the full selection); sampled strata contribute their
// observed category proportions expanded by weight. Strata whose outcome is
// statically proven (provably-masked equivalence classes) are marked
// certain and legitimately contribute zero sampling variance — the main
// savings lever of the adaptive campaign.
type StratifiedTally struct {
	strata map[string]*stratum
}

type stratum struct {
	weight  float64 // population weight (unnormalized; campaign uses selection counts)
	certain bool
	n       float64
	counts  map[string]float64
}

// NewStratified returns an empty stratified tally.
func NewStratified() *StratifiedTally {
	return &StratifiedTally{strata: make(map[string]*stratum)}
}

// AddStratum declares a stratum with its population weight. Certain strata
// have statically-proven outcomes and contribute no sampling variance.
func (t *StratifiedTally) AddStratum(key string, weight float64, certain bool) {
	t.strata[key] = &stratum{weight: weight, certain: certain, counts: make(map[string]float64)}
}

// Observe records count observations of category cat in stratum key. An
// undeclared stratum is created with weight equal to its observation count
// (self-weighting), so partially-specified tallies degrade gracefully.
func (t *StratifiedTally) Observe(key, cat string, count int) {
	if count == 0 {
		return
	}
	s := t.strata[key]
	if s == nil {
		s = &stratum{counts: make(map[string]float64)}
		t.strata[key] = s
	}
	s.n += float64(count)
	s.counts[cat] += float64(count)
	if s.weight < s.n {
		s.weight = s.n
	}
}

// SampledN returns the total number of observations across sampled strata.
func (t *StratifiedTally) SampledN() float64 {
	var n float64
	for _, s := range t.strata {
		n += s.n
	}
	return n
}

// sampledWeight is the weight sum over strata with at least one
// observation; unsampled strata are excluded and the estimator renormalizes
// over the sampled ones.
func (t *StratifiedTally) sampledWeight() float64 {
	var w float64
	for _, s := range t.strata {
		if s.n > 0 {
			w += s.weight
		}
	}
	return w
}

// Share returns the stratified pooled share of a category: each sampled
// stratum's observed proportion expanded by its weight, normalized over the
// sampled weight. Terms are computed as count·(weight/n) so that a full run
// (n == weight in every stratum) collapses term-by-term to exact integer
// counts and the pooled share equals the exhaustive unstratified fraction
// bit-for-bit.
func (t *StratifiedTally) Share(cat string) float64 {
	w := t.sampledWeight()
	if w == 0 {
		return 0
	}
	var num float64
	for _, s := range t.strata {
		if s.n > 0 {
			num += s.counts[cat] * (s.weight / s.n)
		}
	}
	return num / w
}

// Variance returns the sampling variance of the stratified share estimate:
// Σ ŵ_h² · p̃_h(1−p̃_h)/n_h over uncertain sampled strata, with ŵ_h the
// weight normalized over sampled strata. The per-stratum proportion is
// Jeffreys-smoothed (p̃ = (k+½)/(n+1)) for the variance only, so a small
// pure stratum never claims exact-zero uncertainty; the point estimate in
// Share stays unsmoothed.
func (t *StratifiedTally) Variance(cat string) float64 {
	w := t.sampledWeight()
	if w == 0 {
		return 0
	}
	var v float64
	for _, s := range t.strata {
		if s.n == 0 || s.certain {
			continue
		}
		wh := s.weight / w
		pt := (s.counts[cat] + 0.5) / (s.n + 1)
		v += wh * wh * pt * (1 - pt) / s.n
	}
	return v
}

// EffectiveSampleSize converts the stratified variance into an effective
// simple-random-sample size via the design effect: deff = Var/VarSRS,
// neff = n/deff. Informative stratification (deff < 1) yields neff above
// the raw count; when either variance degenerates (pooled share at 0 or 1,
// or all sampled strata certain) it falls back to the raw observation count
// rather than claiming unbounded precision.
func (t *StratifiedTally) EffectiveSampleSize(cat string) float64 {
	n := t.SampledN()
	if n == 0 {
		return 0
	}
	p := t.Share(cat)
	varSRS := p * (1 - p) / n
	varStrat := t.Variance(cat)
	if varStrat <= 0 || varSRS <= 0 {
		return n
	}
	return n * varSRS / varStrat
}

// ShareCI returns the Wilson score interval of the stratified pooled share,
// evaluated at the effective sample size.
func (t *StratifiedTally) ShareCI(cat string, confidence float64) (Interval, error) {
	n := t.SampledN()
	if n == 0 {
		return Interval{}, fmt.Errorf("stats: stratified tally is empty")
	}
	z, err := zValue(confidence)
	if err != nil {
		return Interval{}, err
	}
	neff := math.Max(1, t.EffectiveSampleSize(cat))
	return wilsonInterval(t.Share(cat), neff, z), nil
}
