// Package stats provides the statistical machinery fault-injection
// campaigns report with: binomial confidence intervals over outcome
// proportions (the paper: "100 injections provide results with 90%
// confidence intervals and ±8% error margins; 1000 injections are necessary
// for 95% confidence and ±3%"), sample-size planning, and weighted outcome
// aggregation for permanent-fault campaigns.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// zValue returns the two-sided standard-normal critical value for the given
// confidence level, via the Acklam rational approximation of the inverse
// normal CDF (max relative error ~1.15e-9).
func zValue(confidence float64) (float64, error) {
	if confidence <= 0 || confidence >= 1 {
		return 0, fmt.Errorf("stats: confidence %v outside (0,1)", confidence)
	}
	p := 1 - (1-confidence)/2
	return invNormCDF(p), nil
}

// invNormCDF is Acklam's inverse normal CDF approximation.
func invNormCDF(p float64) float64 {
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// MarginOfError returns the worst-case (p = 0.5) two-sided error margin of
// an outcome proportion estimated from n injections at the given confidence
// level.
func MarginOfError(n int, confidence float64) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("stats: sample size %d must be positive", n)
	}
	z, err := zValue(confidence)
	if err != nil {
		return 0, err
	}
	return z * 0.5 / math.Sqrt(float64(n)), nil
}

// RequiredSamples returns the number of injections needed for the given
// worst-case margin at the given confidence level.
func RequiredSamples(margin, confidence float64) (int, error) {
	if margin <= 0 || margin >= 1 {
		return 0, fmt.Errorf("stats: margin %v outside (0,1)", margin)
	}
	z, err := zValue(confidence)
	if err != nil {
		return 0, err
	}
	return int(math.Ceil(z * z * 0.25 / (margin * margin))), nil
}

// Interval is a proportion estimate with its confidence bounds.
type Interval struct {
	P, Lo, Hi float64
}

// ProportionCI returns the normal-approximation confidence interval of a
// proportion with k successes out of n trials, clamped to [0,1].
func ProportionCI(k, n int, confidence float64) (Interval, error) {
	if n <= 0 || k < 0 || k > n {
		return Interval{}, fmt.Errorf("stats: invalid counts k=%d n=%d", k, n)
	}
	z, err := zValue(confidence)
	if err != nil {
		return Interval{}, err
	}
	p := float64(k) / float64(n)
	m := z * math.Sqrt(p*(1-p)/float64(n))
	return Interval{P: p, Lo: math.Max(0, p-m), Hi: math.Min(1, p+m)}, nil
}

// WeightedTally accumulates category shares with per-observation weights —
// the aggregation the paper uses for permanent faults, where "the outcome of
// each run is weighted based on the relative number of dynamic instructions
// for that opcode".
type WeightedTally struct {
	weights map[string]float64
	obs     []float64
	total   float64
}

// Add records an observation of category cat with the given weight.
func (t *WeightedTally) Add(cat string, weight float64) {
	if t.weights == nil {
		t.weights = make(map[string]float64)
	}
	t.weights[cat] += weight
	t.obs = append(t.obs, weight)
	t.total += weight
}

// Share returns the weighted share of a category in [0,1].
func (t *WeightedTally) Share(cat string) float64 {
	if t.total == 0 {
		return 0
	}
	return t.weights[cat] / t.total
}

// Total returns the total accumulated weight.
func (t *WeightedTally) Total() float64 { return t.total }

// Categories returns the recorded categories, sorted.
func (t *WeightedTally) Categories() []string {
	cats := make([]string, 0, len(t.weights))
	for c := range t.weights {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	return cats
}

// Weight returns the accumulated weight of a category.
func (t *WeightedTally) Weight(cat string) float64 { return t.weights[cat] }

// EffectiveSampleSize returns the Kish effective sample size of the
// recorded observations, (Σw)²/Σw². Equal weights give the observation
// count; concentrating the total weight in fewer observations shrinks it,
// so intervals computed from it widen as class weights grow unequal.
// Zero-weight observations carry no information and do not count.
func (t *WeightedTally) EffectiveSampleSize() float64 {
	var sum, sumSq float64
	for _, w := range t.obs {
		sum += w
		sumSq += w * w
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / sumSq
}

// ShareCI returns the confidence interval of a category's weighted share,
// with the variance computed at the Kish effective sample size rather than
// the raw observation count: a representative that answers for a heavy
// class contributes one independent observation, not one per member.
func (t *WeightedTally) ShareCI(cat string, confidence float64) (Interval, error) {
	if t.total == 0 {
		return Interval{}, fmt.Errorf("stats: weighted tally is empty")
	}
	z, err := zValue(confidence)
	if err != nil {
		return Interval{}, err
	}
	neff := t.EffectiveSampleSize()
	p := t.Share(cat)
	m := z * math.Sqrt(p*(1-p)/neff)
	return Interval{P: p, Lo: math.Max(0, p-m), Hi: math.Min(1, p+m)}, nil
}
