package stats

import (
	"math"
	"testing"
	"testing/quick"
)

// TestPaperMargins pins the paper's statistics: "100 injections provide
// results with 90% confidence intervals and ±8% error margins ... 1000
// injections are necessary to obtain results with 95% confidence intervals
// and ±3% error margins".
func TestPaperMargins(t *testing.T) {
	m100, err := MarginOfError(100, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m100-0.08) > 0.003 {
		t.Errorf("margin(100, 90%%) = %.4f, want ~0.08", m100)
	}
	m1000, err := MarginOfError(1000, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m1000-0.031) > 0.002 {
		t.Errorf("margin(1000, 95%%) = %.4f, want ~0.031", m1000)
	}
}

func TestRequiredSamplesInverse(t *testing.T) {
	for _, conf := range []float64{0.90, 0.95, 0.99} {
		for _, margin := range []float64{0.08, 0.03, 0.01} {
			n, err := RequiredSamples(margin, conf)
			if err != nil {
				t.Fatal(err)
			}
			// The margin at the required count must be at most the target...
			got, err := MarginOfError(n, conf)
			if err != nil {
				t.Fatal(err)
			}
			if got > margin*1.0001 {
				t.Errorf("RequiredSamples(%v, %v) = %d gives margin %.5f", margin, conf, n, got)
			}
			// ...and one fewer sample must not suffice.
			if n > 1 {
				prev, err := MarginOfError(n-1, conf)
				if err != nil {
					t.Fatal(err)
				}
				if prev <= margin {
					t.Errorf("RequiredSamples(%v, %v) = %d not minimal", margin, conf, n)
				}
			}
		}
	}
}

func TestInvNormCDFQuantiles(t *testing.T) {
	known := map[float64]float64{
		0.5:    0,
		0.8413: 1.0,
		0.975:  1.95996,
		0.995:  2.57583,
		0.9987: 3.01145,
		0.0228: -1.9991,
	}
	for p, want := range known {
		if got := invNormCDF(p); math.Abs(got-want) > 0.002 {
			t.Errorf("invNormCDF(%v) = %.5f, want %.5f", p, got, want)
		}
	}
}

func TestInvNormCDFSymmetry(t *testing.T) {
	f := func(raw float64) bool {
		p := math.Mod(math.Abs(raw), 0.49)
		if math.IsNaN(p) || p == 0 {
			return true
		}
		lo, hi := invNormCDF(0.5-p), invNormCDF(0.5+p)
		return math.Abs(lo+hi) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestErrorsOnBadInputs(t *testing.T) {
	if _, err := MarginOfError(0, 0.9); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := MarginOfError(100, 0); err == nil {
		t.Error("confidence 0 accepted")
	}
	if _, err := MarginOfError(100, 1); err == nil {
		t.Error("confidence 1 accepted")
	}
	if _, err := RequiredSamples(0, 0.9); err == nil {
		t.Error("margin 0 accepted")
	}
	if _, err := RequiredSamples(1.5, 0.9); err == nil {
		t.Error("margin > 1 accepted")
	}
	if _, err := ProportionCI(5, 4, 0.9); err == nil {
		t.Error("k > n accepted")
	}
	if _, err := ProportionCI(-1, 4, 0.9); err == nil {
		t.Error("k < 0 accepted")
	}
}

func TestProportionCI(t *testing.T) {
	iv, err := ProportionCI(30, 100, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	if iv.P != 0.30 {
		t.Errorf("P = %v", iv.P)
	}
	if iv.Lo >= iv.P || iv.Hi <= iv.P {
		t.Errorf("interval %+v does not bracket the estimate", iv)
	}
	// Degenerate proportions clamp to [0,1].
	zero, err := ProportionCI(0, 50, 0.95)
	if err != nil || zero.Lo != 0 {
		t.Errorf("zero-proportion CI: %+v, %v", zero, err)
	}
	one, err := ProportionCI(50, 50, 0.95)
	if err != nil || one.Hi != 1 {
		t.Errorf("full-proportion CI: %+v, %v", one, err)
	}
}

// TestProportionCIQuick: the interval always brackets the point estimate
// and stays in [0,1].
func TestProportionCIQuick(t *testing.T) {
	f := func(k8 uint8, extra uint8) bool {
		n := int(k8) + int(extra) + 1
		k := int(k8)
		iv, err := ProportionCI(k, n, 0.95)
		if err != nil {
			return false
		}
		return iv.Lo >= 0 && iv.Hi <= 1 && iv.Lo <= iv.P && iv.P <= iv.Hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestWilsonEdgeCases: the Wilson interval keeps nonzero width at the
// degenerate proportions where the Wald interval collapsed to a point —
// the property the campaign stopping rule leans on.
func TestWilsonEdgeCases(t *testing.T) {
	cases := []struct{ k, n int }{
		{0, 1}, {1, 1}, // n = 1
		{0, 50},    // k = 0
		{50, 50},   // k = n
		{0, 10000}, // large n, still nonzero width
	}
	for _, c := range cases {
		iv, err := ProportionCI(c.k, c.n, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Hi-iv.Lo <= 0 {
			t.Errorf("ProportionCI(%d, %d) has zero width: %+v", c.k, c.n, iv)
		}
		if c.k == 0 && iv.Lo != 0 {
			t.Errorf("k=0 interval should touch 0: %+v", iv)
		}
		if c.k == c.n && iv.Hi != 1 {
			t.Errorf("k=n interval should touch 1: %+v", iv)
		}
	}
	// Width shrinks with n at a fixed proportion.
	small, _ := ProportionCI(0, 10, 0.95)
	large, _ := ProportionCI(0, 1000, 0.95)
	if large.Hi >= small.Hi {
		t.Errorf("k=0 width not shrinking with n: n=10 %+v, n=1000 %+v", small, large)
	}
}

func TestStratifiedFullRunEqualsPooled(t *testing.T) {
	// When every stratum is fully sampled (n == weight), the stratified
	// share must equal the exhaustive pooled fraction bit-for-bit.
	st := NewStratified()
	st.AddStratum("a", 7, false)
	st.AddStratum("b", 13, true)
	st.AddStratum("c", 5, false)
	st.Observe("a", "SDC", 3)
	st.Observe("a", "Masked", 4)
	st.Observe("b", "Masked", 13)
	st.Observe("c", "SDC", 1)
	st.Observe("c", "DUE", 4)
	if got, want := st.Share("SDC"), float64(4)/float64(25); got != want {
		t.Errorf("full-run SDC share = %v, want exactly %v", got, want)
	}
	if got, want := st.Share("Masked"), float64(17)/float64(25); got != want {
		t.Errorf("full-run Masked share = %v, want exactly %v", got, want)
	}
	if got, want := st.Share("DUE"), float64(4)/float64(25); got != want {
		t.Errorf("full-run DUE share = %v, want exactly %v", got, want)
	}
}

func TestStratifiedExpansion(t *testing.T) {
	// Partial sampling: stratum proportions expand by population weight.
	st := NewStratified()
	st.AddStratum("big", 80, false)
	st.AddStratum("small", 20, false)
	st.Observe("big", "Masked", 10) // p=1 in a stratum worth 80%
	st.Observe("small", "SDC", 5)   // p=1 in a stratum worth 20%
	if got := st.Share("SDC"); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("expanded SDC share = %v, want 0.2", got)
	}
	if st.SampledN() != 15 {
		t.Errorf("SampledN = %v, want 15", st.SampledN())
	}
	// An unsampled stratum is excluded and the rest renormalize.
	st.AddStratum("silent", 100, false)
	if got := st.Share("SDC"); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("unsampled stratum changed share: %v", got)
	}
}

func TestStratifiedCertainStrataShrinkCI(t *testing.T) {
	// Same observations, but one heavy stratum's outcome is statically
	// proven: marking it certain must remove its variance contribution and
	// tighten the interval.
	build := func(certain bool) *StratifiedTally {
		st := NewStratified()
		st.AddStratum("proven", 80, certain)
		st.AddStratum("live", 20, false)
		st.Observe("proven", "Masked", 40)
		st.Observe("live", "SDC", 10)
		st.Observe("live", "Masked", 10)
		return st
	}
	uncertain := build(false)
	certain := build(true)
	if certain.Share("SDC") != uncertain.Share("SDC") {
		t.Fatal("certainty must not move the point estimate")
	}
	if cv, uv := certain.Variance("SDC"), uncertain.Variance("SDC"); cv >= uv {
		t.Errorf("certain variance %v not below uncertain %v", cv, uv)
	}
	ci, err := certain.ShareCI("SDC", 0.95)
	if err != nil {
		t.Fatal(err)
	}
	ui, err := uncertain.ShareCI("SDC", 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if (ci.Hi - ci.Lo) >= (ui.Hi - ui.Lo) {
		t.Errorf("certain interval %+v not tighter than %+v", ci, ui)
	}
	if neff := certain.EffectiveSampleSize("SDC"); neff <= certain.SampledN() {
		t.Errorf("informative stratification should raise neff above n: %v <= %v",
			neff, certain.SampledN())
	}
}

func TestStratifiedDegenerateFallbacks(t *testing.T) {
	var empty StratifiedTally
	if empty.SampledN() != 0 || empty.Share("SDC") != 0 {
		t.Error("zero-value tally should be empty")
	}
	st := NewStratified()
	if _, err := st.ShareCI("SDC", 0.95); err == nil {
		t.Error("empty stratified ShareCI should error")
	}
	// Only certain strata sampled: variance is zero, pooled p is 0, and the
	// fallback keeps neff at the raw count instead of claiming infinite
	// precision — the Wilson interval still has width.
	st.AddStratum("proven", 50, true)
	st.Observe("proven", "Masked", 25)
	if neff := st.EffectiveSampleSize("SDC"); neff != 25 {
		t.Errorf("degenerate neff = %v, want raw n 25", neff)
	}
	iv, err := st.ShareCI("SDC", 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Hi-iv.Lo <= 0 {
		t.Errorf("degenerate interval has zero width: %+v", iv)
	}
	if _, err := st.ShareCI("SDC", 1.5); err == nil {
		t.Error("bad confidence should error")
	}
	// Observations in an undeclared stratum self-weight.
	st.Observe("surprise", "SDC", 4)
	if st.SampledN() != 29 {
		t.Errorf("SampledN = %v, want 29", st.SampledN())
	}
}

func TestWeightedTally(t *testing.T) {
	var w WeightedTally
	w.Add("SDC", 10)
	w.Add("Masked", 20)
	w.Add("SDC", 10)
	if w.Total() != 40 {
		t.Fatalf("total = %v", w.Total())
	}
	if w.Share("SDC") != 0.5 || w.Share("Masked") != 0.5 {
		t.Fatalf("shares wrong: %v %v", w.Share("SDC"), w.Share("Masked"))
	}
	if w.Share("DUE") != 0 {
		t.Error("missing category share should be 0")
	}
	cats := w.Categories()
	if len(cats) != 2 || cats[0] != "Masked" || cats[1] != "SDC" {
		t.Fatalf("categories = %v", cats)
	}
	var empty WeightedTally
	if empty.Share("x") != 0 {
		t.Error("empty tally share should be 0")
	}
}

func TestEffectiveSampleSize(t *testing.T) {
	var w WeightedTally
	if w.EffectiveSampleSize() != 0 {
		t.Error("empty tally should have zero effective size")
	}
	// Equal weights: effective size equals the observation count.
	for i := 0; i < 8; i++ {
		w.Add("Masked", 2.5)
	}
	if got := w.EffectiveSampleSize(); math.Abs(got-8) > 1e-12 {
		t.Errorf("equal weights: neff = %v, want 8", got)
	}
	// Zero-weight observations carry no information.
	w.Add("SDC", 0)
	if got := w.EffectiveSampleSize(); math.Abs(got-8) > 1e-12 {
		t.Errorf("zero-weight obs changed neff: %v", got)
	}
	// A single observation is one effective sample whatever its weight.
	var single WeightedTally
	single.Add("SDC", 123.0)
	if got := single.EffectiveSampleSize(); math.Abs(got-1) > 1e-12 {
		t.Errorf("single member: neff = %v, want 1", got)
	}
	// All-zero weights: no information at all.
	var zeros WeightedTally
	zeros.Add("a", 0)
	zeros.Add("b", 0)
	if zeros.EffectiveSampleSize() != 0 {
		t.Error("all-zero weights should have zero effective size")
	}
}

func TestShareCIExtremes(t *testing.T) {
	var w WeightedTally
	for i := 0; i < 10; i++ {
		w.Add("Masked", 1)
	}
	// p = 1 for the only category, p = 0 for an absent one: the normal
	// approximation degenerates to a point but must stay in [0,1].
	one, err := w.ShareCI("Masked", 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if one.P != 1 || one.Lo != 1 || one.Hi != 1 {
		t.Errorf("p=1 interval = %+v", one)
	}
	zero, err := w.ShareCI("SDC", 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if zero.P != 0 || zero.Lo != 0 || zero.Hi != 0 {
		t.Errorf("p=0 interval = %+v", zero)
	}
	var empty WeightedTally
	if _, err := empty.ShareCI("x", 0.95); err == nil {
		t.Error("empty tally ShareCI should error")
	}
	if _, err := w.ShareCI("Masked", 1.5); err == nil {
		t.Error("bad confidence should error")
	}
}

func TestShareCIWidthMonotoneInClassWeight(t *testing.T) {
	// Against a fixed population of twenty singleton observations, grow one
	// class representative's weight: the Kish effective sample size must
	// shrink and the class-share interval must widen monotonically — one
	// representative answering for more members is not more evidence.
	measure := func(classWeight float64) (neff, width float64) {
		var w WeightedTally
		w.Add("SDC", classWeight)
		for i := 0; i < 20; i++ {
			w.Add("Masked", 1)
		}
		iv, err := w.ShareCI("SDC", 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Hi >= 1 {
			t.Fatalf("interval saturated at class weight %v: %+v", classWeight, iv)
		}
		return w.EffectiveSampleSize(), iv.Hi - iv.Lo
	}
	prevNeff, prevWidth := math.Inf(1), -1.0
	for _, cw := range []float64{1, 2, 4, 8, 16} {
		neff, width := measure(cw)
		if neff >= prevNeff {
			t.Errorf("neff %v at class weight %v not below %v", neff, cw, prevNeff)
		}
		if width <= prevWidth {
			t.Errorf("CI width %v at class weight %v not wider than %v", width, cw, prevWidth)
		}
		prevNeff, prevWidth = neff, width
	}
}

func TestWeight(t *testing.T) {
	var w WeightedTally
	w.Add("SDC", 3)
	w.Add("SDC", 4)
	if w.Weight("SDC") != 7 {
		t.Errorf("Weight = %v, want 7", w.Weight("SDC"))
	}
	if w.Weight("none") != 0 {
		t.Error("absent category weight should be 0")
	}
}
