package stats

import (
	"math"
	"testing"
	"testing/quick"
)

// TestPaperMargins pins the paper's statistics: "100 injections provide
// results with 90% confidence intervals and ±8% error margins ... 1000
// injections are necessary to obtain results with 95% confidence intervals
// and ±3% error margins".
func TestPaperMargins(t *testing.T) {
	m100, err := MarginOfError(100, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m100-0.08) > 0.003 {
		t.Errorf("margin(100, 90%%) = %.4f, want ~0.08", m100)
	}
	m1000, err := MarginOfError(1000, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m1000-0.031) > 0.002 {
		t.Errorf("margin(1000, 95%%) = %.4f, want ~0.031", m1000)
	}
}

func TestRequiredSamplesInverse(t *testing.T) {
	for _, conf := range []float64{0.90, 0.95, 0.99} {
		for _, margin := range []float64{0.08, 0.03, 0.01} {
			n, err := RequiredSamples(margin, conf)
			if err != nil {
				t.Fatal(err)
			}
			// The margin at the required count must be at most the target...
			got, err := MarginOfError(n, conf)
			if err != nil {
				t.Fatal(err)
			}
			if got > margin*1.0001 {
				t.Errorf("RequiredSamples(%v, %v) = %d gives margin %.5f", margin, conf, n, got)
			}
			// ...and one fewer sample must not suffice.
			if n > 1 {
				prev, err := MarginOfError(n-1, conf)
				if err != nil {
					t.Fatal(err)
				}
				if prev <= margin {
					t.Errorf("RequiredSamples(%v, %v) = %d not minimal", margin, conf, n)
				}
			}
		}
	}
}

func TestInvNormCDFQuantiles(t *testing.T) {
	known := map[float64]float64{
		0.5:    0,
		0.8413: 1.0,
		0.975:  1.95996,
		0.995:  2.57583,
		0.9987: 3.01145,
		0.0228: -1.9991,
	}
	for p, want := range known {
		if got := invNormCDF(p); math.Abs(got-want) > 0.002 {
			t.Errorf("invNormCDF(%v) = %.5f, want %.5f", p, got, want)
		}
	}
}

func TestInvNormCDFSymmetry(t *testing.T) {
	f := func(raw float64) bool {
		p := math.Mod(math.Abs(raw), 0.49)
		if math.IsNaN(p) || p == 0 {
			return true
		}
		lo, hi := invNormCDF(0.5-p), invNormCDF(0.5+p)
		return math.Abs(lo+hi) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestErrorsOnBadInputs(t *testing.T) {
	if _, err := MarginOfError(0, 0.9); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := MarginOfError(100, 0); err == nil {
		t.Error("confidence 0 accepted")
	}
	if _, err := MarginOfError(100, 1); err == nil {
		t.Error("confidence 1 accepted")
	}
	if _, err := RequiredSamples(0, 0.9); err == nil {
		t.Error("margin 0 accepted")
	}
	if _, err := RequiredSamples(1.5, 0.9); err == nil {
		t.Error("margin > 1 accepted")
	}
	if _, err := ProportionCI(5, 4, 0.9); err == nil {
		t.Error("k > n accepted")
	}
	if _, err := ProportionCI(-1, 4, 0.9); err == nil {
		t.Error("k < 0 accepted")
	}
}

func TestProportionCI(t *testing.T) {
	iv, err := ProportionCI(30, 100, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	if iv.P != 0.30 {
		t.Errorf("P = %v", iv.P)
	}
	if iv.Lo >= iv.P || iv.Hi <= iv.P {
		t.Errorf("interval %+v does not bracket the estimate", iv)
	}
	// Degenerate proportions clamp to [0,1].
	zero, err := ProportionCI(0, 50, 0.95)
	if err != nil || zero.Lo != 0 {
		t.Errorf("zero-proportion CI: %+v, %v", zero, err)
	}
	one, err := ProportionCI(50, 50, 0.95)
	if err != nil || one.Hi != 1 {
		t.Errorf("full-proportion CI: %+v, %v", one, err)
	}
}

// TestProportionCIQuick: the interval always brackets the point estimate
// and stays in [0,1].
func TestProportionCIQuick(t *testing.T) {
	f := func(k8 uint8, extra uint8) bool {
		n := int(k8) + int(extra) + 1
		k := int(k8)
		iv, err := ProportionCI(k, n, 0.95)
		if err != nil {
			return false
		}
		return iv.Lo >= 0 && iv.Hi <= 1 && iv.Lo <= iv.P && iv.P <= iv.Hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestWeightedTally(t *testing.T) {
	var w WeightedTally
	w.Add("SDC", 10)
	w.Add("Masked", 20)
	w.Add("SDC", 10)
	if w.Total() != 40 {
		t.Fatalf("total = %v", w.Total())
	}
	if w.Share("SDC") != 0.5 || w.Share("Masked") != 0.5 {
		t.Fatalf("shares wrong: %v %v", w.Share("SDC"), w.Share("Masked"))
	}
	if w.Share("DUE") != 0 {
		t.Error("missing category share should be 0")
	}
	cats := w.Categories()
	if len(cats) != 2 || cats[0] != "Masked" || cats[1] != "SDC" {
		t.Fatalf("categories = %v", cats)
	}
	var empty WeightedTally
	if empty.Share("x") != 0 {
		t.Error("empty tally share should be 0")
	}
}
