package gpu

import (
	"crypto/sha256"
	"encoding/binary"

	"repro/internal/modcache"
	"repro/internal/sass"
	"repro/internal/sassan"
)

// This file is the block-level translation engine: it compiles a kernel's
// instruction stream into an execution plan of pre-resolved per-instruction
// closures, so the warp hot loop dispatches through one indirect call per
// instruction instead of re-walking operand lists, re-switching on operand
// kinds, and re-evaluating guards from scratch on every dynamic execution.
//
// Design rules (see DESIGN.md section 3.6):
//
//   - The interpreter (blockCtx.exec) stays the semantic oracle. Every
//     specialized closure is compiled from the same shared helpers the
//     interpreter calls (specialVal, spaceLoadAt, readPairReg, ...), and any
//     instruction whose operand shape does not match the specializer's
//     expectations falls back to a thunk that simply calls blk.exec — so
//     translated execution is behaviorally identical by construction,
//     including interpreter panics on malformed instructions.
//   - Plans are pure functions of kernel *content*: they capture register
//     ids, immediates, const-bank offsets and guard predicates, but never a
//     Device, Launch, warp, or constant bank. One plan is therefore shared
//     read-only across blocks, workers, devices, and experiments, cached
//     process-wide in modcache keyed by the kernel content hash.
//   - Straight-line runs never cross basic-block boundaries: runLen is
//     computed within the CFG blocks internal/sassan builds, so the
//     translated fast path's batching provably cannot run past a branch
//     target entering mid-run.
type xplan struct {
	steps []xinstr
}

// planStep executes one translated instruction for the lanes in execMask,
// with the same contract as blockCtx.exec.
type planStep func(blk *blockCtx, w *warp, execMask uint32) (barrier bool, kind TrapKind, faultAddr uint32)

// guardKind classifies the instruction guard at translation time so the hot
// loop pays nothing for the overwhelmingly common @PT case.
type guardKind uint8

const (
	guardOn   guardKind = iota // @PT: every scheduled lane executes
	guardOff                   // @!PT: statically suppressed
	guardCond                  // real predicate, evaluated per lane
)

// xinstr is one translated instruction: the fused step closure plus the
// pre-resolved guard and scheduling classification.
type xinstr struct {
	step       planStep
	guardKind  guardKind
	guardPred  sass.PredID
	guardNeg   bool
	altersFlow bool  // pre-computed semAltersFlow
	simple     bool  // cannot branch, exit lanes, or reach a barrier
	isBra      bool  // direct BRA/JMP: target known at translation time
	flow       uint8 // pre-computed flowOf class for split maintenance
	runLen     int32 // consecutive batchable steps from here, within one CFG block
	braTarget  int32 // branch target when flow == flowBranch (BRA/JMP/CALL)
}

// guard evaluates the instruction guard for the lanes in atPC, mirroring
// guardMask with the predicate classification already resolved.
func (xi *xinstr) guard(w *warp, atPC uint32) uint32 {
	switch xi.guardKind {
	case guardOn:
		return atPC
	case guardOff:
		return 0
	}
	return predMask(w, atPC, xi.guardPred&7, xi.guardNeg)
}

// semSimple reports whether a semantic is straight-line safe: it never
// writes per-lane PCs, never changes lane liveness, never reaches a barrier,
// and never traps unconditionally. Simple steps may still fault (memory),
// which the translated loop handles; what they cannot do is invalidate the
// scheduling state the loop batched over.
func semSimple(sem sass.SemKind) bool {
	switch sem {
	case sass.SemBar, sass.SemBra, sass.SemJmp, sass.SemBrx, sass.SemCall, sass.SemRet,
		sass.SemExit, sass.SemKill, sass.SemBpt, sass.SemNone:
		return false
	}
	return true
}

// xlateEngine names and versions the translation scheme in the plan cache
// key: bumping it invalidates every cached plan without touching the module
// entries.
const xlateEngine = "gpu.xplan/v2"

// planFor returns the translated execution plan for a kernel, building and
// caching it process-wide on first use. Content-identical kernels — e.g.
// independent decodes of the same module binary across a campaign's contexts
// — share one plan. Returns nil (interpret everything) when translation is
// disabled on the device.
func (d *Device) planFor(k *sass.Kernel) *xplan {
	if d.NoXlate || k == nil {
		return nil
	}
	if p, ok := d.planMemo[k]; ok {
		return p
	}
	key := modcache.PlanKey{Engine: xlateEngine, Hash: hashKernel(k)}
	v, _, err := modcache.Shared.Plan(key, func() (any, error) { return translate(k) })
	if err != nil {
		return nil
	}
	p := v.(*xplan)
	if d.planMemo == nil {
		d.planMemo = make(map[*sass.Kernel]*xplan)
	}
	d.planMemo[k] = p
	return p
}

// hashKernel computes the content hash that keys the plan cache. It covers
// exactly the state translation reads: opcode, guard, modifiers, and every
// operand field with architectural meaning. Symbol names and the kernel name
// are deliberately excluded — two decodes that differ only cosmetically
// execute identically and may share a plan.
func hashKernel(k *sass.Kernel) [sha256.Size]byte {
	h := sha256.New()
	var buf [8]byte
	u32 := func(v uint32) {
		binary.LittleEndian.PutUint32(buf[:4], v)
		h.Write(buf[:4])
	}
	b := func(v bool) {
		if v {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	u32(uint32(len(k.Instrs)))
	for i := range k.Instrs {
		in := &k.Instrs[i]
		u32(uint32(in.Op))
		u32(uint32(in.Guard.Pred))
		b(in.Guard.Neg)
		m := &in.Mods
		u32(uint32(m.Width))
		b(m.Signed)
		b(m.Unsigned)
		u32(uint32(m.Cmp))
		u32(uint32(m.Bool))
		u32(uint32(m.Logic))
		u32(uint32(m.Mufu))
		u32(uint32(m.Atom))
		u32(uint32(m.Shfl))
		b(m.High)
		b(m.Right)
		b(m.FtoI.Trunc)
		b(m.Float)
		b(m.Sync)
		u32(uint32(len(in.Dst)))
		u32(uint32(len(in.Src)))
		for _, ops := range [2][]sass.Operand{in.Dst, in.Src} {
			for j := range ops {
				o := &ops[j]
				u32(uint32(o.Kind))
				b(o.Neg)
				u32(uint32(o.Reg))
				u32(uint32(o.Pred.Pred))
				b(o.Pred.Neg)
				u32(o.Imm)
				u32(uint32(o.Off))
				u32(uint32(o.Bank))
				u32(uint32(o.SReg))
				u32(uint32(o.Target))
			}
		}
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// translate compiles a kernel into its execution plan. It cannot fail: any
// instruction the specializer does not understand compiles to an interpreter
// thunk. The error return exists for the modcache signature and future
// schemes that may want to reject kernels.
func translate(k *sass.Kernel) (*xplan, error) {
	steps := make([]xinstr, len(k.Instrs))
	for i := range k.Instrs {
		in := &k.Instrs[i]
		xi := &steps[i]
		sem := in.Op.Info().Sem
		xi.altersFlow = semAltersFlow(sem)
		xi.simple = semSimple(sem)
		switch {
		case in.Guard.True():
			xi.guardKind = guardOn
		case in.Guard.Pred == sass.PT:
			xi.guardKind = guardOff
		default:
			xi.guardKind = guardCond
			xi.guardPred = in.Guard.Pred
			xi.guardNeg = in.Guard.Neg
		}
		if (sem == sass.SemBra || sem == sass.SemJmp) && len(in.Src) > 0 {
			// Direct branch: the hot loop resolves the uniform cases (all
			// lanes take, or none take) without leaving the converged state.
			xi.isBra = true
		}
		xi.flow, xi.braTarget = flowOf(in)
		xi.step = compileStep(in, i)
	}
	// Straight-line run lengths, computed backwards within each CFG basic
	// block so a run can never span a branch target. A step is batchable
	// when it is simple and does not read the SM clock: the batched loop
	// charges the whole run's clock advance up front, which only a
	// CS2R/SR_CLOCK read could observe — those issue one at a time.
	cfg := sassan.BuildCFG(k)
	for _, blk := range cfg.Blocks {
		run := int32(0)
		for i := blk.End - 1; i >= blk.Start; i-- {
			if steps[i].simple && !readsClock(&k.Instrs[i]) {
				run++
			} else {
				run = 0
			}
			steps[i].runLen = run
		}
	}
	return &xplan{steps: steps}, nil
}

// readsClock reports whether executing the instruction can observe the SM
// clock: CS2R (always a clock read here) or any special-register source
// resolving to SR_CLOCK. Everything else specialVal computes from per-lane
// or per-block state that batching does not disturb.
func readsClock(in *sass.Instr) bool {
	if in.Op.Info().Sem == sass.SemCS2R {
		return true
	}
	for i := range in.Src {
		if in.Src[i].Kind == sass.OpdSpecial && in.Src[i].SReg == sass.SRClock {
			return true
		}
	}
	return false
}

// thunkStep is the universal fallback: execute through the interpreter. The
// captured instruction pointer refers into the translated kernel's (shared,
// immutable) instruction slice; pc is needed because SemCall pushes pc+1.
func thunkStep(in *sass.Instr, pc int) planStep {
	return func(blk *blockCtx, w *warp, execMask uint32) (bool, TrapKind, uint32) {
		return blk.exec(w, in, pc, execMask)
	}
}
