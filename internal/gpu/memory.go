package gpu

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
)

// Memory is the device global-memory model: a bump allocator over a 32-bit
// address space with per-allocation bounds tracking. Accesses outside any
// live allocation raise TrapIllegalAddress; accesses not aligned to their
// width raise TrapMisaligned — the two anomalies the paper calls out as
// non-fatal GPU errors that produce "potential DUE" outcomes.
//
// Backing storage is paged at memPageSize granularity with copy-on-write
// sharing: Device.Snapshot marks every materialized page shared, and the N
// runs later restored from one checkpoint alias the clean pages until the
// first write. Pages never written at all stay nil and read as zeros, so a
// large untouched buffer costs only its page table.
type Memory struct {
	allocs []alloc // sorted by base
	next   uint32

	// lastHit memoizes the indexes of the two allocations most recently
	// resolved by a missed find (low 16 bits: most recent; high 16: the one
	// before). Kernels overwhelmingly ping between one or two buffers — an
	// input and an output — so nearly every find resolves on one of the two
	// validation compares without touching the search, and steady-state hits
	// never store (an atomic store is a full barrier on x86, costlier than
	// the search it saves). Accessed atomically because parallel blocks call
	// find concurrently; the value is advisory — every read is re-validated
	// against the current alloc table before use.
	lastHit atomic.Uint32

	// aliased marks a memory whose pages may be shared with a snapshot (it
	// was snapshotted, or restored from one). Aliased pages must never return
	// to the page pool: another fork may still be reading them.
	aliased bool
}

// memPageSize is the copy-on-write page granularity. It is a multiple of
// allocAlign and of the widest single access (8 bytes), so a width-aligned
// access never straddles a page boundary.
const memPageSize = 4096

// zeroPage backs reads of pages that were never written.
var zeroPage [memPageSize]byte

// pagePool recycles device-memory pages across experiments. Pages are zeroed
// before being returned to the pool, so a pooled page is indistinguishable
// from a freshly made one.
var pagePool = sync.Pool{New: func() any {
	p := make([]byte, memPageSize)
	return &p
}}

func getPage() []byte { return *pagePool.Get().(*[]byte) }

func putPage(p []byte) {
	clear(p)
	pagePool.Put(&p)
}

type alloc struct {
	base uint32
	size uint32
	// pages backs the allocation at memPageSize granularity, indexed by
	// (addr-base)/memPageSize. A nil page reads as zeros and is
	// materialized on first write. shared[i] marks a page aliased by at
	// least one snapshot: it is copied before the next write so the
	// snapshot's view never changes.
	pages  [][]byte
	shared []bool
}

// readPage returns the bytes backing page pg for reading; never-written
// pages read as zeros.
func (a *alloc) readPage(pg uint32) []byte {
	if p := a.pages[pg]; p != nil {
		return p
	}
	return zeroPage[:]
}

// writePage returns the bytes backing page pg for writing, materializing
// never-written pages and copying snapshot-shared ones (the copy-on-write
// fault path).
func (a *alloc) writePage(pg uint32) []byte {
	p := a.pages[pg]
	if p == nil {
		p = getPage()
		a.pages[pg] = p
	} else if a.shared[pg] {
		c := getPage()
		copy(c, p)
		a.pages[pg] = c
		p = c
	}
	a.shared[pg] = false
	return p
}

// allocBase leaves the low addresses unmapped so that computed-to-zero
// pointers fault, like a CUDA null dereference.
const allocBase = 0x10000

// allocAlign keeps every allocation 256-byte aligned, matching cudaMalloc.
const allocAlign = 256

// NewMemory returns an empty device memory.
func NewMemory() *Memory {
	return &Memory{next: allocBase}
}

// Alloc reserves size bytes of device memory and returns its base address.
func (m *Memory) Alloc(size int) (uint32, error) {
	if size <= 0 {
		return 0, fmt.Errorf("gpu: invalid allocation size %d", size)
	}
	sz := (uint32(size) + allocAlign - 1) &^ (allocAlign - 1)
	if m.next > ^uint32(0)-sz {
		return 0, fmt.Errorf("gpu: out of device memory")
	}
	base := m.next
	m.next += sz
	n := (uint32(size) + memPageSize - 1) / memPageSize
	m.allocs = append(m.allocs, alloc{
		base:   base,
		size:   uint32(size),
		pages:  make([][]byte, n),
		shared: make([]bool, n),
	})
	return base, nil
}

// Free releases the allocation starting at base.
func (m *Memory) Free(base uint32) error {
	for i, a := range m.allocs {
		if a.base == base {
			m.allocs = append(m.allocs[:i], m.allocs[i+1:]...)
			m.lastHit.Store(0) // indexes above i shifted down
			return nil
		}
	}
	return fmt.Errorf("gpu: free of unallocated address 0x%x", base)
}

// find returns the allocation containing addr, or nil.
func (m *Memory) find(addr uint32) *alloc {
	allocs := m.allocs
	// Memoized candidates first: addr-base underflows past size for any
	// addr below base, so one unsigned compare validates each. A hit on the
	// older slot deliberately does not promote it — alternating between two
	// buffers then stabilizes with both memoized and no stores at all.
	memo := m.lastHit.Load()
	if i := int(memo & 0xffff); i < len(allocs) {
		if a := &allocs[i]; addr-a.base < a.size {
			return a
		}
	}
	if i := int(memo >> 16); i < len(allocs) {
		if a := &allocs[i]; addr-a.base < a.size {
			return a
		}
	}
	// allocs is sorted by base (bump allocator), so binary search for the
	// last allocation with base <= addr. Hand-rolled rather than
	// sort.Search: the closure call per probe dominates the search cost on
	// this hot path.
	lo, hi := 0, len(allocs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if allocs[mid].base <= addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return nil
	}
	a := &allocs[lo-1]
	if addr-a.base < a.size {
		if idx := uint32(lo - 1); idx < 0xffff {
			m.lastHit.Store(idx | memo<<16)
		}
		return a
	}
	return nil
}

// check validates an access of width bytes at addr and returns the
// allocation and the offset within it. Trap kinds are reported through the
// returned values. A width-aligned access never straddles a page: base is
// allocAlign-aligned and both widths divide memPageSize.
func (m *Memory) check(addr uint32, width uint32) (a *alloc, off uint32, kind TrapKind) {
	if addr%width != 0 {
		return nil, 0, TrapMisaligned
	}
	a = m.find(addr)
	if a == nil || addr-a.base+width > a.size {
		return nil, 0, TrapIllegalAddress
	}
	return a, addr - a.base, 0
}

// Load reads width bytes (1, 2, 4 or 8) at addr, little-endian.
func (m *Memory) Load(addr uint32, width uint8) (uint64, TrapKind) {
	a, off, kind := m.check(addr, uint32(width))
	if kind != 0 {
		return 0, kind
	}
	buf := a.readPage(off / memPageSize)
	o := off % memPageSize
	switch width {
	case 1:
		return uint64(buf[o]), 0
	case 2:
		return uint64(binary.LittleEndian.Uint16(buf[o:])), 0
	case 4:
		return uint64(binary.LittleEndian.Uint32(buf[o:])), 0
	case 8:
		return binary.LittleEndian.Uint64(buf[o:]), 0
	default:
		return 0, TrapInvalidInstruction
	}
}

// Store writes width bytes (1, 2, 4 or 8) at addr, little-endian.
func (m *Memory) Store(addr uint32, width uint8, val uint64) TrapKind {
	a, off, kind := m.check(addr, uint32(width))
	if kind != 0 {
		return kind
	}
	buf := a.writePage(off / memPageSize)
	o := off % memPageSize
	switch width {
	case 1:
		buf[o] = byte(val)
	case 2:
		binary.LittleEndian.PutUint16(buf[o:], uint16(val))
	case 4:
		binary.LittleEndian.PutUint32(buf[o:], uint32(val))
	case 8:
		binary.LittleEndian.PutUint64(buf[o:], val)
	default:
		return TrapInvalidInstruction
	}
	return 0
}

// ReadBytes copies n bytes starting at addr into a new slice (device-to-host
// memcpy). The whole range must lie inside one allocation.
func (m *Memory) ReadBytes(addr uint32, n int) ([]byte, error) {
	a := m.find(addr)
	if a == nil || uint32(n) > a.size-(addr-a.base) {
		return nil, fmt.Errorf("gpu: memcpy DtoH of %d bytes at 0x%x out of bounds", n, addr)
	}
	out := make([]byte, n)
	off := addr - a.base
	for done := 0; done < n; {
		p := off + uint32(done)
		done += copy(out[done:], a.readPage(p / memPageSize)[p%memPageSize:])
	}
	return out, nil
}

// WriteBytes copies b into device memory at addr (host-to-device memcpy).
func (m *Memory) WriteBytes(addr uint32, b []byte) error {
	a := m.find(addr)
	if a == nil || uint32(len(b)) > a.size-(addr-a.base) {
		return fmt.Errorf("gpu: memcpy HtoD of %d bytes at 0x%x out of bounds", len(b), addr)
	}
	off := addr - a.base
	for done := 0; done < len(b); {
		p := off + uint32(done)
		done += copy(a.writePage(p / memPageSize)[p%memPageSize:], b[done:])
	}
	return nil
}

// AllocCount returns the number of live allocations, for tests.
func (m *Memory) AllocCount() int { return len(m.allocs) }

// MemSpan describes one live allocation's address range.
type MemSpan struct {
	Base uint32
	Size uint32
}

// Spans returns the live allocations in base order. Fault injectors use it
// to map a unit fraction onto a concrete device address without knowing the
// workload's buffer layout.
func (m *Memory) Spans() []MemSpan {
	spans := make([]MemSpan, len(m.allocs))
	for i := range m.allocs {
		spans[i] = MemSpan{Base: m.allocs[i].base, Size: m.allocs[i].size}
	}
	return spans
}

// Recycle returns every materialized page to the process-wide page pool and
// empties the memory. Call only when the memory is being discarded — a
// campaign retiring an experiment's context. A memory that was ever
// snapshotted or restored from a snapshot is left untouched: its pages may
// alias other forks' views, and aliasing is tracked per memory, not per page.
func (m *Memory) Recycle() {
	if m.aliased {
		return
	}
	for i := range m.allocs {
		a := &m.allocs[i]
		for pg, p := range a.pages {
			if p != nil && !a.shared[pg] {
				putPage(p)
			}
			a.pages[pg] = nil
		}
	}
	m.allocs = nil
	m.next = allocBase
	m.lastHit.Store(0)
}

// Recycle retires the device, returning its global-memory pages to the
// process-wide page pool. Call only when the device will never be used
// again — the campaign layer calls it after classifying each experiment.
func (d *Device) Recycle() { d.Mem.Recycle() }

// memSnap is an immutable copy-on-write view of a Memory, shared between
// the snapshotted memory and every fork restored from it.
type memSnap struct {
	next   uint32
	allocs []memSnapAlloc
}

type memSnapAlloc struct {
	base  uint32
	size  uint32
	pages [][]byte
}

// snapshot captures the memory's current contents without copying page
// data: every materialized page is marked shared on the live memory, so
// the next write to it copies first and the snapshot's view never changes.
func (m *Memory) snapshot() *memSnap {
	m.aliased = true
	s := &memSnap{next: m.next, allocs: make([]memSnapAlloc, len(m.allocs))}
	for i := range m.allocs {
		a := &m.allocs[i]
		pages := make([][]byte, len(a.pages))
		copy(pages, a.pages)
		for pg, p := range a.pages {
			if p != nil {
				a.shared[pg] = true
			}
		}
		s.allocs[i] = memSnapAlloc{base: a.base, size: a.size, pages: pages}
	}
	return s
}

// restore builds a fresh Memory whose pages all start shared with the
// snapshot. It only reads the snapshot, so any number of forks can restore
// from one memSnap concurrently and then diverge via copy-on-write without
// ever observing each other.
func (s *memSnap) restore() *Memory {
	m := &Memory{next: s.next, allocs: make([]alloc, len(s.allocs)), aliased: true}
	for i := range s.allocs {
		sa := &s.allocs[i]
		pages := make([][]byte, len(sa.pages))
		copy(pages, sa.pages)
		shared := make([]bool, len(pages))
		for pg, p := range pages {
			shared[pg] = p != nil
		}
		m.allocs[i] = alloc{base: sa.base, size: sa.size, pages: pages, shared: shared}
	}
	return m
}
