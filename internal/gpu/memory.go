package gpu

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Memory is the device global-memory model: a bump allocator over a 32-bit
// address space with per-allocation bounds tracking. Accesses outside any
// live allocation raise TrapIllegalAddress; accesses not aligned to their
// width raise TrapMisaligned — the two anomalies the paper calls out as
// non-fatal GPU errors that produce "potential DUE" outcomes.
type Memory struct {
	allocs []alloc // sorted by base
	data   map[uint32][]byte
	next   uint32
}

type alloc struct {
	base uint32
	size uint32
}

// allocBase leaves the low addresses unmapped so that computed-to-zero
// pointers fault, like a CUDA null dereference.
const allocBase = 0x10000

// allocAlign keeps every allocation 256-byte aligned, matching cudaMalloc.
const allocAlign = 256

// NewMemory returns an empty device memory.
func NewMemory() *Memory {
	return &Memory{data: make(map[uint32][]byte), next: allocBase}
}

// Alloc reserves size bytes of device memory and returns its base address.
func (m *Memory) Alloc(size int) (uint32, error) {
	if size <= 0 {
		return 0, fmt.Errorf("gpu: invalid allocation size %d", size)
	}
	sz := (uint32(size) + allocAlign - 1) &^ (allocAlign - 1)
	if m.next > ^uint32(0)-sz {
		return 0, fmt.Errorf("gpu: out of device memory")
	}
	base := m.next
	m.next += sz
	m.allocs = append(m.allocs, alloc{base: base, size: uint32(size)})
	m.data[base] = make([]byte, size)
	return base, nil
}

// Free releases the allocation starting at base.
func (m *Memory) Free(base uint32) error {
	for i, a := range m.allocs {
		if a.base == base {
			m.allocs = append(m.allocs[:i], m.allocs[i+1:]...)
			delete(m.data, base)
			return nil
		}
	}
	return fmt.Errorf("gpu: free of unallocated address 0x%x", base)
}

// find returns the allocation containing addr, or nil.
func (m *Memory) find(addr uint32) *alloc {
	// allocs is append-only sorted (bump allocator), so binary search works.
	i := sort.Search(len(m.allocs), func(i int) bool { return m.allocs[i].base > addr })
	if i == 0 {
		return nil
	}
	a := &m.allocs[i-1]
	if addr-a.base < a.size {
		return a
	}
	return nil
}

// check validates an access of width bytes at addr and returns the backing
// slice offset. Trap kinds are reported through the returned values.
func (m *Memory) check(addr uint32, width uint32) (buf []byte, off uint32, kind TrapKind) {
	if addr%width != 0 {
		return nil, 0, TrapMisaligned
	}
	a := m.find(addr)
	if a == nil || addr-a.base+width > a.size {
		return nil, 0, TrapIllegalAddress
	}
	return m.data[a.base], addr - a.base, 0
}

// Load reads width bytes (1, 2, 4 or 8) at addr, little-endian.
func (m *Memory) Load(addr uint32, width uint8) (uint64, TrapKind) {
	buf, off, kind := m.check(addr, uint32(width))
	if kind != 0 {
		return 0, kind
	}
	switch width {
	case 1:
		return uint64(buf[off]), 0
	case 2:
		return uint64(binary.LittleEndian.Uint16(buf[off:])), 0
	case 4:
		return uint64(binary.LittleEndian.Uint32(buf[off:])), 0
	case 8:
		return binary.LittleEndian.Uint64(buf[off:]), 0
	default:
		return 0, TrapInvalidInstruction
	}
}

// Store writes width bytes (1, 2, 4 or 8) at addr, little-endian.
func (m *Memory) Store(addr uint32, width uint8, val uint64) TrapKind {
	buf, off, kind := m.check(addr, uint32(width))
	if kind != 0 {
		return kind
	}
	switch width {
	case 1:
		buf[off] = byte(val)
	case 2:
		binary.LittleEndian.PutUint16(buf[off:], uint16(val))
	case 4:
		binary.LittleEndian.PutUint32(buf[off:], uint32(val))
	case 8:
		binary.LittleEndian.PutUint64(buf[off:], val)
	default:
		return TrapInvalidInstruction
	}
	return 0
}

// ReadBytes copies n bytes starting at addr into a new slice (device-to-host
// memcpy). The whole range must lie inside one allocation.
func (m *Memory) ReadBytes(addr uint32, n int) ([]byte, error) {
	a := m.find(addr)
	if a == nil || uint32(n) > a.size-(addr-a.base) {
		return nil, fmt.Errorf("gpu: memcpy DtoH of %d bytes at 0x%x out of bounds", n, addr)
	}
	out := make([]byte, n)
	copy(out, m.data[a.base][addr-a.base:])
	return out, nil
}

// WriteBytes copies b into device memory at addr (host-to-device memcpy).
func (m *Memory) WriteBytes(addr uint32, b []byte) error {
	a := m.find(addr)
	if a == nil || uint32(len(b)) > a.size-(addr-a.base) {
		return fmt.Errorf("gpu: memcpy HtoD of %d bytes at 0x%x out of bounds", len(b), addr)
	}
	copy(m.data[a.base][addr-a.base:], b)
	return nil
}

// AllocCount returns the number of live allocations, for tests.
func (m *Memory) AllocCount() int { return len(m.allocs) }
