package gpu

import (
	"math/bits"

	"repro/internal/sass"
)

// Memory-instruction specialization, mirroring exec_mem.go case for case.
// Address computation, width dispatch, and destination shape checks are all
// resolved at translation time; the actual space dispatch goes through the
// same spaceLoadAt/spaceStoreAt helpers the interpreter uses.

// memAddrLane compiles evalCtx.memAddr: the effective address of the first
// memory operand for one lane. Returns nil when the instruction has no
// memory operand.
func memAddrLane(in *sass.Instr) func(w *warp, lane int) uint32 {
	for i := range in.Src {
		o := &in.Src[i]
		if o.Kind != sass.OpdMem {
			continue
		}
		off := uint32(o.Off)
		if o.Reg == sass.RZ {
			return func(*warp, int) uint32 { return off }
		}
		r := o.Reg
		return func(w *warp, lane int) uint32 { return w.regs[lane][r] + off }
	}
	return nil
}

// trapActive is the compiled form of "return TrapInvalidInstruction on the
// first active lane": a trap iff any lane executes, as the interpreter's
// in-loop shape checks behave.
func trapActive(blk *blockCtx, w *warp, m uint32) (bool, TrapKind, uint32) {
	if m != 0 {
		return false, TrapInvalidInstruction, 0
	}
	return false, 0, 0
}

// fastMemOperand classifies the dominant memory-operand shape — `[Rx+off]`
// or `[off]` — for the fused global-access tier.
func fastMemOperand(in *sass.Instr) (r sass.RegID, off uint32, useReg, ok bool) {
	for i := range in.Src {
		o := &in.Src[i]
		if o.Kind != sass.OpdMem {
			continue
		}
		return o.Reg, uint32(o.Off), o.Reg != sass.RZ, true
	}
	return 0, 0, false, false
}

// fastLoadG32 is the fused step for the dominant load shape: LDG/LD.32 from
// global memory into a plain register. Instead of a bounds-check plus page
// lookup per lane, it keeps a window over the last page touched: coalesced
// warps (the common case by construction — kernels index by tid) resolve 31
// of 32 lanes with one compare and a direct read. Misses fall back to the
// same Memory.check the interpreter's Load uses, so trap kinds, fault
// addresses, and ascending-lane fault ordering are identical.
func fastLoadG32(r sass.RegID, off uint32, useReg bool, d sass.RegID) planStep {
	return func(blk *blockCtx, w *warp, m uint32) (bool, TrapKind, uint32) {
		r, off, useReg, d := r, off, useReg, d
		mem := blk.dev.Mem
		var winBase uint32 // device address of winBuf[0]
		var winBuf []byte  // valid bytes of the cached page, clamped to the allocation
		for lane, rem := 0, m; rem != 0; lane, rem = lane+1, rem>>1 {
			if rem&1 == 0 {
				continue
			}
			lane := lane & 31
			rf := &w.regs[lane]
			a := off
			if useReg {
				a += rf[r]
			}
			if i := a - winBase; a&3 == 0 && uint64(i)+4 <= uint64(len(winBuf)) {
				rf[d] = uint32(winBuf[i]) | uint32(winBuf[i+1])<<8 |
					uint32(winBuf[i+2])<<16 | uint32(winBuf[i+3])<<24
				continue
			}
			al, o, kind := mem.check(a, 4)
			if kind != 0 {
				return false, kind, a
			}
			po := o % memPageSize
			winLen := uint32(memPageSize)
			if left := al.size - (o - po); left < winLen {
				winLen = left
			}
			winBase = a - po
			winBuf = al.readPage(o / memPageSize)[:winLen]
			i := po
			rf[d] = uint32(winBuf[i]) | uint32(winBuf[i+1])<<8 |
				uint32(winBuf[i+2])<<16 | uint32(winBuf[i+3])<<24
		}
		return false, 0, 0
	}
}

// fastStoreG32 is fastLoadG32's store counterpart. The cached window comes
// from writePage, so the first touch of each page pays the copy-on-write
// fault exactly like Memory.Store and later lanes write the private page
// directly.
func fastStoreG32(r sass.RegID, off uint32, useReg bool, v fastSrc) planStep {
	return func(blk *blockCtx, w *warp, m uint32) (bool, TrapKind, uint32) {
		r, off, useReg := r, off, useReg
		vv := v.hoist(blk)
		vIsReg, vReg, vXor, vAdd := v.unpack()
		mem := blk.dev.Mem
		var winBase uint32
		var winBuf []byte
		for lane, rem := 0, m; rem != 0; lane, rem = lane+1, rem>>1 {
			if rem&1 == 0 {
				continue
			}
			lane := lane & 31
			rf := &w.regs[lane]
			a := off
			if useReg {
				a += rf[r]
			}
			val := vv
			if vIsReg {
				val = (rf[vReg] ^ vXor) + vAdd
			}
			if i := a - winBase; a&3 == 0 && uint64(i)+4 <= uint64(len(winBuf)) {
				winBuf[i] = byte(val)
				winBuf[i+1] = byte(val >> 8)
				winBuf[i+2] = byte(val >> 16)
				winBuf[i+3] = byte(val >> 24)
				continue
			}
			al, o, kind := mem.check(a, 4)
			if kind != 0 {
				return false, kind, a
			}
			po := o % memPageSize
			winLen := uint32(memPageSize)
			if left := al.size - (o - po); left < winLen {
				winLen = left
			}
			winBase = a - po
			winBuf = al.writePage(o / memPageSize)[:winLen]
			i := po
			winBuf[i] = byte(val)
			winBuf[i+1] = byte(val >> 8)
			winBuf[i+2] = byte(val >> 16)
			winBuf[i+3] = byte(val >> 24)
		}
		return false, 0, 0
	}
}

// compileLoad specializes LD/LDG/LDL/LDS.
func compileLoad(in *sass.Instr, space sass.MemSpace) planStep {
	addr := memAddrLane(in)
	if addr == nil {
		return trapActive
	}
	switch width := in.Mods.MemWidth(); width {
	case 1, 2, 4:
		wr := dstWr(in)
		if wr == nil {
			return nil
		}
		if width == 4 && (space == sass.SpaceGlobal || space == sass.SpaceGeneric) {
			// Sign extension is a no-op at full width, so .32 loads take the
			// fused global tier whenever the destination is a plain register.
			if d, ok := fastDst(in); ok {
				if r, off, useReg, ok := fastMemOperand(in); ok {
					return fastLoadG32(r, off, useReg, d)
				}
			}
		}
		signed := in.Mods.Signed
		return func(blk *blockCtx, w *warp, m uint32) (bool, TrapKind, uint32) {
			for ; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros32(m)
				a := addr(w, lane)
				v, kind := spaceLoadAt(blk, w, lane, space, a, width)
				if kind != 0 {
					return false, kind, a
				}
				u := uint32(v)
				if signed {
					switch width {
					case 1:
						u = uint32(int32(int8(u)))
					case 2:
						u = uint32(int32(int16(u)))
					}
				}
				wr(w, lane, u)
			}
			return false, 0, 0
		}
	case 8:
		wr := dstWrPair(in)
		if wr == nil {
			return nil
		}
		return func(blk *blockCtx, w *warp, m uint32) (bool, TrapKind, uint32) {
			for ; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros32(m)
				a := addr(w, lane)
				v, kind := spaceLoadAt(blk, w, lane, space, a, 8)
				if kind != 0 {
					return false, kind, a
				}
				wr(w, lane, v)
			}
			return false, 0, 0
		}
	case 16:
		if len(in.Dst) == 0 {
			return nil // interpreter panics on the missing destination
		}
		d := &in.Dst[0]
		if d.Kind != sass.OpdReg {
			return trapActive
		}
		base := d.Reg
		return func(blk *blockCtx, w *warp, m uint32) (bool, TrapKind, uint32) {
			for ; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros32(m)
				a := addr(w, lane)
				for i := uint32(0); i < 4; i++ {
					v, kind := spaceLoadAt(blk, w, lane, space, a+4*i, 4)
					if kind != 0 {
						return false, kind, a + 4*i
					}
					if r := base + sass.RegID(i); r != sass.RZ {
						w.regs[lane][r] = uint32(v)
					}
				}
			}
			return false, 0, 0
		}
	default:
		return trapActive
	}
}

// compileLoadConst specializes LDC.
func compileLoadConst(in *sass.Instr) planStep {
	wr := dstWr(in)
	addr := memAddrLane(in)
	if addr == nil {
		// LDC with a plain constant operand degenerates to MOV; the
		// interpreter reads Src[0] (and panics if it is missing too).
		a := srcU(in, 0)
		if wr == nil || a == nil {
			return nil
		}
		return stepU(wr, a)
	}
	if wr == nil {
		return nil
	}
	return func(blk *blockCtx, w *warp, m uint32) (bool, TrapKind, uint32) {
		for ; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			a := addr(w, lane)
			if a%4 != 0 {
				return false, TrapMisaligned, a
			}
			wr(w, lane, blk.constRead(int32(a)))
		}
		return false, 0, 0
	}
}

// compileStore specializes ST/STG/STL/STS.
func compileStore(in *sass.Instr, space sass.MemSpace) planStep {
	vi := -1
	for i := range in.Src {
		if in.Src[i].Kind != sass.OpdMem {
			vi = i
			break
		}
	}
	if vi < 0 {
		// No value operand: the interpreter traps before its lane loop, so
		// this faults even with an empty exec mask.
		return func(*blockCtx, *warp, uint32) (bool, TrapKind, uint32) {
			return false, TrapInvalidInstruction, 0
		}
	}
	addr := memAddrLane(in)
	if addr == nil {
		return trapActive
	}
	switch width := in.Mods.MemWidth(); width {
	case 1, 2, 4:
		if width == 4 && (space == sass.SpaceGlobal || space == sass.SpaceGeneric) {
			if v, ok := fastSrcFor(in, vi, fnNone); ok {
				if r, off, useReg, ok := fastMemOperand(in); ok {
					return fastStoreG32(r, off, useReg, v)
				}
			}
		}
		val := srcU(in, vi)
		return func(blk *blockCtx, w *warp, m uint32) (bool, TrapKind, uint32) {
			for ; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros32(m)
				a := addr(w, lane)
				if kind := spaceStoreAt(blk, w, lane, space, a, width, uint64(val(blk, w, lane))); kind != 0 {
					return false, kind, a
				}
			}
			return false, 0, 0
		}
	case 8:
		var val func(blk *blockCtx, w *warp, lane int) uint64
		if o := &in.Src[vi]; o.Kind == sass.OpdReg {
			r := o.Reg
			val = func(_ *blockCtx, w *warp, lane int) uint64 { return readPairReg(w, lane, r) }
		} else {
			u := srcU(in, vi)
			val = func(blk *blockCtx, w *warp, lane int) uint64 { return uint64(u(blk, w, lane)) }
		}
		return func(blk *blockCtx, w *warp, m uint32) (bool, TrapKind, uint32) {
			for ; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros32(m)
				a := addr(w, lane)
				if kind := spaceStoreAt(blk, w, lane, space, a, 8, val(blk, w, lane)); kind != 0 {
					return false, kind, a
				}
			}
			return false, 0, 0
		}
	case 16:
		o := &in.Src[vi]
		if o.Kind != sass.OpdReg {
			return trapActive
		}
		base := o.Reg
		return func(blk *blockCtx, w *warp, m uint32) (bool, TrapKind, uint32) {
			for ; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros32(m)
				a := addr(w, lane)
				for i := uint32(0); i < 4; i++ {
					var v uint32
					if r := base + sass.RegID(i); r != sass.RZ {
						v = w.regs[lane][r]
					}
					if kind := spaceStoreAt(blk, w, lane, space, a+4*i, 4, uint64(v)); kind != 0 {
						return false, kind, a + 4*i
					}
				}
			}
			return false, 0, 0
		}
	default:
		return trapActive
	}
}

// compileAtomic compiles evalCtx.atomic case for case: ATOM/ATOMG/ATOMS
// (withResult) and RED (without). Lanes execute in ascending order so
// intra-warp races keep their deterministic interpreted outcome; under the
// parallel block scheduler, global-memory atomics take the device atomics
// lock for the whole warp instruction, exactly like the interpreter. The
// CAS-missing-swap and unknown-op traps fire after the lane's load, so a
// memory fault on that load still wins with the interpreter's trap kind.
func compileAtomic(in *sass.Instr, space sass.MemSpace, withResult bool) planStep {
	var wr laneWrU
	if withResult {
		if wr = dstWr(in); wr == nil {
			// Missing destination: the interpreter panics in wr; keep the
			// thunk so that behavior stays in one place.
			return nil
		}
	}
	op := in.Mods.Atom
	if op == sass.AtomNone {
		op = sass.AtomAdd
	}
	float := in.Mods.Float
	vi := -1
	for i := range in.Src {
		if in.Src[i].Kind != sass.OpdMem {
			vi = i
			break
		}
	}
	if vi < 0 {
		// No value operand: the interpreter traps before its lane loop, so
		// this faults even with an empty exec mask.
		return func(*blockCtx, *warp, uint32) (bool, TrapKind, uint32) {
			return false, TrapInvalidInstruction, 0
		}
	}
	addr := memAddrLane(in)
	if addr == nil {
		return trapActive
	}
	val := srcU(in, vi)
	var swap laneU
	casShort := false
	if op == sass.AtomCAS {
		// Operands: [addr], compare, swap.
		if vi+1 >= len(in.Src) {
			casShort = true
		} else {
			swap = srcU(in, vi+1)
		}
	}
	lockable := space == sass.SpaceGlobal || space == sass.SpaceGeneric
	return func(blk *blockCtx, w *warp, m uint32) (bool, TrapKind, uint32) {
		if blk.parallel && lockable {
			blk.dev.atomMu.Lock()
			defer blk.dev.atomMu.Unlock()
		}
		for ; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			a := addr(w, lane)
			old, kind := spaceLoadAt(blk, w, lane, space, a, 4)
			if kind != 0 {
				return false, kind, a
			}
			cur := uint32(old)
			v := val(blk, w, lane)
			var newVal uint32
			switch op {
			case sass.AtomAdd:
				if float {
					newVal = addF32Bits(cur, v)
				} else {
					newVal = cur + v
				}
			case sass.AtomMin:
				newVal = cur
				if int32(v) < int32(cur) {
					newVal = v
				}
			case sass.AtomMax:
				newVal = cur
				if int32(v) > int32(cur) {
					newVal = v
				}
			case sass.AtomAnd:
				newVal = cur & v
			case sass.AtomOr:
				newVal = cur | v
			case sass.AtomXor:
				newVal = cur ^ v
			case sass.AtomExch:
				newVal = v
			case sass.AtomCAS:
				if casShort {
					return false, TrapInvalidInstruction, 0
				}
				newVal = cur
				if cur == v {
					newVal = swap(blk, w, lane)
				}
			default:
				return false, TrapInvalidInstruction, 0
			}
			if kind := spaceStoreAt(blk, w, lane, space, a, 4, uint64(newVal)); kind != 0 {
				return false, kind, a
			}
			if wr != nil {
				wr(w, lane, cur)
			}
		}
		return false, 0, 0
	}
}
