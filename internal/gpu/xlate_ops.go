package gpu

import (
	"math"
	"math/bits"

	"repro/internal/sass"
)

// This file is the instruction specializer: compileStep turns one sass.Instr
// into a planStep with every operand access resolved at translation time.
// Each source/destination compiler mirrors the corresponding evalCtx
// accessor in exec.go exactly — same zero-register handling, same negation
// rules, same out-of-shape behavior — and returns nil when the interpreter
// would panic on the shape, which makes compileStep fall back to the
// interpreter thunk so malformed instructions keep their exact interpreted
// behavior.

// Per-lane accessor and writer shapes. Readers take blk because constant
// and special-register reads are per-launch state that a cached plan must
// not capture.
type (
	laneU func(blk *blockCtx, w *warp, lane int) uint32
	laneF func(blk *blockCtx, w *warp, lane int) float32
	laneD func(blk *blockCtx, w *warp, lane int) float64
	laneP func(blk *blockCtx, w *warp, lane int) bool

	laneWrU func(w *warp, lane int, v uint32)
	laneWrP func(w *warp, lane int, v bool)
	laneWr2 func(w *warp, lane int, v uint64)
)

func zeroLane(*blockCtx, *warp, int) uint32 { return 0 }
func trueLane(*blockCtx, *warp, int) bool   { return true }
func falseLane(*blockCtx, *warp, int) bool  { return false }

func dropU(*warp, int, uint32) {}
func dropP(*warp, int, bool)   {}
func drop2(*warp, int, uint64) {}

// srcRaw compiles evalCtx.raw for one source operand; nil when the operand
// is missing (the interpreter would panic indexing it).
func srcRaw(in *sass.Instr, idx int) laneU {
	if idx >= len(in.Src) {
		return nil
	}
	o := &in.Src[idx]
	switch o.Kind {
	case sass.OpdReg:
		if o.Reg == sass.RZ {
			return zeroLane
		}
		r := o.Reg
		return func(_ *blockCtx, w *warp, lane int) uint32 { return w.regs[lane][r] }
	case sass.OpdImm:
		v := o.Imm
		return func(*blockCtx, *warp, int) uint32 { return v }
	case sass.OpdConst:
		off := o.Off
		return func(blk *blockCtx, _ *warp, _ int) uint32 { return blk.constRead(off) }
	case sass.OpdLabel:
		v := uint32(o.Target)
		return func(*blockCtx, *warp, int) uint32 { return v }
	case sass.OpdSpecial:
		sr := o.SReg
		return func(blk *blockCtx, w *warp, lane int) uint32 { return specialVal(blk, w, lane, sr) }
	default:
		return zeroLane
	}
}

// srcU compiles evalCtx.usrc (raw, negation ignored).
func srcU(in *sass.Instr, idx int) laneU { return srcRaw(in, idx) }

// srcI compiles evalCtx.isrc (integer negation).
func srcI(in *sass.Instr, idx int) laneU {
	f := srcRaw(in, idx)
	if f == nil {
		return nil
	}
	if in.Src[idx].Neg {
		return func(blk *blockCtx, w *warp, lane int) uint32 { return -f(blk, w, lane) }
	}
	return f
}

// srcFBits compiles evalCtx.fbits (sign-flip negation on float bits).
func srcFBits(in *sass.Instr, idx int) laneU {
	f := srcRaw(in, idx)
	if f == nil {
		return nil
	}
	if in.Src[idx].Neg {
		return func(blk *blockCtx, w *warp, lane int) uint32 { return f(blk, w, lane) ^ 0x80000000 }
	}
	return f
}

// srcF compiles evalCtx.fsrc.
func srcF(in *sass.Instr, idx int) laneF {
	f := srcFBits(in, idx)
	if f == nil {
		return nil
	}
	return func(blk *blockCtx, w *warp, lane int) float32 {
		return math.Float32frombits(f(blk, w, lane))
	}
}

// srcD compiles evalCtx.dsrc, including its quirk that a float immediate in
// a double context widens with negation ignored.
func srcD(in *sass.Instr, idx int) laneD {
	if idx >= len(in.Src) {
		return nil
	}
	o := &in.Src[idx]
	neg := o.Neg
	switch o.Kind {
	case sass.OpdReg:
		r := o.Reg
		if neg {
			return func(_ *blockCtx, w *warp, lane int) float64 {
				return math.Float64frombits(readPairReg(w, lane, r) ^ 1<<63)
			}
		}
		return func(_ *blockCtx, w *warp, lane int) float64 {
			return math.Float64frombits(readPairReg(w, lane, r))
		}
	case sass.OpdConst:
		off := o.Off
		return func(blk *blockCtx, _ *warp, _ int) float64 {
			b := uint64(blk.constRead(off+4))<<32 | uint64(blk.constRead(off))
			if neg {
				b ^= 1 << 63
			}
			return math.Float64frombits(b)
		}
	case sass.OpdImm:
		v := float64(math.Float32frombits(o.Imm))
		return func(*blockCtx, *warp, int) float64 { return v }
	default:
		b := uint64(0)
		if neg {
			b = 1 << 63
		}
		v := math.Float64frombits(b)
		return func(*blockCtx, *warp, int) float64 { return v }
	}
}

// srcP compiles evalCtx.psrc (missing or non-predicate operands read true).
func srcP(in *sass.Instr, idx int) laneP {
	if idx >= len(in.Src) {
		return trueLane
	}
	o := &in.Src[idx]
	if o.Kind != sass.OpdPred {
		return trueLane
	}
	p, neg := o.Pred.Pred, o.Pred.Neg
	if p == sass.PT {
		if neg {
			return falseLane
		}
		return trueLane
	}
	if neg {
		return func(_ *blockCtx, w *warp, lane int) bool { return !w.preds[lane][p] }
	}
	return func(_ *blockCtx, w *warp, lane int) bool { return w.preds[lane][p] }
}

// dstWr compiles evalCtx.wr; nil when Dst[0] is missing.
func dstWr(in *sass.Instr) laneWrU {
	if len(in.Dst) == 0 {
		return nil
	}
	d := &in.Dst[0]
	switch d.Kind {
	case sass.OpdReg:
		if d.Reg == sass.RZ {
			return dropU
		}
		r := d.Reg
		return func(w *warp, lane int, v uint32) { w.regs[lane][r] = v }
	case sass.OpdPred:
		if d.Pred.Pred == sass.PT {
			return dropU
		}
		p := d.Pred.Pred
		return func(w *warp, lane int, v uint32) { w.preds[lane][p] = v != 0 }
	default:
		return dropU
	}
}

// dstWrP compiles evalCtx.wrP; nil when Dst[0] is missing.
func dstWrP(in *sass.Instr) laneWrP {
	if len(in.Dst) == 0 {
		return nil
	}
	d := &in.Dst[0]
	if d.Kind == sass.OpdPred && d.Pred.Pred != sass.PT {
		p := d.Pred.Pred
		return func(w *warp, lane int, v bool) { w.preds[lane][p] = v }
	}
	return dropP
}

// dstWrPair compiles evalCtx.wrPair; nil when Dst[0] is missing.
func dstWrPair(in *sass.Instr) laneWr2 {
	if len(in.Dst) == 0 {
		return nil
	}
	d := &in.Dst[0]
	if d.Kind != sass.OpdReg || d.Reg == sass.RZ {
		return drop2
	}
	r := d.Reg
	if r+1 != sass.RZ {
		return func(w *warp, lane int, v uint64) {
			w.regs[lane][r] = uint32(v)
			w.regs[lane][r+1] = uint32(v >> 32)
		}
	}
	return func(w *warp, lane int, v uint64) { w.regs[lane][r] = uint32(v) }
}

// Per-lane step drivers, iterating set bits in ascending lane order exactly
// like the perLane* helpers in exec.go.

func stepU(wr laneWrU, f laneU) planStep {
	return func(blk *blockCtx, w *warp, m uint32) (bool, TrapKind, uint32) {
		for ; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			wr(w, lane, f(blk, w, lane))
		}
		return false, 0, 0
	}
}

func stepF(wr laneWrU, f laneF) planStep {
	return func(blk *blockCtx, w *warp, m uint32) (bool, TrapKind, uint32) {
		for ; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			wr(w, lane, math.Float32bits(f(blk, w, lane)))
		}
		return false, 0, 0
	}
}

func stepD(wr laneWr2, f laneD) planStep {
	return func(blk *blockCtx, w *warp, m uint32) (bool, TrapKind, uint32) {
		for ; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			wr(w, lane, math.Float64bits(f(blk, w, lane)))
		}
		return false, 0, 0
	}
}

func stepP(wr laneWrP, f laneP) planStep {
	return func(blk *blockCtx, w *warp, m uint32) (bool, TrapKind, uint32) {
		for ; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			wr(w, lane, f(blk, w, lane))
		}
		return false, 0, 0
	}
}

// boolQualify wraps a compare result with the optional .AND/.OR/.XOR
// combine against a third predicate source, resolved at compile time.
func boolQualify(in *sass.Instr, base laneP) laneP {
	if len(in.Src) <= 2 {
		return base
	}
	op := in.Mods.Bool
	p2 := srcP(in, 2)
	return func(blk *blockCtx, w *warp, lane int) bool {
		return op.Apply(base(blk, w, lane), p2(blk, w, lane))
	}
}

// compileStep builds the fused step for one instruction: the fast tier
// (xlate_fast.go) for the dominant ALU shapes, the accessor tier for
// everything else it understands, and the interpreter thunk whenever any
// operand compiler reports a shape the specializer does not cover.
func compileStep(in *sass.Instr, pc int) planStep {
	if step := fastStep(in); step != nil {
		return step
	}
	step := specializeStep(in)
	if step == nil {
		return thunkStep(in, pc)
	}
	return step
}

func specializeStep(in *sass.Instr) planStep {
	mods := &in.Mods
	switch in.Op.Info().Sem {
	// --- FP32 arithmetic ---
	case sass.SemFAdd:
		wr, a, b := dstWr(in), srcF(in, 0), srcF(in, 1)
		if wr == nil || a == nil || b == nil {
			return nil
		}
		return stepF(wr, func(blk *blockCtx, w *warp, l int) float32 { return a(blk, w, l) + b(blk, w, l) })
	case sass.SemFMul:
		wr, a, b := dstWr(in), srcF(in, 0), srcF(in, 1)
		if wr == nil || a == nil || b == nil {
			return nil
		}
		return stepF(wr, func(blk *blockCtx, w *warp, l int) float32 { return a(blk, w, l) * b(blk, w, l) })
	case sass.SemFFma:
		wr, a, b, c := dstWr(in), srcF(in, 0), srcF(in, 1), srcF(in, 2)
		if wr == nil || a == nil || b == nil || c == nil {
			return nil
		}
		return stepF(wr, func(blk *blockCtx, w *warp, l int) float32 {
			return float32(float64(a(blk, w, l))*float64(b(blk, w, l)) + float64(c(blk, w, l)))
		})
	case sass.SemFMnMx:
		wr, a, b, p := dstWr(in), srcF(in, 0), srcF(in, 1), srcP(in, 2)
		if wr == nil || a == nil || b == nil {
			return nil
		}
		return stepF(wr, func(blk *blockCtx, w *warp, l int) float32 {
			x, y := a(blk, w, l), b(blk, w, l)
			if p(blk, w, l) {
				return fmin(x, y)
			}
			return fmax(x, y)
		})
	case sass.SemFSel:
		wr, a, b, p := dstWr(in), srcFBits(in, 0), srcFBits(in, 1), srcP(in, 2)
		if wr == nil || a == nil || b == nil {
			return nil
		}
		return stepU(wr, func(blk *blockCtx, w *warp, l int) uint32 {
			if p(blk, w, l) {
				return a(blk, w, l)
			}
			return b(blk, w, l)
		})
	case sass.SemFSet:
		wr, a, b := dstWr(in), srcF(in, 0), srcF(in, 1)
		if wr == nil || a == nil || b == nil {
			return nil
		}
		cmp := mods.Cmp
		r := boolQualify(in, func(blk *blockCtx, w *warp, l int) bool {
			return fcompare(cmp, a(blk, w, l), b(blk, w, l))
		})
		return stepU(wr, func(blk *blockCtx, w *warp, l int) uint32 {
			if r(blk, w, l) {
				return 0xffffffff
			}
			return 0
		})
	case sass.SemFSetP:
		wr, a, b := dstWrP(in), srcF(in, 0), srcF(in, 1)
		if wr == nil || a == nil || b == nil {
			return nil
		}
		cmp := mods.Cmp
		return stepP(wr, boolQualify(in, func(blk *blockCtx, w *warp, l int) bool {
			return fcompare(cmp, a(blk, w, l), b(blk, w, l))
		}))
	case sass.SemFChk:
		wr, a, b := dstWrP(in), srcF(in, 0), srcF(in, 1)
		if wr == nil || a == nil || b == nil {
			return nil
		}
		return stepP(wr, func(blk *blockCtx, w *warp, l int) bool {
			x, y := a(blk, w, l), b(blk, w, l)
			return y == 0 || isNaN32(x) || isNaN32(y) || isInf32(x) || isInf32(y)
		})
	case sass.SemMufu:
		wr, a := dstWr(in), srcF(in, 0)
		if wr == nil || a == nil {
			return nil
		}
		fn := mods.Mufu
		return stepF(wr, func(blk *blockCtx, w *warp, l int) float32 { return mufu(fn, a(blk, w, l)) })
	case sass.SemFrnd:
		wr, a := dstWr(in), srcF(in, 0)
		if wr == nil || a == nil {
			return nil
		}
		return stepF(wr, func(blk *blockCtx, w *warp, l int) float32 {
			return float32(math.RoundToEven(float64(a(blk, w, l))))
		})

	// --- FP64 arithmetic ---
	case sass.SemDAdd:
		wr, a, b := dstWrPair(in), srcD(in, 0), srcD(in, 1)
		if wr == nil || a == nil || b == nil {
			return nil
		}
		return stepD(wr, func(blk *blockCtx, w *warp, l int) float64 { return a(blk, w, l) + b(blk, w, l) })
	case sass.SemDMul:
		wr, a, b := dstWrPair(in), srcD(in, 0), srcD(in, 1)
		if wr == nil || a == nil || b == nil {
			return nil
		}
		return stepD(wr, func(blk *blockCtx, w *warp, l int) float64 { return a(blk, w, l) * b(blk, w, l) })
	case sass.SemDFma:
		wr, a, b, c := dstWrPair(in), srcD(in, 0), srcD(in, 1), srcD(in, 2)
		if wr == nil || a == nil || b == nil || c == nil {
			return nil
		}
		return stepD(wr, func(blk *blockCtx, w *warp, l int) float64 {
			return math.FMA(a(blk, w, l), b(blk, w, l), c(blk, w, l))
		})
	case sass.SemDMnMx:
		wr, a, b, p := dstWrPair(in), srcD(in, 0), srcD(in, 1), srcP(in, 2)
		if wr == nil || a == nil || b == nil {
			return nil
		}
		return stepD(wr, func(blk *blockCtx, w *warp, l int) float64 {
			x, y := a(blk, w, l), b(blk, w, l)
			if p(blk, w, l) {
				return math.Min(x, y)
			}
			return math.Max(x, y)
		})
	case sass.SemDSetP:
		wr, a, b := dstWrP(in), srcD(in, 0), srcD(in, 1)
		if wr == nil || a == nil || b == nil {
			return nil
		}
		cmp := mods.Cmp
		return stepP(wr, boolQualify(in, func(blk *blockCtx, w *warp, l int) bool {
			return dcompare(cmp, a(blk, w, l), b(blk, w, l))
		}))

	// --- Packed half arithmetic ---
	case sass.SemHAdd2:
		wr, a, b := dstWr(in), srcU(in, 0), srcU(in, 1)
		if wr == nil || a == nil || b == nil {
			return nil
		}
		return stepU(wr, func(blk *blockCtx, w *warp, l int) uint32 {
			return hmap2(a(blk, w, l), b(blk, w, l), func(x, y float32) float32 { return x + y })
		})
	case sass.SemHMul2:
		wr, a, b := dstWr(in), srcU(in, 0), srcU(in, 1)
		if wr == nil || a == nil || b == nil {
			return nil
		}
		return stepU(wr, func(blk *blockCtx, w *warp, l int) uint32 {
			return hmap2(a(blk, w, l), b(blk, w, l), func(x, y float32) float32 { return x * y })
		})
	case sass.SemHFma2:
		wr, a, b, c := dstWr(in), srcU(in, 0), srcU(in, 1), srcU(in, 2)
		if wr == nil || a == nil || b == nil || c == nil {
			return nil
		}
		return stepU(wr, func(blk *blockCtx, w *warp, l int) uint32 {
			return hmap3(a(blk, w, l), b(blk, w, l), c(blk, w, l),
				func(x, y, z float32) float32 { return x*y + z })
		})

	// --- Integer arithmetic ---
	case sass.SemIAdd:
		wr, a, b := dstWr(in), srcI(in, 0), srcI(in, 1)
		if wr == nil || a == nil || b == nil {
			return nil
		}
		return stepU(wr, func(blk *blockCtx, w *warp, l int) uint32 { return a(blk, w, l) + b(blk, w, l) })
	case sass.SemIAdd3:
		wr, a, b, c := dstWr(in), srcI(in, 0), srcI(in, 1), srcI(in, 2)
		if wr == nil || a == nil || b == nil || c == nil {
			return nil
		}
		return stepU(wr, func(blk *blockCtx, w *warp, l int) uint32 {
			return a(blk, w, l) + b(blk, w, l) + c(blk, w, l)
		})
	case sass.SemIMad:
		wr, a, b, c := dstWr(in), srcI(in, 0), srcI(in, 1), srcI(in, 2)
		if wr == nil || a == nil || b == nil || c == nil {
			return nil
		}
		if mods.High {
			signed := !mods.Unsigned
			return stepU(wr, func(blk *blockCtx, w *warp, l int) uint32 {
				return mulHigh(a(blk, w, l), b(blk, w, l), signed) + c(blk, w, l)
			})
		}
		return stepU(wr, func(blk *blockCtx, w *warp, l int) uint32 {
			return a(blk, w, l)*b(blk, w, l) + c(blk, w, l)
		})
	case sass.SemIMul:
		wr, a, b := dstWr(in), srcI(in, 0), srcI(in, 1)
		if wr == nil || a == nil || b == nil {
			return nil
		}
		if mods.High {
			signed := !mods.Unsigned
			return stepU(wr, func(blk *blockCtx, w *warp, l int) uint32 {
				return mulHigh(a(blk, w, l), b(blk, w, l), signed)
			})
		}
		return stepU(wr, func(blk *blockCtx, w *warp, l int) uint32 { return a(blk, w, l) * b(blk, w, l) })
	case sass.SemIMnMx:
		wr, a, b, p := dstWr(in), srcU(in, 0), srcU(in, 1), srcP(in, 2)
		if wr == nil || a == nil || b == nil {
			return nil
		}
		if mods.Unsigned {
			return stepU(wr, func(blk *blockCtx, w *warp, l int) uint32 {
				x, y := a(blk, w, l), b(blk, w, l)
				if (x < y) == p(blk, w, l) {
					return x
				}
				return y
			})
		}
		return stepU(wr, func(blk *blockCtx, w *warp, l int) uint32 {
			x, y := a(blk, w, l), b(blk, w, l)
			if (int32(x) < int32(y)) == p(blk, w, l) {
				return x
			}
			return y
		})
	case sass.SemIAbs:
		wr, a := dstWr(in), srcU(in, 0)
		if wr == nil || a == nil {
			return nil
		}
		return stepU(wr, func(blk *blockCtx, w *warp, l int) uint32 {
			v := int32(a(blk, w, l))
			if v < 0 {
				v = -v
			}
			return uint32(v)
		})
	case sass.SemISetP:
		wr, a, b := dstWrP(in), srcU(in, 0), srcU(in, 1)
		if wr == nil || a == nil || b == nil {
			return nil
		}
		cmp, unsigned := mods.Cmp, mods.Unsigned
		return stepP(wr, boolQualify(in, func(blk *blockCtx, w *warp, l int) bool {
			return icompare(cmp, a(blk, w, l), b(blk, w, l), unsigned)
		}))
	case sass.SemISCAdd, sass.SemLea:
		wr, a, b, c := dstWr(in), srcU(in, 0), srcU(in, 1), srcU(in, 2)
		if wr == nil || a == nil || b == nil || c == nil {
			return nil
		}
		return stepU(wr, func(blk *blockCtx, w *warp, l int) uint32 {
			return a(blk, w, l)<<(c(blk, w, l)&31) + b(blk, w, l)
		})
	case sass.SemLop:
		wr, a, b := dstWr(in), srcU(in, 0), srcU(in, 1)
		if wr == nil || a == nil || b == nil {
			return nil
		}
		switch mods.Logic {
		case sass.LogicOr:
			return stepU(wr, func(blk *blockCtx, w *warp, l int) uint32 { return a(blk, w, l) | b(blk, w, l) })
		case sass.LogicXor:
			return stepU(wr, func(blk *blockCtx, w *warp, l int) uint32 { return a(blk, w, l) ^ b(blk, w, l) })
		case sass.LogicPassB:
			return stepU(wr, func(blk *blockCtx, w *warp, l int) uint32 { return b(blk, w, l) })
		default: // LogicAnd and the unmodified default
			return stepU(wr, func(blk *blockCtx, w *warp, l int) uint32 { return a(blk, w, l) & b(blk, w, l) })
		}
	case sass.SemLop3:
		wr, a, b, c, d := dstWr(in), srcU(in, 0), srcU(in, 1), srcU(in, 2), srcU(in, 3)
		if wr == nil || a == nil || b == nil || c == nil || d == nil {
			return nil
		}
		return stepU(wr, func(blk *blockCtx, w *warp, l int) uint32 {
			return lop3(a(blk, w, l), b(blk, w, l), c(blk, w, l), uint8(d(blk, w, l)))
		})
	case sass.SemShl:
		wr, a, b := dstWr(in), srcU(in, 0), srcU(in, 1)
		if wr == nil || a == nil || b == nil {
			return nil
		}
		return stepU(wr, func(blk *blockCtx, w *warp, l int) uint32 {
			s := b(blk, w, l)
			if s >= 32 {
				return 0
			}
			return a(blk, w, l) << s
		})
	case sass.SemShr:
		wr, a, b := dstWr(in), srcU(in, 0), srcU(in, 1)
		if wr == nil || a == nil || b == nil {
			return nil
		}
		if mods.Unsigned {
			return stepU(wr, func(blk *blockCtx, w *warp, l int) uint32 {
				s := b(blk, w, l)
				if s >= 32 {
					return 0
				}
				return a(blk, w, l) >> s
			})
		}
		return stepU(wr, func(blk *blockCtx, w *warp, l int) uint32 {
			s := b(blk, w, l)
			if s >= 32 {
				s = 31
			}
			return uint32(int32(a(blk, w, l)) >> s)
		})
	case sass.SemShf:
		wr, a, b, c := dstWr(in), srcU(in, 0), srcU(in, 1), srcU(in, 2)
		if wr == nil || a == nil || b == nil || c == nil {
			return nil
		}
		right := mods.Right
		return stepU(wr, func(blk *blockCtx, w *warp, l int) uint32 {
			lo, sh, hi := uint64(a(blk, w, l)), b(blk, w, l)&63, uint64(c(blk, w, l))
			full := hi<<32 | lo
			if right {
				return uint32(full >> sh)
			}
			return uint32((full << sh) >> 32)
		})
	case sass.SemPopc:
		wr, a := dstWr(in), srcU(in, 0)
		if wr == nil || a == nil {
			return nil
		}
		return stepU(wr, func(blk *blockCtx, w *warp, l int) uint32 {
			return uint32(bits.OnesCount32(a(blk, w, l)))
		})
	case sass.SemFlo:
		wr, a := dstWr(in), srcU(in, 0)
		if wr == nil || a == nil {
			return nil
		}
		return stepU(wr, func(blk *blockCtx, w *warp, l int) uint32 {
			v := a(blk, w, l)
			if v == 0 {
				return 0xffffffff
			}
			return uint32(31 - bits.LeadingZeros32(v))
		})
	case sass.SemBrev:
		wr, a := dstWr(in), srcU(in, 0)
		if wr == nil || a == nil {
			return nil
		}
		return stepU(wr, func(blk *blockCtx, w *warp, l int) uint32 { return bits.Reverse32(a(blk, w, l)) })
	case sass.SemBmsk:
		wr, a, b := dstWr(in), srcU(in, 0), srcU(in, 1)
		if wr == nil || a == nil || b == nil {
			return nil
		}
		return stepU(wr, func(blk *blockCtx, w *warp, l int) uint32 {
			pos, width := a(blk, w, l)&31, b(blk, w, l)&63
			if width >= 32 {
				return 0xffffffff << pos
			}
			return (uint32(1)<<width - 1) << pos
		})
	case sass.SemSgxt:
		wr, a, b := dstWr(in), srcU(in, 0), srcU(in, 1)
		if wr == nil || a == nil || b == nil {
			return nil
		}
		return stepU(wr, func(blk *blockCtx, w *warp, l int) uint32 {
			v, nbits := a(blk, w, l), b(blk, w, l)&31
			if nbits == 0 {
				return 0
			}
			sh := 32 - nbits
			return uint32(int32(v<<sh) >> sh)
		})
	case sass.SemVAbsDiff:
		wr, a, b := dstWr(in), srcU(in, 0), srcU(in, 1)
		if wr == nil || a == nil || b == nil {
			return nil
		}
		return stepU(wr, func(blk *blockCtx, w *warp, l int) uint32 {
			x, y := int64(int32(a(blk, w, l))), int64(int32(b(blk, w, l)))
			d := x - y
			if d < 0 {
				d = -d
			}
			return uint32(d)
		})
	case sass.SemSel:
		wr, a, b, p := dstWr(in), srcU(in, 0), srcU(in, 1), srcP(in, 2)
		if wr == nil || a == nil || b == nil {
			return nil
		}
		return stepU(wr, func(blk *blockCtx, w *warp, l int) uint32 {
			if p(blk, w, l) {
				return a(blk, w, l)
			}
			return b(blk, w, l)
		})
	case sass.SemPrmt:
		wr, a, b, c := dstWr(in), srcU(in, 0), srcU(in, 1), srcU(in, 2)
		if wr == nil || a == nil || b == nil || c == nil {
			return nil
		}
		// PRMT Rd, Ra, Sb, Rc: Sb is the byte selector, Rc the high word.
		return stepU(wr, func(blk *blockCtx, w *warp, l int) uint32 {
			return prmt(a(blk, w, l), c(blk, w, l), b(blk, w, l))
		})

	// --- Movement and special registers ---
	case sass.SemMov:
		wr, a := dstWr(in), srcI(in, 0)
		if wr == nil || a == nil {
			return nil
		}
		return stepU(wr, a)
	case sass.SemS2R:
		wr := dstWr(in)
		if wr == nil || len(in.Src) == 0 {
			return nil
		}
		sr := in.Src[0].SReg
		return stepU(wr, func(blk *blockCtx, w *warp, l int) uint32 { return specialVal(blk, w, l, sr) })
	case sass.SemCS2R:
		wr := dstWrPair(in)
		if wr == nil {
			return nil
		}
		return func(blk *blockCtx, w *warp, m uint32) (bool, TrapKind, uint32) {
			for ; m != 0; m &= m - 1 {
				wr(w, bits.TrailingZeros32(m), blk.dev.smClocks[blk.smID])
			}
			return false, 0, 0
		}
	case sass.SemVote:
		wr, p := dstWr(in), srcP(in, 0)
		if wr == nil {
			return nil
		}
		return func(blk *blockCtx, w *warp, execMask uint32) (bool, TrapKind, uint32) {
			var ballot uint32
			for m := execMask; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros32(m)
				if p(blk, w, lane) {
					ballot |= 1 << uint(lane)
				}
			}
			for m := execMask; m != 0; m &= m - 1 {
				wr(w, bits.TrailingZeros32(m), ballot)
			}
			return false, 0, 0
		}
	case sass.SemP2R:
		wr := dstWr(in)
		if wr == nil {
			return nil
		}
		mask := srcU(in, 0) // may be nil: P2R with no source reads all predicates
		return func(blk *blockCtx, w *warp, m uint32) (bool, TrapKind, uint32) {
			for ; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros32(m)
				var v uint32
				for p := 0; p < int(sass.NumPreds)-1; p++ {
					if w.preds[lane][p] {
						v |= 1 << uint(p)
					}
				}
				if mask != nil {
					v &= mask(blk, w, lane)
				}
				wr(w, lane, v)
			}
			return false, 0, 0
		}
	case sass.SemR2P:
		wr, a := dstWrP(in), srcU(in, 0)
		if wr == nil || a == nil {
			return nil
		}
		mask := srcU(in, 1)
		if mask == nil {
			mask = func(*blockCtx, *warp, int) uint32 { return 1 }
		}
		return stepP(wr, func(blk *blockCtx, w *warp, l int) bool {
			return a(blk, w, l)&mask(blk, w, l) != 0
		})
	case sass.SemPSetP:
		wr, a, b := dstWrP(in), srcP(in, 0), srcP(in, 1)
		if wr == nil {
			return nil
		}
		op := mods.Bool
		return stepP(wr, func(blk *blockCtx, w *warp, l int) bool {
			return op.Apply(a(blk, w, l), b(blk, w, l))
		})
	case sass.SemPLop3:
		wr, a, b, c, d := dstWrP(in), srcP(in, 0), srcP(in, 1), srcP(in, 2), srcU(in, 3)
		if wr == nil || d == nil {
			return nil
		}
		return stepP(wr, func(blk *blockCtx, w *warp, l int) bool {
			idx := 0
			if a(blk, w, l) {
				idx |= 4
			}
			if b(blk, w, l) {
				idx |= 2
			}
			if c(blk, w, l) {
				idx |= 1
			}
			return uint8(d(blk, w, l))&(1<<uint(idx)) != 0
		})

	// --- Conversion ---
	case sass.SemF2I:
		wr, a := dstWr(in), srcF(in, 0)
		if wr == nil || a == nil {
			return nil
		}
		unsigned := mods.Unsigned
		return stepU(wr, func(blk *blockCtx, w *warp, l int) uint32 { return f2i(a(blk, w, l), unsigned) })
	case sass.SemI2F:
		wr, a := dstWr(in), srcU(in, 0)
		if wr == nil || a == nil {
			return nil
		}
		if mods.Unsigned {
			return stepU(wr, func(blk *blockCtx, w *warp, l int) uint32 {
				return math.Float32bits(float32(a(blk, w, l)))
			})
		}
		return stepU(wr, func(blk *blockCtx, w *warp, l int) uint32 {
			return math.Float32bits(float32(int32(a(blk, w, l))))
		})
	case sass.SemF2F:
		if mods.Width == 8 { // widen f32 -> f64
			wr, a := dstWrPair(in), srcF(in, 0)
			if wr == nil || a == nil {
				return nil
			}
			return stepD(wr, func(blk *blockCtx, w *warp, l int) float64 { return float64(a(blk, w, l)) })
		}
		// narrow f64 -> f32
		wr, a := dstWr(in), srcD(in, 0)
		if wr == nil || a == nil {
			return nil
		}
		return stepF(wr, func(blk *blockCtx, w *warp, l int) float32 { return float32(a(blk, w, l)) })
	case sass.SemI2I:
		wr, a := dstWr(in), srcU(in, 0)
		if wr == nil || a == nil {
			return nil
		}
		switch {
		case mods.Width == 1 && mods.Signed:
			return stepU(wr, func(blk *blockCtx, w *warp, l int) uint32 {
				return uint32(int32(int8(a(blk, w, l))))
			})
		case mods.Width == 1:
			return stepU(wr, func(blk *blockCtx, w *warp, l int) uint32 { return a(blk, w, l) & 0xff })
		case mods.Width == 2 && mods.Signed:
			return stepU(wr, func(blk *blockCtx, w *warp, l int) uint32 {
				return uint32(int32(int16(a(blk, w, l))))
			})
		case mods.Width == 2:
			return stepU(wr, func(blk *blockCtx, w *warp, l int) uint32 { return a(blk, w, l) & 0xffff })
		default:
			return stepU(wr, a)
		}

	// --- Memory ---
	case sass.SemLd:
		return compileLoad(in, in.Op.Info().Space)
	case sass.SemLdc:
		return compileLoadConst(in)
	case sass.SemSt:
		return compileStore(in, in.Op.Info().Space)
	case sass.SemAtom:
		return compileAtomic(in, in.Op.Info().Space, true)
	case sass.SemRed:
		return compileAtomic(in, in.Op.Info().Space, false)

	// --- Control ---
	case sass.SemBar:
		return func(*blockCtx, *warp, uint32) (bool, TrapKind, uint32) { return true, 0, 0 }
	case sass.SemBra, sass.SemJmp:
		if len(in.Src) == 0 {
			return nil
		}
		t := in.Src[0].Target
		return func(_ *blockCtx, w *warp, m uint32) (bool, TrapKind, uint32) {
			for ; m != 0; m &= m - 1 {
				w.pc[bits.TrailingZeros32(m)] = t
			}
			return false, 0, 0
		}
	case sass.SemExit, sass.SemKill:
		return func(_ *blockCtx, w *warp, m uint32) (bool, TrapKind, uint32) {
			w.exitedMask |= m
			return false, 0, 0
		}
	case sass.SemBpt:
		return func(_ *blockCtx, _ *warp, m uint32) (bool, TrapKind, uint32) {
			if m != 0 {
				return false, TrapBreakpoint, 0
			}
			return false, 0, 0
		}
	case sass.SemNop, sass.SemNopLike:
		return func(*blockCtx, *warp, uint32) (bool, TrapKind, uint32) { return false, 0, 0 }

	default:
		// Shfl, Match, Brx, Call, Ret, SemNone, and anything new: interpreter
		// thunk. Cross-lane semantics are rare enough that the dispatch
		// saving does not justify duplicating them.
		return nil
	}
}
