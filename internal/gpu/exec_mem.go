package gpu

import (
	"encoding/binary"

	"repro/internal/sass"
)

// memAddr computes the effective address of the instruction's memory
// operand for one lane. By convention the memory operand is Src[0] for
// loads and atomics and Dst-position-free for stores, where it is also
// Src[0] with the value in Src[1].
func (e *evalCtx) memAddr(lane int) (uint32, bool) {
	for i := range e.in.Src {
		o := &e.in.Src[i]
		if o.Kind == sass.OpdMem {
			base := uint32(0)
			if o.Reg != sass.RZ {
				base = e.w.regs[lane][o.Reg]
			}
			return base + uint32(o.Off), true
		}
	}
	return 0, false
}

// load implements LD/LDG/LDL/LDS: read width bytes into one, two, or four
// destination registers.
func (e *evalCtx) load(execMask uint32, space sass.MemSpace) (bool, TrapKind, uint32) {
	width := e.in.Mods.MemWidth()
	for lane := 0; lane < WarpSize; lane++ {
		if execMask&(1<<uint(lane)) == 0 {
			continue
		}
		addr, ok := e.memAddr(lane)
		if !ok {
			return false, TrapInvalidInstruction, 0
		}
		switch width {
		case 1, 2, 4:
			v, kind := e.spaceLoad(lane, space, addr, width)
			if kind != 0 {
				return false, kind, addr
			}
			u := uint32(v)
			if e.in.Mods.Signed {
				switch width {
				case 1:
					u = uint32(int32(int8(u)))
				case 2:
					u = uint32(int32(int16(u)))
				}
			}
			e.wr(lane, u)
		case 8:
			v, kind := e.spaceLoad(lane, space, addr, 8)
			if kind != 0 {
				return false, kind, addr
			}
			e.wrPair(lane, v)
		case 16:
			d := &e.in.Dst[0]
			if d.Kind != sass.OpdReg {
				return false, TrapInvalidInstruction, 0
			}
			for i := uint32(0); i < 4; i++ {
				v, kind := e.spaceLoad(lane, space, addr+4*i, 4)
				if kind != 0 {
					return false, kind, addr + 4*i
				}
				r := d.Reg + sass.RegID(i)
				if r != sass.RZ {
					e.w.regs[lane][r] = uint32(v)
				}
			}
		default:
			return false, TrapInvalidInstruction, 0
		}
	}
	return false, 0, 0
}

// loadConst implements LDC: a dynamically indexed constant-bank read. The
// memory operand's base register indexes into the launch constant bank.
func (e *evalCtx) loadConst(execMask uint32) (bool, TrapKind, uint32) {
	for lane := 0; lane < WarpSize; lane++ {
		if execMask&(1<<uint(lane)) == 0 {
			continue
		}
		addr, ok := e.memAddr(lane)
		if !ok {
			// LDC with a plain constant operand degenerates to MOV.
			e.wr(lane, e.usrc(lane, 0))
			continue
		}
		if addr%4 != 0 {
			return false, TrapMisaligned, addr
		}
		e.wr(lane, e.blk.constRead(int32(addr)))
	}
	return false, 0, 0
}

// store implements ST/STG/STL/STS. The stored value comes from the operand
// after the memory operand.
func (e *evalCtx) store(execMask uint32, space sass.MemSpace) (bool, TrapKind, uint32) {
	width := e.in.Mods.MemWidth()
	vi := e.valueOperandIndex()
	if vi < 0 {
		return false, TrapInvalidInstruction, 0
	}
	for lane := 0; lane < WarpSize; lane++ {
		if execMask&(1<<uint(lane)) == 0 {
			continue
		}
		addr, ok := e.memAddr(lane)
		if !ok {
			return false, TrapInvalidInstruction, 0
		}
		switch width {
		case 1, 2, 4:
			if kind := e.spaceStore(lane, space, addr, width, uint64(e.usrc(lane, vi))); kind != 0 {
				return false, kind, addr
			}
		case 8:
			v := e.srcPair(lane, vi)
			if kind := e.spaceStore(lane, space, addr, 8, v); kind != 0 {
				return false, kind, addr
			}
		case 16:
			o := &e.in.Src[vi]
			if o.Kind != sass.OpdReg {
				return false, TrapInvalidInstruction, 0
			}
			for i := uint32(0); i < 4; i++ {
				r := o.Reg + sass.RegID(i)
				var v uint32
				if r != sass.RZ {
					v = e.w.regs[lane][r]
				}
				if kind := e.spaceStore(lane, space, addr+4*i, 4, uint64(v)); kind != 0 {
					return false, kind, addr + 4*i
				}
			}
		default:
			return false, TrapInvalidInstruction, 0
		}
	}
	return false, 0, 0
}

// valueOperandIndex finds the first non-memory source operand (the stored
// value for ST, the addend for ATOM/RED).
func (e *evalCtx) valueOperandIndex() int {
	for i := range e.in.Src {
		if e.in.Src[i].Kind != sass.OpdMem {
			return i
		}
	}
	return -1
}

func (e *evalCtx) srcPair(lane, idx int) uint64 {
	o := &e.in.Src[idx]
	if o.Kind == sass.OpdReg {
		return e.readPair(lane, o.Reg)
	}
	return uint64(e.usrc(lane, idx))
}

// atomic implements ATOM/ATOMG/ATOMS (withResult) and RED (without).
// Lanes execute in lane order, which defines a deterministic outcome for
// intra-warp races. Under the parallel block scheduler, global-memory
// atomics additionally take the device's atomics lock for the whole warp
// instruction so the read-modify-write is atomic with respect to other
// blocks — cross-block ordering is then scheduler-dependent, exactly as on
// real hardware.
func (e *evalCtx) atomic(execMask uint32, space sass.MemSpace, withResult bool) (bool, TrapKind, uint32) {
	if e.blk.parallel && (space == sass.SpaceGlobal || space == sass.SpaceGeneric) {
		e.blk.dev.atomMu.Lock()
		defer e.blk.dev.atomMu.Unlock()
	}
	op := e.in.Mods.Atom
	if op == sass.AtomNone {
		op = sass.AtomAdd
	}
	vi := e.valueOperandIndex()
	if vi < 0 {
		return false, TrapInvalidInstruction, 0
	}
	for lane := 0; lane < WarpSize; lane++ {
		if execMask&(1<<uint(lane)) == 0 {
			continue
		}
		addr, ok := e.memAddr(lane)
		if !ok {
			return false, TrapInvalidInstruction, 0
		}
		old, kind := e.spaceLoad(lane, space, addr, 4)
		if kind != 0 {
			return false, kind, addr
		}
		cur := uint32(old)
		val := e.usrc(lane, vi)
		var newVal uint32
		switch op {
		case sass.AtomAdd:
			if e.in.Mods.Float {
				newVal = addF32Bits(cur, val)
			} else {
				newVal = cur + val
			}
		case sass.AtomMin:
			if int32(val) < int32(cur) {
				newVal = val
			} else {
				newVal = cur
			}
		case sass.AtomMax:
			if int32(val) > int32(cur) {
				newVal = val
			} else {
				newVal = cur
			}
		case sass.AtomAnd:
			newVal = cur & val
		case sass.AtomOr:
			newVal = cur | val
		case sass.AtomXor:
			newVal = cur ^ val
		case sass.AtomExch:
			newVal = val
		case sass.AtomCAS:
			// Operands: [addr], compare, swap.
			if vi+1 >= len(e.in.Src) {
				return false, TrapInvalidInstruction, 0
			}
			swap := e.usrc(lane, vi+1)
			if cur == val {
				newVal = swap
			} else {
				newVal = cur
			}
		default:
			return false, TrapInvalidInstruction, 0
		}
		if kind := e.spaceStore(lane, space, addr, 4, uint64(newVal)); kind != 0 {
			return false, kind, addr
		}
		if withResult {
			e.wr(lane, cur)
		}
	}
	return false, 0, 0
}

func addF32Bits(a, b uint32) uint32 {
	return f32bitsOf(f32Of(a) + f32Of(b))
}

// spaceLoad dispatches a load to the operand's address space.
func (e *evalCtx) spaceLoad(lane int, space sass.MemSpace, addr uint32, width uint8) (uint64, TrapKind) {
	return spaceLoadAt(e.blk, e.w, lane, space, addr, width)
}

// spaceStore dispatches a store to the operand's address space.
func (e *evalCtx) spaceStore(lane int, space sass.MemSpace, addr uint32, width uint8, v uint64) TrapKind {
	return spaceStoreAt(e.blk, e.w, lane, space, addr, width, v)
}

func (e *evalCtx) localMem(lane int) []byte { return laneLocal(e.w, lane) }

// spaceLoadAt dispatches a load to its address space. Shared between the
// interpreter and the translated plans so memory semantics cannot drift.
func spaceLoadAt(blk *blockCtx, w *warp, lane int, space sass.MemSpace, addr uint32, width uint8) (uint64, TrapKind) {
	switch space {
	case sass.SpaceGlobal, sass.SpaceGeneric:
		return blk.dev.Mem.Load(addr, width)
	case sass.SpaceShared:
		return sliceLoad(blk.shared, addr, width, TrapSharedBounds)
	case sass.SpaceLocal:
		return sliceLoad(laneLocal(w, lane), addr, width, TrapLocalBounds)
	default:
		return 0, TrapInvalidInstruction
	}
}

// spaceStoreAt dispatches a store to its address space.
func spaceStoreAt(blk *blockCtx, w *warp, lane int, space sass.MemSpace, addr uint32, width uint8, v uint64) TrapKind {
	switch space {
	case sass.SpaceGlobal, sass.SpaceGeneric:
		return blk.dev.Mem.Store(addr, width, v)
	case sass.SpaceShared:
		return sliceStore(blk.shared, addr, width, v, TrapSharedBounds)
	case sass.SpaceLocal:
		return sliceStore(laneLocal(w, lane), addr, width, v, TrapLocalBounds)
	default:
		return TrapInvalidInstruction
	}
}

// laneLocal returns a lane's local-memory window, materializing it lazily.
func laneLocal(w *warp, lane int) []byte {
	if w.local[lane] == nil {
		w.local[lane] = make([]byte, localMemBytes)
	}
	return w.local[lane]
}

func sliceLoad(buf []byte, addr uint32, width uint8, oob TrapKind) (uint64, TrapKind) {
	if addr%uint32(width) != 0 {
		return 0, TrapMisaligned
	}
	if int(addr)+int(width) > len(buf) {
		return 0, oob
	}
	switch width {
	case 1:
		return uint64(buf[addr]), 0
	case 2:
		return uint64(binary.LittleEndian.Uint16(buf[addr:])), 0
	case 4:
		return uint64(binary.LittleEndian.Uint32(buf[addr:])), 0
	case 8:
		return binary.LittleEndian.Uint64(buf[addr:]), 0
	default:
		return 0, TrapInvalidInstruction
	}
}

func sliceStore(buf []byte, addr uint32, width uint8, v uint64, oob TrapKind) TrapKind {
	if addr%uint32(width) != 0 {
		return TrapMisaligned
	}
	if int(addr)+int(width) > len(buf) {
		return oob
	}
	switch width {
	case 1:
		buf[addr] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(buf[addr:], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(buf[addr:], uint32(v))
	case 8:
		binary.LittleEndian.PutUint64(buf[addr:], v)
	default:
		return TrapInvalidInstruction
	}
	return 0
}
