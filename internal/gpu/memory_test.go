package gpu

import (
	"testing"
	"testing/quick"
)

func TestMemoryAllocFree(t *testing.T) {
	m := NewMemory()
	a, err := m.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if a < allocBase || a%allocAlign != 0 {
		t.Fatalf("allocation at 0x%x not aligned/based", a)
	}
	b, err := m.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if b <= a {
		t.Fatalf("bump allocator went backwards: 0x%x after 0x%x", b, a)
	}
	if m.AllocCount() != 2 {
		t.Fatalf("alloc count = %d", m.AllocCount())
	}
	if err := m.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(a); err == nil {
		t.Fatal("double free succeeded")
	}
	if _, kind := m.Load(a, 4); kind != TrapIllegalAddress {
		t.Fatalf("load after free: trap %v", kind)
	}
	if _, err := m.Alloc(0); err == nil {
		t.Fatal("zero-size alloc succeeded")
	}
	if _, err := m.Alloc(-4); err == nil {
		t.Fatal("negative alloc succeeded")
	}
}

func TestMemoryAccessChecks(t *testing.T) {
	m := NewMemory()
	a, err := m.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	// In-bounds round trip at every width.
	for _, w := range []uint8{1, 2, 4, 8} {
		if kind := m.Store(a, w, 0x1122334455667788); kind != 0 {
			t.Fatalf("store width %d: trap %v", w, kind)
		}
		v, kind := m.Load(a, w)
		if kind != 0 {
			t.Fatalf("load width %d: trap %v", w, kind)
		}
		want := uint64(0x1122334455667788) & (1<<(8*uint(w)) - 1)
		if w == 8 {
			want = 0x1122334455667788
		}
		if v != want {
			t.Fatalf("width %d round trip = 0x%x, want 0x%x", w, v, want)
		}
	}
	// Misalignment.
	if _, kind := m.Load(a+2, 4); kind != TrapMisaligned {
		t.Fatalf("misaligned load: trap %v", kind)
	}
	if kind := m.Store(a+1, 2, 0); kind != TrapMisaligned {
		t.Fatalf("misaligned store: trap %v", kind)
	}
	// Out of bounds: beyond the allocation's size (not its rounded size).
	if _, kind := m.Load(a+64, 4); kind != TrapIllegalAddress {
		t.Fatalf("oob load: trap %v", kind)
	}
	// A store that starts inside an oddly-sized allocation but runs past
	// its end is illegal even though the address is aligned.
	odd, err := m.Alloc(62)
	if err != nil {
		t.Fatal(err)
	}
	if kind := m.Store(odd+60, 4, 0); kind != TrapIllegalAddress {
		t.Fatalf("straddling store: trap %v", kind)
	}
	// Null-ish pointers fault.
	if _, kind := m.Load(4, 4); kind != TrapIllegalAddress {
		t.Fatalf("null page load: trap %v", kind)
	}
}

func TestMemcpyBounds(t *testing.T) {
	m := NewMemory()
	a, err := m.Alloc(32)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteBytes(a, make([]byte, 33)); err == nil {
		t.Fatal("oversized HtoD succeeded")
	}
	if _, err := m.ReadBytes(a, 33); err == nil {
		t.Fatal("oversized DtoH succeeded")
	}
	if _, err := m.ReadBytes(a+1000, 4); err == nil {
		t.Fatal("unallocated DtoH succeeded")
	}
	data := []byte{1, 2, 3, 4, 5}
	if err := m.WriteBytes(a+8, data); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadBytes(a+8, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("memcpy round trip byte %d = %d", i, got[i])
		}
	}
}

// TestMemoryQuickRoundTrip: store/load is the identity for arbitrary
// aligned offsets and values.
func TestMemoryQuickRoundTrip(t *testing.T) {
	m := NewMemory()
	base, err := m.Alloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	f := func(off uint16, v uint32) bool {
		addr := base + uint32(off%1024)*4
		if kind := m.Store(addr, 4, uint64(v)); kind != 0 {
			return false
		}
		got, kind := m.Load(addr, 4)
		return kind == 0 && uint32(got) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestMemoryQuickOOBAlwaysTraps: accesses beyond every allocation always
// report illegal address or misalignment, never silently succeed.
func TestMemoryQuickOOBAlwaysTraps(t *testing.T) {
	m := NewMemory()
	a, err := m.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	end := a + 128
	f := func(delta uint16) bool {
		addr := end + uint32(delta)
		_, kind := m.Load(addr, 4)
		return kind == TrapIllegalAddress || kind == TrapMisaligned
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestMemorySpans: Spans enumerates live allocations in order and tracks
// frees — the surface the memory fault model picks its target word from.
func TestMemorySpans(t *testing.T) {
	m := NewMemory()
	if len(m.Spans()) != 0 {
		t.Fatal("fresh memory reports spans")
	}
	a, _ := m.Alloc(100)
	b, _ := m.Alloc(64)
	spans := m.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].Base != a || spans[0].Size != 100 || spans[1].Base != b || spans[1].Size != 64 {
		t.Fatalf("spans = %+v", spans)
	}
	if err := m.Free(a); err != nil {
		t.Fatal(err)
	}
	spans = m.Spans()
	if len(spans) != 1 || spans[0].Base != b {
		t.Fatalf("spans after free = %+v", spans)
	}
}
