package gpu

import (
	"fmt"
	"reflect"
	"testing"
)

// instrRun is one instrumented-launch observation for the amortization
// differentials: everything expectSame checks, plus the per-SM clocks the
// trampoline accounting must not perturb and the number of callback
// dispatches that actually happened.
type instrRun struct {
	parRun
	clocks    []uint64
	dispatch  int
	activated bool
}

// runSaxpyInstrumented runs the saxpy kernel with an After callback on
// every instruction. The callback mimics a transient injector: it counts
// dynamic executions, corrupts one register at execution fireAt, then goes
// inert — and, when disarm is true, calls Disarm after corrupting. A
// non-positive fireAt never corrupts.
func runSaxpyInstrumented(t *testing.T, fireAt int, disarm, interpret bool, budget uint64) instrRun {
	t.Helper()
	d := newTestDevice(t)
	d.InterpretTrampolines = interpret
	d.DisableDisarm = !disarm
	k := mustKernel(t, saxpySrc, "saxpy")
	const n = 512
	xp, _ := d.Mem.Alloc(4 * n)
	yp, _ := d.Mem.Alloc(4 * n)
	x := make([]float32, n)
	y := make([]float32, n)
	for i := range x {
		x[i], y[i] = float32(i), 1
	}
	_ = d.Mem.WriteBytes(xp, f32slice(x))
	_ = d.Mem.WriteBytes(yp, f32slice(y))

	r := instrRun{}
	seen := 0
	ek := &ExecKernel{K: k}
	ek.After = make([][]Callback, len(k.Instrs))
	cb := func(c *InstrCtx) {
		r.dispatch++
		if r.activated || fireAt <= 0 {
			return
		}
		seen++
		if seen < fireAt {
			return
		}
		for lane := 0; lane < WarpSize; lane++ {
			if !c.LaneActive(lane) {
				continue
			}
			c.WriteReg(lane, 6, c.ReadReg(lane, 6)^0x40000)
			break
		}
		r.activated = true
		c.Disarm()
	}
	for i := range k.Instrs {
		ek.After[i] = []Callback{cb}
	}

	stats, err := d.Run(&Launch{
		Kernel: ek,
		Grid:   Dim3{X: n / 128, Y: 1, Z: 1},
		Block:  Dim3{X: 128, Y: 1, Z: 1},
		Params: []uint32{n, f32bits(2), xp, yp},
		Budget: budget,
	})
	out, _ := d.Mem.ReadBytes(yp, 4*n)
	r.parRun = parRun{out: out, stats: stats, err: err, log: d.LogEvents()}
	r.clocks = append([]uint64(nil), d.smClocks...)
	return r
}

// expectSameInstr extends expectSame with the per-SM clocks.
func expectSameInstr(t *testing.T, label string, ref, got instrRun) {
	t.Helper()
	expectSame(t, label, ref.parRun, got.parRun)
	if !reflect.DeepEqual(ref.clocks, got.clocks) {
		t.Errorf("%s: smClocks %v, want %v", label, got.clocks, ref.clocks)
	}
}

// TestTrampolineAccountingDifferential: arithmetic trampoline accounting
// must be observably identical to interpreting the 28 canned instructions
// — stats (including the trampoline counter), per-SM clocks, outputs,
// traps, and device log — with and without a mid-launch fault, and when
// the budget trips.
func TestTrampolineAccountingDifferential(t *testing.T) {
	cases := []struct {
		name   string
		fireAt int
		budget uint64
	}{
		{"clean", 0, 0},
		{"fault", 100, 0},
		{"budget-trap", 0, 150},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			interp := runSaxpyInstrumented(t, tc.fireAt, false, true, tc.budget)
			acct := runSaxpyInstrumented(t, tc.fireAt, false, false, tc.budget)
			expectSameInstr(t, "accounted vs interpreted", interp, acct)
			if acct.stats.TrampolineInstrs == 0 {
				t.Error("instrumented launch charged no trampoline instructions")
			}
			if interp.dispatch != acct.dispatch {
				t.Errorf("callback dispatches differ: %d vs %d", acct.dispatch, interp.dispatch)
			}
		})
	}
}

// TestDisarmDifferential: after the injected corruption, the disarmed
// callback-free loop must be observably identical to full armed dispatch —
// same outputs, LaunchStats (trampoline accounting included), per-SM
// clocks, traps, and device log — while provably skipping the remaining
// closure dispatch.
func TestDisarmDifferential(t *testing.T) {
	for _, budget := range []uint64{0, 200} {
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			armed := runSaxpyInstrumented(t, 100, false, false, budget)
			disarmed := runSaxpyInstrumented(t, 100, true, false, budget)
			expectSameInstr(t, "disarmed vs armed", armed, disarmed)
			if armed.activated != disarmed.activated {
				t.Fatalf("activation differs: armed %v, disarmed %v", armed.activated, disarmed.activated)
			}
			if armed.activated && disarmed.dispatch >= armed.dispatch {
				t.Errorf("disarm did not reduce callback dispatch: %d vs armed %d",
					disarmed.dispatch, armed.dispatch)
			}
		})
	}
}

// TestDisarmScopedToLaunch: disarm must not leak into the next launch on
// the same device — each Launch re-arms its instrumentation.
func TestDisarmScopedToLaunch(t *testing.T) {
	d := newTestDevice(t)
	k := mustKernel(t, saxpySrc, "saxpy")
	const n = 256
	xp, _ := d.Mem.Alloc(4 * n)
	yp, _ := d.Mem.Alloc(4 * n)

	dispatch := 0
	disarmAtFirst := true
	ek := &ExecKernel{K: k}
	ek.After = make([][]Callback, len(k.Instrs))
	cb := func(c *InstrCtx) {
		dispatch++
		if disarmAtFirst {
			disarmAtFirst = false
			c.Disarm()
		}
	}
	for i := range k.Instrs {
		ek.After[i] = []Callback{cb}
	}
	launch := func() int {
		dispatch = 0
		_, err := d.Run(&Launch{
			Kernel: ek,
			Grid:   Dim3{X: n / 128, Y: 1, Z: 1},
			Block:  Dim3{X: 128, Y: 1, Z: 1},
			Params: []uint32{n, f32bits(2), xp, yp},
		})
		if err != nil {
			t.Fatal(err)
		}
		return dispatch
	}
	first := launch() // disarms on its very first dispatch
	disarmAtFirst = false
	second := launch() // fresh Launch: fully armed again
	if first != 1 {
		t.Fatalf("first launch dispatched %d callbacks after immediate disarm, want 1", first)
	}
	if second <= first {
		t.Fatalf("second launch dispatched %d callbacks; disarm leaked across launches", second)
	}
}
