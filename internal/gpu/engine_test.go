package gpu

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/sass"
)

// saxpySrc is y[i] = a*x[i] + y[i] over n elements, one thread per element.
const saxpySrc = `
.kernel saxpy
.param n
.param a
.param xptr
.param yptr
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0           // global thread id
    ISETP.GE.AND P0, R0, c0[n], PT
@P0 EXIT
    SHL R3, R0, 0x2               // byte offset
    IADD R4, R3, c0[xptr]
    IADD R5, R3, c0[yptr]
    LDG.32 R6, [R4]
    LDG.32 R7, [R5]
    MOV R8, c0[a]
    FFMA R9, R8, R6, R7
    STG.32 [R5], R9
    EXIT
`

func mustKernel(t *testing.T, src, name string) *sass.Kernel {
	t.Helper()
	p, err := sass.Assemble("test", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	k, ok := p.Kernel(name)
	if !ok {
		t.Fatalf("kernel %q not found", name)
	}
	return k
}

func newTestDevice(t *testing.T) *Device {
	t.Helper()
	d, err := NewDevice(sass.FamilyVolta, 4)
	if err != nil {
		t.Fatalf("NewDevice: %v", err)
	}
	return d
}

func f32slice(vals []float32) []byte {
	b := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(b[4*i:], math.Float32bits(v))
	}
	return b
}

func TestSaxpy(t *testing.T) {
	d := newTestDevice(t)
	k := mustKernel(t, saxpySrc, "saxpy")

	const n = 1000
	x := make([]float32, n)
	y := make([]float32, n)
	for i := range x {
		x[i] = float32(i)
		y[i] = float32(2 * i)
	}
	xp, err := d.Mem.Alloc(4 * n)
	if err != nil {
		t.Fatal(err)
	}
	yp, err := d.Mem.Alloc(4 * n)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Mem.WriteBytes(xp, f32slice(x)); err != nil {
		t.Fatal(err)
	}
	if err := d.Mem.WriteBytes(yp, f32slice(y)); err != nil {
		t.Fatal(err)
	}

	const a = float32(3.5)
	stats, err := d.Run(&Launch{
		Kernel: &ExecKernel{K: k},
		Grid:   Dim3{X: (n + 127) / 128, Y: 1, Z: 1},
		Block:  Dim3{X: 128, Y: 1, Z: 1},
		Params: []uint32{n, math.Float32bits(a), xp, yp},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.ThreadInstrs == 0 || stats.WarpInstrs == 0 {
		t.Fatalf("no instructions counted: %+v", stats)
	}

	out, err := d.Mem.ReadBytes(yp, 4*n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		got := math.Float32frombits(binary.LittleEndian.Uint32(out[4*i:]))
		want := a*x[i] + y[i]
		if got != want {
			t.Fatalf("y[%d] = %g, want %g", i, got, want)
		}
	}
}

// TestDivergence exercises divergent control flow with reconvergence: odd
// lanes take one path, even lanes another, and both write distinct values.
func TestDivergence(t *testing.T) {
	const src = `
.kernel diverge
.param outptr
    S2R R0, SR_TID.X
    LOP.AND R1, R0, 0x1
    ISETP.EQ.AND P0, R1, 0x1, PT
    SHL R3, R0, 0x2
    IADD R4, R3, c0[outptr]
@P0 BRA odd
    MOV R5, 0x64                  // even lanes: 100
    BRA store
odd:
    MOV R5, 0xc8                  // odd lanes: 200
store:
    STG.32 [R4], R5
    EXIT
`
	d := newTestDevice(t)
	k := mustKernel(t, src, "diverge")
	out, err := d.Mem.Alloc(4 * 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(&Launch{
		Kernel: &ExecKernel{K: k},
		Grid:   Dim3{X: 1, Y: 1, Z: 1},
		Block:  Dim3{X: 64, Y: 1, Z: 1},
		Params: []uint32{out},
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := d.Mem.ReadBytes(out, 4*64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		got := binary.LittleEndian.Uint32(b[4*i:])
		want := uint32(100)
		if i%2 == 1 {
			want = 200
		}
		if got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

// TestSharedReduction exercises shared memory, barriers, and a block-level
// tree reduction.
func TestSharedReduction(t *testing.T) {
	const src = `
.kernel reduce
.param inptr
.param outptr
.shared 1024
    S2R R0, SR_TID.X
    SHL R1, R0, 0x2
    IADD R2, R1, c0[inptr]
    LDG.32 R3, [R2]
    STS.32 [R1], R3
    BAR.SYNC
    MOV R4, 0x80                  // stride = 128 threads... start at 128/2*4? stride in elements
loop:
    SHR.U32 R4, R4, 0x1
    ISETP.EQ.AND P1, R4, 0x0, PT
@P1 BRA done
    ISETP.GE.AND P0, R0, R4, PT
@P0 BRA skip
    SHL R5, R4, 0x2
    IADD R6, R1, R5               // (tid+stride)*4
    LDS.32 R7, [R6]
    LDS.32 R8, [R1]
    IADD R9, R7, R8
    STS.32 [R1], R9
skip:
    BAR.SYNC
    BRA loop
done:
    ISETP.NE.AND P2, R0, 0x0, PT
@P2 EXIT
    LDS.32 R10, [RZ]
    STG.32 [c0ptr], R10
    EXIT
`
	// The assembler has no syntax for "[constant-pointer]" so patch the
	// last store: load the out pointer into a register first.
	fixed := `
.kernel reduce
.param inptr
.param outptr
.shared 1024
    S2R R0, SR_TID.X
    SHL R1, R0, 0x2
    IADD R2, R1, c0[inptr]
    LDG.32 R3, [R2]
    STS.32 [R1], R3
    BAR.SYNC
    MOV R4, 0x100
loop:
    SHR.U32 R4, R4, 0x1
    ISETP.EQ.AND P1, R4, 0x0, PT
@P1 BRA done
    ISETP.GE.AND P0, R0, R4, PT
@P0 BRA skip
    SHL R5, R4, 0x2
    IADD R6, R1, R5
    LDS.32 R7, [R6]
    LDS.32 R8, [R1]
    IADD R9, R7, R8
    STS.32 [R1], R9
skip:
    BAR.SYNC
    BRA loop
done:
    ISETP.NE.AND P2, R0, 0x0, PT
@P2 EXIT
    MOV R11, c0[outptr]
    LDS.32 R10, [RZ]
    STG.32 [R11], R10
    EXIT
`
	_ = src
	d := newTestDevice(t)
	k := mustKernel(t, fixed, "reduce")

	const n = 256
	in := make([]byte, 4*n)
	want := uint32(0)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(in[4*i:], uint32(i))
		want += uint32(i)
	}
	inp, err := d.Mem.Alloc(4 * n)
	if err != nil {
		t.Fatal(err)
	}
	outp, err := d.Mem.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Mem.WriteBytes(inp, in); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(&Launch{
		Kernel: &ExecKernel{K: k},
		Grid:   Dim3{X: 1, Y: 1, Z: 1},
		Block:  Dim3{X: n, Y: 1, Z: 1},
		Params: []uint32{inp, outp},
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := d.Mem.ReadBytes(outp, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint32(b); got != want {
		t.Fatalf("reduction = %d, want %d", got, want)
	}
}

// TestTraps drives each addressing trap.
func TestTraps(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want TrapKind
	}{
		{
			name: "illegal address",
			src: `
.kernel bad
    MOV R1, 0x4
    LDG.32 R2, [R1]
    EXIT
`,
			want: TrapIllegalAddress,
		},
		{
			name: "misaligned",
			src: `
.kernel bad
.param p
    MOV R1, c0[p]
    IADD R1, R1, 0x2
    LDG.32 R2, [R1]
    EXIT
`,
			want: TrapMisaligned,
		},
		{
			name: "invalid instruction",
			src: `
.kernel bad
    TEX R1, R2
    EXIT
`,
			want: TrapInvalidInstruction,
		},
		{
			name: "breakpoint",
			src: `
.kernel bad
    BPT
    EXIT
`,
			want: TrapBreakpoint,
		},
		{
			name: "fall off end",
			src: `
.kernel bad
    MOV R1, 0x1
`,
			want: TrapBadPC,
		},
		{
			name: "hang",
			src: `
.kernel bad
loop:
    BRA loop
`,
			want: TrapInstrLimit,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			d := newTestDevice(t)
			k := mustKernel(t, tc.src, "bad")
			params := make([]uint32, len(k.Params))
			if len(params) > 0 {
				p, err := d.Mem.Alloc(64)
				if err != nil {
					t.Fatal(err)
				}
				params[0] = p
			}
			_, err := d.Run(&Launch{
				Kernel: &ExecKernel{K: k},
				Grid:   Dim3{X: 1, Y: 1, Z: 1},
				Block:  Dim3{X: 32, Y: 1, Z: 1},
				Params: params,
				Budget: 100000,
			})
			trap, ok := AsTrap(err)
			if !ok {
				t.Fatalf("expected trap, got %v", err)
			}
			if trap.Kind != tc.want {
				t.Fatalf("trap kind = %v, want %v", trap.Kind, tc.want)
			}
			if len(d.LogEvents()) == 0 {
				t.Fatal("trap did not produce a device-log event")
			}
		})
	}
}

// TestInstrumentationCallbacks checks that before/after callbacks observe
// the executing instruction and can modify register state.
func TestInstrumentationCallbacks(t *testing.T) {
	d := newTestDevice(t)
	k := mustKernel(t, saxpySrc, "saxpy")

	const n = 64
	xp, _ := d.Mem.Alloc(4 * n)
	yp, _ := d.Mem.Alloc(4 * n)
	x := make([]float32, n)
	y := make([]float32, n)
	for i := range x {
		x[i], y[i] = 1, 1
	}
	if err := d.Mem.WriteBytes(xp, f32slice(x)); err != nil {
		t.Fatal(err)
	}
	if err := d.Mem.WriteBytes(yp, f32slice(y)); err != nil {
		t.Fatal(err)
	}

	ek := &ExecKernel{K: k}
	ek.Before = make([][]Callback, len(k.Instrs))
	ek.After = make([][]Callback, len(k.Instrs))
	var before, after int
	for i := range k.Instrs {
		ek.Before[i] = []Callback{func(c *InstrCtx) { before += c.LaneCount() }}
		ek.After[i] = []Callback{func(c *InstrCtx) { after += c.LaneCount() }}
	}
	stats, err := d.Run(&Launch{
		Kernel: ek,
		Grid:   Dim3{X: 2, Y: 1, Z: 1},
		Block:  Dim3{X: 32, Y: 1, Z: 1},
		Params: []uint32{n, math.Float32bits(1), xp, yp},
	})
	if err != nil {
		t.Fatal(err)
	}
	if uint64(before) != stats.ThreadInstrs || uint64(after) != stats.ThreadInstrs {
		t.Fatalf("callback counts %d/%d, want %d", before, after, stats.ThreadInstrs)
	}
}
