package gpu

import (
	"sync"

	"repro/internal/sass"
)

// Per-experiment state recycling. A fault-injection campaign creates a fresh
// context per experiment for isolation, but the expensive allocations under
// that context — warp register files (32 KiB each), shared-memory windows,
// and global-memory pages — have no experiment-specific identity once
// zeroed. Pooling them converts the campaign's dominant allocation cost into
// a memclr.
//
// Recycled state is architecturally indistinguishable from fresh state: the
// digest treats a zeroed local window or an empty call stack exactly like a
// nil one (see digestWith), and every reset field matches the zero value a
// fresh allocation would carry. Pool discipline: a blockCtx releases its
// warps and shared window only on clean completion (never on trap or pause,
// where snapshots or error paths may still observe the block).

var warpPool = sync.Pool{New: func() any { return new(warp) }}

// getWarp returns a zeroed warp from the pool with converged scheduling
// state, as newBlockCtx builds them.
func getWarp(id int) *warp {
	w := warpPool.Get().(*warp)
	w.reset()
	w.id = id
	w.converged = true
	return w
}

// reset restores a warp to the fresh-allocation state while keeping the
// lane-local memory and call-stack buffers for reuse. A cleared local window
// and a length-zero stack are digest- and behavior-identical to nil ones.
func (w *warp) reset() {
	w.id = 0
	w.pc = [WarpSize]int32{}
	// Registers at or above dirtyRegs are zero by invariant (see the field
	// doc), so clearing the dirty prefix of each lane restores the fully
	// zeroed state without touching the rest of the 32 KiB file.
	if n := w.dirtyRegs; n > 0 {
		for lane := range w.regs {
			clear(w.regs[lane][:n])
		}
		w.dirtyRegs = 0
	}
	w.preds = [WarpSize][sass.NumPreds]bool{}
	// tid is not cleared: newBlockCtx assigns it for every live lane, and no
	// observable path (execution, digest, snapshot identity) reads the tid
	// of a lane outside liveMask.
	for lane := 0; lane < WarpSize; lane++ {
		if w.local[lane] != nil {
			clear(w.local[lane])
		}
		if w.stack[lane] != nil {
			w.stack[lane] = w.stack[lane][:0]
		}
	}
	w.liveMask = 0
	w.exitedMask = 0
	w.converged = false
	w.convPC = 0
	// The split list is a cache; its contents need no clearing once the
	// validity bit drops.
	w.nsplits = 0
	w.splitsOK = false
	w.scanSched = false
	w.barWait = false
	w.done = false
}

// sharedPool recycles block shared-memory windows across blocks and
// experiments.
var sharedPool sync.Pool

func getShared(n int) []byte {
	if v := sharedPool.Get(); v != nil {
		b := *(v.(*[]byte))
		if cap(b) >= n {
			b = b[:n]
			clear(b)
			return b
		}
	}
	return make([]byte, n)
}

// release returns the block's warps and shared window to their pools. Only
// call on clean block completion: trapped or paused blocks may still be
// observed through errors or snapshots.
func (blk *blockCtx) release() {
	for _, w := range blk.warps {
		warpPool.Put(w)
	}
	blk.warps = nil
	if blk.shared != nil {
		b := blk.shared
		blk.shared = nil
		sharedPool.Put(&b)
	}
}
