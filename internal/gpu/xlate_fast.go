package gpu

import (
	"math"
	"math/bits"

	"repro/internal/sass"
)

// This file is the second tier of the instruction specializer. The accessor
// tier in xlate_ops.go is fully general but pays several indirect calls per
// lane (source reader, destination writer, op body); profiles of the warp
// hot loop show those calls dominating translated execution. For the operand
// shapes that account for nearly all dynamic instructions — a destination
// register plus register / immediate / constant-bank sources — fastStep
// emits one fused closure whose lane loop resolves every operand inline:
// immediates fold at translation time, constant-bank words hoist out of the
// lane loop (they are launch-uniform), and register reads index the lane's
// register file directly. The op itself is selected by a captured tag,
// switched inside the loop — a perfectly predicted jump, not a call.
//
// Any shape the fast tier does not cover falls back to the accessor tier,
// and from there to the interpreter thunk, so every tier preserves exact
// interpreted behavior.

// Source kinds after fast classification.
const (
	fsImm   uint8 = iota // folded constant (immediates, labels, RZ)
	fsReg                // per-lane register read
	fsConst              // launch constant bank, hoisted out of the lane loop
)

// Negation modes, mirroring the accessor compilers: fnInt is srcI's two's
// complement, fnFloat is srcFBits' sign-bit flip. Immediates fold their
// negation at classification time and always carry fnNone.
const (
	fnNone uint8 = iota
	fnInt
	fnFloat
)

// fastSrc is one pre-resolved source operand.
type fastSrc struct {
	kind uint8
	neg  uint8
	reg  sass.RegID
	imm  uint32 // folded value for fsImm
	off  int32  // constant-bank offset for fsConst
}

// hoist resolves the lane-invariant value of a non-register source: the
// folded immediate or this launch's constant-bank word, negation applied.
// Called once per step invocation, before the lane loop.
func (s *fastSrc) hoist(blk *blockCtx) uint32 {
	if s.kind != fsConst {
		return s.imm
	}
	v := blk.constRead(s.off)
	switch s.neg {
	case fnInt:
		v = -v
	case fnFloat:
		v ^= 0x80000000
	}
	return v
}

// unpack flattens the source into scalar loop state: whether to read the
// register file, which register, and a xor/add pair that applies the
// negation mode without branching (two's complement is ^x+1; float negation
// flips the sign bit). The callers keep these in plain locals so the lane
// loop runs entirely out of machine registers — a struct would be kept on
// the stack once the inlined accessor takes its address, and the compiler
// reloads stack slots on every iteration.
func (s *fastSrc) unpack() (isReg bool, reg sass.RegID, xor, add uint32) {
	if s.kind != fsReg {
		return false, 0, 0, 0
	}
	switch s.neg {
	case fnInt:
		return true, s.reg, 0xffffffff, 1
	case fnFloat:
		return true, s.reg, 0x80000000, 0
	}
	return true, s.reg, 0, 0
}

// fastSrcFor classifies one source under the given negation mode. The bool
// result is false when the operand needs the accessor tier: special
// registers, missing operands, or shapes the interpreter would reject.
func fastSrcFor(in *sass.Instr, idx int, neg uint8) (fastSrc, bool) {
	if idx >= len(in.Src) {
		return fastSrc{}, false
	}
	o := &in.Src[idx]
	switch o.Kind {
	case sass.OpdReg:
		if o.Reg == sass.RZ {
			// RZ reads zero; a negated zero is still zero in both modes'
			// integer bits except the float sign flip.
			v := uint32(0)
			if o.Neg && neg == fnFloat {
				v = 0x80000000
			}
			return fastSrc{kind: fsImm, imm: v}, true
		}
		m := fnNone
		if o.Neg {
			m = neg
		}
		return fastSrc{kind: fsReg, neg: m, reg: o.Reg}, true
	case sass.OpdImm:
		v := o.Imm
		if o.Neg {
			switch neg {
			case fnInt:
				v = -v
			case fnFloat:
				v ^= 0x80000000
			}
		}
		return fastSrc{kind: fsImm, imm: v}, true
	case sass.OpdLabel:
		v := uint32(o.Target)
		if o.Neg && neg == fnInt {
			v = -v
		} else if o.Neg && neg == fnFloat {
			v ^= 0x80000000
		}
		return fastSrc{kind: fsImm, imm: v}, true
	case sass.OpdConst:
		m := fnNone
		if o.Neg {
			m = neg
		}
		return fastSrc{kind: fsConst, neg: m, off: o.Off}, true
	}
	return fastSrc{}, false
}

// fastPred is a pre-resolved predicate source: a constant (PT, missing, or
// non-predicate operands) or a per-lane predicate-file read.
type fastPred struct {
	p     sass.PredID
	neg   bool
	fixed int8 // 0 or 1: constant; -1: read p per lane
}

func fastPredFor(in *sass.Instr, idx int) fastPred {
	if idx >= len(in.Src) || in.Src[idx].Kind != sass.OpdPred {
		return fastPred{fixed: 1}
	}
	pr := in.Src[idx].Pred
	if pr.Pred == sass.PT {
		if pr.Neg {
			return fastPred{fixed: 0}
		}
		return fastPred{fixed: 1}
	}
	return fastPred{p: pr.Pred, neg: pr.Neg, fixed: -1}
}

// read resolves the predicate for one lane; inlines into the fused loops.
func (p *fastPred) read(pf *[sass.NumPreds]bool) bool {
	if p.fixed >= 0 {
		return p.fixed != 0
	}
	return pf[p.p&7] != p.neg
}

// fastDst accepts only a plain non-RZ destination register; RZ and predicate
// destinations keep the accessor tier's drop/write-through behavior.
func fastDst(in *sass.Instr) (sass.RegID, bool) {
	if len(in.Dst) == 0 || in.Dst[0].Kind != sass.OpdReg || in.Dst[0].Reg == sass.RZ {
		return 0, false
	}
	return in.Dst[0].Reg, true
}

// fastDstP accepts only a real predicate destination (writes to PT drop).
func fastDstP(in *sass.Instr) (sass.PredID, bool) {
	if len(in.Dst) == 0 || in.Dst[0].Kind != sass.OpdPred || in.Dst[0].Pred.Pred == sass.PT {
		return 0, false
	}
	return in.Dst[0].Pred.Pred, true
}

// fastOp tags the operation a fused closure performs. The tag is switched
// per lane inside the loop body: the target never changes within one step,
// so the jump predicts perfectly and costs no indirect call.
type fastOp uint8

const (
	// two-source (or fewer) register-result ops
	fopAdd fastOp = iota
	fopMul
	fopMulHiS
	fopMulHiU
	fopAnd
	fopOr
	fopXor
	fopPassB
	fopShl
	fopShrU
	fopShrS
	fopFAdd
	fopFMul
	fopPassA
	fopPopc
	fopBrev
	fopFlo

	// three-source register-result ops
	fopImadLo
	fopImadHiS
	fopImadHiU
	fopIAdd3
	fopLea
	fopFFma
	fopLop3

	// predicate-selected register-result ops
	fopSel
	fopIMnMxS
	fopIMnMxU
	fopFMnMx

	// FP64 pair-result ops
	fopDAdd
	fopDMul
	fopDFma
	fopDMnMx
)

// fastBinStep fuses a one- or two-source ALU op: the whole warp executes in
// one closure call with zero per-lane calls. Every captured value is copied
// into a local before the lane loop — the loop stores into the register
// file, and the compiler cannot hoist loads from the closure environment
// across those stores, so reading the environment per lane would reload
// every field on every iteration.
//
// The hottest ops additionally unswitch the op tag out of the lane loop: a
// dedicated loop per op keeps the body to a handful of instructions with no
// jump table and low enough register pressure that nothing spills, which the
// single switched loop cannot achieve.
//
//go:noinline
func fastBinStep(op fastOp, d sass.RegID, a, b fastSrc) planStep {
	return func(blk *blockCtx, w *warp, m uint32) (bool, TrapKind, uint32) {
		op, d := op, d
		av, bv := a.hoist(blk), b.hoist(blk)
		aIsReg, aReg, aXor, aAdd := a.unpack()
		bIsReg, bReg, bXor, bAdd := b.unpack()
		// Sequential lane scan instead of a find-first-set loop: the lane
		// index carries no dependency on the previous iteration, so the CPU
		// overlaps lane bodies. Ascending order matches the accessor tier.
		switch op {
		case fopAdd:
			for lane, rem := 0, m; rem != 0; lane, rem = lane+1, rem>>1 {
				if rem&1 == 0 {
					continue
				}
				rf := &w.regs[lane&31]
				x, y := av, bv
				if aIsReg {
					x = (rf[aReg] ^ aXor) + aAdd
				}
				if bIsReg {
					y = (rf[bReg] ^ bXor) + bAdd
				}
				rf[d] = x + y
			}
			return false, 0, 0
		case fopMul:
			for lane, rem := 0, m; rem != 0; lane, rem = lane+1, rem>>1 {
				if rem&1 == 0 {
					continue
				}
				rf := &w.regs[lane&31]
				x, y := av, bv
				if aIsReg {
					x = (rf[aReg] ^ aXor) + aAdd
				}
				if bIsReg {
					y = (rf[bReg] ^ bXor) + bAdd
				}
				rf[d] = x * y
			}
			return false, 0, 0
		case fopAnd:
			for lane, rem := 0, m; rem != 0; lane, rem = lane+1, rem>>1 {
				if rem&1 == 0 {
					continue
				}
				rf := &w.regs[lane&31]
				x, y := av, bv
				if aIsReg {
					x = (rf[aReg] ^ aXor) + aAdd
				}
				if bIsReg {
					y = (rf[bReg] ^ bXor) + bAdd
				}
				rf[d] = x & y
			}
			return false, 0, 0
		case fopOr:
			for lane, rem := 0, m; rem != 0; lane, rem = lane+1, rem>>1 {
				if rem&1 == 0 {
					continue
				}
				rf := &w.regs[lane&31]
				x, y := av, bv
				if aIsReg {
					x = (rf[aReg] ^ aXor) + aAdd
				}
				if bIsReg {
					y = (rf[bReg] ^ bXor) + bAdd
				}
				rf[d] = x | y
			}
			return false, 0, 0
		case fopXor:
			for lane, rem := 0, m; rem != 0; lane, rem = lane+1, rem>>1 {
				if rem&1 == 0 {
					continue
				}
				rf := &w.regs[lane&31]
				x, y := av, bv
				if aIsReg {
					x = (rf[aReg] ^ aXor) + aAdd
				}
				if bIsReg {
					y = (rf[bReg] ^ bXor) + bAdd
				}
				rf[d] = x ^ y
			}
			return false, 0, 0
		case fopPassB:
			for lane, rem := 0, m; rem != 0; lane, rem = lane+1, rem>>1 {
				if rem&1 == 0 {
					continue
				}
				rf := &w.regs[lane&31]
				v := bv
				if bIsReg {
					v = (rf[bReg] ^ bXor) + bAdd
				}
				rf[d] = v
			}
			return false, 0, 0
		case fopPassA:
			for lane, rem := 0, m; rem != 0; lane, rem = lane+1, rem>>1 {
				if rem&1 == 0 {
					continue
				}
				rf := &w.regs[lane&31]
				v := av
				if aIsReg {
					v = (rf[aReg] ^ aXor) + aAdd
				}
				rf[d] = v
			}
			return false, 0, 0
		case fopShl:
			for lane, rem := 0, m; rem != 0; lane, rem = lane+1, rem>>1 {
				if rem&1 == 0 {
					continue
				}
				rf := &w.regs[lane&31]
				x, y := av, bv
				if aIsReg {
					x = (rf[aReg] ^ aXor) + aAdd
				}
				if bIsReg {
					y = (rf[bReg] ^ bXor) + bAdd
				}
				v := uint32(0)
				if y < 32 {
					v = x << y
				}
				rf[d] = v
			}
			return false, 0, 0
		case fopShrU:
			for lane, rem := 0, m; rem != 0; lane, rem = lane+1, rem>>1 {
				if rem&1 == 0 {
					continue
				}
				rf := &w.regs[lane&31]
				x, y := av, bv
				if aIsReg {
					x = (rf[aReg] ^ aXor) + aAdd
				}
				if bIsReg {
					y = (rf[bReg] ^ bXor) + bAdd
				}
				v := uint32(0)
				if y < 32 {
					v = x >> y
				}
				rf[d] = v
			}
			return false, 0, 0
		case fopFAdd:
			for lane, rem := 0, m; rem != 0; lane, rem = lane+1, rem>>1 {
				if rem&1 == 0 {
					continue
				}
				rf := &w.regs[lane&31]
				x, y := av, bv
				if aIsReg {
					x = (rf[aReg] ^ aXor) + aAdd
				}
				if bIsReg {
					y = (rf[bReg] ^ bXor) + bAdd
				}
				rf[d] = math.Float32bits(math.Float32frombits(x) + math.Float32frombits(y))
			}
			return false, 0, 0
		case fopFMul:
			for lane, rem := 0, m; rem != 0; lane, rem = lane+1, rem>>1 {
				if rem&1 == 0 {
					continue
				}
				rf := &w.regs[lane&31]
				x, y := av, bv
				if aIsReg {
					x = (rf[aReg] ^ aXor) + aAdd
				}
				if bIsReg {
					y = (rf[bReg] ^ bXor) + bAdd
				}
				rf[d] = math.Float32bits(math.Float32frombits(x) * math.Float32frombits(y))
			}
			return false, 0, 0
		}
		for lane, rem := 0, m; rem != 0; lane, rem = lane+1, rem>>1 {
			if rem&1 == 0 {
				continue
			}
			rf := &w.regs[lane&31]
			x, y := av, bv
			if aIsReg {
				x = (rf[aReg] ^ aXor) + aAdd
			}
			if bIsReg {
				y = (rf[bReg] ^ bXor) + bAdd
			}
			var v uint32
			switch op {
			case fopMulHiS:
				v = mulHigh(x, y, true)
			case fopMulHiU:
				v = mulHigh(x, y, false)
			case fopShrS:
				s := y
				if s >= 32 {
					s = 31
				}
				v = uint32(int32(x) >> s)
			case fopPopc:
				v = uint32(bits.OnesCount32(x))
			case fopBrev:
				v = bits.Reverse32(x)
			case fopFlo:
				if x == 0 {
					v = 0xffffffff
				} else {
					v = uint32(31 - bits.LeadingZeros32(x))
				}
			}
			rf[d] = v
		}
		return false, 0, 0
	}
}

// fastTernStep fuses a three-source ALU op; lut carries LOP3's immediate
// truth table.
//
//go:noinline
func fastTernStep(op fastOp, d sass.RegID, a, b, c fastSrc, lut uint8) planStep {
	return func(blk *blockCtx, w *warp, m uint32) (bool, TrapKind, uint32) {
		op, d, lut := op, d, lut
		av, bv, cv := a.hoist(blk), b.hoist(blk), c.hoist(blk)
		aIsReg, aReg, aXor, aAdd := a.unpack()
		bIsReg, bReg, bXor, bAdd := b.unpack()
		cIsReg, cReg, cXor, cAdd := c.unpack()
		// The dominant terns (IMAD, FFMA, IADD3) get op-unswitched loops like
		// fastBinStep's; the rest share the switched loop below.
		switch op {
		case fopImadLo:
			for lane, rem := 0, m; rem != 0; lane, rem = lane+1, rem>>1 {
				if rem&1 == 0 {
					continue
				}
				rf := &w.regs[lane&31]
				x, y, z := av, bv, cv
				if aIsReg {
					x = (rf[aReg] ^ aXor) + aAdd
				}
				if bIsReg {
					y = (rf[bReg] ^ bXor) + bAdd
				}
				if cIsReg {
					z = (rf[cReg] ^ cXor) + cAdd
				}
				rf[d] = x*y + z
			}
			return false, 0, 0
		case fopFFma:
			for lane, rem := 0, m; rem != 0; lane, rem = lane+1, rem>>1 {
				if rem&1 == 0 {
					continue
				}
				rf := &w.regs[lane&31]
				x, y, z := av, bv, cv
				if aIsReg {
					x = (rf[aReg] ^ aXor) + aAdd
				}
				if bIsReg {
					y = (rf[bReg] ^ bXor) + bAdd
				}
				if cIsReg {
					z = (rf[cReg] ^ cXor) + cAdd
				}
				rf[d] = math.Float32bits(float32(
					float64(math.Float32frombits(x))*float64(math.Float32frombits(y)) +
						float64(math.Float32frombits(z))))
			}
			return false, 0, 0
		case fopIAdd3:
			for lane, rem := 0, m; rem != 0; lane, rem = lane+1, rem>>1 {
				if rem&1 == 0 {
					continue
				}
				rf := &w.regs[lane&31]
				x, y, z := av, bv, cv
				if aIsReg {
					x = (rf[aReg] ^ aXor) + aAdd
				}
				if bIsReg {
					y = (rf[bReg] ^ bXor) + bAdd
				}
				if cIsReg {
					z = (rf[cReg] ^ cXor) + cAdd
				}
				rf[d] = x + y + z
			}
			return false, 0, 0
		}
		for lane, rem := 0, m; rem != 0; lane, rem = lane+1, rem>>1 {
			if rem&1 == 0 {
				continue
			}
			rf := &w.regs[lane&31]
			x, y, z := av, bv, cv
			if aIsReg {
				x = (rf[aReg] ^ aXor) + aAdd
			}
			if bIsReg {
				y = (rf[bReg] ^ bXor) + bAdd
			}
			if cIsReg {
				z = (rf[cReg] ^ cXor) + cAdd
			}
			var v uint32
			switch op {
			case fopImadHiS:
				v = mulHigh(x, y, true) + z
			case fopImadHiU:
				v = mulHigh(x, y, false) + z
			case fopLea:
				v = x<<(z&31) + y
			case fopLop3:
				v = lop3(x, y, z, lut)
			}
			rf[d] = v
		}
		return false, 0, 0
	}
}

// fastSelStep fuses the predicate-selected ops (SEL, FSEL, IMNMX, FMNMX).
//
//go:noinline
func fastSelStep(op fastOp, d sass.RegID, a, b fastSrc, p fastPred) planStep {
	return func(blk *blockCtx, w *warp, m uint32) (bool, TrapKind, uint32) {
		op, d, p := op, d, p
		av, bv := a.hoist(blk), b.hoist(blk)
		aIsReg, aReg, aXor, aAdd := a.unpack()
		bIsReg, bReg, bXor, bAdd := b.unpack()
		for lane, rem := 0, m; rem != 0; lane, rem = lane+1, rem>>1 {
			if rem&1 == 0 {
				continue
			}
			lane := lane & 31
			rf := &w.regs[lane]
			x, y := av, bv
			if aIsReg {
				x = (rf[aReg] ^ aXor) + aAdd
			}
			if bIsReg {
				y = (rf[bReg] ^ bXor) + bAdd
			}
			pv := p.read(&w.preds[lane])
			var v uint32
			switch op {
			case fopSel:
				v = y
				if pv {
					v = x
				}
			case fopIMnMxU:
				v = y
				if (x < y) == pv {
					v = x
				}
			case fopIMnMxS:
				v = y
				if (int32(x) < int32(y)) == pv {
					v = x
				}
			case fopFMnMx:
				fx, fy := math.Float32frombits(x), math.Float32frombits(y)
				if pv {
					v = math.Float32bits(fmin(fx, fy))
				} else {
					v = math.Float32bits(fmax(fx, fy))
				}
			}
			rf[d] = v
		}
		return false, 0, 0
	}
}

// fastDSrc is one pre-resolved FP64 source, mirroring srcD's quirks exactly:
// register pairs apply negation as a sign-bit xor on the raw bits, constant-
// bank doubles hoist out of the lane loop, float immediates widen with
// negation ignored, and any other shape reads ±0.0 as the accessor tier does.
type fastDSrc struct {
	kind uint8 // fsImm, fsReg, fsConst
	neg  bool  // constant-bank sign flip
	reg  sass.RegID
	xor  uint64  // sign flip applied to register reads
	imm  float64 // folded value for fsImm
	off  int32   // constant-bank offset for fsConst
}

// hoist resolves the lane-invariant value: the folded immediate or this
// launch's constant-bank double, negation applied.
func (s *fastDSrc) hoist(blk *blockCtx) float64 {
	if s.kind != fsConst {
		return s.imm
	}
	b := uint64(blk.constRead(s.off+4))<<32 | uint64(blk.constRead(s.off))
	if s.neg {
		b ^= 1 << 63
	}
	return math.Float64frombits(b)
}

func (s *fastDSrc) unpack() (isReg bool, reg sass.RegID, xor uint64) {
	if s.kind != fsReg {
		return false, 0, 0
	}
	return true, s.reg, s.xor
}

// fastDSrcFor classifies one FP64 source. srcD accepts every operand kind
// (unknown shapes read ±0.0), so the only rejection is a missing operand.
func fastDSrcFor(in *sass.Instr, idx int) (fastDSrc, bool) {
	if idx >= len(in.Src) {
		return fastDSrc{}, false
	}
	o := &in.Src[idx]
	switch o.Kind {
	case sass.OpdReg:
		var x uint64
		if o.Neg {
			x = 1 << 63
		}
		return fastDSrc{kind: fsReg, reg: o.Reg, xor: x}, true
	case sass.OpdConst:
		return fastDSrc{kind: fsConst, off: o.Off, neg: o.Neg}, true
	case sass.OpdImm:
		// srcD's quirk: a float immediate in a double context widens with
		// negation ignored.
		return fastDSrc{kind: fsImm, imm: float64(math.Float32frombits(o.Imm))}, true
	default:
		v := 0.0
		if o.Neg {
			v = math.Float64frombits(1 << 63)
		}
		return fastDSrc{kind: fsImm, imm: v}, true
	}
}

// fastDStep fuses the FP64 pair ops (DADD, DMUL, DFMA, DMNMX): one closure
// call per warp instead of three indirect calls per lane through the
// accessor tier. Register pairs go through readPairReg so RZ-adjacent reads
// keep their exact interpreted semantics; the destination write mirrors
// dstWrPair (writeHi false when the high half lands on RZ).
//
//go:noinline
func fastDStep(op fastOp, d sass.RegID, writeHi bool, a, b, c fastDSrc, p fastPred) planStep {
	return func(blk *blockCtx, w *warp, m uint32) (bool, TrapKind, uint32) {
		op, d, writeHi, p := op, d, writeHi, p
		av, bv, cv := a.hoist(blk), b.hoist(blk), c.hoist(blk)
		aIsReg, aReg, aXor := a.unpack()
		bIsReg, bReg, bXor := b.unpack()
		cIsReg, cReg, cXor := c.unpack()
		for lane, rem := 0, m; rem != 0; lane, rem = lane+1, rem>>1 {
			if rem&1 == 0 {
				continue
			}
			lane := lane & 31
			x, y, z := av, bv, cv
			if aIsReg {
				x = math.Float64frombits(readPairReg(w, lane, aReg) ^ aXor)
			}
			if bIsReg {
				y = math.Float64frombits(readPairReg(w, lane, bReg) ^ bXor)
			}
			if cIsReg {
				z = math.Float64frombits(readPairReg(w, lane, cReg) ^ cXor)
			}
			var v float64
			switch op {
			case fopDAdd:
				v = x + y
			case fopDMul:
				v = x * y
			case fopDFma:
				v = math.FMA(x, y, z)
			case fopDMnMx:
				if p.read(&w.preds[lane]) {
					v = math.Min(x, y)
				} else {
					v = math.Max(x, y)
				}
			}
			b := math.Float64bits(v)
			rf := &w.regs[lane]
			rf[d] = uint32(b)
			if writeHi {
				rf[d+1] = uint32(b >> 32)
			}
		}
		return false, 0, 0
	}
}

// fastS2RStep fuses S2R. The lane-dependent special registers (TID, lane id,
// lane masks) get dedicated loops; everything else — CTAID, warp id, SM id,
// the clock, and unknown registers (which read zero, as in specialVal) — is
// warp-invariant within one step and broadcasts a single resolved value.
//
//go:noinline
func fastS2RStep(d sass.RegID, sr sass.SpecialReg) planStep {
	return func(blk *blockCtx, w *warp, m uint32) (bool, TrapKind, uint32) {
		d, sr := d, sr
		switch sr {
		case sass.SRTidX:
			for lane, rem := 0, m; rem != 0; lane, rem = lane+1, rem>>1 {
				if rem&1 == 0 {
					continue
				}
				lane := lane & 31
				w.regs[lane][d] = uint32(w.tid[lane].X)
			}
		case sass.SRTidY:
			for lane, rem := 0, m; rem != 0; lane, rem = lane+1, rem>>1 {
				if rem&1 == 0 {
					continue
				}
				lane := lane & 31
				w.regs[lane][d] = uint32(w.tid[lane].Y)
			}
		case sass.SRTidZ:
			for lane, rem := 0, m; rem != 0; lane, rem = lane+1, rem>>1 {
				if rem&1 == 0 {
					continue
				}
				lane := lane & 31
				w.regs[lane][d] = uint32(w.tid[lane].Z)
			}
		case sass.SRLaneID:
			for lane, rem := 0, m; rem != 0; lane, rem = lane+1, rem>>1 {
				if rem&1 == 0 {
					continue
				}
				w.regs[lane&31][d] = uint32(lane)
			}
		case sass.SREqMask:
			for lane, rem := 0, m; rem != 0; lane, rem = lane+1, rem>>1 {
				if rem&1 == 0 {
					continue
				}
				w.regs[lane&31][d] = 1 << uint(lane)
			}
		case sass.SRLtMask:
			for lane, rem := 0, m; rem != 0; lane, rem = lane+1, rem>>1 {
				if rem&1 == 0 {
					continue
				}
				w.regs[lane&31][d] = 1<<uint(lane) - 1
			}
		default:
			v := specialVal(blk, w, 0, sr)
			for lane, rem := 0, m; rem != 0; lane, rem = lane+1, rem>>1 {
				if rem&1 == 0 {
					continue
				}
				w.regs[lane&31][d] = v
			}
		}
		return false, 0, 0
	}
}

// fastCmp is the comparison pre-resolved from (float, unsigned, CmpOp) at
// translation time, so the setp lane loop branches on a dense enum instead of
// calling icompare/fcompare, whose full switches are past the inlining budget
// and would spill the loop's registers around the call.
type fastCmp uint8

const (
	fcF  fastCmp = iota // constant false: CmpF and every unhandled op
	fcT                 // constant true
	fcEQ                // integer compares (EQ/NE are sign-agnostic)
	fcNE
	fcLTS
	fcLES
	fcGTS
	fcGES
	fcLTU
	fcLEU
	fcGTU
	fcGEU
	fcFEQ // float compares: IEEE semantics, NaN compares false
	fcFNE
	fcFLT
	fcFLE
	fcFGT
	fcFGE
	fcFNum
	fcFNan
)

// fastCmpFor mirrors the interpreter's icompare/fcompare dispatch exactly:
// ops either switch table leaves at "default: return false" resolve to fcF.
func fastCmpFor(float, unsigned bool, c sass.CmpOp) fastCmp {
	if float {
		switch c {
		case sass.CmpEQ:
			return fcFEQ
		case sass.CmpNE:
			return fcFNE
		case sass.CmpLT:
			return fcFLT
		case sass.CmpLE:
			return fcFLE
		case sass.CmpGT:
			return fcFGT
		case sass.CmpGE:
			return fcFGE
		case sass.CmpNum:
			return fcFNum
		case sass.CmpNan:
			return fcFNan
		case sass.CmpT:
			return fcT
		}
		return fcF
	}
	switch c {
	case sass.CmpEQ:
		return fcEQ
	case sass.CmpNE:
		return fcNE
	case sass.CmpT:
		return fcT
	case sass.CmpLT, sass.CmpLE, sass.CmpGT, sass.CmpGE:
		if unsigned {
			switch c {
			case sass.CmpLT:
				return fcLTU
			case sass.CmpLE:
				return fcLEU
			case sass.CmpGT:
				return fcGTU
			}
			return fcGEU
		}
		switch c {
		case sass.CmpLT:
			return fcLTS
		case sass.CmpLE:
			return fcLES
		case sass.CmpGT:
			return fcGTS
		}
		return fcGES
	}
	return fcF
}

// fastSetPStep fuses ISETP/FSETP with the optional .AND/.OR/.XOR combine
// against a predicate source. When the instruction has no combine source,
// boolOp is BoolNone and q is constant-true, which passes the comparison
// through exactly like boolQualify.
//
//go:noinline
func fastSetPStep(cmp fastCmp, boolOp sass.BoolOp,
	d sass.PredID, a, b fastSrc, q fastPred) planStep {
	return func(blk *blockCtx, w *warp, m uint32) (bool, TrapKind, uint32) {
		cmp, boolOp, d, q := cmp, boolOp, d, q
		av, bv := a.hoist(blk), b.hoist(blk)
		aIsReg, aReg, aXor, aAdd := a.unpack()
		bIsReg, bReg, bXor, bAdd := b.unpack()
		for lane, rem := 0, m; rem != 0; lane, rem = lane+1, rem>>1 {
			if rem&1 == 0 {
				continue
			}
			lane := lane & 31
			rf := &w.regs[lane]
			x, y := av, bv
			if aIsReg {
				x = (rf[aReg] ^ aXor) + aAdd
			}
			if bIsReg {
				y = (rf[bReg] ^ bXor) + bAdd
			}
			var r bool
			switch cmp {
			case fcT:
				r = true
			case fcEQ:
				r = x == y
			case fcNE:
				r = x != y
			case fcLTS:
				r = int32(x) < int32(y)
			case fcLES:
				r = int32(x) <= int32(y)
			case fcGTS:
				r = int32(x) > int32(y)
			case fcGES:
				r = int32(x) >= int32(y)
			case fcLTU:
				r = x < y
			case fcLEU:
				r = x <= y
			case fcGTU:
				r = x > y
			case fcGEU:
				r = x >= y
			case fcFEQ:
				r = math.Float32frombits(x) == math.Float32frombits(y)
			case fcFNE:
				r = math.Float32frombits(x) != math.Float32frombits(y)
			case fcFLT:
				r = math.Float32frombits(x) < math.Float32frombits(y)
			case fcFLE:
				r = math.Float32frombits(x) <= math.Float32frombits(y)
			case fcFGT:
				r = math.Float32frombits(x) > math.Float32frombits(y)
			case fcFGE:
				r = math.Float32frombits(x) >= math.Float32frombits(y)
			case fcFNum:
				r = !isNaN32(math.Float32frombits(x)) && !isNaN32(math.Float32frombits(y))
			case fcFNan:
				r = isNaN32(math.Float32frombits(x)) || isNaN32(math.Float32frombits(y))
			}
			pf := &w.preds[lane]
			qv := q.read(pf)
			switch boolOp {
			case sass.BoolAnd:
				r = r && qv
			case sass.BoolOr:
				r = r || qv
			case sass.BoolXor:
				r = r != qv
			}
			pf[d&7] = r
		}
		return false, 0, 0
	}
}

// fastStep tries the fused tier for one instruction; nil means the shape
// needs the accessor tier.
func fastStep(in *sass.Instr) planStep {
	mods := &in.Mods
	sem := in.Op.Info().Sem
	switch sem {
	case sass.SemIAdd, sass.SemIMul, sass.SemLop, sass.SemShl, sass.SemShr,
		sass.SemMov, sass.SemPopc, sass.SemBrev, sass.SemFlo,
		sass.SemFAdd, sass.SemFMul:
		d, ok := fastDst(in)
		if !ok {
			return nil
		}
		neg := fnNone
		var op fastOp
		switch sem {
		case sass.SemIAdd:
			op, neg = fopAdd, fnInt
		case sass.SemIMul:
			op, neg = fopMul, fnInt
			if mods.High {
				op = fopMulHiS
				if mods.Unsigned {
					op = fopMulHiU
				}
			}
		case sass.SemLop:
			switch mods.Logic {
			case sass.LogicOr:
				op = fopOr
			case sass.LogicXor:
				op = fopXor
			case sass.LogicPassB:
				op = fopPassB
			default:
				op = fopAnd
			}
		case sass.SemShl:
			op = fopShl
		case sass.SemShr:
			op = fopShrS
			if mods.Unsigned {
				op = fopShrU
			}
		case sass.SemMov:
			op, neg = fopPassA, fnInt
		case sass.SemPopc:
			op = fopPopc
		case sass.SemBrev:
			op = fopBrev
		case sass.SemFlo:
			op = fopFlo
		case sass.SemFAdd:
			op, neg = fopFAdd, fnFloat
		case sass.SemFMul:
			op, neg = fopFMul, fnFloat
		}
		a, ok := fastSrcFor(in, 0, neg)
		if !ok {
			return nil
		}
		b := fastSrc{} // unary ops ignore the second source
		switch op {
		case fopPassA, fopPopc, fopBrev, fopFlo:
		default:
			if b, ok = fastSrcFor(in, 1, neg); !ok {
				return nil
			}
		}
		return fastBinStep(op, d, a, b)

	case sass.SemIMad, sass.SemIAdd3, sass.SemISCAdd, sass.SemLea, sass.SemFFma, sass.SemLop3:
		d, ok := fastDst(in)
		if !ok {
			return nil
		}
		var op fastOp
		neg := fnNone
		lut := uint8(0)
		switch sem {
		case sass.SemIMad:
			op, neg = fopImadLo, fnInt
			if mods.High {
				op = fopImadHiS
				if mods.Unsigned {
					op = fopImadHiU
				}
			}
		case sass.SemIAdd3:
			op, neg = fopIAdd3, fnInt
		case sass.SemISCAdd, sass.SemLea:
			op = fopLea
		case sass.SemFFma:
			op, neg = fopFFma, fnFloat
		case sass.SemLop3:
			op = fopLop3
			// The truth table must be a plain immediate; anything else (the
			// interpreter reads it per lane) keeps the accessor tier.
			if len(in.Src) < 4 || in.Src[3].Kind != sass.OpdImm || in.Src[3].Neg {
				return nil
			}
			lut = uint8(in.Src[3].Imm)
		}
		a, ok := fastSrcFor(in, 0, neg)
		if !ok {
			return nil
		}
		b, ok := fastSrcFor(in, 1, neg)
		if !ok {
			return nil
		}
		c, ok := fastSrcFor(in, 2, neg)
		if !ok {
			return nil
		}
		return fastTernStep(op, d, a, b, c, lut)

	case sass.SemSel, sass.SemFSel, sass.SemIMnMx, sass.SemFMnMx:
		d, ok := fastDst(in)
		if !ok {
			return nil
		}
		var op fastOp
		neg := fnNone
		switch sem {
		case sass.SemSel:
			op = fopSel
		case sass.SemFSel:
			op, neg = fopSel, fnFloat
		case sass.SemIMnMx:
			op = fopIMnMxS
			if mods.Unsigned {
				op = fopIMnMxU
			}
		case sass.SemFMnMx:
			op, neg = fopFMnMx, fnFloat
		}
		a, ok := fastSrcFor(in, 0, neg)
		if !ok {
			return nil
		}
		b, ok := fastSrcFor(in, 1, neg)
		if !ok {
			return nil
		}
		return fastSelStep(op, d, a, b, fastPredFor(in, 2))

	case sass.SemISetP, sass.SemFSetP:
		d, ok := fastDstP(in)
		if !ok {
			return nil
		}
		float := sem == sass.SemFSetP
		neg := fnNone
		if float {
			neg = fnFloat
		}
		a, ok := fastSrcFor(in, 0, neg)
		if !ok {
			return nil
		}
		b, ok := fastSrcFor(in, 1, neg)
		if !ok {
			return nil
		}
		boolOp, q := sass.BoolNone, fastPred{fixed: 1}
		if len(in.Src) > 2 {
			boolOp, q = mods.Bool, fastPredFor(in, 2)
		}
		return fastSetPStep(fastCmpFor(float, mods.Unsigned, mods.Cmp), boolOp, d, a, b, q)

	case sass.SemS2R:
		d, ok := fastDst(in)
		if !ok || len(in.Src) == 0 {
			return nil
		}
		return fastS2RStep(d, in.Src[0].SReg)

	case sass.SemDAdd, sass.SemDMul, sass.SemDFma, sass.SemDMnMx:
		d, ok := fastDst(in)
		if !ok {
			return nil
		}
		var op fastOp
		switch sem {
		case sass.SemDAdd:
			op = fopDAdd
		case sass.SemDMul:
			op = fopDMul
		case sass.SemDFma:
			op = fopDFma
		case sass.SemDMnMx:
			op = fopDMnMx
		}
		a, ok := fastDSrcFor(in, 0)
		if !ok {
			return nil
		}
		b, ok := fastDSrcFor(in, 1)
		if !ok {
			return nil
		}
		c := fastDSrc{}
		if sem == sass.SemDFma {
			if c, ok = fastDSrcFor(in, 2); !ok {
				return nil
			}
		}
		p := fastPred{fixed: 1}
		if sem == sass.SemDMnMx {
			p = fastPredFor(in, 2)
		}
		return fastDStep(op, d, d+1 != sass.RZ, a, b, c, p)
	}
	return nil
}
