package gpu

import (
	"math"
	"testing"
	"testing/quick"
)

func TestF16KnownValues(t *testing.T) {
	tests := []struct {
		bits uint16
		val  float32
	}{
		{0x0000, 0},
		{0x3c00, 1},
		{0x4000, 2},
		{0xc000, -2},
		{0x3800, 0.5},
		{0x7bff, 65504},                 // max normal
		{0x0400, 6.103515625e-05},       // min normal
		{0x0001, 5.960464477539063e-08}, // min subnormal
	}
	for _, tc := range tests {
		if got := f16ToF32(tc.bits); got != tc.val {
			t.Errorf("f16ToF32(0x%04x) = %g, want %g", tc.bits, got, tc.val)
		}
		if got := f32ToF16(tc.val); got != tc.bits {
			t.Errorf("f32ToF16(%g) = 0x%04x, want 0x%04x", tc.val, got, tc.bits)
		}
	}
}

func TestF16Specials(t *testing.T) {
	inf := float32(math.Inf(1))
	if f16ToF32(0x7c00) != inf {
		t.Error("0x7c00 should decode to +inf")
	}
	if f16ToF32(0xfc00) != float32(math.Inf(-1)) {
		t.Error("0xfc00 should decode to -inf")
	}
	if !isNaN32(f16ToF32(0x7e00)) {
		t.Error("0x7e00 should decode to NaN")
	}
	if f32ToF16(inf) != 0x7c00 {
		t.Error("+inf should encode to 0x7c00")
	}
	if f32ToF16(1e10) != 0x7c00 {
		t.Error("overflow should saturate to +inf")
	}
	if got := f32ToF16(float32(math.NaN())); got&0x7c00 != 0x7c00 || got&0x3ff == 0 {
		t.Errorf("NaN should stay NaN, got 0x%04x", got)
	}
	if f32ToF16(1e-10) != 0 {
		t.Error("underflow should flush to +0")
	}
	if f32ToF16(float32(math.Copysign(0, -1))) != 0x8000 {
		t.Error("-0 should encode to 0x8000")
	}
}

// TestF16RoundTripAllBitPatterns: decode→encode is the identity for every
// non-NaN half value (NaNs keep their class but may not keep their
// payload).
func TestF16RoundTripAllBitPatterns(t *testing.T) {
	for b := 0; b < 1<<16; b++ {
		h := uint16(b)
		f := f16ToF32(h)
		if isNaN32(f) {
			if got := f32ToF16(f); got&0x7c00 != 0x7c00 || got&0x3ff == 0 {
				t.Fatalf("NaN 0x%04x re-encoded to non-NaN 0x%04x", h, got)
			}
			continue
		}
		if got := f32ToF16(f); got != h {
			t.Fatalf("round trip 0x%04x -> %g -> 0x%04x", h, f, got)
		}
	}
}

// TestF16RoundNearestEven: conversion from f32 rounds ties to even.
func TestF16RoundNearestEven(t *testing.T) {
	// 1 + 2^-11 is exactly between 1.0 (0x3c00) and the next half
	// (0x3c01); ties round to even (0x3c00).
	if got := f32ToF16(1 + 1.0/2048); got != 0x3c00 {
		t.Errorf("tie rounding = 0x%04x, want 0x3c00", got)
	}
	// 1 + 3*2^-11 ties between 0x3c01 and 0x3c02 → 0x3c02.
	if got := f32ToF16(1 + 3.0/2048); got != 0x3c02 {
		t.Errorf("tie rounding = 0x%04x, want 0x3c02", got)
	}
}

// TestF16MonotoneQuick: encoding preserves order for arbitrary value pairs.
func TestF16MonotoneQuick(t *testing.T) {
	f := func(a, b float32) bool {
		if isNaN32(a) || isNaN32(b) {
			return true
		}
		// Clamp to the half range to avoid both saturating to inf.
		if a > 65504 || a < -65504 || b > 65504 || b < -65504 {
			return true
		}
		ha, hb := f16ToF32(f32ToF16(a)), f16ToF32(f32ToF16(b))
		if a < b {
			return ha <= hb
		}
		if a > b {
			return ha >= hb
		}
		return ha == hb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}
