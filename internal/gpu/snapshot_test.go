package gpu

import (
	"bytes"
	"encoding/binary"
	"sync"
	"testing"
)

// reduceLaunch builds a gridreduce launch (divergent control flow, shared
// memory, barriers — the states a snapshot must capture exactly) with its
// input initialized to a fixed pattern.
func reduceLaunch(t *testing.T, d *Device, blocks int) (*Launch, uint32, int) {
	t.Helper()
	k := mustKernel(t, gridReduceSrc, "gridreduce")
	n := 256 * blocks
	in := make([]byte, 4*n)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(in[4*i:], uint32(i*7+3))
	}
	inp := mustAllocWrite(t, d, 4*n, in)
	outp := mustAllocWrite(t, d, 4*blocks, nil)
	l := &Launch{
		Kernel: &ExecKernel{K: k},
		Grid:   Dim3{X: blocks, Y: 1, Z: 1},
		Block:  Dim3{X: 256, Y: 1, Z: 1},
		Params: []uint32{inp, outp},
	}
	return l, outp, 4 * blocks
}

func readOut(t *testing.T, d *Device, outp uint32, n int) []byte {
	t.Helper()
	b, err := d.Mem.ReadBytes(outp, n)
	if err != nil {
		t.Fatalf("ReadBytes: %v", err)
	}
	return b
}

// TestLaunchRunMatchesRun: BeginRun + a single Resume(-1) is Device.Run.
func TestLaunchRunMatchesRun(t *testing.T) {
	ref := newTestDevice(t)
	l, outp, outLen := reduceLaunch(t, ref, 3)
	refStats, refErr := ref.Run(l)
	if refErr != nil {
		t.Fatalf("Run: %v", refErr)
	}
	refOut := readOut(t, ref, outp, outLen)

	d := newTestDevice(t)
	l2, outp2, _ := reduceLaunch(t, d, 3)
	r, err := d.BeginRun(l2)
	if err != nil {
		t.Fatalf("BeginRun: %v", err)
	}
	paused, err := r.Resume(-1)
	if err != nil || paused {
		t.Fatalf("Resume(-1) = (%v, %v), want finished", paused, err)
	}
	if r.Stats() != refStats {
		t.Fatalf("stats: %+v vs Run's %+v", r.Stats(), refStats)
	}
	if got := readOut(t, d, outp2, outLen); !bytes.Equal(got, refOut) {
		t.Fatal("output differs from Device.Run")
	}
	if ref.Digest() != d.Digest() {
		t.Fatal("final device digests differ")
	}
}

// TestPauseResumeEquivalence: pausing after every single warp instruction
// and resuming must be invisible — identical stats, output, and digest to
// the uninterrupted run, with exactly Stats.WarpInstrs pauses.
func TestPauseResumeEquivalence(t *testing.T) {
	ref := newTestDevice(t)
	l, outp, outLen := reduceLaunch(t, ref, 2)
	refStats, refErr := ref.Run(l)
	if refErr != nil {
		t.Fatalf("Run: %v", refErr)
	}
	refOut := readOut(t, ref, outp, outLen)

	d := newTestDevice(t)
	l2, outp2, _ := reduceLaunch(t, d, 2)
	r, err := d.BeginRun(l2)
	if err != nil {
		t.Fatalf("BeginRun: %v", err)
	}
	pauses := uint64(0)
	for {
		paused, err := r.Resume(1)
		if err != nil {
			t.Fatalf("Resume after %d pauses: %v", pauses, err)
		}
		if !paused {
			break
		}
		pauses++
	}
	if pauses != refStats.WarpInstrs {
		t.Fatalf("paused %d times, want one per warp instruction (%d)", pauses, refStats.WarpInstrs)
	}
	if r.Stats() != refStats {
		t.Fatalf("stats: %+v vs %+v", r.Stats(), refStats)
	}
	if got := readOut(t, d, outp2, outLen); !bytes.Equal(got, refOut) {
		t.Fatal("output differs from uninterrupted run")
	}
	if ref.Digest() != d.Digest() {
		t.Fatal("final device digests differ")
	}
}

// TestSnapshotRestoreBitIdentical is the core checkpoint soundness test:
// snapshots taken at many mid-launch boundaries — including mid-divergence
// and at-barrier positions of a reducing kernel — each restore onto a fresh
// device and run to a completion bit-identical to the original.
func TestSnapshotRestoreBitIdentical(t *testing.T) {
	const stride = 97
	d := newTestDevice(t)
	l, outp, outLen := reduceLaunch(t, d, 2)
	r, err := d.BeginRun(l)
	if err != nil {
		t.Fatalf("BeginRun: %v", err)
	}
	type ckpt struct {
		snap   *Snapshot
		digest uint64
	}
	var ckpts []ckpt
	for {
		paused, err := r.Resume(stride)
		if err != nil {
			t.Fatalf("Resume: %v", err)
		}
		if !paused {
			break
		}
		s, err := r.Snapshot()
		if err != nil {
			t.Fatalf("Snapshot: %v", err)
		}
		ckpts = append(ckpts, ckpt{snap: s, digest: r.Digest()})
	}
	refStats := r.Stats()
	refOut := readOut(t, d, outp, outLen)
	refDigest := d.Digest()
	if len(ckpts) < 10 {
		t.Fatalf("only %d checkpoints; kernel too short for the test to bite", len(ckpts))
	}

	for i, c := range ckpts {
		fork := newTestDevice(t)
		fr, err := fork.Restore(c.snap)
		if err != nil {
			t.Fatalf("ckpt %d: Restore: %v", i, err)
		}
		if fr == nil {
			t.Fatalf("ckpt %d: mid-launch snapshot restored with no run", i)
		}
		if got := fr.Digest(); got != c.digest {
			t.Fatalf("ckpt %d: restored digest %x, snapshotted at %x", i, got, c.digest)
		}
		paused, err := fr.Resume(-1)
		if err != nil || paused {
			t.Fatalf("ckpt %d: Resume(-1) = (%v, %v)", i, paused, err)
		}
		if fr.Stats() != refStats {
			t.Fatalf("ckpt %d: stats %+v, want %+v", i, fr.Stats(), refStats)
		}
		if got := readOut(t, fork, outp, outLen); !bytes.Equal(got, refOut) {
			t.Fatalf("ckpt %d: output differs after restore", i)
		}
		if got := fork.Digest(); got != refDigest {
			t.Fatalf("ckpt %d: final digest %x, want %x", i, got, refDigest)
		}
	}
}

// TestSnapshotCOWIsolation: a snapshot's memory view is frozen at snapshot
// time; writes on the live device and on each restored fork stay private.
func TestSnapshotCOWIsolation(t *testing.T) {
	d := newTestDevice(t)
	pattern := bytes.Repeat([]byte{0xa5, 0x5a, 0x01, 0xfe}, 4096)
	p := mustAllocWrite(t, d, len(pattern), pattern)
	snap := d.Snapshot()

	// Scribble over the live device after the snapshot.
	if err := d.Mem.WriteBytes(p, bytes.Repeat([]byte{0xff}, len(pattern))); err != nil {
		t.Fatal(err)
	}

	forks := make([]*Device, 2)
	for i := range forks {
		f := newTestDevice(t)
		if _, err := f.Restore(snap); err != nil {
			t.Fatalf("Restore: %v", err)
		}
		forks[i] = f
	}
	// Each fork writes its own marker into the shared page range.
	for i, f := range forks {
		if tk := f.Mem.Store(p+8, 4, uint64(0x1000+i)); tk != 0 {
			t.Fatalf("fork %d store trapped: %v", i, tk)
		}
	}
	for i, f := range forks {
		b, err := f.Mem.ReadBytes(p, len(pattern))
		if err != nil {
			t.Fatal(err)
		}
		if got := binary.LittleEndian.Uint32(b[8:]); got != uint32(0x1000+i) {
			t.Fatalf("fork %d reads %#x at its marker, want %#x", i, got, 0x1000+i)
		}
		rest := append(append([]byte(nil), b[:8]...), b[12:]...)
		want := append(append([]byte(nil), pattern[:8]...), pattern[12:]...)
		if !bytes.Equal(rest, want) {
			t.Fatalf("fork %d sees corruption outside its own write", i)
		}
	}
	// A fork restored after all that still sees the pristine snapshot.
	late := newTestDevice(t)
	if _, err := late.Restore(snap); err != nil {
		t.Fatal(err)
	}
	b, err := late.Mem.ReadBytes(p, len(pattern))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, pattern) {
		t.Fatal("late fork does not see the snapshot-time contents")
	}
}

// TestConcurrentRestoreRace: many goroutines fork one mid-launch snapshot
// and run to completion concurrently; the copy-on-write pages must never
// leak writes across forks (run with -race).
func TestConcurrentRestoreRace(t *testing.T) {
	d := newTestDevice(t)
	l, outp, outLen := reduceLaunch(t, d, 2)
	r, err := d.BeginRun(l)
	if err != nil {
		t.Fatalf("BeginRun: %v", err)
	}
	if paused, err := r.Resume(500); err != nil || !paused {
		t.Fatalf("Resume(500) = (%v, %v), want paused", paused, err)
	}
	snap, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if paused, err := r.Resume(-1); err != nil || paused {
		t.Fatalf("finish: (%v, %v)", paused, err)
	}
	refOut := readOut(t, d, outp, outLen)
	refDigest := d.Digest()

	const forks = 8
	var wg sync.WaitGroup
	errs := make([]error, forks)
	outs := make([][]byte, forks)
	digests := make([]uint64, forks)
	for i := 0; i < forks; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f, err := NewDevice(d.Family, d.NumSMs)
			if err != nil {
				errs[i] = err
				return
			}
			fr, err := f.Restore(snap)
			if err != nil {
				errs[i] = err
				return
			}
			if _, err := fr.Resume(-1); err != nil {
				errs[i] = err
				return
			}
			outs[i], errs[i] = f.Mem.ReadBytes(outp, outLen)
			digests[i] = f.Digest()
		}(i)
	}
	wg.Wait()
	for i := 0; i < forks; i++ {
		if errs[i] != nil {
			t.Fatalf("fork %d: %v", i, errs[i])
		}
		if !bytes.Equal(outs[i], refOut) {
			t.Fatalf("fork %d output differs", i)
		}
		if digests[i] != refDigest {
			t.Fatalf("fork %d digest %x, want %x", i, digests[i], refDigest)
		}
	}
}

// TestSnapshotRestoreMidDivergence: snapshots of a kernel whose warps are
// split across three PCs almost every cycle must restore bit-identically —
// and restore onto *either* scheduler, because a snapshot carries only the
// per-lane PC vector, never the warp-split cache. Every checkpoint is
// restored twice, once per scheduler mode, and both forks must reach the
// reference completion.
func TestSnapshotRestoreMidDivergence(t *testing.T) {
	divLaunch := func(t *testing.T, d *Device, blocks int) (*Launch, uint32, int) {
		t.Helper()
		k := mustKernel(t, divergentSrc, "div")
		const threads = 128
		outp := mustAllocWrite(t, d, 4*blocks*threads, nil)
		return &Launch{
			Kernel: &ExecKernel{K: k},
			Grid:   Dim3{X: blocks, Y: 1, Z: 1},
			Block:  Dim3{X: threads, Y: 1, Z: 1},
			Params: []uint32{outp},
		}, outp, 4 * blocks * threads
	}

	ref := newTestDevice(t)
	l, outp, outLen := divLaunch(t, ref, 2)
	refStats, err := ref.Run(l)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	refOut := readOut(t, ref, outp, outLen)
	refDigest := ref.Digest()

	d := newTestDevice(t)
	l2, _, _ := divLaunch(t, d, 2)
	r, err := d.BeginRun(l2)
	if err != nil {
		t.Fatalf("BeginRun: %v", err)
	}
	type ckpt struct {
		snap   *Snapshot
		digest uint64
	}
	var ckpts []ckpt
	for {
		paused, err := r.Resume(997)
		if err != nil {
			t.Fatalf("Resume: %v", err)
		}
		if !paused {
			break
		}
		s, err := r.Snapshot()
		if err != nil {
			t.Fatalf("Snapshot: %v", err)
		}
		ckpts = append(ckpts, ckpt{snap: s, digest: r.Digest()})
	}
	if len(ckpts) < 10 {
		t.Fatalf("only %d checkpoints; kernel too short for the test to bite", len(ckpts))
	}

	for i, c := range ckpts {
		for _, legacy := range []bool{false, true} {
			fork := newTestDevice(t)
			fork.LegacySched = legacy
			fr, err := fork.Restore(c.snap)
			if err != nil {
				t.Fatalf("ckpt %d legacy=%v: Restore: %v", i, legacy, err)
			}
			if got := fr.Digest(); got != c.digest {
				t.Fatalf("ckpt %d legacy=%v: restored digest %x, snapshotted at %x", i, legacy, got, c.digest)
			}
			paused, err := fr.Resume(-1)
			if err != nil || paused {
				t.Fatalf("ckpt %d legacy=%v: Resume(-1) = (%v, %v)", i, legacy, paused, err)
			}
			if fr.Stats() != refStats {
				t.Fatalf("ckpt %d legacy=%v: stats %+v, want %+v", i, legacy, fr.Stats(), refStats)
			}
			if got := readOut(t, fork, outp, outLen); !bytes.Equal(got, refOut) {
				t.Fatalf("ckpt %d legacy=%v: output differs after restore", i, legacy)
			}
			if got := fork.Digest(); got != refDigest {
				t.Fatalf("ckpt %d legacy=%v: final digest %x, want %x", i, legacy, got, refDigest)
			}
		}
	}
}

// TestDigestCanonicalization: a never-written page digests like an
// explicitly zeroed one, and any one-bit difference in reachable state
// changes the digest.
func TestDigestCanonicalization(t *testing.T) {
	a := newTestDevice(t)
	b := newTestDevice(t)
	pa, _ := a.Mem.Alloc(8192)
	pb, _ := b.Mem.Alloc(8192)
	if pa != pb {
		t.Fatalf("bump allocator divergence: %#x vs %#x", pa, pb)
	}
	// b materializes its pages with zeros; a leaves them untouched.
	if err := b.Mem.WriteBytes(pb, make([]byte, 8192)); err != nil {
		t.Fatal(err)
	}
	if a.Digest() != b.Digest() {
		t.Fatal("zero-filled page digests differently from never-written page")
	}
	if tk := b.Mem.Store(pb+4096, 4, 1); tk != 0 {
		t.Fatalf("store trapped: %v", tk)
	}
	if a.Digest() == b.Digest() {
		t.Fatal("digest blind to a one-word memory difference")
	}
}

// TestRestoreRejectsMismatchedDevice: restoring onto a device with a
// different SM count must fail — SM clocks and block->SM mapping would
// silently diverge otherwise.
func TestRestoreRejectsMismatchedDevice(t *testing.T) {
	d := newTestDevice(t)
	snap := d.Snapshot()
	other, err := NewDevice(d.Family, d.NumSMs+1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Restore(snap); err == nil {
		t.Fatal("restore onto a mismatched device succeeded")
	}
}
