package gpu

import "math"

// Half-precision conversion helpers for the packed-half (HADD2/HMUL2/HFMA2)
// instructions. The conversions implement IEEE 754 binary16 with round-to-
// nearest-even, including subnormals, infinities, and NaN.

// f16ToF32 widens an IEEE binary16 value.
func f16ToF32(h uint16) float32 {
	sign := uint32(h>>15) << 31
	exp := uint32(h>>10) & 0x1f
	man := uint32(h) & 0x3ff
	switch exp {
	case 0:
		if man == 0 {
			return math.Float32frombits(sign) // signed zero
		}
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for man&0x400 == 0 {
			man <<= 1
			e--
		}
		man &= 0x3ff
		return math.Float32frombits(sign | e<<23 | man<<13)
	case 0x1f:
		if man == 0 {
			return math.Float32frombits(sign | 0x7f800000) // infinity
		}
		return math.Float32frombits(sign | 0x7f800000 | man<<13) // NaN
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | man<<13)
	}
}

// f32ToF16 narrows to IEEE binary16 with round-to-nearest-even.
func f32ToF16(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b>>31) << 15
	exp := int32(b>>23) & 0xff
	man := b & 0x7fffff
	switch {
	case exp == 0xff: // inf or NaN
		if man == 0 {
			return sign | 0x7c00
		}
		return sign | 0x7c00 | uint16(man>>13) | 1 // keep NaN quiet
	case exp > 127+15: // overflow to infinity
		return sign | 0x7c00
	case exp >= 127-14: // normal range
		e := uint16(exp - 127 + 15)
		m := uint16(man >> 13)
		// Round to nearest even on the truncated 13 bits.
		rem := man & 0x1fff
		if rem > 0x1000 || (rem == 0x1000 && m&1 == 1) {
			m++
			if m == 0x400 {
				m = 0
				e++
				if e >= 0x1f {
					return sign | 0x7c00
				}
			}
		}
		return sign | e<<10 | m
	case exp >= 127-14-10: // subnormal
		shift := uint32(127 - 14 - exp)
		full := man | 0x800000
		m := uint16(full >> (13 + shift))
		rem := full & ((1 << (13 + shift)) - 1)
		half := uint32(1) << (12 + shift)
		if rem > half || (rem == half && m&1 == 1) {
			m++
		}
		return sign | m
	default: // underflow to zero
		return sign
	}
}
