package gpu

import (
	"testing"

	"repro/internal/sass"
)

// hotLoopSrc is the warp hot-loop benchmark kernel: a 256-iteration ALU loop
// per thread, so per-instruction dispatch cost dominates and the translated
// and interpreted engines are compared on exactly the path the translation
// engine optimizes.
const hotLoopSrc = `
.kernel hot
.param outptr
    S2R R0, SR_TID.X
    S2R R7, SR_CTAID.X
    MOV R1, 0x1
    MOV R2, 0x100
loop:
    IMAD R1, R1, R0, 0x7
    LOP.XOR R1, R1, R7
    IADD R3, R1, 0x3
    SHL R4, R3, 0x1
    LOP.AND R1, R1, R4
    IADD R2, R2, -0x1
    ISETP.NE.AND P0, R2, 0x0, PT
@P0 BRA loop
    MOV R5, c0[NTID_X]
    IMAD R6, R7, R5, R0
    SHL R6, R6, 0x2
    IADD R6, R6, c0[outptr]
    STG.32 [R6], R1
    EXIT
`

func benchWarpLoop(b *testing.B, noXlate bool) {
	p, err := sass.Assemble("bench", hotLoopSrc)
	if err != nil {
		b.Fatal(err)
	}
	d, err := NewDevice(sass.FamilyVolta, 4)
	if err != nil {
		b.Fatal(err)
	}
	d.NoXlate = noXlate
	const blocks, threads = 8, 128
	outp, err := d.Mem.Alloc(4 * blocks * threads)
	if err != nil {
		b.Fatal(err)
	}
	l := &Launch{
		Kernel: &ExecKernel{K: p.Kernels[0]},
		Grid:   Dim3{X: blocks, Y: 1, Z: 1},
		Block:  Dim3{X: threads, Y: 1, Z: 1},
		Params: []uint32{outp},
	}
	stats, err := d.Run(l) // warm the plan cache and pools
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Run(l); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perLaunch := float64(stats.WarpInstrs)
	b.ReportMetric(perLaunch*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mwarpinstr/s")
}

// BenchmarkWarpTranslated measures the block-level translation engine on the
// warp hot loop; BenchmarkWarpInterpreted is the legacy dispatch baseline.
func BenchmarkWarpTranslated(b *testing.B)  { benchWarpLoop(b, false) }
func BenchmarkWarpInterpreted(b *testing.B) { benchWarpLoop(b, true) }

// divergentSrc is the divergence benchmark kernel: ostencil-shaped boundary
// branching inside a 256-iteration loop. Every warp splits at the boundary
// check each iteration (lanes with x==0 or x==15 take the short boundary
// path, the other 28 the longer interior path) and reconverges at join, so
// the scheduler's diverged issue path dominates.
const divergentSrc = `
.kernel div
.param outptr
    S2R R0, SR_TID.X
    S2R R7, SR_CTAID.X
    MOV R2, 0x100
    MOV R1, 0x0
    LOP.AND R8, R0, 0xf
loop:
    ISETP.GE.AND P0, R8, 0x1, PT
    ISETP.LE.AND P0, R8, 0xe, P0
@P0 BRA interior
    SHL R4, R1, 0x1
    LOP.XOR R1, R4, R0
    BRA join
interior:
    IMAD R1, R1, R0, 0x5
    IADD R1, R1, R7
    LOP.XOR R1, R1, R8
    SHL R3, R1, 0x1
    LOP.AND R1, R1, R3
    IADD R1, R1, 0x3
join:
    IADD R2, R2, -0x1
    ISETP.NE.AND P0, R2, 0x0, PT
@P0 BRA loop
    MOV R5, c0[NTID_X]
    IMAD R6, R7, R5, R0
    SHL R6, R6, 0x2
    IADD R6, R6, c0[outptr]
    STG.32 [R6], R1
    EXIT
`

func benchDivergentWarp(b *testing.B, noXlate bool) {
	p, err := sass.Assemble("bench", divergentSrc)
	if err != nil {
		b.Fatal(err)
	}
	d, err := NewDevice(sass.FamilyVolta, 4)
	if err != nil {
		b.Fatal(err)
	}
	d.NoXlate = noXlate
	const blocks, threads = 8, 128
	outp, err := d.Mem.Alloc(4 * blocks * threads)
	if err != nil {
		b.Fatal(err)
	}
	l := &Launch{
		Kernel: &ExecKernel{K: p.Kernels[0]},
		Grid:   Dim3{X: blocks, Y: 1, Z: 1},
		Block:  Dim3{X: threads, Y: 1, Z: 1},
		Params: []uint32{outp},
	}
	stats, err := d.Run(l) // warm the plan cache and pools
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Run(l); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perLaunch := float64(stats.WarpInstrs)
	b.ReportMetric(perLaunch*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mwarpinstr/s")
}

// BenchmarkDivergentWarp tracks the divergence floor alongside the hot-loop
// benchmark: the same engine comparison, but on a kernel whose warps spend
// the whole launch diverged.
func BenchmarkDivergentWarp(b *testing.B)            { benchDivergentWarp(b, false) }
func BenchmarkDivergentWarpInterpreted(b *testing.B) { benchDivergentWarp(b, true) }

// BenchmarkMemoryFind measures Memory.find: the repeated-hit path (one hot
// allocation, the shape every page-window miss inside a kernel takes), the
// alternating path (an input and an output buffer, the dominant real kernel
// pattern the two-slot memo serves), and the scattered path (round-robin
// over many allocations — every find misses the memo and pays the full
// search plus the memo update).
func BenchmarkMemoryFind(b *testing.B) {
	m := NewMemory()
	ptrs := make([]uint32, 32)
	for i := range ptrs {
		p, err := m.Alloc(4096)
		if err != nil {
			b.Fatal(err)
		}
		ptrs[i] = p
	}
	b.Run("repeat", func(b *testing.B) {
		addr := ptrs[len(ptrs)/2] + 128
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if m.find(addr) == nil {
				b.Fatal("miss")
			}
		}
	})
	b.Run("alternating", func(b *testing.B) {
		in, out := ptrs[3]+256, ptrs[29]+512
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			addr := in
			if i&1 != 0 {
				addr = out
			}
			if m.find(addr) == nil {
				b.Fatal("miss")
			}
		}
	})
	b.Run("scattered", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if m.find(ptrs[i%len(ptrs)]+64) == nil {
				b.Fatal("miss")
			}
		}
	})
}
