package gpu

import (
	"sync"
	"sync/atomic"
)

// runParallel executes the launch's thread blocks across a pool of worker
// goroutines, one per owned group of SMs — the software analog of blocks
// running concurrently on different streaming multiprocessors.
//
// Determinism contract (see DESIGN.md):
//
//   - SM ownership: worker w owns SM s iff s%workers == w, and each block's
//     smID is blockLin%NumSMs, so every smClocks entry is written by exactly
//     one worker and same-SM blocks run in linear order. CS2R/SR_CLOCK reads
//     are therefore bit-identical to the sequential schedule.
//   - Budget: one shared atomic counter; exactly the budgeted number of
//     warp instructions issue globally, as in sequential mode. Which block
//     exhausts it first is schedule-dependent (only observable in runs that
//     hit the hang watchdog).
//   - Traps: every worker keeps running blocks the sequential schedule
//     would have reached; the trap with the lowest block linear index wins,
//     which is the trap sequential execution would have reported. Blocks
//     above a recorded trap are skipped, never below it.
//   - Stats: accumulated per block and merged in block order — completed
//     blocks below the winning trap plus the winner's partial counts — so
//     LaunchStats are bit-identical to sequential in both outcomes.
//
// Blocks above a winning trap may still have executed (sequential mode
// stops at the trap), so their global-memory effects can be visible after a
// trapped launch — matching hardware, where a trap does not undo work other
// SMs already did. Fresh-context-per-experiment campaigns never observe the
// difference: a trapped launch poisons the context.
func (d *Device) runParallel(l *Launch, constBank []byte, plan *xplan, budgetN uint64, workers int) (LaunchStats, error) {
	numBlocks := l.Grid.Count()
	blockStats := make([]LaunchStats, numBlocks)
	blockErrs := make([]error, numBlocks)
	budget := &budgetCounter{remaining: int64(budgetN), shared: true, ctx: d.cancelCtx, checkIn: cancelPollStride}

	// trapLin is the lowest block linear index that has trapped so far;
	// numBlocks is the no-trap sentinel. It only ever decreases, so a block
	// is skipped only when some lower block trapped — blocks below the
	// final winner always run to completion, as they would sequentially.
	var trapLin atomic.Int64
	trapLin.Store(int64(numBlocks))

	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			for lin := 0; lin < numBlocks; lin++ {
				if (lin%d.NumSMs)%workers != wkr {
					continue
				}
				if int64(lin) > trapLin.Load() {
					// A lower block already trapped; the sequential
					// schedule would never have started this one.
					continue
				}
				idx := Dim3{
					X: lin % l.Grid.X,
					Y: (lin / l.Grid.X) % l.Grid.Y,
					Z: lin / (l.Grid.X * l.Grid.Y),
				}
				blk := newBlockCtx(d, l, constBank, plan, idx, lin)
				blk.parallel = true
				if err := blk.run(budget, &blockStats[lin]); err != nil {
					blockErrs[lin] = err
					for {
						cur := trapLin.Load()
						if int64(lin) >= cur || trapLin.CompareAndSwap(cur, int64(lin)) {
							break
						}
					}
				} else {
					blk.release()
				}
			}
		}(wkr)
	}
	wg.Wait()

	var stats LaunchStats
	win := int(trapLin.Load())
	merge := func(lin int) {
		stats.WarpInstrs += blockStats[lin].WarpInstrs
		stats.ThreadInstrs += blockStats[lin].ThreadInstrs
	}
	if win >= numBlocks {
		for lin := 0; lin < numBlocks; lin++ {
			merge(lin)
		}
		stats.Blocks = numBlocks
		return stats, nil
	}
	// Trapped: count completed blocks below the winner, then the winner's
	// partial execution, exactly as the sequential schedule would have.
	for lin := 0; lin < win; lin++ {
		merge(lin)
	}
	stats.Blocks = win
	merge(win)
	return stats, blockErrs[win]
}
