package gpu

import (
	"context"
	"errors"
	"testing"
	"time"
)

// spinSrc loops forever: the launch can only end via the instruction budget
// or cancellation.
const spinSrc = `
.kernel spin
spin_top:
    IADD R0, R0, 0x1
    BRA spin_top
    EXIT
`

// TestCancelStopsLaunch: cancelling the armed context while a kernel spins
// must end the launch with TrapCancelled long before the budget drains.
func TestCancelStopsLaunch(t *testing.T) {
	k := mustKernel(t, spinSrc, "spin")
	d := newTestDevice(t)
	ctx, cancel := context.WithCancel(context.Background())
	d.SetCancel(ctx)
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := d.Run(&Launch{
		Kernel: &ExecKernel{K: k},
		Grid:   Dim3{X: 1, Y: 1, Z: 1},
		Block:  Dim3{X: 32, Y: 1, Z: 1},
		Budget: 1 << 40, // would spin for hours if cancellation leaked
	})
	elapsed := time.Since(start)
	trap, ok := AsTrap(err)
	if !ok || trap.Kind != TrapCancelled {
		t.Fatalf("cancelled launch returned %v, want TrapCancelled", err)
	}
	if trap.IsHang() {
		t.Fatal("TrapCancelled must not classify as a hang")
	}
	if elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v; the poll stride is not prompt", elapsed)
	}
}

// TestCancelBeforeLaunch: a context cancelled before Run starts fails the
// launch immediately, without interpreting a single instruction.
func TestCancelBeforeLaunch(t *testing.T) {
	k := mustKernel(t, spinSrc, "spin")
	d := newTestDevice(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d.SetCancel(ctx)
	stats, err := d.Run(&Launch{
		Kernel: &ExecKernel{K: k},
		Grid:   Dim3{X: 1, Y: 1, Z: 1},
		Block:  Dim3{X: 32, Y: 1, Z: 1},
	})
	trap, ok := AsTrap(err)
	if !ok || trap.Kind != TrapCancelled {
		t.Fatalf("pre-cancelled launch returned %v, want TrapCancelled", err)
	}
	if stats.WarpInstrs != 0 {
		t.Fatalf("pre-cancelled launch executed %d instructions", stats.WarpInstrs)
	}
}

// TestNoCancelCtxUnchanged: devices without an armed context behave exactly
// as before — budget exhaustion still traps as an instruction-limit hang.
func TestNoCancelCtxUnchanged(t *testing.T) {
	k := mustKernel(t, spinSrc, "spin")
	d := newTestDevice(t)
	_, err := d.Run(&Launch{
		Kernel: &ExecKernel{K: k},
		Grid:   Dim3{X: 1, Y: 1, Z: 1},
		Block:  Dim3{X: 32, Y: 1, Z: 1},
		Budget: 10000,
	})
	trap, ok := AsTrap(err)
	if !ok || trap.Kind != TrapInstrLimit {
		t.Fatalf("budget exhaustion returned %v, want TrapInstrLimit", err)
	}
	if !trap.IsHang() {
		t.Fatal("TrapInstrLimit must classify as a hang")
	}
	var e error = trap
	if !errors.As(e, &trap) {
		t.Fatal("trap does not unwrap")
	}
}
