package gpu

import (
	"context"
	"fmt"
	"math/bits"
	"os"
	"sync"

	"repro/internal/sass"
)

// WarpSize is the number of lanes per warp, fixed at 32 as on all NVIDIA
// architectures the paper covers.
const WarpSize = 32

// DefaultBudget is the per-launch warp-instruction limit used when a Launch
// does not set one; it is the hang detector of last resort.
const DefaultBudget = 1 << 32

// localMemBytes is the per-thread local-memory window (LDL/STL).
const localMemBytes = 4096

// maxCallDepth bounds the per-lane call stack.
const maxCallDepth = 64

// LogEvent is one device-log entry — the analog of a dmesg Xid line. The
// campaign layer classifies runs with unconsumed log events as potential
// DUEs (Table V).
type LogEvent struct {
	Kind string // e.g. "Xid"
	Msg  string
}

// Device is one simulated GPU.
type Device struct {
	Family sass.Family
	NumSMs int

	// Workers is the number of goroutines Run may use to execute
	// independent thread blocks concurrently, mirroring how real hardware
	// runs blocks across SMs. 0 or 1 selects the sequential reference
	// schedule. Instrumented launches always run sequentially regardless:
	// injection and profiling tools count dynamic instructions globally, so
	// callback order is part of the injection semantics. The effective
	// worker count is capped at NumSMs so every SM's clock has exactly one
	// owner (see runParallel).
	Workers int

	// InterpretTrampolines selects the legacy trampoline path that
	// interprets the 28 canned ALU instructions on the scratch warp instead
	// of charging them arithmetically. The two paths are observably
	// identical — the trampoline's architectural effects never leave the
	// scratch warp — so this exists only for the differential tests that
	// prove it.
	InterpretTrampolines bool

	// DisableDisarm makes InstrCtx.Disarm a no-op, keeping full callback
	// dispatch for the remainder of every launch. Like
	// InterpretTrampolines, this exists for the differential tests that
	// prove disarmed execution is observably identical to armed execution.
	DisableDisarm bool

	// NoXlate disables the block-level translation engine, forcing every
	// launch through the legacy interpreter dispatch. The zero value keeps
	// translation on: translated execution is bit-identical to interpreted
	// execution (the differential tests prove it), just faster. The flag
	// exists as the escape hatch and as the oracle side of those tests.
	NoXlate bool

	// LegacySched pins every warp to the legacy per-issue min-PC scan
	// instead of the warp-split scheduler. The zero value keeps the split
	// scheduler on: issue order, LaunchStats, trap sites, and modeled
	// clocks are bit-identical either way (the differential tests prove
	// it), the scan is just O(lanes) per diverged issue. The flag exists as
	// the escape hatch and as the oracle side of those tests; the
	// NVBITFI_LEGACY_SCHED environment variable forces it process-wide.
	LegacySched bool

	// Mem is global device memory.
	Mem *Memory

	// cancelCtx, when non-nil, is polled during launches (every
	// cancelPollStride warp instructions, and at every launch boundary): a
	// cancelled context makes the running launch trap with TrapCancelled
	// instead of draining its instruction budget. Set it with SetCancel
	// before launching; campaign experiment loops use it to abandon
	// in-flight runs on coordinator shutdown.
	cancelCtx context.Context

	log      []LogEvent
	smClocks []uint64   // per-SM executed-instruction counters (CS2R/SR_CLOCK)
	atomMu   sync.Mutex // serializes global-memory atomics across parallel blocks

	// planMemo caches planFor results by kernel identity, so repeated
	// launches of the same decoded kernel skip the content hash that keys
	// the process-wide plan cache. Like the rest of the device state it is
	// touched only from the goroutine driving Run/Restore.
	planMemo map[*sass.Kernel]*xplan
}

// SetCancel arms launch cancellation: once ctx is done, any running or
// future launch on this device traps promptly with TrapCancelled. Call it
// before launching; the field must not be changed while a launch is
// executing.
func (d *Device) SetCancel(ctx context.Context) { d.cancelCtx = ctx }

// envLegacySched forces the legacy min-PC scan scheduler process-wide; CI
// uses it to run the differential gates against the oracle scheduler
// without a code change.
var envLegacySched = os.Getenv("NVBITFI_LEGACY_SCHED") != ""

// legacySched reports whether warps on this device use the legacy min-PC
// scan scheduler.
func (d *Device) legacySched() bool { return d.LegacySched || envLegacySched }

// NewDevice creates a device of the given family with numSMs streaming
// multiprocessors.
func NewDevice(family sass.Family, numSMs int) (*Device, error) {
	if numSMs <= 0 {
		return nil, fmt.Errorf("gpu: device needs at least one SM, got %d", numSMs)
	}
	return &Device{
		Family:   family,
		NumSMs:   numSMs,
		Mem:      NewMemory(),
		smClocks: make([]uint64, numSMs),
	}, nil
}

// LogEvents returns the accumulated device log.
func (d *Device) LogEvents() []LogEvent { return d.log }

// ClearLog empties the device log (read-and-clear, like dmesg -c).
func (d *Device) ClearLog() []LogEvent {
	ev := d.log
	d.log = nil
	return ev
}

// SetLog replaces the device log wholesale — the restore/replay path's hook
// for installing a snapshot's log, or the recorded end-of-run log when a
// replay exits early.
func (d *Device) SetLog(ev []LogEvent) {
	d.log = append([]LogEvent(nil), ev...)
}

func (d *Device) logf(kind, format string, args ...any) {
	d.log = append(d.log, LogEvent{Kind: kind, Msg: fmt.Sprintf(format, args...)})
}

// Callback is an instrumentation function inserted before or after an
// instruction — the analog of an NVBit injected device function. It runs on
// every dynamic execution of that instruction, once per warp, with the
// per-lane state accessible through the context.
type Callback func(*InstrCtx)

// ExecKernel is an executable kernel: the instruction list plus any
// instrumentation attached by the NVBit layer. A nil Before/After means the
// kernel runs unmodified, with no per-instruction dispatch overhead.
type ExecKernel struct {
	K *sass.Kernel

	// Before and After hold instrumentation callbacks indexed by
	// instruction; either may be nil (uninstrumented).
	Before [][]Callback
	After  [][]Callback

	// Step, when non-nil, runs after every executed instruction — the
	// debugger single-step hook (cuda-gdb analog) used by the GPU-Qin-style
	// baseline injector.
	Step Callback

	regHiOnce sync.Once
	regHi     int32
}

// Instrumented reports whether any instrumentation is attached.
func (ek *ExecKernel) Instrumented() bool {
	return ek.Before != nil || ek.After != nil || ek.Step != nil
}

// writtenRegHi returns an exclusive upper bound on the register indices this
// kernel's instructions can write, from a static scan of destination
// operands. It seeds warp.dirtyRegs so reset clears only the written prefix
// of each lane's register file. The scan over-approximates by 3 registers to
// cover pair and 128-bit destinations; a 128-bit destination near the top of
// the file wraps base+i through the uint8 register id and can touch low
// registers, so those force the full file.
func (ek *ExecKernel) writtenRegHi() int32 {
	ek.regHiOnce.Do(func() {
		hi := int32(0)
		for i := range ek.K.Instrs {
			for _, o := range ek.K.Instrs[i].Dst {
				if o.Kind != sass.OpdReg || o.Reg == sass.RZ {
					continue
				}
				if o.Reg >= sass.RZ-3 {
					hi = sass.NumRegs
					continue
				}
				if n := int32(o.Reg) + 4; n > hi {
					hi = n
				}
			}
		}
		ek.regHi = hi
	})
	return ek.regHi
}

// Dim3 is a grid or block shape.
type Dim3 struct{ X, Y, Z int }

// Count returns the total element count of the shape.
func (d Dim3) Count() int {
	return d.X * d.Y * d.Z
}

// Launch describes one kernel launch.
type Launch struct {
	Kernel      *ExecKernel
	Grid, Block Dim3
	SharedBytes int      // dynamic shared memory on top of the kernel's static amount
	Params      []uint32 // 4-byte parameter words, in kernel parameter order
	Budget      uint64   // max warp-instructions; 0 means DefaultBudget

	// disarmed is set by InstrCtx.Disarm: the remainder of this launch
	// skips callback dispatch while keeping trampoline accounting.
	// Instrumented launches always run sequentially, so no lock is needed.
	disarmed bool
}

// LaunchStats reports execution counts for a completed (or trapped) launch.
type LaunchStats struct {
	WarpInstrs   uint64 // warp-level instructions issued
	ThreadInstrs uint64 // thread-level executions (active, guard-passing lanes)
	// TrampolineInstrs counts instrumentation-trampoline instructions
	// (TrampolineLen per callback site per dynamic execution) — tool
	// overhead, charged to neither the launch budget nor the profile.
	TrampolineInstrs uint64
	Blocks           int
}

// InstrCtx is the view an instrumentation callback gets of the executing
// instruction: identification (kernel, instruction index, SM, warp), the
// exec mask, and read/write access to the per-lane architectural state.
// It mirrors what NVBit passes to injected device functions.
type InstrCtx struct {
	Dev        *Device
	Kernel     *sass.Kernel
	InstrIdx   int
	Instr      *sass.Instr
	SMID       int
	BlockIdx   Dim3
	BlockLin   int
	WarpID     int    // warp index within the block
	ActiveMask uint32 // lanes executing this instruction (guard-passing)

	w   *warp
	blk *blockCtx
}

// LaneActive reports whether lane participates in this execution.
func (c *InstrCtx) LaneActive(lane int) bool { return c.ActiveMask&(1<<uint(lane)) != 0 }

// Disarm tells the engine this tool is done with the current launch: the
// remaining instructions run through a callback-free loop that keeps
// trampoline *accounting* — modeled time, budgets, and LaunchStats are
// unchanged — but skips closure dispatch. A transient injector calls this
// right after corrupting its one dynamic instruction, when a G_GPPR
// instrumentation still covers nearly every instruction after the fault
// point. Callbacks already scheduled for the current instruction still run.
// Disarm is per-launch; the next launch of the same kernel is armed again.
func (c *InstrCtx) Disarm() {
	if c.Dev.DisableDisarm {
		return
	}
	c.blk.launch.disarmed = true
}

// ReadReg returns lane's general-purpose register r.
func (c *InstrCtx) ReadReg(lane int, r sass.RegID) uint32 {
	if r == sass.RZ {
		return 0
	}
	return c.w.regs[lane][r]
}

// WriteReg sets lane's general-purpose register r. Writes to RZ are
// discarded, as in hardware.
func (c *InstrCtx) WriteReg(lane int, r sass.RegID, v uint32) {
	if r == sass.RZ {
		return
	}
	// Instrumentation may write registers the kernel's static destination
	// scan never sees (fault injection picks arbitrary targets); widen the
	// warp's dirty window so reset still restores a fully zeroed file.
	if int32(r) >= c.w.dirtyRegs {
		c.w.dirtyRegs = int32(r) + 1
	}
	c.w.regs[lane][r] = v
}

// ReadPred returns lane's predicate register p.
func (c *InstrCtx) ReadPred(lane int, p sass.PredID) bool {
	if p == sass.PT {
		return true
	}
	return c.w.preds[lane][p]
}

// WritePred sets lane's predicate register p. Writes to PT are discarded.
func (c *InstrCtx) WritePred(lane int, p sass.PredID, v bool) {
	if p == sass.PT {
		return
	}
	c.w.preds[lane][p] = v
}

// ThreadIdx returns lane's thread index within the block.
func (c *InstrCtx) ThreadIdx(lane int) Dim3 { return c.w.tid[lane] }

// GlobalThreadLinear returns lane's linear thread id across the whole grid.
func (c *InstrCtx) GlobalThreadLinear(lane int) int64 {
	blockSize := c.blk.launch.Block.Count()
	return int64(c.BlockLin)*int64(blockSize) + int64(c.WarpID)*WarpSize + int64(lane)
}

// LaneCount returns the number of set bits in the exec mask.
func (c *InstrCtx) LaneCount() int {
	return popcount(c.ActiveMask)
}

func popcount(m uint32) int { return bits.OnesCount32(m) }
