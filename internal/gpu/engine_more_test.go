package gpu

import (
	"encoding/binary"
	"testing"

	"repro/internal/sass"
)

// TestPartialWarp: a block whose size is not a multiple of 32 runs only the
// live lanes.
func TestPartialWarp(t *testing.T) {
	const src = `
.kernel k
.param outptr
    S2R R0, SR_TID.X
    SHL R1, R0, 0x2
    IADD R2, R1, c0[outptr]
    IADD R3, R0, 0x1
    STG.32 [R2], R3
    EXIT
`
	d := newTestDevice(t)
	k := mustKernel(t, src, "k")
	out, err := d.Mem.Alloc(4 * 64)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := d.Run(&Launch{
		Kernel: &ExecKernel{K: k},
		Grid:   Dim3{X: 1, Y: 1, Z: 1},
		Block:  Dim3{X: 40, Y: 1, Z: 1}, // 1 full warp + 8 live lanes
		Params: []uint32{out},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ThreadInstrs != 40*6 {
		t.Fatalf("thread instrs = %d, want %d", stats.ThreadInstrs, 40*6)
	}
	b, err := d.Mem.ReadBytes(out, 4*64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		got := binary.LittleEndian.Uint32(b[4*i:])
		want := uint32(0)
		if i < 40 {
			want = uint32(i + 1)
		}
		if got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

// TestMultiDimLaunch: 2D/3D thread and block indices resolve correctly.
func TestMultiDimLaunch(t *testing.T) {
	const src = `
.kernel k
.param outptr
    S2R R0, SR_TID.X
    S2R R1, SR_TID.Y
    S2R R2, SR_TID.Z
    S2R R3, SR_CTAID.X
    S2R R4, SR_CTAID.Y
    // linear = ((ctaid.y*2+ctaid.x)*8) + tid.z*4 + tid.y*2 + tid.x
    MOV R5, 0x2
    IMAD R6, R4, R5, R3
    SHL R6, R6, 0x3
    SHL R7, R2, 0x2
    IADD R6, R6, R7
    SHL R7, R1, 0x1
    IADD R6, R6, R7
    IADD R6, R6, R0
    SHL R7, R6, 0x2
    IADD R8, R7, c0[outptr]
    STG.32 [R8], R6
    EXIT
`
	d := newTestDevice(t)
	k := mustKernel(t, src, "k")
	const total = 2 * 2 * (2 * 2 * 2)
	out, err := d.Mem.Alloc(4 * total)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(&Launch{
		Kernel: &ExecKernel{K: k},
		Grid:   Dim3{X: 2, Y: 2, Z: 1},
		Block:  Dim3{X: 2, Y: 2, Z: 2},
		Params: []uint32{out},
	}); err != nil {
		t.Fatal(err)
	}
	b, err := d.Mem.ReadBytes(out, 4*total)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		if got := binary.LittleEndian.Uint32(b[4*i:]); got != uint32(i) {
			t.Fatalf("out[%d] = %d", i, got)
		}
	}
}

// TestSMRoundRobin: blocks land on SMs round-robin, observable via SR_SMID.
func TestSMRoundRobin(t *testing.T) {
	const src = `
.kernel k
.param outptr
    S2R R0, SR_CTAID.X
    S2R R1, SR_SMID
    SHL R2, R0, 0x2
    IADD R3, R2, c0[outptr]
    STG.32 [R3], R1
    EXIT
`
	d, err := NewDevice(sass.FamilyVolta, 4)
	if err != nil {
		t.Fatal(err)
	}
	k := mustKernel(t, src, "k")
	out, err := d.Mem.Alloc(4 * 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(&Launch{
		Kernel: &ExecKernel{K: k},
		Grid:   Dim3{X: 10, Y: 1, Z: 1},
		Block:  Dim3{X: 1, Y: 1, Z: 1},
		Params: []uint32{out},
	}); err != nil {
		t.Fatal(err)
	}
	b, err := d.Mem.ReadBytes(out, 4*10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if got := binary.LittleEndian.Uint32(b[4*i:]); got != uint32(i%4) {
			t.Fatalf("block %d on SM %d, want %d", i, got, i%4)
		}
	}
}

// TestCallRet: subroutine call and return, including nesting.
func TestCallRet(t *testing.T) {
	const src = `
.kernel k
.param outptr
    MOV R10, 0x1
    CALL addtwo
    CALL addtwo
    MOV R1, c0[outptr]
    STG.32 [R1], R10
    EXIT
addtwo:
    IADD R10, R10, 0x1
    CALL addone
    RET
addone:
    IADD R10, R10, 0x1
    RET
`
	d := newTestDevice(t)
	k := mustKernel(t, src, "k")
	out, err := d.Mem.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(&Launch{
		Kernel: &ExecKernel{K: k},
		Grid:   Dim3{X: 1, Y: 1, Z: 1},
		Block:  Dim3{X: 32, Y: 1, Z: 1},
		Params: []uint32{out},
	}); err != nil {
		t.Fatal(err)
	}
	b, _ := d.Mem.ReadBytes(out, 4)
	if got := binary.LittleEndian.Uint32(b); got != 5 {
		t.Fatalf("call/ret result = %d, want 5", got)
	}
}

// TestRetWithoutCall traps with a call-stack error.
func TestRetWithoutCall(t *testing.T) {
	d := newTestDevice(t)
	k := mustKernel(t, ".kernel k\nRET\n", "k")
	_, err := d.Run(&Launch{
		Kernel: &ExecKernel{K: k},
		Grid:   Dim3{X: 1, Y: 1, Z: 1},
		Block:  Dim3{X: 32, Y: 1, Z: 1},
	})
	trap, ok := AsTrap(err)
	if !ok || trap.Kind != TrapCallStack {
		t.Fatalf("RET without CALL: %v", err)
	}
}

// TestBRXWildJump: an indirect branch through a corrupted register traps
// with an illegal-instruction-address error — the DUE path a fault in a
// branch-target register produces.
func TestBRXWildJump(t *testing.T) {
	d := newTestDevice(t)
	k := mustKernel(t, ".kernel k\nMOV R1, 0x7fffffff\nBRX R1\nEXIT\n", "k")
	_, err := d.Run(&Launch{
		Kernel: &ExecKernel{K: k},
		Grid:   Dim3{X: 1, Y: 1, Z: 1},
		Block:  Dim3{X: 32, Y: 1, Z: 1},
	})
	trap, ok := AsTrap(err)
	if !ok || trap.Kind != TrapBadPC {
		t.Fatalf("wild BRX: %v", err)
	}
}

// TestBRXValidJump: BRX to a legitimate instruction index works.
func TestBRXValidJump(t *testing.T) {
	const src = `
.kernel k
.param outptr
    MOV R1, 0x4          // index of the "good" MOV below
    BRX R1
    MOV R10, 0xbad
    EXIT
    MOV R10, 0x60d
    MOV R2, c0[outptr]
    STG.32 [R2], R10
    EXIT
`
	d := newTestDevice(t)
	k := mustKernel(t, src, "k")
	out, _ := d.Mem.Alloc(4)
	if _, err := d.Run(&Launch{
		Kernel: &ExecKernel{K: k},
		Grid:   Dim3{X: 1, Y: 1, Z: 1},
		Block:  Dim3{X: 32, Y: 1, Z: 1},
		Params: []uint32{out},
	}); err != nil {
		t.Fatal(err)
	}
	b, _ := d.Mem.ReadBytes(out, 4)
	if got := binary.LittleEndian.Uint32(b); got != 0x60d {
		t.Fatalf("BRX landed wrong: R10 = 0x%x", got)
	}
}

// TestSharedMemoryBounds: shared accesses outside the window trap.
func TestSharedMemoryBounds(t *testing.T) {
	const src = `
.kernel k
.shared 64
    MOV R1, 0x40
    LDS.32 R2, [R1]
    EXIT
`
	d := newTestDevice(t)
	k := mustKernel(t, src, "k")
	_, err := d.Run(&Launch{
		Kernel: &ExecKernel{K: k},
		Grid:   Dim3{X: 1, Y: 1, Z: 1},
		Block:  Dim3{X: 32, Y: 1, Z: 1},
	})
	trap, ok := AsTrap(err)
	if !ok || trap.Kind != TrapSharedBounds {
		t.Fatalf("shared OOB: %v", err)
	}
}

// TestDynamicSharedMemory: launch-time shared memory extends the window.
func TestDynamicSharedMemory(t *testing.T) {
	const src = `
.kernel k
.shared 64
    MOV R1, 0x40
    MOV R2, 0x2a
    STS.32 [R1], R2
    LDS.32 R3, [R1]
    EXIT
`
	d := newTestDevice(t)
	k := mustKernel(t, src, "k")
	if _, err := d.Run(&Launch{
		Kernel:      &ExecKernel{K: k},
		Grid:        Dim3{X: 1, Y: 1, Z: 1},
		Block:       Dim3{X: 32, Y: 1, Z: 1},
		SharedBytes: 64, // static 64 + dynamic 64 makes offset 0x40 legal
	}); err != nil {
		t.Fatalf("dynamic shared run: %v", err)
	}
}

// TestLocalMemory: per-thread local memory is private.
func TestLocalMemory(t *testing.T) {
	const src = `
.kernel k
.param outptr
    S2R R0, SR_TID.X
    STL.32 [RZ], R0        // each thread stores its id at local 0
    LDL.32 R1, [RZ]
    SHL R2, R0, 0x2
    IADD R3, R2, c0[outptr]
    STG.32 [R3], R1
    EXIT
`
	d := newTestDevice(t)
	k := mustKernel(t, src, "k")
	out, _ := d.Mem.Alloc(4 * 32)
	if _, err := d.Run(&Launch{
		Kernel: &ExecKernel{K: k},
		Grid:   Dim3{X: 1, Y: 1, Z: 1},
		Block:  Dim3{X: 32, Y: 1, Z: 1},
		Params: []uint32{out},
	}); err != nil {
		t.Fatal(err)
	}
	b, _ := d.Mem.ReadBytes(out, 4*32)
	for i := 0; i < 32; i++ {
		if got := binary.LittleEndian.Uint32(b[4*i:]); got != uint32(i) {
			t.Fatalf("local memory not private: thread %d read %d", i, got)
		}
	}
}

// TestWideLoads: 64- and 128-bit loads fill consecutive registers.
func TestWideLoads(t *testing.T) {
	const src = `
.kernel k
.param inptr
    MOV R1, c0[inptr]
    LDG.64 R4, [R1]
    LDG.128 R8, [R1]
    EXIT
`
	d := newTestDevice(t)
	p := sass.MustAssemble("m", src)
	k := p.Kernels[0]
	in, _ := d.Mem.Alloc(16)
	vals := []uint32{0x11111111, 0x22222222, 0x33333333, 0x44444444}
	buf := make([]byte, 16)
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[4*i:], v)
	}
	if err := d.Mem.WriteBytes(in, buf); err != nil {
		t.Fatal(err)
	}
	var snap [16]uint32
	ek := &ExecKernel{K: k}
	ek.Before = make([][]Callback, len(k.Instrs))
	ek.Before[len(k.Instrs)-1] = []Callback{func(c *InstrCtx) {
		for r := 0; r < 16; r++ {
			snap[r] = c.ReadReg(0, sass.RegID(r))
		}
	}}
	if _, err := d.Run(&Launch{
		Kernel: ek,
		Grid:   Dim3{X: 1, Y: 1, Z: 1},
		Block:  Dim3{X: 32, Y: 1, Z: 1},
		Params: []uint32{in},
	}); err != nil {
		t.Fatal(err)
	}
	if snap[4] != vals[0] || snap[5] != vals[1] {
		t.Fatalf("LDG.64 = %x %x", snap[4], snap[5])
	}
	for i := 0; i < 4; i++ {
		if snap[8+i] != vals[i] {
			t.Fatalf("LDG.128 reg %d = %x, want %x", 8+i, snap[8+i], vals[i])
		}
	}
}

// TestAtomics: ATOM returns old values; RED accumulates; CAS and EXCH work.
func TestAtomics(t *testing.T) {
	const src = `
.kernel k
.param ptr
    S2R R0, SR_LANEID
    MOV R1, c0[ptr]
    MOV R2, 0x1
    ATOMG.ADD R3, [R1], R2        // counter += 1 per lane, R3 = old
    RED.ADD [R1+0x4], R2          // second counter += 1 per lane
    ATOMG.MAX R4, [R1+0x8], R0    // max of lane ids
    ATOMG.EXCH R5, [R1+0xc], R0   // last lane's id remains
    MOV R6, 0x0
    MOV R7, 0x63
    ATOMG.CAS R8, [R1+0x10], R6, R7 // only lane seeing 0 swaps in 99
    EXIT
`
	d := newTestDevice(t)
	k := mustKernel(t, src, "k")
	ptr, _ := d.Mem.Alloc(32)
	if _, err := d.Run(&Launch{
		Kernel: &ExecKernel{K: k},
		Grid:   Dim3{X: 1, Y: 1, Z: 1},
		Block:  Dim3{X: 32, Y: 1, Z: 1},
		Params: []uint32{ptr},
	}); err != nil {
		t.Fatal(err)
	}
	b, _ := d.Mem.ReadBytes(ptr, 32)
	word := func(i int) uint32 { return binary.LittleEndian.Uint32(b[4*i:]) }
	if word(0) != 32 {
		t.Errorf("ATOM.ADD counter = %d, want 32", word(0))
	}
	if word(1) != 32 {
		t.Errorf("RED.ADD counter = %d, want 32", word(1))
	}
	if word(2) != 31 {
		t.Errorf("ATOM.MAX = %d, want 31", word(2))
	}
	if word(3) != 31 {
		t.Errorf("ATOM.EXCH final = %d, want 31 (lane order)", word(3))
	}
	if word(4) != 99 {
		t.Errorf("ATOM.CAS = %d, want 99", word(4))
	}
}

// TestInstrumentationTrampolineCost: instrumented execution is
// substantially slower than native, and does not change either the launch
// statistics or the computation.
func TestInstrumentationTrampolineCost(t *testing.T) {
	src := saxpySrc
	run := func(instrument bool) (LaunchStats, []byte) {
		d := newTestDevice(t)
		k := mustKernel(t, src, "saxpy")
		const n = 512
		xp, _ := d.Mem.Alloc(4 * n)
		yp, _ := d.Mem.Alloc(4 * n)
		x := make([]float32, n)
		y := make([]float32, n)
		for i := range x {
			x[i], y[i] = float32(i), 1
		}
		_ = d.Mem.WriteBytes(xp, f32slice(x))
		_ = d.Mem.WriteBytes(yp, f32slice(y))
		ek := &ExecKernel{K: k}
		if instrument {
			ek.After = make([][]Callback, len(k.Instrs))
			for i := range k.Instrs {
				ek.After[i] = []Callback{func(*InstrCtx) {}}
			}
		}
		stats, err := d.Run(&Launch{
			Kernel: ek,
			Grid:   Dim3{X: n / 128, Y: 1, Z: 1},
			Block:  Dim3{X: 128, Y: 1, Z: 1},
			Params: []uint32{n, f32bits(2), xp, yp},
		})
		if err != nil {
			t.Fatal(err)
		}
		out, _ := d.Mem.ReadBytes(yp, 4*n)
		return stats, out
	}
	nativeStats, nativeOut := run(false)
	instrStats, instrOut := run(true)
	// Target-program counters are unchanged by instrumentation; only the
	// trampoline counter (tool overhead) differs, by exactly TrampolineLen
	// per callback site per dynamic execution — here one After per
	// instruction, so TrampolineLen per warp instruction issued.
	if nativeStats.TrampolineInstrs != 0 {
		t.Errorf("native run charged %d trampoline instructions", nativeStats.TrampolineInstrs)
	}
	if want := instrStats.WarpInstrs * TrampolineLen; instrStats.TrampolineInstrs != want {
		t.Errorf("instrumented run charged %d trampoline instructions, want %d",
			instrStats.TrampolineInstrs, want)
	}
	instrStats.TrampolineInstrs = 0
	if nativeStats != instrStats {
		t.Errorf("instrumentation changed launch stats: %+v vs %+v", nativeStats, instrStats)
	}
	if string(nativeOut) != string(instrOut) {
		t.Error("instrumentation changed the computation")
	}
}

func f32bits(f float32) uint32 {
	return binary.LittleEndian.Uint32(f32slice([]float32{f}))
}

// TestExitedThreadsReleaseBarrier: Volta semantics — threads (and whole
// warps) that have exited do not block BAR.SYNC.
func TestExitedThreadsReleaseBarrier(t *testing.T) {
	const src = `
.kernel k
    S2R R0, SR_WARPID
    ISETP.NE.AND P0, R0, 0x0, PT
@P0 EXIT
    BAR.SYNC
    EXIT
`
	d := newTestDevice(t)
	k := mustKernel(t, src, "k")
	if _, err := d.Run(&Launch{
		Kernel: &ExecKernel{K: k},
		Grid:   Dim3{X: 1, Y: 1, Z: 1},
		Block:  Dim3{X: 64, Y: 1, Z: 1}, // warp 1 exits before the barrier
		Budget: 100000,
	}); err != nil {
		t.Fatalf("exited warp blocked the barrier: %v", err)
	}
}

// TestDivergentBarrier: a BAR reached with part of the warp diverged (not
// exited) can never be satisfied and is reported as a hang-class trap.
func TestDivergentBarrier(t *testing.T) {
	const src = `
.kernel k
    S2R R0, SR_TID.X
    ISETP.GE.AND P0, R0, 0x10, PT
@P0 BRA skip
    BAR.SYNC
skip:
    EXIT
`
	d := newTestDevice(t)
	k := mustKernel(t, src, "k")
	_, err := d.Run(&Launch{
		Kernel: &ExecKernel{K: k},
		Grid:   Dim3{X: 1, Y: 1, Z: 1},
		Block:  Dim3{X: 32, Y: 1, Z: 1},
		Budget: 100000,
	})
	trap, ok := AsTrap(err)
	if !ok || trap.Kind != TrapInstrLimit {
		t.Fatalf("divergent barrier: %v", err)
	}
}

// TestBarrierDeadlockAcrossWarps: a warp waiting at a barrier while another
// warp spins forever is caught by the budget monitor.
func TestBarrierDeadlockAcrossWarps(t *testing.T) {
	const src = `
.kernel k
    S2R R0, SR_WARPID
    ISETP.NE.AND P0, R0, 0x0, PT
@P0 BRA spin
    BAR.SYNC
    EXIT
spin:
    BRA spin
`
	d := newTestDevice(t)
	k := mustKernel(t, src, "k")
	_, err := d.Run(&Launch{
		Kernel: &ExecKernel{K: k},
		Grid:   Dim3{X: 1, Y: 1, Z: 1},
		Block:  Dim3{X: 64, Y: 1, Z: 1},
		Budget: 100000,
	})
	trap, ok := AsTrap(err)
	if !ok || trap.Kind != TrapInstrLimit {
		t.Fatalf("cross-warp barrier deadlock: %v", err)
	}
}

// TestLaunchValidation: bad launch shapes are synchronous errors, not traps.
func TestLaunchValidation(t *testing.T) {
	d := newTestDevice(t)
	k := mustKernel(t, ".kernel k\nEXIT\n", "k")
	cases := []Launch{
		{Kernel: &ExecKernel{K: k}, Grid: Dim3{}, Block: Dim3{X: 32, Y: 1, Z: 1}},
		{Kernel: &ExecKernel{K: k}, Grid: Dim3{X: 1, Y: 1, Z: 1}, Block: Dim3{}},
		{Kernel: &ExecKernel{K: k}, Grid: Dim3{X: 1, Y: 1, Z: 1}, Block: Dim3{X: 2048, Y: 1, Z: 1}},
		{Kernel: nil},
		{Kernel: &ExecKernel{K: k}, Grid: Dim3{X: 1, Y: 1, Z: 1}, Block: Dim3{X: 32, Y: 1, Z: 1},
			Params: []uint32{1}}, // kernel has no params
	}
	for i, l := range cases {
		l := l
		if _, err := d.Run(&l); err == nil {
			t.Errorf("launch case %d accepted", i)
		} else if _, isTrap := AsTrap(err); isTrap {
			t.Errorf("launch case %d produced a trap instead of an API error", i)
		}
	}
}

// TestDeviceValidation: devices need at least one SM.
func TestDeviceValidation(t *testing.T) {
	if _, err := NewDevice(sass.FamilyVolta, 0); err == nil {
		t.Error("zero-SM device accepted")
	}
	if _, err := NewDevice(sass.FamilyVolta, -1); err == nil {
		t.Error("negative-SM device accepted")
	}
}

// TestDeviceLogReadAndClear: the dmesg analog accumulates and clears.
func TestDeviceLogReadAndClear(t *testing.T) {
	d := newTestDevice(t)
	k := mustKernel(t, ".kernel k\nMOV R1, 0x4\nLDG.32 R2, [R1]\nEXIT\n", "k")
	_, _ = d.Run(&Launch{
		Kernel: &ExecKernel{K: k},
		Grid:   Dim3{X: 1, Y: 1, Z: 1},
		Block:  Dim3{X: 32, Y: 1, Z: 1},
	})
	if len(d.LogEvents()) == 0 {
		t.Fatal("no log events after a trap")
	}
	ev := d.ClearLog()
	if len(ev) == 0 || len(d.LogEvents()) != 0 {
		t.Fatal("ClearLog did not drain the log")
	}
}
