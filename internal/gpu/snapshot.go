package gpu

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/sass"
)

// This file is the checkpoint engine: pausable launches (LaunchRun),
// whole-device architectural snapshots (Device.Snapshot / Device.Restore),
// and the canonical state digest used for early-exit re-convergence
// detection. The invariant everything here serves: a run restored from a
// snapshot executes the exact instruction sequence the snapshotted run
// would have executed, bit for bit — pausing, snapshotting, and restoring
// are invisible to the architecture.

// errLaunchPaused is the internal sentinel the warp loops return when the
// pause controller fires; LaunchRun.Resume translates it into (paused=true).
var errLaunchPaused = errors.New("gpu: launch paused")

// pauseCtl arms a launch to stop after a fixed number of issued warp
// instructions. remaining < 0 means disarmed (run freely).
type pauseCtl struct {
	remaining int64
}

// tick consumes one issued warp instruction and reports whether the run
// must pause before issuing the next. Firing disarms the controller until
// the next Resume re-arms it.
func (p *pauseCtl) tick() bool {
	if p.remaining < 0 {
		return false
	}
	p.remaining--
	if p.remaining == 0 {
		p.remaining = -1
		return true
	}
	return false
}

// LaunchRun is a kernel launch that can be paused at exact dynamic
// warp-instruction boundaries, snapshotted, and resumed. It always uses the
// sequential block schedule: pause positions are defined in terms of the
// deterministic global instruction order, which the parallel scheduler does
// not preserve instruction for instruction.
type LaunchRun struct {
	dev       *Device
	launch    Launch // private copy: the disarmed flag is per-run state
	constBank []byte
	plan      *xplan
	budget    budgetCounter
	stats     LaunchStats
	pause     pauseCtl
	counts    []uint64
	blk       *blockCtx
	blockLin  int
	finished  bool
	err       error
}

// BeginRun validates a launch exactly like Run and returns it paused before
// the first instruction. Call Resume to execute.
func (d *Device) BeginRun(l *Launch) (*LaunchRun, error) {
	if l.Kernel == nil || l.Kernel.K == nil {
		return nil, fmt.Errorf("gpu: launch with no kernel")
	}
	k := l.Kernel.K
	if l.Grid.Count() <= 0 || l.Block.Count() <= 0 {
		return nil, fmt.Errorf("gpu: launch of %q with empty grid or block", k.Name)
	}
	if l.Block.Count() > 1024 {
		return nil, fmt.Errorf("gpu: block of %d threads exceeds the 1024-thread limit", l.Block.Count())
	}
	if len(l.Params) != len(k.Params) {
		return nil, fmt.Errorf("gpu: kernel %q expects %d parameter words, got %d",
			k.Name, len(k.Params), len(l.Params))
	}
	budget := l.Budget
	if budget == 0 {
		budget = DefaultBudget
	}
	if budget > math.MaxInt64 {
		budget = math.MaxInt64
	}
	r := &LaunchRun{dev: d, launch: *l}
	r.constBank = buildConstBank(&r.launch)
	r.plan = d.planFor(k)
	r.budget.remaining = int64(budget)
	r.budget.ctx = d.cancelCtx
	r.budget.checkIn = cancelPollStride
	r.pause.remaining = -1
	return r, nil
}

// EnableInstrExecCounts makes the run tally thread-level executions per
// static instruction (the same quantity the transient injector counts when
// walking to its target). Must be called before the first Resume.
func (r *LaunchRun) EnableInstrExecCounts() {
	r.counts = make([]uint64, len(r.launch.Kernel.K.Instrs))
}

// InstrExecCounts returns the live per-static-instruction tallies (nil
// unless EnableInstrExecCounts was called).
func (r *LaunchRun) InstrExecCounts() []uint64 { return r.counts }

// Resume executes up to pauseIn warp instructions (all remaining when
// pauseIn < 0) and reports whether the run paused (true) or finished
// (false). A finished run's error — nil, or the trap that ended it — comes
// back alongside, exactly as Device.Run would have returned it, and the
// trap is logged to the device log the same way.
func (r *LaunchRun) Resume(pauseIn int64) (paused bool, err error) {
	if r.finished {
		return false, r.err
	}
	if pauseIn == 0 {
		return true, nil
	}
	r.pause.remaining = pauseIn
	for {
		if r.blk == nil {
			if r.blockLin >= r.launch.Grid.Count() {
				r.finish(nil)
				return false, nil
			}
			r.blk = newBlockCtx(r.dev, &r.launch, r.constBank, r.plan, blockIdxOf(r.blockLin, r.launch.Grid), r.blockLin)
			r.blk.pause = &r.pause
			r.blk.counts = r.counts
		}
		err := r.blk.run(&r.budget, &r.stats)
		if err == errLaunchPaused {
			return true, nil
		}
		if err != nil {
			r.finish(err)
			return false, err
		}
		r.stats.Blocks++
		r.blockLin++
		r.blk.release()
		r.blk = nil
	}
}

func (r *LaunchRun) finish(err error) {
	r.finished = true
	r.err = err
	r.pause.remaining = -1
	if t, ok := AsTrap(err); ok {
		r.dev.logf("Xid", "%s", t.Error())
	}
}

// Stats returns the execution counts so far. For a finished run they equal
// what Device.Run would have reported.
func (r *LaunchRun) Stats() LaunchStats { return r.stats }

// Finished reports whether the run has completed or trapped.
func (r *LaunchRun) Finished() bool { return r.finished }

// Err returns the run's final error (nil until Finished).
func (r *LaunchRun) Err() error { return r.err }

// BudgetRemaining returns the warp instructions left in the launch budget.
func (r *LaunchRun) BudgetRemaining() int64 { return r.budget.remaining }

// SetBudgetRemaining overrides the remaining launch budget — the restore
// path uses it to give a restored run exactly the budget its from-scratch
// twin would have left at the same position.
func (r *LaunchRun) SetBudgetRemaining(n int64) { r.budget.remaining = n }

// SetExecKernel swaps the kernel the remaining instructions execute
// through — the hook that attaches instrumentation to a run restored
// mid-launch. The replacement must carry the same instruction stream; it is
// validated by kernel name and instruction count because the restored
// module may be a different (content-identical) decode of the same kernel.
func (r *LaunchRun) SetExecKernel(ek *ExecKernel) error {
	cur := r.launch.Kernel.K
	if ek == nil || ek.K == nil || ek.K.Name != cur.Name || len(ek.K.Instrs) != len(cur.Instrs) {
		return fmt.Errorf("gpu: SetExecKernel: kernel does not match the in-flight launch")
	}
	r.launch.Kernel = ek
	// The replacement may be a different decode or an instrumented rewrite of
	// the kernel: re-derive the plan from the new content (cache hit when the
	// content is unchanged).
	r.plan = r.dev.planFor(ek.K)
	if r.blk != nil {
		r.blk.ek = ek
		r.blk.plan = r.plan
	}
	return nil
}

func blockIdxOf(lin int, g Dim3) Dim3 {
	return Dim3{X: lin % g.X, Y: (lin / g.X) % g.Y, Z: lin / (g.X * g.Y)}
}

// Snapshot is an immutable copy of a device's full architectural state —
// global memory (copy-on-write: clean pages are shared with the live
// device and all forks), SM clocks, the device log, and, when taken
// mid-launch via LaunchRun.Snapshot, the in-flight launch's warp, divergence
// and scheduler state. Restoring it onto a fresh device reproduces the
// device bit for bit.
type Snapshot struct {
	family sass.Family
	numSMs int
	mem    *memSnap
	clocks []uint64
	log    []LogEvent
	launch *launchSnap
}

type launchSnap struct {
	kernel      *sass.Kernel
	grid, block Dim3
	sharedBytes int
	params      []uint32
	budget      int64
	stats       LaunchStats
	counts      []uint64
	blockLin    int
	disarmed    bool
	blk         *blockSnap
}

type blockSnap struct {
	blockIdx   Dim3
	resumeWarp int
	shared     []byte
	warps      []warp
}

// snapWarp deep-copies a warp's state (the struct copy aliases the local
// and stack slices, which keep mutating on the live warp).
func snapWarp(w *warp) warp {
	c := *w
	for lane := 0; lane < WarpSize; lane++ {
		if w.local[lane] != nil {
			c.local[lane] = append([]byte(nil), w.local[lane]...)
		}
		if w.stack[lane] != nil {
			c.stack[lane] = append([]int32(nil), w.stack[lane]...)
		}
	}
	return c
}

// Snapshot captures the device's architectural state between launches.
func (d *Device) Snapshot() *Snapshot { return d.snapshotWith(nil) }

// Snapshot captures the device state plus the run's exact in-launch
// position. Valid only while the run is paused (not finished); the
// resulting snapshot can be restored any number of times, concurrently.
func (r *LaunchRun) Snapshot() (*Snapshot, error) {
	if r.finished {
		return nil, fmt.Errorf("gpu: snapshot of a finished launch")
	}
	return r.dev.snapshotWith(r), nil
}

func (d *Device) snapshotWith(run *LaunchRun) *Snapshot {
	s := &Snapshot{
		family: d.Family,
		numSMs: d.NumSMs,
		mem:    d.Mem.snapshot(),
		clocks: append([]uint64(nil), d.smClocks...),
		log:    append([]LogEvent(nil), d.log...),
	}
	if run == nil {
		return s
	}
	ls := &launchSnap{
		kernel:      run.launch.Kernel.K,
		grid:        run.launch.Grid,
		block:       run.launch.Block,
		sharedBytes: run.launch.SharedBytes,
		params:      append([]uint32(nil), run.launch.Params...),
		budget:      run.budget.remaining,
		stats:       run.stats,
		blockLin:    run.blockLin,
		disarmed:    run.launch.disarmed,
	}
	if run.counts != nil {
		ls.counts = append([]uint64(nil), run.counts...)
	}
	if blk := run.blk; blk != nil {
		bs := &blockSnap{
			blockIdx:   blk.blockIdx,
			resumeWarp: blk.resumeWarp,
			shared:     append([]byte(nil), blk.shared...),
			warps:      make([]warp, len(blk.warps)),
		}
		for i, w := range blk.warps {
			bs.warps[i] = snapWarp(w)
		}
		ls.blk = bs
	}
	s.launch = ls
	return s
}

// Restore replaces the device's state with the snapshot's. The receiver
// must match the snapshot's family and SM count (normally a fresh
// NewDevice). When the snapshot was taken mid-launch, the restored run is
// returned paused at the identical warp-instruction boundary — resuming it
// executes exactly the instructions the snapshotted run would have.
// Restore only reads the snapshot, so many forks can restore from one
// snapshot concurrently.
func (d *Device) Restore(s *Snapshot) (*LaunchRun, error) {
	if d.Family != s.family || d.NumSMs != s.numSMs {
		return nil, fmt.Errorf("gpu: restore of a %v/%d-SM snapshot onto a %v/%d-SM device",
			s.family, s.numSMs, d.Family, d.NumSMs)
	}
	d.Mem = s.mem.restore()
	copy(d.smClocks, s.clocks)
	d.log = append([]LogEvent(nil), s.log...)
	if s.launch == nil {
		return nil, nil
	}
	ls := s.launch
	r := &LaunchRun{
		dev: d,
		launch: Launch{
			Kernel:      &ExecKernel{K: ls.kernel},
			Grid:        ls.grid,
			Block:       ls.block,
			SharedBytes: ls.sharedBytes,
			Params:      append([]uint32(nil), ls.params...),
			disarmed:    ls.disarmed,
		},
		stats:    ls.stats,
		blockLin: ls.blockLin,
	}
	r.constBank = buildConstBank(&r.launch)
	r.plan = d.planFor(ls.kernel)
	r.budget.remaining = ls.budget
	r.budget.ctx = d.cancelCtx
	r.budget.checkIn = cancelPollStride
	r.pause.remaining = -1
	if ls.counts != nil {
		r.counts = append([]uint64(nil), ls.counts...)
	}
	if bs := ls.blk; bs != nil {
		blk := newBlockCtx(d, &r.launch, r.constBank, r.plan, bs.blockIdx, r.blockLin)
		if len(blk.warps) != len(bs.warps) {
			return nil, fmt.Errorf("gpu: restore rebuilt %d warps, snapshot has %d", len(blk.warps), len(bs.warps))
		}
		copy(blk.shared, bs.shared)
		for i := range bs.warps {
			*blk.warps[i] = snapWarp(&bs.warps[i])
			// The snapshot's split list and scheduler mode belong to the
			// device that took it. The per-lane PCs are authoritative at
			// every snapshot boundary, so drop the cache and let this
			// device's scheduler rebuild from them — which also makes
			// snapshots portable across scheduler modes.
			blk.warps[i].scanSched = d.legacySched()
			blk.warps[i].splitsOK = false
		}
		blk.resumeWarp = bs.resumeWarp
		blk.pause = &r.pause
		blk.counts = r.counts
		r.blk = blk
	}
	return r, nil
}

// fnv-1a 64-bit parameters.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

type digester struct{ h uint64 }

func newDigester() digester { return digester{h: fnvOffset} }

func (d *digester) byte(b byte) { d.h = (d.h ^ uint64(b)) * fnvPrime }

func (d *digester) bytes(p []byte) {
	h := d.h
	for _, b := range p {
		h = (h ^ uint64(b)) * fnvPrime
	}
	d.h = h
}

func (d *digester) u32(v uint32) {
	d.byte(byte(v))
	d.byte(byte(v >> 8))
	d.byte(byte(v >> 16))
	d.byte(byte(v >> 24))
}

func (d *digester) u64(v uint64) {
	d.u32(uint32(v))
	d.u32(uint32(v >> 32))
}

func (d *digester) bool(v bool) {
	if v {
		d.byte(1)
	} else {
		d.byte(0)
	}
}

func allZeroBytes(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// Digest hashes the device's architectural state between launches. See
// LaunchRun.Digest for the guarantees.
func (d *Device) Digest() uint64 { return d.digestWith(nil) }

// Digest returns a 64-bit FNV-1a hash of the full architectural state: all
// of global memory, SM clocks, device-log length, and the in-flight
// launch's warp state (registers and predicates of every existing lane,
// per-lane PCs, divergence and call-stack state, shared and local memory,
// scheduler position). Representation caches hash as their architectural
// values — the converged fast path's stale per-lane PCs hash as the shared
// convPC, never-written memory pages and never-touched local windows hash
// the same as explicitly zeroed ones — so two runs in identical
// architectural states at the same execution position digest equally and,
// from there on, evolve identically. Equal digests at aligned boundaries
// are what licenses early-exit Masked classification; a hash collision is
// the only unsoundness, at FNV-64 odds. Modeled time (budget remaining,
// LaunchStats, trampoline accounting) is deliberately excluded: a restored
// experiment and the golden recording run carry different budgets and tool
// overhead while being architecturally identical.
func (r *LaunchRun) Digest() uint64 { return r.dev.digestWith(r) }

func (d *Device) digestWith(run *LaunchRun) uint64 {
	dg := newDigester()
	dg.u32(d.Mem.next)
	dg.u32(uint32(len(d.Mem.allocs)))
	for i := range d.Mem.allocs {
		a := &d.Mem.allocs[i]
		dg.u32(a.base)
		dg.u32(a.size)
		for pg := range a.pages {
			p := a.pages[pg]
			if p == nil || allZeroBytes(p) {
				dg.byte(0)
				continue
			}
			dg.byte(1)
			dg.bytes(p)
		}
	}
	for _, c := range d.smClocks {
		dg.u64(c)
	}
	dg.u32(uint32(len(d.log)))
	if run == nil {
		return dg.h
	}
	dg.u32(uint32(run.blockLin))
	blk := run.blk
	if blk == nil {
		return dg.h
	}
	dg.u32(uint32(blk.resumeWarp))
	dg.bytes(blk.shared)
	for _, w := range blk.warps {
		dg.u32(w.liveMask)
		dg.u32(w.exitedMask)
		dg.bool(w.barWait)
		dg.bool(w.done)
		if w.done {
			continue
		}
		active := w.activeMask()
		for lane := 0; lane < WarpSize; lane++ {
			bit := uint32(1) << uint(lane)
			if w.liveMask&bit == 0 {
				continue
			}
			// Registers and predicates of every existing lane: exited
			// lanes' values are still observable through cross-lane ops.
			for reg := 0; reg < sass.NumRegs; reg++ {
				dg.u32(w.regs[lane][reg])
			}
			for p := 0; p < sass.NumPreds; p++ {
				dg.bool(w.preds[lane][p])
			}
			if active&bit == 0 {
				continue
			}
			if w.converged {
				dg.u32(uint32(w.convPC))
			} else {
				dg.u32(uint32(w.pc[lane]))
			}
			dg.u32(uint32(len(w.stack[lane])))
			for _, v := range w.stack[lane] {
				dg.u32(uint32(v))
			}
			if loc := w.local[lane]; loc != nil && !allZeroBytes(loc) {
				dg.byte(1)
				dg.bytes(loc)
			} else {
				dg.byte(0)
			}
		}
	}
	return dg.h
}
