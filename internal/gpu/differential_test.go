package gpu

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"strings"
	"testing"
)

// TestDifferentialALU is a differential test: random straight-line integer
// and FP32 programs are executed by the simulator and by an independent
// reference evaluator written directly against the intended semantics; the
// register files must match exactly.
func TestDifferentialALU(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 80; trial++ {
		prog, eval := randomALUProgram(rng)
		snap := runBody(t, prog)
		for r := 1; r < 16; r++ {
			if got, want := snap.r(0, r), eval[r]; got != want {
				t.Fatalf("trial %d: R%d = 0x%08x, want 0x%08x\nprogram:\n%s",
					trial, r, got, want, prog)
			}
		}
	}
}

// randomALUProgram builds a random program over R1..R15 and evaluates it
// with reference semantics, returning the program text and the expected
// final register file.
func randomALUProgram(rng *rand.Rand) (string, [16]uint32) {
	var regs [16]uint32
	var sb strings.Builder
	reg := func() int { return 1 + rng.Intn(15) }

	// Seed registers with random immediates.
	for r := 1; r < 16; r++ {
		v := rng.Uint32()
		regs[r] = v
		fmt.Fprintf(&sb, "MOV R%d, 0x%x\n", r, v)
	}
	ops := []string{"IADD", "SHL", "SHRU", "SHRS", "AND", "OR", "XOR",
		"IMAD", "POPC", "BREV", "IMNMXU", "FADD", "FMUL", "SEL"}
	n := 4 + rng.Intn(24)
	for i := 0; i < n; i++ {
		d, a, b, c := reg(), reg(), reg(), reg()
		switch ops[rng.Intn(len(ops))] {
		case "IADD":
			fmt.Fprintf(&sb, "IADD R%d, R%d, R%d\n", d, a, b)
			regs[d] = regs[a] + regs[b]
		case "SHL":
			sh := uint32(rng.Intn(40))
			fmt.Fprintf(&sb, "SHL R%d, R%d, 0x%x\n", d, a, sh)
			if sh >= 32 {
				regs[d] = 0
			} else {
				regs[d] = regs[a] << sh
			}
		case "SHRU":
			sh := uint32(rng.Intn(40))
			fmt.Fprintf(&sb, "SHR.U32 R%d, R%d, 0x%x\n", d, a, sh)
			if sh >= 32 {
				regs[d] = 0
			} else {
				regs[d] = regs[a] >> sh
			}
		case "SHRS":
			sh := uint32(rng.Intn(40))
			fmt.Fprintf(&sb, "SHR R%d, R%d, 0x%x\n", d, a, sh)
			s := sh
			if s >= 32 {
				s = 31
			}
			regs[d] = uint32(int32(regs[a]) >> s)
		case "AND":
			fmt.Fprintf(&sb, "LOP.AND R%d, R%d, R%d\n", d, a, b)
			regs[d] = regs[a] & regs[b]
		case "OR":
			fmt.Fprintf(&sb, "LOP.OR R%d, R%d, R%d\n", d, a, b)
			regs[d] = regs[a] | regs[b]
		case "XOR":
			fmt.Fprintf(&sb, "LOP.XOR R%d, R%d, R%d\n", d, a, b)
			regs[d] = regs[a] ^ regs[b]
		case "IMAD":
			fmt.Fprintf(&sb, "IMAD R%d, R%d, R%d, R%d\n", d, a, b, c)
			regs[d] = regs[a]*regs[b] + regs[c]
		case "POPC":
			fmt.Fprintf(&sb, "POPC R%d, R%d\n", d, a)
			regs[d] = uint32(bits.OnesCount32(regs[a]))
		case "BREV":
			fmt.Fprintf(&sb, "BREV R%d, R%d\n", d, a)
			regs[d] = bits.Reverse32(regs[a])
		case "IMNMXU":
			fmt.Fprintf(&sb, "IMNMX.U32 R%d, R%d, R%d, PT\n", d, a, b)
			if regs[a] < regs[b] {
				regs[d] = regs[a]
			} else {
				regs[d] = regs[b]
			}
		case "FADD":
			fmt.Fprintf(&sb, "FADD R%d, R%d, R%d\n", d, a, b)
			regs[d] = math.Float32bits(math.Float32frombits(regs[a]) + math.Float32frombits(regs[b]))
		case "FMUL":
			fmt.Fprintf(&sb, "FMUL R%d, R%d, R%d\n", d, a, b)
			regs[d] = math.Float32bits(math.Float32frombits(regs[a]) * math.Float32frombits(regs[b]))
		case "SEL":
			// Set a predicate from a comparison, then select.
			fmt.Fprintf(&sb, "ISETP.LT.U32.AND P1, R%d, R%d, PT\n", a, b)
			fmt.Fprintf(&sb, "SEL R%d, R%d, R%d, P1\n", d, a, c)
			if regs[a] < regs[b] {
				regs[d] = regs[a]
			} else {
				regs[d] = regs[c]
			}
		}
	}
	return sb.String(), normalizeNaNs(regs)
}

// normalizeNaNs canonicalizes float NaN payloads the same way for both
// evaluators (Go float arithmetic and the interpreter agree on IEEE 754,
// including NaN propagation from Float32bits round trips, so this is an
// identity in practice; it documents the expectation).
func normalizeNaNs(r [16]uint32) [16]uint32 { return r }
