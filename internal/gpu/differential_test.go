package gpu

import (
	"bytes"
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// TestDifferentialALU is a differential test: random straight-line integer
// and FP32 programs are executed by the simulator and by an independent
// reference evaluator written directly against the intended semantics; the
// register files must match exactly.
func TestDifferentialALU(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 80; trial++ {
		prog, eval := randomALUProgram(rng)
		snap := runBody(t, prog)
		for r := 1; r < 16; r++ {
			if got, want := snap.r(0, r), eval[r]; got != want {
				t.Fatalf("trial %d: R%d = 0x%08x, want 0x%08x\nprogram:\n%s",
					trial, r, got, want, prog)
			}
		}
	}
}

// randomALUProgram builds a random program over R1..R15 and evaluates it
// with reference semantics, returning the program text and the expected
// final register file.
func randomALUProgram(rng *rand.Rand) (string, [16]uint32) {
	var regs [16]uint32
	var sb strings.Builder
	reg := func() int { return 1 + rng.Intn(15) }

	// Seed registers with random immediates.
	for r := 1; r < 16; r++ {
		v := rng.Uint32()
		regs[r] = v
		fmt.Fprintf(&sb, "MOV R%d, 0x%x\n", r, v)
	}
	ops := []string{"IADD", "SHL", "SHRU", "SHRS", "AND", "OR", "XOR",
		"IMAD", "POPC", "BREV", "IMNMXU", "FADD", "FMUL", "SEL"}
	n := 4 + rng.Intn(24)
	for i := 0; i < n; i++ {
		d, a, b, c := reg(), reg(), reg(), reg()
		switch ops[rng.Intn(len(ops))] {
		case "IADD":
			fmt.Fprintf(&sb, "IADD R%d, R%d, R%d\n", d, a, b)
			regs[d] = regs[a] + regs[b]
		case "SHL":
			sh := uint32(rng.Intn(40))
			fmt.Fprintf(&sb, "SHL R%d, R%d, 0x%x\n", d, a, sh)
			if sh >= 32 {
				regs[d] = 0
			} else {
				regs[d] = regs[a] << sh
			}
		case "SHRU":
			sh := uint32(rng.Intn(40))
			fmt.Fprintf(&sb, "SHR.U32 R%d, R%d, 0x%x\n", d, a, sh)
			if sh >= 32 {
				regs[d] = 0
			} else {
				regs[d] = regs[a] >> sh
			}
		case "SHRS":
			sh := uint32(rng.Intn(40))
			fmt.Fprintf(&sb, "SHR R%d, R%d, 0x%x\n", d, a, sh)
			s := sh
			if s >= 32 {
				s = 31
			}
			regs[d] = uint32(int32(regs[a]) >> s)
		case "AND":
			fmt.Fprintf(&sb, "LOP.AND R%d, R%d, R%d\n", d, a, b)
			regs[d] = regs[a] & regs[b]
		case "OR":
			fmt.Fprintf(&sb, "LOP.OR R%d, R%d, R%d\n", d, a, b)
			regs[d] = regs[a] | regs[b]
		case "XOR":
			fmt.Fprintf(&sb, "LOP.XOR R%d, R%d, R%d\n", d, a, b)
			regs[d] = regs[a] ^ regs[b]
		case "IMAD":
			fmt.Fprintf(&sb, "IMAD R%d, R%d, R%d, R%d\n", d, a, b, c)
			regs[d] = regs[a]*regs[b] + regs[c]
		case "POPC":
			fmt.Fprintf(&sb, "POPC R%d, R%d\n", d, a)
			regs[d] = uint32(bits.OnesCount32(regs[a]))
		case "BREV":
			fmt.Fprintf(&sb, "BREV R%d, R%d\n", d, a)
			regs[d] = bits.Reverse32(regs[a])
		case "IMNMXU":
			fmt.Fprintf(&sb, "IMNMX.U32 R%d, R%d, R%d, PT\n", d, a, b)
			if regs[a] < regs[b] {
				regs[d] = regs[a]
			} else {
				regs[d] = regs[b]
			}
		case "FADD":
			fmt.Fprintf(&sb, "FADD R%d, R%d, R%d\n", d, a, b)
			regs[d] = math.Float32bits(math.Float32frombits(regs[a]) + math.Float32frombits(regs[b]))
		case "FMUL":
			fmt.Fprintf(&sb, "FMUL R%d, R%d, R%d\n", d, a, b)
			regs[d] = math.Float32bits(math.Float32frombits(regs[a]) * math.Float32frombits(regs[b]))
		case "SEL":
			// Set a predicate from a comparison, then select.
			fmt.Fprintf(&sb, "ISETP.LT.U32.AND P1, R%d, R%d, PT\n", a, b)
			fmt.Fprintf(&sb, "SEL R%d, R%d, R%d, P1\n", d, a, c)
			if regs[a] < regs[b] {
				regs[d] = regs[a]
			} else {
				regs[d] = regs[c]
			}
		}
	}
	return sb.String(), normalizeNaNs(regs)
}

// normalizeNaNs canonicalizes float NaN payloads the same way for both
// evaluators (Go float arithmetic and the interpreter agree on IEEE 754,
// including NaN propagation from Float32bits round trips, so this is an
// identity in practice; it documents the expectation).
func normalizeNaNs(r [16]uint32) [16]uint32 { return r }

// ---------------------------------------------------------------------------
// Parallel block scheduler determinism: Workers=N must be bit-identical to
// the Workers=1 reference schedule — output memory, LaunchStats, traps, and
// device log — for every workload class the simulator supports.
// ---------------------------------------------------------------------------

// clockMixSrc is a multi-block kernel mixing divergent control flow with
// per-SM clock reads (S2R SR_CLOCK and CS2R). Clock values depend on the
// exact per-SM instruction schedule, so storing them to global memory makes
// any scheduling difference between sequential and parallel mode visible in
// the output bytes.
const clockMixSrc = `
.kernel clockmix
.param outptr
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0           // global thread id
    SHL R3, R0, 0x2
    IADD R4, R3, c0[outptr]
    LOP.AND R5, R0, 0x3
    ISETP.EQ.AND P0, R5, 0x0, PT
@P0 BRA clk
    IMAD R6, R0, R0, 0x7          // most lanes: tid*tid + 7
    BRA store
clk:
    S2R R6, SR_CLOCK              // every 4th lane: the per-SM clock
store:
    CS2R R8, RZ
    IADD R6, R6, R8
    STG.32 [R4], R6
    EXIT
`

// gridReduceSrc reduces a 256-element slice per block through shared memory
// and barriers, writing one partial sum per block: barriers, shared memory,
// and looping control flow under the parallel scheduler.
const gridReduceSrc = `
.kernel gridreduce
.param inptr
.param outptr
.shared 1024
    S2R R0, SR_TID.X
    S2R R12, SR_CTAID.X
    MOV R13, c0[NTID_X]
    IMAD R14, R12, R13, R0        // global thread id
    SHL R1, R0, 0x2               // local byte offset
    SHL R15, R14, 0x2
    IADD R2, R15, c0[inptr]
    LDG.32 R3, [R2]
    STS.32 [R1], R3
    BAR.SYNC
    MOV R4, 0x100
loop:
    SHR.U32 R4, R4, 0x1
    ISETP.EQ.AND P1, R4, 0x0, PT
@P1 BRA done
    ISETP.GE.AND P0, R0, R4, PT
@P0 BRA skip
    SHL R5, R4, 0x2
    IADD R6, R1, R5
    LDS.32 R7, [R6]
    LDS.32 R8, [R1]
    IADD R9, R7, R8
    STS.32 [R1], R9
skip:
    BAR.SYNC
    BRA loop
done:
    ISETP.NE.AND P2, R0, 0x0, PT
@P2 EXIT
    SHL R16, R12, 0x2
    IADD R11, R16, c0[outptr]
    LDS.32 R10, [RZ]
    STG.32 [R11], R10
    EXIT
`

// parRun captures everything a launch can observably produce.
type parRun struct {
	out   []byte
	stats LaunchStats
	err   error
	log   []LogEvent
}

// runWithWorkers builds a fresh device (so allocations land at identical
// addresses in every run), sets the worker count, runs the launch the setup
// function describes, and snapshots the observable state.
func runWithWorkers(t *testing.T, src, name string, workers int,
	setup func(t *testing.T, d *Device) (Launch, uint32, int)) parRun {
	t.Helper()
	d := newTestDevice(t)
	d.Workers = workers
	k := mustKernel(t, src, name)
	l, outp, outLen := setup(t, d)
	l.Kernel = &ExecKernel{K: k}
	stats, err := d.Run(&l)
	r := parRun{stats: stats, err: err, log: d.LogEvents()}
	if outLen > 0 {
		b, rerr := d.Mem.ReadBytes(outp, outLen)
		if rerr != nil {
			t.Fatalf("ReadBytes: %v", rerr)
		}
		r.out = b
	}
	return r
}

// mustAllocWrite allocates n bytes and, if data is non-nil, writes it.
func mustAllocWrite(t *testing.T, d *Device, n int, data []byte) uint32 {
	t.Helper()
	p, err := d.Mem.Alloc(n)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if data != nil {
		if err := d.Mem.WriteBytes(p, data); err != nil {
			t.Fatalf("WriteBytes: %v", err)
		}
	}
	return p
}

// expectSame asserts two runs are observably bit-identical.
func expectSame(t *testing.T, label string, ref, got parRun) {
	t.Helper()
	refErr, gotErr := fmt.Sprint(ref.err), fmt.Sprint(got.err)
	if refErr != gotErr {
		t.Errorf("%s: error %q, want %q", label, gotErr, refErr)
	}
	if rt, ok := AsTrap(ref.err); ok {
		gt, gok := AsTrap(got.err)
		if !gok || !reflect.DeepEqual(rt, gt) {
			t.Errorf("%s: trap %+v, want %+v", label, gt, rt)
		}
	}
	if !reflect.DeepEqual(ref.stats, got.stats) {
		t.Errorf("%s: stats %+v, want %+v", label, got.stats, ref.stats)
	}
	if !bytes.Equal(ref.out, got.out) {
		for i := 0; i < len(ref.out) && i < len(got.out); i += 4 {
			if !bytes.Equal(ref.out[i:i+4], got.out[i:i+4]) {
				t.Errorf("%s: output word %d = %x, want %x", label, i/4, got.out[i:i+4], ref.out[i:i+4])
				break
			}
		}
		t.Errorf("%s: output bytes differ from sequential reference", label)
	}
	if !reflect.DeepEqual(ref.log, got.log) {
		t.Errorf("%s: device log %+v, want %+v", label, got.log, ref.log)
	}
}

// TestParallelBlockDeterminism runs multi-block workloads — divergent
// control flow with per-SM clock reads, and a barrier-synchronized shared
// memory reduction grid — under every interesting worker count, including
// one above the NumSMs cap, and requires bit-identical results against the
// sequential reference schedule.
func TestParallelBlockDeterminism(t *testing.T) {
	cases := []struct {
		name, src, kernel string
		setup             func(t *testing.T, d *Device) (Launch, uint32, int)
	}{
		{
			name: "clockmix", src: clockMixSrc, kernel: "clockmix",
			setup: func(t *testing.T, d *Device) (Launch, uint32, int) {
				const n = 8 * 64
				outp := mustAllocWrite(t, d, 4*n, nil)
				return Launch{
					Grid:   Dim3{X: 8, Y: 1, Z: 1},
					Block:  Dim3{X: 64, Y: 1, Z: 1},
					Params: []uint32{outp},
				}, outp, 4 * n
			},
		},
		{
			name: "gridreduce", src: gridReduceSrc, kernel: "gridreduce",
			setup: func(t *testing.T, d *Device) (Launch, uint32, int) {
				const blocks, threads = 6, 256
				in := make([]byte, 4*blocks*threads)
				for i := 0; i < blocks*threads; i++ {
					in[4*i] = byte(i)
					in[4*i+1] = byte(i >> 8)
				}
				inp := mustAllocWrite(t, d, len(in), in)
				outp := mustAllocWrite(t, d, 4*blocks, nil)
				return Launch{
					Grid:   Dim3{X: blocks, Y: 1, Z: 1},
					Block:  Dim3{X: threads, Y: 1, Z: 1},
					Params: []uint32{inp, outp},
				}, outp, 4 * blocks
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref := runWithWorkers(t, tc.src, tc.kernel, 1, tc.setup)
			if ref.err != nil {
				t.Fatalf("sequential reference: %v", ref.err)
			}
			// 16 exceeds the NumSMs=4 cap and must behave like 4.
			for _, w := range []int{2, 4, 16} {
				got := runWithWorkers(t, tc.src, tc.kernel, w, tc.setup)
				expectSame(t, fmt.Sprintf("workers=%d", w), ref, got)
			}
		})
	}
}

// concurrentFaultSrc faults in every block with ctaid >= 2, each at a
// different address, while blocks 0 and 1 complete real work. Several
// workers hit their traps concurrently; the reported trap must always be
// the one sequential execution reports (lowest block linear index).
const concurrentFaultSrc = `
.kernel faulty
.param outptr
    S2R R0, SR_CTAID.X
    ISETP.GE.AND P0, R0, 0x2, PT
@P0 BRA bad
    S2R R1, SR_TID.X
    MOV R2, c0[NTID_X]
    IMAD R1, R0, R2, R1
    SHL R3, R1, 0x2
    IADD R4, R3, c0[outptr]
    IADD R5, R1, 0x2a
    STG.32 [R4], R5
    EXIT
bad:
    SHL R6, R0, 0x4
    IADD R7, R6, 0x3              // per-block distinct unmapped address
    LDG.32 R8, [R7]
    EXIT
`

// TestParallelTrapDeterminism: with six blocks faulting concurrently, the
// parallel scheduler must report the exact trap (kind, PC, SM, address) and
// LaunchStats the sequential schedule reports, on every run.
func TestParallelTrapDeterminism(t *testing.T) {
	setup := func(t *testing.T, d *Device) (Launch, uint32, int) {
		const n = 2 * 32
		outp := mustAllocWrite(t, d, 4*n, nil)
		return Launch{
			Grid:   Dim3{X: 8, Y: 1, Z: 1},
			Block:  Dim3{X: 32, Y: 1, Z: 1},
			Params: []uint32{outp},
		}, outp, 4 * n
	}
	ref := runWithWorkers(t, concurrentFaultSrc, "faulty", 1, setup)
	trap, ok := AsTrap(ref.err)
	if !ok {
		t.Fatalf("sequential run did not trap: %v", ref.err)
	}
	// The winner must be block 2, the lowest faulting block.
	if want := uint32(2<<4 + 3); trap.Addr != want {
		t.Fatalf("sequential trap address = %#x, want %#x (block 2)", trap.Addr, want)
	}
	if ref.stats.Blocks != 2 {
		t.Fatalf("sequential stats counted %d completed blocks, want 2", ref.stats.Blocks)
	}
	if len(ref.log) != 1 {
		t.Fatalf("sequential run logged %d events, want 1", len(ref.log))
	}
	// The race is re-rolled every run; repeat to shake out unlucky
	// schedules (under -race this is also a data-race probe).
	for i := 0; i < 10; i++ {
		got := runWithWorkers(t, concurrentFaultSrc, "faulty", 4, setup)
		expectSame(t, fmt.Sprintf("run %d", i), ref, got)
		if t.Failed() {
			break
		}
	}
}

// TestParallelBudgetHang: the launch budget is one shared counter, so a
// spinning grid must exhaust it and trap as a hang under both schedules.
// With a single-instruction kernel the trap site is fully deterministic
// even though which block drains the final token is schedule-dependent.
func TestParallelBudgetHang(t *testing.T) {
	const src = `
.kernel spin
loop:
    BRA loop
`
	setup := func(t *testing.T, d *Device) (Launch, uint32, int) {
		return Launch{
			Grid:   Dim3{X: 8, Y: 1, Z: 1},
			Block:  Dim3{X: 32, Y: 1, Z: 1},
			Budget: 10000,
		}, 0, 0
	}
	ref := runWithWorkers(t, src, "spin", 1, setup)
	rt, ok := AsTrap(ref.err)
	if !ok || rt.Kind != TrapInstrLimit {
		t.Fatalf("sequential spin: %v, want instruction-limit trap", ref.err)
	}
	if ref.stats.WarpInstrs != 10000 {
		t.Fatalf("sequential spin issued %d warp instructions, want the full budget 10000", ref.stats.WarpInstrs)
	}
	got := runWithWorkers(t, src, "spin", 4, setup)
	gt, ok := AsTrap(got.err)
	if !ok || gt.Kind != TrapInstrLimit {
		t.Fatalf("parallel spin: %v, want instruction-limit trap", got.err)
	}
	if !reflect.DeepEqual(rt, gt) {
		t.Errorf("parallel trap %+v, want %+v", gt, rt)
	}
	if got.stats.WarpInstrs > 10000 {
		t.Errorf("parallel spin counted %d warp instructions, exceeding the shared budget", got.stats.WarpInstrs)
	}
}
