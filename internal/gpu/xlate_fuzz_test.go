package gpu

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sass"
)

// fuzzProgram turns fuzzer bytes into a small kernel over a curated
// instruction mix: plain ALU, guarded execution, predicate sets, forward
// branches, global loads and stores confined to a 256-byte buffer, and
// thunk-dispatched warp intrinsics (SHFL, VOTE). Every byte maps to one
// generation step, so the fuzzer can explore instruction interleavings.
func fuzzProgram(data []byte) string {
	var sb strings.Builder
	sb.WriteString(".kernel fuzz\n.param buf\n")
	sb.WriteString("    S2R R1, SR_TID.X\n")
	sb.WriteString("    MOV R2, 0x9e3779b9\n")
	reg := func(b byte) int { return 1 + int(b)%7 } // R1..R7
	skip := 0
	emitted := 0
	for i := 0; i+2 < len(data) && emitted < 48; i += 3 {
		op, a, b := data[i], data[i+1], data[i+2]
		d, ra, rb := reg(a), reg(b), reg(a^b)
		switch op % 16 {
		case 0:
			fmt.Fprintf(&sb, "    MOV R%d, 0x%x\n", d, uint32(a)<<8|uint32(b))
		case 1:
			fmt.Fprintf(&sb, "    IADD R%d, R%d, R%d\n", d, ra, rb)
		case 2:
			fmt.Fprintf(&sb, "    IMAD R%d, R%d, R%d, 0x%x\n", d, ra, rb, b)
		case 3:
			fmt.Fprintf(&sb, "    LOP.XOR R%d, R%d, R%d\n", d, ra, rb)
		case 4:
			fmt.Fprintf(&sb, "    SHL R%d, R%d, 0x%x\n", d, ra, b%33)
		case 5:
			fmt.Fprintf(&sb, "    FADD R%d, R%d, R%d\n", d, ra, rb)
		case 6:
			fmt.Fprintf(&sb, "    FMUL R%d, R%d, -R%d\n", d, ra, rb)
		case 7:
			fmt.Fprintf(&sb, "    ISETP.LT.U32.AND P1, R%d, R%d, PT\n", ra, rb)
		case 8:
			fmt.Fprintf(&sb, "@P1 IADD R%d, R%d, 0x1\n", d, ra)
		case 9:
			fmt.Fprintf(&sb, "@!P1 MOV R%d, 0x%x\n", d, b)
		case 10:
			fmt.Fprintf(&sb, "    SEL R%d, R%d, R%d, P1\n", d, ra, rb)
		case 11:
			// Guarded forward branch over the next few instructions: the
			// label is emitted by a later step (or the tail fixup).
			fmt.Fprintf(&sb, "@P1 BRA skip%d\n", skip)
			skip++
		case 12:
			// Confine addresses to the 64-word buffer so the access always
			// lands in bounds and 4-byte aligned.
			fmt.Fprintf(&sb, "    LOP.AND R8, R%d, 0x3f\n", ra)
			sb.WriteString("    SHL R8, R8, 0x2\n")
			sb.WriteString("    IADD R8, R8, c0[buf]\n")
			fmt.Fprintf(&sb, "    STG.32 [R8], R%d\n", rb)
		case 13:
			fmt.Fprintf(&sb, "    LOP.AND R8, R%d, 0x3f\n", ra)
			sb.WriteString("    SHL R8, R8, 0x2\n")
			sb.WriteString("    IADD R8, R8, c0[buf]\n")
			fmt.Fprintf(&sb, "    LDG.32 R%d, [R8]\n", d)
		case 14:
			// Thunk-dispatched intrinsics: translated execution falls back to
			// the interpreter closure for these, so the fuzz mix proves the
			// two dispatch paths compose.
			fmt.Fprintf(&sb, "    SHFL.BFLY R%d, R%d, 0x%x, 0x1f\n", d, ra, 1+b%8)
		case 15:
			if skip > 0 {
				// Resolve the most recent pending branch target here, so the
				// branch skips a fuzzer-chosen span.
				skip--
				fmt.Fprintf(&sb, "skip%d:\n", skip)
			} else {
				fmt.Fprintf(&sb, "    POPC R%d, R%d\n", d, ra)
			}
		}
		emitted++
	}
	// Resolve any dangling branch labels at the tail.
	for skip > 0 {
		skip--
		fmt.Fprintf(&sb, "skip%d:\n", skip)
	}
	sb.WriteString("    EXIT\n")
	return sb.String()
}

// runFuzzKernel assembles and runs one generated kernel on a fresh device
// with the chosen engine and returns everything observable: final buffer
// bytes, stats, error text, and the device digest (which covers the register
// files of any still-live warps plus all memory).
func runFuzzKernel(tb testing.TB, src string, noXlate bool) (out []byte, stats LaunchStats, errText string, digest uint64) {
	tb.Helper()
	p, err := sass.Assemble("fuzz", src)
	if err != nil {
		tb.Skipf("assemble: %v", err)
	}
	d, err := NewDevice(sass.FamilyVolta, 2)
	if err != nil {
		tb.Fatal(err)
	}
	d.NoXlate = noXlate
	buf, err := d.Mem.Alloc(256)
	if err != nil {
		tb.Fatal(err)
	}
	stats, runErr := d.Run(&Launch{
		Kernel: &ExecKernel{K: p.Kernels[0]},
		Grid:   Dim3{X: 2, Y: 1, Z: 1},
		Block:  Dim3{X: 64, Y: 1, Z: 1},
		Params: []uint32{buf},
		Budget: 1 << 16,
	})
	if runErr != nil {
		errText = runErr.Error()
	} else {
		b, err := d.Mem.ReadBytes(buf, 256)
		if err != nil {
			tb.Fatal(err)
		}
		out = b
	}
	return out, stats, errText, d.Digest()
}

// FuzzXlateDifferential generates random small kernels and requires
// translated and interpreted execution to agree on every observable:
// output memory, LaunchStats, trap text, and the full device digest.
func FuzzXlateDifferential(f *testing.F) {
	f.Add([]byte{0, 1, 2, 7, 8, 11, 3, 15, 9, 12, 0, 1, 13, 2, 3})
	f.Add([]byte{7, 0, 0, 11, 5, 5, 14, 1, 2, 15, 0, 0, 12, 9, 9, 13, 3, 3})
	f.Add(bytes.Repeat([]byte{7, 11, 15}, 12))
	f.Add([]byte{14, 14, 14, 7, 8, 9, 10, 4, 4, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 || len(data) > 256 {
			t.Skip()
		}
		src := fuzzProgram(data)
		refOut, refStats, refErr, refDig := runFuzzKernel(t, src, true)
		gotOut, gotStats, gotErr, gotDig := runFuzzKernel(t, src, false)
		if refErr != gotErr {
			t.Fatalf("error mismatch:\ninterpreted %q\ntranslated  %q\nprogram:\n%s", refErr, gotErr, src)
		}
		if !reflect.DeepEqual(refStats, gotStats) {
			t.Fatalf("stats mismatch:\ninterpreted %+v\ntranslated  %+v\nprogram:\n%s", refStats, gotStats, src)
		}
		if !bytes.Equal(refOut, gotOut) {
			t.Fatalf("output mismatch\nprogram:\n%s", src)
		}
		if refDig != gotDig {
			t.Fatalf("digest mismatch: interpreted %#x translated %#x\nprogram:\n%s", refDig, gotDig, src)
		}
	})
}
