package gpu

import (
	"encoding/binary"
	"math"
	"math/bits"

	"repro/internal/sass"
)

// exec executes one instruction for the lanes in execMask. The caller
// (blockCtx.step) has already advanced the PC of every live lane at this
// instruction, so guard-suppressed lanes fall through; control semantics
// below override the taken lanes. It returns whether the warp reached a
// barrier, and a trap kind with faulting address when execution faults.
func (blk *blockCtx) exec(w *warp, in *sass.Instr, pc int, execMask uint32) (barrier bool, kind TrapKind, faultAddr uint32) {
	info := in.Op.Info()
	e := evalCtx{blk: blk, w: w, in: in}

	switch info.Sem {
	// --- FP32 arithmetic ---
	case sass.SemFAdd:
		return e.perLaneF(execMask, func(l int) float32 { return e.fsrc(l, 0) + e.fsrc(l, 1) })
	case sass.SemFMul:
		return e.perLaneF(execMask, func(l int) float32 { return e.fsrc(l, 0) * e.fsrc(l, 1) })
	case sass.SemFFma:
		return e.perLaneF(execMask, func(l int) float32 {
			return float32(float64(e.fsrc(l, 0))*float64(e.fsrc(l, 1)) + float64(e.fsrc(l, 2)))
		})
	case sass.SemFMnMx:
		return e.perLaneF(execMask, func(l int) float32 {
			a, b := e.fsrc(l, 0), e.fsrc(l, 1)
			if e.psrc(l, 2) {
				return fmin(a, b)
			}
			return fmax(a, b)
		})
	case sass.SemFSel:
		return e.perLaneU(execMask, func(l int) uint32 {
			if e.psrc(l, 2) {
				return e.fbits(l, 0)
			}
			return e.fbits(l, 1)
		})
	case sass.SemFSet:
		return e.perLaneU(execMask, func(l int) uint32 {
			r := fcompare(in.Mods.Cmp, e.fsrc(l, 0), e.fsrc(l, 1))
			if len(in.Src) > 2 {
				r = in.Mods.Bool.Apply(r, e.psrc(l, 2))
			}
			if r {
				return 0xffffffff
			}
			return 0
		})
	case sass.SemFSetP:
		return e.perLaneP(execMask, func(l int) bool {
			r := fcompare(in.Mods.Cmp, e.fsrc(l, 0), e.fsrc(l, 1))
			if len(in.Src) > 2 {
				r = in.Mods.Bool.Apply(r, e.psrc(l, 2))
			}
			return r
		})
	case sass.SemFChk:
		return e.perLaneP(execMask, func(l int) bool {
			a, b := e.fsrc(l, 0), e.fsrc(l, 1)
			return b == 0 || isNaN32(a) || isNaN32(b) || isInf32(a) || isInf32(b)
		})
	case sass.SemMufu:
		return e.perLaneF(execMask, func(l int) float32 { return mufu(in.Mods.Mufu, e.fsrc(l, 0)) })

	// --- FP64 arithmetic (even/odd register pairs) ---
	case sass.SemDAdd:
		return e.perLaneD(execMask, func(l int) float64 { return e.dsrc(l, 0) + e.dsrc(l, 1) })
	case sass.SemDMul:
		return e.perLaneD(execMask, func(l int) float64 { return e.dsrc(l, 0) * e.dsrc(l, 1) })
	case sass.SemDFma:
		return e.perLaneD(execMask, func(l int) float64 {
			return math.FMA(e.dsrc(l, 0), e.dsrc(l, 1), e.dsrc(l, 2))
		})
	case sass.SemDMnMx:
		return e.perLaneD(execMask, func(l int) float64 {
			a, b := e.dsrc(l, 0), e.dsrc(l, 1)
			if e.psrc(l, 2) {
				return math.Min(a, b)
			}
			return math.Max(a, b)
		})
	case sass.SemDSetP:
		return e.perLaneP(execMask, func(l int) bool {
			r := dcompare(in.Mods.Cmp, e.dsrc(l, 0), e.dsrc(l, 1))
			if len(in.Src) > 2 {
				r = in.Mods.Bool.Apply(r, e.psrc(l, 2))
			}
			return r
		})

	// --- Packed half arithmetic ---
	case sass.SemHAdd2:
		return e.perLaneU(execMask, func(l int) uint32 {
			return hmap2(e.usrc(l, 0), e.usrc(l, 1), func(a, b float32) float32 { return a + b })
		})
	case sass.SemHMul2:
		return e.perLaneU(execMask, func(l int) uint32 {
			return hmap2(e.usrc(l, 0), e.usrc(l, 1), func(a, b float32) float32 { return a * b })
		})
	case sass.SemHFma2:
		return e.perLaneU(execMask, func(l int) uint32 {
			return hmap3(e.usrc(l, 0), e.usrc(l, 1), e.usrc(l, 2), func(a, b, c float32) float32 { return a*b + c })
		})

	// --- Integer arithmetic ---
	case sass.SemIAdd:
		return e.perLaneU(execMask, func(l int) uint32 { return e.isrc(l, 0) + e.isrc(l, 1) })
	case sass.SemIAdd3:
		return e.perLaneU(execMask, func(l int) uint32 { return e.isrc(l, 0) + e.isrc(l, 1) + e.isrc(l, 2) })
	case sass.SemIMad:
		return e.perLaneU(execMask, func(l int) uint32 {
			a, b, c := e.isrc(l, 0), e.isrc(l, 1), e.isrc(l, 2)
			if in.Mods.High {
				return mulHigh(a, b, !in.Mods.Unsigned) + c
			}
			return a*b + c
		})
	case sass.SemIMul:
		return e.perLaneU(execMask, func(l int) uint32 {
			a, b := e.isrc(l, 0), e.isrc(l, 1)
			if in.Mods.High {
				return mulHigh(a, b, !in.Mods.Unsigned)
			}
			return a * b
		})
	case sass.SemIMnMx:
		return e.perLaneU(execMask, func(l int) uint32 {
			a, b := e.usrc(l, 0), e.usrc(l, 1)
			mn := e.psrc(l, 2)
			if in.Mods.Unsigned {
				if (a < b) == mn {
					return a
				}
				return b
			}
			if (int32(a) < int32(b)) == mn {
				return a
			}
			return b
		})
	case sass.SemIAbs:
		return e.perLaneU(execMask, func(l int) uint32 {
			v := int32(e.usrc(l, 0))
			if v < 0 {
				v = -v
			}
			return uint32(v)
		})
	case sass.SemISetP:
		return e.perLaneP(execMask, func(l int) bool {
			r := icompare(in.Mods.Cmp, e.usrc(l, 0), e.usrc(l, 1), in.Mods.Unsigned)
			if len(in.Src) > 2 {
				r = in.Mods.Bool.Apply(r, e.psrc(l, 2))
			}
			return r
		})
	case sass.SemISCAdd, sass.SemLea:
		// (a << shift) + b; shift is the third operand.
		return e.perLaneU(execMask, func(l int) uint32 {
			sh := e.usrc(l, 2) & 31
			return e.usrc(l, 0)<<sh + e.usrc(l, 1)
		})
	case sass.SemLop:
		return e.perLaneU(execMask, func(l int) uint32 {
			a, b := e.usrc(l, 0), e.usrc(l, 1)
			switch in.Mods.Logic {
			case sass.LogicAnd:
				return a & b
			case sass.LogicOr:
				return a | b
			case sass.LogicXor:
				return a ^ b
			case sass.LogicPassB:
				return b
			default:
				return a & b
			}
		})
	case sass.SemLop3:
		return e.perLaneU(execMask, func(l int) uint32 {
			return lop3(e.usrc(l, 0), e.usrc(l, 1), e.usrc(l, 2), uint8(e.usrc(l, 3)))
		})
	case sass.SemShl:
		return e.perLaneU(execMask, func(l int) uint32 {
			s := e.usrc(l, 1)
			if s >= 32 {
				return 0
			}
			return e.usrc(l, 0) << s
		})
	case sass.SemShr:
		return e.perLaneU(execMask, func(l int) uint32 {
			a, s := e.usrc(l, 0), e.usrc(l, 1)
			if in.Mods.Unsigned {
				if s >= 32 {
					return 0
				}
				return a >> s
			}
			if s >= 32 {
				s = 31
			}
			return uint32(int32(a) >> s)
		})
	case sass.SemShf:
		return e.perLaneU(execMask, func(l int) uint32 {
			lo, sh, hi := uint64(e.usrc(l, 0)), e.usrc(l, 1)&63, uint64(e.usrc(l, 2))
			full := hi<<32 | lo
			if in.Mods.Right {
				return uint32(full >> sh)
			}
			return uint32((full << sh) >> 32)
		})
	case sass.SemPopc:
		return e.perLaneU(execMask, func(l int) uint32 { return uint32(bits.OnesCount32(e.usrc(l, 0))) })
	case sass.SemFlo:
		return e.perLaneU(execMask, func(l int) uint32 {
			v := e.usrc(l, 0)
			if v == 0 {
				return 0xffffffff
			}
			return uint32(31 - bits.LeadingZeros32(v))
		})
	case sass.SemBrev:
		return e.perLaneU(execMask, func(l int) uint32 { return bits.Reverse32(e.usrc(l, 0)) })
	case sass.SemBmsk:
		return e.perLaneU(execMask, func(l int) uint32 {
			pos, width := e.usrc(l, 0)&31, e.usrc(l, 1)&63
			if width >= 32 {
				return 0xffffffff << pos
			}
			return (uint32(1)<<width - 1) << pos
		})
	case sass.SemSgxt:
		return e.perLaneU(execMask, func(l int) uint32 {
			v, nbits := e.usrc(l, 0), e.usrc(l, 1)&31
			if nbits == 0 {
				return 0
			}
			sh := 32 - nbits
			return uint32(int32(v<<sh) >> sh)
		})
	case sass.SemVAbsDiff:
		return e.perLaneU(execMask, func(l int) uint32 {
			a, b := int64(int32(e.usrc(l, 0))), int64(int32(e.usrc(l, 1)))
			d := a - b
			if d < 0 {
				d = -d
			}
			return uint32(d)
		})
	case sass.SemSel:
		return e.perLaneU(execMask, func(l int) uint32 {
			if e.psrc(l, 2) {
				return e.usrc(l, 0)
			}
			return e.usrc(l, 1)
		})
	case sass.SemPrmt:
		// PRMT Rd, Ra, Sb, Rc: Sb is the byte selector, Rc the high word.
		return e.perLaneU(execMask, func(l int) uint32 {
			return prmt(e.usrc(l, 0), e.usrc(l, 2), e.usrc(l, 1))
		})

	// --- Movement and special registers ---
	case sass.SemMov:
		return e.perLaneU(execMask, func(l int) uint32 { return e.isrc(l, 0) })
	case sass.SemS2R:
		return e.perLaneU(execMask, func(l int) uint32 { return e.special(l, in.Src[0].SReg) })
	case sass.SemCS2R:
		for lane := 0; lane < WarpSize; lane++ {
			if execMask&(1<<uint(lane)) == 0 {
				continue
			}
			clk := blk.dev.smClocks[blk.smID]
			e.wrPair(lane, clk)
		}
		return false, 0, 0
	case sass.SemShfl:
		return e.shfl(execMask)
	case sass.SemVote:
		var ballot uint32
		for lane := 0; lane < WarpSize; lane++ {
			if execMask&(1<<uint(lane)) != 0 && e.psrc(lane, 0) {
				ballot |= 1 << uint(lane)
			}
		}
		return e.perLaneU(execMask, func(l int) uint32 { return ballot })
	case sass.SemMatch:
		return e.perLaneU(execMask, func(l int) uint32 {
			var m uint32
			v := e.usrc(l, 0)
			for other := 0; other < WarpSize; other++ {
				if execMask&(1<<uint(other)) != 0 && e.usrcLane(other, 0) == v {
					m |= 1 << uint(other)
				}
			}
			return m
		})
	case sass.SemP2R:
		return e.perLaneU(execMask, func(l int) uint32 {
			var v uint32
			for p := 0; p < int(sass.NumPreds)-1; p++ {
				if e.w.preds[l][p] {
					v |= 1 << uint(p)
				}
			}
			if len(in.Src) > 0 {
				v &= e.usrc(l, 0)
			}
			return v
		})
	case sass.SemR2P:
		return e.perLaneP(execMask, func(l int) bool {
			v := e.usrc(l, 0)
			mask := uint32(1)
			if len(in.Src) > 1 {
				mask = e.usrc(l, 1)
			}
			return v&mask != 0
		})
	case sass.SemPSetP:
		return e.perLaneP(execMask, func(l int) bool {
			return in.Mods.Bool.Apply(e.psrc(l, 0), e.psrc(l, 1))
		})
	case sass.SemPLop3:
		return e.perLaneP(execMask, func(l int) bool {
			idx := 0
			if e.psrc(l, 0) {
				idx |= 4
			}
			if e.psrc(l, 1) {
				idx |= 2
			}
			if e.psrc(l, 2) {
				idx |= 1
			}
			lut := uint8(e.usrc(l, 3))
			return lut&(1<<uint(idx)) != 0
		})

	// --- Conversion ---
	case sass.SemF2I:
		return e.perLaneU(execMask, func(l int) uint32 { return f2i(e.fsrc(l, 0), in.Mods.Unsigned) })
	case sass.SemI2F:
		return e.perLaneU(execMask, func(l int) uint32 {
			v := e.usrc(l, 0)
			if in.Mods.Unsigned {
				return math.Float32bits(float32(v))
			}
			return math.Float32bits(float32(int32(v)))
		})
	case sass.SemF2F:
		if in.Mods.Width == 8 { // widen f32 -> f64
			for lane := 0; lane < WarpSize; lane++ {
				if execMask&(1<<uint(lane)) == 0 {
					continue
				}
				e.wrPair(lane, math.Float64bits(float64(e.fsrc(lane, 0))))
			}
			return false, 0, 0
		}
		// narrow f64 -> f32
		return e.perLaneU(execMask, func(l int) uint32 {
			return math.Float32bits(float32(e.dsrc(l, 0)))
		})
	case sass.SemI2I:
		return e.perLaneU(execMask, func(l int) uint32 {
			v := e.usrc(l, 0)
			switch in.Mods.Width {
			case 1:
				if in.Mods.Signed {
					return uint32(int32(int8(v)))
				}
				return v & 0xff
			case 2:
				if in.Mods.Signed {
					return uint32(int32(int16(v)))
				}
				return v & 0xffff
			default:
				return v
			}
		})
	case sass.SemFrnd:
		return e.perLaneF(execMask, func(l int) float32 {
			return float32(math.RoundToEven(float64(e.fsrc(l, 0))))
		})

	// --- Memory ---
	case sass.SemLd:
		return e.load(execMask, info.Space)
	case sass.SemLdc:
		return e.loadConst(execMask)
	case sass.SemSt:
		return e.store(execMask, info.Space)
	case sass.SemAtom:
		return e.atomic(execMask, info.Space, true)
	case sass.SemRed:
		return e.atomic(execMask, info.Space, false)

	// --- Control ---
	case sass.SemBar:
		return true, 0, 0
	case sass.SemBra, sass.SemJmp:
		t := in.Src[0].Target
		for m := execMask; m != 0; m &= m - 1 {
			w.pc[bits.TrailingZeros32(m)] = t
		}
		return false, 0, 0
	case sass.SemBrx:
		for m := execMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			w.pc[lane] = int32(e.usrc(lane, 0))
		}
		return false, 0, 0
	case sass.SemCall:
		t := in.Src[0].Target
		for m := execMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			if len(w.stack[lane]) >= maxCallDepth {
				return false, TrapCallStack, 0
			}
			w.stack[lane] = append(w.stack[lane], int32(pc+1))
			w.pc[lane] = t
		}
		return false, 0, 0
	case sass.SemRet:
		for m := execMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			st := w.stack[lane]
			if len(st) == 0 {
				return false, TrapCallStack, 0
			}
			w.pc[lane] = st[len(st)-1]
			w.stack[lane] = st[:len(st)-1]
		}
		return false, 0, 0
	case sass.SemExit, sass.SemKill:
		w.exitedMask |= execMask
		return false, 0, 0
	case sass.SemBpt:
		if execMask != 0 {
			return false, TrapBreakpoint, 0
		}
		return false, 0, 0

	case sass.SemNop, sass.SemNopLike:
		return false, 0, 0

	default: // SemNone: architecturally defined but not executable here
		return false, TrapInvalidInstruction, 0
	}
}

// evalCtx bundles the per-instruction evaluation state.
type evalCtx struct {
	blk *blockCtx
	w   *warp
	in  *sass.Instr
}

// raw reads a source operand's 32-bit value with no negation applied.
func (e *evalCtx) raw(lane, idx int) uint32 {
	o := &e.in.Src[idx]
	switch o.Kind {
	case sass.OpdReg:
		if o.Reg == sass.RZ {
			return 0
		}
		return e.w.regs[lane][o.Reg]
	case sass.OpdImm:
		return o.Imm
	case sass.OpdConst:
		return e.blk.constRead(o.Off)
	case sass.OpdLabel:
		return uint32(o.Target)
	case sass.OpdSpecial:
		return e.special(lane, o.SReg)
	default:
		return 0
	}
}

// usrc reads a source as an unsigned value (negation ignored).
func (e *evalCtx) usrc(lane, idx int) uint32 { return e.raw(lane, idx) }

// usrcLane reads operand idx as lane sees it (for cross-lane ops).
func (e *evalCtx) usrcLane(lane, idx int) uint32 { return e.raw(lane, idx) }

// isrc reads a source with integer negation.
func (e *evalCtx) isrc(lane, idx int) uint32 {
	v := e.raw(lane, idx)
	if e.in.Src[idx].Neg {
		return -v
	}
	return v
}

// fbits reads a source as float32 bits with sign-flip negation.
func (e *evalCtx) fbits(lane, idx int) uint32 {
	v := e.raw(lane, idx)
	if e.in.Src[idx].Neg {
		v ^= 0x80000000
	}
	return v
}

// fsrc reads a source as a float32.
func (e *evalCtx) fsrc(lane, idx int) float32 { return math.Float32frombits(e.fbits(lane, idx)) }

// dsrc reads a source as a float64 from a register pair or 8-byte constant.
func (e *evalCtx) dsrc(lane, idx int) float64 {
	o := &e.in.Src[idx]
	var b uint64
	switch o.Kind {
	case sass.OpdReg:
		b = e.readPair(lane, o.Reg)
	case sass.OpdConst:
		lo := e.blk.constRead(o.Off)
		hi := e.blk.constRead(o.Off + 4)
		b = uint64(hi)<<32 | uint64(lo)
	case sass.OpdImm:
		// A 32-bit float immediate used in a double context widens.
		return float64(math.Float32frombits(o.Imm))
	}
	if o.Neg {
		b ^= 1 << 63
	}
	return math.Float64frombits(b)
}

// psrc reads a predicate source, defaulting to true when absent.
func (e *evalCtx) psrc(lane, idx int) bool {
	if idx >= len(e.in.Src) {
		return true
	}
	o := &e.in.Src[idx]
	if o.Kind != sass.OpdPred {
		return true
	}
	v := e.w.preds[lane][o.Pred.Pred]
	if o.Pred.Pred == sass.PT {
		v = true
	}
	return v != o.Pred.Neg
}

func (e *evalCtx) readPair(lane int, r sass.RegID) uint64 { return readPairReg(e.w, lane, r) }

// readPairReg reads the 64-bit value in the register pair (r, r+1); RZ and
// the register adjacent to RZ contribute zero halves. Shared between the
// interpreter and the translated plans so pair semantics cannot drift.
func readPairReg(w *warp, lane int, r sass.RegID) uint64 {
	lo := uint64(0)
	hi := uint64(0)
	if r != sass.RZ {
		lo = uint64(w.regs[lane][r])
	}
	if r+1 != sass.RZ && r != sass.RZ {
		hi = uint64(w.regs[lane][r+1])
	}
	return hi<<32 | lo
}

// wr writes a 32-bit value to the first destination operand.
func (e *evalCtx) wr(lane int, v uint32) {
	d := &e.in.Dst[0]
	switch d.Kind {
	case sass.OpdReg:
		if d.Reg != sass.RZ {
			e.w.regs[lane][d.Reg] = v
		}
	case sass.OpdPred:
		if d.Pred.Pred != sass.PT {
			e.w.preds[lane][d.Pred.Pred] = v != 0
		}
	}
}

// wrP writes a predicate destination.
func (e *evalCtx) wrP(lane int, v bool) {
	d := &e.in.Dst[0]
	if d.Kind == sass.OpdPred && d.Pred.Pred != sass.PT {
		e.w.preds[lane][d.Pred.Pred] = v
	}
}

// wrPair writes a 64-bit value to the destination register pair.
func (e *evalCtx) wrPair(lane int, v uint64) {
	d := &e.in.Dst[0]
	if d.Kind != sass.OpdReg || d.Reg == sass.RZ {
		return
	}
	e.w.regs[lane][d.Reg] = uint32(v)
	if d.Reg+1 != sass.RZ {
		e.w.regs[lane][d.Reg+1] = uint32(v >> 32)
	}
}

// perLaneU runs an unsigned-result computation on each exec lane.
func (e *evalCtx) perLaneU(execMask uint32, f func(lane int) uint32) (bool, TrapKind, uint32) {
	for lane := 0; lane < WarpSize; lane++ {
		if execMask&(1<<uint(lane)) != 0 {
			e.wr(lane, f(lane))
		}
	}
	return false, 0, 0
}

// perLaneF runs a float32-result computation on each exec lane.
func (e *evalCtx) perLaneF(execMask uint32, f func(lane int) float32) (bool, TrapKind, uint32) {
	for lane := 0; lane < WarpSize; lane++ {
		if execMask&(1<<uint(lane)) != 0 {
			e.wr(lane, math.Float32bits(f(lane)))
		}
	}
	return false, 0, 0
}

// perLaneD runs a float64-result computation on each exec lane.
func (e *evalCtx) perLaneD(execMask uint32, f func(lane int) float64) (bool, TrapKind, uint32) {
	for lane := 0; lane < WarpSize; lane++ {
		if execMask&(1<<uint(lane)) != 0 {
			e.wrPair(lane, math.Float64bits(f(lane)))
		}
	}
	return false, 0, 0
}

// perLaneP runs a predicate-result computation on each exec lane.
func (e *evalCtx) perLaneP(execMask uint32, f func(lane int) bool) (bool, TrapKind, uint32) {
	for lane := 0; lane < WarpSize; lane++ {
		if execMask&(1<<uint(lane)) != 0 {
			e.wrP(lane, f(lane))
		}
	}
	return false, 0, 0
}

func (e *evalCtx) special(lane int, sr sass.SpecialReg) uint32 {
	return specialVal(e.blk, e.w, lane, sr)
}

// specialVal reads a special register for one lane. Shared between the
// interpreter and the translated plans so S2R semantics cannot drift.
func specialVal(blk *blockCtx, w *warp, lane int, sr sass.SpecialReg) uint32 {
	switch sr {
	case sass.SRTidX:
		return uint32(w.tid[lane].X)
	case sass.SRTidY:
		return uint32(w.tid[lane].Y)
	case sass.SRTidZ:
		return uint32(w.tid[lane].Z)
	case sass.SRCtaidX:
		return uint32(blk.blockIdx.X)
	case sass.SRCtaidY:
		return uint32(blk.blockIdx.Y)
	case sass.SRCtaidZ:
		return uint32(blk.blockIdx.Z)
	case sass.SRLaneID:
		return uint32(lane)
	case sass.SRWarpID:
		return uint32(w.id)
	case sass.SRSMID:
		return uint32(blk.smID)
	case sass.SREqMask:
		return 1 << uint(lane)
	case sass.SRLtMask:
		return 1<<uint(lane) - 1
	case sass.SRClock:
		return uint32(blk.dev.smClocks[blk.smID])
	default:
		return 0
	}
}

// shfl implements the warp shuffle. Reads complete before any write so that
// in-place shuffles are correct.
func (e *evalCtx) shfl(execMask uint32) (bool, TrapKind, uint32) {
	in := e.in
	var vals [WarpSize]uint32
	for lane := 0; lane < WarpSize; lane++ {
		if execMask&(1<<uint(lane)) != 0 {
			vals[lane] = e.usrc(lane, 0)
		}
	}
	for lane := 0; lane < WarpSize; lane++ {
		if execMask&(1<<uint(lane)) == 0 {
			continue
		}
		b := int(e.usrc(lane, 1))
		var src int
		switch in.Mods.Shfl {
		case sass.ShflIdx:
			src = b & (WarpSize - 1)
		case sass.ShflUp:
			src = lane - b
		case sass.ShflDown:
			src = lane + b
		case sass.ShflBfly:
			src = lane ^ b
		default:
			src = lane
		}
		v := vals[lane]
		if src >= 0 && src < WarpSize && execMask&(1<<uint(src)) != 0 {
			v = vals[src]
		}
		e.wr(lane, v)
	}
	return false, 0, 0
}

// constRead reads a 32-bit word from the launch constant bank; out-of-range
// reads return zero, as constant memory beyond the parameters is backed by
// zero pages on hardware.
func (blk *blockCtx) constRead(off int32) uint32 {
	if off < 0 || int(off)+4 > len(blk.constBank) {
		return 0
	}
	return binary.LittleEndian.Uint32(blk.constBank[off:])
}

func fmin(a, b float32) float32 {
	// SASS MNMX returns the non-NaN operand when one input is NaN.
	if isNaN32(a) {
		return b
	}
	if isNaN32(b) {
		return a
	}
	if a < b {
		return a
	}
	return b
}

func fmax(a, b float32) float32 {
	if isNaN32(a) {
		return b
	}
	if isNaN32(b) {
		return a
	}
	if a > b {
		return a
	}
	return b
}

func isNaN32(f float32) bool { return f != f }

func isInf32(f float32) bool { return f > math.MaxFloat32 || f < -math.MaxFloat32 }

func fcompare(c sass.CmpOp, a, b float32) bool {
	switch c {
	case sass.CmpF:
		return false
	case sass.CmpLT:
		return a < b
	case sass.CmpEQ:
		return a == b
	case sass.CmpLE:
		return a <= b
	case sass.CmpGT:
		return a > b
	case sass.CmpNE:
		return a != b
	case sass.CmpGE:
		return a >= b
	case sass.CmpNum:
		return !isNaN32(a) && !isNaN32(b)
	case sass.CmpNan:
		return isNaN32(a) || isNaN32(b)
	case sass.CmpT:
		return true
	default:
		return false
	}
}

func dcompare(c sass.CmpOp, a, b float64) bool {
	switch c {
	case sass.CmpF:
		return false
	case sass.CmpLT:
		return a < b
	case sass.CmpEQ:
		return a == b
	case sass.CmpLE:
		return a <= b
	case sass.CmpGT:
		return a > b
	case sass.CmpNE:
		return a != b
	case sass.CmpGE:
		return a >= b
	case sass.CmpNum:
		return !math.IsNaN(a) && !math.IsNaN(b)
	case sass.CmpNan:
		return math.IsNaN(a) || math.IsNaN(b)
	case sass.CmpT:
		return true
	default:
		return false
	}
}

func icompare(c sass.CmpOp, a, b uint32, unsigned bool) bool {
	if unsigned {
		switch c {
		case sass.CmpLT:
			return a < b
		case sass.CmpEQ:
			return a == b
		case sass.CmpLE:
			return a <= b
		case sass.CmpGT:
			return a > b
		case sass.CmpNE:
			return a != b
		case sass.CmpGE:
			return a >= b
		case sass.CmpT:
			return true
		default:
			return false
		}
	}
	sa, sb := int32(a), int32(b)
	switch c {
	case sass.CmpLT:
		return sa < sb
	case sass.CmpEQ:
		return sa == sb
	case sass.CmpLE:
		return sa <= sb
	case sass.CmpGT:
		return sa > sb
	case sass.CmpNE:
		return sa != sb
	case sass.CmpGE:
		return sa >= sb
	case sass.CmpT:
		return true
	default:
		return false
	}
}

func mulHigh(a, b uint32, signed bool) uint32 {
	if signed {
		return uint32(uint64(int64(int32(a))*int64(int32(b))) >> 32)
	}
	return uint32(uint64(a) * uint64(b) >> 32)
}

func lop3(a, b, c uint32, lut uint8) uint32 {
	var out uint32
	for i := 0; i < 8; i++ {
		if lut&(1<<uint(i)) == 0 {
			continue
		}
		term := uint32(0xffffffff)
		if i&4 != 0 {
			term &= a
		} else {
			term &= ^a
		}
		if i&2 != 0 {
			term &= b
		} else {
			term &= ^b
		}
		if i&1 != 0 {
			term &= c
		} else {
			term &= ^c
		}
		out |= term
	}
	return out
}

func prmt(a, b, sel uint32) uint32 {
	bytes8 := [8]byte{
		byte(a), byte(a >> 8), byte(a >> 16), byte(a >> 24),
		byte(b), byte(b >> 8), byte(b >> 16), byte(b >> 24),
	}
	var out uint32
	for i := 0; i < 4; i++ {
		n := (sel >> (4 * uint(i))) & 0xf
		v := bytes8[n&7]
		if n&8 != 0 { // replicate sign bit
			if v&0x80 != 0 {
				v = 0xff
			} else {
				v = 0
			}
		}
		out |= uint32(v) << (8 * uint(i))
	}
	return out
}

func mufu(fn sass.MufuFn, a float32) float32 {
	x := float64(a)
	var r float64
	switch fn {
	case sass.MufuRcp:
		r = 1 / x
	case sass.MufuRsq:
		r = 1 / math.Sqrt(x)
	case sass.MufuSqrt:
		r = math.Sqrt(x)
	case sass.MufuEx2:
		r = math.Exp2(x)
	case sass.MufuLg2:
		r = math.Log2(x)
	case sass.MufuSin:
		r = math.Sin(x)
	case sass.MufuCos:
		r = math.Cos(x)
	default:
		r = x
	}
	return float32(r)
}

func f2i(f float32, unsigned bool) uint32 {
	if isNaN32(f) {
		return 0
	}
	t := math.Trunc(float64(f))
	if unsigned {
		switch {
		case t <= 0:
			return 0
		case t >= math.MaxUint32:
			return math.MaxUint32
		default:
			return uint32(t)
		}
	}
	switch {
	case t <= math.MinInt32:
		return 0x80000000 // math.MinInt32 as a bit pattern
	case t >= math.MaxInt32:
		return math.MaxInt32
	default:
		return uint32(int32(t))
	}
}

func hmap2(a, b uint32, f func(x, y float32) float32) uint32 {
	lo := f32ToF16(f(f16ToF32(uint16(a)), f16ToF32(uint16(b))))
	hi := f32ToF16(f(f16ToF32(uint16(a>>16)), f16ToF32(uint16(b>>16))))
	return uint32(hi)<<16 | uint32(lo)
}

func hmap3(a, b, c uint32, f func(x, y, z float32) float32) uint32 {
	lo := f32ToF16(f(f16ToF32(uint16(a)), f16ToF32(uint16(b)), f16ToF32(uint16(c))))
	hi := f32ToF16(f(f16ToF32(uint16(a>>16)), f16ToF32(uint16(b>>16)), f16ToF32(uint16(c>>16))))
	return uint32(hi)<<16 | uint32(lo)
}

func f32Of(b uint32) float32     { return math.Float32frombits(b) }
func f32bitsOf(f float32) uint32 { return math.Float32bits(f) }
