package gpu

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/modcache"
	"repro/internal/sass"
)

// runWithEngine runs a launch like runWithWorkers, selecting the translation
// engine or the legacy interpreter, and snapshots the observable state plus
// the device digest.
func runWithEngine(t *testing.T, src, name string, noXlate bool,
	setup func(t *testing.T, d *Device) (Launch, uint32, int)) (parRun, uint64) {
	t.Helper()
	d := newTestDevice(t)
	d.NoXlate = noXlate
	k := mustKernel(t, src, name)
	l, outp, outLen := setup(t, d)
	l.Kernel = &ExecKernel{K: k}
	stats, err := d.Run(&l)
	r := parRun{stats: stats, err: err, log: d.LogEvents()}
	if outLen > 0 {
		b, rerr := d.Mem.ReadBytes(outp, outLen)
		if rerr != nil {
			t.Fatalf("ReadBytes: %v", rerr)
		}
		r.out = b
	}
	return r, d.Digest()
}

// TestXlateDifferential holds translated execution bit-identical to the
// interpreter across the workload classes the engine optimizes: divergent
// control flow with clock reads, barrier-synchronized shared-memory
// reduction, and concurrently faulting blocks. Outputs, stats, traps, device
// log, and the full device digest must match.
func TestXlateDifferential(t *testing.T) {
	cases := []struct {
		name, src, kernel string
		setup             func(t *testing.T, d *Device) (Launch, uint32, int)
	}{
		{
			name: "clockmix", src: clockMixSrc, kernel: "clockmix",
			setup: func(t *testing.T, d *Device) (Launch, uint32, int) {
				const n = 8 * 64
				outp := mustAllocWrite(t, d, 4*n, nil)
				return Launch{
					Grid:   Dim3{X: 8, Y: 1, Z: 1},
					Block:  Dim3{X: 64, Y: 1, Z: 1},
					Params: []uint32{outp},
				}, outp, 4 * n
			},
		},
		{
			name: "gridreduce", src: gridReduceSrc, kernel: "gridreduce",
			setup: func(t *testing.T, d *Device) (Launch, uint32, int) {
				const blocks, threads = 6, 256
				in := make([]byte, 4*blocks*threads)
				for i := 0; i < blocks*threads; i++ {
					in[4*i] = byte(i)
					in[4*i+1] = byte(i >> 8)
				}
				inp := mustAllocWrite(t, d, len(in), in)
				outp := mustAllocWrite(t, d, 4*blocks, nil)
				return Launch{
					Grid:   Dim3{X: blocks, Y: 1, Z: 1},
					Block:  Dim3{X: threads, Y: 1, Z: 1},
					Params: []uint32{inp, outp},
				}, outp, 4 * blocks
			},
		},
		{
			name: "faulty", src: concurrentFaultSrc, kernel: "faulty",
			setup: func(t *testing.T, d *Device) (Launch, uint32, int) {
				const n = 2 * 32
				outp := mustAllocWrite(t, d, 4*n, nil)
				return Launch{
					Grid:   Dim3{X: 8, Y: 1, Z: 1},
					Block:  Dim3{X: 32, Y: 1, Z: 1},
					Params: []uint32{outp},
				}, outp, 4 * n
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref, refDig := runWithEngine(t, tc.src, tc.kernel, true, tc.setup)
			got, gotDig := runWithEngine(t, tc.src, tc.kernel, false, tc.setup)
			expectSame(t, "translated", ref, got)
			if refDig != gotDig {
				t.Errorf("device digest: translated %#x, interpreted %#x", gotDig, refDig)
			}
		})
	}
}

// TestXlateRandomALU reruns the random straight-line differential programs
// with translation explicitly off and on; both must match the independent
// reference evaluator.
func TestXlateRandomALU(t *testing.T) {
	// The plain differential_test harness already runs translated (the
	// default); here the same probe harness runs interpreted so any
	// divergence between the two engines' ALU semantics would show as a
	// mismatch against the shared reference model in randomALUProgram.
	src := "MOV R1, 0x2a\nIADD R2, R1, 0x1\nLOP.XOR R3, R2, R1\nPOPC R4, R3\n"
	snapT := runBody(t, src)
	// runBody builds its own device with translation on; replicate with the
	// interpreter through a full kernel run and compare final registers.
	p, err := sass.Assemble("probe", ".kernel probe\n"+src+"    EXIT\n")
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDevice(sass.FamilyVolta, 1)
	if err != nil {
		t.Fatal(err)
	}
	d.NoXlate = true
	snapI := &snapshot{}
	ek := &ExecKernel{K: p.Kernels[0]}
	ek.Before = make([][]Callback, len(p.Kernels[0].Instrs))
	ek.Before[len(p.Kernels[0].Instrs)-1] = []Callback{func(c *InstrCtx) {
		for lane := 0; lane < WarpSize; lane++ {
			for r := 0; r < 64; r++ {
				snapI.regs[lane][r] = c.ReadReg(lane, sass.RegID(r))
			}
		}
	}}
	if _, err := d.Run(&Launch{
		Kernel: ek,
		Grid:   Dim3{X: 1, Y: 1, Z: 1},
		Block:  Dim3{X: WarpSize, Y: 1, Z: 1},
		Budget: 1 << 20,
	}); err != nil {
		t.Fatal(err)
	}
	if snapT.regs != snapI.regs {
		t.Fatalf("translated and interpreted register files differ")
	}
}

// TestXlateSnapshotDifferential pauses a barrier-heavy launch every few
// warp instructions under both engines and requires the digest trajectory —
// every intermediate architectural state, not just the final one — to match.
func TestXlateSnapshotDifferential(t *testing.T) {
	digests := func(noXlate bool) []uint64 {
		d := newTestDevice(t)
		d.NoXlate = noXlate
		k := mustKernel(t, gridReduceSrc, "gridreduce")
		const blocks, threads = 2, 256
		in := make([]byte, 4*blocks*threads)
		for i := range in {
			in[i] = byte(i * 7)
		}
		inp := mustAllocWrite(t, d, len(in), in)
		outp := mustAllocWrite(t, d, 4*blocks, nil)
		run, err := d.BeginRun(&Launch{
			Kernel: &ExecKernel{K: k},
			Grid:   Dim3{X: blocks, Y: 1, Z: 1},
			Block:  Dim3{X: threads, Y: 1, Z: 1},
			Params: []uint32{inp, outp},
		})
		if err != nil {
			t.Fatal(err)
		}
		var digs []uint64
		for {
			paused, err := run.Resume(37)
			if err != nil {
				t.Fatalf("Resume: %v", err)
			}
			digs = append(digs, run.Digest())
			if !paused {
				return digs
			}
		}
	}
	ref := digests(true)
	got := digests(false)
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("digest trajectories differ:\ninterpreted %d pauses\ntranslated  %d pauses", len(ref), len(got))
	}
}

// TestSchedulerDigestDifferential holds the warp-split scheduler to the
// legacy min-PC scan digest-for-digest: pausing a heavily diverged kernel
// every 37 warp instructions must see the identical state trajectory in
// both modes, so issue order, accounting, and reconvergence points all
// match, not just final outputs.
func TestSchedulerDigestDifferential(t *testing.T) {
	digests := func(legacy bool) []uint64 {
		d := newTestDevice(t)
		d.LegacySched = legacy
		k := mustKernel(t, divergentSrc, "div")
		const blocks, threads = 2, 128
		outp := mustAllocWrite(t, d, 4*blocks*threads, nil)
		run, err := d.BeginRun(&Launch{
			Kernel: &ExecKernel{K: k},
			Grid:   Dim3{X: blocks, Y: 1, Z: 1},
			Block:  Dim3{X: threads, Y: 1, Z: 1},
			Params: []uint32{outp},
		})
		if err != nil {
			t.Fatal(err)
		}
		var digs []uint64
		for {
			paused, err := run.Resume(37)
			if err != nil {
				t.Fatalf("Resume: %v", err)
			}
			digs = append(digs, run.Digest())
			if !paused {
				return digs
			}
		}
	}
	ref := digests(true)
	got := digests(false)
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("digest trajectories differ:\nlegacy scan %d pauses\nwarp-split  %d pauses", len(ref), len(got))
	}
}

// TestXlateDivergentConcurrentSharedPlans is the divergent-workload variant
// of TestXlateConcurrentSharedPlans: many devices execute one shared plan
// concurrently with block-parallel workers and a mix of scheduler modes,
// under -race in CI. Per-warp split state must stay device-private and every
// combination must reproduce the sequential reference.
func TestXlateDivergentConcurrentSharedPlans(t *testing.T) {
	setup := func(t *testing.T, d *Device) (Launch, uint32, int) {
		const blocks, threads = 8, 128
		outp := mustAllocWrite(t, d, 4*blocks*threads, nil)
		return Launch{
			Grid:   Dim3{X: blocks, Y: 1, Z: 1},
			Block:  Dim3{X: threads, Y: 1, Z: 1},
			Params: []uint32{outp},
		}, outp, 4 * blocks * threads
	}
	ref, _ := runWithEngine(t, divergentSrc, "div", false, setup)
	if ref.err != nil {
		t.Fatal(ref.err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < len(errs); g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			d := newTestDevice(t)
			d.Workers = 1 + g%4
			d.LegacySched = g%2 == 1
			k := mustKernel(t, divergentSrc, "div")
			l, outp, outLen := setup(t, d)
			l.Kernel = &ExecKernel{K: k}
			stats, err := d.Run(&l)
			if err != nil {
				errs[g] = err
				return
			}
			if !reflect.DeepEqual(stats, ref.stats) {
				errs[g] = fmt.Errorf("goroutine %d: stats %+v, want %+v", g, stats, ref.stats)
				return
			}
			out, err := d.Mem.ReadBytes(outp, outLen)
			if err != nil {
				errs[g] = err
				return
			}
			if !bytes.Equal(out, ref.out) {
				errs[g] = fmt.Errorf("goroutine %d: output differs from reference", g)
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// TestXlatePlanCacheWarmCold proves plans are built once per kernel content
// hash and shared across devices: a cold run builds, every later run —
// including on a different device — hits.
func TestXlatePlanCacheWarmCold(t *testing.T) {
	modcache.Shared.Reset()
	src := `
.kernel cachetest
    MOV R1, 0x5eedfeed
    IADD R2, R1, 0x1
    EXIT
`
	k := mustKernel(t, src, "cachetest")
	launch := func() *Launch {
		return &Launch{
			Kernel: &ExecKernel{K: k},
			Grid:   Dim3{X: 1, Y: 1, Z: 1},
			Block:  Dim3{X: 32, Y: 1, Z: 1},
		}
	}
	before := modcache.Shared.Stats()
	d1 := newTestDevice(t)
	if _, err := d1.Run(launch()); err != nil {
		t.Fatal(err)
	}
	afterCold := modcache.Shared.Stats()
	if afterCold.PlanBuilds != before.PlanBuilds+1 {
		t.Errorf("cold run: plan builds %d -> %d, want one build", before.PlanBuilds, afterCold.PlanBuilds)
	}
	d2 := newTestDevice(t)
	if _, err := d2.Run(launch()); err != nil {
		t.Fatal(err)
	}
	afterWarm := modcache.Shared.Stats()
	if afterWarm.PlanBuilds != afterCold.PlanBuilds {
		t.Errorf("warm run rebuilt the plan: builds %d -> %d", afterCold.PlanBuilds, afterWarm.PlanBuilds)
	}
	if afterWarm.PlanHits != afterCold.PlanHits+1 {
		t.Errorf("warm run: plan hits %d -> %d, want one hit", afterCold.PlanHits, afterWarm.PlanHits)
	}
}

// TestXlateSharedKernelImmutability proves translation never mutates the
// kernel it compiles: the decoded instruction list is deep-compared before
// and after translated runs (plans are shared process-wide, so a mutation
// would corrupt every future launch of the kernel).
func TestXlateSharedKernelImmutability(t *testing.T) {
	k := mustKernel(t, gridReduceSrc, "gridreduce")
	cloneOps := func(ops []sass.Operand) []sass.Operand {
		if ops == nil {
			return nil
		}
		// Preserve empty-but-non-nil slices: DeepEqual distinguishes them.
		return append(make([]sass.Operand, 0, len(ops)), ops...)
	}
	saved := make([]sass.Instr, len(k.Instrs))
	copy(saved, k.Instrs)
	for i := range saved {
		saved[i].Dst = cloneOps(k.Instrs[i].Dst)
		saved[i].Src = cloneOps(k.Instrs[i].Src)
	}
	d := newTestDevice(t)
	const blocks, threads = 2, 256
	inp := mustAllocWrite(t, d, 4*blocks*threads, make([]byte, 4*blocks*threads))
	outp := mustAllocWrite(t, d, 4*blocks, nil)
	for i := 0; i < 3; i++ {
		if _, err := d.Run(&Launch{
			Kernel: &ExecKernel{K: k},
			Grid:   Dim3{X: blocks, Y: 1, Z: 1},
			Block:  Dim3{X: threads, Y: 1, Z: 1},
			Params: []uint32{inp, outp},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(saved, k.Instrs) {
		t.Fatalf("translated runs mutated the kernel's instruction list")
	}
}

// TestXlateConcurrentSharedPlans runs many devices concurrently against one
// kernel (one shared plan) with block-parallel workers, under -race in CI:
// plan execution must be safe to share and every device must produce the
// sequential reference output.
func TestXlateConcurrentSharedPlans(t *testing.T) {
	setup := func(t *testing.T, d *Device) (Launch, uint32, int) {
		const n = 8 * 64
		outp := mustAllocWrite(t, d, 4*n, nil)
		return Launch{
			Grid:   Dim3{X: 8, Y: 1, Z: 1},
			Block:  Dim3{X: 64, Y: 1, Z: 1},
			Params: []uint32{outp},
		}, outp, 4 * n
	}
	ref, _ := runWithEngine(t, clockMixSrc, "clockmix", true, setup)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < len(errs); g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			d := newTestDevice(t)
			d.Workers = 1 + g%4
			k := mustKernel(t, clockMixSrc, "clockmix")
			l, outp, outLen := setup(t, d)
			l.Kernel = &ExecKernel{K: k}
			stats, err := d.Run(&l)
			if err != nil {
				errs[g] = err
				return
			}
			if !reflect.DeepEqual(stats, ref.stats) {
				errs[g] = fmt.Errorf("goroutine %d: stats %+v, want %+v", g, stats, ref.stats)
				return
			}
			out, err := d.Mem.ReadBytes(outp, outLen)
			if err != nil {
				errs[g] = err
				return
			}
			if !bytes.Equal(out, ref.out) {
				errs[g] = fmt.Errorf("goroutine %d: output differs from reference", g)
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// TestXlateAllocs bounds steady-state per-launch allocations: with the plan
// cached and warp/shared/page state pooled, repeat launches on one device
// must not scale allocations with register-file or buffer sizes.
func TestXlateAllocs(t *testing.T) {
	d := newTestDevice(t)
	k := mustKernel(t, clockMixSrc, "clockmix")
	const n = 8 * 64
	outp := mustAllocWrite(t, d, 4*n, nil)
	l := &Launch{
		Kernel: &ExecKernel{K: k},
		Grid:   Dim3{X: 8, Y: 1, Z: 1},
		Block:  Dim3{X: 64, Y: 1, Z: 1},
		Params: []uint32{outp},
	}
	if _, err := d.Run(l); err != nil { // warm plan cache and pools
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, err := d.Run(l); err != nil {
			t.Fatal(err)
		}
	})
	// A warp register file alone is 32 KiB; 16 blocks once allocated ~70
	// objects per launch. The pooled engine needs only per-launch bookkeeping.
	if avg > 60 {
		t.Errorf("steady-state launch allocated %.1f objects, want <= 60", avg)
	}
}
