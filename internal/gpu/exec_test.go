package gpu

import (
	"math"
	"testing"

	"repro/internal/sass"
)

// snapshot captures architectural state at the end of a probe kernel.
type snapshot struct {
	regs  [WarpSize][64]uint32
	preds [WarpSize][sass.NumPreds]bool
}

// runBody assembles a kernel from the body (the harness appends EXIT),
// runs it on one warp, and snapshots registers and predicates just before
// the exit.
func runBody(t *testing.T, body string) *snapshot {
	t.Helper()
	src := ".kernel probe\n" + body + "\n    EXIT\n"
	p, err := sass.Assemble("probe", src)
	if err != nil {
		t.Fatalf("assemble: %v\n%s", err, src)
	}
	k := p.Kernels[0]
	d, err := NewDevice(sass.FamilyVolta, 1)
	if err != nil {
		t.Fatal(err)
	}
	snap := &snapshot{}
	ek := &ExecKernel{K: k}
	ek.Before = make([][]Callback, len(k.Instrs))
	ek.Before[len(k.Instrs)-1] = []Callback{func(c *InstrCtx) {
		for lane := 0; lane < WarpSize; lane++ {
			for r := 0; r < 64; r++ {
				snap.regs[lane][r] = c.ReadReg(lane, sass.RegID(r))
			}
			for pr := 0; pr < int(sass.NumPreds); pr++ {
				snap.preds[lane][pr] = c.ReadPred(lane, sass.PredID(pr))
			}
		}
	}}
	if _, err := d.Run(&Launch{
		Kernel: ek,
		Grid:   Dim3{X: 1, Y: 1, Z: 1},
		Block:  Dim3{X: WarpSize, Y: 1, Z: 1},
		Budget: 1 << 20,
	}); err != nil {
		t.Fatalf("run: %v\n%s", err, src)
	}
	return snap
}

func (s *snapshot) r(lane, reg int) uint32 { return s.regs[lane][reg] }
func (s *snapshot) f(lane, reg int) float32 {
	return math.Float32frombits(s.regs[lane][reg])
}
func (s *snapshot) d(lane, reg int) float64 {
	return math.Float64frombits(uint64(s.regs[lane][reg+1])<<32 | uint64(s.regs[lane][reg]))
}

// TestALUSemantics is the table-driven single-result semantics check: each
// case computes into R10 (or P1 for predicates) on every lane.
func TestALUSemantics(t *testing.T) {
	tests := []struct {
		name string
		body string
		want uint32
	}{
		{"IADD", "MOV R1, 0x5\nIADD R10, R1, 0x7", 12},
		{"IADD negative", "MOV R1, 0x5\nIADD R10, R1, -0x7", 0xfffffffe},
		{"IADD neg reg", "MOV R1, 0x5\nMOV R2, 0x3\nIADD R10, R1, -R2", 2},
		{"IADD3", "MOV R1, 0x1\nMOV R2, 0x2\nIADD3 R10, R1, R2, 0x4", 7},
		{"IMAD", "MOV R1, 0x6\nMOV R2, 0x7\nIMAD R10, R1, R2, 0x1", 43},
		{"IMAD.HI", "MOV R1, 0x10000\nMOV R2, 0x10000\nIMAD.HI R10, R1, R2, 0x5", 6},
		{"IMUL", "MOV R1, 0xffffffff\nIMUL R10, R1, 0x2", 0xfffffffe},
		{"IMUL.HI signed", "MOV R1, -0x2\nMOV R2, 0x4\nIMUL.HI R10, R1, R2", 0xffffffff},
		{"IMUL.HI.U32", "MOV R1, -0x2\nMOV R2, 0x4\nIMUL.HI.U32 R10, R1, R2", 3},
		{"IABS", "MOV R1, -0x2a\nIABS R10, R1", 42},
		{"IMNMX min", "MOV R1, 0x3\nMOV R2, 0x9\nIMNMX R10, R1, R2, PT", 3},
		{"IMNMX max", "MOV R1, 0x3\nMOV R2, 0x9\nIMNMX R10, R1, R2, !PT", 9},
		{"IMNMX signed", "MOV R1, -0x1\nMOV R2, 0x1\nIMNMX R10, R1, R2, PT", 0xffffffff},
		{"IMNMX.U32", "MOV R1, -0x1\nMOV R2, 0x1\nIMNMX.U32 R10, R1, R2, PT", 1},
		{"SHL", "MOV R1, 0x3\nSHL R10, R1, 0x4", 48},
		{"SHL clamp", "MOV R1, 0x3\nSHL R10, R1, 0x20", 0},
		{"SHR signed", "MOV R1, -0x10\nSHR R10, R1, 0x2", 0xfffffffc},
		{"SHR.U32", "MOV R1, -0x10\nSHR.U32 R10, R1, 0x2", 0x3ffffffc},
		{"SHR clamp signed", "MOV R1, -0x10\nSHR R10, R1, 0x3f", 0xffffffff},
		{"SHF.R funnel", "MOV R1, 0x1\nMOV R2, 0x1\nSHF.R R10, R1, 0x4, R2", 0x10000000},
		{"SHF.L funnel", "MOV R1, 0x0\nMOV R2, 0x1\nSHF R10, R1, 0x4, R2", 0x10},
		{"LOP.AND", "MOV R1, 0xff\nLOP.AND R10, R1, 0x0f", 0x0f},
		{"LOP.OR", "MOV R1, 0xf0\nLOP.OR R10, R1, 0x0f", 0xff},
		{"LOP.XOR", "MOV R1, 0xff\nLOP.XOR R10, R1, 0x0f", 0xf0},
		{"LOP.PASS_B", "MOV R1, 0xff\nLOP.PASS_B R10, R1, 0x12", 0x12},
		{"LOP3 and", "MOV R1, 0xc\nMOV R2, 0xa\nLOP3 R10, R1, R2, RZ, 0xc0", 0x8},
		{"LOP3 xor3", "MOV R1, 0xc\nMOV R2, 0xa\nMOV R3, 0x9\nLOP3 R10, R1, R2, R3, 0x96", 0xf},
		{"POPC", "MOV R1, 0xf0f0\nPOPC R10, R1", 8},
		{"FLO", "MOV R1, 0x1000\nFLO R10, R1", 12},
		{"FLO zero", "FLO R10, RZ", 0xffffffff},
		{"BREV", "MOV R1, 0x1\nBREV R10, R1", 0x80000000},
		{"BMSK", "MOV R1, 0x4\nMOV R2, 0x3\nBMSK R10, R1, R2", 0x70},
		{"SGXT", "MOV R1, 0x80\nSGXT R10, R1, 0x8", 0xffffff80},
		{"SGXT positive", "MOV R1, 0x7f\nSGXT R10, R1, 0x8", 0x7f},
		{"VABSDIFF", "MOV R1, 0x3\nMOV R2, 0x8\nVABSDIFF R10, R1, R2", 5},
		{"SEL true", "ISETP.EQ.AND P0, RZ, RZ, PT\nMOV R1, 0x1\nMOV R2, 0x2\nSEL R10, R1, R2, P0", 1},
		{"SEL false", "ISETP.NE.AND P0, RZ, RZ, PT\nMOV R1, 0x1\nMOV R2, 0x2\nSEL R10, R1, R2, P0", 2},
		{"PRMT", "MOV R1, 0x44332211\nMOV R2, 0x88776655\nPRMT R10, R1, 0x5410, R2", 0x66552211},
		{"ISCADD", "MOV R1, 0x2\nMOV R2, 0x1\nISCADD R10, R1, R2, 0x4", 0x21},
		{"LEA", "MOV R1, 0x3\nMOV R2, 0x10\nLEA R10, R1, R2, 0x2", 0x1c},
		{"MOV imm", "MOV R10, 0xdeadbeef", 0xdeadbeef},
		{"MOV RZ", "MOV R10, RZ", 0},
		{"FADD", "MOV R1, 1.5f\nMOV R2, 2.25f\nFADD R10, R1, R2", math.Float32bits(3.75)},
		{"FADD neg", "MOV R1, 1.5f\nMOV R2, 2.5f\nFADD R10, R1, -R2", math.Float32bits(-1.0)},
		{"FMUL", "MOV R1, 3.0f\nMOV R2, 0.5f\nFMUL R10, R1, R2", math.Float32bits(1.5)},
		{"FFMA", "MOV R1, 2.0f\nMOV R2, 3.0f\nMOV R3, 1.0f\nFFMA R10, R1, R2, R3", math.Float32bits(7.0)},
		{"FMNMX min", "MOV R1, 1.0f\nMOV R2, 2.0f\nFMNMX R10, R1, R2, PT", math.Float32bits(1.0)},
		{"FMNMX max", "MOV R1, 1.0f\nMOV R2, 2.0f\nFMNMX R10, R1, R2, !PT", math.Float32bits(2.0)},
		{"FSEL", "ISETP.EQ.AND P0, RZ, RZ, PT\nMOV R1, 5.0f\nMOV R2, 6.0f\nFSEL R10, R1, R2, P0", math.Float32bits(5.0)},
		{"FSET true", "MOV R1, 2.0f\nMOV R2, 1.0f\nFSET.GT.AND R10, R1, R2, PT", 0xffffffff},
		{"FSET false", "MOV R1, 0.5f\nMOV R2, 1.0f\nFSET.GT.AND R10, R1, R2, PT", 0},
		{"MUFU.RCP", "MOV R1, 4.0f\nMUFU.RCP R10, R1", math.Float32bits(0.25)},
		{"MUFU.SQRT", "MOV R1, 9.0f\nMUFU.SQRT R10, R1", math.Float32bits(3.0)},
		{"MUFU.EX2", "MOV R1, 3.0f\nMUFU.EX2 R10, R1", math.Float32bits(8.0)},
		{"MUFU.LG2", "MOV R1, 8.0f\nMUFU.LG2 R10, R1", math.Float32bits(3.0)},
		{"F2I", "MOV R1, 3.7f\nF2I.TRUNC R10, R1", 3},
		{"F2I negative", "MOV R1, -3.7f\nF2I.TRUNC R10, R1", 0xfffffffd},
		{"F2I saturate", "MOV R1, 1e20f\nF2I R10, R1", math.MaxInt32},
		{"F2I.U32 clamp", "MOV R1, -5.0f\nF2I.U32 R10, R1", 0},
		{"I2F", "MOV R1, 0x10\nI2F R10, R1", math.Float32bits(16.0)},
		{"I2F signed", "MOV R1, -0x2\nI2F R10, R1", math.Float32bits(-2.0)},
		{"I2F.U32", "MOV R1, -0x1\nI2F.U32 R10, R1", math.Float32bits(4294967295.0)},
		{"I2I.S8", "MOV R1, 0x80\nI2I.S8 R10, R1", 0xffffff80},
		{"I2I.U16", "MOV R1, 0x12345678\nI2I.U16 R10, R1", 0x5678},
		{"FRND", "MOV R1, 2.5f\nFRND R10, R1", math.Float32bits(2.0)},
		{"P2R", "ISETP.EQ.AND P0, RZ, RZ, PT\nISETP.NE.AND P1, RZ, RZ, PT\nP2R R10, -0x1", 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			snap := runBody(t, tc.body)
			if got := snap.r(0, 10); got != tc.want {
				t.Fatalf("R10 = 0x%08x, want 0x%08x", got, tc.want)
			}
			// SIMT uniformity: every lane computed the same value.
			for lane := 1; lane < WarpSize; lane++ {
				if snap.r(lane, 10) != tc.want {
					t.Fatalf("lane %d diverged: 0x%08x", lane, snap.r(lane, 10))
				}
			}
		})
	}
}

func TestPredicateSemantics(t *testing.T) {
	tests := []struct {
		name string
		body string
		pred int
		want bool
	}{
		{"ISETP.LT true", "MOV R1, 0x1\nISETP.LT.AND P1, R1, 0x2, PT", 1, true},
		{"ISETP.LT false", "MOV R1, 0x3\nISETP.LT.AND P1, R1, 0x2, PT", 1, false},
		{"ISETP signed", "MOV R1, -0x1\nISETP.LT.AND P1, R1, 0x0, PT", 1, true},
		{"ISETP.U32", "MOV R1, -0x1\nISETP.LT.U32.AND P1, R1, 0x0, PT", 1, false},
		{"ISETP AND combine", "ISETP.EQ.AND P0, RZ, RZ, PT\nMOV R1, 0x1\nISETP.GE.AND P1, R1, 0x0, P0", 1, true},
		{"ISETP OR rescue", "MOV R1, 0x5\nISETP.LT.OR P1, R1, 0x2, PT", 1, true},
		{"ISETP XOR", "ISETP.EQ.XOR P1, RZ, RZ, PT", 1, false},
		{"FSETP GT", "MOV R1, 2.5f\nFSETP.GT.AND P1, R1, 1.0f, PT", 1, true},
		{"FSETP NAN", "MOV R1, 0x7fc00000\nFSETP.NAN.AND P1, R1, R1, PT", 1, true},
		{"FSETP NUM", "MOV R1, 1.0f\nFSETP.NUM.AND P1, R1, R1, PT", 1, true},
		{"PSETP", "ISETP.EQ.AND P0, RZ, RZ, PT\nISETP.NE.AND P2, RZ, RZ, PT\nPSETP.OR P1, P0, P2", 1, true},
		{"PLOP3 and", "ISETP.EQ.AND P0, RZ, RZ, PT\nPLOP3 P1, P0, PT, PT, 0x80", 1, true},
		{"R2P", "MOV R1, 0x2\nR2P P1, R1, 0x2", 1, true},
		{"R2P clear", "MOV R1, 0x1\nR2P P1, R1, 0x2", 1, false},
		{"FCHK div by zero", "MOV R1, 1.0f\nFCHK P1, R1, RZ", 1, true},
		{"FCHK ok", "MOV R1, 1.0f\nMOV R2, 2.0f\nFCHK P1, R1, R2", 1, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			snap := runBody(t, tc.body)
			if got := snap.preds[0][tc.pred]; got != tc.want {
				t.Fatalf("P%d = %v, want %v", tc.pred, got, tc.want)
			}
		})
	}
}

func TestFP64Semantics(t *testing.T) {
	tests := []struct {
		name string
		body string
		want float64
	}{
		// Float immediates widen from FP32, so use representable values.
		{"DADD", "MOV R2, RZ\nMOV R3, RZ\nDADD R10, R2, 1.5f\nDADD R10, R10, 2.25f", 3.75},
		{"DMUL", "MOV R2, RZ\nMOV R3, RZ\nDADD R2, R2, 3.0f\nDMUL R10, R2, 0.5f", 1.5},
		{"DFMA", "MOV R2, RZ\nMOV R3, RZ\nDADD R2, R2, 2.0f\nDFMA R10, R2, 4.0f, R2", 10},
		{"DADD neg", "MOV R2, RZ\nMOV R3, RZ\nDADD R2, R2, 5.0f\nDADD R10, R2, -R2", 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			snap := runBody(t, tc.body)
			if got := snap.d(0, 10); got != tc.want {
				t.Fatalf("R10:R11 = %g, want %g", got, tc.want)
			}
		})
	}
}

func TestDSETP(t *testing.T) {
	snap := runBody(t, `
MOV R2, RZ
MOV R3, RZ
DADD R2, R2, 2.0f
DSETP.GT.AND P1, R2, 1.0f, PT
DSETP.LT.AND P2, R2, 1.0f, PT
`)
	if !snap.preds[0][1] || snap.preds[0][2] {
		t.Fatalf("DSETP: P1=%v P2=%v", snap.preds[0][1], snap.preds[0][2])
	}
}

func TestHalfPacked(t *testing.T) {
	// 1.0h = 0x3c00, 2.0h = 0x4000; packed {hi=2.0, lo=1.0}.
	snap := runBody(t, `
MOV R1, 0x40003c00
MOV R2, 0x40003c00
HADD2 R10, R1, R2
HMUL2 R11, R1, R2
HFMA2 R12, R1, R2, R1
`)
	if got := snap.r(0, 10); got != 0x44004000 { // {4.0, 2.0}
		t.Errorf("HADD2 = 0x%08x, want 0x44004000", got)
	}
	if got := snap.r(0, 11); got != 0x44003c00 { // {4.0, 1.0}
		t.Errorf("HMUL2 = 0x%08x, want 0x44003c00", got)
	}
	if got := snap.r(0, 12); got != 0x46004000 { // {6.0, 2.0}
		t.Errorf("HFMA2 = 0x%08x, want 0x46004000", got)
	}
}

func TestLaneSpecials(t *testing.T) {
	snap := runBody(t, `
    S2R R1, SR_LANEID
    S2R R2, SR_EQMASK
    S2R R3, SR_LTMASK
    S2R R4, SR_WARPID
    S2R R5, SR_SMID
`)
	for lane := 0; lane < WarpSize; lane++ {
		if snap.r(lane, 1) != uint32(lane) {
			t.Fatalf("lane %d: LANEID = %d", lane, snap.r(lane, 1))
		}
		if snap.r(lane, 2) != 1<<uint(lane) {
			t.Fatalf("lane %d: EQMASK = 0x%x", lane, snap.r(lane, 2))
		}
		if snap.r(lane, 3) != 1<<uint(lane)-1 {
			t.Fatalf("lane %d: LTMASK = 0x%x", lane, snap.r(lane, 3))
		}
		if snap.r(lane, 4) != 0 || snap.r(lane, 5) != 0 {
			t.Fatalf("lane %d: warp/sm = %d/%d", lane, snap.r(lane, 4), snap.r(lane, 5))
		}
	}
}

func TestShuffleModes(t *testing.T) {
	snap := runBody(t, `
    S2R R1, SR_LANEID
    SHFL.IDX R10, R1, 0x3, 0x1f
    SHFL.UP R11, R1, 0x1, 0x1f
    SHFL.DOWN R12, R1, 0x2, 0x1f
    SHFL.BFLY R13, R1, 0x1, 0x1f
`)
	for lane := 0; lane < WarpSize; lane++ {
		if got := snap.r(lane, 10); got != 3 {
			t.Fatalf("SHFL.IDX lane %d = %d", lane, got)
		}
		wantUp := uint32(lane)
		if lane >= 1 {
			wantUp = uint32(lane - 1)
		}
		if got := snap.r(lane, 11); got != wantUp {
			t.Fatalf("SHFL.UP lane %d = %d, want %d", lane, got, wantUp)
		}
		wantDown := uint32(lane)
		if lane+2 < WarpSize {
			wantDown = uint32(lane + 2)
		}
		if got := snap.r(lane, 12); got != wantDown {
			t.Fatalf("SHFL.DOWN lane %d = %d, want %d", lane, got, wantDown)
		}
		if got := snap.r(lane, 13); got != uint32(lane^1) {
			t.Fatalf("SHFL.BFLY lane %d = %d, want %d", lane, got, lane^1)
		}
	}
}

func TestVoteBallot(t *testing.T) {
	snap := runBody(t, `
    S2R R1, SR_LANEID
    LOP.AND R2, R1, 0x1
    ISETP.EQ.AND P0, R2, 0x1, PT
    VOTE R10, P0
`)
	const odd = 0xaaaaaaaa
	for lane := 0; lane < WarpSize; lane++ {
		if got := snap.r(lane, 10); got != odd {
			t.Fatalf("VOTE ballot lane %d = 0x%08x, want 0x%08x", lane, got, odd)
		}
	}
}

func TestMatch(t *testing.T) {
	snap := runBody(t, `
    S2R R1, SR_LANEID
    LOP.AND R2, R1, 0x1
    MATCH R10, R2
`)
	for lane := 0; lane < WarpSize; lane++ {
		want := uint32(0x55555555)
		if lane%2 == 1 {
			want = 0xaaaaaaaa
		}
		if got := snap.r(lane, 10); got != want {
			t.Fatalf("MATCH lane %d = 0x%08x, want 0x%08x", lane, got, want)
		}
	}
}

func TestGuardedExecution(t *testing.T) {
	snap := runBody(t, `
    S2R R1, SR_LANEID
    ISETP.LT.AND P0, R1, 0x10, PT
    MOV R10, 0x1
@P0 MOV R10, 0x2
@!P0 MOV R11, 0x3
`)
	for lane := 0; lane < WarpSize; lane++ {
		wantR10, wantR11 := uint32(1), uint32(0)
		if lane < 16 {
			wantR10 = 2
		} else {
			wantR11 = 3
		}
		if snap.r(lane, 10) != wantR10 || snap.r(lane, 11) != wantR11 {
			t.Fatalf("lane %d: R10=%d R11=%d", lane, snap.r(lane, 10), snap.r(lane, 11))
		}
	}
}

// TestWritesToRZAndPTDiscarded: architectural sinks stay zero/true.
func TestWritesToRZAndPTDiscarded(t *testing.T) {
	snap := runBody(t, `
    MOV RZ, 0x1234
    IADD R10, RZ, 0x1
    ISETP.NE.AND PT, RZ, RZ, PT
@PT MOV R11, 0x7
`)
	if snap.r(0, 10) != 1 {
		t.Fatalf("RZ was written: R10 = %d", snap.r(0, 10))
	}
	if snap.r(0, 11) != 7 {
		t.Fatalf("PT was clobbered: R11 = %d", snap.r(0, 11))
	}
}

// TestClockSpecials: CS2R and SR_CLOCK read monotone per-SM counters.
func TestClockSpecials(t *testing.T) {
	snap := runBody(t, `
    CS2R R10, RZ
    S2R R12, SR_CLOCK
    CS2R R14, RZ
`)
	lo1 := snap.r(0, 10)
	clk := snap.r(0, 12)
	lo2 := snap.r(0, 14)
	if !(lo1 < clk && clk < lo2) {
		t.Fatalf("clock not monotone: %d %d %d", lo1, clk, lo2)
	}
}

// TestLDCDynamicIndex: LDC with a register base reads the constant bank
// dynamically.
func TestLDCDynamicIndex(t *testing.T) {
	snap := runBody(t, `
    MOV R1, 0x0
    LDC R10, [R1]          // c0[NTID_X] = 32 (the probe block width)
    MOV R2, 0xc
    LDC R11, [R2]          // c0[NCTAID_X] = 1
`)
	if snap.r(0, 10) != 32 || snap.r(0, 11) != 1 {
		t.Fatalf("LDC dynamic reads = %d, %d", snap.r(0, 10), snap.r(0, 11))
	}
}

// TestKillExitsLanes: KILL terminates lanes like EXIT.
func TestKillExitsLanes(t *testing.T) {
	snap := runBody(t, `
    S2R R0, SR_LANEID
    ISETP.LT.AND P0, R0, 0x10, PT
    MOV R10, 0x1
@P0 KILL
    MOV R10, 0x2
`)
	for lane := 0; lane < WarpSize; lane++ {
		want := uint32(2)
		if lane < 16 {
			want = 1 // killed before the second MOV
		}
		if snap.r(lane, 10) != want {
			t.Fatalf("lane %d R10 = %d, want %d", lane, snap.r(lane, 10), want)
		}
	}
}

// TestNopLikesExecute: scheduling/fence opcodes run as no-ops without
// disturbing state.
func TestNopLikesExecute(t *testing.T) {
	snap := runBody(t, `
    MOV R10, 0x2a
    NOP
    MEMBAR.GPU
    DEPBAR
    WARPSYNC
    YIELD
    NANOSLEEP
    CCTL
    SSY done
done:
    IADD R10, R10, 0x1
`)
	if snap.r(0, 10) != 43 {
		t.Fatalf("R10 = %d after no-op chain", snap.r(0, 10))
	}
}

// TestSemNoneTrapsOnlyWhenExecuted: an unimplemented opcode in dead code is
// harmless.
func TestSemNoneTrapsOnlyWhenExecuted(t *testing.T) {
	snap := runBody(t, `
    BRA past
    TEX R1, R2
past:
    MOV R10, 0x7
`)
	if snap.r(0, 10) != 7 {
		t.Fatalf("dead TEX disturbed execution")
	}
}
