// Package gpu is an architectural SIMT simulator for the SASS-like ISA in
// internal/sass: streaming multiprocessors, 32-lane warps with divergence
// and reconvergence, global/shared/local memory with alignment and bounds
// checking, kernel launches, and per-instruction instrumentation hooks.
//
// The simulator is deliberately *architectural*, not microarchitectural:
// it models exactly the state the paper's fault model corrupts (destination
// registers of dynamic instructions) and the failure modes its outcome
// taxonomy observes (illegal/misaligned addresses, hangs, breakpoints).
// Execution is fully deterministic so that an injection run replays the
// profiled instruction stream bit-for-bit.
package gpu

import (
	"errors"
	"fmt"
)

// TrapKind classifies a GPU execution trap.
type TrapKind uint8

// Trap kinds. Values start at one.
const (
	TrapInvalidInstruction TrapKind = iota + 1 // opcode not executable / corrupt encoding
	TrapIllegalAddress                         // access to unallocated memory
	TrapMisaligned                             // address not aligned to access width
	TrapBadPC                                  // control transfer outside the kernel
	TrapCallStack                              // RET with empty call stack / overflow
	TrapBreakpoint                             // BPT: device-side assertion
	TrapInstrLimit                             // launch instruction budget exceeded (hang)
	TrapSharedBounds                           // shared-memory access out of window
	TrapLocalBounds                            // local-memory access out of window
	TrapCancelled                              // host context cancelled the launch
)

var trapNames = [...]string{
	TrapInvalidInstruction: "invalid instruction",
	TrapIllegalAddress:     "illegal address",
	TrapMisaligned:         "misaligned address",
	TrapBadPC:              "illegal instruction address",
	TrapCallStack:          "call stack error",
	TrapBreakpoint:         "device breakpoint",
	TrapInstrLimit:         "instruction limit exceeded",
	TrapSharedBounds:       "shared memory out of bounds",
	TrapLocalBounds:        "local memory out of bounds",
	TrapCancelled:          "launch cancelled",
}

func (k TrapKind) String() string {
	if int(k) < len(trapNames) && k >= TrapInvalidInstruction {
		return trapNames[k]
	}
	return fmt.Sprintf("TrapKind(%d)", uint8(k))
}

// Trap is the error returned when a kernel faults. It is the analog of a
// CUDA device exception: sticky on the context, non-fatal to the host
// process unless the host checks for it.
type Trap struct {
	Kind   TrapKind
	Kernel string
	PC     int
	SMID   int
	Addr   uint32 // faulting address, when meaningful
	Detail string
}

// Error implements error.
func (t *Trap) Error() string {
	s := fmt.Sprintf("gpu trap: %s in kernel %q at pc %d (SM %d)", t.Kind, t.Kernel, t.PC, t.SMID)
	if t.Kind == TrapIllegalAddress || t.Kind == TrapMisaligned {
		s += fmt.Sprintf(", address 0x%x", t.Addr)
	}
	if t.Detail != "" {
		s += ": " + t.Detail
	}
	return s
}

// IsHang reports whether the trap indicates a non-terminating kernel.
func (t *Trap) IsHang() bool { return t.Kind == TrapInstrLimit }

// AsTrap extracts a *Trap from an error chain.
func AsTrap(err error) (*Trap, bool) {
	var t *Trap
	if errors.As(err, &t) {
		return t, true
	}
	return nil, false
}
