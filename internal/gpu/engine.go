package gpu

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"

	"repro/internal/sass"
)

// warp is the per-warp execution state. Divergence is modelled with
// per-lane program counters and min-PC scheduling: each step executes the
// instruction at the smallest live PC for every lane currently at that PC,
// which reconverges diverged lanes naturally and deterministically.
//
// Lane liveness is tracked with bitmasks rather than per-lane bool arrays
// so the hot loop never scans 32 lanes for bookkeeping. While every live
// lane sits at the same PC the warp is "converged": convPC is authoritative
// and the per-lane pc array is stale. Control-flow instructions materialize
// the per-lane PCs before executing (see blockCtx.step).
//
// While diverged, the default scheduler keeps a warp-split list (splits):
// the active lanes partitioned into (pc, mask) buckets sorted by pc, so the
// next issue is the head split in O(1) instead of an O(lanes) min-PC scan
// per instruction. The list is a pure cache over the per-lane PCs — pc[]
// stays authoritative at every schedule and pause boundary, splits are
// never snapshotted as authority (splitsOK=false forces a rebuild from
// pc[]) and never digested — and the legacy scan remains both the cold
// fallback (after indirect control flow) and the oracle
// (Device.LegacySched / NVBITFI_LEGACY_SCHED).
type warp struct {
	id         int
	pc         [WarpSize]int32
	regs       [WarpSize][sass.NumRegs]uint32
	preds      [WarpSize][sass.NumPreds]bool
	tid        [WarpSize]Dim3
	local      [WarpSize][]byte
	stack      [WarpSize][]int32
	liveMask   uint32 // lanes that exist in this warp (partial last warp)
	exitedMask uint32 // lanes that have executed EXIT
	converged  bool   // all live lanes share one PC; pc[] may be stale
	convPC     int32  // the shared PC while converged

	// Warp-split scheduler state: splits[:nsplits] partitions the active
	// lanes into disjoint PC buckets, sorted ascending by pc, valid only
	// while splitsOK. scanSched pins the warp to the legacy min-PC scan.
	splits    [WarpSize]warpSplit
	nsplits   int32
	splitsOK  bool
	scanSched bool

	barWait bool
	done    bool

	// dirtyRegs is an exclusive upper bound on the per-lane register indices
	// that may hold nonzero values: every register at or above it is zero.
	// It lets reset clear only the written prefix of the 32 KiB register
	// file instead of all of it — the campaign's dominant memclr. Seeded
	// from the kernel's static destination scan (ExecKernel.writtenRegHi)
	// when a block claims the warp, and bumped by InstrCtx.WriteReg, the one
	// writer that is not bounded by the static scan.
	dirtyRegs int32
}

// activeMask returns the lanes that exist and have not exited.
func (w *warp) activeMask() uint32 { return w.liveMask &^ w.exitedMask }

// warpSplit is one bucket of the warp-split list: the lanes in mask all sit
// at pc.
type warpSplit struct {
	pc   int32
	mask uint32
}

// schedule returns the next PC to issue and the set of live lanes at it,
// or done when every lane has exited. On the converged fast path this is
// two loads. While diverged the default scheduler issues the head of the
// warp-split list in O(1), rebuilding the list from the per-lane PCs only
// when it was invalidated (indirect control flow, restore). The min-PC
// scan remains the legacy path (scanSched) and the rebuild primitive.
func (w *warp) schedule() (minPC int32, atPC uint32, done bool) {
	active := w.liveMask &^ w.exitedMask
	if active == 0 {
		return 0, 0, true
	}
	if w.converged {
		return w.convPC, active, false
	}
	if !w.scanSched {
		if !w.splitsOK {
			w.rebuildSplits(active)
			if w.converged {
				return w.convPC, active, false
			}
		}
		return w.splits[0].pc, w.splits[0].mask, false
	}
	first := true
	for m := active; m != 0; m &= m - 1 {
		lane := bits.TrailingZeros32(m)
		if first || w.pc[lane] < minPC {
			minPC = w.pc[lane]
			first = false
		}
	}
	for m := active; m != 0; m &= m - 1 {
		lane := bits.TrailingZeros32(m)
		if w.pc[lane] == minPC {
			atPC |= 1 << uint(lane)
		}
	}
	if atPC == active {
		// Every live lane reconverged at one PC: back to the fast path.
		w.converged = true
		w.convPC = minPC
	}
	return minPC, atPC, false
}

// rebuildSplits reconstructs the warp-split list from the authoritative
// per-lane PCs — the cold path after indirect control flow (BRX/RET) or a
// snapshot restore. Sorted insertion per lane; the head split afterwards
// is exactly what the min-PC scan would have issued.
func (w *warp) rebuildSplits(active uint32) {
	w.nsplits = 0
	for m := active; m != 0; m &= m - 1 {
		lane := bits.TrailingZeros32(m)
		w.insertSplit(w.pc[lane], 1<<uint(lane))
	}
	w.splitsOK = true
	if w.nsplits == 1 {
		w.converged = true
		w.convPC = w.splits[0].pc
	}
}

// insertSplit merges (pc, mask) into the sorted split list.
func (w *warp) insertSplit(pc int32, mask uint32) {
	n := w.nsplits
	i := int32(0)
	for i < n && w.splits[i].pc < pc {
		i++
	}
	if i < n && w.splits[i].pc == pc {
		w.splits[i].mask |= mask
		return
	}
	copy(w.splits[i+1:n+1], w.splits[i:n])
	w.splits[i] = warpSplit{pc: pc, mask: mask}
	w.nsplits = n + 1
}

// dropHead removes the head split.
func (w *warp) dropHead() {
	copy(w.splits[:w.nsplits-1], w.splits[1:w.nsplits])
	w.nsplits--
}

// updateSplits folds one executed instruction into the warp-split list:
// the issued lanes (atPC, always the head split — or the whole warp when
// it was converged before this step) move to their successor PCs, derived
// from the instruction's flow class instead of re-scanning 32 lanes.
// Indirect flow (flowOther: BRX, RET) scatters lanes to data-dependent
// PCs, so it just invalidates the list; the next schedule rebuilds from
// pc[], which step has kept authoritative throughout.
func (w *warp) updateSplits(flow uint8, target, pc int32, atPC, execMask uint32, fromConverged bool) {
	if fromConverged {
		w.nsplits = 0
		w.splitsOK = true
	} else {
		if !w.splitsOK {
			return
		}
		w.dropHead()
	}
	switch flow {
	case flowOther:
		w.splitsOK = false
		return
	case flowLinear:
		w.insertSplit(pc+1, atPC)
	case flowExit:
		// Exited lanes leave the active set; only guard-suppressed
		// survivors fall through.
		if rem := atPC &^ execMask; rem != 0 {
			w.insertSplit(pc+1, rem)
		}
	case flowBranch:
		if fall := atPC &^ execMask; fall != 0 {
			w.insertSplit(pc+1, fall)
		}
		if execMask != 0 {
			w.insertSplit(target, execMask)
		}
	}
	if active := w.liveMask &^ w.exitedMask; w.nsplits == 1 && w.splits[0].mask == active {
		w.converged = true
		w.convPC = w.splits[0].pc
	}
}

// Flow classes for split maintenance: where an instruction sends the lanes
// that executed it.
const (
	flowLinear uint8 = iota // falls through to pc+1
	flowBranch              // direct transfer: taken lanes to target, rest to pc+1
	flowExit                // EXIT/KILL: taken lanes leave, rest to pc+1
	flowOther               // indirect or unknown: invalidates the split list
)

// flowOf classifies an instruction for updateSplits. Malformed direct
// branches (no target operand) classify as flowOther; the interpreter
// panics on them before split state is ever consulted.
func flowOf(in *sass.Instr) (flow uint8, target int32) {
	switch in.Op.Info().Sem {
	case sass.SemBra, sass.SemJmp, sass.SemCall:
		if len(in.Src) == 0 {
			return flowOther, 0
		}
		return flowBranch, in.Src[0].Target
	case sass.SemExit, sass.SemKill:
		return flowExit, 0
	case sass.SemBrx, sass.SemRet:
		return flowOther, 0
	}
	return flowLinear, 0
}

// predMask returns the lanes in m whose predicate p — negated when neg —
// evaluates true. Shared by the interpreter's guardMask and the translated
// guard closures. The scan is sequential by lane (no find-first-set
// dependency chain) so iterations overlap on the CPU.
func predMask(w *warp, m uint32, p sass.PredID, neg bool) uint32 {
	var execMask uint32
	for lane, rem := 0, m; rem != 0; lane, rem = lane+1, rem>>1 {
		if rem&1 != 0 && w.preds[lane&31][p] != neg {
			execMask |= 1 << uint(lane)
		}
	}
	return execMask
}

// guardMask evaluates the instruction guard for the lanes in atPC.
func guardMask(w *warp, in *sass.Instr, atPC uint32) uint32 {
	if in.Guard.Pred == sass.PT {
		if in.Guard.Neg {
			return 0
		}
		return atPC
	}
	return predMask(w, atPC, in.Guard.Pred, in.Guard.Neg)
}

// semAltersFlow reports whether the semantic can write per-lane PCs, which
// forces the converged fast path to materialize them first. EXIT and BAR
// are not flow-altering in this sense: they change only liveness and
// scheduling state, never the surviving lanes' PCs.
func semAltersFlow(sem sass.SemKind) bool {
	switch sem {
	case sass.SemBra, sass.SemJmp, sass.SemBrx, sass.SemCall, sass.SemRet:
		return true
	}
	return false
}

// budgetCounter is the launch instruction budget. The parallel scheduler
// shares one counter across its workers and draws from it atomically, so
// exactly the budgeted number of warp instructions issue in either mode.
//
// When ctx is non-nil the counter doubles as the launch's cancellation
// poll: every cancelPollStride takes it checks ctx.Err(), and a cancelled
// context makes take return false with the cancelled flag set, so the
// launch traps with TrapCancelled within a bounded number of instructions
// instead of draining the rest of its budget.
type budgetCounter struct {
	remaining int64
	shared    bool
	ctx       context.Context
	checkIn   int64 // takes until the next cancellation poll
	cancelled atomic.Bool
}

// cancelPollStride is how many warp instructions may issue between
// cancellation polls: small enough that cancellation lands in microseconds,
// large enough that the poll is invisible in the interpreter hot loop.
const cancelPollStride = 1024

func (b *budgetCounter) take() bool {
	if b.ctx != nil && !b.poll() {
		return false
	}
	if b.shared {
		return atomic.AddInt64(&b.remaining, -1) >= 0
	}
	b.remaining--
	return b.remaining >= 0
}

// takeN takes up to n instructions from the budget in one transaction and
// returns how many were granted. granted < n means the budget ran dry (or
// the context was cancelled, in which case granted is 0) after granted
// instructions — the same count a sequence of n take calls would have
// granted, so a translated run that charges per batch exhausts the budget
// at the exact instruction the per-step loop would have.
func (b *budgetCounter) takeN(n int64) (granted int64) {
	if b.ctx != nil && !b.pollN(n) {
		return 0
	}
	var rem int64
	if b.shared {
		rem = atomic.AddInt64(&b.remaining, -n)
	} else {
		b.remaining -= n
		rem = b.remaining
	}
	switch {
	case rem >= 0:
		return n
	case rem+n > 0:
		return rem + n
	default:
		return 0
	}
}

// refund returns instructions reserved by takeN that never issued — a
// translated run that faulted mid-batch keeps the faulting instruction
// charged and hands back the tail. The launch is about to die on the trap,
// but in parallel mode other workers still draw from the shared counter
// until they observe it, and the global never-over-issue invariant must
// hold for them.
func (b *budgetCounter) refund(n int64) {
	if n <= 0 {
		return
	}
	if b.shared {
		atomic.AddInt64(&b.remaining, n)
	} else {
		b.remaining += n
	}
}

// pollN advances the cancellation-check countdown by n takes at once:
// the countdown crosses zero exactly when some take in the batch would
// have polled, and the reset leaves at most a stride until the next poll —
// so the cancellation latency bound grows only by the maximum batch
// length. Which instruction inside the batch observes a cancelled context
// is not preserved (cancellation is host-race-timed and carries no
// deterministic attribution; see DESIGN.md section 3.7).
func (b *budgetCounter) pollN(n int64) bool {
	if b.cancelled.Load() {
		return false
	}
	if b.shared {
		if atomic.AddInt64(&b.checkIn, -n) > 0 {
			return true
		}
		atomic.StoreInt64(&b.checkIn, cancelPollStride)
	} else {
		if b.checkIn -= n; b.checkIn > 0 {
			return true
		}
		b.checkIn = cancelPollStride
	}
	if b.ctx.Err() != nil {
		b.cancelled.Store(true)
		return false
	}
	return true
}

// poll decrements the cancellation-check countdown and consults the context
// when it hits zero. It reports false once the context is cancelled.
func (b *budgetCounter) poll() bool {
	if b.cancelled.Load() {
		return false
	}
	if b.shared {
		if atomic.AddInt64(&b.checkIn, -1) > 0 {
			return true
		}
		atomic.StoreInt64(&b.checkIn, cancelPollStride)
	} else {
		if b.checkIn--; b.checkIn > 0 {
			return true
		}
		b.checkIn = cancelPollStride
	}
	if b.ctx.Err() != nil {
		b.cancelled.Store(true)
		return false
	}
	return true
}

// blockCtx is the per-block execution state.
type blockCtx struct {
	dev       *Device
	ek        *ExecKernel
	launch    *Launch
	constBank []byte
	shared    []byte
	warps     []*warp
	smID      int
	blockIdx  Dim3
	blockLin  int
	parallel  bool  // block runs concurrently with others (gates atomics locking)
	scratch   *warp // trampoline execution state

	// plan is the translated execution plan for the kernel, nil when
	// translation is disabled. When set, blockCtx.step dispatches through the
	// plan's pre-resolved closures instead of the interpreter switch, so
	// every warp loop twin (fast, ckpt, instrumented, disarmed) executes
	// translated steps with unchanged scheduling and accounting.
	plan *xplan

	// Checkpoint-engine state, all zero on ordinary runs. pause makes the
	// block interruptible at warp-instruction boundaries (LaunchRun);
	// counts accumulates per-static-instruction thread executions for
	// recording runs; resumeWarp is where a paused sweep picks back up.
	pause      *pauseCtl
	counts     []uint64
	resumeWarp int
}

// TrampolineLen is the length of the instrumentation trampoline: the
// register-save / argument-setup / call / restore sequence the JIT inserts
// around every instrumentation callback, as NVBit does on real hardware.
// The trampoline executes through the same interpreter as target code, so
// instrumented instructions cost ~TrampolineLen+1 instruction times — this
// is what produces the paper's profiling-versus-injection overhead shape
// (Figure 4).
const TrampolineLen = 28

// trampolineInstrs is the canned trampoline body: plain ALU traffic on
// scratch registers (no memory, no control flow), executed once per
// instrumentation call site per dynamic execution.
var trampolineInstrs = buildTrampoline()

func buildTrampoline() []sass.Instr {
	instrs := make([]sass.Instr, 0, TrampolineLen)
	ops := []sass.Op{
		sass.MustOp("IADD"), sass.MustOp("SHL"), sass.MustOp("LOP"),
		sass.MustOp("MOV"), sass.MustOp("IMAD"), sass.MustOp("SHR"),
	}
	for i := 0; i < TrampolineLen; i++ {
		op := ops[i%len(ops)]
		var in sass.Instr
		dst := sass.RegID(i % 8)
		switch op.Info().Sem {
		case sass.SemMov:
			in = sass.NewInstr(op, sass.R(dst), sass.R(sass.RegID((i+1)%8)))
		case sass.SemIMad:
			in = sass.NewInstr(op, sass.R(dst), sass.R(sass.RegID((i+1)%8)),
				sass.R(sass.RegID((i+2)%8)), sass.R(sass.RegID((i+3)%8)))
		case sass.SemLop:
			in = sass.NewInstr(op, sass.R(dst), sass.R(sass.RegID((i+1)%8)), sass.Imm(0x5a5a5a5a))
			in.Mods.Logic = sass.LogicXor
		default:
			in = sass.NewInstr(op, sass.R(dst), sass.R(sass.RegID((i+1)%8)), sass.Imm(uint32(i&7)))
		}
		instrs = append(instrs, in)
	}
	return instrs
}

// chargeTrampoline accounts for one trampoline execution. Trampoline
// instructions are tool code: they model the register-save/call/restore
// cost around a callback but are charged to neither the launch budget nor
// the profile counts, and their architectural effects are confined to the
// block's scratch warp — state nothing else ever reads. Interpreting them
// is therefore pure arithmetic in disguise, so the default path just bumps
// the TrampolineInstrs counter by what interpretation would have executed.
// Device.InterpretTrampolines keeps the legacy interpreted path for the
// differential test proving the two are observably identical.
func (blk *blockCtx) chargeTrampoline(stats *LaunchStats) {
	stats.TrampolineInstrs += TrampolineLen
	if blk.dev.InterpretTrampolines {
		blk.runTrampoline()
	}
}

// runTrampoline interprets the trampoline body on the block's scratch warp
// — the legacy path kept behind Device.InterpretTrampolines.
func (blk *blockCtx) runTrampoline() {
	if blk.scratch == nil {
		blk.scratch = &warp{liveMask: ^uint32(0)}
	}
	w := blk.scratch
	for i := range trampolineInstrs {
		blk.exec(w, &trampolineInstrs[i], 0, ^uint32(0))
	}
}

// Run executes a kernel launch to completion, a trap, or budget exhaustion.
// With Workers <= 1, or when the kernel carries instrumentation, blocks are
// scheduled round-robin across SMs on one goroutine in a fixed,
// deterministic order. Otherwise independent blocks are dispatched across a
// worker pool (see runParallel); results are bit-identical to the
// sequential schedule for race-free workloads.
func (d *Device) Run(l *Launch) (LaunchStats, error) {
	var stats LaunchStats
	if l.Kernel == nil || l.Kernel.K == nil {
		return stats, fmt.Errorf("gpu: launch with no kernel")
	}
	k := l.Kernel.K
	if l.Grid.Count() <= 0 || l.Block.Count() <= 0 {
		return stats, fmt.Errorf("gpu: launch of %q with empty grid or block", k.Name)
	}
	if l.Block.Count() > 1024 {
		return stats, fmt.Errorf("gpu: block of %d threads exceeds the 1024-thread limit", l.Block.Count())
	}
	if len(l.Params) != len(k.Params) {
		return stats, fmt.Errorf("gpu: kernel %q expects %d parameter words, got %d",
			k.Name, len(k.Params), len(l.Params))
	}
	budget := l.Budget
	if budget == 0 {
		budget = DefaultBudget
	}
	if budget > math.MaxInt64 {
		budget = math.MaxInt64
	}

	if d.cancelCtx != nil && d.cancelCtx.Err() != nil {
		t := &Trap{Kind: TrapCancelled, Kernel: k.Name, Detail: "host context cancelled before launch"}
		d.logf("Xid", "%s", t.Error())
		return stats, t
	}

	constBank := buildConstBank(l)
	plan := d.planFor(k)
	workers := d.Workers
	if workers > d.NumSMs {
		workers = d.NumSMs
	}
	if workers > l.Grid.Count() {
		workers = l.Grid.Count()
	}

	var err error
	if workers <= 1 || l.Kernel.Instrumented() {
		// Instrumented launches always take the sequential path: injection
		// and profiling tools count dynamic instructions globally across
		// blocks, so callback order is part of the injection semantics.
		stats, err = d.runSequential(l, constBank, plan, budget)
	} else {
		stats, err = d.runParallel(l, constBank, plan, budget, workers)
	}
	if t, ok := AsTrap(err); ok {
		// The device log is the dmesg analog; log the (deterministically
		// selected) trap once, after all workers have quiesced.
		d.logf("Xid", "%s", t.Error())
	}
	return stats, err
}

// runSequential is the Workers=1 reference schedule: blocks execute one at
// a time in linear block order.
func (d *Device) runSequential(l *Launch, constBank []byte, plan *xplan, budgetN uint64) (LaunchStats, error) {
	var stats LaunchStats
	budget := &budgetCounter{remaining: int64(budgetN), ctx: d.cancelCtx, checkIn: cancelPollStride}
	blockLin := 0
	for bz := 0; bz < l.Grid.Z; bz++ {
		for by := 0; by < l.Grid.Y; by++ {
			for bx := 0; bx < l.Grid.X; bx++ {
				blk := newBlockCtx(d, l, constBank, plan, Dim3{bx, by, bz}, blockLin)
				if err := blk.run(budget, &stats); err != nil {
					return stats, err
				}
				blk.release()
				stats.Blocks++
				blockLin++
			}
		}
	}
	return stats, nil
}

func buildConstBank(l *Launch) []byte {
	bank := make([]byte, sass.ParamBase+4*len(l.Params))
	put := func(off int, v uint32) { binary.LittleEndian.PutUint32(bank[off:], v) }
	put(sass.ConstNtidX, uint32(l.Block.X))
	put(sass.ConstNtidY, uint32(l.Block.Y))
	put(sass.ConstNtidZ, uint32(l.Block.Z))
	put(sass.ConstNctaidX, uint32(l.Grid.X))
	put(sass.ConstNctaidY, uint32(l.Grid.Y))
	put(sass.ConstNctaidZ, uint32(l.Grid.Z))
	for i, p := range l.Params {
		put(sass.ParamBase+4*i, p)
	}
	return bank
}

func newBlockCtx(d *Device, l *Launch, constBank []byte, plan *xplan, blockIdx Dim3, blockLin int) *blockCtx {
	blockSize := l.Block.Count()
	numWarps := (blockSize + WarpSize - 1) / WarpSize
	blk := &blockCtx{
		dev:       d,
		ek:        l.Kernel,
		launch:    l,
		constBank: constBank,
		shared:    getShared(l.Kernel.K.SharedBytes + l.SharedBytes),
		smID:      blockLin % d.NumSMs,
		blockIdx:  blockIdx,
		blockLin:  blockLin,
		plan:      plan,
	}
	regHi := l.Kernel.writtenRegHi()
	legacy := d.legacySched()
	oneDim := l.Block.Y == 1 && l.Block.Z == 1
	for w := 0; w < numWarps; w++ {
		wp := getWarp(w)
		wp.dirtyRegs = regHi
		wp.scanSched = legacy
		for lane := 0; lane < WarpSize; lane++ {
			t := w*WarpSize + lane
			if t >= blockSize {
				continue
			}
			wp.liveMask |= 1 << uint(lane)
			if oneDim {
				// 1-D blocks (the overwhelmingly common shape): the linear
				// thread id is the X coordinate, no div/mod chain.
				wp.tid[lane] = Dim3{X: t}
				continue
			}
			wp.tid[lane] = Dim3{
				X: t % l.Block.X,
				Y: (t / l.Block.X) % l.Block.Y,
				Z: t / (l.Block.X * l.Block.Y),
			}
		}
		wp.exitedMask = ^wp.liveMask
		blk.warps = append(blk.warps, wp)
	}
	return blk
}

// run executes all warps of the block. Warps run round-robin; a warp yields
// at barriers and when it finishes. All warps waiting at a barrier releases
// it; a barrier that can never be satisfied is a hang.
//
// When blk.pause is armed, run can also return errLaunchPaused mid-sweep;
// resumeWarp records where the sweep stopped so the next call continues
// from the exact same warp, making pause/resume invisible to the executed
// instruction sequence.
func (blk *blockCtx) run(budget *budgetCounter, stats *LaunchStats) error {
	runWarp := blk.runWarpFast
	switch {
	case blk.ek.Instrumented():
		runWarp = blk.runWarpInstrumented
	case blk.pause != nil || blk.counts != nil:
		runWarp = blk.runWarpCkpt
	case blk.plan != nil:
		runWarp = blk.runWarpXlate
	}
	start := blk.resumeWarp
	blk.resumeWarp = 0
	// A resumed sweep covers only the tail of the warp list, so its
	// progress and completion observations are partial: defer the done /
	// deadlock decisions to the next full sweep.
	partial := start > 0
	for {
		progressed := false
		allDone := true
		for wi := start; wi < len(blk.warps); wi++ {
			w := blk.warps[wi]
			if w.done || w.barWait {
				if !w.done {
					allDone = false
				}
				continue
			}
			allDone = false
			if err := runWarp(w, budget, stats); err != nil {
				if err == errLaunchPaused {
					blk.resumeWarp = wi
				}
				return err
			}
			progressed = true
		}
		start = 0
		if allDone && !partial {
			return nil
		}
		if blk.releaseBarrier() {
			partial = false
			continue
		}
		if !progressed && !partial {
			// Some warps wait at a barrier that the rest of the block can
			// never reach: on hardware this hangs until the watchdog fires.
			return &Trap{
				Kind:   TrapInstrLimit,
				Kernel: blk.ek.K.Name,
				SMID:   blk.smID,
				Detail: "barrier deadlock: not all warps can reach BAR.SYNC",
			}
		}
		partial = false
	}
}

// releaseBarrier opens the barrier when every unfinished warp waits at it.
func (blk *blockCtx) releaseBarrier() bool {
	any := false
	for _, w := range blk.warps {
		if w.done {
			continue
		}
		if !w.barWait {
			return false
		}
		any = true
	}
	if !any {
		return false
	}
	for _, w := range blk.warps {
		w.barWait = false
	}
	return true
}

// step advances PCs for the lanes at this instruction and executes it,
// maintaining the warp's convergence cache. On the converged fast path no
// per-lane PC is written at all; control flow materializes the per-lane
// PCs (guard-suppressed lanes fall through to next) and lets the branch
// semantics override the taken lanes.
func (blk *blockCtx) step(w *warp, in *sass.Instr, pc int32, atPC, execMask uint32) (barrier bool, kind TrapKind, faultAddr uint32) {
	if blk.plan != nil {
		return blk.stepX(w, &blk.plan.steps[pc], pc, atPC, execMask)
	}
	if w.converged && !semAltersFlow(in.Op.Info().Sem) {
		w.convPC = pc + 1
		return blk.exec(w, in, int(pc), execMask)
	}
	next := pc + 1
	for m := atPC; m != 0; m &= m - 1 {
		w.pc[bits.TrailingZeros32(m)] = next
	}
	fromConverged := w.converged
	w.converged = false
	barrier, kind, faultAddr = blk.exec(w, in, int(pc), execMask)
	if kind == 0 && !w.scanSched {
		flow, target := flowOf(in)
		w.updateSplits(flow, target, pc, atPC, execMask, fromConverged)
	}
	return barrier, kind, faultAddr
}

// stepX is step through a translated plan: identical PC and convergence
// bookkeeping, with the semantic classification and execution pre-resolved.
func (blk *blockCtx) stepX(w *warp, xi *xinstr, pc int32, atPC, execMask uint32) (barrier bool, kind TrapKind, faultAddr uint32) {
	if w.converged && !xi.altersFlow {
		w.convPC = pc + 1
		return xi.step(blk, w, execMask)
	}
	next := pc + 1
	for m := atPC; m != 0; m &= m - 1 {
		w.pc[bits.TrailingZeros32(m)] = next
	}
	fromConverged := w.converged
	w.converged = false
	barrier, kind, faultAddr = xi.step(blk, w, execMask)
	if kind == 0 && !w.scanSched {
		w.updateSplits(xi.flow, xi.braTarget, pc, atPC, execMask, fromConverged)
	}
	return barrier, kind, faultAddr
}

// runWarpXlate is the translated twin of runWarpFast. Its edge over the
// interpreter loop: within a straight-line run (precomputed per CFG basic
// block at translation time) it skips the scheduler entirely — no
// schedule() call, no convergence re-check, no per-instruction semantic
// classification — and executes the pre-resolved steps back to back. A
// diverged warp batches too: the head split issues consecutively until the
// run ends or the head reaches the next split's PC, exactly the sequence
// of min-PC issues the interpreter would make. Budget, cancellation
// polling, stats, and SM-clock accounting are charged once per batch
// (budgetCounter.takeN) with exact per-instruction attribution on budget
// exhaustion and mid-batch faults, so LaunchStats, trap sites, and modeled
// time are bit-identical to the interpreter's per-step loop.
func (blk *blockCtx) runWarpXlate(w *warp, budget *budgetCounter, stats *LaunchStats) error {
	steps := blk.plan.steps
	n := int32(len(steps))
	clock := &blk.dev.smClocks[blk.smID]
	for {
		minPC, atPC, done := w.schedule()
		if done {
			w.done = true
			return nil
		}
		if minPC < 0 || minPC >= n {
			return blk.trapErr(TrapBadPC, int(minPC), 0, "control transfer outside the kernel")
		}
		xi := &steps[minPC]
		if xi.runLen > 0 && (w.converged || w.splitsOK) {
			// Straight-line batch: batchable steps never branch, exit lanes,
			// barrier, or read the SM clock, so atPC and the active mask are
			// invariant across the batch and per-lane PCs need not
			// materialize until it ends (runWarpXlate never runs under
			// pause, so no one can observe them mid-batch).
			end := minPC + xi.runLen
			if !w.converged {
				// Diverged: the head split stays the min PC only until it
				// catches up with the next split.
				if next := w.splits[1].pc; next < end {
					end = next
				}
			}
			want := int64(end - minPC)
			granted := budget.takeN(want)
			stats.WarpInstrs += uint64(granted)
			*clock += uint64(granted)
			var ti uint64
			pc := minPC
			for ; pc < minPC+int32(granted); pc++ {
				xi := &steps[pc]
				execMask := atPC
				if xi.guardKind != guardOn {
					execMask = xi.guard(w, atPC)
				}
				ti += uint64(popcount(execMask))
				if _, kind, faultAddr := xi.step(blk, w, execMask); kind != 0 {
					// Mid-batch fault: keep the faulting instruction charged
					// (the interpreter charges before executing) and hand
					// back the never-issued tail.
					unrun := int64(minPC) + granted - int64(pc) - 1
					budget.refund(unrun)
					stats.WarpInstrs -= uint64(unrun)
					*clock -= uint64(unrun)
					stats.ThreadInstrs += ti
					return blk.trapErr(kind, int(pc), faultAddr, "")
				}
			}
			stats.ThreadInstrs += ti
			if granted < want {
				// Budget ran dry mid-batch: the trap lands on the first
				// instruction the per-step loop would have failed to issue.
				return blk.budgetTrap(budget, int(pc))
			}
			w.finishRun(end, atPC)
			continue
		}
		execMask := atPC
		if xi.guardKind != guardOn {
			execMask = xi.guard(w, atPC)
		}
		if !budget.take() {
			return blk.budgetTrap(budget, int(minPC))
		}
		stats.WarpInstrs++
		stats.ThreadInstrs += uint64(popcount(execMask))
		*clock++
		if xi.isBra && w.converged {
			// Uniform direct branch: every lane takes it (or none does), so
			// the warp stays converged and no per-lane PC materializes —
			// exactly the state the interpreter's next schedule() would
			// recompute from the scattered PCs, minus the scan.
			if execMask == atPC {
				w.convPC = xi.braTarget
				continue
			}
			if execMask == 0 {
				w.convPC = minPC + 1
				continue
			}
		}
		barrier, kind, faultAddr := blk.stepX(w, xi, minPC, atPC, execMask)
		if kind != 0 {
			return blk.trapErr(kind, int(minPC), faultAddr, "")
		}
		if barrier {
			if execMask != w.activeMask() {
				return blk.trapErr(TrapInstrLimit, int(minPC), 0, "divergent BAR.SYNC never satisfied")
			}
			w.barWait = true
			return nil
		}
	}
}

// finishRun settles scheduling state after a completed straight-line batch:
// the issued lanes sit at endPC. Converged warps just move convPC; a
// diverged warp materializes the head split's lanes (keeping pc[]
// authoritative for the next schedule or snapshot) and advances the split
// list — merging into the next split when the head caught up with it,
// which is also where batched execution re-detects reconvergence.
func (w *warp) finishRun(endPC int32, atPC uint32) {
	if w.converged {
		w.convPC = endPC
		return
	}
	for m := atPC; m != 0; m &= m - 1 {
		w.pc[bits.TrailingZeros32(m)] = endPC
	}
	if w.nsplits > 1 && w.splits[1].pc == endPC {
		w.splits[1].mask |= atPC
		w.dropHead()
	} else {
		w.splits[0].pc = endPC
	}
	if active := w.liveMask &^ w.exitedMask; w.nsplits == 1 && w.splits[0].mask == active {
		w.converged = true
		w.convPC = w.splits[0].pc
	}
}

// runWarpFast steps an uninstrumented warp until it exits, reaches a
// barrier, or traps. This is the interpreter's hot loop: scheduling is two
// loads while converged, and there is no instrumentation dispatch at all.
func (blk *blockCtx) runWarpFast(w *warp, budget *budgetCounter, stats *LaunchStats) error {
	instrs := blk.ek.K.Instrs
	for {
		minPC, atPC, done := w.schedule()
		if done {
			w.done = true
			return nil
		}
		if minPC < 0 || int(minPC) >= len(instrs) {
			return blk.trapErr(TrapBadPC, int(minPC), 0, "control transfer outside the kernel")
		}
		in := &instrs[minPC]
		execMask := atPC
		if !in.Guard.True() {
			execMask = guardMask(w, in, atPC)
		}

		if !budget.take() {
			return blk.budgetTrap(budget, int(minPC))
		}
		stats.WarpInstrs++
		stats.ThreadInstrs += uint64(popcount(execMask))
		blk.dev.smClocks[blk.smID]++

		barrier, kind, faultAddr := blk.step(w, in, minPC, atPC, execMask)
		if kind != 0 {
			return blk.trapErr(kind, int(minPC), faultAddr, "")
		}
		if barrier {
			if execMask != w.activeMask() {
				return blk.trapErr(TrapInstrLimit, int(minPC), 0, "divergent BAR.SYNC never satisfied")
			}
			w.barWait = true
			return nil
		}
	}
}

// runWarpCkpt is runWarpFast plus the checkpoint-engine hooks: an optional
// per-static-instruction execution tally (recording runs) and the pause
// tick that lets LaunchRun.Resume stop the launch at an exact dynamic
// warp-instruction boundary. It is a separate twin so the ordinary hot
// loop pays nothing for the feature.
func (blk *blockCtx) runWarpCkpt(w *warp, budget *budgetCounter, stats *LaunchStats) error {
	instrs := blk.ek.K.Instrs
	for {
		minPC, atPC, done := w.schedule()
		if done {
			w.done = true
			return nil
		}
		if minPC < 0 || int(minPC) >= len(instrs) {
			return blk.trapErr(TrapBadPC, int(minPC), 0, "control transfer outside the kernel")
		}
		in := &instrs[minPC]
		execMask := atPC
		if !in.Guard.True() {
			execMask = guardMask(w, in, atPC)
		}

		if !budget.take() {
			return blk.budgetTrap(budget, int(minPC))
		}
		stats.WarpInstrs++
		stats.ThreadInstrs += uint64(popcount(execMask))
		blk.dev.smClocks[blk.smID]++
		if blk.counts != nil {
			blk.counts[minPC] += uint64(popcount(execMask))
		}

		barrier, kind, faultAddr := blk.step(w, in, minPC, atPC, execMask)
		if kind != 0 {
			return blk.trapErr(kind, int(minPC), faultAddr, "")
		}
		if barrier {
			if execMask != w.activeMask() {
				return blk.trapErr(TrapInstrLimit, int(minPC), 0, "divergent BAR.SYNC never satisfied")
			}
			w.barWait = true
		}
		if blk.pause != nil && blk.pause.tick() {
			return errLaunchPaused
		}
		if barrier {
			return nil
		}
	}
}

// runWarpInstrumented is the instrumented twin of runWarpFast: identical
// scheduling and accounting, plus the trampoline and Before/After/Step
// callback dispatch around every instruction.
func (blk *blockCtx) runWarpInstrumented(w *warp, budget *budgetCounter, stats *LaunchStats) error {
	instrs := blk.ek.K.Instrs
	ctx := InstrCtx{
		Dev:      blk.dev,
		Kernel:   blk.ek.K,
		SMID:     blk.smID,
		BlockIdx: blk.blockIdx,
		BlockLin: blk.blockLin,
		WarpID:   w.id,
		w:        w,
		blk:      blk,
	}

	for {
		if blk.launch.disarmed {
			// A tool signalled it is done with this launch: fall through to
			// the callback-free twin, which keeps identical accounting.
			return blk.runWarpDisarmed(w, budget, stats)
		}
		minPC, atPC, done := w.schedule()
		if done {
			w.done = true
			return nil
		}
		if minPC < 0 || int(minPC) >= len(instrs) {
			return blk.trapErr(TrapBadPC, int(minPC), 0, "control transfer outside the kernel")
		}
		in := &instrs[minPC]
		execMask := atPC
		if !in.Guard.True() {
			execMask = guardMask(w, in, atPC)
		}

		if !budget.take() {
			return blk.budgetTrap(budget, int(minPC))
		}
		stats.WarpInstrs++
		stats.ThreadInstrs += uint64(popcount(execMask))
		blk.dev.smClocks[blk.smID]++

		ctx.Instr = in
		ctx.InstrIdx = int(minPC)
		ctx.ActiveMask = execMask
		if blk.ek.Before != nil && len(blk.ek.Before[minPC]) > 0 {
			blk.chargeTrampoline(stats)
			for _, cb := range blk.ek.Before[minPC] {
				cb(&ctx)
			}
		}

		barrier, kind, faultAddr := blk.step(w, in, minPC, atPC, execMask)
		if kind != 0 {
			return blk.trapErr(kind, int(minPC), faultAddr, "")
		}

		if blk.ek.After != nil && len(blk.ek.After[minPC]) > 0 {
			blk.chargeTrampoline(stats)
			for _, cb := range blk.ek.After[minPC] {
				cb(&ctx)
			}
		}
		if blk.ek.Step != nil {
			blk.chargeTrampoline(stats)
			blk.ek.Step(&ctx)
		}

		if barrier {
			if execMask != w.activeMask() {
				return blk.trapErr(TrapInstrLimit, int(minPC), 0, "divergent BAR.SYNC never satisfied")
			}
			w.barWait = true
		}
		if blk.pause != nil && blk.pause.tick() {
			return errLaunchPaused
		}
		if barrier {
			return nil
		}
	}
}

// runWarpDisarmed executes the remainder of an instrumented launch after a
// tool called InstrCtx.Disarm: identical scheduling, budget, stats, clock,
// and trampoline accounting to runWarpInstrumented — so modeled time and
// every LaunchStats field match the armed path bit for bit — but with no
// closure dispatch at all.
func (blk *blockCtx) runWarpDisarmed(w *warp, budget *budgetCounter, stats *LaunchStats) error {
	instrs := blk.ek.K.Instrs
	for {
		minPC, atPC, done := w.schedule()
		if done {
			w.done = true
			return nil
		}
		if minPC < 0 || int(minPC) >= len(instrs) {
			return blk.trapErr(TrapBadPC, int(minPC), 0, "control transfer outside the kernel")
		}
		in := &instrs[minPC]
		execMask := atPC
		if !in.Guard.True() {
			execMask = guardMask(w, in, atPC)
		}

		if !budget.take() {
			return blk.budgetTrap(budget, int(minPC))
		}
		stats.WarpInstrs++
		stats.ThreadInstrs += uint64(popcount(execMask))
		blk.dev.smClocks[blk.smID]++

		if blk.ek.Before != nil && len(blk.ek.Before[minPC]) > 0 {
			blk.chargeTrampoline(stats)
		}

		barrier, kind, faultAddr := blk.step(w, in, minPC, atPC, execMask)
		if kind != 0 {
			return blk.trapErr(kind, int(minPC), faultAddr, "")
		}

		if blk.ek.After != nil && len(blk.ek.After[minPC]) > 0 {
			blk.chargeTrampoline(stats)
		}
		if blk.ek.Step != nil {
			blk.chargeTrampoline(stats)
		}

		if barrier {
			if execMask != w.activeMask() {
				return blk.trapErr(TrapInstrLimit, int(minPC), 0, "divergent BAR.SYNC never satisfied")
			}
			w.barWait = true
		}
		if blk.pause != nil && blk.pause.tick() {
			return errLaunchPaused
		}
		if barrier {
			return nil
		}
	}
}

// budgetTrap builds the error for a failed budget.take: TrapCancelled when
// the host context was cancelled, otherwise the ordinary instruction-limit
// (hang detector) trap.
func (blk *blockCtx) budgetTrap(b *budgetCounter, pc int) error {
	if b.cancelled.Load() {
		return blk.trapErr(TrapCancelled, pc, 0, "host context cancelled the launch")
	}
	return blk.trapErr(TrapInstrLimit, pc, 0, "launch instruction budget exhausted")
}

// trapErr builds the trap error for this block. Logging happens once in
// Device.Run after the winning trap is selected, so the parallel scheduler
// produces the same device log as the sequential one.
func (blk *blockCtx) trapErr(kind TrapKind, pc int, addr uint32, detail string) error {
	return &Trap{
		Kind:   kind,
		Kernel: blk.ek.K.Name,
		PC:     pc,
		SMID:   blk.smID,
		Addr:   addr,
		Detail: detail,
	}
}
