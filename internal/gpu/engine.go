package gpu

import (
	"encoding/binary"
	"fmt"

	"repro/internal/sass"
)

// warp is the per-warp execution state. Divergence is modelled with
// per-lane program counters and min-PC scheduling: each step executes the
// instruction at the smallest live PC for every lane currently at that PC,
// which reconverges diverged lanes naturally and deterministically.
type warp struct {
	id       int
	pc       [WarpSize]int32
	exited   [WarpSize]bool
	regs     [WarpSize][sass.NumRegs]uint32
	preds    [WarpSize][sass.NumPreds]bool
	tid      [WarpSize]Dim3
	local    [WarpSize][]byte
	stack    [WarpSize][]int32
	liveMask uint32 // lanes that exist in this warp (partial last warp)
	barWait  bool
	done     bool
}

// blockCtx is the per-block execution state.
type blockCtx struct {
	dev       *Device
	ek        *ExecKernel
	launch    *Launch
	constBank []byte
	shared    []byte
	warps     []*warp
	smID      int
	blockIdx  Dim3
	blockLin  int
	scratch   *warp // trampoline execution state
}

// TrampolineLen is the length of the instrumentation trampoline: the
// register-save / argument-setup / call / restore sequence the JIT inserts
// around every instrumentation callback, as NVBit does on real hardware.
// The trampoline executes through the same interpreter as target code, so
// instrumented instructions cost ~TrampolineLen+1 instruction times — this
// is what produces the paper's profiling-versus-injection overhead shape
// (Figure 4).
const TrampolineLen = 28

// trampolineInstrs is the canned trampoline body: plain ALU traffic on
// scratch registers (no memory, no control flow), executed once per
// instrumentation call site per dynamic execution.
var trampolineInstrs = buildTrampoline()

func buildTrampoline() []sass.Instr {
	instrs := make([]sass.Instr, 0, TrampolineLen)
	ops := []sass.Op{
		sass.MustOp("IADD"), sass.MustOp("SHL"), sass.MustOp("LOP"),
		sass.MustOp("MOV"), sass.MustOp("IMAD"), sass.MustOp("SHR"),
	}
	for i := 0; i < TrampolineLen; i++ {
		op := ops[i%len(ops)]
		var in sass.Instr
		dst := sass.RegID(i % 8)
		switch op.Info().Sem {
		case sass.SemMov:
			in = sass.NewInstr(op, sass.R(dst), sass.R(sass.RegID((i+1)%8)))
		case sass.SemIMad:
			in = sass.NewInstr(op, sass.R(dst), sass.R(sass.RegID((i+1)%8)),
				sass.R(sass.RegID((i+2)%8)), sass.R(sass.RegID((i+3)%8)))
		case sass.SemLop:
			in = sass.NewInstr(op, sass.R(dst), sass.R(sass.RegID((i+1)%8)), sass.Imm(0x5a5a5a5a))
			in.Mods.Logic = sass.LogicXor
		default:
			in = sass.NewInstr(op, sass.R(dst), sass.R(sass.RegID((i+1)%8)), sass.Imm(uint32(i&7)))
		}
		instrs = append(instrs, in)
	}
	return instrs
}

// runTrampoline executes the instrumentation trampoline on the block's
// scratch warp. Trampoline instructions are tool code: they burn execution
// time like any other instruction but are charged to neither the launch
// budget nor the profile counts.
func (blk *blockCtx) runTrampoline() {
	if blk.scratch == nil {
		blk.scratch = &warp{liveMask: ^uint32(0)}
	}
	w := blk.scratch
	for i := range trampolineInstrs {
		blk.exec(w, &trampolineInstrs[i], 0, ^uint32(0), ^uint32(0))
	}
}

// Run executes a kernel launch to completion, a trap, or budget exhaustion.
// Blocks are scheduled round-robin across SMs and executed in a fixed,
// deterministic order.
func (d *Device) Run(l *Launch) (LaunchStats, error) {
	var stats LaunchStats
	if l.Kernel == nil || l.Kernel.K == nil {
		return stats, fmt.Errorf("gpu: launch with no kernel")
	}
	k := l.Kernel.K
	if l.Grid.Count() <= 0 || l.Block.Count() <= 0 {
		return stats, fmt.Errorf("gpu: launch of %q with empty grid or block", k.Name)
	}
	if l.Block.Count() > 1024 {
		return stats, fmt.Errorf("gpu: block of %d threads exceeds the 1024-thread limit", l.Block.Count())
	}
	if len(l.Params) != len(k.Params) {
		return stats, fmt.Errorf("gpu: kernel %q expects %d parameter words, got %d",
			k.Name, len(k.Params), len(l.Params))
	}
	budget := l.Budget
	if budget == 0 {
		budget = DefaultBudget
	}

	constBank := buildConstBank(l)
	blockLin := 0
	for bz := 0; bz < l.Grid.Z; bz++ {
		for by := 0; by < l.Grid.Y; by++ {
			for bx := 0; bx < l.Grid.X; bx++ {
				blk := newBlockCtx(d, l, constBank, Dim3{bx, by, bz}, blockLin)
				if err := blk.run(&budget, &stats); err != nil {
					return stats, err
				}
				stats.Blocks++
				blockLin++
			}
		}
	}
	return stats, nil
}

func buildConstBank(l *Launch) []byte {
	bank := make([]byte, sass.ParamBase+4*len(l.Params))
	put := func(off int, v uint32) { binary.LittleEndian.PutUint32(bank[off:], v) }
	put(sass.ConstNtidX, uint32(l.Block.X))
	put(sass.ConstNtidY, uint32(l.Block.Y))
	put(sass.ConstNtidZ, uint32(l.Block.Z))
	put(sass.ConstNctaidX, uint32(l.Grid.X))
	put(sass.ConstNctaidY, uint32(l.Grid.Y))
	put(sass.ConstNctaidZ, uint32(l.Grid.Z))
	for i, p := range l.Params {
		put(sass.ParamBase+4*i, p)
	}
	return bank
}

func newBlockCtx(d *Device, l *Launch, constBank []byte, blockIdx Dim3, blockLin int) *blockCtx {
	blockSize := l.Block.Count()
	numWarps := (blockSize + WarpSize - 1) / WarpSize
	blk := &blockCtx{
		dev:       d,
		ek:        l.Kernel,
		launch:    l,
		constBank: constBank,
		shared:    make([]byte, l.Kernel.K.SharedBytes+l.SharedBytes),
		smID:      blockLin % d.NumSMs,
		blockIdx:  blockIdx,
		blockLin:  blockLin,
	}
	for w := 0; w < numWarps; w++ {
		wp := &warp{id: w}
		for lane := 0; lane < WarpSize; lane++ {
			t := w*WarpSize + lane
			if t >= blockSize {
				wp.exited[lane] = true
				continue
			}
			wp.liveMask |= 1 << uint(lane)
			wp.tid[lane] = Dim3{
				X: t % l.Block.X,
				Y: (t / l.Block.X) % l.Block.Y,
				Z: t / (l.Block.X * l.Block.Y),
			}
		}
		blk.warps = append(blk.warps, wp)
	}
	return blk
}

// run executes all warps of the block. Warps run round-robin; a warp yields
// at barriers and when it finishes. All warps waiting at a barrier releases
// it; a barrier that can never be satisfied is a hang.
func (blk *blockCtx) run(budget *uint64, stats *LaunchStats) error {
	for {
		progressed := false
		allDone := true
		for _, w := range blk.warps {
			if w.done || w.barWait {
				if !w.done {
					allDone = false
				}
				continue
			}
			allDone = false
			if err := blk.runWarp(w, budget, stats); err != nil {
				return err
			}
			progressed = true
		}
		if allDone {
			return nil
		}
		if blk.releaseBarrier() {
			continue
		}
		if !progressed {
			// Some warps wait at a barrier that the rest of the block can
			// never reach: on hardware this hangs until the watchdog fires.
			return &Trap{
				Kind:   TrapInstrLimit,
				Kernel: blk.ek.K.Name,
				SMID:   blk.smID,
				Detail: "barrier deadlock: not all warps can reach BAR.SYNC",
			}
		}
	}
}

// releaseBarrier opens the barrier when every unfinished warp waits at it.
func (blk *blockCtx) releaseBarrier() bool {
	any := false
	for _, w := range blk.warps {
		if w.done {
			continue
		}
		if !w.barWait {
			return false
		}
		any = true
	}
	if !any {
		return false
	}
	for _, w := range blk.warps {
		w.barWait = false
	}
	return true
}

// runWarp steps the warp until it exits, reaches a barrier, or traps.
func (blk *blockCtx) runWarp(w *warp, budget *uint64, stats *LaunchStats) error {
	instrs := blk.ek.K.Instrs
	ctx := InstrCtx{
		Dev:      blk.dev,
		Kernel:   blk.ek.K,
		SMID:     blk.smID,
		BlockIdx: blk.blockIdx,
		BlockLin: blk.blockLin,
		WarpID:   w.id,
		w:        w,
		blk:      blk,
	}
	instrumented := blk.ek.Instrumented()

	for {
		// Find the minimum live PC and the lanes at it.
		minPC := int32(0)
		anyLive := false
		for lane := 0; lane < WarpSize; lane++ {
			if w.exited[lane] {
				continue
			}
			if !anyLive || w.pc[lane] < minPC {
				minPC = w.pc[lane]
			}
			anyLive = true
		}
		if !anyLive {
			w.done = true
			return nil
		}
		if minPC < 0 || int(minPC) >= len(instrs) {
			return blk.trap(TrapBadPC, int(minPC), 0, "control transfer outside the kernel")
		}
		in := &instrs[minPC]

		var atPC uint32
		for lane := 0; lane < WarpSize; lane++ {
			if !w.exited[lane] && w.pc[lane] == minPC {
				atPC |= 1 << uint(lane)
			}
		}
		// Evaluate the guard per lane.
		execMask := atPC
		if !in.Guard.True() {
			execMask = 0
			for lane := 0; lane < WarpSize; lane++ {
				if atPC&(1<<uint(lane)) == 0 {
					continue
				}
				v := w.preds[lane][in.Guard.Pred]
				if in.Guard.Pred == sass.PT {
					v = true
				}
				if v != in.Guard.Neg {
					execMask |= 1 << uint(lane)
				}
			}
		}

		if *budget == 0 {
			return blk.trap(TrapInstrLimit, int(minPC), 0, "launch instruction budget exhausted")
		}
		*budget--
		stats.WarpInstrs++
		stats.ThreadInstrs += uint64(popcount(execMask))
		blk.dev.smClocks[blk.smID]++

		if instrumented {
			ctx.Instr = in
			ctx.InstrIdx = int(minPC)
			ctx.ActiveMask = execMask
			if blk.ek.Before != nil && len(blk.ek.Before[minPC]) > 0 {
				blk.runTrampoline()
				for _, cb := range blk.ek.Before[minPC] {
					cb(&ctx)
				}
			}
		}

		// Execute, then advance PCs. Guard-suppressed lanes at this PC fall
		// through; branch semantics override nextPC for taken lanes.
		barrier, kind, faultAddr := blk.exec(w, in, int(minPC), execMask, atPC)
		if kind != 0 {
			return blk.trap(kind, int(minPC), faultAddr, "")
		}

		if instrumented {
			if blk.ek.After != nil && len(blk.ek.After[minPC]) > 0 {
				blk.runTrampoline()
				for _, cb := range blk.ek.After[minPC] {
					cb(&ctx)
				}
			}
			if blk.ek.Step != nil {
				blk.runTrampoline()
				blk.ek.Step(&ctx)
			}
		}

		if barrier {
			if execMask != w.liveMask&^exitedMask(w) {
				return blk.trap(TrapInstrLimit, int(minPC), 0, "divergent BAR.SYNC never satisfied")
			}
			w.barWait = true
			return nil
		}
	}
}

func exitedMask(w *warp) uint32 {
	var m uint32
	for lane := 0; lane < WarpSize; lane++ {
		if w.exited[lane] {
			m |= 1 << uint(lane)
		}
	}
	return m
}

func (blk *blockCtx) trap(kind TrapKind, pc int, addr uint32, detail string) error {
	t := &Trap{
		Kind:   kind,
		Kernel: blk.ek.K.Name,
		PC:     pc,
		SMID:   blk.smID,
		Addr:   addr,
		Detail: detail,
	}
	blk.dev.logf("Xid", "%s", t.Error())
	return t
}
