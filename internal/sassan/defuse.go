package sassan

import "repro/internal/sass"

// DefUse is the register-level effect of one instruction: the GP registers
// and predicates it reads and the ones it writes, mirroring the simulator's
// execution semantics. Guarded marks instructions whose guard is not the
// constant-true @PT: their writes are conditional and must not kill
// liveness.
type DefUse struct {
	GPReads  RegSet
	GPWrites RegSet
	PRReads  PredSet
	PRWrites PredSet
	Guarded  bool
}

// allPreds is P0..P6: what P2R reads.
const allPreds PredSet = (1 << (sass.NumPreds - 1)) - 1

// pairSrcSem reports whether the semantic reads its register sources as
// 64-bit even/odd pairs (the FP64 dsrc path).
func pairSrcSem(in *sass.Instr) bool {
	switch in.Op.Info().Sem {
	case sass.SemDAdd, sass.SemDMul, sass.SemDFma, sass.SemDMnMx, sass.SemDSetP:
		return true
	case sass.SemF2F:
		// F2F.64 widens a 32-bit source; every other F2F narrows a pair.
		return in.Mods.Width != 8
	}
	return false
}

// addReg inserts r unless it is RZ.
func (s *RegSet) addReg(r sass.RegID) {
	if r != sass.RZ {
		s.Add(r)
	}
}

// addPred inserts p unless it is PT.
func (s *PredSet) addPred(p sass.PredID) {
	if p != sass.PT {
		s.Add(p)
	}
}

// readPairRegs mirrors evalCtx.readPair: RZ reads nothing, and the high
// half is skipped when it lands on RZ.
func (s *RegSet) readPairRegs(r sass.RegID) {
	if r == sass.RZ {
		return
	}
	s.Add(r)
	if r+1 != sass.RZ {
		s.Add(r + 1)
	}
}

// addSpan inserts the n-register span starting at base, skipping RZ. The
// index arithmetic wraps exactly like the executor's d.Reg + RegID(i), so
// a 128-bit access based at R253 touches R253, R254, and R0.
func (s *RegSet) addSpan(base sass.RegID, n int) {
	for i := 0; i < n; i++ {
		r := base + sass.RegID(i)
		if r != sass.RZ {
			s.Add(r)
		}
	}
}

// destSpan returns how many consecutive registers a register destination of
// this instruction occupies under the execution semantics: FlagPair and
// CS2R and F2F.64 write pairs, and 64/128-bit loads write two or four
// registers. LDC is the one divergence from core's fault-target expansion:
// the executor always writes a single register for LDC regardless of the
// width modifier.
func destSpan(in *sass.Instr) int {
	info := in.Op.Info()
	if info.Flags&sass.FlagPair != 0 {
		return 2
	}
	switch info.Sem {
	case sass.SemCS2R:
		return 2
	case sass.SemF2F:
		if in.Mods.Width == 8 {
			return 2
		}
	case sass.SemLd:
		switch in.Mods.MemWidth() {
		case 8:
			return 2
		case 16:
			return 4
		}
	}
	return 1
}

// DefsUses extracts the instruction's register-level reads and writes. The
// extraction mirrors internal/gpu's execution semantics, not just the
// operand list: FP64 sources read register pairs, 64/128-bit stores read
// the value span, P2R reads every predicate, absent optional predicate
// operands are defaults rather than uses, and a non-@PT guard is a
// predicate read whose presence makes all writes conditional.
func DefsUses(in *sass.Instr) DefUse {
	var du DefUse
	info := in.Op.Info()
	sem := info.Sem

	if !in.Guard.True() {
		du.Guarded = true
		du.PRReads.addPred(in.Guard.Pred)
	}

	// Source reads.
	pairSrc := pairSrcSem(in)
	valueIdx := -1
	if sem == sass.SemSt || sem == sass.SemAtom || sem == sass.SemRed {
		for i := range in.Src {
			if in.Src[i].Kind != sass.OpdMem {
				valueIdx = i
				break
			}
		}
	}
	for i := range in.Src {
		o := &in.Src[i]
		switch o.Kind {
		case sass.OpdReg:
			switch {
			case pairSrc:
				du.GPReads.readPairRegs(o.Reg)
			case sem == sass.SemSt && i == valueIdx && in.Mods.MemWidth() == 8:
				du.GPReads.readPairRegs(o.Reg)
			case sem == sass.SemSt && i == valueIdx && in.Mods.MemWidth() == 16:
				du.GPReads.addSpan(o.Reg, 4)
			default:
				du.GPReads.addReg(o.Reg)
			}
		case sass.OpdPred:
			du.PRReads.addPred(o.Pred.Pred)
		case sass.OpdMem:
			// The base register of an address operand.
			du.GPReads.addReg(o.Reg)
		}
	}
	if sem == sass.SemP2R {
		du.PRReads |= allPreds
	}

	// Destination writes. The executor's write helpers (wr, wrP, wrPair)
	// only ever touch Dst[0]; trailing destination operands such as a
	// SETP's second predicate are never written.
	if len(in.Dst) > 0 {
		d := &in.Dst[0]
		switch d.Kind {
		case sass.OpdPred:
			du.PRWrites.addPred(d.Pred.Pred)
		case sass.OpdReg:
			if d.Reg != sass.RZ {
				switch span := destSpan(in); {
				case span == 2:
					// wrPair never wraps: the high half is simply skipped
					// when it lands on RZ.
					du.GPWrites.readPairRegs(d.Reg)
				case span > 2:
					du.GPWrites.addSpan(d.Reg, span)
				default:
					du.GPWrites.Add(d.Reg)
				}
			}
		}
	}
	return du
}

// CorruptTargets returns the registers the transient-fault injector would
// consider corruptible destinations for this instruction. It mirrors the
// injector's own expansion (internal/core destTargets), which differs from
// the execution write set in one place: LDC's width modifier widens the
// fault-target span even though the executor writes a single register.
// Pruning must therefore prove this set dead, while liveness kills use the
// execution-accurate write set from DefsUses.
func CorruptTargets(in *sass.Instr) (RegSet, PredSet) {
	var gp RegSet
	var pr PredSet
	info := in.Op.Info()
	for i := range in.Dst {
		d := &in.Dst[i]
		switch d.Kind {
		case sass.OpdPred:
			pr.addPred(d.Pred.Pred)
		case sass.OpdReg:
			if d.Reg == sass.RZ {
				continue
			}
			n := 1
			if info.Flags&sass.FlagPair != 0 {
				n = 2
			}
			if info.Sem == sass.SemLd || info.Sem == sass.SemLdc {
				switch in.Mods.MemWidth() {
				case 8:
					n = 2
				case 16:
					n = 4
				}
			}
			gp.addSpan(d.Reg, n)
		}
	}
	return gp, pr
}
