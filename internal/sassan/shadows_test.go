package sassan

import (
	"reflect"
	"testing"
)

func TestBlockPredsAndRPO(t *testing.T) {
	k := kern(t, `
.kernel k
    S2R R0, SR_TID.X
    ISETP.GE.AND P0, R0, 0x4, PT
@P0 BRA alt
    MOV R1, 0x1
    BRA join
alt:
    MOV R1, 0x2
join:
    STG.32 [R2], R1
    EXIT
`)
	cfg := BuildCFG(k)
	if len(cfg.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(cfg.Blocks))
	}
	// B0=[0..2] branches to B1 (fallthrough) and B2 (alt); both feed B3.
	if got := cfg.BlockPreds[3]; !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("BlockPreds[3] = %v, want [1 2]", got)
	}
	if got := cfg.BlockPreds[0]; len(got) != 0 {
		t.Errorf("BlockPreds[0] = %v, want empty", got)
	}
	if len(cfg.BlockRPO) != 4 || cfg.BlockRPO[0] != 0 {
		t.Fatalf("BlockRPO = %v", cfg.BlockRPO)
	}
	// Every block before its successors (diamond has no back edges).
	pos := make([]int, 4)
	for i, b := range cfg.BlockRPO {
		pos[b] = i
	}
	for b := range cfg.Blocks {
		for _, s := range cfg.Blocks[b].Succs {
			if pos[s] <= pos[b] {
				t.Errorf("RPO violation: block %d before successor %d in %v", b, s, cfg.BlockRPO)
			}
		}
	}
}

func TestBlockRPOUnreachable(t *testing.T) {
	k := kern(t, `
.kernel k
    BRA out
    MOV R0, 0x1
out:
    EXIT
`)
	cfg := BuildCFG(k)
	seen := make(map[int]bool)
	for _, b := range cfg.BlockRPO {
		if seen[b] {
			t.Fatalf("block %d twice in RPO %v", b, cfg.BlockRPO)
		}
		seen[b] = true
	}
	if len(seen) != len(cfg.Blocks) {
		t.Fatalf("RPO %v is not a permutation of %d blocks", cfg.BlockRPO, len(cfg.Blocks))
	}
}

func TestDomTreeDiamond(t *testing.T) {
	k := kern(t, `
.kernel k
    S2R R0, SR_TID.X
    ISETP.GE.AND P0, R0, 0x4, PT
@P0 BRA alt
    MOV R1, 0x1
    BRA join
alt:
    MOV R1, 0x2
join:
    STG.32 [R2], R1
    EXIT
`)
	cfg := BuildCFG(k)
	dom := cfg.BuildDom()
	// The entry dominates everything; neither arm dominates the join.
	for b := 1; b < 4; b++ {
		if dom.IDom[b] != 0 {
			t.Errorf("IDom[%d] = %d, want 0", b, dom.IDom[b])
		}
		if !dom.Dominates(0, b) {
			t.Errorf("entry should dominate block %d", b)
		}
	}
	if dom.Dominates(1, 3) || dom.Dominates(2, 3) {
		t.Error("a diamond arm must not dominate the join")
	}
	pdom := cfg.BuildPostDom()
	// The join postdominates everything; the exit block's ipdom is the
	// virtual exit (-1).
	for b := 0; b < 3; b++ {
		if pdom.IDom[b] != 3 {
			t.Errorf("IPDom[%d] = %d, want 3", b, pdom.IDom[b])
		}
	}
	if pdom.IDom[3] != -1 {
		t.Errorf("IPDom[3] = %d, want -1 (virtual exit)", pdom.IDom[3])
	}
}

func TestDomTreeLoop(t *testing.T) {
	k := kern(t, `
.kernel k
    MOV R0, 0x0
loop:
    IADD R0, R0, 0x1
    ISETP.GE.AND P0, R0, 0x8, PT
@!P0 BRA loop
    STG.32 [R1], R0
    EXIT
`)
	cfg := BuildCFG(k)
	dom := cfg.BuildDom()
	// entry -> loop body -> tail: a strict chain despite the back edge.
	body := cfg.BlockOf[1]
	tail := cfg.BlockOf[4]
	if dom.IDom[body] != cfg.BlockOf[0] {
		t.Errorf("IDom[body] = %d, want entry", dom.IDom[body])
	}
	if dom.IDom[tail] != body {
		t.Errorf("IDom[tail] = %d, want body %d", dom.IDom[tail], body)
	}
	pdom := cfg.BuildPostDom()
	if pdom.IDom[body] != tail {
		t.Errorf("IPDom[body] = %d, want tail %d", pdom.IDom[body], tail)
	}
}

func shadowOf(t *testing.T, src string, site int) (*Analysis, *Shadow) {
	t.Helper()
	a := Analyze(kern(t, src))
	return a, a.ShadowOf(site)
}

func TestShadowTransitivelyDead(t *testing.T) {
	// R5's taint flows through two faithful readers and then dies: no
	// store, no control — masked by construction even though R5 is live.
	_, sh := shadowOf(t, `
.kernel k
    S2R R0, SR_TID.X
    MOV R5, R0
    IADD R6, R5, 0x1
    MOV R7, R6
    STG.32 [R1], R0
    EXIT
`, 1)
	if sh.Kind != ShadowData {
		t.Fatalf("Kind = %v, want data", sh.Kind)
	}
	if !sh.Masked() || !sh.Classable() {
		t.Errorf("transitively-dead chain: Masked=%v Classable=%v, want true/true", sh.Masked(), sh.Classable())
	}
	if len(sh.Events) != 2 || sh.Events[0].Delta != 1 || sh.Events[1].Delta != 2 {
		t.Errorf("events = %+v, want readers at deltas 1 and 2", sh.Events)
	}
	if sh.Stores != 0 || sh.AddrSinks != 0 || sh.Cut {
		t.Errorf("unexpected sinks/cut: %+v", sh)
	}
}

func TestShadowStoreSink(t *testing.T) {
	_, sh := shadowOf(t, `
.kernel k
    S2R R0, SR_TID.X
    IADD R2, R0, 0x1
    STG.32 [R1], R2
    EXIT
`, 1)
	if sh.Kind != ShadowData || sh.Stores != 1 {
		t.Fatalf("shadow = %+v, want one store sink", sh)
	}
	if sh.Masked() {
		t.Error("a stored taint must not be masked")
	}
	if !sh.Classable() {
		t.Error("plain global store through no readers should be classable")
	}
	if sh.Events[0].Role&(RoleRead|RoleStore) != RoleRead|RoleStore {
		t.Errorf("store event role = %v", sh.Events[0].Role)
	}
}

func TestShadowControlEscalation(t *testing.T) {
	_, sh := shadowOf(t, `
.kernel k
    S2R R0, SR_TID.X
    ISETP.GE.AND P0, R0, 0x4, PT
@P0 BRA skip
    MOV R1, 0x1
skip:
    EXIT
`, 1)
	if sh.Kind != ShadowControl {
		t.Fatalf("Kind = %v, want control", sh.Kind)
	}
	if sh.ControlAt != 2 {
		t.Errorf("ControlAt = %d, want 2", sh.ControlAt)
	}
	if sh.Classable() || sh.Masked() {
		t.Error("control shadows are never classable or masked")
	}
	last := sh.Events[len(sh.Events)-1]
	if last.Role&RoleControl == 0 {
		t.Errorf("escalating event role = %v", last.Role)
	}
}

func TestShadowAddressSink(t *testing.T) {
	_, sh := shadowOf(t, `
.kernel k
.param p
    S2R R0, SR_TID.X
    IADD R4, R0, c0[p]
    STG.32 [R4], R0
    EXIT
`, 1)
	if sh.AddrSinks != 1 {
		t.Fatalf("AddrSinks = %d, want 1: %+v", sh.AddrSinks, sh)
	}
	if sh.Masked() || sh.Classable() {
		t.Error("tainted addresses trap or scatter: never masked, never classable")
	}
}

func TestShadowLoopCut(t *testing.T) {
	_, sh := shadowOf(t, `
.kernel k
    MOV R5, 0x0
loop:
    IADD R5, R5, 0x1
    IADD R0, R0, 0x1
    ISETP.GE.AND P0, R0, 0x8, PT
@!P0 BRA loop
    EXIT
`, 0)
	if !sh.Cut {
		t.Fatalf("loop-carried taint must cut the closure: %+v", sh)
	}
	if sh.Masked() || sh.Classable() {
		t.Error("cut shadows carry no soundness claim")
	}
}

func TestShadowOpaqueReader(t *testing.T) {
	_, sh := shadowOf(t, `
.kernel k
    S2R R0, SR_TID.X
    MOV R2, R0
    SHL R3, R2, 0x2
    STG.32 [R1], R3
    EXIT
`, 1)
	if !sh.Opaque {
		t.Fatalf("SHL can drop the corrupted bit: want Opaque, got %+v", sh)
	}
	if sh.Classable() {
		t.Error("opaque reader with a store sink must not be classable")
	}
}

func TestShadowGuardedStoreDirty(t *testing.T) {
	_, sh := shadowOf(t, `
.kernel k
    S2R R0, SR_TID.X
    MOV R2, R0
    ISETP.GE.AND P0, R0, 0x4, PT
@P0 STG.32 [R1], R2
    EXIT
`, 1)
	if !sh.DirtySink {
		t.Fatalf("guarded store sink should be dirty: %+v", sh)
	}
	if sh.Classable() {
		t.Error("dirty sinks must not be classable")
	}
}

func TestShadowSelfCancelingAdd(t *testing.T) {
	// IADD R3, R2, R2 doubles the taint delta: flipping bit 31 adds
	// 2^32 ≡ 0, so the reader is opaque despite IADD being faithful.
	_, sh := shadowOf(t, `
.kernel k
    S2R R0, SR_TID.X
    MOV R2, R0
    IADD R3, R2, R2
    STG.32 [R1], R3
    EXIT
`, 1)
	if !sh.Opaque || sh.Classable() {
		t.Errorf("double-read IADD must be opaque: %+v", sh)
	}
}

func TestShadowEmptyDead(t *testing.T) {
	a, sh := shadowOf(t, `
.kernel k
    MOV R9, 0x1
    EXIT
`, 0)
	if sh.Kind != ShadowEmpty {
		t.Fatalf("Kind = %v, want empty", sh.Kind)
	}
	if !sh.Masked() || !sh.Classable() {
		t.Error("the empty shadow is the prune special case: masked and classable")
	}
	if !a.DeadDests(0) {
		t.Error("DeadDests should agree on the empty shadow")
	}
}

func TestAnalysisVerifyMatchesVerifyKernel(t *testing.T) {
	k := kern(t, `
.kernel k
    MOV R9, 0x1
    MOV R1, R3
    EXIT
`)
	a := Analyze(k)
	if got, want := a.Verify(), VerifyKernel(k); !reflect.DeepEqual(got, want) {
		t.Errorf("Analysis.Verify() = %v, want %v", got, want)
	}
}

const classSrc = `
.kernel k
.param p
    S2R R0, SR_TID.X
    IADD R2, R0, 0x1
    STG.32 [R1], R2
    IADD R3, R0, 0x1
    STG.32 [R1], R3
    MOV R9, 0x5
    MOV R10, 0x6
    IADD R4, R0, c0[p]
    STG.32 [R4], R0
    EXIT
`

func TestBuildClassTable(t *testing.T) {
	a := Analyze(kern(t, classSrc))
	tbl := a.BuildClassTable()
	if tbl.Kernel != "k" {
		t.Fatalf("Kernel = %q", tbl.Kernel)
	}
	// Sites 1 and 3 share a store-sink class; sites 5 and 6 share the
	// dead-MOV class; site 7 (address producer) is unclassable; site 0
	// (S2R feeding everything incl. the address) is unclassable too.
	c1 := tbl.ClassOf(1)
	if c1 == nil || tbl.ClassOf(3) != c1 {
		t.Fatalf("sites 1 and 3 should share a class: %v vs %v", c1, tbl.ClassOf(3))
	}
	if c1.Masked {
		t.Error("store-sink class must not be masked")
	}
	if c1.Rep() != 1 || !reflect.DeepEqual(c1.Sites, []int{1, 3}) {
		t.Errorf("class sites = %v, want [1 3]", c1.Sites)
	}
	cd := tbl.ClassOf(5)
	if cd == nil || tbl.ClassOf(6) != cd || !cd.Masked {
		t.Fatalf("sites 5 and 6 should share a masked class: %v vs %v", cd, tbl.ClassOf(6))
	}
	if cd == c1 {
		t.Error("masked and store classes must differ")
	}
	if tbl.ClassOf(7) != nil {
		t.Error("address-feeding site must be unclassable")
	}
	for _, u := range tbl.Unclassable {
		if tbl.ClassOf(u) != nil {
			t.Errorf("site %d both classed and unclassable", u)
		}
	}
	classed := 0
	for _, c := range tbl.Classes {
		classed += len(c.Sites)
	}
	if tbl.Candidates != classed+len(tbl.Unclassable) {
		t.Errorf("candidates %d != classed %d + unclassable %d",
			tbl.Candidates, classed, len(tbl.Unclassable))
	}
}

func TestClassIDStability(t *testing.T) {
	a1 := Analyze(kern(t, classSrc))
	a2 := Analyze(kern(t, classSrc))
	t1 := a1.BuildClassTable()
	t2 := a2.BuildClassTable()
	if len(t1.Classes) != len(t2.Classes) {
		t.Fatalf("class counts differ: %d vs %d", len(t1.Classes), len(t2.Classes))
	}
	for i := range t1.Classes {
		if t1.Classes[i].ID != t2.Classes[i].ID {
			t.Errorf("class %d ID unstable: %s vs %s", i, t1.Classes[i].ID, t2.Classes[i].ID)
		}
		if !reflect.DeepEqual(t1.Classes[i].Sites, t2.Classes[i].Sites) {
			t.Errorf("class %d membership unstable", i)
		}
	}
	// Members re-derive the class ID independently.
	for _, c := range t1.Classes {
		for _, s := range c.Sites {
			sh := a1.ShadowOf(s)
			if !sh.Classable() {
				t.Errorf("member %d no longer classable", s)
			}
			if id := a1.ShadowID(sh); id != c.ID {
				t.Errorf("member %d hashes to %s, class is %s", s, id, c.ID)
			}
		}
	}
}

func TestClassIDDiscriminates(t *testing.T) {
	// Same opcodes, different store distance: distinct classes.
	a := Analyze(kern(t, `
.kernel k
    S2R R0, SR_TID.X
    IADD R2, R0, 0x1
    STG.32 [R1], R2
    IADD R3, R0, 0x1
    MOV R7, 0x0
    STG.32 [R1], R3
    EXIT
`))
	tbl := a.BuildClassTable()
	c1, c2 := tbl.ClassOf(1), tbl.ClassOf(3)
	if c1 == nil || c2 == nil {
		t.Fatal("both IADD sites should be classable")
	}
	if c1 == c2 {
		t.Error("store at delta 1 vs delta 2 must not share a class")
	}
}

func TestShadowRoleString(t *testing.T) {
	if got := (RoleRead | RoleStore).String(); got != "read+store" {
		t.Errorf("Role string = %q", got)
	}
	if got := Role(0).String(); got != "none" {
		t.Errorf("zero Role string = %q", got)
	}
	if ShadowData.String() != "data" || ShadowControl.String() != "control" || ShadowEmpty.String() != "empty" {
		t.Error("ShadowKind strings wrong")
	}
}
