package sassan

import (
	"strings"
	"testing"

	"repro/internal/sass"
)

// kern assembles a single-kernel module and returns the kernel.
func kern(t *testing.T, src string) *sass.Kernel {
	t.Helper()
	p, err := sass.Assemble("t", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p.Kernels[0]
}

func regs(rs ...sass.RegID) RegSet {
	var s RegSet
	for _, r := range rs {
		s.Add(r)
	}
	return s
}

func preds(ps ...sass.PredID) PredSet {
	var s PredSet
	for _, p := range ps {
		s.Add(p)
	}
	return s
}

func TestRegSetOps(t *testing.T) {
	a := regs(0, 63, 64, 200, 254)
	for _, r := range []sass.RegID{0, 63, 64, 200, 254} {
		if !a.Has(r) {
			t.Errorf("Has(%v) = false", r)
		}
	}
	if a.Has(1) || a.Has(128) {
		t.Error("spurious members")
	}
	b := regs(63, 64, 7)
	u := a
	u.Union(b)
	if got := len(u.Regs()); got != 6 {
		t.Errorf("union size = %d, want 6", got)
	}
	if d := a.Minus(b); d.Has(63) || d.Has(64) || !d.Has(0) {
		t.Errorf("Minus wrong: %v", d)
	}
	if !a.Intersects(b) || a.Intersects(regs(5)) {
		t.Error("Intersects wrong")
	}
	if !regs(63, 64).ContainedIn(a) || regs(1).ContainedIn(a) {
		t.Error("ContainedIn wrong")
	}
	if !(RegSet{}).Empty() || a.Empty() {
		t.Error("Empty wrong")
	}
	if got := regs(0, 4).String(); got != "{R0,R4}" {
		t.Errorf("String = %q", got)
	}
}

func TestPredSetOps(t *testing.T) {
	a := preds(0, 2, 6)
	if !a.Has(0) || a.Has(1) {
		t.Error("Has wrong")
	}
	if d := a.Minus(preds(2)); d.Has(2) || !d.Has(0) {
		t.Error("Minus wrong")
	}
	if !a.Intersects(preds(6)) || a.Intersects(preds(5)) {
		t.Error("Intersects wrong")
	}
	if got := a.String(); got != "{P0,P2,P6}" {
		t.Errorf("String = %q", got)
	}
	if got := a.Preds(); len(got) != 3 || got[0] != 0 || got[2] != 6 {
		t.Errorf("Preds = %v", got)
	}
}

func TestDefsUses(t *testing.T) {
	k := kern(t, `
.kernel k
.param n
    S2R R0, SR_TID.X
    ISETP.GE.AND P0, R0, c0[n], PT
@P0 MOV R1, 0x7
    DADD R2, R4, R6
    LDG.64 R8, [R10]
    LDG.128 R12, [R10]
    STG.128 [R10], R20
    LDC.64 R30, c0[0x0]
    P2R R31, 0x7f
    MOV R40, RZ
@!P1 BRA done
done:
    EXIT
`)
	tests := []struct {
		i        int
		gpR, gpW RegSet
		prR, prW PredSet
		guarded  bool
	}{
		// S2R R0: no register reads, writes R0.
		{0, RegSet{}, regs(0), 0, 0, false},
		// ISETP P0, R0, c0[n], PT: reads R0; the PT combine operand is a
		// default, not a use; writes P0.
		{1, regs(0), RegSet{}, 0, preds(0), false},
		// @P0 MOV: guarded, reads P0, writes R1 conditionally.
		{2, RegSet{}, regs(1), preds(0), 0, true},
		// DADD: FP64 reads source pairs, writes the destination pair.
		{3, regs(4, 5, 6, 7), regs(2, 3), 0, 0, false},
		// LDG.64: address base read, pair write.
		{4, regs(10), regs(8, 9), 0, 0, false},
		// LDG.128: four-register write span.
		{5, regs(10), regs(12, 13, 14, 15), 0, 0, false},
		// STG.128: the value operand is a four-register read span.
		{6, regs(10, 20, 21, 22, 23), RegSet{}, 0, 0, false},
		// LDC.64: the executor writes a single register despite the width.
		{7, RegSet{}, regs(30), 0, 0, false},
		// P2R: reads every predicate P0..P6.
		{8, RegSet{}, regs(31), allPreds, 0, false},
		// MOV R40, RZ: RZ is constant zero, not a read.
		{9, RegSet{}, regs(40), 0, 0, false},
		// @!P1 BRA: negated guard still reads P1.
		{10, RegSet{}, RegSet{}, preds(1), 0, true},
	}
	for _, tc := range tests {
		du := DefsUses(&k.Instrs[tc.i])
		if du.GPReads != tc.gpR || du.GPWrites != tc.gpW ||
			du.PRReads != tc.prR || du.PRWrites != tc.prW || du.Guarded != tc.guarded {
			t.Errorf("#%d %v: got reads %v%v writes %v%v guarded %v, want %v%v %v%v %v",
				tc.i, k.Instrs[tc.i].Op,
				du.GPReads, du.PRReads, du.GPWrites, du.PRWrites, du.Guarded,
				tc.gpR, tc.prR, tc.gpW, tc.prW, tc.guarded)
		}
	}
}

func TestDefsUsesSpanWrap(t *testing.T) {
	// A 128-bit load based at R253 wraps exactly like the executor's
	// d.Reg + RegID(i): R253, R254, skip RZ, R0.
	in := sass.Instr{
		Op:   sass.MustOp("LDG"),
		Dst:  []sass.Operand{sass.R(253)},
		Src:  []sass.Operand{sass.Mem(2, 0)},
		Mods: sass.Mods{Width: 16},
	}
	du := DefsUses(&in)
	if want := regs(253, 254, 0); du.GPWrites != want {
		t.Errorf("wrap span = %v, want %v", du.GPWrites, want)
	}
}

func TestCorruptTargetsLDCWidth(t *testing.T) {
	k := kern(t, `
.kernel k
    LDC.64 R4, c0[0x0]
    EXIT
`)
	gp, pr := CorruptTargets(&k.Instrs[0])
	// The injector expands LDC.64 to two fault targets even though the
	// executor writes one register; pruning must prove both dead.
	if want := regs(4, 5); gp != want || pr != 0 {
		t.Errorf("CorruptTargets = %v %v, want %v {}", gp, pr, want)
	}
	if du := DefsUses(&k.Instrs[0]); du.GPWrites != regs(4) {
		t.Errorf("exec write set = %v, want %v", du.GPWrites, regs(4))
	}
}

func TestBuildCFG(t *testing.T) {
	k := kern(t, `
.kernel k
    S2R R0, SR_TID.X
    ISETP.GE.AND P0, R0, 0x4, PT
@P0 BRA skip
    IADD R1, R0, 0x1
skip:
    MOV R2, R1
    EXIT
`)
	cfg := BuildCFG(k)
	if cfg.N != 6 {
		t.Fatalf("N = %d", cfg.N)
	}
	// Guarded branch keeps both edges.
	want := map[int][]int{0: {1}, 1: {2}, 2: {4, 3}, 3: {4}, 4: {5}, 5: nil}
	for i, ws := range want {
		got := cfg.Succs[i]
		if len(got) != len(ws) {
			t.Fatalf("Succs[%d] = %v, want %v", i, got, ws)
		}
		for j := range ws {
			if got[j] != ws[j] {
				t.Fatalf("Succs[%d] = %v, want %v", i, got, ws)
			}
		}
	}
	for i := 0; i < 6; i++ {
		if !cfg.Reachable[i] {
			t.Errorf("instr %d unreachable", i)
		}
	}
	// Blocks: [0,3) [3,4) [4,6).
	if len(cfg.Blocks) != 3 {
		t.Fatalf("blocks = %+v", cfg.Blocks)
	}
	b0 := cfg.Blocks[0]
	if b0.Start != 0 || b0.End != 3 || len(b0.Succs) != 2 {
		t.Errorf("block 0 = %+v", b0)
	}
	if cfg.BlockOf[4] != 2 {
		t.Errorf("BlockOf[4] = %d", cfg.BlockOf[4])
	}
	if _, off := cfg.FallsOffEnd(); off {
		t.Error("FallsOffEnd on a kernel ending in EXIT")
	}
}

func TestCFGUnconditionalBranch(t *testing.T) {
	k := kern(t, `
.kernel k
    BRA out
    MOV R0, 0x1
out:
    EXIT
`)
	cfg := BuildCFG(k)
	if len(cfg.Succs[0]) != 1 || cfg.Succs[0][0] != 2 {
		t.Errorf("Succs[0] = %v", cfg.Succs[0])
	}
	if cfg.Reachable[1] {
		t.Error("instr 1 should be unreachable")
	}
}

func TestCFGCallRet(t *testing.T) {
	k := kern(t, `
.kernel k
    CALL fn
    EXIT
fn:
    RET
`)
	cfg := BuildCFG(k)
	// RET resumes at every post-CALL point.
	if len(cfg.Succs[2]) != 1 || cfg.Succs[2][0] != 1 {
		t.Errorf("RET succs = %v, want [1]", cfg.Succs[2])
	}
	for i := 0; i < 3; i++ {
		if !cfg.Reachable[i] {
			t.Errorf("instr %d unreachable", i)
		}
	}
}

func TestCFGIndirect(t *testing.T) {
	k := kern(t, `
.kernel k
    MOV R0, 0x4
    BRX R0
    EXIT
    EXIT
`)
	cfg := BuildCFG(k)
	if !cfg.Indirect[1] {
		t.Fatal("BRX not marked indirect")
	}
	for i := range k.Instrs {
		if !cfg.Reachable[i] {
			t.Errorf("instr %d unreachable despite indirect branch", i)
		}
	}
}

func TestCFGFallsOffEnd(t *testing.T) {
	k := kern(t, `
.kernel k
    MOV R0, RZ
`)
	cfg := BuildCFG(k)
	if i, off := cfg.FallsOffEnd(); !off || i != 0 {
		t.Errorf("FallsOffEnd = %d, %v; want 0, true", i, off)
	}
}

func TestLiveness(t *testing.T) {
	k := kern(t, `
.kernel k
    MOV R0, 0x1
    ISETP.GE.AND P0, R0, 0x2, PT
@P0 MOV R0, 0x2
    MOV R1, R0
    STG.32 [R2], R1
    EXIT
`)
	a := Analyze(k)
	// R0 is read at #3, and the guarded write at #2 must not kill it.
	if !a.LiveOutGP[0].Has(0) || !a.LiveInGP[2].Has(0) || !a.LiveOutGP[2].Has(0) {
		t.Errorf("R0 liveness broken: out0=%v in2=%v out2=%v",
			a.LiveOutGP[0], a.LiveInGP[2], a.LiveOutGP[2])
	}
	// The unguarded write at #0 kills R0 above it.
	if a.LiveInGP[0].Has(0) {
		t.Errorf("R0 live before its defining write: %v", a.LiveInGP[0])
	}
	// R2 (the store address) is live all the way from the entry.
	if !a.LiveInGP[0].Has(2) {
		t.Errorf("address register not live at entry: %v", a.LiveInGP[0])
	}
	// P0 is live between its def and its guard use.
	if !a.LiveOutPR[1].Has(0) || a.LiveOutPR[2].Has(0) {
		t.Errorf("P0 liveness broken: out1=%v out2=%v", a.LiveOutPR[1], a.LiveOutPR[2])
	}
	// Nothing is live after the store consumes R1.
	if !a.LiveOutGP[4].Empty() {
		t.Errorf("LiveOutGP[4] = %v, want empty", a.LiveOutGP[4])
	}
}

func TestLivenessLoop(t *testing.T) {
	k := kern(t, `
.kernel k
    MOV R0, 0x0
loop:
    IADD R0, R0, 0x1
    ISETP.GE.AND P0, R0, 0x8, PT
@!P0 BRA loop
    STG.32 [R1], R0
    EXIT
`)
	a := Analyze(k)
	// R0 stays live around the back edge.
	if !a.LiveOutGP[3].Has(0) || !a.LiveInGP[1].Has(0) {
		t.Errorf("loop-carried R0 not live: out3=%v in1=%v", a.LiveOutGP[3], a.LiveInGP[1])
	}
}

func TestDeadDests(t *testing.T) {
	k := kern(t, `
.kernel k
    MOV R3, 0x7
    MOV R0, 0x1
    STG.32 [R1], R0
    EXIT
`)
	a := Analyze(k)
	if !a.DeadDests(0) {
		t.Error("MOV R3 (never read) should have dead destinations")
	}
	if a.DeadDests(1) {
		t.Error("MOV R0 (read by the store) should not be dead")
	}
	// STG has no destination register: nothing to corrupt, never prunable.
	if a.DeadDests(2) {
		t.Error("STG should not be prunable")
	}
	if a.DeadDests(3) {
		t.Error("EXIT should not be prunable")
	}
}

func TestDeadDestsLDCWidthDivergence(t *testing.T) {
	// The executor writes only R4 for LDC.64, but the injector may corrupt
	// R5 too. R5 is read later, so even though the exec-accurate write set
	// is dead-ish, pruning must refuse.
	k := kern(t, `
.kernel k
    LDC.64 R4, c0[0x0]
    MOV R0, R5
    STG.32 [R2], R0
    EXIT
`)
	a := Analyze(k)
	if a.DeadDests(0) {
		t.Error("LDC.64 with a live high fault target must not be prunable")
	}
	// With the high half dead as well, it becomes prunable: R4 and R5 both
	// unread below.
	k2 := kern(t, `
.kernel k
    LDC.64 R4, c0[0x0]
    STG.32 [R2], R0
    EXIT
`)
	if !Analyze(k2).DeadDests(0) {
		t.Error("LDC.64 with both fault targets dead should be prunable")
	}
}

func diagCodes(diags []Diagnostic) map[Code]int {
	m := make(map[Code]int)
	for _, d := range diags {
		m[d.Code]++
	}
	return m
}

// TestVerifyNegative exercises every diagnostic class the verifier can
// produce, one table row per class.
func TestVerifyNegative(t *testing.T) {
	mk := func(instrs ...sass.Instr) *sass.Kernel {
		return &sass.Kernel{Name: "neg", Instrs: instrs}
	}
	pt := sass.PredRef{Pred: sass.PT}
	exit := sass.Instr{Op: sass.MustOp("EXIT"), Guard: pt}
	tests := []struct {
		name    string
		kernel  *sass.Kernel
		code    Code
		sev     Severity
		instr   int
		msgPart string
	}{
		{
			name: "bad register: guard predicate out of range",
			kernel: mk(sass.Instr{
				Op:    sass.MustOp("MOV"),
				Guard: sass.PredRef{Pred: 9},
				Dst:   []sass.Operand{sass.R(0)},
				Src:   []sass.Operand{sass.Imm(1)},
			}, exit),
			code: CodeBadRegister, sev: SevError, instr: 0, msgPart: "P9",
		},
		{
			name: "bad register: destination span overflows",
			kernel: mk(sass.Instr{
				Op:   sass.MustOp("LDG"),
				Dst:  []sass.Operand{sass.R(253)},
				Src:  []sass.Operand{sass.Mem(2, 0)},
				Mods: sass.Mods{Width: 16},
			}, exit),
			code: CodeBadRegister, sev: SevError, instr: 0, msgPart: "span",
		},
		{
			name: "bad branch target: unresolved operand",
			kernel: mk(sass.Instr{
				Op:  sass.MustOp("BRA"),
				Src: []sass.Operand{sass.R(0)},
			}, exit),
			code: CodeBadBranchTarget, sev: SevError, instr: 0, msgPart: "not a resolved label",
		},
		{
			name: "bad branch target: out of bounds",
			kernel: mk(sass.Instr{
				Op:  sass.MustOp("BRA"),
				Src: []sass.Operand{{Kind: sass.OpdLabel, Target: 99}},
			}, exit),
			code: CodeBadBranchTarget, sev: SevError, instr: 0, msgPart: "99",
		},
		{
			name: "fall off end",
			kernel: mk(sass.Instr{
				Op:  sass.MustOp("MOV"),
				Dst: []sass.Operand{sass.R(0)},
				Src: []sass.Operand{sass.Imm(1)},
			}),
			code: CodeFallOffEnd, sev: SevError, instr: 0, msgPart: "EXIT",
		},
		{
			name: "unreachable block",
			kernel: mk(exit, sass.Instr{
				Op:  sass.MustOp("MOV"),
				Dst: []sass.Operand{sass.R(0)},
				Src: []sass.Operand{sass.Imm(1)},
			}, exit),
			code: CodeUnreachable, sev: SevWarning, instr: 1, msgPart: "unreachable",
		},
		{
			name: "undefined read",
			kernel: mk(sass.Instr{
				Op:  sass.MustOp("IADD"),
				Dst: []sass.Operand{sass.R(1)},
				Src: []sass.Operand{sass.R(0), sass.Imm(1)},
			}, sass.Instr{
				Op:  sass.MustOp("STG"),
				Src: []sass.Operand{sass.Mem(1, 0), sass.R(1)},
			}, exit),
			code: CodeUndefinedRead, sev: SevWarning, instr: 0, msgPart: "{R0}",
		},
		{
			name: "dead write",
			kernel: mk(sass.Instr{
				Op:  sass.MustOp("MOV"),
				Dst: []sass.Operand{sass.R(3)},
				Src: []sass.Operand{sass.Imm(7)},
			}, exit),
			code: CodeDeadWrite, sev: SevWarning, instr: 0, msgPart: "{R3}",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			diags := VerifyKernel(tc.kernel)
			var hit *Diagnostic
			for i := range diags {
				if diags[i].Code == tc.code && diags[i].Instr == tc.instr {
					hit = &diags[i]
					break
				}
			}
			if hit == nil {
				t.Fatalf("no %v diagnostic at #%d; got %v", tc.code, tc.instr, diags)
			}
			if hit.Sev != tc.sev {
				t.Errorf("severity = %v, want %v", hit.Sev, tc.sev)
			}
			if !strings.Contains(hit.Msg, tc.msgPart) {
				t.Errorf("message %q missing %q", hit.Msg, tc.msgPart)
			}
			if hit.Kernel != "neg" {
				t.Errorf("kernel = %q", hit.Kernel)
			}
		})
	}
}

func TestVerifyClean(t *testing.T) {
	k := kern(t, `
.kernel k
.param n
.param ptr
start:
    S2R R0, SR_TID.X
    ISETP.GE.AND P0, R0, c0[n], PT
@P0 EXIT
    SHL R1, R0, 0x2
    IADD R2, R1, c0[ptr]
    LDG.32 R3, [R2]
    FADD R4, R3, -R3
    STG.32 [R2], R4
    EXIT
`)
	if diags := VerifyKernel(k); len(diags) != 0 {
		t.Errorf("clean kernel produced diagnostics: %v", diags)
	}
}

func TestVerifyUnreachableSkipsDataflow(t *testing.T) {
	// Dataflow diagnostics (undefined read, dead write) must not fire on
	// unreachable code; only the unreachable warning should.
	pt := sass.PredRef{Pred: sass.PT}
	k := &sass.Kernel{Name: "k", Instrs: []sass.Instr{
		{Op: sass.MustOp("EXIT"), Guard: pt},
		{Op: sass.MustOp("IADD"), Guard: pt,
			Dst: []sass.Operand{sass.R(1)},
			Src: []sass.Operand{sass.R(9), sass.Imm(1)}},
		{Op: sass.MustOp("EXIT"), Guard: pt},
	}}
	diags := VerifyKernel(k)
	codes := diagCodes(diags)
	if codes[CodeUnreachable] != 1 {
		t.Errorf("want one unreachable warning, got %v", diags)
	}
	if codes[CodeUndefinedRead] != 0 || codes[CodeDeadWrite] != 0 {
		t.Errorf("dataflow diagnostics on unreachable code: %v", diags)
	}
}

func TestVerifyProgramDuplicateKernel(t *testing.T) {
	pt := sass.PredRef{Pred: sass.PT}
	p := &sass.Program{
		Name: "m",
		Kernels: []*sass.Kernel{
			{Name: "k", Instrs: []sass.Instr{{Op: sass.MustOp("EXIT"), Guard: pt}}},
			{Name: "k", Instrs: []sass.Instr{{Op: sass.MustOp("EXIT"), Guard: pt}}},
		},
	}
	diags := VerifyProgram(p)
	if diagCodes(diags)[CodeDuplicateKernel] != 1 {
		t.Fatalf("want one duplicate-kernel error, got %v", diags)
	}
	if !HasErrors(diags) {
		t.Error("HasErrors = false")
	}
	var dup *Diagnostic
	for i := range diags {
		if diags[i].Code == CodeDuplicateKernel {
			dup = &diags[i]
		}
	}
	if dup.Instr != -1 {
		t.Errorf("module-level diagnostic has Instr = %d", dup.Instr)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Kernel: "saxpy", Instr: 3, Sev: SevError, Code: CodeBadBranchTarget, Msg: "boom"}
	if got := d.String(); got != "saxpy:#3: error: bad-branch-target: boom" {
		t.Errorf("String = %q", got)
	}
	d = Diagnostic{Instr: -1, Sev: SevWarning, Code: CodeDeadWrite, Msg: "m"}
	if got := d.String(); !strings.HasPrefix(got, "<module>: warning") {
		t.Errorf("String = %q", got)
	}
}

func TestHasErrorsAndCountWarnings(t *testing.T) {
	diags := []Diagnostic{
		{Sev: SevWarning}, {Sev: SevWarning},
	}
	if HasErrors(diags) {
		t.Error("HasErrors on warnings only")
	}
	if CountWarnings(diags) != 2 {
		t.Error("CountWarnings wrong")
	}
	if !HasErrors(append(diags, Diagnostic{Sev: SevError})) {
		t.Error("HasErrors missed an error")
	}
}
