package sassan

import "repro/internal/sass"

// Fault-propagation shadows: the forward def-use closure of one injection
// site's corrupt-target set. The pass follows the tainted registers along
// forward CFG edges only — instruction index order is a topological order
// of the forward edges, so a single left-to-right sweep is a complete
// propagation — and records every instruction that touches the taint. The
// closure is cut at anything the scalar register analysis cannot follow
// soundly: a back edge or indirect branch carrying live taint (loop-carried
// corruption mixes dynamic occurrences), and a tainted guard or
// control-transfer input escalates the whole shadow to a control shadow,
// because from that point the executed path itself depends on the fault.
//
// Shadows feed two consumers. Masked() is a soundness claim the campaign
// may answer without running: taint that provably dies inside the register
// file — no store, no address use, no control input, no cut — cannot alter
// output, traps, or timing, generalizing the dead-destination prune (whose
// shadow is simply empty). Classable() additionally admits shadows whose
// taint escapes through plain unguarded global stores with every
// intermediate reader difference-preserving; those sites share dynamic
// behavior shape and are grouped into equivalence classes by equiv.go.

// Role is a bitmask describing how one shadow member touches the taint.
type Role uint8

// Roles.
const (
	// RoleRead: reads a tainted register or predicate as data.
	RoleRead Role = 1 << iota
	// RoleGen: its destination writes become tainted.
	RoleGen
	// RoleStore: writes a tainted value to memory.
	RoleStore
	// RoleAddress: uses a tainted register as a memory address.
	RoleAddress
	// RoleControl: tainted guard predicate or control-transfer input.
	RoleControl
)

func (r Role) String() string {
	s := ""
	add := func(bit Role, name string) {
		if r&bit != 0 {
			if s != "" {
				s += "+"
			}
			s += name
		}
	}
	add(RoleRead, "read")
	add(RoleGen, "gen")
	add(RoleStore, "store")
	add(RoleAddress, "address")
	add(RoleControl, "control")
	if s == "" {
		s = "none"
	}
	return s
}

// ShadowKind is the overall shape of a shadow.
type ShadowKind uint8

// Shadow kinds.
const (
	// ShadowEmpty: the taint is never read — the corrupt targets are dead.
	ShadowEmpty ShadowKind = iota + 1
	// ShadowData: the taint flows through data instructions only.
	ShadowData
	// ShadowControl: the taint reaches a guard predicate or a control
	// transfer's input; the executed path depends on the fault.
	ShadowControl
)

func (k ShadowKind) String() string {
	switch k {
	case ShadowEmpty:
		return "empty"
	case ShadowData:
		return "data"
	case ShadowControl:
		return "control"
	default:
		return "invalid"
	}
}

// ShadowEvent is one instruction touching the taint, identified by its
// distance from the site so that shadows at different sites compare.
type ShadowEvent struct {
	// Delta is the member's instruction index minus the site's.
	Delta int
	// Op is the member's opcode.
	Op sass.Op
	// Role describes how the member touches the taint.
	Role Role
}

// Shadow is the fault-propagation closure of one injection site.
type Shadow struct {
	// Site is the injection site's instruction index.
	Site int
	// Kind classifies the shadow's shape.
	Kind ShadowKind
	// TargetGP and TargetPR are the site's corrupt-target sets (the
	// injector's fault model, CorruptTargets).
	TargetGP RegSet
	TargetPR PredSet
	// Events lists the members in instruction order. After a control
	// escalation the list is truncated: propagation stops at the
	// escalating member.
	Events []ShadowEvent
	// Stores counts members with RoleStore; AddrSinks counts members with
	// RoleAddress.
	Stores    int
	AddrSinks int
	// Cut reports that propagation hit a back edge or an indirect branch
	// while taint was live: the closure is incomplete and no soundness
	// claim holds.
	Cut bool
	// Opaque reports a chain reader that is not difference-preserving — an
	// opcode outside the faithful set, a guarded or cross-lane reader, or
	// one reading the taint through several operands (self-cancelation).
	// Opaque shadows with sinks cannot be classed; it is irrelevant to
	// Masked, which needs no value reasoning.
	Opaque bool
	// DirtySink reports a memory sink other than a plain unguarded global
	// store: an atomic, a shared/local store, or a guarded store. The
	// taint escapes, but through a path whose dynamic behavior is not
	// shared across sites, so the shadow cannot be classed.
	DirtySink bool
	// ControlAt is the escalating member's instruction index for control
	// shadows, -1 otherwise.
	ControlAt int
}

// Masked reports that an injection at this site is provably masked: the
// taint dies inside the register file on every path, touching no memory, no
// address, and no control input. This holds for any corrupted bit, lane,
// and dynamic occurrence — the architectural difference never escapes.
func (s *Shadow) Masked() bool {
	return s.Kind != ShadowControl && !s.Cut && s.Stores == 0 && s.AddrSinks == 0
}

// Classable reports that the site may join an equivalence class: either
// provably masked, or a data shadow whose only escape is plain unguarded
// global stores reached through difference-preserving readers. Sites with
// equal class keys (see equiv.go) then share dynamic classification shape,
// so one representative answers for the class.
func (s *Shadow) Classable() bool {
	if s.Masked() {
		return true
	}
	return s.Kind == ShadowData && !s.Cut &&
		s.AddrSinks == 0 && !s.Opaque && !s.DirtySink && s.Stores > 0
}

// faithfulReader reports whether a chain reader preserves any single-bit
// difference in its tainted input through to its output: flipping bit k of
// one source always changes the written value. MOV copies; IADD/IADD3 add
// a nonzero ±2^k modulo 2^32. Everything else (logic ops can absorb,
// shifts and converts drop bits, multiplies can cancel modulo 2^32,
// floating point rounds) is treated as opaque.
func faithfulReader(sem sass.SemKind) bool {
	switch sem {
	case sass.SemMov, sass.SemIAdd, sass.SemIAdd3:
		return true
	}
	return false
}

// controlSem reports semantics whose data inputs steer control flow.
func controlSem(sem sass.SemKind) bool {
	switch sem {
	case sass.SemBra, sass.SemJmp, sass.SemBrx, sass.SemCall,
		sass.SemRet, sass.SemExit, sass.SemKill, sass.SemBpt:
		return true
	}
	return false
}

// crossLaneSem reports semantics that exchange values between lanes; the
// scalar analysis still covers them (register names are lane-uniform) but
// the value a reader observes is another lane's, so they are opaque.
func crossLaneSem(sem sass.SemKind) bool {
	switch sem {
	case sass.SemShfl, sass.SemVote, sass.SemMatch:
		return true
	}
	return false
}

// addrBases collects the base registers of the instruction's memory
// operands.
func addrBases(in *sass.Instr) RegSet {
	var s RegSet
	for i := range in.Src {
		if in.Src[i].Kind == sass.OpdMem {
			s.addReg(in.Src[i].Reg)
		}
	}
	return s
}

// taintedSrcSlots counts source operand slots reading a register in gp —
// the multi-operand read check behind the self-cancelation rule (IADD3
// R0, R4, R4 with bit 31 of R4 flipped adds 2^32 ≡ 0).
func taintedSrcSlots(in *sass.Instr, gp RegSet) int {
	n := 0
	for i := range in.Src {
		if in.Src[i].Kind == sass.OpdReg && in.Src[i].Reg != sass.RZ && gp.Has(in.Src[i].Reg) {
			n++
		}
	}
	return n
}

// ShadowOf computes the fault-propagation shadow of injection site i.
func (a *Analysis) ShadowOf(i int) *Shadow {
	n := a.CFG.N
	sh := &Shadow{Site: i, Kind: ShadowEmpty, ControlAt: -1}
	sh.TargetGP, sh.TargetPR = CorruptTargets(&a.Kernel.Instrs[i])
	if sh.TargetGP.Empty() && sh.TargetPR.Empty() {
		return sh
	}

	// Per-instruction taint on entry, seeded at the site's successors.
	tinGP := make([]RegSet, n)
	tinPR := make([]PredSet, n)
	seed := func(s int) {
		if s >= n {
			return
		}
		if s <= i {
			sh.Cut = true
			return
		}
		tinGP[s].Union(sh.TargetGP)
		tinPR[s] |= sh.TargetPR
	}
	if a.CFG.Indirect[i] {
		sh.Cut = true
	} else {
		for _, s := range a.CFG.Succs[i] {
			seed(s)
		}
	}

	for j := i + 1; j < n; j++ {
		gpT := tinGP[j]
		prT := tinPR[j]
		if gpT.Empty() && prT.Empty() {
			continue
		}
		in := &a.Kernel.Instrs[j]
		du := &a.DU[j]
		sem := in.Op.Info().Sem

		// A tainted guard predicate decides whether this member executes
		// at all: control escalation, propagation stops here.
		if !in.Guard.True() && prT.Has(in.Guard.Pred) {
			sh.Kind = ShadowControl
			sh.ControlAt = j
			sh.Events = append(sh.Events, ShadowEvent{Delta: j - i, Op: in.Op, Role: RoleControl})
			return sh
		}

		// Split the reads into address bases and data values; the guard
		// predicate is clean here, so du.PRReads minus the guard bit is
		// exactly the data predicate reads.
		addrGP := addrBases(in)
		dataGP := du.GPReads
		addrT := RegSet{}
		if !addrGP.Empty() {
			dataGP = dataGP.Minus(addrGP)
			addrT = addrGP
			addrT[0] &= gpT[0]
			addrT[1] &= gpT[1]
			addrT[2] &= gpT[2]
			addrT[3] &= gpT[3]
		}
		dataPR := du.PRReads
		if !in.Guard.True() {
			dataPR = dataPR.Minus(1 << in.Guard.Pred)
		}
		readGP := dataGP
		readGP[0] &= gpT[0]
		readGP[1] &= gpT[1]
		readGP[2] &= gpT[2]
		readGP[3] &= gpT[3]
		readPR := dataPR & prT
		reads := !readGP.Empty() || !readPR.Empty()

		if controlSem(sem) {
			if reads {
				sh.Kind = ShadowControl
				sh.ControlAt = j
				sh.Events = append(sh.Events, ShadowEvent{Delta: j - i, Op: in.Op, Role: RoleControl})
				return sh
			}
		}

		var role Role
		if reads {
			role |= RoleRead
		}
		if !addrT.Empty() {
			role |= RoleAddress
			sh.AddrSinks++
		}

		// Memory sinks and the taint transfer function.
		genWrites := false
		killWrites := !du.Guarded
		switch sem {
		case sass.SemSt, sass.SemAtom, sass.SemRed:
			if reads { // tainted value flows to memory
				role |= RoleStore
				sh.Stores++
				if sem != sass.SemSt || du.Guarded {
					sh.DirtySink = true
				} else if sp := in.Op.Info().Space; sp != sass.SpaceGlobal && sp != sass.SpaceGeneric {
					sh.DirtySink = true
				}
			}
			// An atomic's register result is the clean old memory value;
			// a store writes no registers. Either way no gen.
		case sass.SemLd, sass.SemLdc:
			// A load's destination is clean data unless the address is
			// corrupted, in which case the loaded value is unknown.
			if !addrT.Empty() {
				genWrites = true
				killWrites = false
			}
		default:
			if reads {
				genWrites = true
				if du.Guarded || crossLaneSem(sem) || !faithfulReader(sem) ||
					taintedSrcSlots(in, gpT) > 1 {
					sh.Opaque = true
				}
			}
		}

		if role != 0 {
			if genWrites && (!du.GPWrites.Empty() || !du.PRWrites.Empty()) {
				role |= RoleGen
			}
			sh.Events = append(sh.Events, ShadowEvent{Delta: j - i, Op: in.Op, Role: role})
		}

		// Transfer: kill definite clean overwrites, then gen tainted ones.
		toutGP := gpT
		toutPR := prT
		if killWrites {
			toutGP = toutGP.Minus(du.GPWrites)
			toutPR = toutPR.Minus(du.PRWrites)
		}
		if genWrites {
			toutGP.Union(du.GPWrites)
			toutPR |= du.PRWrites
		}

		if toutGP.Empty() && toutPR.Empty() {
			continue
		}
		if a.CFG.Indirect[j] {
			sh.Cut = true
			continue
		}
		for _, s := range a.CFG.Succs[j] {
			if s >= n {
				continue
			}
			if s <= j {
				sh.Cut = true
				continue
			}
			tinGP[s].Union(toutGP)
			tinPR[s] |= toutPR
		}
	}

	if len(sh.Events) > 0 {
		sh.Kind = ShadowData
	}
	return sh
}
