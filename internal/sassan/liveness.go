package sassan

import "repro/internal/sass"

// Analysis bundles the static analyses of one kernel: def/use per
// instruction, the CFG, and per-instruction backward liveness. LiveOut at
// instruction i is the set of registers whose value may still be read on
// some path after i executes — exactly the set a destination-register
// fault must intersect to have any chance of propagating, since the
// injector corrupts registers immediately after the instruction's
// write-back.
type Analysis struct {
	Kernel *sass.Kernel
	CFG    *CFG
	DU     []DefUse

	LiveInGP, LiveOutGP []RegSet
	LiveInPR, LiveOutPR []PredSet
}

// Analyze runs def/use extraction, CFG construction, and the liveness
// fixpoint over one kernel.
func Analyze(k *sass.Kernel) *Analysis {
	a := &Analysis{
		Kernel: k,
		CFG:    BuildCFG(k),
		DU:     make([]DefUse, len(k.Instrs)),
	}
	for i := range k.Instrs {
		a.DU[i] = DefsUses(&k.Instrs[i])
	}
	a.computeLiveness()
	return a
}

// computeLiveness iterates the backward dataflow to fixpoint. Guarded
// instructions never kill: their writes are conditional on the guard
// predicate, so a register live after them stays live before them. The
// transfer function is monotone over finite bitsets, so iteration
// terminates.
func (a *Analysis) computeLiveness() {
	n := a.CFG.N
	a.LiveInGP = make([]RegSet, n)
	a.LiveOutGP = make([]RegSet, n)
	a.LiveInPR = make([]PredSet, n)
	a.LiveOutPR = make([]PredSet, n)

	anyIndirect := false
	for _, ind := range a.CFG.Indirect {
		if ind {
			anyIndirect = true
			break
		}
	}

	for changed := true; changed; {
		changed = false
		// For indirect branches the successor set is every instruction;
		// fold their live-in union once per pass. Using the pass-start
		// snapshot preserves monotone convergence.
		var allGP RegSet
		var allPR PredSet
		if anyIndirect {
			for i := 0; i < n; i++ {
				allGP.Union(a.LiveInGP[i])
				allPR |= a.LiveInPR[i]
			}
		}
		for i := n - 1; i >= 0; i-- {
			var outGP RegSet
			var outPR PredSet
			if a.CFG.Indirect[i] {
				outGP = allGP
				outPR = allPR
			} else {
				for _, s := range a.CFG.Succs[i] {
					if s < n {
						outGP.Union(a.LiveInGP[s])
						outPR |= a.LiveInPR[s]
					}
				}
			}
			du := &a.DU[i]
			inGP := outGP
			inPR := outPR
			if !du.Guarded {
				inGP = inGP.Minus(du.GPWrites)
				inPR = inPR.Minus(du.PRWrites)
			}
			inGP.Union(du.GPReads)
			inPR |= du.PRReads
			if outGP != a.LiveOutGP[i] || outPR != a.LiveOutPR[i] ||
				inGP != a.LiveInGP[i] || inPR != a.LiveInPR[i] {
				changed = true
				a.LiveOutGP[i] = outGP
				a.LiveOutPR[i] = outPR
				a.LiveInGP[i] = inGP
				a.LiveInPR[i] = inPR
			}
		}
	}
}

// DeadDests reports whether instruction i has at least one corruptible
// destination register and every one of them is dead after the
// instruction. Corrupting a dead register cannot alter control flow,
// memory, traps, or program output on any path — the injection is Masked
// by construction. The check uses the injector's fault-target expansion
// (CorruptTargets), which can diverge from the execution write set (LDC
// width, a SETP's second predicate destination), so pruning proves dead
// exactly the registers a fault could touch.
func (a *Analysis) DeadDests(i int) bool {
	gp, pr := CorruptTargets(&a.Kernel.Instrs[i])
	if gp.Empty() && pr.Empty() {
		return false
	}
	return !gp.Intersects(a.LiveOutGP[i]) && !pr.Intersects(a.LiveOutPR[i])
}
