package sassan

import (
	"fmt"

	"repro/internal/sass"
)

// Severity grades a diagnostic. Errors describe code the simulator would
// trap or panic on (or that makes tooling ambiguous); warnings describe
// legal but suspicious code.
type Severity uint8

// Severities.
const (
	SevWarning Severity = iota + 1
	SevError
)

func (s Severity) String() string {
	switch s {
	case SevWarning:
		return "warning"
	case SevError:
		return "error"
	default:
		return fmt.Sprintf("Severity(%d)", uint8(s))
	}
}

// Code identifies a diagnostic class.
type Code uint8

// Diagnostic classes.
const (
	// CodeBadRegister: a register index outside the architectural file — a
	// predicate beyond P6/PT, or a multi-register destination span that
	// collides with RZ or wraps around the register file.
	CodeBadRegister Code = iota + 1
	// CodeBadBranchTarget: a direct control transfer without a label
	// operand, or whose resolved target lies outside the kernel.
	CodeBadBranchTarget
	// CodeFallOffEnd: a reachable path transfers control past the last
	// instruction without an EXIT (a bad-PC trap at run time).
	CodeFallOffEnd
	// CodeUnreachable: a basic block no path from the entry reaches.
	CodeUnreachable
	// CodeUndefinedRead: a register or predicate read on every path before
	// any instruction may have written it (reads architectural zero).
	CodeUndefinedRead
	// CodeDeadWrite: an instruction whose written registers are all dead —
	// never read again on any path.
	CodeDeadWrite
	// CodeDuplicateKernel: two kernels in one module share a name, making
	// name-based lookups ambiguous.
	CodeDuplicateKernel
)

func (c Code) String() string {
	switch c {
	case CodeBadRegister:
		return "bad-register"
	case CodeBadBranchTarget:
		return "bad-branch-target"
	case CodeFallOffEnd:
		return "fall-off-end"
	case CodeUnreachable:
		return "unreachable"
	case CodeUndefinedRead:
		return "undefined-read"
	case CodeDeadWrite:
		return "dead-write"
	case CodeDuplicateKernel:
		return "duplicate-kernel"
	default:
		return fmt.Sprintf("Code(%d)", uint8(c))
	}
}

// Diagnostic is one verifier finding.
type Diagnostic struct {
	// Kernel names the kernel; empty for module-level findings.
	Kernel string
	// Instr is the instruction index, or -1 for kernel- or module-level
	// findings.
	Instr int
	Sev   Severity
	Code  Code
	Msg   string
}

// String renders e.g. "saxpy:#3: error: bad-branch-target: ...".
func (d Diagnostic) String() string {
	loc := d.Kernel
	if loc == "" {
		loc = "<module>"
	}
	if d.Instr >= 0 {
		loc = fmt.Sprintf("%s:#%d", loc, d.Instr)
	}
	return fmt.Sprintf("%s: %s: %s: %s", loc, d.Sev, d.Code, d.Msg)
}

// HasErrors reports whether any diagnostic is an error.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Sev == SevError {
			return true
		}
	}
	return false
}

// CountWarnings returns the number of warning-severity diagnostics.
func CountWarnings(diags []Diagnostic) int {
	n := 0
	for _, d := range diags {
		if d.Sev == SevWarning {
			n++
		}
	}
	return n
}

// VerifyProgram verifies every kernel of a module and checks module-level
// invariants (unique kernel names).
func VerifyProgram(p *sass.Program) []Diagnostic {
	var diags []Diagnostic
	seen := make(map[string]bool, len(p.Kernels))
	for _, k := range p.Kernels {
		if seen[k.Name] {
			diags = append(diags, Diagnostic{
				Kernel: k.Name, Instr: -1, Sev: SevError, Code: CodeDuplicateKernel,
				Msg: fmt.Sprintf("kernel %q defined more than once in the module", k.Name),
			})
		}
		seen[k.Name] = true
		diags = append(diags, VerifyKernel(k)...)
	}
	return diags
}

// VerifyKernel runs the full static verification of one kernel and returns
// its diagnostics in instruction order.
func VerifyKernel(k *sass.Kernel) []Diagnostic {
	return verifyWith(Analyze(k))
}

// Verify runs the static checks over this prebuilt analysis, so a consumer
// that already paid for Analyze (the campaign pruner and classer) does not
// analyze the kernel a second time.
func (a *Analysis) Verify() []Diagnostic {
	return verifyWith(a)
}

// verifyWith performs the checks over a prebuilt analysis.
func verifyWith(a *Analysis) []Diagnostic {
	k := a.Kernel
	n := len(k.Instrs)
	var diags []Diagnostic
	add := func(i int, sev Severity, code Code, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Kernel: k.Name, Instr: i, Sev: sev, Code: code,
			Msg: fmt.Sprintf(format, args...),
		})
	}

	// Per-instruction shape checks.
	for i := range k.Instrs {
		in := &k.Instrs[i]
		checkPreds(in, func(p sass.PredID, where string) {
			add(i, SevError, CodeBadRegister,
				"%s predicate P%d outside the predicate file (P0..P6, PT)", where, p)
		})
		checkDestSpan(in, func(base sass.RegID, span int) {
			add(i, SevError, CodeBadRegister,
				"destination span %s..+%d overflows the register file", base, span-1)
		})
		switch in.Op.Info().Sem {
		case sass.SemBra, sass.SemJmp, sass.SemCall:
			t := branchTarget(in)
			switch {
			case t < 0:
				add(i, SevError, CodeBadBranchTarget,
					"%s target is not a resolved label", in.Op)
			case t >= n:
				add(i, SevError, CodeBadBranchTarget,
					"%s target %d outside instructions 0..%d", in.Op, t, n-1)
			}
		}
	}

	// Control-flow checks.
	if i, ok := a.CFG.FallsOffEnd(); ok {
		add(i, SevError, CodeFallOffEnd,
			"execution can fall past the last instruction without EXIT")
	}
	for _, b := range a.CFG.Blocks {
		if !a.CFG.Reachable[b.Start] {
			add(b.Start, SevWarning, CodeUnreachable,
				"block #%d..#%d is unreachable from the kernel entry", b.Start, b.End-1)
		}
	}

	// Dataflow checks over reachable instructions only.
	mayGP, mayPR := a.mayWritten()
	for i := range k.Instrs {
		if !a.CFG.Reachable[i] {
			continue
		}
		du := &a.DU[i]
		if miss := du.GPReads.Minus(mayGP[i]); !miss.Empty() {
			add(i, SevWarning, CodeUndefinedRead,
				"reads %s before any write reaches it (value is zero)", miss)
		}
		if miss := du.PRReads.Minus(mayPR[i]); !miss.Empty() {
			add(i, SevWarning, CodeUndefinedRead,
				"reads %s before any write reaches it (value is false)", miss)
		}
		if du.GPWrites.Empty() && du.PRWrites.Empty() {
			continue
		}
		if !du.GPWrites.Intersects(a.LiveOutGP[i]) && !du.PRWrites.Intersects(a.LiveOutPR[i]) {
			add(i, SevWarning, CodeDeadWrite,
				"destination%s %s never read on any path", plural(du),
				writesString(du))
		}
	}
	return diags
}

func plural(du *DefUse) string {
	n := len(du.GPWrites.Regs()) + len(du.PRWrites.Preds())
	if n > 1 {
		return "s"
	}
	return ""
}

func writesString(du *DefUse) string {
	switch {
	case du.GPWrites.Empty():
		return du.PRWrites.String()
	case du.PRWrites.Empty():
		return du.GPWrites.String()
	default:
		return du.GPWrites.String() + du.PRWrites.String()
	}
}

// checkPreds reports predicate indexes outside the architectural file,
// which the executor would index out of bounds.
func checkPreds(in *sass.Instr, report func(p sass.PredID, where string)) {
	if in.Guard.Pred >= sass.NumPreds {
		report(in.Guard.Pred, "guard")
	}
	for i := range in.Dst {
		if in.Dst[i].Kind == sass.OpdPred && in.Dst[i].Pred.Pred >= sass.NumPreds {
			report(in.Dst[i].Pred.Pred, "destination")
		}
	}
	for i := range in.Src {
		if in.Src[i].Kind == sass.OpdPred && in.Src[i].Pred.Pred >= sass.NumPreds {
			report(in.Src[i].Pred.Pred, "source")
		}
	}
}

// checkDestSpan reports multi-register destinations whose span collides
// with RZ or wraps around the register file: the executor would silently
// skip or wrap those writes, and the injector's fault-target expansion
// wraps the same way.
func checkDestSpan(in *sass.Instr, report func(base sass.RegID, span int)) {
	for i := range in.Dst {
		d := &in.Dst[i]
		if d.Kind != sass.OpdReg || d.Reg == sass.RZ {
			continue
		}
		span := destSpan(in)
		// The injector's fault-target expansion can be wider than the
		// execution write span (LDC's width modifier); check the maximum.
		if in.Op.Info().Sem == sass.SemLdc {
			switch in.Mods.MemWidth() {
			case 8:
				span = max(span, 2)
			case 16:
				span = max(span, 4)
			}
		}
		if span > 1 && int(d.Reg)+span-1 >= int(sass.RZ) {
			report(d.Reg, span)
		}
		break // only Dst[0] carries a span
	}
}

// mayWritten computes, per instruction, the registers some path from the
// entry may have written before it executes — the forward may-write
// analysis behind the undefined-read diagnostic. Guarded writes count:
// "may" is the conservative direction for suppressing false positives.
func (a *Analysis) mayWritten() ([]RegSet, []PredSet) {
	n := a.CFG.N
	mayGP := make([]RegSet, n)
	mayPR := make([]PredSet, n)
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			if !a.CFG.Reachable[i] {
				continue
			}
			outGP := mayGP[i]
			outGP.Union(a.DU[i].GPWrites)
			outPR := mayPR[i] | a.DU[i].PRWrites
			propagate := func(s int) {
				if s >= n {
					return
				}
				ng := mayGP[s]
				ng.Union(outGP)
				np := mayPR[s] | outPR
				if ng != mayGP[s] || np != mayPR[s] {
					mayGP[s] = ng
					mayPR[s] = np
					changed = true
				}
			}
			if a.CFG.Indirect[i] {
				for s := 0; s < n; s++ {
					propagate(s)
				}
				continue
			}
			for _, s := range a.CFG.Succs[i] {
				propagate(s)
			}
		}
	}
	return mayGP, mayPR
}
