package sassan

// Dominator and postdominator trees over the block-level CFG, computed with
// the Cooper–Harvey–Kennedy iterative algorithm over the reverse postorder
// the CFG already carries. The shadow/equivalence passes use postdominators
// to name the reconvergence point of a control-escalated shadow; the trees
// are exported because they are the natural next consumer of the public
// BlockRPO/BlockPreds surface.

// DomTree is a dominator (or, on the reversed graph, postdominator) tree
// over basic blocks.
type DomTree struct {
	// IDom maps each block to its immediate dominator block. The root maps
	// to itself; blocks not connected to the root map to -1.
	IDom []int
	// Root is the tree's root block: the entry block for dominators, the
	// virtual-exit representative (-1) recorded per exit block for
	// postdominators — see BuildPostDom.
	Root int
}

// Dominates reports whether block a dominates block b (reflexively).
func (t *DomTree) Dominates(a, b int) bool {
	for {
		if b < 0 {
			return false
		}
		if a == b {
			return true
		}
		next := t.IDom[b]
		if next == b {
			return a == b
		}
		b = next
	}
}

// intersect walks two blocks up the tree to their common ancestor, using a
// position index (higher = earlier in the traversal order).
func intersect(idom []int, pos []int, a, b int) int {
	for a != b {
		for pos[a] < pos[b] {
			a = idom[a]
		}
		for pos[b] < pos[a] {
			b = idom[b]
		}
	}
	return a
}

// BuildDom computes the dominator tree of the CFG's blocks from the entry
// block.
func (c *CFG) BuildDom() *DomTree {
	nb := len(c.Blocks)
	t := &DomTree{IDom: make([]int, nb), Root: 0}
	for b := range t.IDom {
		t.IDom[b] = -1
	}
	if nb == 0 {
		return t
	}
	pos := make([]int, nb) // position in RPO; higher = earlier
	for i, b := range c.BlockRPO {
		pos[b] = nb - i
	}
	t.IDom[0] = 0
	for changed := true; changed; {
		changed = false
		for _, b := range c.BlockRPO {
			if b == 0 {
				continue
			}
			newIDom := -1
			for _, p := range c.BlockPreds[b] {
				if t.IDom[p] < 0 {
					continue // predecessor not yet reached from the entry
				}
				if newIDom < 0 {
					newIDom = p
				} else {
					newIDom = intersect(t.IDom, pos, newIDom, p)
				}
			}
			if newIDom >= 0 && t.IDom[b] != newIDom {
				t.IDom[b] = newIDom
				changed = true
			}
		}
	}
	return t
}

// BuildPostDom computes the postdominator tree of the CFG's blocks. The
// reversed graph is rooted at a virtual exit that every block without
// successors (EXIT/KILL terminators, trap-only tails) feeds; a block whose
// immediate postdominator is the virtual exit maps to -1 in IDom, and
// Root is -1. Blocks from which no exit is reachable (infinite loops)
// also map to -1.
func (c *CFG) BuildPostDom() *DomTree {
	nb := len(c.Blocks)
	t := &DomTree{IDom: make([]int, nb), Root: -1}
	for b := range t.IDom {
		t.IDom[b] = -1
	}
	if nb == 0 {
		return t
	}
	// Work on an extended graph with the virtual exit as node nb.
	const virtual = -2 // sentinel while iterating; folded to -1 on return
	n := nb + 1
	exit := nb
	preds := make([][]int, n) // preds on the reversed graph = succs + exit edges
	for b := range c.Blocks {
		for _, s := range c.Blocks[b].Succs {
			preds[b] = append(preds[b], s)
		}
		if len(c.Blocks[b].Succs) == 0 {
			preds[b] = append(preds[b], exit)
		}
	}
	// Postorder on the reversed graph from the virtual exit = process blocks
	// via a DFS over predecessor edges (BlockPreds plus exit fan-in).
	rpreds := make([][]int, n) // successors on the reversed graph
	for b := range c.Blocks {
		rpreds[b] = c.BlockPreds[b]
	}
	for b := range c.Blocks {
		if len(c.Blocks[b].Succs) == 0 {
			rpreds[exit] = append(rpreds[exit], b)
		}
	}
	visited := make([]bool, n)
	post := make([]int, 0, n)
	type frame struct{ node, next int }
	stack := []frame{{node: exit}}
	visited[exit] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		succs := rpreds[f.node]
		if f.next < len(succs) {
			s := succs[f.next]
			f.next++
			if !visited[s] {
				visited[s] = true
				stack = append(stack, frame{node: s})
			}
			continue
		}
		post = append(post, f.node)
		stack = stack[:len(stack)-1]
	}
	order := make([]int, 0, n) // reverse postorder from the virtual exit
	for i := len(post) - 1; i >= 0; i-- {
		order = append(order, post[i])
	}
	pos := make([]int, n)
	for i, b := range order {
		pos[b] = n - i
	}
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[exit] = exit
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if b == exit {
				continue
			}
			newIDom := -1
			for _, p := range preds[b] {
				if idom[p] < 0 {
					continue
				}
				if newIDom < 0 {
					newIDom = p
				} else {
					newIDom = intersect(idom, pos, newIDom, p)
				}
			}
			if newIDom >= 0 && idom[b] != newIDom {
				idom[b] = newIDom
				changed = true
			}
		}
	}
	_ = virtual
	for b := 0; b < nb; b++ {
		if idom[b] == exit || idom[b] < 0 {
			t.IDom[b] = -1
		} else {
			t.IDom[b] = idom[b]
		}
	}
	return t
}
