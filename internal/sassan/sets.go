// Package sassan is the static-analysis layer over decoded SASS kernels:
// per-instruction def/use extraction, basic-block CFG construction,
// backward liveness dataflow, and a module verifier/linter. It is pure
// analysis — nothing here executes or mutates a kernel — and it sits
// between the ISA model (internal/sass) and the consumers that want a
// static view: module verification at load time (internal/cuda,
// internal/nvbit), dead-destination campaign pruning (internal/campaign),
// and the standalone cmd/sasslint tool.
//
// The def/use model mirrors the simulator's execution semantics
// (internal/gpu/exec.go) instruction for instruction: FP64 operands occupy
// register pairs, 64/128-bit memory accesses read or write two or four
// consecutive registers, CS2R writes a pair, P2R reads every predicate,
// and absent optional predicate operands default to true and are therefore
// not uses. Guarded instructions read their guard predicate and their
// writes are conditional, so they never kill liveness.
package sassan

import (
	"strings"

	"repro/internal/sass"
)

// RegSet is a bitset over the 256 general-purpose register names. RZ is
// representable but never a member: reads of RZ are the constant zero and
// writes to it are discarded, so it carries no dataflow.
type RegSet [4]uint64

// Add inserts a register.
func (s *RegSet) Add(r sass.RegID) { s[r>>6] |= 1 << (r & 63) }

// Has reports membership.
func (s *RegSet) Has(r sass.RegID) bool { return s[r>>6]&(1<<(r&63)) != 0 }

// Union merges o into s.
func (s *RegSet) Union(o RegSet) {
	s[0] |= o[0]
	s[1] |= o[1]
	s[2] |= o[2]
	s[3] |= o[3]
}

// Minus returns s with o's members removed.
func (s RegSet) Minus(o RegSet) RegSet {
	return RegSet{s[0] &^ o[0], s[1] &^ o[1], s[2] &^ o[2], s[3] &^ o[3]}
}

// Intersects reports whether the sets share a member.
func (s RegSet) Intersects(o RegSet) bool {
	return s[0]&o[0]|s[1]&o[1]|s[2]&o[2]|s[3]&o[3] != 0
}

// ContainedIn reports whether every member of s is in o.
func (s RegSet) ContainedIn(o RegSet) bool {
	return s[0]&^o[0]|s[1]&^o[1]|s[2]&^o[2]|s[3]&^o[3] == 0
}

// Empty reports whether the set has no members.
func (s RegSet) Empty() bool { return s[0]|s[1]|s[2]|s[3] == 0 }

// Regs lists the members in register order.
func (s RegSet) Regs() []sass.RegID {
	var out []sass.RegID
	for w := 0; w < 4; w++ {
		for b := 0; b < 64; b++ {
			if s[w]&(1<<b) != 0 {
				out = append(out, sass.RegID(w<<6|b))
			}
		}
	}
	return out
}

// String renders e.g. "{R0,R4,R5}".
func (s RegSet) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, r := range s.Regs() {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(r.String())
	}
	sb.WriteByte('}')
	return sb.String()
}

// PredSet is a bitset over the predicate registers P0..P6. PT is
// representable (bit 7) but never a member, for the same reason RZ is not
// in RegSet.
type PredSet uint8

// Add inserts a predicate.
func (s *PredSet) Add(p sass.PredID) { *s |= 1 << p }

// Has reports membership.
func (s PredSet) Has(p sass.PredID) bool { return s&(1<<p) != 0 }

// Minus returns s with o's members removed.
func (s PredSet) Minus(o PredSet) PredSet { return s &^ o }

// Intersects reports whether the sets share a member.
func (s PredSet) Intersects(o PredSet) bool { return s&o != 0 }

// ContainedIn reports whether every member of s is in o.
func (s PredSet) ContainedIn(o PredSet) bool { return s&^o == 0 }

// Empty reports whether the set has no members.
func (s PredSet) Empty() bool { return s == 0 }

// Preds lists the members in register order.
func (s PredSet) Preds() []sass.PredID {
	var out []sass.PredID
	for p := sass.PredID(0); p < sass.NumPreds; p++ {
		if s.Has(p) {
			out = append(out, p)
		}
	}
	return out
}

// String renders e.g. "{P0,P2}".
func (s PredSet) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, p := range s.Preds() {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.String())
	}
	sb.WriteByte('}')
	return sb.String()
}
