package sassan_test

import (
	"reflect"
	"testing"

	"repro/internal/sass"
	"repro/internal/sassan"
)

// FuzzShadowClasses feeds arbitrary kernel text through the shadow and
// equivalence-class passes and checks the invariants that must hold for
// every verify-clean input:
//
//   - Neither ShadowOf nor BuildClassTable panics.
//   - The table is deterministic: rebuilding it yields identical class
//     IDs and membership.
//   - Every class member independently re-derives the class's shadow hash
//     (Classable shadow, same ShadowID).
//   - Membership partitions the candidates: classed + unclassable =
//     candidates, with no site in both.
//   - A masked class's members are all provably masked shadows.
func FuzzShadowClasses(f *testing.F) {
	seeds := []string{
		".kernel k\nEXIT\n",
		".kernel dead\n    MOV R9, 0x1\n    MOV R10, 0x2\n    EXIT\n",
		".kernel chain\n    S2R R0, SR_TID.X\n    MOV R5, R0\n    IADD R6, R5, 0x1\n    MOV R7, R6\n    STG.32 [R1], R0\n    EXIT\n",
		".kernel store\n.param p\n    S2R R0, SR_TID.X\n    IADD R2, R0, 0x1\n    STG.32 [R1], R2\n    IADD R3, R0, 0x1\n    STG.32 [R1], R3\n    EXIT\n",
		".kernel ctl\n    S2R R0, SR_TID.X\n    ISETP.GE.AND P0, R0, 0x4, PT\n@P0 BRA skip\n    MOV R1, 0x1\nskip:\n    EXIT\n",
		".kernel loop\n    MOV R5, 0x0\ntop:\n    IADD R5, R5, 0x1\n    IADD R0, R0, 0x1\n    ISETP.GE.AND P1, R0, 0xa, PT\n@!P1 BRA top\n    STG.32 [R1], R0\n    EXIT\n",
		".kernel wide\n    LDG.128 R4, [R0]\n    DADD R8, R4, R6\n    STG.64 [R2], R8\n    RED.ADD.F32 [R2+0x8], R4\n    EXIT\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := sass.Assemble("fuzz", src)
		if err != nil {
			return
		}
		for _, k := range p.Kernels {
			a := sassan.Analyze(k)
			if sassan.HasErrors(a.Verify()) {
				continue // the classing contract only covers verify-clean kernels
			}
			t1 := a.BuildClassTable()
			t2 := sassan.Analyze(k).BuildClassTable()
			if len(t1.Classes) != len(t2.Classes) {
				t.Fatalf("class count not deterministic: %d vs %d", len(t1.Classes), len(t2.Classes))
			}
			classed := 0
			for ci, c := range t1.Classes {
				if c2 := t2.Classes[ci]; c.ID != c2.ID || !reflect.DeepEqual(c.Sites, c2.Sites) {
					t.Fatalf("class %d not deterministic: %s%v vs %s%v", ci, c.ID, c.Sites, c2.ID, c2.Sites)
				}
				classed += len(c.Sites)
				for _, s := range c.Sites {
					sh := a.ShadowOf(s)
					if !sh.Classable() {
						t.Fatalf("class member %d not classable", s)
					}
					if id := a.ShadowID(sh); id != c.ID {
						t.Fatalf("member %d hashes to %s, class is %s", s, id, c.ID)
					}
					if c.Masked && !sh.Masked() {
						t.Fatalf("member %d of masked class %s is not masked", s, c.ID)
					}
					if t1.ClassOf(s) != c {
						t.Fatalf("ClassOf(%d) does not return the owning class", s)
					}
				}
			}
			for _, u := range t1.Unclassable {
				if t1.ClassOf(u) != nil {
					t.Fatalf("site %d both classed and unclassable", u)
				}
			}
			if t1.Candidates != classed+len(t1.Unclassable) {
				t.Fatalf("candidates %d != classed %d + unclassable %d",
					t1.Candidates, classed, len(t1.Unclassable))
			}
		}
	})
}
