package sassan

import (
	"sort"

	"repro/internal/sass"
)

// CFG is the control-flow graph of one kernel, kept at two granularities:
// per-instruction successor lists (what the dataflow passes iterate over)
// and basic blocks (what reachability diagnostics report). Successor edges
// are conservative over-approximations of the executor's control transfers:
// a guarded branch keeps both the taken and fall-through edges, an indirect
// branch (BRX/JMX) may reach any instruction, and RET may resume at any
// point following a CALL.
type CFG struct {
	// N is the kernel's instruction count.
	N int
	// Succs lists each instruction's successor instruction indexes. The
	// sentinel value N marks execution falling past the last instruction
	// (a bad-PC trap at run time). Indirect transfers are not expanded
	// here; see Indirect.
	Succs [][]int
	// Indirect marks instructions whose successor set is every instruction
	// in the kernel (register-indirect branches).
	Indirect []bool
	// Blocks is the basic-block partition in instruction order.
	Blocks []Block
	// BlockOf maps each instruction index to its block index.
	BlockOf []int
	// Reachable marks instructions reachable from the kernel entry.
	Reachable []bool
	// BlockPreds lists each block's predecessor block indexes (deduplicated,
	// ascending) — the reverse of Block.Succs. Consumers that previously
	// rebuilt predecessor lists ad hoc (the verifier's forward passes, the
	// dominator computation) read this instead.
	BlockPreds [][]int
	// BlockRPO is the blocks' reverse postorder from the entry block: every
	// block appears before its successors except along back edges. Blocks
	// unreachable from the entry are appended after the reachable ordering,
	// in index order, so the slice is always a permutation of the block
	// indexes.
	BlockRPO []int
}

// Block is a maximal straight-line instruction sequence [Start, End).
type Block struct {
	Start, End int
	// Succs lists successor block indexes (deduplicated, ascending). An
	// off-the-end edge is not represented at block level.
	Succs []int
}

// branchTarget returns the resolved target of a direct control transfer,
// or -1 when the operand is missing or not a label.
func branchTarget(in *sass.Instr) int {
	if len(in.Src) == 0 || in.Src[0].Kind != sass.OpdLabel {
		return -1
	}
	return int(in.Src[0].Target)
}

// BuildCFG constructs the kernel's control-flow graph.
func BuildCFG(k *sass.Kernel) *CFG {
	n := len(k.Instrs)
	cfg := &CFG{
		N:         n,
		Succs:     make([][]int, n),
		Indirect:  make([]bool, n),
		BlockOf:   make([]int, n),
		Reachable: make([]bool, n),
	}

	// Return points: every instruction following a CALL is a potential
	// resume point for every RET.
	var retPoints []int
	for i := range k.Instrs {
		if k.Instrs[i].Op.Info().Sem == sass.SemCall && i+1 < n {
			retPoints = append(retPoints, i+1)
		}
	}

	for i := range k.Instrs {
		in := &k.Instrs[i]
		guarded := !in.Guard.True()
		var succs []int
		switch in.Op.Info().Sem {
		case sass.SemBra, sass.SemJmp:
			if t := branchTarget(in); t >= 0 && t < n {
				succs = append(succs, t)
			}
			if guarded {
				succs = append(succs, i+1)
			}
		case sass.SemBrx:
			cfg.Indirect[i] = true
		case sass.SemCall:
			if t := branchTarget(in); t >= 0 && t < n {
				succs = append(succs, t)
			}
			if guarded {
				succs = append(succs, i+1)
			}
		case sass.SemRet:
			succs = append(succs, retPoints...)
			if guarded {
				succs = append(succs, i+1)
			}
		case sass.SemExit, sass.SemKill:
			if guarded {
				succs = append(succs, i+1)
			}
		case sass.SemBpt:
			// An unguarded breakpoint always traps; a guarded one can fall
			// through when the guard suppresses it.
			if guarded {
				succs = append(succs, i+1)
			}
		case sass.SemNone:
			// Architecturally defined but not executable: traps if reached.
		default:
			succs = append(succs, i+1)
		}
		cfg.Succs[i] = succs
	}

	cfg.buildBlocks(k)
	cfg.markReachable()
	cfg.buildPredsAndRPO()
	return cfg
}

// buildPredsAndRPO derives the block-level predecessor lists and the
// reverse postorder from the block successor lists.
func (c *CFG) buildPredsAndRPO() {
	nb := len(c.Blocks)
	c.BlockPreds = make([][]int, nb)
	for b := range c.Blocks {
		for _, s := range c.Blocks[b].Succs {
			c.BlockPreds[s] = append(c.BlockPreds[s], b)
		}
	}
	for b := range c.BlockPreds {
		sort.Ints(c.BlockPreds[b])
	}
	if nb == 0 {
		return
	}
	// Iterative postorder DFS from the entry block, reversed.
	visited := make([]bool, nb)
	post := make([]int, 0, nb)
	type frame struct{ block, next int }
	stack := []frame{{block: 0}}
	visited[0] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		succs := c.Blocks[f.block].Succs
		if f.next < len(succs) {
			s := succs[f.next]
			f.next++
			if !visited[s] {
				visited[s] = true
				stack = append(stack, frame{block: s})
			}
			continue
		}
		post = append(post, f.block)
		stack = stack[:len(stack)-1]
	}
	c.BlockRPO = make([]int, 0, nb)
	for i := len(post) - 1; i >= 0; i-- {
		c.BlockRPO = append(c.BlockRPO, post[i])
	}
	for b := 0; b < nb; b++ {
		if !visited[b] {
			c.BlockRPO = append(c.BlockRPO, b)
		}
	}
}

// buildBlocks partitions the instructions into basic blocks.
func (c *CFG) buildBlocks(k *sass.Kernel) {
	n := c.N
	if n == 0 {
		return
	}
	leader := make([]bool, n)
	leader[0] = true
	for i := range k.Instrs {
		switch k.Instrs[i].Op.Info().Sem {
		case sass.SemBra, sass.SemJmp, sass.SemBrx, sass.SemCall,
			sass.SemRet, sass.SemExit, sass.SemKill, sass.SemBpt, sass.SemNone:
			// A control transfer ends its block, and its possible targets
			// start theirs. Ordinary fall-through edges do not split blocks.
			if i+1 < n {
				leader[i+1] = true
			}
			for _, s := range c.Succs[i] {
				if s < n {
					leader[s] = true
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		if leader[i] {
			c.Blocks = append(c.Blocks, Block{Start: i})
		}
		c.BlockOf[i] = len(c.Blocks) - 1
	}
	for bi := range c.Blocks {
		if bi+1 < len(c.Blocks) {
			c.Blocks[bi].End = c.Blocks[bi+1].Start
		} else {
			c.Blocks[bi].End = n
		}
		last := c.Blocks[bi].End - 1
		set := make(map[int]bool)
		if c.Indirect[last] {
			for sb := range c.Blocks {
				set[sb] = true
			}
		}
		for _, s := range c.Succs[last] {
			if s < n {
				set[c.BlockOf[s]] = true
			}
		}
		for sb := range set {
			c.Blocks[bi].Succs = append(c.Blocks[bi].Succs, sb)
		}
		sort.Ints(c.Blocks[bi].Succs)
	}
}

// markReachable flood-fills instruction reachability from the entry.
func (c *CFG) markReachable() {
	if c.N == 0 {
		return
	}
	work := []int{0}
	c.Reachable[0] = true
	push := func(s int) {
		if s < c.N && !c.Reachable[s] {
			c.Reachable[s] = true
			work = append(work, s)
		}
	}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		if c.Indirect[i] {
			for s := 0; s < c.N; s++ {
				push(s)
			}
			continue
		}
		for _, s := range c.Succs[i] {
			push(s)
		}
	}
}

// FallsOffEnd reports whether a reachable instruction can transfer control
// past the last instruction (the executor's bad-PC trap), returning the
// first such instruction index.
func (c *CFG) FallsOffEnd() (int, bool) {
	for i := 0; i < c.N; i++ {
		if !c.Reachable[i] {
			continue
		}
		for _, s := range c.Succs[i] {
			if s == c.N {
				return i, true
			}
		}
	}
	return 0, false
}
