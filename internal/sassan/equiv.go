package sassan

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
)

// Injection-site equivalence classes. Two sites whose fault-propagation
// shadows canonicalize to the same content hash — same site opcode and
// guard shape, same corrupt-target shape, same event sequence of
// (distance, opcode, role) — share dynamic classification shape, so a
// campaign can run one representative and answer for every member. The ID
// is a pure content hash of that canonical form: the analysis is
// deterministic, so every shard of a distributed campaign derives the
// identical ID for the identical class with no coordination. IDs are
// kernel-local — a campaign groups by (kernel, class ID).

// Class is one equivalence class of injection sites within a kernel.
type Class struct {
	// ID is the canonical content hash ("c" + 16 hex digits).
	ID string
	// Kind is the members' common shadow kind.
	Kind ShadowKind
	// Masked reports a provably-masked class (Shadow.Masked): every
	// injection in it is Masked by construction, the generalization of
	// the dead-destination prune.
	Masked bool
	// Sites lists the member instruction indexes, ascending. The lowest
	// member is the class's canonical representative site.
	Sites []int
	// Shadow is the lowest member's shadow (all members share its shape).
	Shadow *Shadow
}

// Rep returns the canonical representative site (the lowest member).
func (c *Class) Rep() int { return c.Sites[0] }

// ClassTable holds one kernel's classes and the per-site membership map.
type ClassTable struct {
	// Kernel is the kernel name.
	Kernel string
	// Classes is sorted by lowest member site.
	Classes []*Class
	// Candidates counts sites with corruptible destinations (the
	// injectable sites the pass examined).
	Candidates int
	// Unclassable lists candidate sites whose shadow disqualified them
	// (control escalation, cut closure, opaque reader, dirty sink),
	// ascending. These always run individually.
	Unclassable []int

	bySite map[int]*Class
}

// ClassOf returns the class containing site, or nil if the site is
// unclassable or has no corruptible destinations.
func (t *ClassTable) ClassOf(site int) *Class { return t.bySite[site] }

// ShadowID canonicalizes a shadow into its class ID. Sites with equal IDs
// within a kernel are class members of each other.
func (a *Analysis) ShadowID(sh *Shadow) string {
	in := &a.Kernel.Instrs[sh.Site]
	h := sha256.New()
	var buf [8]byte
	putU16 := func(v uint16) {
		binary.BigEndian.PutUint16(buf[:2], v)
		h.Write(buf[:2])
	}
	putU32 := func(v uint32) {
		binary.BigEndian.PutUint32(buf[:4], v)
		h.Write(buf[:4])
	}
	putU16(uint16(in.Op))
	flags := byte(0)
	if !in.Guard.True() {
		flags |= 1
	}
	if sh.Masked() {
		flags |= 2
	}
	h.Write([]byte{byte(sh.Kind), flags,
		byte(len(sh.TargetGP.Regs())), byte(len(sh.TargetPR.Preds()))})
	for _, ev := range sh.Events {
		putU32(uint32(ev.Delta))
		putU16(uint16(ev.Op))
		h.Write([]byte{byte(ev.Role)})
	}
	sum := h.Sum(nil)
	return "c" + hex.EncodeToString(sum[:8])
}

// BuildClassTable groups the kernel's classable injection sites into
// equivalence classes. The result is deterministic: classes are keyed by
// content hash and listed by lowest member site.
func (a *Analysis) BuildClassTable() *ClassTable {
	t := &ClassTable{Kernel: a.Kernel.Name, bySite: make(map[int]*Class)}
	byID := make(map[string]*Class)
	for i := range a.Kernel.Instrs {
		gp, pr := CorruptTargets(&a.Kernel.Instrs[i])
		if gp.Empty() && pr.Empty() {
			continue
		}
		t.Candidates++
		sh := a.ShadowOf(i)
		if !sh.Classable() {
			t.Unclassable = append(t.Unclassable, i)
			continue
		}
		id := a.ShadowID(sh)
		c := byID[id]
		if c == nil {
			c = &Class{ID: id, Kind: sh.Kind, Masked: sh.Masked(), Shadow: sh}
			byID[id] = c
			t.Classes = append(t.Classes, c)
		}
		c.Sites = append(c.Sites, i)
		t.bySite[i] = c
	}
	sort.Slice(t.Classes, func(x, y int) bool {
		return t.Classes[x].Sites[0] < t.Classes[y].Sites[0]
	})
	return t
}
