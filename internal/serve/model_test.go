package serve_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/serve"
)

// TestModelSpecValidation: pre-v3 schemas must reject fault-model configs, and
// v3 specs are vetted server-side — unknown models, malformed parameters, and
// acceleration combinations the model's capabilities do not cover all fail at
// submission, before any worker sees a lease.
func TestModelSpecValidation(t *testing.T) {
	base := campaign.TransientCampaignConfig{Injections: 10, Seed: 1}
	model := base
	model.Model = "stuck"
	cases := []struct {
		name string
		spec serve.CampaignSpec
		want string
	}{
		{"v1-with-model", serve.CampaignSpec{Schema: serve.JobSchema, Workload: testWorkload, Config: model},
			serve.JobSchemaV3},
		{"implicit-v1-with-model", serve.CampaignSpec{Workload: testWorkload, Config: model},
			serve.JobSchemaV3},
		{"unknown-model", serve.CampaignSpec{Schema: serve.JobSchemaV3, Workload: testWorkload,
			Config: withModel(base, "nosuch", "")}, "unknown model"},
		{"bad-param", serve.CampaignSpec{Schema: serve.JobSchemaV3, Workload: testWorkload,
			Config: withModel(base, "stuck", "value=7")}, "stuck value"},
		{"prune-unsound", serve.CampaignSpec{Schema: serve.JobSchemaV3, Workload: testWorkload,
			Config: withPrune(withModel(base, "stuck", ""))}, "does not support pruning"},
		{"unknown-schema", serve.CampaignSpec{Schema: "nvbitfi.job/v99", Workload: testWorkload, Config: base},
			"unsupported job schema"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error mentioning %q", err, tc.want)
			}
		})
	}
	// A v3 spec with a valid model and no unsound accelerations passes.
	ok := serve.CampaignSpec{Schema: serve.JobSchemaV3, Workload: testWorkload,
		Config: withModel(base, "stuck", "value=0,bit=17")}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid v3 spec refused: %v", err)
	}
}

func withModel(cfg campaign.TransientCampaignConfig, model, param string) campaign.TransientCampaignConfig {
	cfg.Model = model
	cfg.ModelParam = param
	return cfg
}

func withPrune(cfg campaign.TransientCampaignConfig) campaign.TransientCampaignConfig {
	cfg.Prune = true
	return cfg
}

// TestModelSchemaNormalization: Submit normalizes the stored job to the lowest
// schema that carries its spec — an explicit "transient" model name decays to
// the default and the job stays on v1 bytes, while a real model pins v3.
func TestModelSchemaNormalization(t *testing.T) {
	coord, err := serve.NewCoordinator(serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := coord.Submit(serve.CampaignSpec{
		Schema:   serve.JobSchemaV3,
		Workload: testWorkload,
		Config:   withModel(campaign.TransientCampaignConfig{Injections: 5, Seed: 1}, "transient", ""),
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Schema != serve.JobSchema {
		t.Fatalf("explicit-transient job kept schema %q, want %q", st.Schema, serve.JobSchema)
	}
	if st.Config.Model != "" {
		t.Fatalf("explicit-transient job kept model %q in its config", st.Config.Model)
	}

	st, err = coord.Submit(serve.CampaignSpec{
		Schema:   serve.JobSchemaV3,
		Workload: testWorkload,
		Config:   withModel(campaign.TransientCampaignConfig{Injections: 5, Seed: 1}, "opsub", ""),
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Schema != serve.JobSchemaV3 {
		t.Fatalf("model job schema = %q, want %q", st.Schema, serve.JobSchemaV3)
	}
	if st.Config.Model != "opsub" {
		t.Fatalf("model job config model = %q", st.Config.Model)
	}
}

// TestModelServiceTallyIdentity: for every fault model, a 200-injection
// campaign submitted over HTTP and executed by two remote workers produces a
// tally byte-identical to the in-process runner on the same seed. The model
// rides the job spec; workers reconstruct its injectors from the grant alone.
func TestModelServiceTallyIdentity(t *testing.T) {
	cases := []struct {
		name string
		cfg  campaign.TransientCampaignConfig
	}{
		{"stuck", campaign.TransientCampaignConfig{Injections: 200, Seed: 42, Model: "stuck"}},
		{"stuck-gated", campaign.TransientCampaignConfig{Injections: 200, Seed: 42, Model: "stuck", ModelParam: "value=0,p=0.5"}},
		{"opsub", campaign.TransientCampaignConfig{Injections: 200, Seed: 42, Model: "opsub"}},
		{"predflip", campaign.TransientCampaignConfig{Injections: 200, Seed: 42, Model: "predflip"}},
		{"memfault", campaign.TransientCampaignConfig{Injections: 200, Seed: 42, Model: "memfault"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := inProcessTally(t, tc.cfg)

			coord, err := serve.NewCoordinator(serve.Options{})
			if err != nil {
				t.Fatal(err)
			}
			srv := httptest.NewServer(serve.NewServer(coord))
			defer srv.Close()
			client := serve.NewClient(srv.URL)

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var wg sync.WaitGroup
			for i := 0; i < 2; i++ {
				w := &serve.Worker{Backend: serve.NewClient(srv.URL), Runner: campaign.Runner{},
					PollInterval: 20 * time.Millisecond, Logf: t.Logf}
				wg.Add(1)
				go func() {
					defer wg.Done()
					w.Run(ctx)
				}()
			}

			st, err := client.Submit(serve.CampaignSpec{
				Schema: serve.JobSchemaV3, Workload: testWorkload, Config: tc.cfg,
			})
			if err != nil {
				t.Fatal(err)
			}
			final, err := client.Watch(ctx, st.ID, 0, func(serve.Event) {})
			if err != nil {
				t.Fatal(err)
			}
			cancel()
			wg.Wait()

			if final.State != serve.JobDone {
				t.Fatalf("job settled as %q: %+v", final.State, final)
			}
			got := mustJSON(t, final.Tally)
			if !bytes.Equal(got, want) {
				t.Fatalf("service tally differs from in-process tally:\nservice:    %s\nin-process: %s", got, want)
			}
		})
	}
}
