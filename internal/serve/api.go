package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// HTTP API (all JSON):
//
//	POST /api/v1/jobs                     submit a CampaignSpec → JobStatus
//	GET  /api/v1/jobs                     list jobs
//	GET  /api/v1/jobs/{id}                one job, with per-shard detail
//	GET  /api/v1/jobs/{id}/events?cursor=N
//	     long-poll: blocks until events with seq > N exist, then returns
//	     them; with Accept: text/event-stream, streams events as SSE
//	     instead, each `data:` line one Event, until the client leaves.
//	POST /api/v1/workers                  register → {worker_id}
//	POST /api/v1/lease                    {worker_id} → LeaseGrant, or 204
//	POST /api/v1/leases/{lease}/heartbeat {worker_id}
//	POST /api/v1/leases/{lease}/complete  {worker_id, result}
//	POST /api/v1/leases/{lease}/fail      {worker_id, reason}
//
// A lost lease answers 409 Conflict; Client turns that back into
// ErrLeaseLost so remote workers behave exactly like in-process ones.

// longPollTimeout bounds how long an events request may block before
// returning an empty batch (clients just re-poll with the same cursor).
const longPollTimeout = 25 * time.Second

// NewServer wraps a coordinator in its HTTP API.
func NewServer(c *Coordinator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", func(rw http.ResponseWriter, req *http.Request) {
		var spec CampaignSpec
		if !readJSON(rw, req, &spec) {
			return
		}
		st, err := c.Submit(spec)
		if err != nil {
			httpError(rw, http.StatusBadRequest, err)
			return
		}
		writeJSON(rw, http.StatusCreated, st)
	})
	mux.HandleFunc("GET /api/v1/jobs", func(rw http.ResponseWriter, req *http.Request) {
		writeJSON(rw, http.StatusOK, c.Jobs())
	})
	mux.HandleFunc("GET /api/v1/jobs/{id}", func(rw http.ResponseWriter, req *http.Request) {
		st, ok := c.Job(req.PathValue("id"))
		if !ok {
			httpError(rw, http.StatusNotFound, fmt.Errorf("serve: unknown job %q", req.PathValue("id")))
			return
		}
		writeJSON(rw, http.StatusOK, st)
	})
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", func(rw http.ResponseWriter, req *http.Request) {
		handleEvents(c, rw, req)
	})
	mux.HandleFunc("POST /api/v1/workers", func(rw http.ResponseWriter, req *http.Request) {
		var info WorkerInfo
		if !readJSON(rw, req, &info) {
			return
		}
		id, err := c.Register(info)
		if err != nil {
			httpError(rw, http.StatusBadRequest, err)
			return
		}
		writeJSON(rw, http.StatusOK, map[string]string{"worker_id": id})
	})
	mux.HandleFunc("POST /api/v1/lease", func(rw http.ResponseWriter, req *http.Request) {
		var body struct {
			WorkerID string `json:"worker_id"`
		}
		if !readJSON(rw, req, &body) {
			return
		}
		grant, err := c.Lease(body.WorkerID)
		if err != nil {
			httpError(rw, http.StatusBadRequest, err)
			return
		}
		if grant == nil {
			rw.WriteHeader(http.StatusNoContent)
			return
		}
		writeJSON(rw, http.StatusOK, grant)
	})
	mux.HandleFunc("POST /api/v1/leases/{lease}/heartbeat", func(rw http.ResponseWriter, req *http.Request) {
		var body struct {
			WorkerID string `json:"worker_id"`
		}
		if !readJSON(rw, req, &body) {
			return
		}
		leaseReply(rw, c.Heartbeat(body.WorkerID, req.PathValue("lease")))
	})
	mux.HandleFunc("POST /api/v1/leases/{lease}/complete", func(rw http.ResponseWriter, req *http.Request) {
		var body struct {
			WorkerID string      `json:"worker_id"`
			Result   ShardResult `json:"result"`
		}
		if !readJSON(rw, req, &body) {
			return
		}
		leaseReply(rw, c.Complete(body.WorkerID, req.PathValue("lease"), body.Result))
	})
	mux.HandleFunc("POST /api/v1/leases/{lease}/fail", func(rw http.ResponseWriter, req *http.Request) {
		var body struct {
			WorkerID string `json:"worker_id"`
			Reason   string `json:"reason"`
		}
		if !readJSON(rw, req, &body) {
			return
		}
		leaseReply(rw, c.Fail(body.WorkerID, req.PathValue("lease"), body.Reason))
	})
	return mux
}

// handleEvents serves one job's progress stream, long-poll or SSE.
func handleEvents(c *Coordinator, rw http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	cursor := 0
	if s := req.URL.Query().Get("cursor"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			httpError(rw, http.StatusBadRequest, fmt.Errorf("serve: bad cursor %q", s))
			return
		}
		cursor = n
	}
	if strings.Contains(req.Header.Get("Accept"), "text/event-stream") {
		serveSSE(c, rw, req, id, cursor)
		return
	}
	deadline := time.NewTimer(longPollTimeout)
	defer deadline.Stop()
	for {
		evs, wake, err := c.EventsAfter(id, cursor)
		if err != nil {
			httpError(rw, http.StatusNotFound, err)
			return
		}
		if len(evs) > 0 {
			writeJSON(rw, http.StatusOK, evs)
			return
		}
		select {
		case <-wake:
		case <-deadline.C:
			writeJSON(rw, http.StatusOK, []Event{})
			return
		case <-req.Context().Done():
			return
		}
	}
}

// serveSSE streams a job's events as server-sent events until the client
// disconnects. Each event is one `data:` line; the id field carries the seq
// so clients can resume with ?cursor=.
func serveSSE(c *Coordinator, rw http.ResponseWriter, req *http.Request, id string, cursor int) {
	fl, ok := rw.(http.Flusher)
	if !ok {
		httpError(rw, http.StatusNotAcceptable, errors.New("serve: streaming unsupported by this connection"))
		return
	}
	rw.Header().Set("Content-Type", "text/event-stream")
	rw.Header().Set("Cache-Control", "no-cache")
	rw.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		evs, wake, err := c.EventsAfter(id, cursor)
		if err != nil {
			return
		}
		for _, ev := range evs {
			b, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(rw, "id: %d\ndata: %s\n\n", ev.Seq, b); err != nil {
				return
			}
			cursor = ev.Seq
		}
		if len(evs) > 0 {
			fl.Flush()
		}
		select {
		case <-wake:
		case <-req.Context().Done():
			return
		}
	}
}

// leaseReply maps lease-scoped errors onto status codes: lost leases are
// 409 so workers can tell "abandon this shard" from "request was bad".
func leaseReply(rw http.ResponseWriter, err error) {
	switch {
	case err == nil:
		rw.WriteHeader(http.StatusNoContent)
	case errors.Is(err, ErrLeaseLost):
		httpError(rw, http.StatusConflict, err)
	default:
		httpError(rw, http.StatusBadRequest, err)
	}
}

func readJSON(rw http.ResponseWriter, req *http.Request, v any) bool {
	dec := json.NewDecoder(req.Body)
	if err := dec.Decode(v); err != nil {
		httpError(rw, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
		return false
	}
	return true
}

func writeJSON(rw http.ResponseWriter, code int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(code)
	_ = json.NewEncoder(rw).Encode(v)
}

func httpError(rw http.ResponseWriter, code int, err error) {
	writeJSON(rw, code, map[string]string{"error": err.Error()})
}
