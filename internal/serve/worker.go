package serve

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
)

// coreProfileMode is the profiling mode every worker uses to rebuild a
// job's fault-site population. It must be a fixed, exact mode: approximate
// profiles could differ between workers and change fault selection.
const coreProfileMode = core.Exact

// Worker leases shards from a Backend and runs them with campaign.Runner —
// the same engine, pruner, and checkpoint machinery as the in-process
// campaign, so a shard's results do not depend on where it ran. Per-job
// setup (golden run, profile, pruner, recorded trace) is built once on
// first lease and reused for every later shard of that job.
type Worker struct {
	Backend Backend
	// Runner is the worker-side experiment engine. Its determinism knobs
	// (family, SM count, budget factor) must match the coordinator's; the
	// golden digest check catches divergence.
	Runner campaign.Runner
	// Name labels the worker in leases and events.
	Name string
	// PollInterval is how long to idle when no shard is leasable
	// (default 200ms).
	PollInterval time.Duration
	// HeartbeatFraction sets the heartbeat period as a fraction of the
	// lease TTL (default 1/3).
	HeartbeatFraction float64
	// Logf, when set, receives worker progress lines.
	Logf func(format string, args ...any)

	mu    sync.Mutex
	plans map[string]*jobPlan
}

// jobPlan caches one job's worker-side campaign state.
type jobPlan struct {
	once   sync.Once
	plan   *campaign.ShardPlan
	digest string
	err    error
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// Run registers the worker and processes shards until ctx is cancelled or
// the backend becomes unreachable. Cancelling ctx aborts the in-flight
// shard promptly: the context threads through campaign.Runner into the
// device interpreter, so even a mid-kernel experiment stops within its
// cancellation poll stride.
func (w *Worker) Run(ctx context.Context) error {
	if w.PollInterval <= 0 {
		w.PollInterval = 200 * time.Millisecond
	}
	if w.HeartbeatFraction <= 0 || w.HeartbeatFraction >= 1 {
		w.HeartbeatFraction = 1.0 / 3
	}
	id, err := w.Backend.Register(WorkerInfo{Name: w.Name})
	if err != nil {
		return fmt.Errorf("serve: worker registration: %w", err)
	}
	w.logf("worker %s registered", id)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		grant, err := w.Backend.Lease(id)
		if err != nil {
			return fmt.Errorf("serve: lease: %w", err)
		}
		if grant == nil {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(w.PollInterval):
			}
			continue
		}
		w.runShard(ctx, id, grant)
	}
}

// plan returns the cached campaign state for a grant's job, building it on
// first use. The build itself verifies the golden digest: a worker whose
// simulator configuration diverges from the coordinator's must not run any
// experiments, because its classifications would be against the wrong
// reference.
func (w *Worker) plan(grant *LeaseGrant) (*campaign.ShardPlan, string, error) {
	w.mu.Lock()
	if w.plans == nil {
		w.plans = make(map[string]*jobPlan)
	}
	jp := w.plans[grant.Job]
	if jp == nil {
		jp = &jobPlan{}
		w.plans[grant.Job] = jp
	}
	w.mu.Unlock()
	jp.once.Do(func() {
		wl, err := ResolveWorkload(grant.Spec.Workload)
		if err != nil {
			jp.err = err
			return
		}
		golden, err := w.Runner.Golden(wl)
		if err != nil {
			jp.err = fmt.Errorf("serve: worker golden run: %w", err)
			return
		}
		jp.digest = golden.Output.Digest()
		if jp.digest != grant.GoldenDigest {
			jp.err = fmt.Errorf("serve: golden digest mismatch: worker computed %.12s, coordinator expects %.12s",
				jp.digest, grant.GoldenDigest)
			return
		}
		profile, _, err := w.Runner.Profile(wl, coreProfileMode)
		if err != nil {
			jp.err = fmt.Errorf("serve: worker profiling run: %w", err)
			return
		}
		jp.plan, jp.err = campaign.NewShardPlan(w.Runner, wl, golden, profile, grant.Spec.Config)
	})
	return jp.plan, jp.digest, jp.err
}

// runShard executes one leased shard under a heartbeat loop and reports the
// outcome. A lost lease (expiry beat the heartbeat, or the coordinator gave
// the shard away) cancels the run and reports nothing — the result would
// double-count.
func (w *Worker) runShard(ctx context.Context, workerID string, grant *LeaseGrant) {
	plan, digest, err := w.plan(grant)
	if err != nil {
		w.logf("worker %s: job %s shard %d unrunnable: %v", workerID, grant.Job, grant.Shard, err)
		_ = w.Backend.Fail(workerID, grant.LeaseID, err.Error())
		return
	}

	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var lost bool
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	period := time.Duration(w.HeartbeatFraction * float64(grant.TTLSeconds) * float64(time.Second))
	if period <= 0 {
		period = time.Second
	}
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-sctx.Done():
				return
			case <-t.C:
				if err := w.Backend.Heartbeat(workerID, grant.LeaseID); err != nil {
					if errors.Is(err, ErrLeaseLost) {
						lost = true
						cancel()
						return
					}
					w.logf("worker %s: heartbeat: %v", workerID, err)
				}
			}
		}
	}()

	start := time.Now()
	results, runErr := plan.RunShard(sctx, grant.Shard)
	cancel()
	hbWG.Wait()

	if lost {
		w.logf("worker %s: job %s shard %d lease lost after %v; dropping result",
			workerID, grant.Job, grant.Shard, time.Since(start).Round(time.Millisecond))
		return
	}
	if runErr != nil {
		w.logf("worker %s: job %s shard %d failed: %v", workerID, grant.Job, grant.Shard, runErr)
		if err := w.Backend.Fail(workerID, grant.LeaseID, runErr.Error()); err != nil && !errors.Is(err, ErrLeaseLost) {
			w.logf("worker %s: fail report: %v", workerID, err)
		}
		return
	}
	res := ShardResult{Tally: campaign.TallyRuns(results), GoldenDigest: digest}
	if err := w.Backend.Complete(workerID, grant.LeaseID, res); err != nil {
		if !errors.Is(err, ErrLeaseLost) {
			w.logf("worker %s: complete report: %v", workerID, err)
		}
		return
	}
	w.logf("worker %s: job %s shard %d done in %v (%s)",
		workerID, grant.Job, grant.Shard, time.Since(start).Round(time.Millisecond), res.Tally)
}

// Pool runs n in-process workers against a backend until ctx cancels —
// `nvbitfi serve -workers N` and the tests use it to colocate compute with
// the coordinator.
func Pool(ctx context.Context, backend Backend, r campaign.Runner, n int, logf func(string, ...any)) *sync.WaitGroup {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := &Worker{Backend: backend, Runner: r, Name: fmt.Sprintf("local-%d", i), Logf: logf}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
				log.Printf("serve: worker exited: %v", err)
			}
		}()
	}
	return &wg
}
