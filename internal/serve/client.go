package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client speaks the coordinator's HTTP API. It implements Backend, so a
// remote worker is just Worker{Backend: NewClient(url)} — the same code
// path as an in-process pool, with HTTP in the middle.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient builds a client for a coordinator at base (e.g.
// "http://127.0.0.1:8077").
func NewClient(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
}

// apiError is the server's JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

// do posts (or gets, when in is nil and method says so) JSON and decodes
// the JSON response into out when non-nil.
func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusConflict:
		return ErrLeaseLost
	case resp.StatusCode == http.StatusNoContent:
		return nil
	case resp.StatusCode >= 400:
		var ae apiError
		if json.NewDecoder(resp.Body).Decode(&ae) == nil && ae.Error != "" {
			return fmt.Errorf("serve: %s %s: %s", method, path, ae.Error)
		}
		return fmt.Errorf("serve: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a campaign spec and returns the created job.
func (c *Client) Submit(spec CampaignSpec) (*JobStatus, error) {
	var st JobStatus
	if err := c.do("POST", "/api/v1/jobs", spec, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Job fetches one job's status with per-shard detail.
func (c *Client) Job(id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do("GET", "/api/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Jobs lists all jobs.
func (c *Client) Jobs() ([]*JobStatus, error) {
	var out []*JobStatus
	if err := c.do("GET", "/api/v1/jobs", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Events long-polls one batch of events with seq > cursor. An empty batch
// means the poll timed out server-side; call again with the same cursor.
func (c *Client) Events(ctx context.Context, id string, cursor int) ([]Event, error) {
	req, err := http.NewRequestWithContext(ctx, "GET",
		fmt.Sprintf("%s/api/v1/jobs/%s/events?cursor=%d", c.base, id, cursor), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var ae apiError
		if json.NewDecoder(resp.Body).Decode(&ae) == nil && ae.Error != "" {
			return nil, fmt.Errorf("serve: events: %s", ae.Error)
		}
		return nil, fmt.Errorf("serve: events: HTTP %d", resp.StatusCode)
	}
	var evs []Event
	if err := json.NewDecoder(resp.Body).Decode(&evs); err != nil {
		return nil, err
	}
	return evs, nil
}

// Watch follows a job's event stream from cursor, invoking fn per event,
// until the job settles, ctx cancels, or the stream errors. It returns the
// job's final status.
func (c *Client) Watch(ctx context.Context, id string, cursor int, fn func(Event)) (*JobStatus, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		evs, err := c.Events(ctx, id, cursor)
		if err != nil {
			return nil, err
		}
		settled := false
		for _, ev := range evs {
			cursor = ev.Seq
			if fn != nil {
				fn(ev)
			}
			if ev.Type == "job" && Settled(ev.State) {
				settled = true
			}
		}
		if settled {
			return c.Job(id)
		}
	}
}

// WaitJob blocks until the job settles, polling its status — the
// event-free variant Watch callers don't need.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (*JobStatus, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	for {
		st, err := c.Job(id)
		if err != nil {
			return nil, err
		}
		if Settled(st.State) {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Backend implementation for remote workers.

// Register implements Backend.
func (c *Client) Register(info WorkerInfo) (string, error) {
	var out struct {
		WorkerID string `json:"worker_id"`
	}
	if err := c.do("POST", "/api/v1/workers", info, &out); err != nil {
		return "", err
	}
	return out.WorkerID, nil
}

// Lease implements Backend; a 204 becomes (nil, nil) — nothing runnable.
func (c *Client) Lease(workerID string) (*LeaseGrant, error) {
	body := map[string]string{"worker_id": workerID}
	req, err := http.NewRequest("POST", c.base+"/api/v1/lease", jsonBody(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNoContent:
		return nil, nil
	case resp.StatusCode >= 400:
		var ae apiError
		if json.NewDecoder(resp.Body).Decode(&ae) == nil && ae.Error != "" {
			return nil, fmt.Errorf("serve: lease: %s", ae.Error)
		}
		return nil, fmt.Errorf("serve: lease: HTTP %d", resp.StatusCode)
	}
	var grant LeaseGrant
	if err := json.NewDecoder(resp.Body).Decode(&grant); err != nil {
		return nil, err
	}
	return &grant, nil
}

// Heartbeat implements Backend.
func (c *Client) Heartbeat(workerID, leaseID string) error {
	return c.do("POST", "/api/v1/leases/"+leaseID+"/heartbeat",
		map[string]string{"worker_id": workerID}, nil)
}

// Complete implements Backend.
func (c *Client) Complete(workerID, leaseID string, res ShardResult) error {
	return c.do("POST", "/api/v1/leases/"+leaseID+"/complete", struct {
		WorkerID string      `json:"worker_id"`
		Result   ShardResult `json:"result"`
	}{workerID, res}, nil)
}

// Fail implements Backend.
func (c *Client) Fail(workerID, leaseID, reason string) error {
	return c.do("POST", "/api/v1/leases/"+leaseID+"/fail", struct {
		WorkerID string `json:"worker_id"`
		Reason   string `json:"reason"`
	}{workerID, reason}, nil)
}

func jsonBody(v any) io.Reader {
	b, _ := json.Marshal(v)
	return bytes.NewReader(b)
}
