package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/specaccel"
)

// adaptiveCfg is the adaptive campaign the serve tests distribute: a budget
// of 300 selections with a target loose enough that the estimate converges
// well inside it. The workload and seed are fixed, the simulator is
// deterministic, so the stopping shard is a constant of the test.
func adaptiveCfg() campaign.TransientCampaignConfig {
	return campaign.TransientCampaignConfig{Injections: 300, Seed: 46, TargetCI: 0.10}
}

// inProcessAdaptive runs the adaptive campaign single-process and returns
// the full result plus its tally bytes — the reference the distributed runs
// must reproduce exactly.
func inProcessAdaptive(t *testing.T, cfg campaign.TransientCampaignConfig) (*campaign.CampaignResult, []byte) {
	t.Helper()
	w, err := specaccel.ByName(testWorkload)
	if err != nil {
		t.Fatal(err)
	}
	r := campaign.Runner{}
	golden, err := r.Golden(w)
	if err != nil {
		t.Fatal(err)
	}
	profile, _, err := r.Profile(w, core.Exact)
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res.Tally)
	if err != nil {
		t.Fatal(err)
	}
	return res, b
}

// TestAdaptiveServiceIdentity is the distribution-invariance proof for the
// stopping rule: an adaptive job executed by two HTTP workers must stop at
// exactly the shard the in-process runner stops at, skip the same trailing
// shards, and settle with a byte-identical tally. The decision is a pure
// function of (seed, completed-shard prefix), so how the shards were spread
// over workers cannot move it.
func TestAdaptiveServiceIdentity(t *testing.T) {
	cfg := adaptiveCfg()
	inproc, want := inProcessAdaptive(t, cfg)
	if inproc.Adaptive == nil || !inproc.Adaptive.Converged {
		t.Fatalf("reference run did not converge: %+v", inproc.Adaptive)
	}
	if last := cfg.NumShards() - 1; inproc.Adaptive.StopShard >= last {
		t.Fatalf("reference run stopped only at the final shard %d; loosen the test target", last)
	}

	coord, err := serve.NewCoordinator(serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(serve.NewServer(coord))
	defer srv.Close()
	client := serve.NewClient(srv.URL)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w := &serve.Worker{Backend: serve.NewClient(srv.URL), Runner: campaign.Runner{},
			PollInterval: 20 * time.Millisecond, Logf: t.Logf}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
	}

	st, err := client.Submit(serve.CampaignSpec{
		Schema: serve.JobSchemaV2, Workload: testWorkload, Config: cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Schema != serve.JobSchemaV2 {
		t.Fatalf("submitted job reports schema %q, want %q", st.Schema, serve.JobSchemaV2)
	}
	if len(st.Strata) == 0 {
		t.Fatal("adaptive job status carries no stratum composition")
	}

	var sawConverged bool
	final, err := client.Watch(ctx, st.ID, 0, func(ev serve.Event) {
		if ev.Type == "job" && ev.State == serve.EventConverged {
			sawConverged = true
			if ev.Shard != inproc.Adaptive.StopShard {
				t.Errorf("converged event at shard %d, in-process stopped at %d", ev.Shard, inproc.Adaptive.StopShard)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	wg.Wait()

	if final.State != serve.JobDone {
		t.Fatalf("job settled as %q: %+v", final.State, final)
	}
	if !sawConverged {
		t.Fatal("no converged event reached the watcher")
	}
	if !final.Converged || final.StopShard != inproc.Adaptive.StopShard {
		t.Fatalf("job converged=%v at shard %d, in-process stopped at %d",
			final.Converged, final.StopShard, inproc.Adaptive.StopShard)
	}
	if wantSkipped := cfg.NumShards() - 1 - final.StopShard; final.Skipped != wantSkipped {
		t.Fatalf("job skipped %d shards, want %d", final.Skipped, wantSkipped)
	}
	if final.AchievedCI <= 0 || final.AchievedCI > cfg.TargetCI {
		t.Fatalf("achieved CI %v outside (0, %v]", final.AchievedCI, cfg.TargetCI)
	}
	got := mustJSON(t, final.Tally)
	if !bytes.Equal(got, want) {
		t.Fatalf("distributed adaptive tally differs from in-process:\nservice:    %s\nin-process: %s", got, want)
	}
	skipped := 0
	for _, sh := range final.Shards {
		if sh.State == serve.ShardSkipped {
			skipped++
			if sh.Index <= final.StopShard {
				t.Errorf("shard %d at or before the stopping point is marked skipped", sh.Index)
			}
		}
	}
	if skipped != final.Skipped {
		t.Errorf("status counts %d skipped, shard list shows %d", final.Skipped, skipped)
	}
}

// TestAdaptiveSpecValidation: the adaptive knob is fenced behind the v2
// schema — a v1 spec smuggling a TargetCI and a v2 spec without one must
// both be refused at submission.
func TestAdaptiveSpecValidation(t *testing.T) {
	coord, err := serve.NewCoordinator(serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := adaptiveCfg()
	if _, err := coord.Submit(serve.CampaignSpec{
		Schema: serve.JobSchema, Workload: testWorkload, Config: cfg,
	}); err == nil || !strings.Contains(err.Error(), serve.JobSchemaV2) {
		t.Fatalf("v1 spec with TargetCI accepted: err = %v", err)
	}
	if _, err := coord.Submit(serve.CampaignSpec{
		Schema: serve.JobSchemaV2, Workload: testWorkload,
		Config: campaign.TransientCampaignConfig{Injections: 50},
	}); err == nil || !strings.Contains(err.Error(), "target CI") {
		t.Fatalf("v2 spec without TargetCI accepted: err = %v", err)
	}
}

// TestAdaptiveRestartResumesMidConvergence drives the coordinator by hand —
// lease, run the shard through the worker's own ShardPlan path, complete —
// so the crash point is exact: two shards land, the coordinator dies before
// the estimate converges, and a fresh coordinator on the same journal must
// resume, converge at the in-process stopping shard, and settle with the
// identical tally. A third replay of the settled journal must reconstruct
// the converged job verbatim from its job_converged entry.
func TestAdaptiveRestartResumesMidConvergence(t *testing.T) {
	cfg := adaptiveCfg()
	cfg.ShardSize = 10 // finer shards so the crash lands well before convergence
	inproc, want := inProcessAdaptive(t, cfg)
	stop := inproc.Adaptive.StopShard
	if !inproc.Adaptive.Converged || stop < 3 {
		t.Fatalf("reference run must converge past shard 2 for the crash to precede it; stopped at %d", stop)
	}

	// Pre-run every shard the job can need through the worker execution path.
	w, err := specaccel.ByName(testWorkload)
	if err != nil {
		t.Fatal(err)
	}
	r := campaign.Runner{}
	golden, err := r.Golden(w)
	if err != nil {
		t.Fatal(err)
	}
	profile, _, err := r.Profile(w, core.Exact)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := campaign.NewShardPlan(r, w, golden, profile, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tallies := make([]*campaign.Tally, cfg.NumShards())
	for s := 0; s <= stop; s++ {
		results, err := plan.RunShard(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		tallies[s] = campaign.TallyRuns(results)
	}

	journal := filepath.Join(t.TempDir(), "journal.jsonl")
	coord1, err := serve.NewCoordinator(serve.Options{JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	st, err := coord1.Submit(serve.CampaignSpec{
		Schema: serve.JobSchemaV2, Workload: testWorkload, Config: cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	wid1, err := coord1.Register(serve.WorkerInfo{Name: "phase1"})
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1: complete exactly two shards, then crash the coordinator.
	for i := 0; i < 2; i++ {
		g, err := coord1.Lease(wid1)
		if err != nil || g == nil {
			t.Fatalf("phase1 lease %d: %v %v", i, g, err)
		}
		if err := coord1.Complete(wid1, g.LeaseID, serve.ShardResult{
			Tally: tallies[g.Shard], GoldenDigest: g.GoldenDigest,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if js, _ := coord1.Job(st.ID); js.Converged {
		t.Fatalf("job converged after two shards; the crash point is past the decision: %+v", js)
	}
	if err := coord1.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: a fresh coordinator resumes mid-flight and runs to convergence.
	coord2, err := serve.NewCoordinator(serve.Options{JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	js, ok := coord2.Job(st.ID)
	if !ok {
		t.Fatal("restarted coordinator forgot the adaptive job")
	}
	if js.State != serve.JobRunning || js.Done != 2 || js.Converged {
		t.Fatalf("resumed mid-convergence state: %+v", js)
	}
	wid2, err := coord2.Register(serve.WorkerInfo{Name: "phase2"})
	if err != nil {
		t.Fatal(err)
	}
	completed := 2
	for {
		g, err := coord2.Lease(wid2)
		if err != nil {
			t.Fatal(err)
		}
		if g == nil {
			break
		}
		if tallies[g.Shard] == nil {
			t.Fatalf("coordinator leased shard %d past the stopping point %d", g.Shard, stop)
		}
		if err := coord2.Complete(wid2, g.LeaseID, serve.ShardResult{
			Tally: tallies[g.Shard], GoldenDigest: g.GoldenDigest,
		}); err != nil {
			t.Fatal(err)
		}
		completed++
	}
	js, _ = coord2.Job(st.ID)
	if js.State != serve.JobDone || !js.Converged || js.StopShard != stop {
		t.Fatalf("resumed job settled converged=%v at shard %d (state %q), want shard %d",
			js.Converged, js.StopShard, js.State, stop)
	}
	if completed != stop+1 {
		t.Fatalf("completed %d shards across the restart, want %d", completed, stop+1)
	}
	got := mustJSON(t, js.Tally)
	if !bytes.Equal(got, want) {
		t.Fatalf("post-restart adaptive tally differs:\nservice:    %s\nin-process: %s", got, want)
	}
	if err := coord2.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 3: replaying the settled journal — job_converged entry included —
	// must reconstruct the converged job without re-deciding anything.
	coord3, err := serve.NewCoordinator(serve.Options{JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	js3, ok := coord3.Job(st.ID)
	if !ok {
		t.Fatal("settled adaptive job lost on replay")
	}
	if js3.State != serve.JobDone || !js3.Converged || js3.StopShard != stop || js3.Skipped != js.Skipped {
		t.Fatalf("replayed job diverges: %+v vs %+v", js3, js)
	}
	if !bytes.Equal(mustJSON(t, js3.Tally), want) {
		t.Fatal("replayed tally differs from the settled tally")
	}
}

// TestAdaptiveOffStatusByteIdentity: a fixed-count v1 job's status encoding
// must not contain any adaptive field — the omitempty fence that keeps v1
// consumers unaware the engine exists.
func TestAdaptiveOffStatusByteIdentity(t *testing.T) {
	coord, err := serve.NewCoordinator(serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := coord.Submit(serve.CampaignSpec{
		Workload: testWorkload,
		Config:   campaign.TransientCampaignConfig{Injections: 20, Seed: 5, ShardSize: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	b := mustJSON(t, st)
	for _, key := range []string{"skipped", "converged", "stop_shard", "achieved_ci", "strata", "TargetCI", "Confidence", "MaxInjections"} {
		if strings.Contains(string(b), `"`+key+`"`) {
			t.Errorf("fixed-count job status leaks %q: %s", key, b)
		}
	}
	if st.Schema != serve.JobSchema {
		t.Errorf("fixed-count job schema = %q, want %q", st.Schema, serve.JobSchema)
	}
}
