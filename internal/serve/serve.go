// Package serve turns the campaign harness into a service: a coordinator
// accepts campaign submissions, splits them into selection shards (see
// campaign.ShardSeed), and hands shards to workers under heartbeat-renewed,
// timeout-reclaimed leases. Per-shard tallies merge commutatively into the
// job tally, so a campaign distributed over any number of workers — local
// pool goroutines or remote processes speaking the HTTP API — produces a
// tally byte-identical to the single-process runner on the same seed.
//
// Jobs persist to an append-only JSONL journal: a restarted coordinator
// replays it and resumes every unfinished job without re-running finished
// shards. Clients follow live progress through long-poll or SSE event
// streams. DESIGN.md section 3.5 gives the architecture and the lease/retry
// state machine.
package serve

import (
	"fmt"

	"repro/internal/campaign"
	"repro/internal/faultmodel"
	"repro/internal/specaccel"
)

// JobSchema versions the submission and status wire format.
const JobSchema = "nvbitfi.job/v1"

// JobSchemaV2 is the adaptive job schema: the spec carries a target
// confidence interval (Config.TargetCI) instead of a hard experiment count,
// and the coordinator stops issuing leases once the pooled stratified
// estimate converges. v1 specs are still accepted; a v1 spec with TargetCI
// set is rejected so old consumers never see fields they don't understand.
const JobSchemaV2 = "nvbitfi.job/v2"

// JobSchemaV3 is the fault-model job schema: the spec names a non-default
// fault model (Config.Model, internal/faultmodel registry) and optionally a
// model parameter string. v1/v2 specs with a model set are rejected, so a
// consumer that predates the subsystem never silently runs the wrong
// physics; a v2 spec and a v3 spec without a model stay byte-identical to
// their prior encodings.
const JobSchemaV3 = "nvbitfi.job/v3"

// CampaignSpec is a submitted campaign: a workload named out of the
// benchmark suite plus the transient-campaign configuration. The spec is
// the unit the journal persists and workers reconstruct experiments from —
// together with the campaign seed it determines every fault the job
// injects.
type CampaignSpec struct {
	Schema   string                           `json:"schema"`
	Workload string                           `json:"workload"`
	Config   campaign.TransientCampaignConfig `json:"config"`
}

// Validate checks the spec before a job is created from it.
func (s CampaignSpec) Validate() error {
	switch s.Schema {
	case "", JobSchema:
		if s.Config.TargetCI != 0 {
			return fmt.Errorf("serve: target-CI campaigns require schema %q", JobSchemaV2)
		}
		if !faultmodel.IsDefault(s.Config.Model) {
			return fmt.Errorf("serve: fault-model campaigns require schema %q", JobSchemaV3)
		}
	case JobSchemaV2:
		if s.Config.TargetCI <= 0 || s.Config.TargetCI >= 1 {
			return fmt.Errorf("serve: %q spec needs a target CI in (0,1), got %v", JobSchemaV2, s.Config.TargetCI)
		}
		if !faultmodel.IsDefault(s.Config.Model) {
			return fmt.Errorf("serve: fault-model campaigns require schema %q", JobSchemaV3)
		}
	case JobSchemaV3:
		m, err := faultmodel.Lookup(s.Config.Model)
		if err != nil {
			return err
		}
		if err := m.ValidateParam(s.Config.ModelParam); err != nil {
			return err
		}
		// The same soundness guard rails the in-process planner enforces,
		// applied server-side so an unsound job is rejected at submission
		// instead of failing on every worker.
		caps := m.Caps()
		if s.Config.Prune && !caps.Has(faultmodel.CapPrune) {
			return fmt.Errorf("serve: fault model %q does not support pruning", m.Name())
		}
		if s.Config.Classes && !caps.Has(faultmodel.CapClasses) {
			return fmt.Errorf("serve: fault model %q does not support class sampling", m.Name())
		}
		if s.Config.Checkpoint && !caps.Has(faultmodel.CapCheckpoint) {
			return fmt.Errorf("serve: fault model %q does not support checkpointing", m.Name())
		}
		if s.Config.TargetCI != 0 && (s.Config.TargetCI <= 0 || s.Config.TargetCI >= 1) {
			return fmt.Errorf("serve: %q spec needs a target CI in (0,1), got %v", JobSchemaV3, s.Config.TargetCI)
		}
	default:
		return fmt.Errorf("serve: unsupported job schema %q (want %q, %q or %q)", s.Schema, JobSchema, JobSchemaV2, JobSchemaV3)
	}
	if s.Workload == "" {
		return fmt.Errorf("serve: spec names no workload")
	}
	if _, err := ResolveWorkload(s.Workload); err != nil {
		return err
	}
	return nil
}

// ResolveWorkload maps a spec's workload name to the runnable workload.
// Coordinator and workers resolve independently — the simulator is
// deterministic, so both sides reconstruct the same golden run and verify
// agreement through its digest.
func ResolveWorkload(name string) (campaign.Workload, error) {
	w, err := specaccel.ByName(name)
	if err != nil {
		return nil, fmt.Errorf("serve: unknown workload %q: %w", name, err)
	}
	return w, nil
}

// WorkerInfo describes a worker at registration.
type WorkerInfo struct {
	Name string `json:"name"`
}

// LeaseGrant hands one shard of one job to a worker. The worker re-derives
// the shard's fault parameters from the spec (seed, shard index) and must
// renew the lease before TTLSeconds elapses or the coordinator reclaims the
// shard for another worker.
type LeaseGrant struct {
	LeaseID      string       `json:"lease_id"`
	Job          string       `json:"job"`
	Shard        int          `json:"shard"`
	Spec         CampaignSpec `json:"spec"`
	GoldenDigest string       `json:"golden_digest"`
	TTLSeconds   float64      `json:"ttl_seconds"`
}

// ShardResult is a worker's report for one completed shard.
type ShardResult struct {
	Tally *campaign.Tally `json:"tally"`
	// GoldenDigest is the digest of the worker's own golden run; the
	// coordinator rejects the shard if it diverges from the job's.
	GoldenDigest string `json:"golden_digest"`
}

// Backend is the coordinator surface a worker drives. The coordinator
// implements it directly for in-process pools; Client implements it over
// HTTP for remote workers. Everything a worker needs rides in the grant, so
// the two transports are interchangeable.
type Backend interface {
	Register(info WorkerInfo) (workerID string, err error)
	// Lease returns the next runnable shard, or nil when nothing is ready
	// (all leased, backing off, or no jobs).
	Lease(workerID string) (*LeaseGrant, error)
	Heartbeat(workerID, leaseID string) error
	Complete(workerID, leaseID string, res ShardResult) error
	Fail(workerID, leaseID, reason string) error
}

// Event is one entry in a job's progress stream. Seq increases by one per
// event within a job; clients resume with the last seq they saw.
type Event struct {
	Seq     int    `json:"seq"`
	Type    string `json:"type"` // "shard" or "job"
	Job     string `json:"job"`
	Shard   int    `json:"shard,omitempty"`
	State   string `json:"state"`
	Attempt int    `json:"attempt,omitempty"`
	Worker  string `json:"worker,omitempty"`
	Reason  string `json:"reason,omitempty"`
	// Progress counters at the time of the event.
	Done        int `json:"done"`
	Quarantined int `json:"quarantined,omitempty"`
	NumShards   int `json:"num_shards"`
	// Tally is the merged job tally after this event (shard completions and
	// job-level events only).
	Tally *campaign.Tally `json:"tally,omitempty"`
}

// Shard states as reported in statuses and events.
const (
	ShardPending     = "pending"
	ShardLeased      = "leased"
	ShardDone        = "done"
	ShardQuarantined = "quarantined"
	// ShardSkipped marks shards past an adaptive job's stopping point: the
	// pooled estimate converged before they were needed, so they never run
	// and contribute nothing to the tally.
	ShardSkipped = "skipped"
)

// EventConverged is the job-level event state announcing that an adaptive
// job's pooled estimate reached its target CI; Event.Shard carries the
// stopping shard index.
const EventConverged = "converged"

// Job states.
const (
	JobRunning = "running"
	JobDone    = "done"
	// JobFailed means the job settled but at least one shard exhausted its
	// attempts: the tally covers only completed shards.
	JobFailed = "failed"
)

// ShardStatus is one shard's externally visible state.
type ShardStatus struct {
	Index    int    `json:"index"`
	State    string `json:"state"`
	Attempts int    `json:"attempts,omitempty"`
	Worker   string `json:"worker,omitempty"`
	Error    string `json:"error,omitempty"`
}

// JobStatus is a job's externally visible state.
type JobStatus struct {
	Schema       string                           `json:"schema"`
	ID           string                           `json:"id"`
	Workload     string                           `json:"workload"`
	Config       campaign.TransientCampaignConfig `json:"config"`
	GoldenDigest string                           `json:"golden_digest"`
	State        string                           `json:"state"`
	NumShards    int                              `json:"num_shards"`
	Done         int                              `json:"done"`
	Quarantined  int                              `json:"quarantined,omitempty"`
	// The adaptive fields are omitted for v1 jobs so their status encoding
	// is unchanged. Skipped counts shards past the stopping point;
	// AchievedCI is the stratified Wilson half-width on the SDC share over
	// the shards that ran; Strata is the full-selection stratum composition
	// the estimate pooled against.
	Skipped    int                      `json:"skipped,omitempty"`
	Converged  bool                     `json:"converged,omitempty"`
	StopShard  int                      `json:"stop_shard,omitempty"`
	AchievedCI float64                  `json:"achieved_ci,omitempty"`
	Strata     []campaign.StratumWeight `json:"strata,omitempty"`
	Tally      *campaign.Tally          `json:"tally"`
	Shards     []ShardStatus            `json:"shards,omitempty"`
}
