package serve

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/faultmodel"
)

// ErrLeaseLost reports that a heartbeat, completion, or failure named a
// lease the coordinator no longer honours — it expired and was reclaimed,
// or its shard was finished by someone else. The worker must abandon the
// shard (its result would double-count) and lease fresh work.
var ErrLeaseLost = errors.New("serve: lease lost")

// Options tunes a coordinator.
type Options struct {
	// Runner computes each submitted job's golden run and digest.
	Runner campaign.Runner
	// LeaseTTL is how long a leased shard may go without a heartbeat before
	// it is reclaimed (default 30s).
	LeaseTTL time.Duration
	// MaxAttempts is how many times a shard may be leased before it is
	// quarantined (default 3).
	MaxAttempts int
	// RetryBackoff is the base delay before a failed shard is leased again;
	// attempt k waits RetryBackoff << (k-1) (default 500ms).
	RetryBackoff time.Duration
	// JournalPath, when set, persists job state to an append-only JSONL
	// journal; NewCoordinator replays an existing journal so a restarted
	// coordinator resumes unfinished jobs without re-running done shards.
	JournalPath string
	// Clock overrides time.Now for tests.
	Clock func() time.Time
}

func (o Options) withDefaults() Options {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 30 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 500 * time.Millisecond
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	return o
}

// shard is one shard's scheduling state.
type shard struct {
	state    string // ShardPending | ShardLeased | ShardDone | ShardQuarantined
	attempts int
	nextAt   time.Time // pending shards: earliest re-lease time (retry backoff)
	leaseID  string
	worker   string
	expires  time.Time
	lastErr  string
}

// job is one campaign's coordinator-side state.
type job struct {
	id           string
	spec         CampaignSpec
	goldenDigest string
	shards       []shard
	done         int
	quarantined  int
	skipped      int
	tally        *campaign.Tally
	state        string
	events       []Event
	notify       chan struct{} // closed and replaced on every publish

	// Adaptive (v2) jobs. The stopping rule is evaluated on the contiguous
	// done-prefix of shards as it grows — the same pure function of (seed,
	// shard prefix) the in-process runner evaluates shard by shard — so both
	// paths stop at the identical shard whatever order completions land in.
	adaptive     bool
	weights      []campaign.StratumWeight
	shardTallies []*campaign.Tally // per-shard tallies, retained until convergence
	prefix       int               // shards [0, prefix) are merged into prefixTally
	prefixTally  *campaign.Tally
	stopShard    int // converged stopping shard; -1 while unconverged
	achievedCI   float64
}

// Coordinator owns the job registry and the shard scheduler. It implements
// Backend directly, so in-process workers drive it with plain method calls;
// NewServer wraps the same coordinator for remote workers.
type Coordinator struct {
	opts Options

	mu      sync.Mutex
	jobs    map[string]*job
	order   []string // submission order, for listing
	leases  map[string]leaseRef
	workers map[string]bool
	journal *journal
}

type leaseRef struct {
	job   string
	shard int
}

// NewCoordinator builds a coordinator, replaying opts.JournalPath if it
// already holds state.
func NewCoordinator(opts Options) (*Coordinator, error) {
	c := &Coordinator{
		opts:    opts.withDefaults(),
		jobs:    make(map[string]*job),
		leases:  make(map[string]leaseRef),
		workers: make(map[string]bool),
	}
	if opts.JournalPath != "" {
		jn, entries, err := openJournal(opts.JournalPath)
		if err != nil {
			return nil, err
		}
		c.journal = jn
		for _, e := range entries {
			c.replay(e)
		}
		// Journal replay restores done/quarantined shards; everything that
		// was pending or leased at shutdown starts pending again.
		for _, id := range c.order {
			c.publishJobEvent(c.jobs[id], "resumed")
		}
	}
	return c, nil
}

// Close releases the journal.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.journal == nil {
		return nil
	}
	err := c.journal.Close()
	c.journal = nil
	return err
}

func newID(prefix string) string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand does not fail on supported platforms
	}
	return prefix + "-" + hex.EncodeToString(b[:])
}

// Submit validates a spec, computes the job's golden digest (the reference
// every worker must reproduce), journals the job, and schedules its shards.
func (c *Coordinator) Submit(spec CampaignSpec) (*JobStatus, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	adaptive := spec.Config.TargetCI > 0
	// Normalize the schema to the lowest version that carries the spec: the
	// journal and every status reply then name exactly the features in play.
	// An explicit default model name is folded away first so that
	// Model="transient" jobs are byte-identical to jobs that never set it.
	if spec.Config.Model == faultmodel.DefaultName {
		spec.Config.Model = ""
	}
	switch {
	case spec.Config.Model != "":
		spec.Schema = JobSchemaV3
	case adaptive:
		spec.Schema = JobSchemaV2
	default:
		spec.Schema = JobSchema
	}
	w, err := ResolveWorkload(spec.Workload)
	if err != nil {
		return nil, err
	}
	golden, err := c.opts.Runner.Golden(w)
	if err != nil {
		return nil, fmt.Errorf("serve: golden run for %s: %w", spec.Workload, err)
	}
	var weights []campaign.StratumWeight
	if adaptive {
		// The stratum composition is a pure function of (profile, config);
		// computing it once here and journaling it means replay never needs a
		// profiling run to re-derive the stopping decision.
		profile, _, err := c.opts.Runner.Profile(w, coreProfileMode)
		if err != nil {
			return nil, fmt.Errorf("serve: profiling run for %s: %w", spec.Workload, err)
		}
		weights, err = campaign.AdaptiveStrata(golden, profile, spec.Config)
		if err != nil {
			return nil, err
		}
	}
	j := &job{
		id:           newID("job"),
		spec:         spec,
		goldenDigest: golden.Output.Digest(),
		shards:       make([]shard, spec.Config.NumShards()),
		tally:        campaign.NewTally(),
		state:        JobRunning,
		notify:       make(chan struct{}),
	}
	j.initAdaptive(weights)
	for i := range j.shards {
		j.shards[i].state = ShardPending
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.append(journalEntry{
		Type: entryJob, Job: j.id, Spec: &j.spec,
		GoldenDigest: j.goldenDigest, NumShards: len(j.shards),
		Strata: weights,
	}); err != nil {
		return nil, err
	}
	c.jobs[j.id] = j
	c.order = append(c.order, j.id)
	c.publishJobEvent(j, "submitted")
	return c.statusLocked(j, false), nil
}

// initAdaptive sets up a job's adaptive state when its config asks for it.
func (j *job) initAdaptive(weights []campaign.StratumWeight) {
	j.stopShard = -1
	if j.spec.Config.TargetCI <= 0 {
		return
	}
	j.adaptive = true
	j.weights = weights
	j.shardTallies = make([]*campaign.Tally, len(j.shards))
	j.prefixTally = campaign.NewTally()
}

// replay applies one journal entry while rebuilding state at startup.
func (c *Coordinator) replay(e journalEntry) {
	switch e.Type {
	case entryJob:
		if e.Spec == nil {
			return
		}
		j := &job{
			id:           e.Job,
			spec:         *e.Spec,
			goldenDigest: e.GoldenDigest,
			shards:       make([]shard, e.NumShards),
			tally:        campaign.NewTally(),
			state:        JobRunning,
			notify:       make(chan struct{}),
		}
		j.initAdaptive(e.Strata)
		for i := range j.shards {
			j.shards[i].state = ShardPending
		}
		c.jobs[j.id] = j
		c.order = append(c.order, j.id)
	case entryShardDone:
		j := c.jobs[e.Job]
		if j == nil || e.Shard < 0 || e.Shard >= len(j.shards) || j.shards[e.Shard].state == ShardDone {
			return
		}
		if j.stopShard >= 0 {
			// The job already converged; completions past the stopping point
			// (journaled by in-flight workers) stay excluded from the tally.
			return
		}
		j.shards[e.Shard].state = ShardDone
		j.done++
		j.tally.Merge(e.Tally)
		if j.adaptive {
			j.shardTallies[e.Shard] = e.Tally
			c.advanceAdaptiveLocked(j, true)
		}
		c.settleLocked(j)
	case entryJobConverged:
		// Normally redundant — advanceAdaptiveLocked re-derives the decision
		// from the replayed shard tallies — but applied defensively so the
		// journaled stopping point always wins.
		j := c.jobs[e.Job]
		if j == nil || !j.adaptive || e.Shard < 0 || e.Shard >= len(j.shards) {
			return
		}
		c.convergeLocked(j, e.Shard, true)
		c.settleLocked(j)
	case entryShardFailed:
		j := c.jobs[e.Job]
		if j == nil || e.Shard < 0 || e.Shard >= len(j.shards) {
			return
		}
		s := &j.shards[e.Shard]
		if s.state == ShardDone {
			return
		}
		s.attempts = e.Attempt
		s.lastErr = e.Reason
		if e.Quarantined {
			s.state = ShardQuarantined
			j.quarantined++
			c.settleLocked(j)
		}
	case entryJobDone:
		// Redundant with settleLocked during replay; kept for readers.
	}
}

func (c *Coordinator) append(e journalEntry) error {
	if c.journal == nil {
		return nil
	}
	return c.journal.Append(e)
}

// now returns the coordinator clock's current time.
func (c *Coordinator) now() time.Time { return c.opts.Clock() }

// Register admits a worker. Worker IDs only namespace leases and events; a
// re-registering worker simply gets a fresh identity.
func (c *Coordinator) Register(info WorkerInfo) (string, error) {
	id := info.Name
	if id == "" {
		id = "worker"
	}
	id = newID(id)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workers[id] = true
	return id, nil
}

// Lease hands the caller the next runnable shard: pending, past its retry
// backoff, in submission order. Expired leases are reclaimed first, so a
// crashed worker's shard becomes leasable as soon as its TTL lapses.
func (c *Coordinator) Lease(workerID string) (*LeaseGrant, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.workers[workerID] {
		return nil, fmt.Errorf("serve: unregistered worker %q", workerID)
	}
	now := c.now()
	c.reclaimLocked(now)
	for _, id := range c.order {
		j := c.jobs[id]
		if j.state != JobRunning {
			continue
		}
		for i := range j.shards {
			s := &j.shards[i]
			if s.state != ShardPending || now.Before(s.nextAt) {
				continue
			}
			s.state = ShardLeased
			s.leaseID = newID("lease")
			s.worker = workerID
			s.expires = now.Add(c.opts.LeaseTTL)
			s.attempts++
			c.leases[s.leaseID] = leaseRef{job: j.id, shard: i}
			c.publishShardEvent(j, i, nil)
			return &LeaseGrant{
				LeaseID:      s.leaseID,
				Job:          j.id,
				Shard:        i,
				Spec:         j.spec,
				GoldenDigest: j.goldenDigest,
				TTLSeconds:   c.opts.LeaseTTL.Seconds(),
			}, nil
		}
	}
	return nil, nil
}

// reclaimLocked expires overdue leases: the shard goes back to pending (or
// quarantine, if the expiry consumed its last attempt) with retry backoff.
func (c *Coordinator) reclaimLocked(now time.Time) {
	for leaseID, ref := range c.leases {
		j := c.jobs[ref.job]
		s := &j.shards[ref.shard]
		if s.state != ShardLeased || s.leaseID != leaseID || now.Before(s.expires) {
			continue
		}
		delete(c.leases, leaseID)
		c.failShardLocked(j, ref.shard, "lease expired: worker "+s.worker+" stopped heartbeating")
	}
}

// failShardLocked records one failed attempt on a leased shard and either
// requeues it with exponential backoff or quarantines it.
func (c *Coordinator) failShardLocked(j *job, i int, reason string) {
	s := &j.shards[i]
	s.leaseID = ""
	s.worker = ""
	s.lastErr = reason
	quarantined := s.attempts >= c.opts.MaxAttempts
	if quarantined {
		s.state = ShardQuarantined
		j.quarantined++
	} else {
		s.state = ShardPending
		s.nextAt = c.now().Add(c.opts.RetryBackoff << (s.attempts - 1))
	}
	// Journal failures so attempts and quarantines survive a restart.
	_ = c.append(journalEntry{
		Type: entryShardFailed, Job: j.id, Shard: i,
		Attempt: s.attempts, Quarantined: quarantined, Reason: reason,
	})
	c.publishShardEvent(j, i, nil)
	c.settleAndPublishLocked(j)
}

// lookupLease resolves a lease that must still be held by workerID.
func (c *Coordinator) lookupLease(workerID, leaseID string) (*job, int, error) {
	ref, ok := c.leases[leaseID]
	if !ok {
		return nil, 0, ErrLeaseLost
	}
	j := c.jobs[ref.job]
	s := &j.shards[ref.shard]
	if s.state != ShardLeased || s.leaseID != leaseID || s.worker != workerID {
		return nil, 0, ErrLeaseLost
	}
	return j, ref.shard, nil
}

// Heartbeat renews a lease's TTL.
func (c *Coordinator) Heartbeat(workerID, leaseID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reclaimLocked(c.now())
	j, i, err := c.lookupLease(workerID, leaseID)
	if err != nil {
		return err
	}
	j.shards[i].expires = c.now().Add(c.opts.LeaseTTL)
	return nil
}

// Complete accepts a finished shard: the worker's golden digest must match
// the job's, the tally merges into the job, and the job settles when its
// last shard lands.
func (c *Coordinator) Complete(workerID, leaseID string, res ShardResult) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reclaimLocked(c.now())
	j, i, err := c.lookupLease(workerID, leaseID)
	if err != nil {
		return err
	}
	delete(c.leases, leaseID)
	if res.GoldenDigest != "" && res.GoldenDigest != j.goldenDigest {
		c.failShardLocked(j, i, fmt.Sprintf("golden digest mismatch: worker %s produced %.12s, job expects %.12s",
			workerID, res.GoldenDigest, j.goldenDigest))
		return fmt.Errorf("serve: golden digest mismatch for job %s shard %d", j.id, i)
	}
	if res.Tally == nil {
		c.failShardLocked(j, i, "worker reported no tally")
		return fmt.Errorf("serve: shard result carries no tally")
	}
	s := &j.shards[i]
	s.state = ShardDone
	s.leaseID = ""
	s.lastErr = ""
	j.done++
	j.tally.Merge(res.Tally)
	if err := c.append(journalEntry{Type: entryShardDone, Job: j.id, Shard: i, Tally: res.Tally}); err != nil {
		return err
	}
	if j.adaptive {
		j.shardTallies[i] = res.Tally
		c.advanceAdaptiveLocked(j, false)
	}
	c.publishShardEvent(j, i, res.Tally)
	c.settleAndPublishLocked(j)
	return nil
}

// advanceAdaptiveLocked extends the job's contiguous done-prefix with any
// newly landed shards, evaluating the stopping rule at each shard boundary
// — exactly the boundaries the in-process runner evaluates, in the same
// order, on the same merged tallies.
func (c *Coordinator) advanceAdaptiveLocked(j *job, replaying bool) {
	if !j.adaptive || j.stopShard >= 0 || j.state != JobRunning {
		return
	}
	for j.prefix < len(j.shards) && j.shardTallies[j.prefix] != nil {
		j.prefixTally.Merge(j.shardTallies[j.prefix])
		j.prefix++
		hw, ok := campaign.AdaptiveDecision(j.prefixTally, j.weights, j.spec.Config)
		j.achievedCI = hw
		if ok {
			c.convergeLocked(j, j.prefix-1, replaying)
			return
		}
	}
}

// convergeLocked applies an adaptive job's stopping decision at shard s:
// the job tally is recomputed to cover exactly shards [0, s] (out-of-order
// completions beyond the stopping shard are dropped), every later shard is
// marked skipped, their leases are cancelled — in-flight workers see
// ErrLeaseLost on completion and discard their results, which is the
// "drain" — and the decision is journaled so a restarted coordinator
// replays to the same stopping point.
func (c *Coordinator) convergeLocked(j *job, s int, replaying bool) {
	if j.stopShard >= 0 {
		return
	}
	j.stopShard = s
	nt := campaign.NewTally()
	for i := 0; i <= s && i < len(j.shardTallies); i++ {
		nt.Merge(j.shardTallies[i])
	}
	j.tally = nt
	hw, _ := campaign.AdaptiveDecision(j.tally, j.weights, j.spec.Config)
	j.achievedCI = hw
	done := 0
	for i := range j.shards {
		sh := &j.shards[i]
		if i <= s {
			if sh.state == ShardDone {
				done++
			}
			continue
		}
		if sh.state == ShardLeased {
			delete(c.leases, sh.leaseID)
			sh.leaseID = ""
			sh.worker = ""
		}
		sh.state = ShardSkipped
	}
	j.done = done
	j.quarantined = 0 // prefix shards are all done; later quarantines are moot
	j.skipped = len(j.shards) - (s + 1)
	if !replaying {
		_ = c.append(journalEntry{Type: entryJobConverged, Job: j.id, Shard: s})
		c.publishConvergedEvent(j, s)
	}
}

// publishConvergedEvent announces an adaptive job's stopping decision.
func (c *Coordinator) publishConvergedEvent(j *job, s int) {
	snap := campaign.NewTally()
	snap.Merge(j.tally)
	c.pushEventLocked(j, Event{
		Type: "job", Job: j.id, State: EventConverged, Shard: s,
		Done: j.done, Quarantined: j.quarantined, NumShards: len(j.shards),
		Tally: snap,
	})
}

// Fail records a worker-reported shard failure (requeue with backoff, or
// quarantine at the attempt cap).
func (c *Coordinator) Fail(workerID, leaseID, reason string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reclaimLocked(c.now())
	j, i, err := c.lookupLease(workerID, leaseID)
	if err != nil {
		return err
	}
	delete(c.leases, leaseID)
	c.failShardLocked(j, i, reason)
	return nil
}

// settleLocked recomputes a job's terminal state without publishing.
// Skipped shards (past an adaptive stopping point) count as settled.
func (c *Coordinator) settleLocked(j *job) {
	if j.state != JobRunning || j.done+j.quarantined+j.skipped < len(j.shards) {
		return
	}
	if j.quarantined > 0 {
		j.state = JobFailed
	} else {
		j.state = JobDone
	}
}

// settleAndPublishLocked settles the job and, on a transition, journals and
// announces it.
func (c *Coordinator) settleAndPublishLocked(j *job) {
	was := j.state
	c.settleLocked(j)
	if j.state != was {
		_ = c.append(journalEntry{Type: entryJobDone, Job: j.id, Reason: j.state})
		c.publishJobEvent(j, j.state)
	}
}

// publishShardEvent emits a shard-state event (tally attached on
// completions) and wakes event waiters.
func (c *Coordinator) publishShardEvent(j *job, i int, delta *campaign.Tally) {
	s := &j.shards[i]
	ev := Event{
		Type: "shard", Job: j.id, Shard: i, State: s.state,
		Attempt: s.attempts, Worker: s.worker, Reason: s.lastErr,
		Done: j.done, Quarantined: j.quarantined, NumShards: len(j.shards),
	}
	if delta != nil {
		snap := campaign.NewTally()
		snap.Merge(j.tally)
		ev.Tally = snap
	}
	c.pushEventLocked(j, ev)
}

// publishJobEvent emits a job-level event carrying the merged tally.
func (c *Coordinator) publishJobEvent(j *job, state string) {
	snap := campaign.NewTally()
	snap.Merge(j.tally)
	c.pushEventLocked(j, Event{
		Type: "job", Job: j.id, State: state,
		Done: j.done, Quarantined: j.quarantined, NumShards: len(j.shards),
		Tally: snap,
	})
}

func (c *Coordinator) pushEventLocked(j *job, ev Event) {
	ev.Seq = len(j.events) + 1
	j.events = append(j.events, ev)
	close(j.notify)
	j.notify = make(chan struct{})
}

// statusLocked renders a job's external status.
func (c *Coordinator) statusLocked(j *job, withShards bool) *JobStatus {
	snap := campaign.NewTally()
	snap.Merge(j.tally)
	schema := j.spec.Schema
	if schema == "" {
		schema = JobSchema
	}
	st := &JobStatus{
		Schema:       schema,
		ID:           j.id,
		Workload:     j.spec.Workload,
		Config:       j.spec.Config,
		GoldenDigest: j.goldenDigest,
		State:        j.state,
		NumShards:    len(j.shards),
		Done:         j.done,
		Quarantined:  j.quarantined,
		Skipped:      j.skipped,
		Tally:        snap,
	}
	if j.adaptive {
		st.Strata = j.weights
		if j.stopShard >= 0 {
			st.Converged = true
			st.StopShard = j.stopShard
		}
		if j.achievedCI > 0 && !math.IsInf(j.achievedCI, 1) {
			st.AchievedCI = j.achievedCI
		}
	}
	if withShards {
		st.Shards = make([]ShardStatus, len(j.shards))
		for i := range j.shards {
			s := &j.shards[i]
			st.Shards[i] = ShardStatus{
				Index: i, State: s.state, Attempts: s.attempts,
				Worker: s.worker, Error: s.lastErr,
			}
		}
	}
	return st
}

// Job returns one job's status (with per-shard detail) or false.
func (c *Coordinator) Job(id string) (*JobStatus, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reclaimLocked(c.now())
	j, ok := c.jobs[id]
	if !ok {
		return nil, false
	}
	return c.statusLocked(j, true), true
}

// Jobs lists every job in submission order.
func (c *Coordinator) Jobs() []*JobStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*JobStatus, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.statusLocked(c.jobs[id], false))
	}
	return out
}

// EventsAfter returns a job's events with seq > cursor. When none exist yet
// it returns an empty slice plus a channel that closes on the next publish,
// so callers can long-poll without spinning.
func (c *Coordinator) EventsAfter(id string, cursor int) ([]Event, <-chan struct{}, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return nil, nil, fmt.Errorf("serve: unknown job %q", id)
	}
	if cursor < 0 {
		cursor = 0
	}
	if cursor >= len(j.events) {
		return nil, j.notify, nil
	}
	evs := make([]Event, len(j.events)-cursor)
	copy(evs, j.events[cursor:])
	return evs, j.notify, nil
}

// Settled reports whether a job reached a terminal state.
func Settled(state string) bool { return state == JobDone || state == JobFailed }

// ReclaimTick forces an expiry sweep; tests drive it with a fake clock, and
// the server's ticker calls it so leases expire even while no worker polls.
func (c *Coordinator) ReclaimTick() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reclaimLocked(c.now())
}

// SortedJobIDs returns all job IDs sorted, for deterministic CLI output.
func (c *Coordinator) SortedJobIDs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := append([]string(nil), c.order...)
	sort.Strings(ids)
	return ids
}
