package serve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/specaccel"
)

const testWorkload = "314.omriq"

// inProcessTally runs the same campaign single-process and marshals its
// tally — the reference every service test compares against.
func inProcessTally(t *testing.T, cfg campaign.TransientCampaignConfig) []byte {
	t.Helper()
	w, err := specaccel.ByName(testWorkload)
	if err != nil {
		t.Fatal(err)
	}
	r := campaign.Runner{}
	golden, err := r.Golden(w)
	if err != nil {
		t.Fatal(err)
	}
	profile, _, err := r.Profile(w, core.Exact)
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res.Tally)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestServiceTallyIdentity is the acceptance test for the tentpole: a
// 200-injection campaign submitted over HTTP and executed by two remote
// workers must produce a tally byte-identical to the in-process runner on
// the same seed — and the same must hold with the pruning and checkpoint
// engines enabled.
func TestServiceTallyIdentity(t *testing.T) {
	cases := []struct {
		name string
		cfg  campaign.TransientCampaignConfig
	}{
		{"plain", campaign.TransientCampaignConfig{Injections: 200, Seed: 42}},
		{"prune", campaign.TransientCampaignConfig{Injections: 60, Seed: 43, Prune: true}},
		{"ckpt", campaign.TransientCampaignConfig{Injections: 60, Seed: 44, Checkpoint: true}},
		// Class-representative sampling groups within shard-sized chunks, so
		// two workers leasing shards independently must pick exactly the
		// representatives the in-process runner picks — no double-counting of
		// answered members across shard boundaries.
		{"classes", campaign.TransientCampaignConfig{Injections: 60, Seed: 45, Classes: true}},
		// NoXlate must ride the job spec to remote workers: an interpreted
		// distributed campaign against an interpreted in-process one (and
		// both match the translated tallies — the campaign differential
		// tests prove that side).
		{"interp", campaign.TransientCampaignConfig{Injections: 60, Seed: 42, NoXlate: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := inProcessTally(t, tc.cfg)

			coord, err := serve.NewCoordinator(serve.Options{})
			if err != nil {
				t.Fatal(err)
			}
			srv := httptest.NewServer(serve.NewServer(coord))
			defer srv.Close()
			client := serve.NewClient(srv.URL)

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var wg sync.WaitGroup
			for i := 0; i < 2; i++ {
				w := &serve.Worker{Backend: serve.NewClient(srv.URL), Runner: campaign.Runner{},
					PollInterval: 20 * time.Millisecond, Logf: t.Logf}
				wg.Add(1)
				go func() {
					defer wg.Done()
					w.Run(ctx)
				}()
			}

			st, err := client.Submit(serve.CampaignSpec{Workload: testWorkload, Config: tc.cfg})
			if err != nil {
				t.Fatal(err)
			}
			if st.GoldenDigest == "" {
				t.Fatal("submitted job carries no golden digest")
			}

			// Follow the live stream: tally snapshots must ride on shard
			// completions, and the final event settles the job.
			var sawTallyEvent bool
			final, err := client.Watch(ctx, st.ID, 0, func(ev serve.Event) {
				if ev.Type == "shard" && ev.State == serve.ShardDone && ev.Tally != nil {
					sawTallyEvent = true
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			cancel()
			wg.Wait()

			if final.State != serve.JobDone {
				t.Fatalf("job settled as %q: %+v", final.State, final)
			}
			if !sawTallyEvent {
				t.Fatal("no shard completion event carried a tally snapshot")
			}
			got := mustJSON(t, final.Tally)
			if !bytes.Equal(got, want) {
				t.Fatalf("service tally differs from in-process tally:\nservice:    %s\nin-process: %s", got, want)
			}
		})
	}
}

// crashBackend simulates a worker crash: after the first granted lease,
// every later call is swallowed — no Fail, no Complete, no Heartbeat ever
// reaches the coordinator, exactly as if the process died. The coordinator
// must recover the shard through lease expiry alone.
type crashBackend struct {
	serve.Backend
	mu      sync.Mutex
	crashed bool
	leased  chan struct{} // closed once the victim holds a lease
	kill    func()        // cancels the victim worker's context
}

func (b *crashBackend) Lease(workerID string) (*serve.LeaseGrant, error) {
	b.mu.Lock()
	crashed := b.crashed
	b.mu.Unlock()
	if crashed {
		return nil, nil
	}
	grant, err := b.Backend.Lease(workerID)
	if grant != nil {
		b.mu.Lock()
		b.crashed = true
		b.mu.Unlock()
		close(b.leased)
		// Let the shard start running, then kill the worker mid-flight.
		go func() {
			time.Sleep(10 * time.Millisecond)
			b.kill()
		}()
	}
	return grant, err
}

func (b *crashBackend) dead() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.crashed
}

func (b *crashBackend) Heartbeat(workerID, leaseID string) error {
	if b.dead() {
		return nil
	}
	return b.Backend.Heartbeat(workerID, leaseID)
}

func (b *crashBackend) Complete(workerID, leaseID string, res serve.ShardResult) error {
	if b.dead() {
		return nil
	}
	return b.Backend.Complete(workerID, leaseID, res)
}

func (b *crashBackend) Fail(workerID, leaseID, reason string) error {
	if b.dead() {
		return nil
	}
	return b.Backend.Fail(workerID, leaseID, reason)
}

// TestWorkerCrashLeaseReclaim: kill a worker mid-shard. Its lease must
// expire, the shard must be retried on the surviving worker, and the final
// tally must still be byte-identical to the in-process campaign — a crashed
// worker can cost time, never correctness.
func TestWorkerCrashLeaseReclaim(t *testing.T) {
	cfg := campaign.TransientCampaignConfig{Injections: 50, Seed: 77, ShardSize: 10}
	want := inProcessTally(t, cfg)

	coord, err := serve.NewCoordinator(serve.Options{
		LeaseTTL:     250 * time.Millisecond,
		RetryBackoff: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	victimCtx, killVictim := context.WithCancel(ctx)
	crash := &crashBackend{Backend: coord, leased: make(chan struct{}), kill: killVictim}
	victim := &serve.Worker{Backend: crash, Runner: campaign.Runner{}, Name: "victim",
		PollInterval: 10 * time.Millisecond, Logf: t.Logf}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		victim.Run(victimCtx)
	}()

	st, err := coord.Submit(serve.CampaignSpec{Workload: testWorkload, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}

	// The healthy worker only starts once the victim holds its lease, so
	// the retried shard is guaranteed to have been the victim's.
	<-crash.leased
	healthy := &serve.Worker{Backend: coord, Runner: campaign.Runner{}, Name: "healthy",
		PollInterval: 10 * time.Millisecond, Logf: t.Logf}
	wg.Add(1)
	go func() {
		defer wg.Done()
		healthy.Run(ctx)
	}()

	deadline := time.After(2 * time.Minute)
	for {
		js, ok := coord.Job(st.ID)
		if !ok {
			t.Fatal("job vanished")
		}
		if serve.Settled(js.State) {
			if js.State != serve.JobDone {
				t.Fatalf("job settled as %q", js.State)
			}
			retried := false
			for _, sh := range js.Shards {
				if sh.Attempts > 1 {
					retried = true
				}
			}
			if !retried {
				t.Fatal("no shard recorded a retry; the crash was not exercised")
			}
			got := mustJSON(t, js.Tally)
			if !bytes.Equal(got, want) {
				t.Fatalf("post-crash tally differs:\nservice:    %s\nin-process: %s", got, want)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatalf("job did not settle; status: %+v", js)
		case <-time.After(20 * time.Millisecond):
		}
	}
	cancel()
	wg.Wait()
}

// countingBackend counts Complete calls that the coordinator accepted.
type countingBackend struct {
	serve.Backend
	mu        sync.Mutex
	completes int
}

func (b *countingBackend) Complete(workerID, leaseID string, res serve.ShardResult) error {
	err := b.Backend.Complete(workerID, leaseID, res)
	if err == nil {
		b.mu.Lock()
		b.completes++
		b.mu.Unlock()
	}
	return err
}

func (b *countingBackend) count() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.completes
}

// TestCoordinatorRestartResumes: stop the coordinator mid-job and rebuild
// it from the journal. Finished shards must not re-run, the job must
// complete, and the tally must match the in-process campaign.
func TestCoordinatorRestartResumes(t *testing.T) {
	cfg := campaign.TransientCampaignConfig{Injections: 50, Seed: 99, ShardSize: 10}
	want := inProcessTally(t, cfg)
	journal := filepath.Join(t.TempDir(), "journal.jsonl")

	// Phase 1: run until at least two shards land, then shut down.
	coord1, err := serve.NewCoordinator(serve.Options{JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	count1 := &countingBackend{Backend: coord1}
	ctx1, cancel1 := context.WithCancel(context.Background())
	w1 := &serve.Worker{Backend: count1, Runner: campaign.Runner{}, Name: "phase1",
		PollInterval: 10 * time.Millisecond, Logf: t.Logf}
	var wg1 sync.WaitGroup
	wg1.Add(1)
	go func() {
		defer wg1.Done()
		w1.Run(ctx1)
	}()
	st, err := coord1.Submit(serve.CampaignSpec{Workload: testWorkload, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	for {
		js, _ := coord1.Job(st.ID)
		if js.Done >= 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel1()
	wg1.Wait()
	if err := coord1.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: a fresh coordinator on the same journal resumes the job.
	coord2, err := serve.NewCoordinator(serve.Options{JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	js, ok := coord2.Job(st.ID)
	if !ok {
		t.Fatal("restarted coordinator forgot the job")
	}
	if js.State != serve.JobRunning {
		t.Fatalf("resumed job state = %q, want running", js.State)
	}
	doneAtRestart := js.Done
	if doneAtRestart < 2 {
		t.Fatalf("journal preserved %d done shards, want >= 2", doneAtRestart)
	}

	count2 := &countingBackend{Backend: coord2}
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	w2 := &serve.Worker{Backend: count2, Runner: campaign.Runner{}, Name: "phase2",
		PollInterval: 10 * time.Millisecond, Logf: t.Logf}
	var wg2 sync.WaitGroup
	wg2.Add(1)
	go func() {
		defer wg2.Done()
		w2.Run(ctx2)
	}()
	deadline := time.After(2 * time.Minute)
	for {
		js, _ = coord2.Job(st.ID)
		if serve.Settled(js.State) {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("resumed job did not settle; status: %+v", js)
		case <-time.After(20 * time.Millisecond):
		}
	}
	cancel2()
	wg2.Wait()

	if js.State != serve.JobDone {
		t.Fatalf("resumed job settled as %q", js.State)
	}
	// Every shard completed exactly once across both coordinator lives:
	// the journal prevented any done shard from re-running.
	if total := count1.count() + count2.count(); total != cfg.NumShards() {
		t.Fatalf("shards completed %d times across restart, want %d", total, cfg.NumShards())
	}
	got := mustJSON(t, js.Tally)
	if !bytes.Equal(got, want) {
		t.Fatalf("post-restart tally differs:\nservice:    %s\nin-process: %s", got, want)
	}
}

// TestRetryBackoffAndQuarantine drives the lease state machine directly
// with a fake clock: fail a shard repeatedly and watch it back off
// exponentially, then land in quarantine at the attempt cap, failing the
// job.
func TestRetryBackoffAndQuarantine(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	coord, err := serve.NewCoordinator(serve.Options{
		MaxAttempts:  3,
		RetryBackoff: time.Second,
		Clock:        clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := coord.Submit(serve.CampaignSpec{
		Workload: testWorkload,
		Config:   campaign.TransientCampaignConfig{Injections: 5, ShardSize: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.NumShards != 1 {
		t.Fatalf("NumShards = %d, want 1", st.NumShards)
	}
	wid, err := coord.Register(serve.WorkerInfo{Name: "w"})
	if err != nil {
		t.Fatal(err)
	}

	// Attempt 1 fails: the shard backs off one second.
	g, err := coord.Lease(wid)
	if err != nil || g == nil {
		t.Fatalf("lease 1: %v %v", g, err)
	}
	if err := coord.Fail(wid, g.LeaseID, "boom"); err != nil {
		t.Fatal(err)
	}
	if g2, _ := coord.Lease(wid); g2 != nil {
		t.Fatal("shard leased again before its backoff elapsed")
	}
	now = now.Add(1100 * time.Millisecond)

	// Attempt 2 fails: backoff doubles.
	g, err = coord.Lease(wid)
	if err != nil || g == nil {
		t.Fatalf("lease 2: %v %v", g, err)
	}
	if err := coord.Fail(wid, g.LeaseID, "boom"); err != nil {
		t.Fatal(err)
	}
	now = now.Add(1100 * time.Millisecond)
	if g2, _ := coord.Lease(wid); g2 != nil {
		t.Fatal("second backoff did not double")
	}
	now = now.Add(1100 * time.Millisecond)

	// Attempt 3 fails: the shard quarantines and the job settles failed.
	g, err = coord.Lease(wid)
	if err != nil || g == nil {
		t.Fatalf("lease 3: %v %v", g, err)
	}
	if err := coord.Fail(wid, g.LeaseID, "boom"); err != nil {
		t.Fatal(err)
	}
	js, _ := coord.Job(st.ID)
	if js.State != serve.JobFailed || js.Quarantined != 1 {
		t.Fatalf("job = %q quarantined=%d, want failed/1", js.State, js.Quarantined)
	}
	if js.Shards[0].State != serve.ShardQuarantined {
		t.Fatalf("shard state = %q, want quarantined", js.Shards[0].State)
	}
	// A stale completion for the quarantined shard must be refused.
	if err := coord.Complete(wid, g.LeaseID, serve.ShardResult{Tally: campaign.NewTally()}); err == nil {
		t.Fatal("stale complete accepted after quarantine")
	}
}

// TestHeartbeatKeepsLease: with a fake clock, heartbeats must push the
// expiry forward so a slow shard outlives many TTLs.
func TestHeartbeatKeepsLease(t *testing.T) {
	now := time.Unix(2000, 0)
	coord, err := serve.NewCoordinator(serve.Options{
		LeaseTTL: 10 * time.Second,
		Clock:    func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := coord.Submit(serve.CampaignSpec{
		Workload: testWorkload,
		Config:   campaign.TransientCampaignConfig{Injections: 5, ShardSize: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	wid, _ := coord.Register(serve.WorkerInfo{Name: "w"})
	g, err := coord.Lease(wid)
	if err != nil || g == nil {
		t.Fatalf("lease: %v %v", g, err)
	}
	for i := 0; i < 5; i++ {
		now = now.Add(8 * time.Second)
		if err := coord.Heartbeat(wid, g.LeaseID); err != nil {
			t.Fatalf("heartbeat %d: %v", i, err)
		}
	}
	if err := coord.Complete(wid, g.LeaseID, serve.ShardResult{
		Tally: campaign.NewTally(), GoldenDigest: g.GoldenDigest,
	}); err != nil {
		t.Fatal(err)
	}
	js, _ := coord.Job(st.ID)
	if js.State != serve.JobDone {
		t.Fatalf("job = %q, want done", js.State)
	}
	// Without a heartbeat the lease would have expired: prove the converse.
	now = now.Add(11 * time.Second)
	if err := coord.Heartbeat(wid, "lease-gone"); err == nil {
		t.Fatal("heartbeat on an unknown lease succeeded")
	}
}

// TestJournalTornTail: a journal whose final record was torn by a crash
// mid-write must replay cleanly, dropping only the torn record.
func TestJournalTornTail(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "journal.jsonl")
	coord1, err := serve.NewCoordinator(serve.Options{JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	st, err := coord1.Submit(serve.CampaignSpec{
		Workload: testWorkload,
		Config:   campaign.TransientCampaignConfig{Injections: 20, ShardSize: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord1.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: append half a record with no newline.
	f, err := os.OpenFile(journal, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"shard_done","job":"` + st.ID + `","sh`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	coord2, err := serve.NewCoordinator(serve.Options{JournalPath: journal})
	if err != nil {
		t.Fatalf("torn journal refused: %v", err)
	}
	js, ok := coord2.Job(st.ID)
	if !ok {
		t.Fatal("job lost after torn-tail replay")
	}
	if js.Done != 0 || js.State != serve.JobRunning {
		t.Fatalf("torn record leaked state: %+v", js)
	}
}

// TestSSEStream: the events endpoint must stream live SSE frames.
func TestSSEStream(t *testing.T) {
	coord, err := serve.NewCoordinator(serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(serve.NewServer(coord))
	defer srv.Close()
	client := serve.NewClient(srv.URL)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &serve.Worker{Backend: serve.NewClient(srv.URL), Runner: campaign.Runner{},
		PollInterval: 10 * time.Millisecond}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w.Run(ctx)
	}()

	st, err := client.Submit(serve.CampaignSpec{
		Workload: testWorkload,
		Config:   campaign.TransientCampaignConfig{Injections: 20, Seed: 5, ShardSize: 10},
	})
	if err != nil {
		t.Fatal(err)
	}

	req, err := http.NewRequestWithContext(ctx, "GET", srv.URL+"/api/v1/jobs/"+st.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var done bool
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev serve.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE frame %q: %v", line, err)
		}
		if ev.Type == "job" && ev.State == serve.JobDone {
			if ev.Tally == nil || ev.Tally.N != 20 {
				t.Fatalf("final SSE event tally = %+v, want N=20", ev.Tally)
			}
			done = true
			break
		}
	}
	if !done {
		t.Fatalf("SSE stream ended without a job-done event: %v", sc.Err())
	}
	cancel()
	wg.Wait()
}
