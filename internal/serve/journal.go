package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/campaign"
)

// The journal is the coordinator's durability story: every state change
// that must survive a restart — job creation, shard completion (with its
// tally), shard failure, job settlement — appends one JSON line. Replay is
// idempotent and ordered, so a coordinator that crashed mid-write simply
// ignores the torn final line and resumes: done shards stay done, everything
// else re-enters the pending pool.

// Journal entry types.
const (
	entryJob         = "job"
	entryShardDone   = "shard_done"
	entryShardFailed = "shard_failed"
	entryJobDone     = "job_done"
	// entryJobConverged records an adaptive job's stopping decision: the
	// pooled estimate reached its target CI at shard index Shard. On replay
	// the same decision is also re-derived from the shard_done tallies; the
	// explicit entry makes the stopping point inspectable and replays
	// idempotently ahead of any out-of-order completions.
	entryJobConverged = "job_converged"
)

// journalEntry is one JSONL record.
type journalEntry struct {
	Type string `json:"type"`
	Job  string `json:"job"`
	// entryJob fields.
	Spec         *CampaignSpec `json:"spec,omitempty"`
	GoldenDigest string        `json:"golden_digest,omitempty"`
	NumShards    int           `json:"num_shards,omitempty"`
	// Strata is the adaptive job's full-selection stratum composition,
	// journaled at submission so replay re-derives the stopping decision
	// without a profiling run.
	Strata []campaign.StratumWeight `json:"strata,omitempty"`
	// Shard-level fields.
	Shard       int             `json:"shard,omitempty"`
	Attempt     int             `json:"attempt,omitempty"`
	Quarantined bool            `json:"quarantined,omitempty"`
	Reason      string          `json:"reason,omitempty"`
	Tally       *campaign.Tally `json:"tally,omitempty"`
}

// journal appends entries to a JSONL file, syncing after every record so a
// crash loses at most the entry being written.
type journal struct {
	f *os.File
}

// openJournal opens (or creates) the journal and returns the replayable
// entries already in it. A truncated final line — a crash mid-append — is
// dropped silently; every complete line must parse.
func openJournal(path string) (*journal, []journalEntry, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: open journal: %w", err)
	}
	var entries []journalEntry
	var good int64 // offset just past the last complete, parseable record
	r := bufio.NewReader(f)
	for {
		line, err := r.ReadBytes('\n')
		complete := err == nil
		if complete && len(bytes.TrimSpace(line)) == 0 {
			good += int64(len(line))
			continue
		}
		if len(line) > 0 && complete {
			var e journalEntry
			if jerr := json.Unmarshal(line, &e); jerr != nil {
				f.Close()
				return nil, nil, fmt.Errorf("serve: journal %s is corrupt at offset %d: %v", path, good, jerr)
			}
			entries = append(entries, e)
			good += int64(len(line))
		}
		if err != nil {
			if err == io.EOF {
				break // a torn, newline-less tail is dropped by truncation below
			}
			f.Close()
			return nil, nil, fmt.Errorf("serve: read journal: %w", err)
		}
	}
	// Drop any torn final record so new appends start on a record boundary.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &journal{f: f}, entries, nil
}

// Append writes one entry and syncs it to disk.
func (j *journal) Append(e journalEntry) error {
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("serve: journal append: %w", err)
	}
	return j.f.Sync()
}

// Close closes the underlying file.
func (j *journal) Close() error { return j.f.Close() }
