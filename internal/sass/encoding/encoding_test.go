package encoding

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/sass"
)

const testSrc = `
.kernel saxpy
.param n
.param a
.param xptr
.param yptr
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.GE.AND P0, R0, c0[n], PT
@P0 EXIT
    SHL R3, R0, 0x2
    IADD R4, R3, c0[xptr]
    IADD R5, R3, c0[yptr]
    LDG.32 R6, [R4]
    LDG.32 R7, [R5]
    MOV R8, c0[a]
    FFMA R9, R8, R6, R7
    STG.32 [R5], R9
    EXIT

.kernel reduce
.shared 1024
loop:
    LDS.32 R1, [RZ]
    BAR.SYNC
    ISETP.NE.AND P1, R1, 0x0, PT
@P1 BRA loop
    EXIT
`

// TestRoundTripAllFamilies: the same program survives encode/decode on
// every architecture family, despite the different binary formats.
func TestRoundTripAllFamilies(t *testing.T) {
	prog := sass.MustAssemble("m", testSrc)
	sizes := make(map[sass.Family]int)
	for _, f := range sass.Families() {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			codec := MustCodec(f)
			bin, err := codec.EncodeProgram(prog)
			if err != nil {
				t.Fatal(err)
			}
			sizes[f] = len(bin)
			got, err := codec.DecodeProgram(bin)
			if err != nil {
				t.Fatal(err)
			}
			// Compare by re-encoding: label symbols are not retained in
			// machine code, so textual comparison would differ on them.
			bin2, err := codec.EncodeProgram(got)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(bin, bin2) {
				t.Fatalf("round trip changed program on %v:\n%s", f, sass.Disassemble(got))
			}
		})
	}
	// Pre-Volta (8-byte beats + control words) and Volta+ (16-byte beats)
	// must produce genuinely different binaries.
	kb := sizes[sass.FamilyKepler]
	vb := sizes[sass.FamilyVolta]
	if kb == 0 || vb == 0 || kb == vb {
		t.Errorf("expected family-dependent binary sizes, got kepler=%d volta=%d", kb, vb)
	}
}

// TestCrossFamilyOpcodeNumbering: the same mnemonic encodes to different
// opcode ids on different families, so binaries are not interchangeable.
func TestCrossFamilyOpcodeNumbering(t *testing.T) {
	volta := MustCodec(sass.FamilyVolta)
	ampere := MustCodec(sass.FamilyAmpere)
	op := sass.MustOp("STG") // exists on both, different local ids
	if volta.opToLocal[op] == ampere.opToLocal[op] {
		t.Skipf("STG happens to share ids; checking the whole table instead")
	}
	diff := 0
	for opc, vid := range volta.opToLocal {
		if aid, ok := ampere.opToLocal[opc]; ok && aid != vid {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("every opcode has the same id on Volta and Ampere; numbering is not family-specific")
	}
}

// TestFamilyMismatch: loading Volta machine code on a Kepler decoder fails
// cleanly.
func TestFamilyMismatch(t *testing.T) {
	prog := sass.MustAssemble("m", testSrc)
	bin, err := MustCodec(sass.FamilyVolta).EncodeProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	_, err = MustCodec(sass.FamilyKepler).DecodeProgram(bin)
	if err == nil || !strings.Contains(err.Error(), "machine code") {
		t.Fatalf("cross-family decode: %v", err)
	}
}

// TestEncodeUnsupportedOpcode: an opcode missing from the family cannot be
// encoded (LOP3 does not exist on Kepler).
func TestEncodeUnsupportedOpcode(t *testing.T) {
	prog := sass.MustAssemble("m", `
.kernel k
    LOP3 R0, R1, R2, R3, 0x3c
    EXIT
`)
	_, err := MustCodec(sass.FamilyKepler).EncodeProgram(prog)
	if err == nil || !strings.Contains(err.Error(), "does not exist") {
		t.Fatalf("encoding LOP3 for Kepler: %v", err)
	}
	if _, err := MustCodec(sass.FamilyVolta).EncodeProgram(prog); err != nil {
		t.Fatalf("encoding LOP3 for Volta: %v", err)
	}
}

// TestCorruptionDetection: pre-Volta control-word parity catches bit rot in
// instruction beats.
func TestCorruptionDetection(t *testing.T) {
	prog := sass.MustAssemble("m", testSrc)
	codec := MustCodec(sass.FamilyMaxwell)
	bin, err := codec.EncodeProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit near the end of the stream (inside instruction beats).
	corrupt := append([]byte(nil), bin...)
	corrupt[len(corrupt)-5] ^= 0x10
	if _, err := codec.DecodeProgram(corrupt); err == nil {
		t.Fatal("decoder accepted corrupted machine code")
	}
}

func TestDecodeErrors(t *testing.T) {
	codec := MustCodec(sass.FamilyVolta)
	tests := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short", []byte{1, 2, 3}},
		{"bad magic", []byte("NOPE01xxxxxxxxxx")},
		{"bad version", append([]byte("GCUB"), 99, byte(sass.FamilyVolta))},
		{"truncated body", append([]byte("GCUB"), 1, byte(sass.FamilyVolta), 4, 0)},
	}
	for _, tc := range tests {
		if _, err := codec.DecodeProgram(tc.data); err == nil {
			t.Errorf("%s: decode succeeded", tc.name)
		}
	}
}

func TestDetectFamily(t *testing.T) {
	prog := sass.MustAssemble("m", testSrc)
	for _, f := range sass.Families() {
		bin, err := MustCodec(f).EncodeProgram(prog)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DetectFamily(bin)
		if err != nil || got != f {
			t.Errorf("DetectFamily(%v binary) = %v, %v", f, got, err)
		}
	}
	if _, err := DetectFamily([]byte("not a binary at all")); err == nil {
		t.Error("DetectFamily accepted garbage")
	}
	if _, err := DetectFamily(append([]byte("GCUB"), 1, 77)); err == nil {
		t.Error("DetectFamily accepted an unknown family byte")
	}
}

func TestNewCodecUnknownFamily(t *testing.T) {
	if _, err := NewCodec(sass.Family(42)); err == nil {
		t.Error("NewCodec accepted an unknown family")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustCodec did not panic")
		}
	}()
	MustCodec(sass.Family(42))
}

// TestRoundTripRandomPrograms is the property test: random programs built
// from the families' common opcodes survive encode/decode on every family.
func TestRoundTripRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	common := []string{"FADD", "FMUL", "IADD", "MOV", "SHL", "SHR", "LOP", "IMAD",
		"SEL", "POPC", "BREV", "LDG", "STG", "S2R", "EXIT"}
	for trial := 0; trial < 100; trial++ {
		prog := randomEncodableProgram(rng, common)
		for _, f := range sass.Families() {
			codec := MustCodec(f)
			bin, err := codec.EncodeProgram(prog)
			if err != nil {
				t.Fatalf("trial %d on %v: %v", trial, f, err)
			}
			got, err := codec.DecodeProgram(bin)
			if err != nil {
				t.Fatalf("trial %d on %v: %v", trial, f, err)
			}
			bin2, err := codec.EncodeProgram(got)
			if err != nil {
				t.Fatalf("trial %d on %v: %v", trial, f, err)
			}
			if !bytes.Equal(bin, bin2) {
				t.Fatalf("trial %d on %v: round trip changed program", trial, f)
			}
		}
	}
}

func randomEncodableProgram(rng *rand.Rand, opNames []string) *sass.Program {
	var sb bytes.Buffer
	sb.WriteString(".kernel rk\n")
	n := 1 + rng.Intn(20)
	for i := 0; i < n; i++ {
		name := opNames[rng.Intn(len(opNames))]
		switch name {
		case "EXIT":
			sb.WriteString("    NOP\n")
		case "LDG":
			sb.WriteString("    LDG.32 R1, [R2+0x10]\n")
		case "STG":
			sb.WriteString("    STG.32 [R2], R1\n")
		case "S2R":
			sb.WriteString("    S2R R0, SR_TID.X\n")
		case "MOV", "POPC", "BREV":
			sb.WriteString("    " + name + " R1, R2\n")
		case "IMAD", "SEL":
			sb.WriteString("    " + name + " R1, R2, R3, R4\n")
		case "LOP":
			sb.WriteString("    LOP.XOR R1, R2, R3\n")
		default:
			sb.WriteString("    " + name + " R1, R2, R3\n")
		}
	}
	sb.WriteString("    EXIT\n")
	return sass.MustAssemble("rand", sb.String())
}

// FuzzDecodeProgram: the decoder must reject arbitrary bytes with an error,
// never panic or hang — corrupted machine code reaches it in fault
// campaigns by design.
func FuzzDecodeProgram(f *testing.F) {
	prog := sass.MustAssemble("m", testSrc)
	for _, fam := range sass.Families() {
		bin, err := MustCodec(fam).EncodeProgram(prog)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(bin)
		// Seed a few systematic corruptions.
		for _, idx := range []int{6, len(bin) / 2, len(bin) - 3} {
			c := append([]byte(nil), bin...)
			c[idx] ^= 0xff
			f.Add(c)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("GCUB"))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, fam := range sass.Families() {
			p, err := MustCodec(fam).DecodeProgram(data)
			if err == nil && p == nil {
				t.Fatal("nil program with nil error")
			}
		}
	})
}

// FuzzAssemble: the assembler must reject arbitrary text with an error,
// never panic.
func FuzzAssemble(f *testing.F) {
	f.Add(testSrc)
	f.Add(".kernel k\nFADD R1, R2, R3\nEXIT\n")
	f.Add(".kernel k\n@!P0 BRA nowhere\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := sass.Assemble("fuzz", src)
		if err == nil && p == nil {
			t.Fatal("nil program with nil error")
		}
	})
}
