// Package encoding implements per-architecture-family binary encodings for
// SASS programs — the analog of cubin machine code. Instruction *encodings*
// change across GPU generations even though the abstract operations do not
// (the paper: "SASS instructions and their encodings can change across GPU
// generations"); this package reproduces that property:
//
//   - Kepler, Maxwell, and Pascal use 8-byte instruction beats with an
//     interleaved scheduling-control word (one per 7 beats on Kepler, one
//     per 3 on Maxwell and Pascal), carrying a per-slot parity byte.
//   - Volta and Ampere use 16-byte instruction beats with in-word control.
//   - Each family numbers opcodes by its own opcode set, so the same
//     mnemonic has different binary opcode ids on different families.
//
// The NVBit layer (internal/nvbit) uses this package to decode any family's
// binary into the single abstract sass.Instr view — the "architectural
// abstraction" the paper credits for NVBitFI working from Kepler to Ampere.
package encoding

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/sass"
)

// Codec encodes and decodes programs for one architecture family.
type Codec struct {
	family    sass.Family
	beatSize  int // 8 pre-Volta, 16 Volta+
	groupSize int // instruction beats per control word; 0 = no control words
	opToLocal map[sass.Op]uint16
	localToOp []sass.Op
}

// NewCodec returns the codec for family f.
func NewCodec(f sass.Family) (*Codec, error) {
	c := &Codec{family: f}
	switch f {
	case sass.FamilyKepler:
		c.beatSize, c.groupSize = 8, 7
	case sass.FamilyMaxwell, sass.FamilyPascal:
		c.beatSize, c.groupSize = 8, 3
	case sass.FamilyVolta, sass.FamilyAmpere:
		c.beatSize, c.groupSize = 16, 0
	default:
		return nil, fmt.Errorf("encoding: unknown family %v", f)
	}
	set := sass.OpcodeSet(f)
	c.localToOp = set
	c.opToLocal = make(map[sass.Op]uint16, len(set))
	for i, op := range set {
		c.opToLocal[op] = uint16(i)
	}
	return c, nil
}

// MustCodec is NewCodec for known-good families.
func MustCodec(f sass.Family) *Codec {
	c, err := NewCodec(f)
	if err != nil {
		panic(err)
	}
	return c
}

// Family returns the codec's architecture family.
func (c *Codec) Family() sass.Family { return c.family }

const (
	magic   = "GCUB"
	version = 1

	ctrlMagic = 0xC7
)

// EncodeProgram serializes a program to the family's binary format. It
// fails if the program uses an opcode the family does not implement.
func (c *Codec) EncodeProgram(p *sass.Program) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(magic)
	buf.WriteByte(version)
	buf.WriteByte(byte(c.family))
	writeString16(&buf, p.Name)
	writeU16(&buf, uint16(len(p.Kernels)))
	for _, k := range p.Kernels {
		if err := c.encodeKernel(&buf, k); err != nil {
			return nil, fmt.Errorf("encoding: kernel %s: %w", k.Name, err)
		}
	}
	return buf.Bytes(), nil
}

func (c *Codec) encodeKernel(buf *bytes.Buffer, k *sass.Kernel) error {
	writeString16(buf, k.Name)
	if len(k.Params) > 255 {
		return fmt.Errorf("too many parameters (%d)", len(k.Params))
	}
	buf.WriteByte(byte(len(k.Params)))
	for _, p := range k.Params {
		if len(p) > 255 {
			return fmt.Errorf("parameter name too long: %q", p)
		}
		buf.WriteByte(byte(len(p)))
		buf.WriteString(p)
	}
	writeU32(buf, uint32(k.SharedBytes))
	writeU32(buf, uint32(len(k.Instrs)))

	// Encode each instruction to beats, interleaving control words on
	// pre-Volta families.
	beatsInGroup := 0
	var group [][]byte
	flush := func() {
		if c.groupSize == 0 || len(group) == 0 {
			return
		}
		ctrl := make([]byte, c.beatSize)
		ctrl[0] = ctrlMagic
		for i, b := range group {
			if 1+i < len(ctrl) {
				ctrl[1+i] = parity(b)
			}
		}
		buf.Write(ctrl)
		for _, b := range group {
			buf.Write(b)
		}
		group = group[:0]
		beatsInGroup = 0
	}
	for i := range k.Instrs {
		payload, err := c.encodeInstr(&k.Instrs[i])
		if err != nil {
			return fmt.Errorf("instruction %d (%s): %w", i, k.Instrs[i].Op, err)
		}
		for off := 0; off < len(payload); off += c.beatSize {
			end := off + c.beatSize
			if end > len(payload) {
				end = len(payload)
			}
			beat := make([]byte, c.beatSize)
			copy(beat, payload[off:end])
			if c.groupSize > 0 {
				group = append(group, beat)
				beatsInGroup++
				if beatsInGroup == c.groupSize {
					flush()
				}
			} else {
				buf.Write(beat)
			}
		}
	}
	flush()
	return nil
}

// encodeInstr builds the family-independent instruction payload, prefixed
// with its byte length, padded to a whole number of beats.
func (c *Codec) encodeInstr(in *sass.Instr) ([]byte, error) {
	local, ok := c.opToLocal[in.Op]
	if !ok {
		return nil, fmt.Errorf("opcode %s does not exist on %s", in.Op, c.family)
	}
	var b bytes.Buffer
	writeU16(&b, 0) // length placeholder
	writeU16(&b, local)
	g := byte(in.Guard.Pred)
	if in.Guard.Neg {
		g |= 0x80
	}
	b.WriteByte(g)
	encodeMods(&b, &in.Mods)
	b.WriteByte(byte(len(in.Dst)))
	b.WriteByte(byte(len(in.Src)))
	for i := range in.Dst {
		if err := encodeOperand(&b, &in.Dst[i]); err != nil {
			return nil, err
		}
	}
	for i := range in.Src {
		if err := encodeOperand(&b, &in.Src[i]); err != nil {
			return nil, err
		}
	}
	payload := b.Bytes()
	binary.LittleEndian.PutUint16(payload[:2], uint16(len(payload)))
	// Pad to beat multiple.
	if rem := len(payload) % c.beatSize; rem != 0 {
		payload = append(payload, make([]byte, c.beatSize-rem)...)
	}
	return payload, nil
}

func encodeMods(b *bytes.Buffer, m *sass.Mods) {
	var flags byte
	set := func(cond bool, bit byte) {
		if cond {
			flags |= bit
		}
	}
	set(m.Signed, 1<<0)
	set(m.Unsigned, 1<<1)
	set(m.High, 1<<2)
	set(m.Right, 1<<3)
	set(m.FtoI.Trunc, 1<<4)
	set(m.Sync, 1<<5)
	set(m.Float, 1<<6)
	b.WriteByte(m.Width)
	b.WriteByte(flags)
	b.WriteByte(byte(m.Cmp))
	b.WriteByte(byte(m.Bool))
	b.WriteByte(byte(m.Logic))
	b.WriteByte(byte(m.Mufu))
	b.WriteByte(byte(m.Atom))
	b.WriteByte(byte(m.Shfl))
}

func decodeMods(r *bytes.Reader) (sass.Mods, error) {
	var raw [8]byte
	if _, err := r.Read(raw[:]); err != nil {
		return sass.Mods{}, err
	}
	var m sass.Mods
	m.Width = raw[0]
	flags := raw[1]
	m.Signed = flags&(1<<0) != 0
	m.Unsigned = flags&(1<<1) != 0
	m.High = flags&(1<<2) != 0
	m.Right = flags&(1<<3) != 0
	m.FtoI.Trunc = flags&(1<<4) != 0
	m.Sync = flags&(1<<5) != 0
	m.Float = flags&(1<<6) != 0
	m.Cmp = sass.CmpOp(raw[2])
	m.Bool = sass.BoolOp(raw[3])
	m.Logic = sass.LogicOp(raw[4])
	m.Mufu = sass.MufuFn(raw[5])
	m.Atom = sass.AtomOp(raw[6])
	m.Shfl = sass.ShflMode(raw[7])
	return m, nil
}

func encodeOperand(b *bytes.Buffer, o *sass.Operand) error {
	kind := byte(o.Kind)
	if o.Neg {
		kind |= 0x80
	}
	b.WriteByte(kind)
	switch o.Kind {
	case sass.OpdReg:
		b.WriteByte(byte(o.Reg))
	case sass.OpdPred:
		p := byte(o.Pred.Pred)
		if o.Pred.Neg {
			p |= 0x80
		}
		b.WriteByte(p)
	case sass.OpdImm:
		writeU32(b, o.Imm)
	case sass.OpdMem:
		b.WriteByte(byte(o.Reg))
		writeU32(b, uint32(o.Off))
	case sass.OpdConst:
		b.WriteByte(o.Bank)
		writeU32(b, uint32(o.Off))
	case sass.OpdSpecial:
		b.WriteByte(byte(o.SReg))
	case sass.OpdLabel:
		if o.Target < 0 {
			return fmt.Errorf("unresolved label %q", o.Sym)
		}
		writeU32(b, uint32(o.Target))
	default:
		return fmt.Errorf("cannot encode operand kind %d", o.Kind)
	}
	return nil
}

func decodeOperand(r *bytes.Reader) (sass.Operand, error) {
	kb, err := r.ReadByte()
	if err != nil {
		return sass.Operand{}, err
	}
	var o sass.Operand
	o.Neg = kb&0x80 != 0
	o.Kind = sass.OperandKind(kb & 0x7f)
	switch o.Kind {
	case sass.OpdReg:
		rb, err := r.ReadByte()
		if err != nil {
			return sass.Operand{}, err
		}
		o.Reg = sass.RegID(rb)
	case sass.OpdPred:
		pb, err := r.ReadByte()
		if err != nil {
			return sass.Operand{}, err
		}
		o.Pred = sass.PredRef{Pred: sass.PredID(pb & 0x7f), Neg: pb&0x80 != 0}
	case sass.OpdImm:
		o.Imm, err = readU32(r)
		if err != nil {
			return sass.Operand{}, err
		}
	case sass.OpdMem:
		rb, err := r.ReadByte()
		if err != nil {
			return sass.Operand{}, err
		}
		off, err := readU32(r)
		if err != nil {
			return sass.Operand{}, err
		}
		o.Reg, o.Off = sass.RegID(rb), int32(off)
	case sass.OpdConst:
		bank, err := r.ReadByte()
		if err != nil {
			return sass.Operand{}, err
		}
		off, err := readU32(r)
		if err != nil {
			return sass.Operand{}, err
		}
		o.Bank, o.Off = bank, int32(off)
	case sass.OpdSpecial:
		sb, err := r.ReadByte()
		if err != nil {
			return sass.Operand{}, err
		}
		o.SReg = sass.SpecialReg(sb)
	case sass.OpdLabel:
		t, err := readU32(r)
		if err != nil {
			return sass.Operand{}, err
		}
		o.Target = int32(t)
	default:
		return sass.Operand{}, fmt.Errorf("bad operand kind %d", o.Kind)
	}
	return o, nil
}

// DecodeProgram parses a binary module. The binary's embedded family must
// match the codec's family — loading Volta machine code on a Kepler decoder
// fails, as on real hardware.
func (c *Codec) DecodeProgram(data []byte) (*sass.Program, error) {
	r := bytes.NewReader(data)
	var hdr [6]byte
	if _, err := r.Read(hdr[:]); err != nil {
		return nil, fmt.Errorf("encoding: short header: %w", err)
	}
	if string(hdr[:4]) != magic {
		return nil, fmt.Errorf("encoding: bad magic %q", hdr[:4])
	}
	if hdr[4] != version {
		return nil, fmt.Errorf("encoding: unsupported version %d", hdr[4])
	}
	if sass.Family(hdr[5]) != c.family {
		return nil, fmt.Errorf("encoding: binary is %v machine code, codec is %v",
			sass.Family(hdr[5]), c.family)
	}
	name, err := readString16(r)
	if err != nil {
		return nil, err
	}
	nk, err := readU16(r)
	if err != nil {
		return nil, err
	}
	p := &sass.Program{Name: name}
	for i := 0; i < int(nk); i++ {
		k, err := c.decodeKernel(r)
		if err != nil {
			return nil, fmt.Errorf("encoding: kernel %d: %w", i, err)
		}
		p.Kernels = append(p.Kernels, k)
	}
	return p, nil
}

func (c *Codec) decodeKernel(r *bytes.Reader) (*sass.Kernel, error) {
	name, err := readString16(r)
	if err != nil {
		return nil, err
	}
	np, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	k := &sass.Kernel{Name: name}
	for i := 0; i < int(np); i++ {
		pl, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		pn := make([]byte, pl)
		if _, err := r.Read(pn); err != nil {
			return nil, err
		}
		k.Params = append(k.Params, string(pn))
	}
	shared, err := readU32(r)
	if err != nil {
		return nil, err
	}
	k.SharedBytes = int(shared)
	ni, err := readU32(r)
	if err != nil {
		return nil, err
	}

	beats := newBeatReader(r, c.beatSize, c.groupSize)
	for i := 0; i < int(ni); i++ {
		in, err := c.decodeInstr(beats)
		if err != nil {
			return nil, fmt.Errorf("instruction %d: %w", i, err)
		}
		k.Instrs = append(k.Instrs, in)
	}
	return k, nil
}

func (c *Codec) decodeInstr(beats *beatReader) (sass.Instr, error) {
	first, err := beats.next()
	if err != nil {
		return sass.Instr{}, err
	}
	plen := binary.LittleEndian.Uint16(first[:2])
	if int(plen) < 2 {
		return sass.Instr{}, fmt.Errorf("corrupt instruction length %d", plen)
	}
	payload := append([]byte(nil), first...)
	for len(payload) < int(plen) {
		b, err := beats.next()
		if err != nil {
			return sass.Instr{}, err
		}
		payload = append(payload, b...)
	}
	pr := bytes.NewReader(payload[2:plen])

	local, err := readU16(pr)
	if err != nil {
		return sass.Instr{}, err
	}
	if int(local) >= len(c.localToOp) {
		return sass.Instr{}, fmt.Errorf("opcode id %d out of range for %v", local, c.family)
	}
	var in sass.Instr
	in.Op = c.localToOp[local]
	g, err := pr.ReadByte()
	if err != nil {
		return sass.Instr{}, err
	}
	in.Guard = sass.PredRef{Pred: sass.PredID(g & 0x7f), Neg: g&0x80 != 0}
	in.Mods, err = decodeMods(pr)
	if err != nil {
		return sass.Instr{}, err
	}
	nd, err := pr.ReadByte()
	if err != nil {
		return sass.Instr{}, err
	}
	ns, err := pr.ReadByte()
	if err != nil {
		return sass.Instr{}, err
	}
	for i := 0; i < int(nd); i++ {
		o, err := decodeOperand(pr)
		if err != nil {
			return sass.Instr{}, err
		}
		in.Dst = append(in.Dst, o)
	}
	for i := 0; i < int(ns); i++ {
		o, err := decodeOperand(pr)
		if err != nil {
			return sass.Instr{}, err
		}
		in.Src = append(in.Src, o)
	}
	return in, nil
}

// beatReader yields instruction beats, consuming and verifying control
// words on pre-Volta families. Beats are read lazily, one per request: the
// kernel's final control group may be partial, and its unused slots must
// not be consumed (they belong to the next kernel).
type beatReader struct {
	r         *bytes.Reader
	beatSize  int
	groupSize int
	ctrl      []byte
	groupIdx  int // next beat slot within the current group
}

func newBeatReader(r *bytes.Reader, beatSize, groupSize int) *beatReader {
	return &beatReader{r: r, beatSize: beatSize, groupSize: groupSize}
}

func (br *beatReader) next() ([]byte, error) {
	if br.groupSize > 0 && (br.ctrl == nil || br.groupIdx == br.groupSize) {
		ctrl := make([]byte, br.beatSize)
		if _, err := io.ReadFull(br.r, ctrl); err != nil {
			return nil, fmt.Errorf("truncated control word: %w", err)
		}
		if ctrl[0] != ctrlMagic {
			return nil, fmt.Errorf("bad control word marker 0x%02x", ctrl[0])
		}
		br.ctrl = ctrl
		br.groupIdx = 0
	}
	beat := make([]byte, br.beatSize)
	if _, err := io.ReadFull(br.r, beat); err != nil {
		return nil, fmt.Errorf("truncated instruction stream: %w", err)
	}
	if br.groupSize > 0 {
		slot := 1 + br.groupIdx
		if slot < len(br.ctrl) && br.ctrl[slot] != parity(beat) {
			return nil, fmt.Errorf("beat %d parity mismatch", br.groupIdx)
		}
		br.groupIdx++
	}
	return beat, nil
}

func parity(b []byte) byte {
	var s byte
	for _, x := range b {
		s += x
	}
	return s
}

func writeU16(b *bytes.Buffer, v uint16) {
	var tmp [2]byte
	binary.LittleEndian.PutUint16(tmp[:], v)
	b.Write(tmp[:])
}

func writeU32(b *bytes.Buffer, v uint32) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	b.Write(tmp[:])
}

func writeString16(b *bytes.Buffer, s string) {
	writeU16(b, uint16(len(s)))
	b.WriteString(s)
}

func readU16(r *bytes.Reader) (uint16, error) {
	var tmp [2]byte
	if _, err := r.Read(tmp[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(tmp[:]), nil
}

func readU32(r *bytes.Reader) (uint32, error) {
	var tmp [4]byte
	if _, err := r.Read(tmp[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(tmp[:]), nil
}

func readString16(r *bytes.Reader) (string, error) {
	n, err := readU16(r)
	if err != nil {
		return "", err
	}
	s := make([]byte, n)
	if _, err := r.Read(s); err != nil {
		return "", err
	}
	return string(s), nil
}

// DetectFamily inspects a binary module's header and returns its family
// without decoding the body — the analog of reading a cubin's ELF flags.
func DetectFamily(data []byte) (sass.Family, error) {
	if len(data) < 6 || string(data[:4]) != magic {
		return 0, fmt.Errorf("encoding: not a GPU binary")
	}
	f := sass.Family(data[5])
	if f < sass.FamilyKepler || f > sass.FamilyAmpere {
		return 0, fmt.Errorf("encoding: unknown family byte %d", data[5])
	}
	return f, nil
}
