package sass

import (
	"fmt"
	"sort"
)

// The opcode table. The Volta-class set contains exactly 171 opcodes,
// matching the count the paper gives for the Volta ISA (Table III: "the
// Volta ISA contains 171 opcodes"). The roster follows NVIDIA's published
// SASS opcode listings; a tail of legacy graphics/system opcodes is retained
// in the Volta-class set (as compatibility listings do) so that the count is
// exact. Opcodes the simulator cannot execute carry SemNone and trap if
// reached; they still participate in opcode enumeration, classification, and
// encoding.
//
// NOTE: rows are appended in a fixed order; Op values are stable indexes
// (starting at 1) used by the per-family binary encodings.

type tableBuilder struct {
	infos  []OpInfo
	byName map[string]Op
}

func (b *tableBuilder) add(name string, cat Category, flags OpFlags, sem SemKind, space MemSpace, archs ArchMask, ndst uint8) {
	if _, dup := b.byName[name]; dup {
		panic("sass: duplicate opcode " + name)
	}
	b.infos = append(b.infos, OpInfo{
		Name: name, Cat: cat, Flags: flags, Sem: sem, Space: space, Archs: archs, NumDst: ndst,
	})
	b.byName[name] = Op(len(b.infos)) // Op 0 is invalid; first row is Op 1
}

// buildOpcodeTable constructs the full table. It runs once at package
// initialization (via the opTable variable below) and is pure.
func buildOpcodeTable() ([]OpInfo, map[string]Op) {
	b := &tableBuilder{byName: make(map[string]Op, 200)}
	const (
		gp   = FlagWritesGP
		pr   = FlagWritesPR
		ld   = FlagLoad
		st   = FlagStore
		f32  = FlagFP32
		f64  = FlagFP64
		ctl  = FlagControl
		barr = FlagBarrier
		pair = FlagPair
	)

	// --- FP32 (13) ---
	b.add("FADD", CatFP32, gp|f32, SemFAdd, SpaceNone, ArchAll, 1)
	b.add("FADD32I", CatFP32, gp|f32, SemFAdd, SpaceNone, ArchAll, 1)
	b.add("FCHK", CatFP32, pr|f32, SemFChk, SpaceNone, ArchAll, 1)
	b.add("FFMA", CatFP32, gp|f32, SemFFma, SpaceNone, ArchAll, 1)
	b.add("FFMA32I", CatFP32, gp|f32, SemFFma, SpaceNone, ArchAll, 1)
	b.add("FMNMX", CatFP32, gp|f32, SemFMnMx, SpaceNone, ArchAll, 1)
	b.add("FMUL", CatFP32, gp|f32, SemFMul, SpaceNone, ArchAll, 1)
	b.add("FMUL32I", CatFP32, gp|f32, SemFMul, SpaceNone, ArchAll, 1)
	b.add("FSEL", CatFP32, gp|f32, SemFSel, SpaceNone, archVP, 1)
	b.add("FSET", CatFP32, gp|f32, SemFSet, SpaceNone, ArchAll, 1)
	b.add("FSETP", CatFP32, pr|f32, SemFSetP, SpaceNone, ArchAll, 1)
	b.add("FSWZADD", CatFP32, gp|f32, SemNone, SpaceNone, ArchAll, 1)
	b.add("MUFU", CatFP32, gp|f32, SemMufu, SpaceNone, ArchAll, 1)

	// --- FP16 packed-half (9) ---
	b.add("HADD2", CatFP16, gp, SemHAdd2, SpaceNone, archVP|ArchPascal, 1)
	b.add("HADD2_32I", CatFP16, gp, SemHAdd2, SpaceNone, archVP, 1)
	b.add("HFMA2", CatFP16, gp, SemHFma2, SpaceNone, archVP|ArchPascal, 1)
	b.add("HFMA2_32I", CatFP16, gp, SemHFma2, SpaceNone, archVP, 1)
	b.add("HMUL2", CatFP16, gp, SemHMul2, SpaceNone, archVP|ArchPascal, 1)
	b.add("HMUL2_32I", CatFP16, gp, SemHMul2, SpaceNone, archVP, 1)
	b.add("HSET2", CatFP16, gp, SemNone, SpaceNone, archVP|ArchPascal, 1)
	b.add("HSETP2", CatFP16, pr, SemNone, SpaceNone, archVP|ArchPascal, 1)
	b.add("HMMA", CatFP16, gp, SemNone, SpaceNone, archVP, 1)

	// --- FP64 (4 Volta + 2 legacy pre-Volta) ---
	b.add("DADD", CatFP64, gp|f64|pair, SemDAdd, SpaceNone, ArchAll, 1)
	b.add("DFMA", CatFP64, gp|f64|pair, SemDFma, SpaceNone, ArchAll, 1)
	b.add("DMUL", CatFP64, gp|f64|pair, SemDMul, SpaceNone, ArchAll, 1)
	b.add("DSETP", CatFP64, pr|f64, SemDSetP, SpaceNone, ArchAll, 1)
	b.add("DMNMX", CatFP64, gp|f64|pair, SemDMnMx, SpaceNone, archPreV, 1)
	b.add("DSET", CatFP64, gp|f64, SemNone, SpaceNone, archPreV, 1)

	// --- Integer (28) ---
	b.add("BMSK", CatInteger, gp, SemBmsk, SpaceNone, archVP, 1)
	b.add("BREV", CatInteger, gp, SemBrev, SpaceNone, ArchAll, 1)
	b.add("FLO", CatInteger, gp, SemFlo, SpaceNone, ArchAll, 1)
	b.add("IABS", CatInteger, gp, SemIAbs, SpaceNone, ArchAll, 1)
	b.add("IADD", CatInteger, gp, SemIAdd, SpaceNone, ArchAll, 1)
	b.add("IADD3", CatInteger, gp, SemIAdd3, SpaceNone, ArchAll, 1)
	b.add("IADD32I", CatInteger, gp, SemIAdd, SpaceNone, ArchAll, 1)
	b.add("IDP", CatInteger, gp, SemNone, SpaceNone, archVP, 1)
	b.add("IDP4A", CatInteger, gp, SemNone, SpaceNone, archVP, 1)
	b.add("IMAD", CatInteger, gp, SemIMad, SpaceNone, ArchAll, 1)
	b.add("IMAD32I", CatInteger, gp, SemIMad, SpaceNone, ArchAll, 1)
	b.add("IMMA", CatInteger, gp, SemNone, SpaceNone, archVP, 1)
	b.add("IMNMX", CatInteger, gp, SemIMnMx, SpaceNone, ArchAll, 1)
	b.add("IMUL", CatInteger, gp, SemIMul, SpaceNone, ArchAll, 1)
	b.add("IMUL32I", CatInteger, gp, SemIMul, SpaceNone, ArchAll, 1)
	b.add("ISCADD", CatInteger, gp, SemISCAdd, SpaceNone, ArchAll, 1)
	b.add("ISCADD32I", CatInteger, gp, SemISCAdd, SpaceNone, ArchAll, 1)
	b.add("ISETP", CatInteger, pr, SemISetP, SpaceNone, ArchAll, 1)
	b.add("LEA", CatInteger, gp, SemLea, SpaceNone, archVP|ArchPascal|ArchMaxwell, 1)
	b.add("LOP", CatInteger, gp, SemLop, SpaceNone, ArchAll, 1)
	b.add("LOP3", CatInteger, gp, SemLop3, SpaceNone, ArchAll&^ArchKepler, 1)
	b.add("LOP32I", CatInteger, gp, SemLop, SpaceNone, ArchAll, 1)
	b.add("POPC", CatInteger, gp, SemPopc, SpaceNone, ArchAll, 1)
	b.add("SHF", CatInteger, gp, SemShf, SpaceNone, ArchAll, 1)
	b.add("SHL", CatInteger, gp, SemShl, SpaceNone, ArchAll, 1)
	b.add("SHR", CatInteger, gp, SemShr, SpaceNone, ArchAll, 1)
	b.add("VABSDIFF", CatInteger, gp, SemVAbsDiff, SpaceNone, ArchAll, 1)
	b.add("VABSDIFF4", CatInteger, gp, SemVAbsDiff, SpaceNone, archVP, 1)

	// --- Conversion (6) ---
	b.add("F2F", CatConversion, gp, SemF2F, SpaceNone, ArchAll, 1)
	b.add("F2I", CatConversion, gp, SemF2I, SpaceNone, ArchAll, 1)
	b.add("I2F", CatConversion, gp, SemI2F, SpaceNone, ArchAll, 1)
	b.add("I2I", CatConversion, gp, SemI2I, SpaceNone, ArchAll, 1)
	b.add("I2IP", CatConversion, gp, SemNone, SpaceNone, archVP, 1)
	b.add("FRND", CatConversion, gp, SemFrnd, SpaceNone, ArchAll, 1)

	// --- Movement (7) ---
	b.add("MOV", CatMovement, gp, SemMov, SpaceNone, ArchAll, 1)
	b.add("MOV32I", CatMovement, gp, SemMov, SpaceNone, ArchAll, 1)
	b.add("MOVM", CatMovement, gp, SemNone, SpaceNone, archVP, 1)
	b.add("PRMT", CatMovement, gp, SemPrmt, SpaceNone, ArchAll, 1)
	b.add("SEL", CatMovement, gp, SemSel, SpaceNone, ArchAll, 1)
	b.add("SGXT", CatMovement, gp, SemSgxt, SpaceNone, archVP, 1)
	b.add("SHFL", CatMovement, gp, SemShfl, SpaceNone, ArchAll, 1)

	// --- Predicate (4 modern + 3 legacy) ---
	b.add("PLOP3", CatPredicate, pr, SemPLop3, SpaceNone, archVP, 1)
	b.add("PSETP", CatPredicate, pr, SemPSetP, SpaceNone, ArchAll, 1)
	b.add("P2R", CatPredicate, gp, SemP2R, SpaceNone, ArchAll, 1)
	b.add("R2P", CatPredicate, pr, SemR2P, SpaceNone, ArchAll, 1)
	b.add("PSET", CatPredicate, gp, SemNone, SpaceNone, ArchAll, 1)
	b.add("CSET", CatPredicate, gp, SemNone, SpaceNone, archPreV, 1)
	b.add("CSETP", CatPredicate, pr, SemNone, SpaceNone, archPreV, 1)

	// --- Load/Store/Atomics (20) ---
	b.add("LD", CatLoadStore, gp|ld, SemLd, SpaceGeneric, ArchAll, 1)
	b.add("LDC", CatLoadStore, gp|ld, SemLdc, SpaceConst, ArchAll, 1)
	b.add("LDG", CatLoadStore, gp|ld, SemLd, SpaceGlobal, ArchAll, 1)
	b.add("LDL", CatLoadStore, gp|ld, SemLd, SpaceLocal, ArchAll, 1)
	b.add("LDS", CatLoadStore, gp|ld, SemLd, SpaceShared, ArchAll, 1)
	b.add("ST", CatLoadStore, st, SemSt, SpaceGeneric, ArchAll, 0)
	b.add("STG", CatLoadStore, st, SemSt, SpaceGlobal, ArchAll, 0)
	b.add("STL", CatLoadStore, st, SemSt, SpaceLocal, ArchAll, 0)
	b.add("STS", CatLoadStore, st, SemSt, SpaceShared, ArchAll, 0)
	b.add("MATCH", CatLoadStore, gp, SemMatch, SpaceNone, archVP, 1)
	b.add("QSPC", CatLoadStore, pr, SemNone, SpaceNone, archVP, 1)
	b.add("ATOM", CatLoadStore, gp|ld|st, SemAtom, SpaceGeneric, ArchAll, 1)
	b.add("ATOMS", CatLoadStore, gp|ld|st, SemAtom, SpaceShared, ArchAll, 1)
	b.add("ATOMG", CatLoadStore, gp|ld|st, SemAtom, SpaceGlobal, ArchAll, 1)
	b.add("RED", CatLoadStore, st, SemRed, SpaceGlobal, ArchAll, 0)
	b.add("CCTL", CatLoadStore, 0, SemNopLike, SpaceGlobal, ArchAll, 0)
	b.add("CCTLL", CatLoadStore, 0, SemNopLike, SpaceLocal, ArchAll, 0)
	b.add("ERRBAR", CatLoadStore, barr, SemNopLike, SpaceNone, archVP, 0)
	b.add("MEMBAR", CatLoadStore, barr, SemNopLike, SpaceNone, ArchAll, 0)
	b.add("CCTLT", CatLoadStore, 0, SemNopLike, SpaceNone, ArchAll, 0)

	// --- Texture (6 modern + 4 legacy sampling forms) ---
	b.add("TEX", CatTexture, gp|ld, SemNone, SpaceGlobal, ArchAll, 1)
	b.add("TLD", CatTexture, gp|ld, SemNone, SpaceGlobal, ArchAll, 1)
	b.add("TLD4", CatTexture, gp|ld, SemNone, SpaceGlobal, ArchAll, 1)
	b.add("TMML", CatTexture, gp, SemNone, SpaceNone, ArchAll, 1)
	b.add("TXD", CatTexture, gp|ld, SemNone, SpaceGlobal, ArchAll, 1)
	b.add("TXQ", CatTexture, gp, SemNone, SpaceNone, ArchAll, 1)
	b.add("TEXS", CatTexture, gp|ld, SemNone, SpaceGlobal, ArchAll, 1)
	b.add("TLDS", CatTexture, gp|ld, SemNone, SpaceGlobal, ArchAll, 1)
	b.add("TLD4S", CatTexture, gp|ld, SemNone, SpaceGlobal, ArchAll, 1)
	b.add("TXA", CatTexture, gp, SemNone, SpaceNone, ArchAll, 1)

	// --- Surface (9) ---
	b.add("SUATOM", CatSurface, gp|ld|st, SemNone, SpaceGlobal, ArchAll, 1)
	b.add("SULD", CatSurface, gp|ld, SemNone, SpaceGlobal, ArchAll, 1)
	b.add("SURED", CatSurface, st, SemNone, SpaceGlobal, ArchAll, 0)
	b.add("SUST", CatSurface, st, SemNone, SpaceGlobal, ArchAll, 0)
	b.add("SUCLAMP", CatSurface, gp, SemNone, SpaceNone, ArchAll, 1)
	b.add("SUBFM", CatSurface, gp, SemNone, SpaceNone, ArchAll, 1)
	b.add("SUEAU", CatSurface, gp, SemNone, SpaceNone, ArchAll, 1)
	b.add("SULDGA", CatSurface, gp|ld, SemNone, SpaceGlobal, ArchAll, 1)
	b.add("SUSTGA", CatSurface, st, SemNone, SpaceGlobal, ArchAll, 0)

	// --- Control (18 modern + 10 legacy) ---
	b.add("BMOV", CatControl, gp, SemNopLike, SpaceNone, archVP, 1)
	b.add("BPT", CatControl, ctl, SemBpt, SpaceNone, ArchAll, 0)
	b.add("BRA", CatControl, ctl, SemBra, SpaceNone, ArchAll, 0)
	b.add("BREAK", CatControl, ctl, SemNopLike, SpaceNone, archVP, 0)
	b.add("BRX", CatControl, ctl, SemBrx, SpaceNone, ArchAll, 0)
	b.add("BSSY", CatControl, ctl, SemNopLike, SpaceNone, archVP, 0)
	b.add("BSYNC", CatControl, ctl, SemNopLike, SpaceNone, archVP, 0)
	b.add("CALL", CatControl, ctl, SemCall, SpaceNone, ArchAll, 0)
	b.add("EXIT", CatControl, ctl, SemExit, SpaceNone, ArchAll, 0)
	b.add("JMP", CatControl, ctl, SemJmp, SpaceNone, ArchAll, 0)
	b.add("JMX", CatControl, ctl, SemBrx, SpaceNone, ArchAll, 0)
	b.add("KILL", CatControl, ctl, SemKill, SpaceNone, ArchAll, 0)
	b.add("NANOSLEEP", CatControl, 0, SemNopLike, SpaceNone, archVP, 0)
	b.add("RET", CatControl, ctl, SemRet, SpaceNone, ArchAll, 0)
	b.add("RPCMOV", CatControl, gp, SemNopLike, SpaceNone, archVP, 1)
	b.add("RTT", CatControl, ctl, SemNone, SpaceNone, ArchAll, 0)
	b.add("WARPSYNC", CatControl, barr, SemNopLike, SpaceNone, archVP, 0)
	b.add("YIELD", CatControl, 0, SemNopLike, SpaceNone, archVP, 0)
	b.add("SSY", CatControl, ctl, SemNopLike, SpaceNone, ArchAll, 0)
	b.add("PBK", CatControl, ctl, SemNopLike, SpaceNone, ArchAll, 0)
	b.add("PCNT", CatControl, ctl, SemNopLike, SpaceNone, ArchAll, 0)
	b.add("PEXIT", CatControl, ctl, SemNone, SpaceNone, ArchAll, 0)
	b.add("PRET", CatControl, ctl, SemNone, SpaceNone, ArchAll, 0)
	b.add("BRK", CatControl, ctl, SemNopLike, SpaceNone, ArchAll, 0)
	b.add("CONT", CatControl, ctl, SemNopLike, SpaceNone, ArchAll, 0)
	b.add("CAL", CatControl, ctl, SemCall, SpaceNone, ArchAll, 0)
	b.add("JCAL", CatControl, ctl, SemCall, SpaceNone, ArchAll, 0)
	b.add("PLONGJMP", CatControl, ctl, SemNone, SpaceNone, ArchAll, 0)

	// --- Misc / system (13 modern + legacy tail) ---
	b.add("B2R", CatMisc, gp, SemNone, SpaceNone, ArchAll, 1)
	b.add("BAR", CatMisc, barr, SemBar, SpaceNone, ArchAll, 0)
	b.add("CS2R", CatMisc, gp, SemCS2R, SpaceNone, ArchAll&^ArchKepler, 1)
	b.add("CSMTEST", CatMisc, 0, SemNone, SpaceNone, archVP, 0)
	b.add("DEPBAR", CatMisc, barr, SemNopLike, SpaceNone, ArchAll, 0)
	b.add("GETLMEMBASE", CatMisc, gp, SemNone, SpaceNone, archVP, 1)
	b.add("LEPC", CatMisc, gp, SemNone, SpaceNone, archVP, 1)
	b.add("NOP", CatMisc, 0, SemNop, SpaceNone, ArchAll, 0)
	b.add("PMTRIG", CatMisc, 0, SemNopLike, SpaceNone, ArchAll, 0)
	b.add("R2B", CatMisc, 0, SemNone, SpaceNone, ArchAll, 0)
	b.add("S2R", CatMisc, gp, SemS2R, SpaceNone, ArchAll, 1)
	b.add("SETCTAID", CatMisc, 0, SemNone, SpaceNone, archVP, 0)
	b.add("SETLMEMBASE", CatMisc, 0, SemNone, SpaceNone, archVP, 0)
	b.add("VOTE", CatMisc, gp|pr, SemVote, SpaceNone, ArchAll, 1)

	// --- Legacy graphics / video tail, retained in the Volta-class set ---
	b.add("AL2P", CatMisc, gp, SemNone, SpaceNone, ArchAll, 1)
	b.add("ALD", CatMisc, gp|ld, SemNone, SpaceGlobal, ArchAll, 1)
	b.add("AST", CatMisc, st, SemNone, SpaceGlobal, ArchAll, 0)
	b.add("IPA", CatMisc, gp|f32, SemNone, SpaceNone, ArchAll, 1)
	b.add("ISBERD", CatMisc, gp|ld, SemNone, SpaceGlobal, ArchAll, 1)
	b.add("OUT", CatMisc, gp, SemNone, SpaceNone, ArchAll, 1)
	b.add("PIXLD", CatMisc, gp, SemNone, SpaceNone, ArchAll, 1)
	b.add("VADD", CatInteger, gp, SemIAdd, SpaceNone, ArchAll, 1)
	b.add("VMAD", CatInteger, gp, SemIMad, SpaceNone, ArchAll, 1)
	b.add("VMNMX", CatInteger, gp, SemIMnMx, SpaceNone, ArchAll, 1)
	b.add("VSET", CatInteger, gp, SemNone, SpaceNone, ArchAll, 1)
	b.add("VSETP", CatInteger, pr, SemNone, SpaceNone, ArchAll, 1)
	b.add("VSHL", CatInteger, gp, SemShl, SpaceNone, ArchAll, 1)
	b.add("VSHR", CatInteger, gp, SemShr, SpaceNone, ArchAll, 1)
	b.add("XMAD", CatInteger, gp, SemIMad, SpaceNone, ArchAll, 1)
	b.add("BFE", CatInteger, gp, SemNone, SpaceNone, ArchAll, 1)
	b.add("BFI", CatInteger, gp, SemNone, SpaceNone, ArchAll, 1)
	b.add("RRO", CatFP32, gp|f32, SemNone, SpaceNone, ArchAll, 1)

	// --- Pre-Volta only (not counted in the Volta set) ---
	b.add("IMADSP", CatInteger, gp, SemNone, SpaceNone, ArchKepler, 1)
	b.add("FCMP", CatFP32, gp|f32, SemNone, SpaceNone, archPreV, 1)
	b.add("ICMP", CatInteger, gp, SemNone, SpaceNone, archPreV, 1)
	b.add("LDSLK", CatLoadStore, gp|ld, SemNone, SpaceShared, ArchKepler, 1)
	b.add("TEXDEPBAR", CatTexture, barr, SemNone, SpaceNone, ArchKepler, 0)
	b.add("STSCUL", CatLoadStore, st, SemNone, SpaceShared, ArchKepler, 0)

	// --- Ampere-only additions ---
	b.add("LDGSTS", CatLoadStore, ld|st, SemNone, SpaceGlobal, ArchAmpere, 0)
	b.add("LDSM", CatLoadStore, gp|ld, SemNone, SpaceShared, ArchAmpere, 1)
	b.add("BMMA", CatInteger, gp, SemNone, SpaceNone, ArchAmpere, 1)
	b.add("BRXU", CatControl, ctl, SemNone, SpaceNone, ArchAmpere, 0)
	b.add("JMXU", CatControl, ctl, SemNone, SpaceNone, ArchAmpere, 0)
	b.add("VOTEU", CatMisc, gp|pr, SemNone, SpaceNone, ArchAmpere, 1)
	b.add("HMNMX2", CatFP16, gp, SemNone, SpaceNone, ArchAmpere, 1)
	b.add("REDUX", CatMisc, gp, SemNone, SpaceNone, ArchAmpere, 1)

	return b.infos, b.byName
}

// opTable holds the rows; opByName maps spellings to Op values. Both are
// initialized once and never mutated afterwards.
var opTable, opByName = buildOpcodeTable()

// Info returns the table row for op. It panics on an invalid Op, which can
// only arise from corrupted instruction memory, not from parsing.
func (op Op) Info() *OpInfo {
	if op == 0 || int(op) > len(opTable) {
		panic(fmt.Sprintf("sass: invalid opcode %d", op))
	}
	return &opTable[op-1]
}

// String returns the opcode mnemonic.
func (op Op) String() string {
	if op == 0 || int(op) > len(opTable) {
		return fmt.Sprintf("OP(%d)", uint16(op))
	}
	return opTable[op-1].Name
}

// Valid reports whether op indexes a real table row.
func (op Op) Valid() bool { return op >= 1 && int(op) <= len(opTable) }

// LookupOp finds an opcode by mnemonic.
func LookupOp(name string) (Op, bool) {
	op, ok := opByName[name]
	return op, ok
}

// MustOp is LookupOp for known-good mnemonics; it panics on unknown names
// and is intended for package initialization and tests.
func MustOp(name string) Op {
	op, ok := opByName[name]
	if !ok {
		panic("sass: unknown opcode " + name)
	}
	return op
}

// NumOpcodes returns the total number of table rows across all families.
func NumOpcodes() int { return len(opTable) }

// OpcodeSet returns the opcodes present in family f, ordered by Op value.
// This is the opcode-id space of the permanent fault model (Table III).
func OpcodeSet(f Family) []Op {
	var ops []Op
	for i := range opTable {
		if opTable[i].Archs&f.Mask() != 0 {
			ops = append(ops, Op(i+1))
		}
	}
	return ops
}

// OpcodeCount returns the number of opcodes in family f. For Volta this is
// 171, matching the paper.
func OpcodeCount(f Family) int { return len(OpcodeSet(f)) }

// AllOpcodeNames returns every mnemonic in the table, sorted, for tooling.
func AllOpcodeNames() []string {
	names := make([]string, 0, len(opTable))
	for i := range opTable {
		names = append(names, opTable[i].Name)
	}
	sort.Strings(names)
	return names
}
