package sass

import "testing"

// TestEveryOpcodeInExactlyOnePrimaryGroup: the six primary groups partition
// the ISA.
func TestEveryOpcodeInExactlyOnePrimaryGroup(t *testing.T) {
	for i := 1; i <= NumOpcodes(); i++ {
		op := Op(i)
		n := 0
		for _, g := range PrimaryGroups() {
			if GroupContains(g, op) {
				n++
			}
		}
		if n != 1 {
			t.Errorf("%v belongs to %d primary groups, want exactly 1", op, n)
		}
	}
}

// TestClassificationExamples pins the classification of representative
// opcodes per the paper's group definitions.
func TestClassificationExamples(t *testing.T) {
	tests := map[string]Group{
		"DADD":  GroupFP64,
		"DMUL":  GroupFP64,
		"DFMA":  GroupFP64,
		"FADD":  GroupFP32,
		"FMUL":  GroupFP32,
		"FFMA":  GroupFP32,
		"MUFU":  GroupFP32,
		"LDG":   GroupLD, // reads memory
		"LDS":   GroupLD,
		"LDC":   GroupLD,
		"ATOMG": GroupLD, // atomic with result reads memory
		"ISETP": GroupPR, // writes predicate only
		"FSETP": GroupPR, // predicate-only wins over FP32
		"DSETP": GroupPR, // predicate-only wins over FP64
		"R2P":   GroupPR,
		"PLOP3": GroupPR,
		"STG":   GroupNODEST, // no destination register
		"BRA":   GroupNODEST,
		"EXIT":  GroupNODEST,
		"BAR":   GroupNODEST,
		"RED":   GroupNODEST,
		"NOP":   GroupNODEST,
		"IADD":  GroupOTHERS, // integer with GP destination
		"MOV":   GroupOTHERS,
		"S2R":   GroupOTHERS,
		"SHL":   GroupOTHERS,
		"F2I":   GroupOTHERS, // conversion, not FP arithmetic
	}
	for name, want := range tests {
		if got := ClassOf(MustOp(name)); got != want {
			t.Errorf("ClassOf(%s) = %v, want %v", name, got, want)
		}
	}
}

// TestUnionGroups: G_GPPR = all - G_NODEST; G_GP = all - G_NODEST - G_PR.
func TestUnionGroups(t *testing.T) {
	var all, nodest, pr, gppr, gp int
	for i := 1; i <= NumOpcodes(); i++ {
		op := Op(i)
		all++
		c := ClassOf(op)
		if c == GroupNODEST {
			nodest++
		}
		if c == GroupPR {
			pr++
		}
		if GroupContains(GroupGPPR, op) {
			gppr++
			if c == GroupNODEST {
				t.Errorf("%v is NODEST but in G_GPPR", op)
			}
		}
		if GroupContains(GroupGP, op) {
			gp++
			if c == GroupNODEST || c == GroupPR {
				t.Errorf("%v is %v but in G_GP", op, c)
			}
		}
	}
	if gppr != all-nodest {
		t.Errorf("|G_GPPR| = %d, want all-nodest = %d", gppr, all-nodest)
	}
	if gp != all-nodest-pr {
		t.Errorf("|G_GP| = %d, want all-nodest-pr = %d", gp, all-nodest-pr)
	}
}

func TestParseGroup(t *testing.T) {
	for g := GroupFP64; g <= GroupGP; g++ {
		byName, err := ParseGroup(g.String())
		if err != nil || byName != g {
			t.Errorf("ParseGroup(%q) = %v, %v", g.String(), byName, err)
		}
		byNum, err := ParseGroup(string('0' + byte(g)))
		if err != nil || byNum != g {
			t.Errorf("ParseGroup(%d) = %v, %v", g, byNum, err)
		}
	}
	for _, bad := range []string{"", "0", "9", "G_NOPE", "FP32"} {
		if _, err := ParseGroup(bad); err == nil {
			t.Errorf("ParseGroup(%q) succeeded", bad)
		}
	}
	if Group(0).Valid() || Group(9).Valid() {
		t.Error("out-of-range groups report valid")
	}
}
