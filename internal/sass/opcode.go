package sass

import "fmt"

// Op identifies an opcode; it is an index into the opcode table. Op 0 is
// invalid so the zero value of an Instr is recognizably uninitialized.
type Op uint16

// Category is the functional category of an opcode, used for reporting and
// for structuring the opcode table. It is distinct from Class, the
// fault-injection grouping.
type Category uint8

// Functional categories.
const (
	CatInvalid Category = iota
	CatFP32
	CatFP16
	CatFP64
	CatInteger
	CatConversion
	CatMovement
	CatPredicate
	CatLoadStore
	CatControl
	CatTexture
	CatSurface
	CatMisc
)

var categoryNames = [...]string{
	CatInvalid:    "invalid",
	CatFP32:       "fp32",
	CatFP16:       "fp16",
	CatFP64:       "fp64",
	CatInteger:    "integer",
	CatConversion: "conversion",
	CatMovement:   "movement",
	CatPredicate:  "predicate",
	CatLoadStore:  "load/store",
	CatControl:    "control",
	CatTexture:    "texture",
	CatSurface:    "surface",
	CatMisc:       "misc",
}

func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return fmt.Sprintf("Category(%d)", uint8(c))
}

// OpFlags describe architectural properties of an opcode that the classifier
// and the execution engine consume.
type OpFlags uint16

// Opcode property flags.
const (
	FlagWritesGP OpFlags = 1 << iota // writes a general-purpose register
	FlagWritesPR                     // writes a predicate register
	FlagLoad                         // reads from memory
	FlagStore                        // writes to memory
	FlagFP32                         // FP32 arithmetic
	FlagFP64                         // FP64 arithmetic
	FlagControl                      // changes control flow
	FlagBarrier                      // synchronization
	FlagPair                         // destination is an even/odd register pair (64-bit result)
)

// ArchMask is a bit set of the architecture families an opcode exists in.
type ArchMask uint8

// Architecture families, Kepler through Ampere, matching the families the
// paper lists NVBitFI as supporting.
const (
	ArchKepler ArchMask = 1 << iota
	ArchMaxwell
	ArchPascal
	ArchVolta
	ArchAmpere
)

// ArchAll marks an opcode present in every supported family.
const ArchAll = ArchKepler | ArchMaxwell | ArchPascal | ArchVolta | ArchAmpere

// archVP marks Volta-and-later opcodes.
const archVP = ArchVolta | ArchAmpere

// archPreV marks pre-Volta-only opcodes.
const archPreV = ArchKepler | ArchMaxwell | ArchPascal

// Family identifies a single architecture family.
type Family uint8

// Families, ordered oldest to newest. Values start at one.
const (
	FamilyKepler Family = iota + 1
	FamilyMaxwell
	FamilyPascal
	FamilyVolta
	FamilyAmpere
)

var familyNames = [...]string{
	FamilyKepler:  "Kepler",
	FamilyMaxwell: "Maxwell",
	FamilyPascal:  "Pascal",
	FamilyVolta:   "Volta",
	FamilyAmpere:  "Ampere",
}

func (f Family) String() string {
	if int(f) < len(familyNames) && f >= FamilyKepler {
		return familyNames[f]
	}
	return fmt.Sprintf("Family(%d)", uint8(f))
}

// Mask returns the single-family ArchMask bit for f.
func (f Family) Mask() ArchMask { return 1 << (f - 1) }

// Families lists all supported families, oldest first.
func Families() []Family {
	return []Family{FamilyKepler, FamilyMaxwell, FamilyPascal, FamilyVolta, FamilyAmpere}
}

// SemKind selects the execution semantics of an opcode. Many opcodes share
// semantics and differ only in operand form or encoding (e.g. FADD and
// FADD32I); opcodes with SemNone are architecturally defined but not
// executable by the simulator and trap if reached.
type SemKind uint8

// Semantic kinds.
const (
	SemNone SemKind = iota
	SemFAdd
	SemFMul
	SemFFma
	SemFMnMx
	SemFSel
	SemFSet
	SemFSetP
	SemFChk
	SemMufu
	SemDAdd
	SemDMul
	SemDFma
	SemDMnMx
	SemDSetP
	SemHAdd2
	SemHMul2
	SemHFma2
	SemIAdd
	SemIAdd3
	SemIMad
	SemIMul
	SemIMnMx
	SemIAbs
	SemISetP
	SemISCAdd
	SemLea
	SemLop  // two-input logic op, .AND/.OR/.XOR/.PASS
	SemLop3 // three-input lookup-table logic
	SemShl
	SemShr
	SemShf
	SemPopc
	SemFlo
	SemBrev
	SemBmsk
	SemSgxt
	SemVAbsDiff
	SemSel
	SemPrmt
	SemMov
	SemS2R
	SemCS2R
	SemShfl
	SemVote
	SemP2R
	SemR2P
	SemPSetP
	SemPLop3
	SemF2I
	SemI2F
	SemF2F
	SemI2I
	SemFrnd
	SemLd      // memory load; space from opcode, width from modifier
	SemSt      // memory store
	SemLdc     // constant-bank load
	SemAtom    // atomic read-modify-write with result
	SemRed     // reduction (atomic without result)
	SemBar     // block barrier
	SemNopLike // MEMBAR, DEPBAR, WARPSYNC, YIELD, NANOSLEEP, fences: no-ops here
	SemNop
	SemBra
	SemBrx
	SemJmp
	SemExit
	SemCall
	SemRet
	SemKill
	SemBpt
	SemMatch
)

// MemSpace is the address space a load/store opcode targets.
type MemSpace uint8

// Address spaces.
const (
	SpaceNone MemSpace = iota
	SpaceGlobal
	SpaceShared
	SpaceLocal
	SpaceConst
	SpaceGeneric // LD/ST: resolved as global in this model
)

// OpInfo is the opcode-table row: static properties of one opcode.
type OpInfo struct {
	Name  string
	Cat   Category
	Flags OpFlags
	Sem   SemKind
	Space MemSpace // for load/store/atomic kinds
	Archs ArchMask
	// NumDst is the number of destination operands in assembly form.
	NumDst uint8
}

// WritesGP reports whether the opcode writes a general-purpose register.
func (oi *OpInfo) WritesGP() bool { return oi.Flags&FlagWritesGP != 0 }

// WritesPR reports whether the opcode writes a predicate register.
func (oi *OpInfo) WritesPR() bool { return oi.Flags&FlagWritesPR != 0 }

// HasDest reports whether the opcode writes any destination register.
func (oi *OpInfo) HasDest() bool { return oi.Flags&(FlagWritesGP|FlagWritesPR) != 0 }

// IsLoad reports whether the opcode reads memory into a register.
func (oi *OpInfo) IsLoad() bool { return oi.Flags&FlagLoad != 0 }

// IsControl reports whether the opcode can redirect control flow.
func (oi *OpInfo) IsControl() bool { return oi.Flags&FlagControl != 0 }

// In reports whether the opcode exists in family f.
func (oi *OpInfo) In(f Family) bool { return oi.Archs&f.Mask() != 0 }
