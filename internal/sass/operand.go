package sass

import (
	"fmt"
	"strconv"
	"strings"
)

// OperandKind discriminates the Operand union.
type OperandKind uint8

// Operand kinds. Values start at one so the zero value is recognizably
// "no operand".
const (
	OpdNone    OperandKind = iota
	OpdReg                 // general-purpose register
	OpdPred                // predicate register (possibly negated)
	OpdImm                 // 32-bit immediate
	OpdMem                 // memory reference [Rn + off]
	OpdConst               // constant-bank reference c0[off]
	OpdSpecial             // special register (S2R source)
	OpdLabel               // branch target, resolved to an instruction index
)

// Operand is one instruction operand. Kind selects which fields are
// meaningful; the struct is kept flat (rather than an interface) so that a
// decoded kernel is a contiguous, allocation-light slice of instructions.
type Operand struct {
	Kind OperandKind

	// Neg marks a negated source (e.g. "-R3"): floating-point semantics
	// flip the sign bit, integer semantics take the two's complement.
	Neg bool

	Reg    RegID      // OpdReg, OpdMem (address base)
	Pred   PredRef    // OpdPred
	Imm    uint32     // OpdImm
	Off    int32      // OpdMem, OpdConst byte offset
	Bank   uint8      // OpdConst bank (only bank 0 is populated today)
	SReg   SpecialReg // OpdSpecial
	Target int32      // OpdLabel: resolved instruction index

	// Sym holds the unresolved label or parameter name between parsing and
	// resolution; it is retained afterwards for disassembly.
	Sym string
}

// Convenience constructors, used by tests and by programs that build kernels
// without going through the assembler.

// R returns a register operand.
func R(r RegID) Operand { return Operand{Kind: OpdReg, Reg: r} }

// P returns a predicate operand.
func P(p PredID) Operand { return Operand{Kind: OpdPred, Pred: PredRef{Pred: p}} }

// NotP returns a negated predicate operand.
func NotP(p PredID) Operand { return Operand{Kind: OpdPred, Pred: PredRef{Pred: p, Neg: true}} }

// Imm returns a 32-bit immediate operand.
func Imm(v uint32) Operand { return Operand{Kind: OpdImm, Imm: v} }

// ImmF returns an immediate operand holding the bit pattern of a float32.
func ImmF(f float32) Operand { return Operand{Kind: OpdImm, Imm: f32bits(f)} }

// Mem returns a memory operand [base + off].
func Mem(base RegID, off int32) Operand { return Operand{Kind: OpdMem, Reg: base, Off: off} }

// C0 returns a bank-0 constant operand c0[off].
func C0(off int32) Operand { return Operand{Kind: OpdConst, Bank: 0, Off: off} }

// SR returns a special-register operand.
func SR(s SpecialReg) Operand { return Operand{Kind: OpdSpecial, SReg: s} }

// Label returns an unresolved label operand; the assembler resolves it.
func Label(name string) Operand { return Operand{Kind: OpdLabel, Target: -1, Sym: name} }

// IsReg reports whether the operand is a general-purpose register.
func (o Operand) IsReg() bool { return o.Kind == OpdReg }

// IsPred reports whether the operand is a predicate register.
func (o Operand) IsPred() bool { return o.Kind == OpdPred }

// NegReg returns a negated register source operand.
func NegReg(r RegID) Operand { return Operand{Kind: OpdReg, Reg: r, Neg: true} }

// String renders the operand in assembly syntax.
func (o Operand) String() string {
	if o.Neg {
		oo := o
		oo.Neg = false
		return "-" + oo.String()
	}
	switch o.Kind {
	case OpdNone:
		return "<none>"
	case OpdReg:
		return o.Reg.String()
	case OpdPred:
		return o.Pred.String()
	case OpdImm:
		return "0x" + strconv.FormatUint(uint64(o.Imm), 16)
	case OpdMem:
		if o.Off == 0 {
			return "[" + o.Reg.String() + "]"
		}
		if o.Off < 0 {
			return fmt.Sprintf("[%s-0x%x]", o.Reg, -o.Off)
		}
		return fmt.Sprintf("[%s+0x%x]", o.Reg, o.Off)
	case OpdConst:
		if o.Sym != "" {
			return fmt.Sprintf("c%d[%s]", o.Bank, o.Sym)
		}
		return fmt.Sprintf("c%d[0x%x]", o.Bank, o.Off)
	case OpdSpecial:
		return o.SReg.String()
	case OpdLabel:
		if o.Sym != "" {
			return o.Sym
		}
		return "@" + strconv.Itoa(int(o.Target))
	default:
		return fmt.Sprintf("<bad operand kind %d>", o.Kind)
	}
}

// parseOperand parses one operand in assembly syntax. Parameter names inside
// c0[...] are resolved against params; label operands are left unresolved.
func parseOperand(s string, params map[string]int32) (Operand, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Operand{}, fmt.Errorf("sass: empty operand")
	}
	// A leading '-' on a register or constant operand marks source negation;
	// a leading '-' on a digit is a negative immediate, handled below.
	if s[0] == '-' && len(s) > 1 && (s[1] == 'R' || s[1] == 'c') {
		o, err := parseOperand(s[1:], params)
		if err != nil {
			return Operand{}, err
		}
		o.Neg = true
		return o, nil
	}
	switch {
	case s == "RZ" || (s[0] == 'R' && len(s) > 1 && isDigits(s[1:])):
		r, err := ParseReg(s)
		if err != nil {
			return Operand{}, err
		}
		return R(r), nil
	case s == "PT" || s == "!PT" || strings.HasPrefix(s, "P") && len(s) == 2 && s[1] >= '0' && s[1] <= '6',
		strings.HasPrefix(s, "!P"):
		p, err := ParsePredRef(s)
		if err != nil {
			return Operand{}, err
		}
		return Operand{Kind: OpdPred, Pred: p}, nil
	case strings.HasPrefix(s, "SR_"):
		sr, err := ParseSpecialReg(s)
		if err != nil {
			return Operand{}, err
		}
		return SR(sr), nil
	case strings.HasPrefix(s, "["):
		return parseMemOperand(s)
	case strings.HasPrefix(s, "c0[") || strings.HasPrefix(s, "c["):
		return parseConstOperand(s, params)
	case s[0] == '-' || s[0] >= '0' && s[0] <= '9':
		v, err := parseImm(s)
		if err != nil {
			return Operand{}, err
		}
		return Imm(v), nil
	default:
		// Anything else is a label reference (branch target).
		if !isIdent(s) {
			return Operand{}, fmt.Errorf("sass: cannot parse operand %q", s)
		}
		return Label(s), nil
	}
}

func parseMemOperand(s string) (Operand, error) {
	if !strings.HasSuffix(s, "]") {
		return Operand{}, fmt.Errorf("sass: unterminated memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	base := inner
	var off int64
	var err error
	if i := strings.IndexAny(inner, "+-"); i > 0 {
		base = inner[:i]
		off, err = strconv.ParseInt(strings.Replace(inner[i:], "+", "", 1), 0, 33)
		if err != nil {
			return Operand{}, fmt.Errorf("sass: bad memory offset in %q: %v", s, err)
		}
	}
	r, err := ParseReg(strings.TrimSpace(base))
	if err != nil {
		return Operand{}, fmt.Errorf("sass: bad memory base in %q: %v", s, err)
	}
	return Mem(r, int32(off)), nil
}

func parseConstOperand(s string, params map[string]int32) (Operand, error) {
	rest := strings.TrimPrefix(strings.TrimPrefix(s, "c0["), "c[")
	if !strings.HasSuffix(rest, "]") {
		return Operand{}, fmt.Errorf("sass: unterminated constant operand %q", s)
	}
	inner := strings.TrimSuffix(rest, "]")
	if off, ok := params[inner]; ok {
		o := C0(off)
		o.Sym = inner
		return o, nil
	}
	if off, ok := builtinConstOffsets[inner]; ok {
		o := C0(off)
		o.Sym = inner
		return o, nil
	}
	v, err := strconv.ParseInt(inner, 0, 33)
	if err != nil {
		return Operand{}, fmt.Errorf("sass: unknown constant symbol or offset %q", inner)
	}
	return C0(int32(v)), nil
}

// parseImm accepts decimal, hex (0x..), negative values, and float literals
// suffixed with 'f' (stored as float32 bit patterns).
func parseImm(s string) (uint32, error) {
	isHex := strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") ||
		strings.HasPrefix(s, "-0x") || strings.HasPrefix(s, "-0X")
	if !isHex && strings.HasSuffix(s, "f") && strings.ContainsAny(s, ".eE") {
		f, err := strconv.ParseFloat(strings.TrimSuffix(s, "f"), 32)
		if err != nil {
			return 0, fmt.Errorf("sass: bad float immediate %q: %v", s, err)
		}
		return f32bits(float32(f)), nil
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("sass: bad immediate %q: %v", s, err)
	}
	if v < -(1<<31) || v > (1<<32)-1 {
		return 0, fmt.Errorf("sass: immediate %q out of 32-bit range", s)
	}
	return uint32(v), nil
}

func isDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return len(s) > 0
}

func isIdent(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == '.' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
			i > 0 && c >= '0' && c <= '9'
		if !ok {
			return false
		}
	}
	return len(s) > 0
}
