package sass

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAssembleBasic(t *testing.T) {
	src := `
// a comment
.kernel k1
.param n
.param ptr
.shared 256
start:
    S2R R0, SR_TID.X          // trailing comment
    ISETP.GE.AND P0, R0, c0[n], PT
@P0 EXIT
    SHL R1, R0, 0x2
    IADD R2, R1, c0[ptr]
    LDG.32 R3, [R2]
    FADD R4, R3, -R3
    STG.32 [R2], R4
@!P0 BRA start
    EXIT
`
	p, err := Assemble("m", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Kernels) != 1 {
		t.Fatalf("got %d kernels", len(p.Kernels))
	}
	k := p.Kernels[0]
	if k.Name != "k1" || k.SharedBytes != 256 {
		t.Fatalf("kernel header wrong: %+v", k)
	}
	if len(k.Params) != 2 || k.Params[0] != "n" {
		t.Fatalf("params wrong: %v", k.Params)
	}
	off, ok := k.ParamOffset("ptr")
	if !ok || off != ParamBase+4 {
		t.Fatalf("ParamOffset(ptr) = %d, %v", off, ok)
	}
	if idx, ok := k.LabelIndex("start"); !ok || idx != 0 {
		t.Fatalf("label start = %d, %v", idx, ok)
	}
	if len(k.Instrs) != 10 {
		t.Fatalf("got %d instructions", len(k.Instrs))
	}
	// Guard parsing.
	if k.Instrs[2].Op != MustOp("EXIT") || k.Instrs[2].Guard != (PredRef{Pred: 0}) {
		t.Fatalf("guarded EXIT parsed wrong: %+v", k.Instrs[2])
	}
	if k.Instrs[8].Guard != (PredRef{Pred: 0, Neg: true}) {
		t.Fatalf("negated guard parsed wrong: %+v", k.Instrs[8])
	}
	// Branch target resolution.
	if tgt := k.Instrs[8].Src[0]; tgt.Kind != OpdLabel || tgt.Target != 0 {
		t.Fatalf("branch target unresolved: %+v", tgt)
	}
	// Negated source.
	if !k.Instrs[6].Src[1].Neg {
		t.Fatalf("negated register source lost: %+v", k.Instrs[6])
	}
	// Memory width modifier.
	if k.Instrs[5].Mods.MemWidth() != 4 {
		t.Fatalf("LDG.32 width = %d", k.Instrs[5].Mods.MemWidth())
	}
}

func TestAssembleErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{"empty", "", "no kernels"},
		{"instr outside kernel", "MOV R0, R1\n", "outside kernel"},
		{"param outside kernel", ".param x\n", "outside kernel"},
		{"shared outside kernel", ".shared 4\n", "outside kernel"},
		{"label outside kernel", "foo:\n", "outside kernel"},
		{"unknown opcode", ".kernel k\nFROB R1, R2\n", "unknown opcode"},
		{"bad register", ".kernel k\nMOV R999, R1\n", "invalid register"},
		{"undefined label", ".kernel k\nBRA nowhere\n", "undefined label"},
		{"duplicate label", ".kernel k\nx:\nx:\nEXIT\n", "duplicate label"},
		{"duplicate param", ".kernel k\n.param a\n.param a\n", "duplicate parameter"},
		{"duplicate kernel", ".kernel k\nEXIT\n.kernel k\nEXIT\n", "line 3: duplicate kernel"},
		{"bad shared", ".kernel k\n.shared owl\n", "bad .shared"},
		{"kernel no name", ".kernel\n", "requires a name"},
		{"bad modifier", ".kernel k\nFADD.WAT R1, R2, R3\n", "unsupported modifier"},
		{"guard only", ".kernel k\n@P0\n", "guard with no instruction"},
		{"bad const symbol", ".kernel k\nMOV R1, c0[zap]\n", "unknown constant"},
		{"unterminated mem", ".kernel k\nLDG.32 R1, [R2\n", "unterminated memory"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Assemble("m", tc.src)
			if err == nil {
				t.Fatalf("Assemble succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble did not panic on bad source")
		}
	}()
	MustAssemble("m", "BROKEN")
}

func TestModifierParsing(t *testing.T) {
	tests := []struct {
		line  string
		check func(in *Instr) bool
	}{
		{"LDG.64 R2, [R4]", func(in *Instr) bool { return in.Mods.MemWidth() == 8 }},
		{"LDG.128 R4, [R8]", func(in *Instr) bool { return in.Mods.MemWidth() == 16 }},
		{"LDG.8.S8 R2, [R4]", func(in *Instr) bool { return in.Mods.MemWidth() == 1 && in.Mods.Signed }},
		{"ISETP.LT.U32.AND P0, R1, R2, PT", func(in *Instr) bool {
			return in.Mods.Cmp == CmpLT && in.Mods.Unsigned && in.Mods.Bool == BoolAnd
		}},
		{"FSETP.NAN.OR P1, R1, R2, P0", func(in *Instr) bool {
			return in.Mods.Cmp == CmpNan && in.Mods.Bool == BoolOr
		}},
		{"MUFU.RCP R1, R2", func(in *Instr) bool { return in.Mods.Mufu == MufuRcp }},
		{"MUFU.SQRT R1, R2", func(in *Instr) bool { return in.Mods.Mufu == MufuSqrt }},
		{"SHFL.DOWN R1, R2, 0x4, 0x1f", func(in *Instr) bool { return in.Mods.Shfl == ShflDown }},
		{"SHFL.BFLY R1, R2, 0x1, 0x1f", func(in *Instr) bool { return in.Mods.Shfl == ShflBfly }},
		{"ATOMG.ADD.F32 R1, [R2], R3", func(in *Instr) bool { return in.Mods.Atom == AtomAdd && in.Mods.Float }},
		{"ATOMG.CAS R1, [R2], R3, R4", func(in *Instr) bool { return in.Mods.Atom == AtomCAS }},
		{"LOP.XOR R1, R2, R3", func(in *Instr) bool { return in.Mods.Logic == LogicXor }},
		{"LOP.PASS_B R1, R2, R3", func(in *Instr) bool { return in.Mods.Logic == LogicPassB }},
		{"SHF.R R1, R2, R3, R4", func(in *Instr) bool { return in.Mods.Right }},
		{"IMAD.HI R1, R2, R3, R4", func(in *Instr) bool { return in.Mods.High }},
		{"F2I.TRUNC R1, R2", func(in *Instr) bool { return in.Mods.FtoI.Trunc }},
		{"BAR.SYNC", func(in *Instr) bool { return in.Mods.Sync }},
		{"SHR.U32 R1, R2, 0x4", func(in *Instr) bool { return in.Mods.Unsigned }},
		// Ignorable modifiers parse without error and set nothing.
		{"LDG.E.32.STRONG.GPU R1, [R2]", func(in *Instr) bool { return in.Mods.MemWidth() == 4 }},
	}
	for _, tc := range tests {
		p, err := Assemble("m", ".kernel k\n"+tc.line+"\nEXIT\n")
		if err != nil {
			t.Errorf("%q: %v", tc.line, err)
			continue
		}
		if !tc.check(&p.Kernels[0].Instrs[0]) {
			t.Errorf("%q: modifier check failed: %+v", tc.line, p.Kernels[0].Instrs[0])
		}
	}
}

func TestImmediateForms(t *testing.T) {
	tests := []struct {
		lit  string
		want uint32
	}{
		{"0", 0},
		{"42", 42},
		{"0x10", 16},
		{"-1", 0xffffffff},
		{"-0x8", 0xfffffff8},
		{"1.5f", 0x3fc00000},
		{"-2.0f", 0xc0000000},
		{"1e2f", 0x42c80000},
		{"4294967295", 0xffffffff},
	}
	for _, tc := range tests {
		p, err := Assemble("m", ".kernel k\nMOV R1, "+tc.lit+"\nEXIT\n")
		if err != nil {
			t.Errorf("MOV R1, %s: %v", tc.lit, err)
			continue
		}
		if got := p.Kernels[0].Instrs[0].Src[0].Imm; got != tc.want {
			t.Errorf("immediate %q = 0x%x, want 0x%x", tc.lit, got, tc.want)
		}
	}
	for _, bad := range []string{"99999999999999999999", "1.5.5f"} {
		if _, err := Assemble("m", ".kernel k\nMOV R1, "+bad+"\nEXIT\n"); err == nil {
			t.Errorf("immediate %q parsed, want error", bad)
		}
	}
}

func TestBuiltinConstants(t *testing.T) {
	src := `
.kernel k
    MOV R0, c0[NTID_X]
    MOV R1, c0[NCTAID_Z]
    MOV R2, c0[0x160]
    EXIT
`
	p, err := Assemble("m", src)
	if err != nil {
		t.Fatal(err)
	}
	k := p.Kernels[0]
	if k.Instrs[0].Src[0].Off != ConstNtidX {
		t.Errorf("NTID_X offset = %d", k.Instrs[0].Src[0].Off)
	}
	if k.Instrs[1].Src[0].Off != ConstNctaidZ {
		t.Errorf("NCTAID_Z offset = %d", k.Instrs[1].Src[0].Off)
	}
	if k.Instrs[2].Src[0].Off != ParamBase {
		t.Errorf("raw constant offset = %d", k.Instrs[2].Src[0].Off)
	}
}

// TestDisassembleRoundTrip: Disassemble followed by Assemble reproduces the
// program, for every workload kernel in the repository's test corpus here.
func TestDisassembleRoundTrip(t *testing.T) {
	src := `
.kernel alpha
.param n
.param ptr
loop:
    S2R R0, SR_TID.X
    IMAD R0, R0, R0, R0
    ISETP.LT.AND P1, R0, c0[n], PT
@P1 BRA loop
    LDG.64 R2, [R4+0x10]
    STG.32 [R4-0x4], R2
    SHFL.IDX R5, R6, 0x3, 0x1f
    MUFU.COS R7, R8
    FADD R9, R10, -R11
    EXIT

.kernel beta
.shared 128
    LDS.32 R1, [RZ]
    BAR.SYNC
    ATOMS.ADD R2, [R1], R2
    EXIT
`
	p1, err := Assemble("m", src)
	if err != nil {
		t.Fatal(err)
	}
	text := Disassemble(p1)
	p2, err := Assemble("m", text)
	if err != nil {
		t.Fatalf("re-assembling disassembly: %v\n%s", err, text)
	}
	if !programsEquivalent(p1, p2) {
		t.Fatalf("round trip changed the program:\n--- first\n%s\n--- second\n%s",
			text, Disassemble(p2))
	}
}

// TestDisassembleRoundTripRandom: property test over randomly generated
// programs.
func TestDisassembleRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		p1 := randomProgram(rng)
		text := Disassemble(p1)
		p2, err := Assemble(p1.Name, text)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, text)
		}
		if !programsEquivalent(p1, p2) {
			t.Fatalf("trial %d: round trip changed program:\n%s", trial, text)
		}
	}
}

// randomProgram builds a small random (non-executable) program from
// register/imm/const/mem operand forms.
func randomProgram(rng *rand.Rand) *Program {
	ops := []string{"FADD", "FMUL", "IADD", "MOV", "SHL", "LOP", "IMAD", "SEL", "POPC", "BREV"}
	nk := 1 + rng.Intn(3)
	p := &Program{Name: "rand"}
	for ki := 0; ki < nk; ki++ {
		k := &Kernel{Name: "k" + string(rune('a'+ki)), labels: map[string]int{}}
		n := 1 + rng.Intn(12)
		for i := 0; i < n; i++ {
			op := MustOp(ops[rng.Intn(len(ops))])
			nsrc := 2
			if op.Info().Sem == SemMov || op.Info().Sem == SemPopc || op.Info().Sem == SemBrev {
				nsrc = 1
			}
			if op.Info().Sem == SemIMad || op.Info().Sem == SemSel {
				nsrc = 3
			}
			operands := []Operand{R(RegID(rng.Intn(32)))}
			for s := 0; s < nsrc; s++ {
				switch rng.Intn(4) {
				case 0:
					o := R(RegID(rng.Intn(32)))
					o.Neg = rng.Intn(4) == 0
					operands = append(operands, o)
				case 1:
					operands = append(operands, Imm(rng.Uint32()))
				case 2:
					operands = append(operands, C0(int32(4*rng.Intn(64))))
				default:
					if op.Info().Sem == SemSel && s == 2 {
						operands = append(operands, P(PredID(rng.Intn(7))))
					} else {
						operands = append(operands, R(RegID(rng.Intn(32))))
					}
				}
			}
			in := NewInstr(op, operands...)
			if rng.Intn(5) == 0 {
				in.Guard = PredRef{Pred: PredID(rng.Intn(7)), Neg: rng.Intn(2) == 0}
			}
			if op.Info().Sem == SemLop {
				in.Mods.Logic = LogicOp(1 + rng.Intn(4))
			}
			k.Instrs = append(k.Instrs, in)
		}
		k.Instrs = append(k.Instrs, NewInstr(MustOp("EXIT")))
		p.Kernels = append(p.Kernels, k)
	}
	return p
}

// programsEquivalent compares programs ignoring symbolic leftovers (Sym
// fields differ between constructed and parsed operands).
func programsEquivalent(a, b *Program) bool {
	if len(a.Kernels) != len(b.Kernels) {
		return false
	}
	for i := range a.Kernels {
		ka, kb := a.Kernels[i], b.Kernels[i]
		if ka.Name != kb.Name || ka.SharedBytes != kb.SharedBytes ||
			len(ka.Params) != len(kb.Params) || len(ka.Instrs) != len(kb.Instrs) {
			return false
		}
		for j := range ka.Params {
			if ka.Params[j] != kb.Params[j] {
				return false
			}
		}
		for j := range ka.Instrs {
			if !instrEquivalent(&ka.Instrs[j], &kb.Instrs[j]) {
				return false
			}
		}
	}
	return true
}

func instrEquivalent(a, b *Instr) bool {
	if a.Op != b.Op || a.Guard != b.Guard || a.Mods != b.Mods ||
		len(a.Dst) != len(b.Dst) || len(a.Src) != len(b.Src) {
		return false
	}
	for i := range a.Dst {
		if !operandEquivalent(a.Dst[i], b.Dst[i]) {
			return false
		}
	}
	for i := range a.Src {
		if !operandEquivalent(a.Src[i], b.Src[i]) {
			return false
		}
	}
	return true
}

func operandEquivalent(a, b Operand) bool {
	a.Sym, b.Sym = "", ""
	return a == b
}

// TestQuickOperandImmRoundTrip: any uint32 immediate survives print/parse.
func TestQuickOperandImmRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		o := Imm(v)
		parsed, err := parseOperand(o.String(), nil)
		return err == nil && parsed.Kind == OpdImm && parsed.Imm == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickMemOperandRoundTrip: memory operands with arbitrary offsets
// survive print/parse.
func TestQuickMemOperandRoundTrip(t *testing.T) {
	f := func(reg uint8, off int32) bool {
		r := RegID(reg)
		if reg == 255 {
			r = RZ
		}
		o := Mem(r, off)
		parsed, err := parseOperand(o.String(), nil)
		return err == nil && parsed.Kind == OpdMem && parsed.Reg == r && parsed.Off == off
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
