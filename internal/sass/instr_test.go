package sass

import "testing"

func TestNewInstrSplitsOperands(t *testing.T) {
	in := NewInstr(MustOp("FADD"), R(1), R(2), R(3))
	if len(in.Dst) != 1 || len(in.Src) != 2 {
		t.Fatalf("FADD split %d/%d", len(in.Dst), len(in.Src))
	}
	if !in.Guard.True() {
		t.Fatal("default guard is not @PT")
	}
	st := NewInstr(MustOp("STG"), Mem(4, 0), R(5))
	if len(st.Dst) != 0 || len(st.Src) != 2 {
		t.Fatalf("STG split %d/%d", len(st.Dst), len(st.Src))
	}
	if st.HasDest() {
		t.Fatal("STG reports a destination")
	}
	setp := NewInstr(MustOp("ISETP"), P(0), R(1), Imm(2), P(7))
	if !setp.HasDest() || !setp.Dst[0].IsPred() {
		t.Fatalf("ISETP destination wrong: %+v", setp)
	}
}

func TestKernelClone(t *testing.T) {
	p := MustAssemble("m", `
.kernel k
.param a
top:
    MOV R1, c0[a]
    IADD R1, R1, 0x1
    BRA top
`)
	k := p.Kernels[0]
	c := k.Clone()
	if c == k {
		t.Fatal("clone aliases the original")
	}
	// Mutating the clone's operand must not touch the original.
	c.Instrs[1].Src[1].Imm = 99
	if k.Instrs[1].Src[1].Imm == 99 {
		t.Fatal("clone shares operand storage")
	}
	c.Params[0] = "z"
	if k.Params[0] != "a" {
		t.Fatal("clone shares the params slice")
	}
	if idx, ok := c.LabelIndex("top"); !ok || idx != 0 {
		t.Fatal("clone lost labels")
	}
}

func TestInstrString(t *testing.T) {
	tests := []struct {
		in   Instr
		want string
	}{
		{NewInstr(MustOp("FADD"), R(1), R(2), NegReg(3)), "FADD R1, R2, -R3"},
		{NewInstr(MustOp("EXIT")), "EXIT"},
		{NewInstr(MustOp("STG"), Mem(4, -8), R(5)), "STG [R4-0x8], R5"},
		{NewInstr(MustOp("MOV"), R(1), C0(0x160)), "MOV R1, c0[0x160]"},
		{NewInstr(MustOp("S2R"), R(0), SR(SRTidX)), "S2R R0, SR_TID.X"},
	}
	for _, tc := range tests {
		if got := tc.in.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
	guarded := NewInstr(MustOp("EXIT"))
	guarded.Guard = PredRef{Pred: 2, Neg: true}
	if got := guarded.String(); got != "@!P2 EXIT" {
		t.Errorf("guarded String() = %q", got)
	}
}

func TestProgramKernelLookup(t *testing.T) {
	p := MustAssemble("m", ".kernel a\nEXIT\n.kernel b\nEXIT\n")
	if _, ok := p.Kernel("a"); !ok {
		t.Fatal("kernel a missing")
	}
	if _, ok := p.Kernel("nope"); ok {
		t.Fatal("phantom kernel found")
	}
}

func TestBoolOpApply(t *testing.T) {
	if !BoolAnd.Apply(true, true) || BoolAnd.Apply(true, false) {
		t.Error("AND wrong")
	}
	if !BoolOr.Apply(false, true) || BoolOr.Apply(false, false) {
		t.Error("OR wrong")
	}
	if !BoolXor.Apply(true, false) || BoolXor.Apply(true, true) {
		t.Error("XOR wrong")
	}
	if !BoolNone.Apply(true, false) || BoolNone.Apply(false, true) {
		t.Error("None should pass x through")
	}
}

func TestModsSuffixRoundTrip(t *testing.T) {
	// Every printable modifier combination used by the workloads must
	// re-parse to the same Mods.
	lines := []string{
		"ISETP.LT.U32.AND P0, R1, R2, PT",
		"LDG.64 R2, [R4]",
		"STG.128 [R4], R8",
		"MUFU.SIN R1, R2",
		"ATOMG.CAS R1, [R2], R3, R4",
		"SHF.R R1, R2, R3, R4",
		"F2I.TRUNC R1, R2",
		"SHFL.UP R1, R2, 0x1, 0x1f",
		"BAR.SYNC",
		"I2I.S8 R1, R2",
	}
	for _, line := range lines {
		p1 := MustAssemble("m", ".kernel k\n"+line+"\nEXIT\n")
		text := p1.Kernels[0].Instrs[0].String()
		p2, err := Assemble("m", ".kernel k\n"+text+"\nEXIT\n")
		if err != nil {
			t.Fatalf("%q -> %q failed to re-parse: %v", line, text, err)
		}
		if p1.Kernels[0].Instrs[0].Mods != p2.Kernels[0].Instrs[0].Mods {
			t.Fatalf("%q mods changed through %q", line, text)
		}
	}
}
