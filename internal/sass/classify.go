package sass

import "fmt"

// Group is the paper's "arch state id" (Table II): the instruction subset a
// transient fault targets. Values 1..8 match the paper's numbering exactly.
type Group uint8

// Instruction groups, Table II of the paper.
const (
	GroupFP64   Group = 1 // FP64 arithmetic instructions
	GroupFP32   Group = 2 // FP32 arithmetic instructions
	GroupLD     Group = 3 // instructions that read from memory
	GroupPR     Group = 4 // instructions that write to predicate registers only
	GroupNODEST Group = 5 // instructions with no destination register
	GroupOTHERS Group = 6 // everything else with a GP destination
	GroupGPPR   Group = 7 // all - NODEST (writes GP and/or predicate)
	GroupGP     Group = 8 // all - NODEST - PR (writes GP registers)
)

var groupNames = [...]string{
	GroupFP64:   "G_FP64",
	GroupFP32:   "G_FP32",
	GroupLD:     "G_LD",
	GroupPR:     "G_PR",
	GroupNODEST: "G_NODEST",
	GroupOTHERS: "G_OTHERS",
	GroupGPPR:   "G_GPPR",
	GroupGP:     "G_GP",
}

func (g Group) String() string {
	if g >= GroupFP64 && int(g) < len(groupNames) {
		return groupNames[g]
	}
	return fmt.Sprintf("Group(%d)", uint8(g))
}

// Valid reports whether g is one of the eight defined groups.
func (g Group) Valid() bool { return g >= GroupFP64 && g <= GroupGP }

// ParseGroup accepts either the numeric arch-state id ("2") or the symbolic
// name ("G_FP32").
func ParseGroup(s string) (Group, error) {
	for g := GroupFP64; g <= GroupGP; g++ {
		if groupNames[g] == s {
			return g, nil
		}
	}
	if len(s) == 1 && s[0] >= '1' && s[0] <= '8' {
		return Group(s[0] - '0'), nil
	}
	return 0, fmt.Errorf("sass: unknown instruction group %q", s)
}

// PrimaryGroups lists the six mutually exclusive groups (1-6); every opcode
// belongs to exactly one.
func PrimaryGroups() []Group {
	return []Group{GroupFP64, GroupFP32, GroupLD, GroupPR, GroupNODEST, GroupOTHERS}
}

// ClassOf assigns the opcode to its primary (mutually exclusive) group.
// Precedence follows the paper's definitions: an instruction with no
// destination is G_NODEST regardless of datatype; one that writes only
// predicates is G_PR (so FSETP is G_PR, not G_FP32); loads are G_LD; then
// FP64 and FP32 arithmetic; all remaining GP-writing opcodes are G_OTHERS.
func ClassOf(op Op) Group {
	oi := op.Info()
	switch {
	case !oi.HasDest():
		return GroupNODEST
	case oi.WritesPR() && !oi.WritesGP():
		return GroupPR
	case oi.IsLoad():
		return GroupLD
	case oi.Flags&FlagFP64 != 0:
		return GroupFP64
	case oi.Flags&FlagFP32 != 0:
		return GroupFP32
	default:
		return GroupOTHERS
	}
}

// GroupContains reports whether op belongs to group g, handling the union
// groups: G_GPPR = all - G_NODEST, and G_GP = all - G_NODEST - G_PR.
func GroupContains(g Group, op Op) bool {
	c := ClassOf(op)
	switch g {
	case GroupGPPR:
		return c != GroupNODEST
	case GroupGP:
		return c != GroupNODEST && c != GroupPR
	default:
		return c == g
	}
}
