package sass

import (
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	tests := []struct {
		reg  RegID
		want string
	}{
		{0, "R0"},
		{7, "R7"},
		{100, "R100"},
		{254, "R254"},
		{RZ, "RZ"},
	}
	for _, tc := range tests {
		if got := tc.reg.String(); got != tc.want {
			t.Errorf("RegID(%d).String() = %q, want %q", tc.reg, got, tc.want)
		}
	}
}

func TestParseReg(t *testing.T) {
	valid := map[string]RegID{
		"R0": 0, "R1": 1, "R99": 99, "R254": 254, "RZ": RZ,
	}
	for in, want := range valid {
		got, err := ParseReg(in)
		if err != nil || got != want {
			t.Errorf("ParseReg(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	invalid := []string{"", "R", "R255", "R-1", "R300", "r3", "P0", "Rx"}
	for _, in := range invalid {
		if _, err := ParseReg(in); err == nil {
			t.Errorf("ParseReg(%q) succeeded, want error", in)
		}
	}
}

// TestParseRegRoundTrip: String -> ParseReg is the identity for all
// registers.
func TestParseRegRoundTrip(t *testing.T) {
	f := func(raw uint8) bool {
		r := RegID(raw)
		if raw == 255 {
			r = RZ
		}
		got, err := ParseReg(r.String())
		return err == nil && got == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParsePred(t *testing.T) {
	valid := map[string]PredID{"P0": 0, "P6": 6, "PT": PT}
	for in, want := range valid {
		got, err := ParsePred(in)
		if err != nil || got != want {
			t.Errorf("ParsePred(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"", "P", "P7", "P9", "PP", "R0", "p0"} {
		if _, err := ParsePred(in); err == nil {
			t.Errorf("ParsePred(%q) succeeded, want error", in)
		}
	}
}

func TestPredRef(t *testing.T) {
	tests := []struct {
		in   string
		want PredRef
	}{
		{"P0", PredRef{Pred: 0}},
		{"!P3", PredRef{Pred: 3, Neg: true}},
		{"PT", PredRef{Pred: PT}},
		{"!PT", PredRef{Pred: PT, Neg: true}},
	}
	for _, tc := range tests {
		got, err := ParsePredRef(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParsePredRef(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if got.String() != tc.in {
			t.Errorf("PredRef round trip: %q -> %q", tc.in, got.String())
		}
	}
	if !(PredRef{Pred: PT}).True() {
		t.Error("PT guard should be always-true")
	}
	if (PredRef{Pred: PT, Neg: true}).True() {
		t.Error("!PT guard should not report always-true")
	}
	if (PredRef{Pred: 2}).True() {
		t.Error("P2 guard should not report always-true")
	}
}

func TestSpecialRegs(t *testing.T) {
	for sr, name := range specialNames {
		got, err := ParseSpecialReg(name)
		if err != nil || got != sr {
			t.Errorf("ParseSpecialReg(%q) = %v, %v; want %v", name, got, err, sr)
		}
		if sr.String() != name {
			t.Errorf("SpecialReg(%d).String() = %q, want %q", sr, sr.String(), name)
		}
	}
	if _, err := ParseSpecialReg("SR_NOPE"); err == nil {
		t.Error("ParseSpecialReg accepted an unknown name")
	}
}
