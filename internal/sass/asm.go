package sass

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Assemble parses assembly text into a Program. The source format is one
// instruction or directive per line:
//
//	// comment                     (also "#" and ";")
//	.kernel NAME                   starts a kernel
//	.param NAME                    declares the next 4-byte parameter slot
//	.shared BYTES                  static shared-memory size
//	label:                         branch target
//	[@[!]Pn] OP[.MOD...] operands  an instruction
//
// Operands: registers (R3, RZ), predicates (P0, !P2, PT), immediates (42,
// 0x1f, -8, 1.5f), memory ([R4], [R4+0x10]), constants (c0[0x160],
// c0[param_name], c0[NTID_X]), special registers (SR_TID.X), and label
// names for branch targets. A leading '-' negates a register or constant
// source.
func Assemble(moduleName, src string) (*Program, error) {
	p := &Program{Name: moduleName}
	var (
		cur     *Kernel
		params  map[string]int32
		pending []pendingLabel // fixups for the current kernel
	)
	finish := func() error {
		if cur == nil {
			return nil
		}
		for _, fix := range pending {
			target, ok := cur.labels[fix.name]
			if !ok {
				return fmt.Errorf("sass: %s: line %d: undefined label %q", cur.Name, fix.line, fix.name)
			}
			opd := &cur.Instrs[fix.instr].Src[fix.operand]
			opd.Target = int32(target)
		}
		pending = pending[:0]
		return nil
	}

	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, ".kernel"):
			if err := finish(); err != nil {
				return nil, err
			}
			name := strings.TrimSpace(strings.TrimPrefix(line, ".kernel"))
			if name == "" {
				return nil, fmt.Errorf("sass: line %d: .kernel requires a name", lineNo+1)
			}
			for _, k := range p.Kernels {
				if k.Name == name {
					return nil, fmt.Errorf("sass: line %d: duplicate kernel %q", lineNo+1, name)
				}
			}
			cur = &Kernel{Name: name, labels: make(map[string]int)}
			params = make(map[string]int32)
			p.Kernels = append(p.Kernels, cur)

		case strings.HasPrefix(line, ".param"):
			if cur == nil {
				return nil, fmt.Errorf("sass: line %d: .param outside kernel", lineNo+1)
			}
			name := strings.TrimSpace(strings.TrimPrefix(line, ".param"))
			if !isIdent(name) {
				return nil, fmt.Errorf("sass: line %d: bad parameter name %q", lineNo+1, name)
			}
			if _, dup := params[name]; dup {
				return nil, fmt.Errorf("sass: line %d: duplicate parameter %q", lineNo+1, name)
			}
			params[name] = ParamBase + int32(4*len(cur.Params))
			cur.Params = append(cur.Params, name)

		case strings.HasPrefix(line, ".shared"):
			if cur == nil {
				return nil, fmt.Errorf("sass: line %d: .shared outside kernel", lineNo+1)
			}
			n, err := strconv.ParseInt(strings.TrimSpace(strings.TrimPrefix(line, ".shared")), 0, 32)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("sass: line %d: bad .shared size", lineNo+1)
			}
			cur.SharedBytes = int(n)

		case strings.HasSuffix(line, ":") && isIdent(strings.TrimSuffix(line, ":")):
			if cur == nil {
				return nil, fmt.Errorf("sass: line %d: label outside kernel", lineNo+1)
			}
			name := strings.TrimSuffix(line, ":")
			if _, dup := cur.labels[name]; dup {
				return nil, fmt.Errorf("sass: line %d: duplicate label %q", lineNo+1, name)
			}
			cur.labels[name] = len(cur.Instrs)

		default:
			if cur == nil {
				return nil, fmt.Errorf("sass: line %d: instruction outside kernel: %q", lineNo+1, line)
			}
			in, labelRefs, err := parseInstr(line, params)
			if err != nil {
				return nil, fmt.Errorf("sass: %s: line %d: %v", cur.Name, lineNo+1, err)
			}
			for _, opIdx := range labelRefs {
				pending = append(pending, pendingLabel{
					name:    in.Src[opIdx].Sym,
					instr:   len(cur.Instrs),
					operand: opIdx,
					line:    lineNo + 1,
				})
			}
			cur.Instrs = append(cur.Instrs, in)
		}
	}
	if err := finish(); err != nil {
		return nil, err
	}
	if len(p.Kernels) == 0 {
		return nil, fmt.Errorf("sass: module %q contains no kernels", moduleName)
	}
	return p, nil
}

// MustAssemble is Assemble for known-good sources; it panics on error and is
// intended for embedded workload kernels and tests.
func MustAssemble(moduleName, src string) *Program {
	p, err := Assemble(moduleName, src)
	if err != nil {
		panic(err)
	}
	return p
}

type pendingLabel struct {
	name    string
	instr   int
	operand int
	line    int
}

func stripComment(line string) string {
	for _, marker := range []string{"//", "#", ";"} {
		if i := strings.Index(line, marker); i >= 0 {
			line = line[:i]
		}
	}
	return strings.TrimSpace(line)
}

// parseInstr parses one instruction line. It returns the indexes of source
// operands that are unresolved label references.
func parseInstr(line string, params map[string]int32) (Instr, []int, error) {
	guard := predTrue
	if strings.HasPrefix(line, "@") {
		sp := strings.IndexAny(line, " \t")
		if sp < 0 {
			return Instr{}, nil, fmt.Errorf("guard with no instruction: %q", line)
		}
		g, err := ParsePredRef(line[1:sp])
		if err != nil {
			return Instr{}, nil, err
		}
		guard = g
		line = strings.TrimSpace(line[sp:])
	}

	opTok := line
	rest := ""
	if sp := strings.IndexAny(line, " \t"); sp >= 0 {
		opTok, rest = line[:sp], strings.TrimSpace(line[sp:])
	}
	parts := strings.Split(opTok, ".")
	op, ok := LookupOp(parts[0])
	if !ok {
		return Instr{}, nil, fmt.Errorf("unknown opcode %q", parts[0])
	}
	var mods Mods
	for _, m := range parts[1:] {
		if err := applyModifier(&mods, op, m); err != nil {
			return Instr{}, nil, err
		}
	}

	var operands []Operand
	if rest != "" {
		for _, tok := range strings.Split(rest, ",") {
			o, err := parseOperand(tok, params)
			if err != nil {
				return Instr{}, nil, err
			}
			operands = append(operands, o)
		}
	}
	in := NewInstr(op, operands...)
	in.Guard = guard
	in.Mods = mods

	var labelRefs []int
	for i := range in.Src {
		if in.Src[i].Kind == OpdLabel {
			labelRefs = append(labelRefs, i)
		}
	}
	for i := range in.Dst {
		if in.Dst[i].Kind == OpdLabel {
			return Instr{}, nil, fmt.Errorf("label %q in destination position", in.Dst[i].Sym)
		}
	}
	return in, labelRefs, nil
}

// ignorableModifiers are accepted and discarded: they affect caching,
// rounding, and scheduling details below this model's level of abstraction.
var ignorableModifiers = map[string]bool{
	"E": true, "SYS": true, "GPU": true, "CTA": true, "STRONG": true,
	"WEAK": true, "RN": true, "RZ": true, "RM": true, "RP": true,
	"FTZ": true, "SAT": true, "X": true, "LUT": true, "W": true,
	"WIDE": true, "U": true, "L": true, "RCP64H": true, "ARV": true,
}

func applyModifier(m *Mods, op Op, tok string) error {
	sem := op.Info().Sem
	switch tok {
	case "8":
		m.Width = 1
		return nil
	case "16":
		m.Width = 2
		return nil
	case "32":
		m.Width = 4
		return nil
	case "64":
		m.Width = 8
		return nil
	case "128":
		m.Width = 16
		return nil
	case "U32":
		m.Unsigned = true
		return nil
	case "U16":
		m.Unsigned = true
		m.Width = 2
		return nil
	case "U8":
		m.Unsigned = true
		m.Width = 1
		return nil
	case "S32":
		m.Signed = true
		return nil
	case "S16":
		m.Signed = true
		m.Width = 2
		return nil
	case "S8":
		m.Signed = true
		m.Width = 1
		return nil
	case "HI":
		m.High = true
		return nil
	case "R":
		m.Right = true
		return nil
	case "TRUNC":
		m.FtoI.Trunc = true
		return nil
	case "SYNC":
		m.Sync = true
		return nil
	case "F32", "F64":
		m.Float = true
		return nil
	}

	// AND/OR/XOR and friends are overloaded; resolve by semantic kind.
	switch sem {
	case SemISetP, SemFSetP, SemDSetP, SemPSetP, SemFSet, SemFChk:
		for c := CmpF; c <= CmpT; c++ {
			if cmpNames[c] == tok {
				m.Cmp = c
				return nil
			}
		}
		switch tok {
		case "AND":
			m.Bool = BoolAnd
			return nil
		case "OR":
			m.Bool = BoolOr
			return nil
		case "XOR":
			m.Bool = BoolXor
			return nil
		}
	case SemLop:
		switch tok {
		case "AND":
			m.Logic = LogicAnd
			return nil
		case "OR":
			m.Logic = LogicOr
			return nil
		case "XOR":
			m.Logic = LogicXor
			return nil
		case "PASS_B":
			m.Logic = LogicPassB
			return nil
		}
	case SemAtom, SemRed:
		for a := AtomAdd; a <= AtomCAS; a++ {
			if atomNames[a] == tok {
				m.Atom = a
				return nil
			}
		}
	case SemMufu:
		for fn := MufuRcp; fn <= MufuCos; fn++ {
			if mufuNames[fn] == tok {
				m.Mufu = fn
				return nil
			}
		}
	case SemShfl:
		for s := ShflIdx; s <= ShflBfly; s++ {
			if shflNames[s] == tok {
				m.Shfl = s
				return nil
			}
		}
	case SemIMnMx, SemFMnMx, SemDMnMx, SemIMad, SemIMul:
		// MIN/MAX selection for MNMX comes from the predicate source; HI
		// handled above; nothing more to record.
	}

	if ignorableModifiers[tok] {
		return nil
	}
	return fmt.Errorf("unsupported modifier .%s on %s", tok, op)
}

// Disassemble renders a program back to assembly text that Assemble can
// re-parse into an equivalent program.
func Disassemble(p *Program) string {
	var sb strings.Builder
	for ki, k := range p.Kernels {
		if ki > 0 {
			sb.WriteString("\n")
		}
		fmt.Fprintf(&sb, ".kernel %s\n", k.Name)
		for _, prm := range k.Params {
			fmt.Fprintf(&sb, ".param %s\n", prm)
		}
		if k.SharedBytes > 0 {
			fmt.Fprintf(&sb, ".shared %d\n", k.SharedBytes)
		}
		// Invert the label map so targets print symbolically.
		labelAt := make(map[int][]string)
		for name, idx := range k.labels {
			labelAt[idx] = append(labelAt[idx], name)
		}
		for _, names := range labelAt {
			sort.Strings(names)
		}
		for i := range k.Instrs {
			for _, l := range labelAt[i] {
				fmt.Fprintf(&sb, "%s:\n", l)
			}
			fmt.Fprintf(&sb, "    %s\n", k.Instrs[i].String())
		}
		for _, l := range labelAt[len(k.Instrs)] {
			fmt.Fprintf(&sb, "%s:\n", l)
		}
	}
	return sb.String()
}
