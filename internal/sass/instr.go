package sass

import (
	"fmt"
	"math"
	"strings"
)

// CmpOp is a comparison operator modifier (ISETP.LT, FSETP.GE, ...).
type CmpOp uint8

// Comparison operators. Values start at one; the zero value means "no
// comparison modifier".
const (
	CmpNone CmpOp = iota
	CmpF          // always false
	CmpLT
	CmpEQ
	CmpLE
	CmpGT
	CmpNE
	CmpGE
	CmpNum // ordered (neither operand NaN)
	CmpNan // unordered (either operand NaN)
	CmpT   // always true
)

var cmpNames = [...]string{
	CmpF: "F", CmpLT: "LT", CmpEQ: "EQ", CmpLE: "LE", CmpGT: "GT",
	CmpNE: "NE", CmpGE: "GE", CmpNum: "NUM", CmpNan: "NAN", CmpT: "T",
}

func (c CmpOp) String() string {
	if c >= CmpF && int(c) < len(cmpNames) {
		return cmpNames[c]
	}
	return ""
}

// BoolOp combines a comparison result with a source predicate (SETP's .AND,
// .OR, .XOR).
type BoolOp uint8

// Boolean combiners.
const (
	BoolNone BoolOp = iota
	BoolAnd
	BoolOr
	BoolXor
)

func (b BoolOp) String() string {
	switch b {
	case BoolAnd:
		return "AND"
	case BoolOr:
		return "OR"
	case BoolXor:
		return "XOR"
	default:
		return ""
	}
}

// Apply combines x and y under the boolean operator; BoolNone passes x.
func (b BoolOp) Apply(x, y bool) bool {
	switch b {
	case BoolAnd:
		return x && y
	case BoolOr:
		return x || y
	case BoolXor:
		return x != y
	default:
		return x
	}
}

// LogicOp is the LOP two-input logic operator.
type LogicOp uint8

// Logic operators.
const (
	LogicNone LogicOp = iota
	LogicAnd
	LogicOr
	LogicXor
	LogicPassB // PASS_B: result is second operand (possibly inverted)
)

func (l LogicOp) String() string {
	switch l {
	case LogicAnd:
		return "AND"
	case LogicOr:
		return "OR"
	case LogicXor:
		return "XOR"
	case LogicPassB:
		return "PASS_B"
	default:
		return ""
	}
}

// MufuFn is the MUFU multi-function-unit operation.
type MufuFn uint8

// MUFU functions.
const (
	MufuNone MufuFn = iota
	MufuRcp
	MufuRsq
	MufuSqrt
	MufuEx2
	MufuLg2
	MufuSin
	MufuCos
)

var mufuNames = [...]string{
	MufuRcp: "RCP", MufuRsq: "RSQ", MufuSqrt: "SQRT",
	MufuEx2: "EX2", MufuLg2: "LG2", MufuSin: "SIN", MufuCos: "COS",
}

func (m MufuFn) String() string {
	if m >= MufuRcp && int(m) < len(mufuNames) {
		return mufuNames[m]
	}
	return ""
}

// AtomOp is the atomic/reduction operation.
type AtomOp uint8

// Atomic operations.
const (
	AtomNone AtomOp = iota
	AtomAdd
	AtomMin
	AtomMax
	AtomAnd
	AtomOr
	AtomXor
	AtomExch
	AtomCAS
)

var atomNames = [...]string{
	AtomAdd: "ADD", AtomMin: "MIN", AtomMax: "MAX", AtomAnd: "AND",
	AtomOr: "OR", AtomXor: "XOR", AtomExch: "EXCH", AtomCAS: "CAS",
}

func (a AtomOp) String() string {
	if a >= AtomAdd && int(a) < len(atomNames) {
		return atomNames[a]
	}
	return ""
}

// ShflMode is the warp-shuffle mode.
type ShflMode uint8

// Shuffle modes.
const (
	ShflNone ShflMode = iota
	ShflIdx
	ShflUp
	ShflDown
	ShflBfly
)

var shflNames = [...]string{ShflIdx: "IDX", ShflUp: "UP", ShflDown: "DOWN", ShflBfly: "BFLY"}

func (s ShflMode) String() string {
	if s >= ShflIdx && int(s) < len(shflNames) {
		return shflNames[s]
	}
	return ""
}

// Mods holds the decoded dotted-suffix modifiers of an instruction. The zero
// value means "no modifiers"; Width defaults to 4 bytes where it matters.
type Mods struct {
	Width    uint8 // memory access width in bytes: 1, 2, 4, 8, 16 (0 = default 4)
	Signed   bool  // .S* conversions, sign-extending sub-word loads, signed compares
	Unsigned bool  // .U32 explicitly-unsigned compares/shifts
	Cmp      CmpOp
	Bool     BoolOp
	Logic    LogicOp
	Mufu     MufuFn
	Atom     AtomOp
	Shfl     ShflMode
	High     bool // SHF.HI / IMAD.HI: take high half of wide result
	Right    bool // SHF.R (vs .L)
	FtoI     struct {
		Trunc bool // F2I.TRUNC (the only rounding mode modelled)
	}
	Float bool // ATOM.ADD.F32 style float atomics
	Sync  bool // BAR.SYNC
}

// MemWidth returns the effective memory access width in bytes.
func (m *Mods) MemWidth() uint8 {
	if m.Width == 0 {
		return 4
	}
	return m.Width
}

// suffixString reassembles the canonical dotted-modifier string for
// disassembly, e.g. ".LT.AND" or ".64".
func (m *Mods) suffixString() string {
	var sb strings.Builder
	add := func(s string) {
		if s != "" {
			sb.WriteByte('.')
			sb.WriteString(s)
		}
	}
	add(m.Mufu.String())
	add(m.Atom.String())
	add(m.Shfl.String())
	add(m.Cmp.String())
	if m.Unsigned {
		add("U32")
	}
	if m.Signed {
		add("S32")
	}
	add(m.Bool.String())
	add(m.Logic.String())
	if m.Float {
		add("F32")
	}
	if m.High {
		add("HI")
	}
	if m.Right {
		add("R")
	}
	if m.FtoI.Trunc {
		add("TRUNC")
	}
	if m.Sync {
		add("SYNC")
	}
	switch m.Width {
	case 1:
		add("8")
	case 2:
		add("16")
	case 4:
		add("32")
	case 8:
		add("64")
	case 16:
		add("128")
	}
	return sb.String()
}

// Instr is one decoded instruction. Dst and Src slices are ordered as in
// assembly text; Guard defaults to @PT (always execute).
type Instr struct {
	Op    Op
	Guard PredRef
	Dst   []Operand
	Src   []Operand
	Mods  Mods
}

// NewInstr builds an instruction with the default guard, splitting operands
// into destinations and sources per the opcode's NumDst.
func NewInstr(op Op, operands ...Operand) Instr {
	nd := int(op.Info().NumDst)
	if nd > len(operands) {
		nd = len(operands)
	}
	return Instr{
		Op:    op,
		Guard: predTrue,
		Dst:   operands[:nd:nd],
		Src:   operands[nd:],
	}
}

// HasDest reports whether the instruction writes any register.
func (in *Instr) HasDest() bool { return len(in.Dst) > 0 && in.Op.Info().HasDest() }

// String renders the instruction in assembly syntax.
func (in *Instr) String() string {
	var sb strings.Builder
	if !in.Guard.True() {
		sb.WriteString("@")
		sb.WriteString(in.Guard.String())
		sb.WriteString(" ")
	}
	sb.WriteString(in.Op.String())
	sb.WriteString(in.Mods.suffixString())
	for i := range in.Dst {
		if i == 0 {
			sb.WriteString(" ")
		} else {
			sb.WriteString(", ")
		}
		sb.WriteString(in.Dst[i].String())
	}
	for i := range in.Src {
		if i == 0 && len(in.Dst) == 0 {
			sb.WriteString(" ")
		} else {
			sb.WriteString(", ")
		}
		sb.WriteString(in.Src[i].String())
	}
	return sb.String()
}

// Kernel is one GPU function: a name, parameter layout, and instruction
// list. Labels are resolved to instruction indexes by the assembler.
type Kernel struct {
	Name        string
	Params      []string // parameter names, each a 4-byte constant-bank slot
	SharedBytes int      // static shared-memory allocation
	Instrs      []Instr

	labels map[string]int
}

// ParamOffset returns the constant-bank byte offset of the named parameter.
func (k *Kernel) ParamOffset(name string) (int32, bool) {
	for i, p := range k.Params {
		if p == name {
			return ParamBase + int32(4*i), true
		}
	}
	return 0, false
}

// LabelIndex returns the instruction index of a label, for tests and tools.
func (k *Kernel) LabelIndex(name string) (int, bool) {
	i, ok := k.labels[name]
	return i, ok
}

// Clone returns a deep copy of the kernel. Instrumentation and fault
// injection rewrite cloned kernels, never the module's originals. The copy
// is reflect.DeepEqual to the original (nil and empty operand slices are
// preserved as such), so clones also serve as snapshots for the
// shared-kernel immutability tests.
func (k *Kernel) Clone() *Kernel {
	nk := &Kernel{
		Name:        k.Name,
		Params:      append([]string(nil), k.Params...),
		SharedBytes: k.SharedBytes,
		Instrs:      make([]Instr, len(k.Instrs)),
		labels:      k.labels,
	}
	for i := range k.Instrs {
		in := k.Instrs[i]
		in.Dst = cloneOperands(in.Dst)
		in.Src = cloneOperands(in.Src)
		nk.Instrs[i] = in
	}
	return nk
}

// cloneOperands copies an operand slice, preserving nil-ness and emptiness.
func cloneOperands(ops []Operand) []Operand {
	if ops == nil {
		return nil
	}
	return append(make([]Operand, 0, len(ops)), ops...)
}

// Program is a compilation unit: a named collection of kernels, the analog
// of a cubin module.
type Program struct {
	Name    string
	Kernels []*Kernel
}

// Kernel finds a kernel by name.
func (p *Program) Kernel(name string) (*Kernel, bool) {
	for _, k := range p.Kernels {
		if k.Name == name {
			return k, true
		}
	}
	return nil, false
}

// Constant-bank layout. Launch dimensions occupy the low words; kernel
// parameters start at ParamBase, mirroring the CUDA ABI's c[0x0][0x160]
// convention.
const (
	ConstNtidX   = 0x00
	ConstNtidY   = 0x04
	ConstNtidZ   = 0x08
	ConstNctaidX = 0x0c
	ConstNctaidY = 0x10
	ConstNctaidZ = 0x14
	ParamBase    = 0x160
)

// builtinConstOffsets names the launch-dimension constant slots for the
// assembler, e.g. "c0[NTID_X]".
var builtinConstOffsets = map[string]int32{
	"NTID_X":   ConstNtidX,
	"NTID_Y":   ConstNtidY,
	"NTID_Z":   ConstNtidZ,
	"NCTAID_X": ConstNctaidX,
	"NCTAID_Y": ConstNctaidY,
	"NCTAID_Z": ConstNctaidZ,
}

func f32bits(f float32) uint32 { return math.Float32bits(f) }

// FormatFloat32 renders a register value as a float32 for diagnostics.
func FormatFloat32(bits uint32) string {
	return fmt.Sprintf("%g", math.Float32frombits(bits))
}
