package sass

import (
	"strings"
	"testing"
)

// TestVoltaOpcodeCount pins the paper's headline ISA fact: "the Volta ISA
// contains 171 opcodes" (Table III).
func TestVoltaOpcodeCount(t *testing.T) {
	if got := OpcodeCount(FamilyVolta); got != 171 {
		t.Fatalf("Volta opcode count = %d, want 171", got)
	}
}

func TestFamilyOpcodeSets(t *testing.T) {
	for _, f := range Families() {
		set := OpcodeSet(f)
		if len(set) == 0 {
			t.Fatalf("family %v has an empty opcode set", f)
		}
		if len(set) != OpcodeCount(f) {
			t.Fatalf("family %v: OpcodeSet/OpcodeCount disagree", f)
		}
		// Sets are sorted and duplicate-free.
		for i := 1; i < len(set); i++ {
			if set[i] <= set[i-1] {
				t.Fatalf("family %v: opcode set not strictly increasing at %d", f, i)
			}
		}
		for _, op := range set {
			if !op.Info().In(f) {
				t.Fatalf("family %v set contains %v, which is not in the family", f, op)
			}
		}
	}
	// Generational facts the encodings rely on.
	mustNotHave := func(f Family, name string) {
		t.Helper()
		if MustOp(name).Info().In(f) {
			t.Errorf("%s should not exist on %v", name, f)
		}
	}
	mustHave := func(f Family, name string) {
		t.Helper()
		if !MustOp(name).Info().In(f) {
			t.Errorf("%s should exist on %v", name, f)
		}
	}
	mustNotHave(FamilyKepler, "LOP3")
	mustNotHave(FamilyVolta, "LDGSTS")
	mustHave(FamilyAmpere, "LDGSTS")
	mustHave(FamilyKepler, "TEXDEPBAR")
	mustNotHave(FamilyMaxwell, "TEXDEPBAR")
	mustNotHave(FamilyVolta, "DMNMX")
	mustHave(FamilyPascal, "DMNMX")
	for _, name := range []string{"FADD", "IADD", "LDG", "STG", "BRA", "EXIT", "BAR", "S2R", "MOV"} {
		for _, f := range Families() {
			mustHave(f, name)
		}
	}
}

func TestOpcodeTableConsistency(t *testing.T) {
	seen := make(map[string]bool)
	for i := 1; i <= NumOpcodes(); i++ {
		op := Op(i)
		oi := op.Info()
		if oi.Name == "" {
			t.Fatalf("opcode %d has no name", i)
		}
		if seen[oi.Name] {
			t.Fatalf("duplicate opcode name %q", oi.Name)
		}
		seen[oi.Name] = true
		if oi.Cat == CatInvalid {
			t.Errorf("%s has no category", oi.Name)
		}
		if oi.Archs == 0 {
			t.Errorf("%s exists in no family", oi.Name)
		}
		// NumDst must be consistent with the destination flags.
		if oi.NumDst > 0 && !oi.HasDest() {
			t.Errorf("%s declares %d destinations but no dest flags", oi.Name, oi.NumDst)
		}
		if oi.NumDst == 0 && oi.HasDest() {
			t.Errorf("%s has dest flags but zero declared destinations", oi.Name)
		}
		// Lookup is the inverse of the table.
		got, ok := LookupOp(oi.Name)
		if !ok || got != op {
			t.Errorf("LookupOp(%q) = %v, %v; want %v", oi.Name, got, ok, op)
		}
		if op.String() != oi.Name {
			t.Errorf("Op.String mismatch for %q", oi.Name)
		}
		if !op.Valid() {
			t.Errorf("%s reports invalid", oi.Name)
		}
	}
}

func TestOpcodeExecutability(t *testing.T) {
	// Every opcode the simulator executes must have its semantic kind's
	// operand expectations reflected in the table; spot-check the memory
	// ops' spaces.
	spaces := map[string]MemSpace{
		"LDG": SpaceGlobal, "STG": SpaceGlobal,
		"LDS": SpaceShared, "STS": SpaceShared,
		"LDL": SpaceLocal, "STL": SpaceLocal,
		"LD": SpaceGeneric, "ST": SpaceGeneric,
		"LDC":   SpaceConst,
		"ATOMS": SpaceShared, "ATOMG": SpaceGlobal,
	}
	for name, want := range spaces {
		if got := MustOp(name).Info().Space; got != want {
			t.Errorf("%s space = %v, want %v", name, got, want)
		}
	}
	// Executable coverage: a healthy majority of the Volta set the
	// workloads draw from must be executable.
	executable := 0
	for _, op := range OpcodeSet(FamilyVolta) {
		if op.Info().Sem != SemNone {
			executable++
		}
	}
	if executable < 80 {
		t.Errorf("only %d of %d Volta opcodes are executable", executable, OpcodeCount(FamilyVolta))
	}
}

func TestLookupUnknownOp(t *testing.T) {
	if _, ok := LookupOp("NOTANOP"); ok {
		t.Error("LookupOp accepted an unknown mnemonic")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustOp did not panic on an unknown mnemonic")
		}
	}()
	MustOp("NOTANOP")
}

func TestInvalidOp(t *testing.T) {
	var op Op
	if op.Valid() {
		t.Error("zero Op reports valid")
	}
	if !strings.HasPrefix(op.String(), "OP(") {
		t.Errorf("zero Op string = %q", op.String())
	}
	defer func() {
		if recover() == nil {
			t.Error("Info() on invalid op did not panic")
		}
	}()
	op.Info()
}

func TestAllOpcodeNamesSorted(t *testing.T) {
	names := AllOpcodeNames()
	if len(names) != NumOpcodes() {
		t.Fatalf("AllOpcodeNames returned %d names, want %d", len(names), NumOpcodes())
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("names not sorted at %d: %q < %q", i, names[i], names[i-1])
		}
	}
}

func TestFamilyString(t *testing.T) {
	want := map[Family]string{
		FamilyKepler: "Kepler", FamilyMaxwell: "Maxwell", FamilyPascal: "Pascal",
		FamilyVolta: "Volta", FamilyAmpere: "Ampere",
	}
	for f, s := range want {
		if f.String() != s {
			t.Errorf("%v.String() = %q, want %q", f, f.String(), s)
		}
	}
	if Family(99).String() == "Volta" {
		t.Error("unknown family stringifies as a real one")
	}
}
