// Package sass models a SASS-like GPU instruction set architecture: the
// register and predicate files, an opcode table comparable in size and
// structure to the Volta ISA (171 opcodes), a textual assembly format with
// parser and disassembler, and the instruction-classification scheme
// (G_FP64, G_FP32, G_LD, ...) that the fault injector's "arch state id"
// parameter selects over.
//
// The package is purely a data model: execution semantics live in
// internal/gpu, and binary encodings live in internal/sass/encoding.
package sass

import (
	"fmt"
	"strconv"
	"strings"
)

// RegID names a 32-bit general-purpose register R0..R254. R255 is RZ, the
// architectural zero register: it reads as zero and writes to it are
// discarded.
type RegID uint8

// RZ is the always-zero register.
const RZ RegID = 255

// NumRegs is the size of the per-thread general-purpose register file,
// including RZ.
const NumRegs = 256

// String returns the assembly spelling of the register ("R7" or "RZ").
func (r RegID) String() string {
	if r == RZ {
		return "RZ"
	}
	return "R" + strconv.Itoa(int(r))
}

// ParseReg parses a register name such as "R12" or "RZ".
func ParseReg(s string) (RegID, error) {
	if s == "RZ" {
		return RZ, nil
	}
	if len(s) < 2 || s[0] != 'R' {
		return 0, fmt.Errorf("sass: invalid register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 254 {
		return 0, fmt.Errorf("sass: invalid register %q", s)
	}
	return RegID(n), nil
}

// PredID names a 1-bit predicate register P0..P6. P7 is PT, the constant
// true predicate; writes to PT are discarded.
type PredID uint8

// PT is the constant-true predicate register.
const PT PredID = 7

// NumPreds is the size of the per-thread predicate file, including PT.
const NumPreds = 8

// String returns the assembly spelling of the predicate ("P3" or "PT").
func (p PredID) String() string {
	if p == PT {
		return "PT"
	}
	return "P" + strconv.Itoa(int(p))
}

// ParsePred parses a predicate name such as "P2" or "PT".
func ParsePred(s string) (PredID, error) {
	if s == "PT" {
		return PT, nil
	}
	if len(s) != 2 || s[0] != 'P' {
		return 0, fmt.Errorf("sass: invalid predicate %q", s)
	}
	n := int(s[1] - '0')
	if n < 0 || n > 6 {
		return 0, fmt.Errorf("sass: invalid predicate %q", s)
	}
	return PredID(n), nil
}

// PredRef is a possibly negated reference to a predicate register, used both
// as an instruction guard (@!P0) and as a predicate source operand.
type PredRef struct {
	Pred PredID
	Neg  bool
}

// PredTrue is the default guard: always execute.
var predTrue = PredRef{Pred: PT}

// True reports whether the reference is the un-negated constant-true
// predicate PT.
func (p PredRef) True() bool { return p.Pred == PT && !p.Neg }

// String returns the assembly spelling, e.g. "P0" or "!P3".
func (p PredRef) String() string {
	if p.Neg {
		return "!" + p.Pred.String()
	}
	return p.Pred.String()
}

// ParsePredRef parses "P0", "!P3", "PT" or "!PT".
func ParsePredRef(s string) (PredRef, error) {
	neg := false
	if strings.HasPrefix(s, "!") {
		neg = true
		s = s[1:]
	}
	p, err := ParsePred(s)
	if err != nil {
		return PredRef{}, err
	}
	return PredRef{Pred: p, Neg: neg}, nil
}

// SpecialReg identifies the read-only special registers exposed through the
// S2R instruction.
type SpecialReg uint8

// Special registers. Values start at one so the zero value is invalid.
const (
	SRInvalid SpecialReg = iota
	SRTidX               // thread index within block, x
	SRTidY
	SRTidZ
	SRCtaidX // block index within grid, x
	SRCtaidY
	SRCtaidZ
	SRLaneID // lane within warp, 0..31
	SRWarpID // warp within block
	SRSMID   // streaming multiprocessor executing the thread
	SREqMask // lanes with the same lane id (identity bit)
	SRLtMask // lanes with a lower lane id
	SRClock  // deterministic per-SM cycle counter
)

var specialNames = map[SpecialReg]string{
	SRTidX:   "SR_TID.X",
	SRTidY:   "SR_TID.Y",
	SRTidZ:   "SR_TID.Z",
	SRCtaidX: "SR_CTAID.X",
	SRCtaidY: "SR_CTAID.Y",
	SRCtaidZ: "SR_CTAID.Z",
	SRLaneID: "SR_LANEID",
	SRWarpID: "SR_WARPID",
	SRSMID:   "SR_SMID",
	SREqMask: "SR_EQMASK",
	SRLtMask: "SR_LTMASK",
	SRClock:  "SR_CLOCK",
}

// String returns the assembly spelling of the special register.
func (s SpecialReg) String() string {
	if n, ok := specialNames[s]; ok {
		return n
	}
	return fmt.Sprintf("SR_INVALID(%d)", uint8(s))
}

// ParseSpecialReg parses a special-register name such as "SR_TID.X".
func ParseSpecialReg(s string) (SpecialReg, error) {
	for sr, name := range specialNames {
		if name == s {
			return sr, nil
		}
	}
	return SRInvalid, fmt.Errorf("sass: unknown special register %q", s)
}
