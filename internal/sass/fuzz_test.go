package sass_test

import (
	"testing"

	"repro/internal/sass"
	"repro/internal/sassan"
)

// FuzzAssembleDisassemble feeds arbitrary text through the assembler and
// checks the invariants that hold for every accepted program:
//
//   - Disassemble(Assemble(src)) is a fixpoint: disassembling and
//     re-assembling the result reproduces the same text byte-for-byte.
//   - Neither the assembler, the disassembler, nor the static verifier
//     panics, whatever the input.
//
// Rejected inputs simply return an error, which is fine — the target is
// crash- and drift-freedom, not acceptance.
func FuzzAssembleDisassemble(f *testing.F) {
	seeds := []string{
		"",
		".kernel k\nEXIT\n",
		".kernel tiny\n.param outptr\n    S2R R0, SR_TID.X\n    IADD R1, R0, 0x1\n    SHL R3, R0, 0x2\n    IADD R4, R3, c0[outptr]\n    STG.32 [R4], R1\n    EXIT\n",
		".kernel saxpy\n.param n\n.param a\n.param xptr\n.param yptr\n    S2R R0, SR_TID.X\n    S2R R1, SR_CTAID.X\n    MOV R2, c0[NTID_X]\n    IMAD R0, R1, R2, R0\n    ISETP.GE.AND P0, R0, c0[n], PT\n@P0 EXIT\n    SHL R3, R0, 0x2\n    IADD R4, R3, c0[xptr]\n    IADD R5, R3, c0[yptr]\n    LDG.32 R6, [R4]\n    LDG.32 R7, [R5]\n    MOV R8, c0[a]\n    FFMA R9, R8, R6, R7\n    STG.32 [R5], R9\n    EXIT\n",
		".kernel diamond\n    ISETP.GE.AND P0, R0, 0x5, PT\n@P0 BRA alt\n    MOV R1, 0x1\n    BRA join\nalt:\n    MOV R1, 0x2\njoin:\n    STG.32 [R2], R1\n    EXIT\n",
		".kernel wide\n.shared 64\n    LDG.128 R4, [R0]\n    DADD R8, R4, R6\n    STG.64 [R2], R8\n    RED.ADD.F32 [R2+0x8], R4\n    BAR.SYNC\n    EXIT\n",
		".kernel loop\n    MOV R0, 0x0\ntop:\n    IADD R0, R0, 0x1\n    ISETP.GE.AND P1, R0, 0xa, PT\n@!P1 BRA top\n    EXIT\n",
		".kernel a\nEXIT\n.kernel a\nEXIT\n",
		".kernel bad\n    BRA nowhere\n",
		"@P9 MOV R1, R2\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := sass.Assemble("fuzz", src)
		if err != nil {
			return
		}
		// The verifier must tolerate anything the assembler accepts.
		_ = sassan.VerifyProgram(p)
		d1 := sass.Disassemble(p)
		p2, err := sass.Assemble("fuzz", d1)
		if err != nil {
			t.Fatalf("disassembly does not re-assemble: %v\nsource:\n%s\ndisassembly:\n%s", err, src, d1)
		}
		if d2 := sass.Disassemble(p2); d2 != d1 {
			t.Fatalf("disassembly is not a fixpoint\nfirst:\n%s\nsecond:\n%s", d1, d2)
		}
	})
}
