package sass

import (
	"reflect"
	"testing"
)

// TestCloneDeepEqual: a clone must be reflect.DeepEqual to the original —
// including nil versus empty operand slices (EXIT has neither, STG and BRA
// have sources but no destinations) — because the shared-kernel
// immutability tests use clones as snapshots. And it must be deep: writing
// the clone's operands must not reach the original.
func TestCloneDeepEqual(t *testing.T) {
	p, err := Assemble("t", `
.kernel k
.param out
    S2R R0, SR_TID.X
    ISETP.GE.AND P0, R0, 0x10, PT
@P0 BRA done
    SHL R1, R0, 0x2
    IADD R1, R1, c0[out]
    STG [R1], R0
done:
    EXIT
`)
	if err != nil {
		t.Fatal(err)
	}
	k := p.Kernels[0]
	c := k.Clone()
	if c == k {
		t.Fatal("Clone returned the receiver")
	}
	if !reflect.DeepEqual(k, c) {
		t.Fatalf("clone is not DeepEqual to the original:\n%+v\n%+v", k, c)
	}
	for i := range c.Instrs {
		if len(c.Instrs[i].Src) > 0 {
			c.Instrs[i].Src[0].Imm ^= 0xdead
		}
	}
	if reflect.DeepEqual(k.Instrs, c.Instrs) {
		t.Fatal("mutating the clone's operands reached the original")
	}
}
