package baseline

import (
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/sass"
)

// debuggerRegWindow is how many registers per lane the debugger re-reads at
// every stop; the resulting shadow state models cuda-gdb's "large amount of
// state for each dynamic kernel" that the paper blames for its overhead.
const debuggerRegWindow = 128

// debuggerStateWords is the per-stop shadow-state size in words.
const debuggerStateWords = gpu.WarpSize * debuggerRegWindow

// DebuggerFI is the GPU-Qin-style tool: it single-steps *every*
// instruction of *every* kernel through the device debug hook, maintaining
// debugger state at each step, and performs the injection with a debugger
// register write when the target dynamic instruction is reached. It needs
// no source and handles binary-only modules, but it cannot be selective:
// the debugger is attached to the whole process.
type DebuggerFI struct {
	P core.TransientParams

	ctx    *cuda.Context
	unsub  func()
	counts map[string]int

	active  bool
	counter uint64
	rec     core.InjectionRecord
	state   []uint32 // the debugger's shadow of the warp state
	steps   uint64
}

var _ cuda.Subscriber = (*DebuggerFI)(nil)

// AttachDebuggerFI validates parameters and attaches the tool.
func AttachDebuggerFI(ctx *cuda.Context, p core.TransientParams) (*DebuggerFI, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	d := &DebuggerFI{
		P:      p,
		ctx:    ctx,
		counts: make(map[string]int),
		state:  make([]uint32, debuggerStateWords),
	}
	d.unsub = ctx.Subscribe(d)
	return d, nil
}

// Detach removes the tool.
func (d *DebuggerFI) Detach() {
	if d.unsub != nil {
		d.unsub()
		d.unsub = nil
	}
}

// Record returns the injection outcome.
func (d *DebuggerFI) Record() core.InjectionRecord { return d.rec }

// Steps returns how many single-step stops the debugger made.
func (d *DebuggerFI) Steps() uint64 { return d.steps }

// OnModuleLoad implements cuda.Subscriber.
func (d *DebuggerFI) OnModuleLoad(*cuda.Module) {}

// OnLaunchBegin implements cuda.Subscriber: the debugger stops at every
// instruction of every launch — there is no way to scope breakpoints to
// one dynamic kernel instance.
func (d *DebuggerFI) OnLaunchBegin(ev *cuda.LaunchEvent) {
	name := ev.Function.Name()
	launchIdx := d.counts[name]
	d.counts[name]++
	if name == d.P.KernelName && launchIdx == d.P.KernelCount {
		d.active = true
		d.counter = 0
	}
	ev.Exec = &gpu.ExecKernel{K: ev.Exec.K, Step: d.step}
}

// OnLaunchEnd implements cuda.Subscriber.
func (d *DebuggerFI) OnLaunchEnd(ev *cuda.LaunchEvent) {
	if d.active && ev.Function.Name() == d.P.KernelName {
		d.active = false
	}
}

// step is the per-instruction debugger stop: refresh the shadow state,
// then check whether this stop is the injection point.
func (d *DebuggerFI) step(c *gpu.InstrCtx) {
	d.steps++
	// The debugger re-reads the warp's architectural state on every stop.
	idx := 0
	for lane := 0; lane < gpu.WarpSize; lane++ {
		for r := 0; r < debuggerRegWindow; r++ {
			d.state[idx] = c.ReadReg(lane, sass.RegID(r))
			idx++
		}
	}
	if !d.active || d.rec.Activated {
		return
	}
	if !sass.GroupContains(d.P.Group, c.Instr.Op) {
		return
	}
	n := uint64(c.LaneCount())
	if d.counter+n <= d.P.InstrCount {
		d.counter += n
		return
	}
	k := d.P.InstrCount - d.counter
	d.counter += n
	for lane := 0; lane < gpu.WarpSize; lane++ {
		if !c.LaneActive(lane) {
			continue
		}
		if k == 0 {
			core.CorruptDest(&d.rec, c, c.InstrIdx, lane, d.P.BitFlip,
				d.P.DestRegSelect, d.P.BitPatternValue)
			return
		}
		k--
	}
}
