// Package baseline implements the comparator injection tools of Table I as
// running code:
//
//   - StaticFI, a SASSIFI-style compile-time instrumenter: it needs module
//     source, re-instruments whole modules at load time, and pays its
//     instrumentation cost on every dynamic instance of every kernel.
//   - DebuggerFI, a GPU-Qin-style debugger injector: it needs no source,
//     but single-steps every instruction of every kernel while maintaining
//     debugger state, imposing the large overhead that (per the paper's
//     Section IV) trips real-time assertions in the AV application.
//
// Both inject the same Table II transient fault model as NVBitFI's
// injector, which makes the capability and overhead comparisons
// apples-to-apples.
package baseline

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/sass"
)

// StaticFI is the SASSIFI-style tool. Attach it before modules are loaded;
// each module is "recompiled" from source with injection checks on every
// instruction of the target group, in every kernel. Binary-only modules
// cannot be instrumented and are recorded as failures.
type StaticFI struct {
	P core.TransientParams

	ctx          *cuda.Context
	unsub        func()
	instrumented map[*cuda.Function]*gpu.ExecKernel
	counts       map[string]int
	failures     []string

	active  bool
	counter uint64
	rec     core.InjectionRecord
}

var _ cuda.Subscriber = (*StaticFI)(nil)

// AttachStaticFI validates the parameters and attaches the tool. Modules
// already loaded are processed immediately.
func AttachStaticFI(ctx *cuda.Context, p core.TransientParams) (*StaticFI, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := &StaticFI{
		P:            p,
		ctx:          ctx,
		instrumented: make(map[*cuda.Function]*gpu.ExecKernel),
		counts:       make(map[string]int),
	}
	for _, m := range ctx.Modules() {
		s.OnModuleLoad(m)
	}
	s.unsub = ctx.Subscribe(s)
	return s, nil
}

// Detach removes the tool.
func (s *StaticFI) Detach() {
	if s.unsub != nil {
		s.unsub()
		s.unsub = nil
	}
}

// Failures lists modules the tool could not instrument (no source).
func (s *StaticFI) Failures() []string { return s.failures }

// Record returns the injection outcome.
func (s *StaticFI) Record() core.InjectionRecord { return s.rec }

// OnModuleLoad implements cuda.Subscriber: the "recompile with injection
// pass" step. Without source, a compile-time tool is stuck.
func (s *StaticFI) OnModuleLoad(m *cuda.Module) {
	if !m.HasSource() {
		s.failures = append(s.failures,
			fmt.Sprintf("module %q: no source available for recompilation", m.Name()))
		return
	}
	prog, err := sass.Assemble(m.Name(), m.Source())
	if err != nil {
		s.failures = append(s.failures, fmt.Sprintf("module %q: %v", m.Name(), err))
		return
	}
	for _, k := range prog.Kernels {
		f, err := m.Function(k.Name)
		if err != nil {
			continue
		}
		ek := &gpu.ExecKernel{K: k}
		ek.After = make([][]gpu.Callback, len(k.Instrs))
		for i := range k.Instrs {
			// A compile-time pass cannot know which dynamic instance will
			// be targeted, so every group instruction in every kernel
			// carries the check — the structural overhead difference from
			// NVBitFI's selective dynamic instrumentation.
			if !sass.GroupContains(s.P.Group, k.Instrs[i].Op) {
				continue
			}
			idx := i
			ek.After[i] = []gpu.Callback{func(c *gpu.InstrCtx) { s.step(c, idx) }}
		}
		s.instrumented[f] = ek
	}
}

// OnLaunchBegin implements cuda.Subscriber: every launch of an instrumented
// module runs the compile-time-instrumented kernel.
func (s *StaticFI) OnLaunchBegin(ev *cuda.LaunchEvent) {
	name := ev.Function.Name()
	launchIdx := s.counts[name]
	s.counts[name]++
	if ek, ok := s.instrumented[ev.Function]; ok {
		ev.Exec = ek
	}
	if name == s.P.KernelName && launchIdx == s.P.KernelCount {
		s.active = true
		s.counter = 0
	}
}

// OnLaunchEnd implements cuda.Subscriber.
func (s *StaticFI) OnLaunchEnd(ev *cuda.LaunchEvent) {
	if s.active && ev.Function.Name() == s.P.KernelName {
		s.active = false
	}
}

func (s *StaticFI) step(c *gpu.InstrCtx, instrIdx int) {
	if !s.active || s.rec.Activated {
		return
	}
	n := uint64(c.LaneCount())
	if s.counter+n <= s.P.InstrCount {
		s.counter += n
		return
	}
	k := s.P.InstrCount - s.counter
	s.counter += n
	for lane := 0; lane < gpu.WarpSize; lane++ {
		if !c.LaneActive(lane) {
			continue
		}
		if k == 0 {
			core.CorruptDest(&s.rec, c, instrIdx, lane, s.P.BitFlip, s.P.DestRegSelect, s.P.BitPatternValue)
			return
		}
		k--
	}
}
