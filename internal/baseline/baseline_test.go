package baseline_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/av"
	"repro/internal/baseline"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/nvbit"
	"repro/internal/sass"
)

func newCtx(t *testing.T) *cuda.Context {
	t.Helper()
	dev, err := gpu.NewDevice(sass.FamilyVolta, 8)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := cuda.NewContext(dev)
	if err != nil {
		t.Fatal(err)
	}
	ctx.SetDefaultBudget(1 << 30)
	return ctx
}

// vendorFault targets the 3rd dynamic instance of the binary-only vendor
// conv1d kernel.
func vendorFault() core.TransientParams {
	return core.TransientParams{
		Group:           sass.GroupGP,
		BitFlip:         core.FlipSingleBit,
		KernelName:      "conv1d",
		KernelCount:     2,
		InstrCount:      500,
		DestRegSelect:   0.3,
		BitPatternValue: 0.4,
	}
}

// TestAVGolden checks the pipeline runs clean with no tool attached.
func TestAVGolden(t *testing.T) {
	p := av.New(av.Config{Frames: 4})
	out, err := p.Run(newCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if out.ExitCode != 0 {
		t.Fatalf("exit %d, stdout:\n%s", out.ExitCode, out.Stdout)
	}
	if strings.Contains(out.Stdout, "RT ASSERT") {
		t.Fatalf("golden run missed a deadline:\n%s", out.Stdout)
	}
}

// TestNVBitFIInjectsVendorLibrary is the Table I headline: the dynamic
// binary instrumentation injector reaches a kernel inside a module that has
// no source.
func TestNVBitFIInjectsVendorLibrary(t *testing.T) {
	ctx := newCtx(t)
	inj, err := core.NewTransientInjector(vendorFault())
	if err != nil {
		t.Fatal(err)
	}
	att, err := nvbit.Attach(ctx, inj)
	if err != nil {
		t.Fatal(err)
	}
	defer att.Detach()
	p := av.New(av.Config{Frames: 4})
	out, err := p.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !inj.Record().Activated {
		t.Fatal("NVBitFI failed to inject into the binary-only vendor kernel")
	}
	if strings.Contains(out.Stdout, "RT ASSERT") {
		t.Errorf("selective instrumentation should not trip the RT assertion:\n%s", out.Stdout)
	}
}

// TestStaticFICannotInjectVendorLibrary: the compile-time tool needs
// source, so the vendor module is out of reach (Table I: "Needs source
// code? Yes / Inject libraries? No").
func TestStaticFICannotInjectVendorLibrary(t *testing.T) {
	ctx := newCtx(t)
	s, err := baseline.AttachStaticFI(ctx, vendorFault())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Detach()
	p := av.New(av.Config{Frames: 4})
	if _, err := p.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if len(s.Failures()) == 0 {
		t.Fatal("StaticFI claims it instrumented a module with no source")
	}
	if s.Record().Activated {
		t.Fatal("StaticFI injected into a kernel it cannot see the source of")
	}
}

// TestStaticFIInjectsOwnSource: with source available the compile-time tool
// does work — targeting the tracker module.
func TestStaticFIInjectsOwnSource(t *testing.T) {
	ctx := newCtx(t)
	params := vendorFault()
	params.KernelName = "track_update"
	params.InstrCount = 100
	s, err := baseline.AttachStaticFI(ctx, params)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Detach()
	p := av.New(av.Config{Frames: 4})
	if _, err := p.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if !s.Record().Activated {
		t.Fatal("StaticFI failed to inject into a source-available kernel")
	}
}

// TestDebuggerFITripsRealTimeAssertion: the debugger injects fine without
// source, but its per-instruction overhead blows the frame deadline — the
// paper's argument for why cuda-gdb-based injection was unusable on the AV
// application.
func TestDebuggerFITripsRealTimeAssertion(t *testing.T) {
	ctx := newCtx(t)
	d, err := baseline.AttachDebuggerFI(ctx, vendorFault())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Detach()
	p := av.New(av.Config{Frames: 4, FrameDeadline: 40 * time.Millisecond})
	out, err := p.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Record().Activated {
		t.Fatal("DebuggerFI failed to inject")
	}
	if d.Steps() == 0 {
		t.Fatal("DebuggerFI made no single-step stops")
	}
	if out.ExitCode != 3 || !strings.Contains(out.Stdout, "REAL-TIME FAILURE") {
		t.Fatalf("expected the RT assertion to trip under the debugger; got exit %d:\n%s",
			out.ExitCode, out.Stdout)
	}
}

// TestBaselineOutcomeAgreement: for the same fault in a source-available
// kernel, all three tools must produce the same corruption and the same
// outcome — the injection mechanisms differ, not the fault model.
func TestBaselineOutcomeAgreement(t *testing.T) {
	w, err := avAsWorkload()
	if err != nil {
		t.Fatal(err)
	}
	params := vendorFault()
	params.KernelName = "normalize"
	params.InstrCount = 321

	goldenCtx := newCtx(t)
	golden, err := w.Run(goldenCtx)
	if err != nil {
		t.Fatal(err)
	}

	runWith := func(attach func(*cuda.Context) (func() core.InjectionRecord, func())) (core.InjectionRecord, *campaign.Output) {
		ctx := newCtx(t)
		record, detach := attach(ctx)
		defer detach()
		out, err := w.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return record(), out
	}

	nvRec, nvOut := runWith(func(ctx *cuda.Context) (func() core.InjectionRecord, func()) {
		inj, err := core.NewTransientInjector(params)
		if err != nil {
			t.Fatal(err)
		}
		att, err := nvbit.Attach(ctx, inj)
		if err != nil {
			t.Fatal(err)
		}
		return inj.Record, att.Detach
	})
	stRec, stOut := runWith(func(ctx *cuda.Context) (func() core.InjectionRecord, func()) {
		s, err := baseline.AttachStaticFI(ctx, params)
		if err != nil {
			t.Fatal(err)
		}
		return s.Record, s.Detach
	})
	dbRec, dbOut := runWith(func(ctx *cuda.Context) (func() core.InjectionRecord, func()) {
		d, err := baseline.AttachDebuggerFI(ctx, params)
		if err != nil {
			t.Fatal(err)
		}
		return d.Record, d.Detach
	})

	if nvRec != stRec || nvRec != dbRec {
		t.Fatalf("tools disagree on the injected fault:\nnvbitfi: %+v\nstatic:  %+v\ndebugger:%+v",
			nvRec, stRec, dbRec)
	}
	if !nvRec.Activated {
		t.Fatal("fault did not activate")
	}
	sameAsGolden := func(o *campaign.Output) bool { return o.Equal(golden) }
	if sameAsGolden(nvOut) != sameAsGolden(stOut) || sameAsGolden(nvOut) != sameAsGolden(dbOut) {
		t.Fatal("tools disagree on the fault's outcome")
	}
}

// avAsWorkload builds an AV pipeline with a generous deadline so that tool
// overhead does not perturb output comparisons.
func avAsWorkload() (campaign.Workload, error) {
	return av.New(av.Config{Frames: 4, FrameDeadline: time.Hour}), nil
}
