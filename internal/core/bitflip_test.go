package core

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"
)

// TestBitFlipMaskFormulas pins the exact Table II formulas.
func TestBitFlipMaskFormulas(t *testing.T) {
	tests := []struct {
		model   BitFlipModel
		value   float64
		current uint32
		want    uint32
	}{
		{FlipSingleBit, 0, 0, 1 << 0},
		{FlipSingleBit, 0.5, 0, 1 << 16},
		{FlipSingleBit, 0.999, 0, 1 << 31},
		{FlipTwoBits, 0, 0, 3},
		{FlipTwoBits, 0.5, 0, 3 << 15},
		{FlipTwoBits, 0.999, 0, 3 << 30},
		{RandomValue, 0, 0xabcd, 0},
		{RandomValue, 0.5, 0, 0x7fffffff},
		{ZeroValue, 0.3, 0xdeadbeef, 0xdeadbeef}, // mask == current -> XOR gives 0
		{ZeroValue, 0.9, 0, 0},
	}
	for _, tc := range tests {
		if got := tc.model.Mask(tc.value, tc.current); got != tc.want {
			t.Errorf("%v.Mask(%v, 0x%x) = 0x%x, want 0x%x",
				tc.model, tc.value, tc.current, got, tc.want)
		}
	}
}

// TestBitFlipProperties: for all values in [0,1) the masks have the
// model's shape.
func TestBitFlipProperties(t *testing.T) {
	norm := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0.5
		}
		v = math.Mod(v, 1)
		if v < 0 {
			v += 1
		}
		return v
	}
	single := func(raw float64) bool {
		m := FlipSingleBit.Mask(norm(raw), 0)
		return bits.OnesCount32(m) == 1
	}
	double := func(raw float64) bool {
		m := FlipTwoBits.Mask(norm(raw), 0)
		// Two adjacent bits, except at the top where the pattern may shift
		// out of range — the formula caps the shift at 30 via 31*value.
		return bits.OnesCount32(m) == 2 && m%3 == 0 || m == 3<<30
	}
	zero := func(raw float64, cur uint32) bool {
		return cur^ZeroValue.Mask(norm(raw), cur) == 0
	}
	for name, f := range map[string]any{"single": single, "double": double, "zero": zero} {
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestFlipPred(t *testing.T) {
	if FlipSingleBit.FlipPred(0.1, true) != false ||
		FlipSingleBit.FlipPred(0.1, false) != true {
		t.Error("single-bit flip should invert a predicate")
	}
	if FlipTwoBits.FlipPred(0.9, true) != false {
		t.Error("two-bit flip should invert a predicate")
	}
	if RandomValue.FlipPred(0.7, false) != true || RandomValue.FlipPred(0.2, true) != false {
		t.Error("random predicate should follow the pattern value")
	}
	if ZeroValue.FlipPred(0.9, true) != false {
		t.Error("zero value should clear a predicate")
	}
}

func TestBitFlipNames(t *testing.T) {
	want := map[BitFlipModel]string{
		FlipSingleBit: "FLIP_SINGLE_BIT",
		FlipTwoBits:   "FLIP_TWO_BITS",
		RandomValue:   "RANDOM_VALUE",
		ZeroValue:     "ZERO_VALUE",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), s)
		}
		if !m.Valid() {
			t.Errorf("%v should be valid", m)
		}
	}
	if BitFlipModel(0).Valid() || BitFlipModel(5).Valid() {
		t.Error("out-of-range models report valid")
	}
}
