package core

import (
	"strings"
	"testing"

	"repro/internal/sass"
)

func TestTransientParamsRoundTrip(t *testing.T) {
	p := TransientParams{
		Group:           sass.GroupFP32,
		BitFlip:         FlipTwoBits,
		KernelName:      "stencil_step",
		KernelCount:     17,
		InstrCount:      123456789,
		DestRegSelect:   0.25,
		BitPatternValue: 0.875,
	}
	got, err := ParseTransientParams(strings.NewReader(p.String()))
	if err != nil {
		t.Fatal(err)
	}
	if *got != p {
		t.Fatalf("round trip: %+v vs %+v", *got, p)
	}
}

func TestTransientParamsThreadSelector(t *testing.T) {
	p := TransientParams{
		Group: sass.GroupGP, BitFlip: FlipSingleBit,
		KernelName: "k", KernelCount: 0, InstrCount: 5,
		DestRegSelect: 0.1, BitPatternValue: 0.2,
		Thread: &ThreadSelector{BlockLinear: 3, WarpID: 2, Lane: 7},
	}
	got, err := ParseTransientParams(strings.NewReader(p.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Thread == nil || *got.Thread != *p.Thread {
		t.Fatalf("thread selector lost: %+v", got.Thread)
	}
}

func TestTransientParamsValidate(t *testing.T) {
	good := TransientParams{
		Group: sass.GroupGPPR, BitFlip: FlipSingleBit,
		KernelName: "k", DestRegSelect: 0.5, BitPatternValue: 0.5,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []TransientParams{
		{BitFlip: FlipSingleBit, KernelName: "k"},     // no group
		{Group: sass.GroupGP, KernelName: "k"},        // no bit flip
		{Group: sass.GroupGP, BitFlip: FlipSingleBit}, // no kernel
		{Group: sass.GroupGP, BitFlip: FlipSingleBit, KernelName: "k", KernelCount: -1},
		{Group: sass.GroupGP, BitFlip: FlipSingleBit, KernelName: "k", DestRegSelect: 1.0},
		{Group: sass.GroupGP, BitFlip: FlipSingleBit, KernelName: "k", BitPatternValue: -0.1},
		{Group: sass.GroupGP, BitFlip: FlipSingleBit, KernelName: "k",
			Thread: &ThreadSelector{Lane: 32}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d validated", i)
		}
	}
}

func TestParseTransientParamsErrors(t *testing.T) {
	bad := []string{
		"",                                        // empty
		"1\n2\nk\n0\n5\n0.5\n",                    // six lines
		"9\n1\nk\n0\n5\n0.5\n0.5\n",               // bad group
		"1\nx\nk\n0\n5\n0.5\n0.5\n",               // bad model
		"1\n1\nk\nx\n5\n0.5\n0.5\n",               // bad kernel count
		"1\n1\nk\n0\nx\n0.5\n0.5\n",               // bad instr count
		"1\n1\nk\n0\n5\nz\n0.5\n",                 // bad reg select
		"1\n1\nk\n0\n5\n0.5\nz\n",                 // bad pattern
		"1\n1\nk\n0\n5\n0.5\n0.5\nthread a b c\n", // bad thread line
	}
	for _, text := range bad {
		if _, err := ParseTransientParams(strings.NewReader(text)); err == nil {
			t.Errorf("ParseTransientParams(%q) succeeded", text)
		}
	}
	// Symbolic group names parse too.
	ok := "G_FP32\n1\nk\n0\n5\n0.5\n0.5\n"
	p, err := ParseTransientParams(strings.NewReader(ok))
	if err != nil || p.Group != sass.GroupFP32 {
		t.Fatalf("symbolic group: %+v, %v", p, err)
	}
}

func TestPermanentParamsRoundTrip(t *testing.T) {
	p := PermanentParams{
		SMID: 3, Lane: 17, BitMask: 0xdead0001, OpcodeID: 42,
		ExtraOpcodeIDs: []int{7, 99},
	}
	got, err := ParsePermanentParams(strings.NewReader(p.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.SMID != p.SMID || got.Lane != p.Lane || got.BitMask != p.BitMask ||
		got.OpcodeID != p.OpcodeID || len(got.ExtraOpcodeIDs) != 2 {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestPermanentParamsValidate(t *testing.T) {
	good := PermanentParams{SMID: 0, Lane: 31, BitMask: 1, OpcodeID: 170}
	if err := good.Validate(sass.FamilyVolta, 8); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []PermanentParams{
		{SMID: 8, OpcodeID: 0},                    // SM out of range for 8 SMs
		{SMID: -1, OpcodeID: 0},                   //
		{Lane: 32, OpcodeID: 0},                   // lane out of range
		{OpcodeID: 171},                           // opcode beyond the Volta set
		{OpcodeID: -1},                            //
		{OpcodeID: 0, ExtraOpcodeIDs: []int{500}}, // bad extra opcode
	}
	for i, p := range bad {
		if err := p.Validate(sass.FamilyVolta, 8); err == nil {
			t.Errorf("bad permanent params %d validated", i)
		}
	}
	// Opcode resolution follows the family opcode set.
	set := sass.OpcodeSet(sass.FamilyVolta)
	p := PermanentParams{OpcodeID: 5}
	if p.Opcode(sass.FamilyVolta) != set[5] {
		t.Error("opcode resolution mismatch")
	}
}

func TestParsePermanentParamsErrors(t *testing.T) {
	bad := []string{
		"",
		"0\n1\n0x2\n",              // three lines
		"x\n1\n0x2\n3\n",           // bad SM
		"0\nx\n0x2\n3\n",           // bad lane
		"0\n1\nzz\n3\n",            // bad mask
		"0\n1\n0x2\nx\n",           // bad opcode
		"0\n1\n0x2\n3\nopcode x\n", // bad extra
	}
	for _, text := range bad {
		if _, err := ParsePermanentParams(strings.NewReader(text)); err == nil {
			t.Errorf("ParsePermanentParams(%q) succeeded", text)
		}
	}
}

func TestTransientParamsSiteRoundTrip(t *testing.T) {
	p := &TransientParams{
		Group: sass.GroupGP, BitFlip: FlipSingleBit,
		KernelName: "k", KernelCount: 2, InstrCount: 9,
		SiteResolved: true, StaticInstrIdx: 4,
		DestRegSelect: 0.25, BitPatternValue: 0.5,
	}
	got, err := ParseTransientParams(strings.NewReader(p.String()))
	if err != nil {
		t.Fatal(err)
	}
	if *got != *p {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", *got, *p)
	}
	if !strings.Contains(p.String(), "site 4") {
		t.Fatalf("serialized form missing site line:\n%s", p)
	}
	// Legacy parameter files (no site line) stay site-unresolved.
	legacy := *p
	legacy.SiteResolved = false
	legacy.StaticInstrIdx = 0
	got, err = ParseTransientParams(strings.NewReader(legacy.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.SiteResolved || got.StaticInstrIdx != 0 {
		t.Fatalf("legacy file parsed as site-resolved: %+v", *got)
	}
}
