package core_test

import (
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/nvbit"
	"repro/internal/sass"
	"repro/internal/specaccel"
)

// tinySrc: every instruction's dynamic execution order is fully known, so
// injections can be aimed at exact (instruction, lane) coordinates.
//
// G_GP-eligible executions per launch (one warp):
//
//	instr 0 S2R   lanes 0..31  -> counts   0..31
//	instr 1 IADD  lanes 0..31  -> counts  32..63
//	instr 2 IADD  lanes 0..31  -> counts  64..95
//	instr 3 SHL   lanes 0..31  -> counts  96..127
//	instr 4 IADD  lanes 0..31  -> counts 128..159
const tinySrc = `
.kernel tiny
.param outptr
    S2R R0, SR_TID.X
    IADD R1, R0, 0x1
    IADD R2, R1, 0x2
    SHL R3, R0, 0x2
    IADD R4, R3, c0[outptr]
    STG.32 [R4], R2
    EXIT
`

func runTiny(t *testing.T, tool nvbit.Tool, launches int) []uint32 {
	t.Helper()
	dev, err := gpu.NewDevice(sass.FamilyVolta, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := cuda.NewContext(dev)
	if err != nil {
		t.Fatal(err)
	}
	if tool != nil {
		att, err := nvbit.Attach(ctx, tool)
		if err != nil {
			t.Fatal(err)
		}
		defer att.Detach()
	}
	mod, err := ctx.LoadModule("m", tinySrc)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := mod.Function("tiny")
	if err != nil {
		t.Fatal(err)
	}
	out, err := ctx.Malloc(4 * 32)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cuda.LaunchConfig{Grid: gpu.Dim3{X: 1, Y: 1, Z: 1}, Block: gpu.Dim3{X: 32, Y: 1, Z: 1}}
	for i := 0; i < launches; i++ {
		if err := ctx.Launch(fn, cfg, out); err != nil {
			t.Fatal(err)
		}
	}
	// A poisoned context (an injected fault that trapped) fails the copy;
	// return zeros, as a host buffer the memcpy never filled would hold.
	b, err := ctx.MemcpyDtoH(out, 4*32)
	if err != nil {
		return make([]uint32, 32)
	}
	vals := make([]uint32, 32)
	for i := range vals {
		vals[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return vals
}

// TestDirectedTransientInjection aims a single-bit flip at instruction 2
// (the second IADD), lane 6, and checks exactly one output word changed in
// exactly the predicted way.
func TestDirectedTransientInjection(t *testing.T) {
	inj, err := core.NewTransientInjector(core.TransientParams{
		Group:           sass.GroupGP,
		BitFlip:         core.FlipSingleBit,
		KernelName:      "tiny",
		KernelCount:     0,
		InstrCount:      64 + 6, // instruction 2, lane 6
		DestRegSelect:   0,
		BitPatternValue: 0.5, // bit 16
	})
	if err != nil {
		t.Fatal(err)
	}
	vals := runTiny(t, inj, 1)
	rec := inj.Record()
	if !rec.Activated || rec.NoDestination {
		t.Fatalf("injection record: %+v", rec)
	}
	if rec.Lane != 6 || rec.InstrIdx != 2 || rec.Target != "R2" {
		t.Fatalf("injection hit the wrong site: %+v", rec)
	}
	if rec.Mask != 1<<16 {
		t.Fatalf("mask = 0x%x", rec.Mask)
	}
	for i, v := range vals {
		want := uint32(i + 3)
		if i == 6 {
			want ^= 1 << 16
		}
		if v != want {
			t.Fatalf("out[%d] = 0x%x, want 0x%x (record %+v)", i, v, want, rec)
		}
	}
}

// TestInjectionTargetsSecondLaunch: kernel count selects the dynamic
// instance; the first launch runs clean.
func TestInjectionTargetsSecondLaunch(t *testing.T) {
	inj, err := core.NewTransientInjector(core.TransientParams{
		Group: sass.GroupGP, BitFlip: core.RandomValue,
		KernelName: "tiny", KernelCount: 1, InstrCount: 64,
		DestRegSelect: 0, BitPatternValue: 0.77,
	})
	if err != nil {
		t.Fatal(err)
	}
	vals := runTiny(t, inj, 3)
	rec := inj.Record()
	if !rec.Activated {
		t.Fatal("fault did not activate")
	}
	// The third launch overwrote the corruption: output must be clean.
	for i, v := range vals {
		if v != uint32(i+3) {
			t.Fatalf("corruption leaked into a later launch: out[%d]=0x%x", i, v)
		}
	}
}

// TestInjectionNeverActivates: a site beyond the real execution (as an
// approximate profile can produce) leaves the program untouched.
func TestInjectionNeverActivates(t *testing.T) {
	inj, err := core.NewTransientInjector(core.TransientParams{
		Group: sass.GroupGP, BitFlip: core.FlipSingleBit,
		KernelName: "tiny", KernelCount: 5, // only 2 launches happen
		InstrCount: 10, DestRegSelect: 0, BitPatternValue: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	vals := runTiny(t, inj, 2)
	if inj.Record().Activated {
		t.Fatal("fault activated for a launch that never happened")
	}
	for i, v := range vals {
		if v != uint32(i+3) {
			t.Fatalf("output changed without activation: out[%d]=%d", i, v)
		}
	}
}

// TestNoDestInjection: a G_NODEST selection (the STG) activates but has
// nothing to corrupt.
func TestNoDestInjection(t *testing.T) {
	inj, err := core.NewTransientInjector(core.TransientParams{
		Group: sass.GroupNODEST, BitFlip: core.FlipSingleBit,
		KernelName: "tiny", KernelCount: 0,
		InstrCount: 3, DestRegSelect: 0, BitPatternValue: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	vals := runTiny(t, inj, 1)
	rec := inj.Record()
	if !rec.Activated || !rec.NoDestination {
		t.Fatalf("NODEST record: %+v", rec)
	}
	for i, v := range vals {
		if v != uint32(i+3) {
			t.Fatal("NODEST injection changed state")
		}
	}
}

// TestThreadTargetedInjection uses the Section V extension to pin the
// fault to one specific thread.
func TestThreadTargetedInjection(t *testing.T) {
	inj, err := core.NewTransientInjector(core.TransientParams{
		Group: sass.GroupGP, BitFlip: core.FlipSingleBit,
		KernelName: "tiny", KernelCount: 0,
		InstrCount:      2, // third eligible execution OF THAT THREAD: instr 2
		DestRegSelect:   0,
		BitPatternValue: 0, // bit 0
		Thread:          &core.ThreadSelector{BlockLinear: 0, WarpID: 0, Lane: 13},
	})
	if err != nil {
		t.Fatal(err)
	}
	vals := runTiny(t, inj, 1)
	rec := inj.Record()
	if !rec.Activated || rec.Lane != 13 || rec.InstrIdx != 2 {
		t.Fatalf("thread-targeted record: %+v", rec)
	}
	for i, v := range vals {
		want := uint32(i + 3)
		if i == 13 {
			want ^= 1
		}
		if v != want {
			t.Fatalf("out[%d] = %d, want %d", i, v, want)
		}
	}
}

// TestPredicateInjection: corrupting an ISETP result changes control flow.
func TestPredicateInjection(t *testing.T) {
	const src = `
.kernel predk
.param outptr
    S2R R0, SR_TID.X
    ISETP.LT.AND P0, R0, 0x10, PT
    MOV R2, 0x1
@P0 MOV R2, 0x2
    SHL R3, R0, 0x2
    IADD R4, R3, c0[outptr]
    STG.32 [R4], R2
    EXIT
`
	dev, err := gpu.NewDevice(sass.FamilyVolta, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := cuda.NewContext(dev)
	if err != nil {
		t.Fatal(err)
	}
	// The ISETP is the only G_PR instruction: lane 3's execution is count 3.
	inj, err := core.NewTransientInjector(core.TransientParams{
		Group: sass.GroupPR, BitFlip: core.FlipSingleBit,
		KernelName: "predk", KernelCount: 0,
		InstrCount: 3, DestRegSelect: 0, BitPatternValue: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	att, err := nvbit.Attach(ctx, inj)
	if err != nil {
		t.Fatal(err)
	}
	defer att.Detach()
	mod, err := ctx.LoadModule("m", src)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := mod.Function("predk")
	if err != nil {
		t.Fatal(err)
	}
	out, err := ctx.Malloc(4 * 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Launch(fn, cuda.LaunchConfig{
		Grid: gpu.Dim3{X: 1, Y: 1, Z: 1}, Block: gpu.Dim3{X: 32, Y: 1, Z: 1},
	}, out); err != nil {
		t.Fatal(err)
	}
	rec := inj.Record()
	if !rec.Activated || rec.Target != "P0" {
		t.Fatalf("predicate record: %+v", rec)
	}
	b, err := ctx.MemcpyDtoH(out, 4*32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		got := binary.LittleEndian.Uint32(b[4*i:])
		want := uint32(1)
		if i < 16 {
			want = 2
		}
		if i == 3 {
			want = 1 // flipped predicate suppressed the guarded MOV
		}
		if got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

// TestPermanentInjectorFilters: only the configured SM and lane are hit,
// and every dynamic instance of the opcode on that site is corrupted.
func TestPermanentInjectorFilters(t *testing.T) {
	// SHL executes once per lane per launch; target SM 0 (1 block -> SM 0).
	pi, err := core.NewPermanentInjector(core.PermanentParams{
		SMID: 0, Lane: 9, BitMask: 0x4,
		OpcodeID: opcodeID(t, "SHL"),
	}, sass.FamilyVolta, 4)
	if err != nil {
		t.Fatal(err)
	}
	vals := runTiny(t, pi, 2)
	if pi.Activations() != 2 { // one SHL execution per launch on that site
		t.Fatalf("activations = %d, want 2", pi.Activations())
	}
	if pi.Corruptions() != 2 {
		t.Fatalf("corruptions = %d, want 2", pi.Corruptions())
	}
	// Lane 9's SHL feeds its output address: 9*4 ^ 0x4 = 0x20 -> slot 8.
	for i, v := range vals {
		want := uint32(i + 3)
		switch i {
		case 8:
			want = 9 + 3 // lane 9's value landed on slot 8
		case 9:
			want = 9 + 3 // slot 9 keeps the value from the first launch? No:
			// both launches redirect lane 9's store to slot 8, so slot 9
			// keeps lane 9's own original value only if something wrote it.
		}
		_ = want
		_ = v
	}
	// Slot 8 receives lane 9's value (12); slot 9 is never written and
	// stays zero.
	if vals[8] != 12 {
		t.Fatalf("redirected store: out[8] = %d, want 12", vals[8])
	}
	if vals[9] != 0 {
		t.Fatalf("out[9] = %d, want 0 (store redirected away)", vals[9])
	}
}

// TestPermanentInjectorWrongSM: a fault on an SM the kernel's blocks never
// reach stays dormant.
func TestPermanentInjectorWrongSM(t *testing.T) {
	pi, err := core.NewPermanentInjector(core.PermanentParams{
		SMID: 3, Lane: 0, BitMask: 0xffffffff,
		OpcodeID: opcodeID(t, "SHL"),
	}, sass.FamilyVolta, 4)
	if err != nil {
		t.Fatal(err)
	}
	vals := runTiny(t, pi, 1) // 1 block -> SM 0 only
	if pi.Activations() != 0 {
		t.Fatalf("activations = %d on an idle SM", pi.Activations())
	}
	for i, v := range vals {
		if v != uint32(i+3) {
			t.Fatal("dormant fault changed output")
		}
	}
}

// TestIntermittentGates: gated faults activate for the configured subset.
func TestIntermittentGates(t *testing.T) {
	run := func(gate core.ActivationGate) (uint64, uint64) {
		// Mask 0x40 keeps the lane-0 store address in bounds (the output
		// base is 256-aligned), so no launch traps and all four launches run.
		pi, err := core.NewPermanentInjector(core.PermanentParams{
			SMID: 0, Lane: 0, BitMask: 0x40,
			OpcodeID: opcodeID(t, "IADD"),
		}, sass.FamilyVolta, 4)
		if err != nil {
			t.Fatal(err)
		}
		pi.SetGate(gate)
		runTiny(t, pi, 4)
		return pi.Activations(), pi.Corruptions()
	}
	// IADD executes 3 times per launch on lane 0 -> 12 activations.
	act, corr := run(nil)
	if act != 12 || corr == 0 {
		t.Fatalf("ungated: %d activations, %d corruptions", act, corr)
	}
	_, corrBurst := run(core.BurstGate{Period: 4, BurstLen: 1})
	if corrBurst == 0 || corrBurst >= corr {
		t.Fatalf("bursty gate corrupted %d of %d", corrBurst, corr)
	}
	_, corrNever := run(core.BurstGate{Period: 4, BurstLen: 0})
	if corrNever != 0 {
		t.Fatalf("zero-length burst corrupted %d times", corrNever)
	}
	_, corrRare := run(core.RandomGate{P: 0, Seed: 3})
	if corrRare != 0 {
		t.Fatalf("p=0 random gate corrupted %d times", corrRare)
	}
	_, corrAlways := run(core.RandomGate{P: 1, Seed: 3})
	if corrAlways != corr {
		t.Fatalf("p=1 random gate corrupted %d of %d", corrAlways, corr)
	}
}

// TestRandomGateDeterminism: the same gate decides identically on replay.
func TestRandomGateDeterminism(t *testing.T) {
	g := core.RandomGate{P: 0.5, Seed: 42}
	for i := uint64(0); i < 100; i++ {
		if g.Active(i) != g.Active(i) {
			t.Fatalf("gate decision %d not deterministic", i)
		}
	}
	// And roughly balanced.
	hits := 0
	for i := uint64(0); i < 1000; i++ {
		if g.Active(i) {
			hits++
		}
	}
	if hits < 350 || hits > 650 {
		t.Fatalf("p=0.5 gate fired %d/1000 times", hits)
	}
}

// TestFaultDictionary: a dictionary entry overrides the XOR mask.
func TestFaultDictionary(t *testing.T) {
	pi, err := core.NewPermanentInjector(core.PermanentParams{
		SMID: 0, Lane: 4, BitMask: 0x1,
		OpcodeID: opcodeID(t, "IADD"),
	}, sass.FamilyVolta, 4)
	if err != nil {
		t.Fatal(err)
	}
	pi.SetDictionary(core.FaultDictionary{
		sass.MustOp("IADD"): func(_ sass.Op, old uint32) uint32 { return 0x1000 },
	})
	vals := runTiny(t, pi, 1)
	// Lane 4's final IADD (address computation) is forced to 0x1000...
	// but so are the earlier IADDs; the last corrupted dest is R4 (the
	// address), so lane 4 stores to device address 0x1000 — unallocated,
	// poisoning the context. The read back then fails and runTiny would
	// have returned zeros; accept either zeroed output or a changed value.
	nonzero := false
	for _, v := range vals {
		if v != 0 {
			nonzero = true
		}
	}
	if pi.Corruptions() == 0 {
		t.Fatal("dictionary never corrupted")
	}
	_ = nonzero
}

// TestMultiOpcodePermanentFault: the Section V multi-opcode extension hits
// every configured opcode.
func TestMultiOpcodePermanentFault(t *testing.T) {
	pi, err := core.NewPermanentInjector(core.PermanentParams{
		SMID: 0, Lane: 2, BitMask: 0x1,
		OpcodeID:       opcodeID(t, "IADD"),
		ExtraOpcodeIDs: []int{opcodeID(t, "SHL")},
	}, sass.FamilyVolta, 4)
	if err != nil {
		t.Fatal(err)
	}
	runTiny(t, pi, 1)
	// Lane 2 executes IADD 3x and SHL 1x per launch.
	if pi.Activations() != 4 {
		t.Fatalf("multi-opcode activations = %d, want 4", pi.Activations())
	}
}

func opcodeID(t *testing.T, name string) int {
	t.Helper()
	set := sass.OpcodeSet(sass.FamilyVolta)
	for i, op := range set {
		if op == sass.MustOp(name) {
			return i
		}
	}
	t.Fatalf("opcode %s not in the Volta set", name)
	return -1
}

// TestMultiRegisterInjection: the Section V multi-register extension
// corrupts consecutive destination registers of a wide load with one fault.
func TestMultiRegisterInjection(t *testing.T) {
	const src = `
.kernel widek
.param inptr
.param outptr
    S2R R0, SR_TID.X
    MOV R1, c0[inptr]
    LDG.64 R4, [R1]
    SHL R6, R0, 0x2
    IADD R7, R6, c0[outptr]
    STG.32 [R7], R4
    EXIT
`
	dev, err := gpu.NewDevice(sass.FamilyVolta, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := cuda.NewContext(dev)
	if err != nil {
		t.Fatal(err)
	}
	// Target the LDG.64 (the only G_LD instruction): lane 0's execution is
	// eligible count 0. Corrupt both halves of the pair.
	inj, err := core.NewTransientInjector(core.TransientParams{
		Group: sass.GroupLD, BitFlip: core.FlipSingleBit,
		KernelName: "widek", KernelCount: 0,
		InstrCount: 0, DestRegSelect: 0, BitPatternValue: 0,
		MultiRegCount: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	att, err := nvbit.Attach(ctx, inj)
	if err != nil {
		t.Fatal(err)
	}
	defer att.Detach()
	mod, err := ctx.LoadModule("m", src)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := mod.Function("widek")
	if err != nil {
		t.Fatal(err)
	}
	in, err := ctx.Malloc(8)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ctx.Malloc(4 * 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Launch(fn, cuda.LaunchConfig{
		Grid: gpu.Dim3{X: 1, Y: 1, Z: 1}, Block: gpu.Dim3{X: 32, Y: 1, Z: 1},
	}, in, out); err != nil {
		t.Fatal(err)
	}
	rec := inj.Record()
	if !rec.Activated || rec.Target != "R4,R5" {
		t.Fatalf("multi-register record: %+v", rec)
	}
	// Lane 0 stored R4, which was corrupted by bit 0.
	b, err := ctx.MemcpyDtoH(out, 4)
	if err != nil {
		t.Fatal(err)
	}
	if binary.LittleEndian.Uint32(b) != 1 {
		t.Fatalf("corrupted low word = %d, want 1", binary.LittleEndian.Uint32(b))
	}
}

// TestMultiRegParamsRoundTrip: the multiregs extension survives the
// parameter-file format.
func TestMultiRegParamsRoundTrip(t *testing.T) {
	p := core.TransientParams{
		Group: sass.GroupLD, BitFlip: core.FlipSingleBit,
		KernelName: "k", InstrCount: 9,
		DestRegSelect: 0.5, BitPatternValue: 0.5,
		MultiRegCount: 3,
	}
	got, err := core.ParseTransientParams(strings.NewReader(p.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.MultiRegCount != 3 {
		t.Fatalf("multiregs lost: %+v", got)
	}
}

// TestDiffExactVsApproximateReal: on 303.ostencil every stencil_step
// instance executes identical counts, so the approximate profile must
// match the exact one exactly; the diff quantifies this.
func TestDiffExactVsApproximateReal(t *testing.T) {
	w, err := specaccel.ByName("303.ostencil")
	if err != nil {
		t.Fatal(err)
	}
	r := campaign.Runner{}
	exact, _, err := r.Profile(w, core.Exact)
	if err != nil {
		t.Fatal(err)
	}
	approx, _, err := r.Profile(w, core.Approximate)
	if err != nil {
		t.Fatal(err)
	}
	d := core.DiffProfiles(exact, approx, sass.GroupGPPR)
	if d.TotalRelDelta() != 0 || d.MaxRelDelta() != 0 {
		t.Fatalf("ostencil approximate profile deviates: total %v max %v",
			d.TotalRelDelta(), d.MaxRelDelta())
	}
	if len(d.OnlyA)+len(d.OnlyB) != 0 {
		t.Fatalf("profiles disagree on dynamic kernels: %v %v", d.OnlyA, d.OnlyB)
	}
}

// TestSiteResolvedInjection: site mode instruments only the named static
// instruction and counts its executions, hitting the same coordinates as
// the equivalent legacy parameters.
func TestSiteResolvedInjection(t *testing.T) {
	inj, err := core.NewTransientInjector(core.TransientParams{
		Group:           sass.GroupGP,
		BitFlip:         core.FlipSingleBit,
		KernelName:      "tiny",
		KernelCount:     0,
		InstrCount:      6, // 7th execution of instruction 2 = lane 6
		SiteResolved:    true,
		StaticInstrIdx:  2,
		DestRegSelect:   0,
		BitPatternValue: 0.5, // bit 16
	})
	if err != nil {
		t.Fatal(err)
	}
	vals := runTiny(t, inj, 1)
	rec := inj.Record()
	if !rec.Activated || rec.NoDestination {
		t.Fatalf("injection record: %+v", rec)
	}
	if rec.Lane != 6 || rec.InstrIdx != 2 || rec.Target != "R2" {
		t.Fatalf("injection hit the wrong site: %+v", rec)
	}
	for i, v := range vals {
		want := uint32(i + 3)
		if i == 6 {
			want ^= 1 << 16
		}
		if v != want {
			t.Fatalf("out[%d] = 0x%x, want 0x%x", i, v, want)
		}
	}
}

// TestSiteResolvedOutOfRange: a static index beyond the kernel (or naming
// an instruction outside the group) instruments nothing and never
// activates, like any other site that does not exist at run time.
func TestSiteResolvedOutOfRange(t *testing.T) {
	inj, err := core.NewTransientInjector(core.TransientParams{
		Group: sass.GroupGP, BitFlip: core.FlipSingleBit,
		KernelName: "tiny", KernelCount: 0, InstrCount: 0,
		SiteResolved: true, StaticInstrIdx: 99,
		DestRegSelect: 0, BitPatternValue: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	vals := runTiny(t, inj, 1)
	if rec := inj.Record(); rec.Activated {
		t.Fatalf("out-of-range site activated: %+v", rec)
	}
	for i, v := range vals {
		if v != uint32(i+3) {
			t.Fatalf("out[%d] = 0x%x, want clean run", i, v)
		}
	}
}

// TestProfilerSiteCounts: a live profiler run fills the per-static-
// instruction breakdown consistently with the per-opcode totals.
func TestProfilerSiteCounts(t *testing.T) {
	prof, err := core.NewProfiler("tiny", core.Exact)
	if err != nil {
		t.Fatal(err)
	}
	runTiny(t, prof, 2)
	p := prof.Finish()
	if len(p.Records) != 2 {
		t.Fatalf("records = %d", len(p.Records))
	}
	for ri := range p.Records {
		rec := &p.Records[ri]
		if !rec.HasSites() || len(rec.SiteCounts) != 7 {
			t.Fatalf("record %d: site breakdown missing or wrong length: %+v", ri, rec)
		}
		// Every instruction executes all 32 lanes once per launch.
		for i, c := range rec.SiteCounts {
			if c != 32 {
				t.Fatalf("record %d site %d count = %d, want 32", ri, i, c)
			}
		}
		perOp := make(map[sass.Op]uint64)
		for i, op := range rec.SiteOps {
			perOp[op] += rec.SiteCounts[i]
		}
		for op, c := range rec.OpCounts {
			if perOp[op] != c {
				t.Fatalf("record %d: site sum for %v = %d, opcode count %d", ri, op, perOp[op], c)
			}
		}
	}
	// The breakdown survives serialization.
	got, err := core.ParseProfile(strings.NewReader(p.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Records[1].HasSites() || got.Records[1].SiteCounts[0] != 32 {
		t.Fatalf("site data lost in round trip: %+v", got.Records[1])
	}
}
