package core

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/nvbit"
	"repro/internal/sass"
)

// Profiler is the profiler.so analog: an NVBit tool that instruments
// kernels to count dynamic, thread-level instruction executions per opcode
// per dynamic kernel. In Exact mode every dynamic kernel is instrumented;
// in Approximate mode only the first instance of each static kernel is,
// and later instances are extrapolated from it (Section III-A).
type Profiler struct {
	mode ProfileMode

	program      string
	instrumented map[string]bool // static kernels already profiled (approx mode)
	current      *KernelRecord   // record under accumulation (launches are serial)
	records      []KernelRecord
}

var _ nvbit.Tool = (*Profiler)(nil)

// NewProfiler creates a profiler in the given mode.
func NewProfiler(program string, mode ProfileMode) (*Profiler, error) {
	if mode != Exact && mode != Approximate {
		return nil, fmt.Errorf("core: invalid profile mode %d", mode)
	}
	return &Profiler{
		mode:         mode,
		program:      program,
		instrumented: make(map[string]bool),
	}, nil
}

// Name implements nvbit.Tool.
func (p *Profiler) Name() string { return "profiler" }

// OnLaunch implements nvbit.Tool: decide whether this dynamic kernel is
// counted directly or extrapolated.
func (p *Profiler) OnLaunch(info *nvbit.LaunchInfo) nvbit.Decision {
	rec := KernelRecord{
		Kernel:      info.Kernel.Name,
		LaunchIndex: info.LaunchIndex,
		OpCounts:    make(map[sass.Op]uint64),
		SiteOps:     make([]sass.Op, len(info.Kernel.Instrs)),
		SiteCounts:  make([]uint64, len(info.Kernel.Instrs)),
	}
	for i := range info.Kernel.Instrs {
		rec.SiteOps[i] = info.Kernel.Instrs[i].Op
	}
	if p.mode == Approximate && p.instrumented[info.Kernel.Name] {
		rec.Extrapolated = true
		p.records = append(p.records, rec)
		p.current = nil
		return nvbit.RunOriginal
	}
	p.instrumented[info.Kernel.Name] = true
	p.records = append(p.records, rec)
	p.current = &p.records[len(p.records)-1]
	return nvbit.Decision{Instrument: true, Key: "profile"}
}

// Instrument implements nvbit.Tool: count every instruction's active lanes.
// The callback closure is built once and shared by all launches through the
// JIT cache; it accumulates into whichever record is current.
func (p *Profiler) Instrument(k *sass.Kernel, _ string, ins *nvbit.Inserter) {
	for i := range k.Instrs {
		op := k.Instrs[i].Op
		idx := i
		ins.InsertAfter(i, func(c *gpu.InstrCtx) {
			if p.current != nil {
				n := uint64(c.LaneCount())
				p.current.OpCounts[op] += n
				if idx < len(p.current.SiteCounts) {
					p.current.SiteCounts[idx] += n
				}
			}
		})
	}
}

// OnLaunchDone implements nvbit.Tool.
func (p *Profiler) OnLaunchDone(*nvbit.LaunchInfo, gpu.LaunchStats, *gpu.Trap, bool) {
	p.current = nil
}

// Finish resolves the profile. In Approximate mode, extrapolated records
// receive copies of the counts measured on the first instance of their
// static kernel.
func (p *Profiler) Finish() *Profile {
	firstByKernel := make(map[string]*KernelRecord)
	for i := range p.records {
		r := &p.records[i]
		if !r.Extrapolated {
			if _, ok := firstByKernel[r.Kernel]; !ok {
				firstByKernel[r.Kernel] = r
			}
		}
	}
	out := &Profile{Program: p.program, Mode: p.mode, Records: make([]KernelRecord, len(p.records))}
	for i := range p.records {
		r := p.records[i]
		if r.Extrapolated {
			if first, ok := firstByKernel[r.Kernel]; ok {
				counts := make(map[sass.Op]uint64, len(first.OpCounts))
				for op, c := range first.OpCounts {
					counts[op] = c
				}
				r.OpCounts = counts
				r.SiteOps = append([]sass.Op(nil), first.SiteOps...)
				r.SiteCounts = append([]uint64(nil), first.SiteCounts...)
			}
		}
		out.Records[i] = r
	}
	return out
}
