package core

import (
	"strings"
	"testing"

	"repro/internal/sass"
)

func TestDiffProfilesIdentical(t *testing.T) {
	a := sampleProfile()
	d := DiffProfiles(a, sampleProfile(), sass.GroupGPPR)
	if d.TotalA != d.TotalB || d.MaxRelDelta() != 0 || d.TotalRelDelta() != 0 {
		t.Fatalf("identical profiles diff: %+v", d)
	}
	if len(d.OnlyA) != 0 || len(d.OnlyB) != 0 {
		t.Fatalf("phantom kernels: %+v", d)
	}
	if len(d.Kernels) != 3 {
		t.Fatalf("kernel comparisons = %d", len(d.Kernels))
	}
}

func TestDiffProfilesDeviation(t *testing.T) {
	a := sampleProfile()
	b := sampleProfile()
	// Halve the second k1 instance's FADD count in b and drop k2,
	// adding an extra kernel only b saw.
	b.Records[2].OpCounts[sass.MustOp("FADD")] = 50
	b.Records = append(b.Records[:1], b.Records[2])
	b.Records = append(b.Records, KernelRecord{
		Kernel: "k3", LaunchIndex: 0,
		OpCounts: map[sass.Op]uint64{sass.MustOp("MOV"): 5},
	})

	d := DiffProfiles(a, b, sass.GroupFP32)
	if len(d.OnlyA) != 1 || !strings.Contains(d.OnlyA[0], "k2") {
		t.Fatalf("OnlyA = %v", d.OnlyA)
	}
	if len(d.OnlyB) != 1 || !strings.Contains(d.OnlyB[0], "k3") {
		t.Fatalf("OnlyB = %v", d.OnlyB)
	}
	if d.MaxRelDelta() != 0.5 {
		t.Fatalf("max relative delta = %v, want 0.5", d.MaxRelDelta())
	}

	var sb strings.Builder
	if err := d.WriteReport(&sb, 0.01); err != nil {
		t.Fatal(err)
	}
	rep := sb.String()
	for _, want := range []string{"k1/1", "only in A: k2/0", "only in B: k3/0"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestKernelDiffRelDelta(t *testing.T) {
	tests := []struct {
		a, b uint64
		want float64
	}{
		{0, 0, 0},
		{10, 10, 0},
		{10, 5, 0.5},
		{5, 10, 0.5},
		{0, 7, 1},
		{7, 0, 1},
	}
	for _, tc := range tests {
		if got := (KernelDiff{A: tc.a, B: tc.b}).RelDelta(); got != tc.want {
			t.Errorf("RelDelta(%d,%d) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}
