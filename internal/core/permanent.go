package core

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/nvbit"
	"repro/internal/sass"
)

// ActivationGate decides whether the nth potential activation of a
// permanent fault actually corrupts state. A nil gate means every
// activation fires (a true permanent fault). Gates implement the paper's
// intermittent-fault future direction: "inject into only a subset of those
// instructions. The subset can be specified as a random, bursty process."
type ActivationGate interface {
	Active(activation uint64) bool
}

// RandomGate activates each instance independently with probability P,
// deterministically derived from the seed.
type RandomGate struct {
	P    float64
	Seed int64
}

// Active implements ActivationGate. The decision is a pure function of the
// activation index so that replays are identical: one splitmix64 scramble of
// the seed/index pair yields the uniform variate, with no per-activation
// allocation (this runs once per dynamic instance of the faulty opcode).
func (g RandomGate) Active(activation uint64) bool {
	z := uint64(g.Seed) ^ (activation+1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11)/(1<<53) < g.P
}

// BurstGate activates in bursts: BurstLen activations fire out of every
// Period, starting at Offset.
type BurstGate struct {
	Period   uint64
	BurstLen uint64
	Offset   uint64
}

// Active implements ActivationGate.
func (g BurstGate) Active(activation uint64) bool {
	if g.Period == 0 {
		return true
	}
	return (activation+g.Offset)%g.Period < g.BurstLen
}

// CorruptionFunc computes the corrupted register value — the hook behind
// the paper's fault-dictionary extension. old is the just-written value.
type CorruptionFunc func(op sass.Op, old uint32) uint32

// FaultDictionary maps opcodes to specialized corruption functions,
// overriding the default XOR mask (Section V: "a fault dictionary might be
// useful when a complex fault model is not easily characterized by a set of
// parameters").
type FaultDictionary map[sass.Op]CorruptionFunc

// PermanentInjector is the pf_injector.so analog: it corrupts the
// destination register of every dynamic instance of the target opcode(s)
// that executes on the target SM and lane, with one XOR mask (Table III).
// Optional gates make it intermittent; an optional dictionary specializes
// the corruption per opcode.
type PermanentInjector struct {
	P    PermanentParams
	ops  map[sass.Op]bool
	gate ActivationGate
	dict FaultDictionary

	activations uint64 // times the fault site was exercised
	corruptions uint64 // times state was actually corrupted
}

var _ nvbit.Tool = (*PermanentInjector)(nil)

// NewPermanentInjector validates params against the device shape and
// resolves opcode ids for its family.
func NewPermanentInjector(p PermanentParams, family sass.Family, numSMs int) (*PermanentInjector, error) {
	if err := p.Validate(family, numSMs); err != nil {
		return nil, err
	}
	set := sass.OpcodeSet(family)
	ops := map[sass.Op]bool{set[p.OpcodeID]: true}
	for _, id := range p.ExtraOpcodeIDs {
		ops[set[id]] = true
	}
	return &PermanentInjector{P: p, ops: ops}, nil
}

// SetGate makes the fault intermittent (extension). Must be set before the
// first launch.
func (pi *PermanentInjector) SetGate(g ActivationGate) { pi.gate = g }

// SetDictionary installs per-opcode corruption functions (extension).
func (pi *PermanentInjector) SetDictionary(d FaultDictionary) { pi.dict = d }

// Activations returns how many times the fault site was exercised.
func (pi *PermanentInjector) Activations() uint64 { return pi.activations }

// Corruptions returns how many activations actually corrupted state.
func (pi *PermanentInjector) Corruptions() uint64 { return pi.corruptions }

// Name implements nvbit.Tool.
func (pi *PermanentInjector) Name() string { return "pf_injector" }

// categories returns the functional categories the fault's opcodes belong
// to. A hardware-mapped fault cannot be statically narrowed to one opcode:
// the check runs at runtime on every instruction routed to the faulty
// unit, so the injector instruments the whole category and filters in the
// callback — as NVBitFI's pf_injector instruments broadly and filters in
// its injected device function.
func (pi *PermanentInjector) categories() map[sass.Category]bool {
	cats := make(map[sass.Category]bool, 2)
	for op := range pi.ops {
		cats[op.Info().Cat] = true
	}
	return cats
}

// OnLaunch implements nvbit.Tool: a permanent fault is present in every
// kernel, so every launch whose kernel executes the opcode is instrumented.
func (pi *PermanentInjector) OnLaunch(info *nvbit.LaunchInfo) nvbit.Decision {
	for i := range info.Kernel.Instrs {
		if pi.ops[info.Kernel.Instrs[i].Op] {
			return nvbit.Decision{Instrument: true, Key: fmt.Sprintf("pf:%d", pi.P.OpcodeID)}
		}
	}
	return nvbit.RunOriginal
}

// Instrument implements nvbit.Tool: every instruction in the faulty unit's
// categories carries the check; the exact-opcode match happens at runtime
// in the callback.
func (pi *PermanentInjector) Instrument(k *sass.Kernel, _ string, ins *nvbit.Inserter) {
	cats := pi.categories()
	for i := range k.Instrs {
		if !cats[k.Instrs[i].Op.Info().Cat] {
			continue
		}
		ins.InsertAfter(i, pi.step)
	}
}

// step corrupts the destination of the target lane when a target-opcode
// instruction executes on the target SM.
func (pi *PermanentInjector) step(c *gpu.InstrCtx) {
	if !pi.ops[c.Instr.Op] || c.SMID != pi.P.SMID || !c.LaneActive(pi.P.Lane) {
		return
	}
	act := pi.activations
	pi.activations++
	if pi.gate != nil && !pi.gate.Active(act) {
		return
	}
	targets := destTargets(c.Instr)
	if len(targets) == 0 {
		return
	}
	lane := pi.P.Lane
	// Per Table III, "the destination registers of all dynamic instances of
	// a particular opcode [are] corrupted with the same bit-flip XOR mask" —
	// registers plural: a pair-valued FP64 result or a wide load has every
	// destination register corrupted.
	for _, tg := range targets {
		if tg.isPred {
			if pi.P.BitMask&1 != 0 {
				c.WritePred(lane, tg.pred, !c.ReadPred(lane, tg.pred))
				pi.corruptions++
			}
			continue
		}
		old := c.ReadReg(lane, tg.reg)
		var corrupted uint32
		if fn, ok := pi.dict[c.Instr.Op]; ok {
			corrupted = fn(c.Instr.Op, old)
		} else {
			corrupted = old ^ pi.P.BitMask
		}
		if corrupted != old {
			c.WriteReg(lane, tg.reg, corrupted)
			pi.corruptions++
		}
	}
}

// OnLaunchDone implements nvbit.Tool.
func (pi *PermanentInjector) OnLaunchDone(*nvbit.LaunchInfo, gpu.LaunchStats, *gpu.Trap, bool) {}
