package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sass"
)

func TestSelectTransientFaultBounds(t *testing.T) {
	p := sampleProfile()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		params, err := SelectTransientFault(p, sass.GroupGPPR, FlipSingleBit, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := params.Validate(); err != nil {
			t.Fatalf("selected invalid params: %v", err)
		}
		// The instruction count must be within the selected record's
		// group total.
		var rec *KernelRecord
		for j := range p.Records {
			r := &p.Records[j]
			if r.Kernel == params.KernelName && r.LaunchIndex == params.KernelCount {
				rec = r
			}
		}
		if rec == nil {
			t.Fatalf("selected nonexistent dynamic kernel %s/%d",
				params.KernelName, params.KernelCount)
		}
		if params.InstrCount >= rec.Total(sass.GroupGPPR) {
			t.Fatalf("instruction count %d beyond record total %d",
				params.InstrCount, rec.Total(sass.GroupGPPR))
		}
	}
}

// TestSelectUniformity: selection probability is proportional to each
// dynamic kernel's share of eligible instructions.
func TestSelectUniformity(t *testing.T) {
	fadd := sass.MustOp("FADD")
	p := &Profile{
		Program: "u",
		Mode:    Exact,
		Records: []KernelRecord{
			{Kernel: "small", LaunchIndex: 0, OpCounts: map[sass.Op]uint64{fadd: 100}},
			{Kernel: "big", LaunchIndex: 0, OpCounts: map[sass.Op]uint64{fadd: 300}},
		},
	}
	rng := rand.New(rand.NewSource(9))
	const n = 4000
	hits := 0
	for i := 0; i < n; i++ {
		params, err := SelectTransientFault(p, sass.GroupFP32, FlipSingleBit, rng)
		if err != nil {
			t.Fatal(err)
		}
		if params.KernelName == "big" {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.75) > 0.03 {
		t.Fatalf("big kernel selected %.3f of the time, want ~0.75", got)
	}
}

func TestSelectEmptyGroup(t *testing.T) {
	p := sampleProfile() // has no FP16/half and no texture loads beyond LDG
	rng := rand.New(rand.NewSource(1))
	// Remove loads to make G_LD empty.
	for i := range p.Records {
		delete(p.Records[i].OpCounts, sass.MustOp("LDG"))
	}
	if _, err := SelectTransientFault(p, sass.GroupLD, FlipSingleBit, rng); err == nil {
		t.Fatal("selection from an empty group succeeded")
	}
}

func TestSelectPermanentFaults(t *testing.T) {
	p := sampleProfile()
	rng := rand.New(rand.NewSource(2))
	faults, err := SelectPermanentFaults(p, sass.FamilyVolta, 8, FlipSingleBit, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(faults) != len(p.ExecutedOpcodes()) {
		t.Fatalf("%d faults for %d executed opcodes", len(faults), len(p.ExecutedOpcodes()))
	}
	set := sass.OpcodeSet(sass.FamilyVolta)
	seen := make(map[sass.Op]bool)
	for _, f := range faults {
		if err := f.Validate(sass.FamilyVolta, 8); err != nil {
			t.Fatalf("invalid fault: %v", err)
		}
		if f.BitMask == 0 {
			t.Fatal("permanent fault with a zero mask is a no-op")
		}
		op := set[f.OpcodeID]
		if seen[op] {
			t.Fatalf("opcode %v selected twice", op)
		}
		seen[op] = true
	}
	for _, op := range p.ExecutedOpcodes() {
		if !seen[op] {
			t.Fatalf("executed opcode %v has no fault", op)
		}
	}
}

func TestSelectDeterminism(t *testing.T) {
	p := sampleProfile()
	a, err := SelectTransientFault(p, sass.GroupGP, RandomValue, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SelectTransientFault(p, sass.GroupGP, RandomValue, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("same seed selected different faults:\n%+v\n%+v", *a, *b)
	}
}

// siteProfile builds a profile carrying the per-static-instruction
// breakdown that site-resolved selection needs.
func siteProfile() *Profile {
	fadd := sass.MustOp("FADD")
	iadd := sass.MustOp("IADD")
	stg := sass.MustOp("STG")
	exit := sass.MustOp("EXIT")
	return &Profile{
		Program: "prog",
		Mode:    Exact,
		Records: []KernelRecord{
			{
				Kernel: "k1", LaunchIndex: 0,
				OpCounts:   map[sass.Op]uint64{fadd: 130, iadd: 50, stg: 30, exit: 10},
				SiteOps:    []sass.Op{fadd, iadd, fadd, stg, exit},
				SiteCounts: []uint64{100, 50, 30, 30, 10},
			},
			{
				Kernel: "k2", LaunchIndex: 0,
				OpCounts:   map[sass.Op]uint64{fadd: 40, exit: 8},
				SiteOps:    []sass.Op{fadd, exit},
				SiteCounts: []uint64{40, 8},
			},
		},
	}
}

// TestSelectSiteSameStream: site-resolved selection consumes the RNG
// stream exactly like the legacy selector, so a fixed seed picks the same
// dynamic kernel and the same register/bit-pattern draws.
func TestSelectSiteSameStream(t *testing.T) {
	p := siteProfile()
	for seed := int64(0); seed < 200; seed++ {
		legacy, err := SelectTransientFault(p, sass.GroupGP, FlipSingleBit, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		site, err := SelectTransientFaultSite(p, sass.GroupGP, FlipSingleBit, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if !site.SiteResolved {
			t.Fatal("site selection not marked SiteResolved")
		}
		if site.KernelName != legacy.KernelName || site.KernelCount != legacy.KernelCount {
			t.Fatalf("seed %d: site picked %s/%d, legacy %s/%d", seed,
				site.KernelName, site.KernelCount, legacy.KernelName, legacy.KernelCount)
		}
		if site.DestRegSelect != legacy.DestRegSelect || site.BitPatternValue != legacy.BitPatternValue {
			t.Fatalf("seed %d: RNG streams diverged", seed)
		}
		// The resolved site must be an in-range instruction of the group.
		var rec *KernelRecord
		for i := range p.Records {
			if p.Records[i].Kernel == site.KernelName && p.Records[i].LaunchIndex == site.KernelCount {
				rec = &p.Records[i]
			}
		}
		if site.StaticInstrIdx < 0 || site.StaticInstrIdx >= len(rec.SiteOps) {
			t.Fatalf("seed %d: static index %d out of range", seed, site.StaticInstrIdx)
		}
		op := rec.SiteOps[site.StaticInstrIdx]
		if !sass.GroupContains(sass.GroupGP, op) {
			t.Fatalf("seed %d: resolved site opcode %v outside group", seed, op)
		}
		if site.InstrCount >= rec.SiteCounts[site.StaticInstrIdx] {
			t.Fatalf("seed %d: per-site count %d beyond site total %d", seed,
				site.InstrCount, rec.SiteCounts[site.StaticInstrIdx])
		}
	}
}

func TestSelectSiteDeterminism(t *testing.T) {
	p := siteProfile()
	a, err := SelectTransientFaultSite(p, sass.GroupGPPR, FlipSingleBit, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SelectTransientFaultSite(p, sass.GroupGPPR, FlipSingleBit, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("same seed selected different faults:\n%+v\n%+v", *a, *b)
	}
}

func TestSelectSiteRequiresSiteData(t *testing.T) {
	p := sampleProfile() // no site breakdown
	if _, err := SelectTransientFaultSite(p, sass.GroupGP, FlipSingleBit, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("site selection succeeded on a profile without site data")
	}
}
