package core

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/sass"
)

// TransientParams is the transient-fault parameter file (Table II): two
// fault-type parameters and five specific-target parameters. Each parameter
// occupies one line of the parameter file.
type TransientParams struct {
	// Group is the arch state id: which instruction subset to inject.
	Group sass.Group
	// BitFlip selects the bit-error pattern.
	BitFlip BitFlipModel
	// KernelName names the target GPU kernel.
	KernelName string
	// KernelCount selects the (n+1)th dynamic instance of the kernel;
	// 0 is the first.
	KernelCount int
	// InstrCount selects the (n+1)th eligible thread-level dynamic
	// execution within that kernel instance; 0 is the first.
	InstrCount uint64
	// DestRegSelect in [0,1) chooses which destination register to corrupt
	// when the instruction writes more than one.
	DestRegSelect float64
	// BitPatternValue in [0,1) parameterizes the bit-error mask.
	BitPatternValue float64

	// SiteResolved marks a parameter set whose selection was resolved to a
	// static instruction at selection time (SelectTransientFaultSite):
	// StaticInstrIdx names the instruction and InstrCount counts eligible
	// executions of that instruction only, rather than of the whole group.
	// The zero value preserves the paper's dynamic-index semantics.
	SiteResolved bool
	// StaticInstrIdx is the target's static instruction index within the
	// kernel; meaningful only when SiteResolved is set.
	StaticInstrIdx int

	// Thread optionally restricts eligible executions to one thread — the
	// paper's "targeting a specified thread" future direction. Nil means
	// any thread.
	Thread *ThreadSelector

	// MultiRegCount, when greater than one, corrupts that many consecutive
	// destination registers starting at the selected one — the paper's
	// "corrupting multiple registers" future direction (Section V). Zero
	// and one both mean the paper's single-register model.
	MultiRegCount int
}

// ThreadSelector pins an injection to one thread (extension, Section V).
type ThreadSelector struct {
	BlockLinear int // linear block index within the grid
	WarpID      int // warp within the block
	Lane        int // lane within the warp
}

// Validate checks parameter ranges.
func (p *TransientParams) Validate() error {
	if !p.Group.Valid() {
		return fmt.Errorf("core: invalid arch state id %d", p.Group)
	}
	if !p.BitFlip.Valid() {
		return fmt.Errorf("core: invalid bit-flip model %d", p.BitFlip)
	}
	if p.KernelName == "" {
		return fmt.Errorf("core: empty kernel name")
	}
	if p.KernelCount < 0 {
		return fmt.Errorf("core: negative kernel count")
	}
	if p.DestRegSelect < 0 || p.DestRegSelect >= 1 {
		return fmt.Errorf("core: destination register value %v outside [0,1)", p.DestRegSelect)
	}
	if p.BitPatternValue < 0 || p.BitPatternValue >= 1 {
		return fmt.Errorf("core: bit-pattern value %v outside [0,1)", p.BitPatternValue)
	}
	if p.Thread != nil {
		if p.Thread.BlockLinear < 0 || p.Thread.WarpID < 0 ||
			p.Thread.Lane < 0 || p.Thread.Lane >= 32 {
			return fmt.Errorf("core: invalid thread selector %+v", *p.Thread)
		}
	}
	if p.MultiRegCount < 0 {
		return fmt.Errorf("core: negative multi-register count %d", p.MultiRegCount)
	}
	if p.SiteResolved && p.StaticInstrIdx < 0 {
		return fmt.Errorf("core: negative static instruction index %d", p.StaticInstrIdx)
	}
	if !p.SiteResolved && p.StaticInstrIdx != 0 {
		return fmt.Errorf("core: static instruction index set without site resolution")
	}
	return nil
}

// WriteTo serializes the parameter file: one parameter per line, in Table
// II order.
func (p *TransientParams) WriteTo(w io.Writer) (int64, error) {
	s := fmt.Sprintf("%d\n%d\n%s\n%d\n%d\n%g\n%g\n",
		p.Group, p.BitFlip, p.KernelName, p.KernelCount, p.InstrCount,
		p.DestRegSelect, p.BitPatternValue)
	if p.Thread != nil {
		s += fmt.Sprintf("thread %d %d %d\n",
			p.Thread.BlockLinear, p.Thread.WarpID, p.Thread.Lane)
	}
	if p.MultiRegCount > 1 {
		s += fmt.Sprintf("multiregs %d\n", p.MultiRegCount)
	}
	if p.SiteResolved {
		s += fmt.Sprintf("site %d\n", p.StaticInstrIdx)
	}
	n, err := io.WriteString(w, s)
	return int64(n), err
}

// String renders the parameter file text.
func (p *TransientParams) String() string {
	var sb strings.Builder
	if _, err := p.WriteTo(&sb); err != nil {
		return "<error: " + err.Error() + ">"
	}
	return sb.String()
}

// ParseTransientParams reads a parameter file written by WriteTo.
func ParseTransientParams(r io.Reader) (*TransientParams, error) {
	sc := bufio.NewScanner(r)
	var lines []string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" && !strings.HasPrefix(line, "#") {
			lines = append(lines, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("core: reading parameter file: %w", err)
	}
	if len(lines) < 7 {
		return nil, fmt.Errorf("core: parameter file has %d lines, want at least 7", len(lines))
	}
	var p TransientParams
	g, err := sass.ParseGroup(lines[0])
	if err != nil {
		return nil, err
	}
	p.Group = g
	bf, err := strconv.Atoi(lines[1])
	if err != nil {
		return nil, fmt.Errorf("core: bad bit-flip model: %v", err)
	}
	p.BitFlip = BitFlipModel(bf)
	p.KernelName = lines[2]
	if p.KernelCount, err = strconv.Atoi(lines[3]); err != nil {
		return nil, fmt.Errorf("core: bad kernel count: %v", err)
	}
	if p.InstrCount, err = strconv.ParseUint(lines[4], 10, 64); err != nil {
		return nil, fmt.Errorf("core: bad instruction count: %v", err)
	}
	if p.DestRegSelect, err = strconv.ParseFloat(lines[5], 64); err != nil {
		return nil, fmt.Errorf("core: bad destination register value: %v", err)
	}
	if p.BitPatternValue, err = strconv.ParseFloat(lines[6], 64); err != nil {
		return nil, fmt.Errorf("core: bad bit-pattern value: %v", err)
	}
	for _, extra := range lines[7:] {
		fields := strings.Fields(extra)
		switch {
		case len(fields) == 4 && fields[0] == "thread":
			blk, err1 := strconv.Atoi(fields[1])
			warp, err2 := strconv.Atoi(fields[2])
			lane, err3 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("core: bad thread selector line %q", extra)
			}
			p.Thread = &ThreadSelector{BlockLinear: blk, WarpID: warp, Lane: lane}
		case len(fields) == 2 && fields[0] == "multiregs":
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("core: bad multiregs line %q", extra)
			}
			p.MultiRegCount = n
		case len(fields) == 2 && fields[0] == "site":
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("core: bad site line %q", extra)
			}
			p.SiteResolved = true
			p.StaticInstrIdx = n
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// PermanentParams is the permanent-fault parameter set (Table III).
type PermanentParams struct {
	// SMID selects which streaming multiprocessor to inject.
	SMID int
	// Lane selects which of the 32 hardware lanes to inject.
	Lane int
	// BitMask is the XOR mask applied to destination registers.
	BitMask uint32
	// OpcodeID indexes the architecture family's opcode set (for Volta,
	// 0..170).
	OpcodeID int

	// ExtraOpcodeIDs extends the fault to additional opcodes — the paper's
	// "allowing a permanent fault to affect multiple opcodes" extension,
	// e.g. every opcode sharing a faulty ALU.
	ExtraOpcodeIDs []int
}

// Validate checks ranges against the family's opcode set size.
func (p *PermanentParams) Validate(family sass.Family, numSMs int) error {
	if p.SMID < 0 || p.SMID >= numSMs {
		return fmt.Errorf("core: SM id %d outside 0..%d", p.SMID, numSMs-1)
	}
	if p.Lane < 0 || p.Lane >= 32 {
		return fmt.Errorf("core: lane id %d outside 0..31", p.Lane)
	}
	n := sass.OpcodeCount(family)
	for _, id := range append([]int{p.OpcodeID}, p.ExtraOpcodeIDs...) {
		if id < 0 || id >= n {
			return fmt.Errorf("core: opcode id %d outside 0..%d for %v", id, n-1, family)
		}
	}
	return nil
}

// Opcode resolves the opcode id within a family's opcode set.
func (p *PermanentParams) Opcode(family sass.Family) sass.Op {
	return sass.OpcodeSet(family)[p.OpcodeID]
}

// WriteTo serializes the parameter file, one parameter per line in Table
// III order (SM id, lane id, bit mask, opcode id).
func (p *PermanentParams) WriteTo(w io.Writer) (int64, error) {
	s := fmt.Sprintf("%d\n%d\n0x%x\n%d\n", p.SMID, p.Lane, p.BitMask, p.OpcodeID)
	for _, id := range p.ExtraOpcodeIDs {
		s += fmt.Sprintf("opcode %d\n", id)
	}
	n, err := io.WriteString(w, s)
	return int64(n), err
}

// String renders the parameter file text.
func (p *PermanentParams) String() string {
	var sb strings.Builder
	if _, err := p.WriteTo(&sb); err != nil {
		return "<error: " + err.Error() + ">"
	}
	return sb.String()
}

// ParsePermanentParams reads a permanent-fault parameter file.
func ParsePermanentParams(r io.Reader) (*PermanentParams, error) {
	sc := bufio.NewScanner(r)
	var lines []string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" && !strings.HasPrefix(line, "#") {
			lines = append(lines, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("core: reading parameter file: %w", err)
	}
	if len(lines) < 4 {
		return nil, fmt.Errorf("core: permanent parameter file has %d lines, want at least 4", len(lines))
	}
	var p PermanentParams
	var err error
	if p.SMID, err = strconv.Atoi(lines[0]); err != nil {
		return nil, fmt.Errorf("core: bad SM id: %v", err)
	}
	if p.Lane, err = strconv.Atoi(lines[1]); err != nil {
		return nil, fmt.Errorf("core: bad lane id: %v", err)
	}
	mask, err := strconv.ParseUint(lines[2], 0, 32)
	if err != nil {
		return nil, fmt.Errorf("core: bad bit mask: %v", err)
	}
	p.BitMask = uint32(mask)
	if p.OpcodeID, err = strconv.Atoi(lines[3]); err != nil {
		return nil, fmt.Errorf("core: bad opcode id: %v", err)
	}
	for _, extra := range lines[4:] {
		fields := strings.Fields(extra)
		if len(fields) == 2 && fields[0] == "opcode" {
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("core: bad extra opcode line %q", extra)
			}
			p.ExtraOpcodeIDs = append(p.ExtraOpcodeIDs, id)
		}
	}
	return &p, nil
}
