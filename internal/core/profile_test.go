package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/sass"
)

func sampleProfile() *Profile {
	return &Profile{
		Program: "prog",
		Mode:    Exact,
		Records: []KernelRecord{
			{
				Kernel: "k1", LaunchIndex: 0,
				OpCounts: map[sass.Op]uint64{
					sass.MustOp("FADD"):  100,
					sass.MustOp("IADD"):  50,
					sass.MustOp("LDG"):   30,
					sass.MustOp("ISETP"): 20,
					sass.MustOp("STG"):   30,
					sass.MustOp("EXIT"):  10,
				},
			},
			{
				Kernel: "k2", LaunchIndex: 0,
				OpCounts: map[sass.Op]uint64{
					sass.MustOp("DADD"): 40,
					sass.MustOp("DMUL"): 60,
				},
			},
			{
				Kernel: "k1", LaunchIndex: 1,
				OpCounts: map[sass.Op]uint64{
					sass.MustOp("FADD"): 100,
				},
			},
		},
	}
}

func TestProfileTotals(t *testing.T) {
	p := sampleProfile()
	tests := []struct {
		g    sass.Group
		want uint64
	}{
		{sass.GroupFP32, 200},  // FADD in both k1 instances
		{sass.GroupFP64, 100},  // DADD + DMUL
		{sass.GroupLD, 30},     // LDG
		{sass.GroupPR, 20},     // ISETP
		{sass.GroupNODEST, 40}, // STG + EXIT
		{sass.GroupOTHERS, 50}, // IADD
		{sass.GroupGPPR, 400},  // all - NODEST
		{sass.GroupGP, 380},    // all - NODEST - PR
	}
	for _, tc := range tests {
		if got := p.TotalInstrs(tc.g); got != tc.want {
			t.Errorf("TotalInstrs(%v) = %d, want %d", tc.g, got, tc.want)
		}
	}
	if got := len(p.ExecutedOpcodes()); got != 8 {
		t.Errorf("executed opcodes = %d, want 8", got)
	}
	if got := p.StaticKernels(); len(got) != 2 || got[0] != "k1" || got[1] != "k2" {
		t.Errorf("static kernels = %v", got)
	}
	if p.DynamicKernels() != 3 {
		t.Errorf("dynamic kernels = %d", p.DynamicKernels())
	}
	totals := p.OpcodeTotals()
	if totals[sass.MustOp("FADD")] != 200 {
		t.Errorf("FADD total = %d", totals[sass.MustOp("FADD")])
	}
}

func TestProfileSerializeParseRoundTrip(t *testing.T) {
	p := sampleProfile()
	text := p.String()
	got, err := ParseProfile(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	if got.Program != p.Program || got.Mode != p.Mode || len(got.Records) != len(p.Records) {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range p.Records {
		a, b := p.Records[i], got.Records[i]
		if a.Kernel != b.Kernel || a.LaunchIndex != b.LaunchIndex || len(a.OpCounts) != len(b.OpCounts) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, a, b)
		}
		for op, c := range a.OpCounts {
			if b.OpCounts[op] != c {
				t.Fatalf("record %d count %v = %d, want %d", i, op, b.OpCounts[op], c)
			}
		}
	}
}

// TestProfileRoundTripRandom: random profiles survive the text format.
func TestProfileRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ops := sass.OpcodeSet(sass.FamilyVolta)
	for trial := 0; trial < 100; trial++ {
		p := &Profile{Program: "r", Mode: ProfileMode(1 + rng.Intn(2))}
		for k := 0; k < 1+rng.Intn(5); k++ {
			rec := KernelRecord{
				Kernel:      "kern" + string(rune('a'+rng.Intn(3))),
				LaunchIndex: k,
				OpCounts:    map[sass.Op]uint64{},
			}
			for j := 0; j < rng.Intn(10); j++ {
				rec.OpCounts[ops[rng.Intn(len(ops))]] = uint64(rng.Intn(1 << 30))
			}
			p.Records = append(p.Records, rec)
		}
		got, err := ParseProfile(strings.NewReader(p.String()))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, g := range sass.PrimaryGroups() {
			if got.TotalInstrs(g) != p.TotalInstrs(g) {
				t.Fatalf("trial %d: group %v totals differ", trial, g)
			}
		}
	}
}

func TestParseProfileErrors(t *testing.T) {
	bad := []string{
		"k1; x; FADD=1",       // bad launch index
		"k1; 0; NOTANOP=1",    // unknown opcode
		"k1; 0; FADD",         // missing count
		"k1; 0; FADD=zz",      // bad count
		"justonefield",        // missing separators
		"# mode: sometimes\n", // bad mode
	}
	for _, text := range bad {
		if _, err := ParseProfile(strings.NewReader(text)); err == nil {
			t.Errorf("ParseProfile(%q) succeeded", text)
		}
	}
	// Comments and blank lines are fine.
	ok := "# program: x\n# mode: exact\n\n# a comment\nk1; 0; FADD=3\n"
	p, err := ParseProfile(strings.NewReader(ok))
	if err != nil || len(p.Records) != 1 {
		t.Fatalf("benign profile rejected: %v", err)
	}
}

func TestProfileSitesRoundTrip(t *testing.T) {
	p := siteProfile()
	got, err := ParseProfile(strings.NewReader(p.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(p.Records) {
		t.Fatalf("records = %d, want %d", len(got.Records), len(p.Records))
	}
	for i := range p.Records {
		want, g := &p.Records[i], &got.Records[i]
		if !g.HasSites() || len(g.SiteCounts) != len(want.SiteCounts) {
			t.Fatalf("record %d lost site data: %+v", i, g)
		}
		for j := range want.SiteCounts {
			if g.SiteOps[j] != want.SiteOps[j] || g.SiteCounts[j] != want.SiteCounts[j] {
				t.Fatalf("record %d site %d: got %v=%d, want %v=%d", i, j,
					g.SiteOps[j], g.SiteCounts[j], want.SiteOps[j], want.SiteCounts[j])
			}
		}
	}
}
