package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"unicode"
	"unicode/utf8"

	"repro/internal/sass"
)

// KernelDiff compares one dynamic kernel's eligible-instruction totals
// between two profiles.
type KernelDiff struct {
	Kernel      string
	LaunchIndex int
	A, B        uint64
}

// RelDelta returns |A-B| / max(A,B), or 0 when both are zero.
func (d KernelDiff) RelDelta() float64 {
	if d.A == d.B {
		return 0
	}
	hi := d.A
	if d.B > hi {
		hi = d.B
	}
	lo := d.A + d.B - hi
	return float64(hi-lo) / float64(hi)
}

// ProfileDiff summarizes how two profiles of the same program differ — the
// analysis behind the paper's exact-versus-approximate profiling comparison
// (Section IV-B): approximate profiles assume later instances of a static
// kernel repeat the first instance's counts, so the diff exposes exactly
// where that assumption fails.
type ProfileDiff struct {
	Group          sass.Group
	TotalA, TotalB uint64
	// OnlyA and OnlyB list dynamic kernels present in one profile only.
	OnlyA, OnlyB []string
	// Kernels holds the per-dynamic-kernel comparison for kernels present
	// in both, in profile-A order.
	Kernels []KernelDiff
}

// MaxRelDelta returns the largest per-kernel relative deviation.
func (d *ProfileDiff) MaxRelDelta() float64 {
	max := 0.0
	for _, k := range d.Kernels {
		if r := k.RelDelta(); r > max {
			max = r
		}
	}
	return max
}

// TotalRelDelta returns the whole-profile relative deviation.
func (d *ProfileDiff) TotalRelDelta() float64 {
	return KernelDiff{A: d.TotalA, B: d.TotalB}.RelDelta()
}

// DiffProfiles compares two profiles over one instruction group.
func DiffProfiles(a, b *Profile, g sass.Group) *ProfileDiff {
	key := func(r *KernelRecord) string {
		return fmt.Sprintf("%s/%d", r.Kernel, r.LaunchIndex)
	}
	bByKey := make(map[string]*KernelRecord, len(b.Records))
	for i := range b.Records {
		bByKey[key(&b.Records[i])] = &b.Records[i]
	}
	d := &ProfileDiff{Group: g, TotalA: a.TotalInstrs(g), TotalB: b.TotalInstrs(g)}
	seen := make(map[string]bool, len(a.Records))
	for i := range a.Records {
		ra := &a.Records[i]
		k := key(ra)
		seen[k] = true
		rb, ok := bByKey[k]
		if !ok {
			d.OnlyA = append(d.OnlyA, k)
			continue
		}
		d.Kernels = append(d.Kernels, KernelDiff{
			Kernel:      ra.Kernel,
			LaunchIndex: ra.LaunchIndex,
			A:           ra.Total(g),
			B:           rb.Total(g),
		})
	}
	for i := range b.Records {
		if k := key(&b.Records[i]); !seen[k] {
			d.OnlyB = append(d.OnlyB, k)
		}
	}
	return d
}

// WriteReport prints a human-readable diff, listing only kernels that
// deviate by at least minRel.
func (d *ProfileDiff) WriteReport(w io.Writer, minRel float64) error {
	if _, err := fmt.Fprintf(w, "group %v: A=%d B=%d instructions (%.2f%% apart)\n",
		d.Group, d.TotalA, d.TotalB, 100*d.TotalRelDelta()); err != nil {
		return err
	}
	for _, k := range d.Kernels {
		if r := k.RelDelta(); r >= minRel && r > 0 {
			if _, err := fmt.Fprintf(w, "  %s/%d: A=%d B=%d (%.2f%%)\n",
				k.Kernel, k.LaunchIndex, k.A, k.B, 100*r); err != nil {
				return err
			}
		}
	}
	for _, k := range d.OnlyA {
		if _, err := fmt.Fprintf(w, "  only in A: %s\n", k); err != nil {
			return err
		}
	}
	for _, k := range d.OnlyB {
		if _, err := fmt.Fprintf(w, "  only in B: %s\n", k); err != nil {
			return err
		}
	}
	if math.IsNaN(d.MaxRelDelta()) {
		return fmt.Errorf("core: corrupt diff")
	}
	return nil
}

// The helpers below are the output-comparison primitives behind the SDC
// check every experiment classification runs. A campaign calls them once
// per experiment, overwhelmingly on identical outputs (Masked runs), so
// they take the byte-equality fast path first and allocate nothing on any
// passing comparison.

// FloatClose reports whether two floats match within relative tolerance
// tol: NaN only matches NaN, a zero difference always matches, and values
// with magnitude below 1e-30 are compared absolutely to avoid dividing by
// a denormal scale.
func FloatClose(x, y, tol float64) bool {
	if math.IsNaN(x) || math.IsNaN(y) {
		return math.IsNaN(x) && math.IsNaN(y)
	}
	d := math.Abs(x - y)
	if d == 0 {
		return true
	}
	scale := math.Max(math.Abs(x), math.Abs(y))
	if scale < 1e-30 {
		return d < tol
	}
	return d/scale <= tol
}

// FloatBytesClose32 compares two byte buffers as little-endian float32
// arrays with relative tolerance.
func FloatBytesClose32(a, b []byte, tol float64) bool {
	if len(a) != len(b) || len(a)%4 != 0 {
		return false
	}
	if bytes.Equal(a, b) {
		return true
	}
	for i := 0; i+4 <= len(a); i += 4 {
		x := float64(math.Float32frombits(binary.LittleEndian.Uint32(a[i:])))
		y := float64(math.Float32frombits(binary.LittleEndian.Uint32(b[i:])))
		if !FloatClose(x, y, tol) {
			return false
		}
	}
	return true
}

// FloatBytesClose64 compares two byte buffers as little-endian float64
// arrays with relative tolerance.
func FloatBytesClose64(a, b []byte, tol float64) bool {
	if len(a) != len(b) || len(a)%8 != 0 {
		return false
	}
	if bytes.Equal(a, b) {
		return true
	}
	for i := 0; i+8 <= len(a); i += 8 {
		x := math.Float64frombits(binary.LittleEndian.Uint64(a[i:]))
		y := math.Float64frombits(binary.LittleEndian.Uint64(b[i:]))
		if !FloatClose(x, y, tol) {
			return false
		}
	}
	return true
}

// nextToken returns the bounds of the next whitespace-separated token of s
// at or after i, using the same space definition as strings.Fields. A start
// of len(s) means no token remains.
func nextToken(s string, i int) (start, end int) {
	for i < len(s) {
		r, size := utf8.DecodeRuneInString(s[i:])
		if !unicode.IsSpace(r) {
			break
		}
		i += size
	}
	start = i
	for i < len(s) {
		r, size := utf8.DecodeRuneInString(s[i:])
		if unicode.IsSpace(r) {
			break
		}
		i += size
	}
	return start, i
}

// StdoutTokensClose compares two stdout streams token-wise: numeric tokens
// must match within relative tolerance, anything else byte-exactly. The two
// streams are walked with a cursor each rather than split into token
// slices, and identical tokens skip numeric parsing entirely, so a passing
// comparison performs no allocation.
func StdoutTokensClose(a, b string, tol float64) bool {
	ai, bi := 0, 0
	for {
		as, ae := nextToken(a, ai)
		bs, be := nextToken(b, bi)
		if as == len(a) || bs == len(b) {
			return as == len(a) && bs == len(b)
		}
		ai, bi = ae, be
		at, bt := a[as:ae], b[bs:be]
		if at == bt {
			continue
		}
		// Differing tokens can only still match as numbers within
		// tolerance; a parse failure on either side is a mismatch exactly
		// as it would be comparing token kinds first.
		x, errx := strconv.ParseFloat(at, 64)
		if errx != nil {
			return false
		}
		y, erry := strconv.ParseFloat(bt, 64)
		if erry != nil {
			return false
		}
		if !FloatClose(x, y, tol) {
			return false
		}
	}
}
