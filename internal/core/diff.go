package core

import (
	"fmt"
	"io"
	"math"

	"repro/internal/sass"
)

// KernelDiff compares one dynamic kernel's eligible-instruction totals
// between two profiles.
type KernelDiff struct {
	Kernel      string
	LaunchIndex int
	A, B        uint64
}

// RelDelta returns |A-B| / max(A,B), or 0 when both are zero.
func (d KernelDiff) RelDelta() float64 {
	if d.A == d.B {
		return 0
	}
	hi := d.A
	if d.B > hi {
		hi = d.B
	}
	lo := d.A + d.B - hi
	return float64(hi-lo) / float64(hi)
}

// ProfileDiff summarizes how two profiles of the same program differ — the
// analysis behind the paper's exact-versus-approximate profiling comparison
// (Section IV-B): approximate profiles assume later instances of a static
// kernel repeat the first instance's counts, so the diff exposes exactly
// where that assumption fails.
type ProfileDiff struct {
	Group          sass.Group
	TotalA, TotalB uint64
	// OnlyA and OnlyB list dynamic kernels present in one profile only.
	OnlyA, OnlyB []string
	// Kernels holds the per-dynamic-kernel comparison for kernels present
	// in both, in profile-A order.
	Kernels []KernelDiff
}

// MaxRelDelta returns the largest per-kernel relative deviation.
func (d *ProfileDiff) MaxRelDelta() float64 {
	max := 0.0
	for _, k := range d.Kernels {
		if r := k.RelDelta(); r > max {
			max = r
		}
	}
	return max
}

// TotalRelDelta returns the whole-profile relative deviation.
func (d *ProfileDiff) TotalRelDelta() float64 {
	return KernelDiff{A: d.TotalA, B: d.TotalB}.RelDelta()
}

// DiffProfiles compares two profiles over one instruction group.
func DiffProfiles(a, b *Profile, g sass.Group) *ProfileDiff {
	key := func(r *KernelRecord) string {
		return fmt.Sprintf("%s/%d", r.Kernel, r.LaunchIndex)
	}
	bByKey := make(map[string]*KernelRecord, len(b.Records))
	for i := range b.Records {
		bByKey[key(&b.Records[i])] = &b.Records[i]
	}
	d := &ProfileDiff{Group: g, TotalA: a.TotalInstrs(g), TotalB: b.TotalInstrs(g)}
	seen := make(map[string]bool, len(a.Records))
	for i := range a.Records {
		ra := &a.Records[i]
		k := key(ra)
		seen[k] = true
		rb, ok := bByKey[k]
		if !ok {
			d.OnlyA = append(d.OnlyA, k)
			continue
		}
		d.Kernels = append(d.Kernels, KernelDiff{
			Kernel:      ra.Kernel,
			LaunchIndex: ra.LaunchIndex,
			A:           ra.Total(g),
			B:           rb.Total(g),
		})
	}
	for i := range b.Records {
		if k := key(&b.Records[i]); !seen[k] {
			d.OnlyB = append(d.OnlyB, k)
		}
	}
	return d
}

// WriteReport prints a human-readable diff, listing only kernels that
// deviate by at least minRel.
func (d *ProfileDiff) WriteReport(w io.Writer, minRel float64) error {
	if _, err := fmt.Fprintf(w, "group %v: A=%d B=%d instructions (%.2f%% apart)\n",
		d.Group, d.TotalA, d.TotalB, 100*d.TotalRelDelta()); err != nil {
		return err
	}
	for _, k := range d.Kernels {
		if r := k.RelDelta(); r >= minRel && r > 0 {
			if _, err := fmt.Fprintf(w, "  %s/%d: A=%d B=%d (%.2f%%)\n",
				k.Kernel, k.LaunchIndex, k.A, k.B, 100*r); err != nil {
				return err
			}
		}
	}
	for _, k := range d.OnlyA {
		if _, err := fmt.Fprintf(w, "  only in A: %s\n", k); err != nil {
			return err
		}
	}
	for _, k := range d.OnlyB {
		if _, err := fmt.Fprintf(w, "  only in B: %s\n", k); err != nil {
			return err
		}
	}
	if math.IsNaN(d.MaxRelDelta()) {
		return fmt.Errorf("core: corrupt diff")
	}
	return nil
}
