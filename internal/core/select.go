package core

import (
	"fmt"
	"math/rand"

	"repro/internal/sass"
)

// SelectTransientFault samples one injection site uniformly from the
// profile's dynamic instructions of the requested group, exactly as the
// paper describes: choose a random n from 1..N over the profiled
// thread-level executions, then translate n into the
// <kernel name, kernel count, instruction count> tuple. The destination
// register selector and bit-pattern value are drawn from the same stream.
func SelectTransientFault(p *Profile, g sass.Group, bf BitFlipModel, rng *rand.Rand) (*TransientParams, error) {
	total := p.TotalInstrs(g)
	if total == 0 {
		return nil, fmt.Errorf("core: profile of %q has no %v instructions to inject", p.Program, g)
	}
	n := uint64(rng.Int63n(int64(total))) // 0-based index into the group's executions
	var cum uint64
	for i := range p.Records {
		r := &p.Records[i]
		t := r.Total(g)
		if n < cum+t {
			params := &TransientParams{
				Group:           g,
				BitFlip:         bf,
				KernelName:      r.Kernel,
				KernelCount:     r.LaunchIndex,
				InstrCount:      n - cum,
				DestRegSelect:   rng.Float64(),
				BitPatternValue: rng.Float64(),
			}
			if err := params.Validate(); err != nil {
				return nil, err
			}
			return params, nil
		}
		cum += t
	}
	return nil, fmt.Errorf("core: internal error: fault index %d beyond profile total %d", n, total)
}

// SelectTransientFaultSite is SelectTransientFault with the selection
// resolved down to a static instruction: it draws from the same RNG stream
// (one Int63n, then the two Float64s) but uses the profile's per-site
// breakdown to name the static instruction the dynamic index lands on, so
// consumers — the campaign pruner above all — can reason statically about
// the target without replaying the program. The dynamic index is
// interpreted in static-instruction order within the record, and the
// injector in site mode counts executions of that one instruction, so a
// fixed seed maps to a fixed site either way. Requires a profile with site
// data (a current profiler run, or a profile file with "# sites:" lines).
func SelectTransientFaultSite(p *Profile, g sass.Group, bf BitFlipModel, rng *rand.Rand) (*TransientParams, error) {
	total := p.TotalInstrs(g)
	if total == 0 {
		return nil, fmt.Errorf("core: profile of %q has no %v instructions to inject", p.Program, g)
	}
	n := uint64(rng.Int63n(int64(total))) // 0-based index into the group's executions
	var cum uint64
	for i := range p.Records {
		r := &p.Records[i]
		t := r.Total(g)
		if n >= cum+t {
			cum += t
			continue
		}
		if !r.HasSites() {
			return nil, fmt.Errorf("core: profile record %s;%d has no site data; re-profile or use SelectTransientFault",
				r.Kernel, r.LaunchIndex)
		}
		rem := n - cum
		for idx, c := range r.SiteCounts {
			if !sass.GroupContains(g, r.SiteOps[idx]) {
				continue
			}
			if rem >= c {
				rem -= c
				continue
			}
			params := &TransientParams{
				Group:           g,
				BitFlip:         bf,
				KernelName:      r.Kernel,
				KernelCount:     r.LaunchIndex,
				InstrCount:      rem,
				SiteResolved:    true,
				StaticInstrIdx:  idx,
				DestRegSelect:   rng.Float64(),
				BitPatternValue: rng.Float64(),
			}
			if err := params.Validate(); err != nil {
				return nil, err
			}
			return params, nil
		}
		return nil, fmt.Errorf("core: profile record %s;%d: site counts sum below the record total for %v",
			r.Kernel, r.LaunchIndex, g)
	}
	return nil, fmt.Errorf("core: internal error: fault index %d beyond profile total %d", n, total)
}

// SelectTransientFaultSiteFiltered is SelectTransientFaultSite restricted to
// opcodes accepted by eligible: the dynamic index is drawn over (and walked
// through) only the executions of eligible opcodes within the group, so every
// selection is valid for fault models that cannot target arbitrary
// instructions. It consumes exactly the same RNG shape as the unfiltered
// selectors — one Int63n and two Float64 — keeping per-experiment stream
// alignment across models.
func SelectTransientFaultSiteFiltered(p *Profile, g sass.Group, bf BitFlipModel, eligible func(sass.Op) bool, rng *rand.Rand) (*TransientParams, error) {
	include := func(op sass.Op) bool {
		return sass.GroupContains(g, op) && eligible(op)
	}
	recTotal := func(r *KernelRecord) (uint64, error) {
		if !r.HasSites() {
			return 0, fmt.Errorf("core: profile record %s;%d has no site data; filtered selection needs a site-resolved profile",
				r.Kernel, r.LaunchIndex)
		}
		var t uint64
		for idx, c := range r.SiteCounts {
			if include(r.SiteOps[idx]) {
				t += c
			}
		}
		return t, nil
	}
	var total uint64
	for i := range p.Records {
		t, err := recTotal(&p.Records[i])
		if err != nil {
			return nil, err
		}
		total += t
	}
	if total == 0 {
		return nil, fmt.Errorf("core: profile of %q has no eligible %v instructions for this fault model", p.Program, g)
	}
	n := uint64(rng.Int63n(int64(total))) // 0-based index into the eligible executions
	var cum uint64
	for i := range p.Records {
		r := &p.Records[i]
		t, _ := recTotal(r)
		if n >= cum+t {
			cum += t
			continue
		}
		rem := n - cum
		for idx, c := range r.SiteCounts {
			if !include(r.SiteOps[idx]) {
				continue
			}
			if rem >= c {
				rem -= c
				continue
			}
			params := &TransientParams{
				Group:           g,
				BitFlip:         bf,
				KernelName:      r.Kernel,
				KernelCount:     r.LaunchIndex,
				InstrCount:      rem,
				SiteResolved:    true,
				StaticInstrIdx:  idx,
				DestRegSelect:   rng.Float64(),
				BitPatternValue: rng.Float64(),
			}
			if err := params.Validate(); err != nil {
				return nil, err
			}
			return params, nil
		}
		return nil, fmt.Errorf("core: profile record %s;%d: site counts sum below the eligible total for %v",
			r.Kernel, r.LaunchIndex, g)
	}
	return nil, fmt.Errorf("core: internal error: fault index %d beyond eligible total %d", n, total)
}

// SelectPermanentFaults enumerates one permanent-fault experiment per
// executed opcode (the campaign described in Section IV-B: "permanent fault
// experiments can be skipped for unused opcodes"). The SM, lane, and mask
// are drawn per experiment from rng.
func SelectPermanentFaults(p *Profile, family sass.Family, numSMs int, bf BitFlipModel, rng *rand.Rand) ([]*PermanentParams, error) {
	set := sass.OpcodeSet(family)
	idByOp := make(map[sass.Op]int, len(set))
	for i, op := range set {
		idByOp[op] = i
	}
	var out []*PermanentParams
	for _, op := range p.ExecutedOpcodes() {
		id, ok := idByOp[op]
		if !ok {
			return nil, fmt.Errorf("core: profiled opcode %s is not in the %v opcode set", op, family)
		}
		params := &PermanentParams{
			SMID:     rng.Intn(numSMs),
			Lane:     rng.Intn(32),
			BitMask:  bf.Mask(rng.Float64(), 0),
			OpcodeID: id,
		}
		if params.BitMask == 0 {
			params.BitMask = 1 // ZERO_VALUE has no static mask; fall back to bit 0
		}
		if err := params.Validate(family, numSMs); err != nil {
			return nil, err
		}
		out = append(out, params)
	}
	return out, nil
}
