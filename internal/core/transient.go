package core

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/nvbit"
	"repro/internal/sass"
)

// destTarget names one corruptible destination: a GP register or a
// predicate.
type destTarget struct {
	isPred bool
	reg    sass.RegID
	pred   sass.PredID
}

func (t destTarget) String() string {
	if t.isPred {
		return t.pred.String()
	}
	return t.reg.String()
}

// destTargets expands an instruction's destination operands into individual
// corruptible registers: FP64 results occupy an even/odd pair, and 64/128-
// bit loads occupy two or four consecutive registers.
func destTargets(in *sass.Instr) []destTarget {
	var out []destTarget
	info := in.Op.Info()
	for i := range in.Dst {
		d := &in.Dst[i]
		switch d.Kind {
		case sass.OpdPred:
			if d.Pred.Pred != sass.PT {
				out = append(out, destTarget{isPred: true, pred: d.Pred.Pred})
			}
		case sass.OpdReg:
			if d.Reg == sass.RZ {
				continue
			}
			n := 1
			if info.Flags&sass.FlagPair != 0 {
				n = 2
			}
			if info.Sem == sass.SemLd || info.Sem == sass.SemLdc {
				switch in.Mods.MemWidth() {
				case 8:
					n = 2
				case 16:
					n = 4
				}
			}
			for k := 0; k < n; k++ {
				r := d.Reg + sass.RegID(k)
				if r != sass.RZ {
					out = append(out, destTarget{reg: r})
				}
			}
		}
	}
	return out
}

// InjectionRecord reports what a transient injection actually did — the
// per-run log NVBitFI writes for later analysis.
type InjectionRecord struct {
	// Activated is true when the targeted dynamic instruction was reached
	// and the corruption applied. With approximate profiles the selected
	// site may not exist in the real execution; the fault then never
	// activates.
	Activated bool
	// NoDestination is true when the target instruction writes no register
	// (a G_NODEST selection): the fault model has nothing to corrupt.
	NoDestination bool

	Kernel    string
	InstrIdx  int
	Opcode    sass.Op
	SMID      int
	BlockLin  int
	WarpID    int
	Lane      int
	Target    string // corrupted register name
	Before    uint32
	After     uint32
	Mask      uint32
	PredValue bool // post-corruption value for predicate targets
}

// TransientInjector is the injector.so analog: it corrupts the destination
// register of exactly one dynamic, thread-level instruction execution,
// selected by the parameter tuple. Only the targeted dynamic kernel
// instance is instrumented; every other launch runs unmodified — the
// selectivity the paper credits for NVBitFI's low injection overhead.
type TransientInjector struct {
	P TransientParams

	counter uint64 // eligible thread-level executions seen in the target launch
	// counterBase primes counter when the target launch begins. The
	// checkpoint engine sets it to the eligible executions that happened
	// before the restore point, which a restored run never re-executes.
	counterBase uint64
	active      bool // the in-flight launch is the target
	rec         InjectionRecord
}

var _ nvbit.Tool = (*TransientInjector)(nil)

// NewTransientInjector validates params and builds the injector. An
// injector is single-use: one experiment, one context.
func NewTransientInjector(p TransientParams) (*TransientInjector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &TransientInjector{P: p}, nil
}

// Name implements nvbit.Tool.
func (t *TransientInjector) Name() string { return "injector" }

// Record returns the injection outcome after the run.
func (t *TransientInjector) Record() InjectionRecord { return t.rec }

// SetCounterBase primes the eligible-execution counter for a run restored
// from a mid-launch checkpoint: n is the number of eligible executions the
// golden prefix already performed, so the countdown to InstrCount continues
// where the snapshot left off. It must be called before the target launch.
func (t *TransientInjector) SetCounterBase(n uint64) { t.counterBase = n }

// OnLaunch implements nvbit.Tool: only the targeted dynamic kernel instance
// is instrumented.
func (t *TransientInjector) OnLaunch(info *nvbit.LaunchInfo) nvbit.Decision {
	if info.Kernel.Name != t.P.KernelName || info.LaunchIndex != t.P.KernelCount {
		return nvbit.RunOriginal
	}
	t.active = true
	t.counter = t.counterBase
	// The key deliberately omits InstrCount: the inserted callbacks are
	// identical for every count (the countdown lives in the injector, not
	// in the instrumentation), so keying on it would only defeat JIT-cache
	// reuse across repeat launches of the target kernel. A site-resolved
	// experiment instruments a single instruction, so its key carries the
	// static index instead.
	if t.P.SiteResolved {
		return nvbit.Decision{Instrument: true, Key: fmt.Sprintf("inject:%v@%d", t.P.Group, t.P.StaticInstrIdx)}
	}
	return nvbit.Decision{Instrument: true, Key: fmt.Sprintf("inject:%v", t.P.Group)}
}

// Instrument implements nvbit.Tool: attach the countdown-and-corrupt
// callback to every instruction in the target group.
func (t *TransientInjector) Instrument(k *sass.Kernel, _ string, ins *nvbit.Inserter) {
	if t.P.SiteResolved {
		// Site mode: the countdown runs over executions of one static
		// instruction, so only that instruction is instrumented.
		i := t.P.StaticInstrIdx
		if i >= len(k.Instrs) || !sass.GroupContains(t.P.Group, k.Instrs[i].Op) {
			return
		}
		ins.InsertAfter(i, func(c *gpu.InstrCtx) { t.step(c, i) })
		return
	}
	for i := range k.Instrs {
		if !sass.GroupContains(t.P.Group, k.Instrs[i].Op) {
			continue
		}
		idx := i
		ins.InsertAfter(i, func(c *gpu.InstrCtx) { t.step(c, idx) })
	}
}

// step advances the eligible-execution counter and fires the corruption
// when the count reaches the target.
func (t *TransientInjector) step(c *gpu.InstrCtx, instrIdx int) {
	if !t.active || t.rec.Activated {
		return
	}
	if sel := t.P.Thread; sel != nil {
		// Thread-targeted mode (extension): only the selected thread's
		// executions are eligible.
		if c.BlockLin != sel.BlockLinear || c.WarpID != sel.WarpID || !c.LaneActive(sel.Lane) {
			return
		}
		if t.counter < t.P.InstrCount {
			t.counter++
			return
		}
		t.corrupt(c, instrIdx, sel.Lane)
		return
	}
	n := uint64(c.LaneCount())
	if t.counter+n <= t.P.InstrCount {
		t.counter += n
		return
	}
	// The target falls inside this execution: find the k-th active lane.
	k := t.P.InstrCount - t.counter
	t.counter += n
	for lane := 0; lane < gpu.WarpSize; lane++ {
		if !c.LaneActive(lane) {
			continue
		}
		if k == 0 {
			t.corrupt(c, instrIdx, lane)
			return
		}
		k--
	}
}

// corrupt applies the bit-flip model to the selected destination
// register(s) of one lane, immediately after the instruction wrote them.
// The injector corrupts exactly one dynamic instruction, so once it has
// fired (including the no-destination case, which also sets Activated)
// every remaining callback in this launch is inert — step returns
// immediately. Disarm tells the engine to stop dispatching them while
// keeping trampoline accounting, so modeled time is unchanged.
func (t *TransientInjector) corrupt(c *gpu.InstrCtx, instrIdx, lane int) {
	CorruptDestN(&t.rec, c, instrIdx, lane, t.P.BitFlip, t.P.DestRegSelect,
		t.P.BitPatternValue, t.P.MultiRegCount)
	c.Disarm()
}

// CorruptDest applies the Table II destination-register corruption to one
// lane of the instruction the context points at, filling rec with what
// happened. It is shared by NVBitFI's injector and the baseline tools so
// that overhead comparisons use identical fault semantics.
func CorruptDest(rec *InjectionRecord, c *gpu.InstrCtx, instrIdx, lane int,
	bf BitFlipModel, destSel, patVal float64) {
	CorruptDestN(rec, c, instrIdx, lane, bf, destSel, patVal, 1)
}

// CorruptDestN is CorruptDest with the Section V multi-register extension:
// count consecutive destination registers (starting at the selected one)
// receive the same corruption. count values below one mean one.
func CorruptDestN(rec *InjectionRecord, c *gpu.InstrCtx, instrIdx, lane int,
	bf BitFlipModel, destSel, patVal float64, count int) {
	*rec = InjectionRecord{
		Activated: true,
		Kernel:    c.Kernel.Name,
		InstrIdx:  instrIdx,
		Opcode:    c.Instr.Op,
		SMID:      c.SMID,
		BlockLin:  c.BlockLin,
		WarpID:    c.WarpID,
		Lane:      lane,
	}
	targets := destTargets(c.Instr)
	if len(targets) == 0 {
		// A G_NODEST selection: the register fault model has no
		// architectural state to corrupt (stores, branches, barriers).
		rec.NoDestination = true
		return
	}
	if count < 1 {
		count = 1
	}
	first := int(destSel * float64(len(targets)))
	for k := 0; k < count && first+k < len(targets); k++ {
		tg := targets[first+k]
		if k == 0 {
			rec.Target = tg.String()
		} else {
			rec.Target += "," + tg.String()
		}
		if tg.isPred {
			before := c.ReadPred(lane, tg.pred)
			after := bf.FlipPred(patVal, before)
			c.WritePred(lane, tg.pred, after)
			if k == 0 {
				rec.PredValue = after
				if before {
					rec.Before = 1
				}
				if after {
					rec.After = 1
				}
			}
			continue
		}
		before := c.ReadReg(lane, tg.reg)
		mask := bf.Mask(patVal, before)
		after := before ^ mask
		c.WriteReg(lane, tg.reg, after)
		if k == 0 {
			rec.Before = before
			rec.After = after
			rec.Mask = mask
		}
	}
}

// OnLaunchDone implements nvbit.Tool.
func (t *TransientInjector) OnLaunchDone(info *nvbit.LaunchInfo, _ gpu.LaunchStats, _ *gpu.Trap, _ bool) {
	if t.active && info.Kernel != nil && info.Kernel.Name == t.P.KernelName &&
		info.LaunchIndex == t.P.KernelCount {
		t.active = false
	}
}
