package core

import "fmt"

// BitFlipModel is the bit-level corruption pattern (Table II). The numeric
// values match the paper's parameter encoding.
type BitFlipModel uint8

// Bit-flip models.
const (
	FlipSingleBit BitFlipModel = 1 // flip a single bit
	FlipTwoBits   BitFlipModel = 2 // flip two adjacent bits
	RandomValue   BitFlipModel = 3 // write a random value
	ZeroValue     BitFlipModel = 4 // write value 0
)

var bitFlipNames = [...]string{
	FlipSingleBit: "FLIP_SINGLE_BIT",
	FlipTwoBits:   "FLIP_TWO_BITS",
	RandomValue:   "RANDOM_VALUE",
	ZeroValue:     "ZERO_VALUE",
}

func (m BitFlipModel) String() string {
	if m >= FlipSingleBit && int(m) < len(bitFlipNames) {
		return bitFlipNames[m]
	}
	return fmt.Sprintf("BitFlipModel(%d)", uint8(m))
}

// Valid reports whether m is one of the four defined models.
func (m BitFlipModel) Valid() bool { return m >= FlipSingleBit && m <= ZeroValue }

// Mask derives the XOR corruption mask from the bit-pattern value in [0,1)
// and the register's current value, using exactly the formulas of Table II:
//
//	FLIP_SINGLE_BIT: 0x1 << (32 × value)
//	FLIP_TWO_BITS:   0x3 << (31 × value)
//	RANDOM_VALUE:    0xffffffff × value
//	ZERO_VALUE:      the current value, so XOR produces 0x0
func (m BitFlipModel) Mask(value float64, current uint32) uint32 {
	switch m {
	case FlipSingleBit:
		return 1 << uint(32*value)
	case FlipTwoBits:
		return 3 << uint(31*value)
	case RandomValue:
		return uint32(float64(0xffffffff) * value)
	case ZeroValue:
		return current
	default:
		return 0
	}
}

// FlipPred derives the corrupted value of a 1-bit predicate destination.
// Single- and two-bit flips invert the predicate; RANDOM_VALUE draws the
// bit from the pattern value; ZERO_VALUE clears it.
func (m BitFlipModel) FlipPred(value float64, current bool) bool {
	switch m {
	case FlipSingleBit, FlipTwoBits:
		return !current
	case RandomValue:
		return value >= 0.5
	case ZeroValue:
		return false
	default:
		return current
	}
}
